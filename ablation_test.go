// Ablation benchmarks for the design choices DESIGN.md calls out: GRA
// population seeding, selection scheme, crossover operator, elite
// re-injection period, and the AGRA transcription repair rule. Each
// benchmark reports the achieved fitness (% NTC saved / 100) alongside the
// runtime, so `go test -bench Ablation` doubles as a quality comparison.
package drp_test

import (
	"testing"

	"drp"
	"drp/internal/agra"
	"drp/internal/gra"
	"drp/internal/sra"
)

func ablationProblem(b *testing.B) *drp.Problem {
	b.Helper()
	p, err := drp.Generate(drp.NewSpec(30, 80, 0.05, 0.15), 5)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func ablationParams() gra.Params {
	params := gra.DefaultParams()
	params.PopSize = 20
	params.Generations = 20
	return params
}

func benchGRAVariant(b *testing.B, mutate func(*gra.Params)) {
	p := ablationProblem(b)
	var fitness float64
	for i := 0; i < b.N; i++ {
		params := ablationParams()
		params.Seed = uint64(i + 1)
		mutate(&params)
		res, err := gra.Run(p, params)
		if err != nil {
			b.Fatal(err)
		}
		fitness += res.Fitness
	}
	b.ReportMetric(fitness/float64(b.N), "fitness")
}

// Seeding: the paper's SRA warm start versus random initial populations.
func BenchmarkAblationSeedingSRA(b *testing.B) {
	benchGRAVariant(b, func(p *gra.Params) { p.Seeding = gra.SeedingSRA })
}

func BenchmarkAblationSeedingRandom(b *testing.B) {
	benchGRAVariant(b, func(p *gra.Params) { p.Seeding = gra.SeedingRandom })
}

// Selection: (µ+λ) + stochastic remainder versus Holland's simple GA.
func BenchmarkAblationSelectionMuPlusLambda(b *testing.B) {
	benchGRAVariant(b, func(p *gra.Params) { p.Selection = gra.SelectionMuPlusLambda })
}

func BenchmarkAblationSelectionSGA(b *testing.B) {
	benchGRAVariant(b, func(p *gra.Params) { p.Selection = gra.SelectionSGA })
}

// Crossover: two-point with gene repair versus one-point.
func BenchmarkAblationCrossoverTwoPoint(b *testing.B) {
	benchGRAVariant(b, func(p *gra.Params) { p.Crossover = gra.CrossoverTwoPoint })
}

func BenchmarkAblationCrossoverOnePoint(b *testing.B) {
	benchGRAVariant(b, func(p *gra.Params) { p.Crossover = gra.CrossoverOnePoint })
}

// Elite re-injection period: every generation versus the paper's every-5.
func BenchmarkAblationEliteEvery1(b *testing.B) {
	benchGRAVariant(b, func(p *gra.Params) { p.EliteEvery = 1 })
}

func BenchmarkAblationEliteEvery5(b *testing.B) {
	benchGRAVariant(b, func(p *gra.Params) { p.EliteEvery = 5 })
}

// AGRA transcription repair: estimator (paper) vs random vs exact ΔV.
func benchRepairVariant(b *testing.B, strategy agra.Repair) {
	p := ablationProblem(b)
	current := sra.Run(p, sra.Options{}).Scheme
	changed := []int{0, 1, 2, 3, 4, 5, 6, 7}
	mini := ablationParams()
	var savings float64
	for i := 0; i < b.N; i++ {
		params := agra.DefaultParams()
		params.Seed = uint64(i + 1)
		params.RepairStrategy = strategy
		res, err := agra.Adapt(agra.Input{Problem: p, Current: current, Changed: changed}, params, mini, 0)
		if err != nil {
			b.Fatal(err)
		}
		savings += res.Savings
	}
	b.ReportMetric(savings/float64(b.N), "%savings")
}

func BenchmarkAblationRepairEstimator(b *testing.B) { benchRepairVariant(b, agra.RepairEstimator) }
func BenchmarkAblationRepairRandom(b *testing.B)    { benchRepairVariant(b, agra.RepairRandom) }
func BenchmarkAblationRepairExact(b *testing.B)     { benchRepairVariant(b, agra.RepairExact) }
