// Distributed database cluster: a write-heavy allocation problem.
//
// Tables (objects) live on a cluster of database sites. Analytics sites
// read everything; transactional sites update their own hot tables
// constantly. Naive read-driven replication floods the network with update
// broadcasts — this example shows write-blind placement losing to SRA, and
// SRA losing to GRA, which is exactly the regime the paper built the
// genetic algorithm for (high update ratios, tight storage).
package main

import (
	"fmt"
	"log"

	"drp"
)

func main() {
	const (
		sites  = 24
		tables = 80
	)

	topo := drp.CompleteTopology(sites, 1, 10, 11)
	dist, err := topo.Distances()
	if err != nil {
		log.Fatal(err)
	}

	sizes := make([]int64, tables)
	primaries := make([]int, tables)
	reads := make([][]int64, sites)
	writes := make([][]int64, sites)
	for i := range reads {
		reads[i] = make([]int64, tables)
		writes[i] = make([]int64, tables)
	}
	for k := 0; k < tables; k++ {
		sizes[k] = int64(10 + (k*17)%50)
		primaries[k] = k % sites
		for i := 0; i < sites; i++ {
			reads[i][k] = int64(5 + (i*11+k*5)%30)
			// The owner and its two neighbours write heavily (OLTP); others
			// only read (analytics).
			switch {
			case i == primaries[k]:
				writes[i][k] = 60
			case i == (primaries[k]+1)%sites || i == (primaries[k]+sites-1)%sites:
				writes[i][k] = 25
			}
		}
	}

	var totalSize int64
	need := make([]int64, sites)
	for k, sz := range sizes {
		totalSize += sz
		need[primaries[k]] += sz
	}
	caps := make([]int64, sites)
	for i := range caps {
		caps[i] = totalSize / 8
		if caps[i] < need[i] {
			caps[i] = need[i]
		}
	}

	p, err := drp.NewProblem(drp.ProblemConfig{
		Sizes:      sizes,
		Capacities: caps,
		Primaries:  primaries,
		Reads:      reads,
		Writes:     writes,
		Dist:       dist,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("database cluster: %d sites, %d tables, primaries-only cost %d\n\n",
		sites, tables, p.DPrime())

	// Write-blind placement: replicate wherever reads look attractive.
	blind := drp.ReadOnlyGreedy(p)
	fmt.Printf("read-blind greedy: %7.2f%% savings, %4d replicas  (update broadcasts ignored!)\n",
		blind.Savings(), blind.TotalReplicas())

	// SRA: accounts for the update fan-in in its benefit value.
	sraRes := drp.SRA(p)
	fmt.Printf("SRA:               %7.2f%% savings, %4d replicas\n",
		sraRes.Scheme.Savings(), sraRes.Scheme.TotalReplicas())

	// GRA: explores placements the greedy's local view cannot reach.
	params := drp.DefaultGRAParams()
	params.Seed = 11
	graRes, err := drp.GRA(p, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GRA:               %7.2f%% savings, %4d replicas\n",
		graRes.Scheme.Savings(), graRes.Scheme.TotalReplicas())

	fmt.Println("\nper-table view of the three hottest-write tables:")
	for k := 0; k < 3; k++ {
		fmt.Printf("  table %2d: owner %2d, GRA replicas %v\n", k, p.Primary(k), graRes.Scheme.Replicators(k))
	}
}
