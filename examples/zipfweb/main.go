// Web workload with Zipf-skewed popularity, served by the simulated
// cluster.
//
// The paper's generator draws reads uniformly; measured web traffic is
// heavily skewed — a few hot objects dominate. This example generates a
// Zipf workload (the library's extension), optimises placement, and then
// *runs* the system in the discrete-event cluster simulator under pattern
// drift, comparing a frozen scheme against the adaptive AGRA monitor on
// the same traffic.
package main

import (
	"fmt"
	"log"

	"drp"
)

func main() {
	// 25 edge sites, 150 objects, hot-tailed: skew 0.9.
	p, err := drp.GenerateZipf(drp.NewZipfSpec(25, 150, 0.05, 0.15, 0.9), 21)
	if err != nil {
		log.Fatal(err)
	}

	// How skewed is it? Share of reads going to the hottest 10% of objects.
	type hot struct {
		k     int
		reads int64
	}
	var all int64
	top := make([]hot, 0, p.Objects())
	for k := 0; k < p.Objects(); k++ {
		top = append(top, hot{k, p.TotalReads(k)})
		all += p.TotalReads(k)
	}
	for i := 0; i < len(top); i++ { // selection of the 15 hottest
		for j := i + 1; j < len(top); j++ {
			if top[j].reads > top[i].reads {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	var hotReads int64
	for _, h := range top[:15] {
		hotReads += h.reads
	}
	fmt.Printf("Zipf web workload: top 10%% of objects receive %.0f%% of reads\n\n",
		100*float64(hotReads)/float64(all))

	initial := drp.SRA(p).Scheme
	fmt.Printf("initial SRA placement saves %.1f%% of transfer cost\n\n", initial.Savings())

	// Simulate six epochs with 15% of objects shifting pattern each epoch.
	graParams := drp.DefaultGRAParams()
	graParams.PopSize = 16
	graParams.Generations = 12
	base := drp.ClusterConfig{
		Epochs:     6,
		Threshold:  2.0,
		Drift:      &drp.ChangeSpec{Ch: 5, ObjectShare: 0.15, ReadShare: 0.6},
		GRAParams:  graParams,
		AGRAParams: drp.DefaultAGRAParams(),
		Seed:       21,
	}

	for _, policy := range []drp.ClusterPolicy{drp.PolicyNone, drp.PolicyAGRAMini} {
		cfg := base
		cfg.Policy = policy
		res, err := drp.ClusterRun(p, initial, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy %-10s", policy)
		for _, e := range res.Epochs {
			fmt.Printf("  %5.1f%%", e.Savings)
		}
		fmt.Printf("   (total NTC %d)\n", res.TotalNTC())
	}
	fmt.Println("\ncolumns are per-epoch % savings; the frozen scheme cannot exploit")
	fmt.Println("the new read hotspots, while the adaptive monitor compounds its lead.")
}
