// CDN mirror placement: a read-dominated content-distribution scenario.
//
// A handful of origin sites publish objects (pages, images, bundles); many
// edge sites read them heavily and almost never write. This is the setting
// the paper's introduction motivates — replication ≈ mirror placement — and
// the regime where the cheap greedy SRA is nearly as good as the genetic
// algorithm, so you would deploy SRA and re-run it nightly.
package main

import (
	"fmt"
	"log"

	"drp"
)

func main() {
	const (
		sites   = 30
		objects = 120
	)

	// Build the problem by hand instead of using the random generator:
	// a sparse backbone topology and origin-concentrated primaries.
	topo := drp.RandomTopology(sites, 0.15, 1, 10, 7)
	dist, err := topo.Distances()
	if err != nil {
		log.Fatal(err)
	}

	sizes := make([]int64, objects)
	primaries := make([]int, objects)
	reads := make([][]int64, sites)
	writes := make([][]int64, sites)
	for i := range reads {
		reads[i] = make([]int64, objects)
		writes[i] = make([]int64, objects)
	}
	for k := 0; k < objects; k++ {
		sizes[k] = int64(5 + (k*13)%60)
		primaries[k] = k % 3 // three origin sites: 0, 1, 2
		for i := 0; i < sites; i++ {
			// Popularity follows a coarse Zipf-like ladder; edge sites read
			// far more than origins.
			pop := int64(1 + 200/(k+1))
			reads[i][k] = pop + int64((i*7+k*3)%25)
		}
		// Only the owning origin writes, rarely (publish events).
		writes[primaries[k]][k] = 2
	}

	caps := make([]int64, sites)
	var totalSize int64
	need := make([]int64, sites) // storage the primaries pin at each origin
	for k, sz := range sizes {
		totalSize += sz
		need[primaries[k]] += sz
	}
	for i := range caps {
		caps[i] = totalSize / 5 // each edge can mirror ~20% of the catalogue
		if caps[i] < need[i] {
			caps[i] = need[i] // origins must at least hold what they publish
		}
	}

	p, err := drp.NewProblem(drp.ProblemConfig{
		Sizes:      sizes,
		Capacities: caps,
		Primaries:  primaries,
		Reads:      reads,
		Writes:     writes,
		Dist:       dist,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CDN: %d edges, %d objects, origin-only transfer cost %d\n\n", sites, objects, p.DPrime())

	sraRes := drp.SRA(p)
	fmt.Printf("SRA mirror placement:  %6.2f%% traffic saved with %d mirrors (%v)\n",
		sraRes.Scheme.Savings(), sraRes.Scheme.TotalReplicas(), sraRes.Elapsed)

	params := drp.DefaultGRAParams()
	params.Generations = 40
	params.Seed = 7
	graRes, err := drp.GRA(p, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GRA mirror placement:  %6.2f%% traffic saved with %d mirrors (%v)\n",
		graRes.Scheme.Savings(), graRes.Scheme.TotalReplicas(), graRes.Elapsed)

	fmt.Printf("\nread-heavy regime: the greedy is within %.2f points of the GA\n",
		graRes.Scheme.Savings()-sraRes.Scheme.Savings())

	// Show where the hottest object got mirrored.
	hot := 0
	fmt.Printf("hottest object %d is mirrored at %d sites: %v\n",
		hot, len(sraRes.Scheme.Replicators(hot)), sraRes.Scheme.Replicators(hot))
}
