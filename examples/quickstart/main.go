// Quickstart: generate a random distributed system, solve the Data
// Replication Problem with the greedy SRA and the genetic GRA, and compare
// the transfer-cost savings.
package main

import (
	"fmt"
	"log"

	"drp"
)

func main() {
	// A 20-site network with 60 objects, updates at 5% of reads, and each
	// site able to store ~15% of the total object population.
	spec := drp.NewSpec(20, 60, 0.05, 0.15)
	p, err := drp.Generate(spec, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %d sites, %d objects, no-replication transfer cost D' = %d\n\n",
		p.Sites(), p.Objects(), p.DPrime())

	// Greedy: microseconds, good when reads dominate.
	sraRes := drp.SRA(p)
	fmt.Printf("SRA: %6.2f%% NTC saved, %4d replicas, %v\n",
		sraRes.Scheme.Savings(), sraRes.Scheme.TotalReplicas(), sraRes.Elapsed)

	// Genetic: orders of magnitude slower, better schemes under update
	// pressure and tight storage.
	params := drp.DefaultGRAParams()
	params.Seed = 42
	graRes, err := drp.GRA(p, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GRA: %6.2f%% NTC saved, %4d replicas, %v\n",
		graRes.Scheme.Savings(), graRes.Scheme.TotalReplicas(), graRes.Elapsed)

	// Inspect a single object's placement.
	k := 0
	fmt.Printf("\nobject %d (size %d, primary site %d) is replicated at sites %v\n",
		k, p.Size(k), p.Primary(k), graRes.Scheme.Replicators(k))

	// Schemes are plain data: costs decompose per object.
	var hottest int
	var worst int64
	for k := 0; k < p.Objects(); k++ {
		if c := graRes.Scheme.ObjectCost(k); c > worst {
			worst, hottest = c, k
		}
	}
	fmt.Printf("most expensive object under the GRA scheme: %d (V_%d = %d)\n", hottest, hottest, worst)
}
