// Adaptive replication under a daytime pattern shift.
//
// Overnight, a monitor site computed a replication scheme with the genetic
// algorithm. During the day a flash crowd changes the read/write mix: some
// objects suddenly get 600% more reads, others 600% more updates. The stale
// static scheme bleeds transfer cost; AGRA re-optimises just the changed
// objects in a fraction of the time a full GA re-run would take.
package main

import (
	"fmt"
	"log"

	"drp"
)

func main() {
	// The paper's adaptive test case: M=50, N=200, U=5%, C=15%.
	p, err := drp.Generate(drp.NewSpec(50, 200, 0.05, 0.15), 99)
	if err != nil {
		log.Fatal(err)
	}

	// Nightly static optimisation (reduced budget to keep the demo quick).
	night := drp.DefaultGRAParams()
	night.Generations = 40
	night.Seed = 99
	staticRes, err := drp.GRA(p, night)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overnight GRA scheme: %.2f%% savings (%v)\n",
		staticRes.Scheme.Savings(), staticRes.Elapsed)

	// Daytime: 20% of objects shift — 70% of them toward reads, 30% toward
	// updates, each by 600%.
	day, changes, err := drp.ApplyChange(p, drp.ChangeSpec{
		Ch:          6.0,
		ObjectShare: 0.20,
		ReadShare:   0.70,
	}, 100)
	if err != nil {
		log.Fatal(err)
	}
	changed := make([]int, len(changes))
	for i, c := range changes {
		changed[i] = c.Object
	}
	fmt.Printf("daytime shift: %d objects changed patterns (Ch=600%%)\n\n", len(changed))

	// The stale scheme, re-evaluated against the new patterns.
	current, err := drp.RebindScheme(day, staticRes.Scheme)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stale static scheme under new patterns: %.2f%% savings\n", current.Savings())

	// AGRA standalone, and AGRA + 5 generations of mini-GRA.
	in := drp.AdaptInput{
		Problem:       day,
		Current:       current,
		GRAPopulation: staticRes.Population,
		Changed:       changed,
	}
	agraParams := drp.DefaultAGRAParams()
	agraParams.Seed = 101
	mini := drp.DefaultGRAParams()
	mini.PopSize = 20
	mini.Seed = 101

	standalone, err := drp.Adapt(in, agraParams, mini, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Current+AGRA:        %.2f%% savings in %v\n", standalone.Savings, standalone.Elapsed)

	polished, err := drp.Adapt(in, agraParams, mini, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AGRA + 5 mini-GRA:   %.2f%% savings in %v\n", polished.Savings, polished.Elapsed)

	// Compare with the expensive alternative: re-running the full GA from
	// scratch on the new patterns.
	full := drp.DefaultGRAParams()
	full.Generations = 80
	full.Seed = 102
	rerun, err := drp.GRA(day, full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full GRA re-run:     %.2f%% savings in %v\n", rerun.Scheme.Savings(), rerun.Elapsed)

	speedup := float64(rerun.Elapsed) / float64(polished.Elapsed)
	fmt.Printf("\nAGRA+mini-GRA reached comparable quality %.0f× faster than the re-run\n", speedup)
}
