// Benchmarks reproducing the paper's evaluation figures and profiling the
// algorithms themselves.
//
// Each BenchmarkFigNx runs the corresponding experiment sweep at the Tiny
// preset (so `go test -bench=.` completes in minutes on one core) and
// reports a representative metric from the figure. Paper-fidelity runs are
// the drpbench command's job:
//
//	go run ./cmd/drpbench -preset paper -fig 1a
//
// The remaining benchmarks profile the primitives: cost evaluation, SRA,
// one GRA generation, one AGRA micro-GA.
package drp_test

import (
	"strings"

	"testing"

	"drp"
	"drp/internal/experiments"
)

// benchFigure runs one figure's sweep per iteration and reports the last
// value of its first and last series.
func benchFigure(b *testing.B, id string) {
	cfg := experiments.Tiny()
	for i := 0; i < b.N; i++ {
		campaign, err := experiments.NewCampaign(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		fig, err := campaign.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first := fig.Series[0]
			last := fig.Series[len(fig.Series)-1]
			b.ReportMetric(first.Y[len(first.Y)-1], metricUnit(first.Name))
			b.ReportMetric(last.Y[len(last.Y)-1], metricUnit(last.Name))
		}
	}
}

// metricUnit turns a series name into a legal ReportMetric unit (no
// whitespace allowed).
func metricUnit(name string) string {
	return strings.ReplaceAll(name, " ", "_") + "/last"
}

// Figure 1(a): % NTC savings versus number of sites (SRA vs GRA, three
// update ratios).
func BenchmarkFig1aSavingsVsSites(b *testing.B) { benchFigure(b, "1a") }

// Figure 1(b): replicas created versus number of sites.
func BenchmarkFig1bReplicasVsSites(b *testing.B) { benchFigure(b, "1b") }

// Figure 1(c): % NTC savings versus number of objects.
func BenchmarkFig1cSavingsVsObjects(b *testing.B) { benchFigure(b, "1c") }

// Figure 1(d): replicas created versus number of objects.
func BenchmarkFig1dReplicasVsObjects(b *testing.B) { benchFigure(b, "1d") }

// Figure 2(a): SRA execution time versus number of sites.
func BenchmarkFig2aSRARuntime(b *testing.B) { benchFigure(b, "2a") }

// Figure 2(b): GRA execution time versus number of sites.
func BenchmarkFig2bGRARuntime(b *testing.B) { benchFigure(b, "2b") }

// Figure 3(a): % NTC savings versus update ratio.
func BenchmarkFig3aSavingsVsUpdateRatio(b *testing.B) { benchFigure(b, "3a") }

// Figure 3(b): % NTC savings versus site capacity.
func BenchmarkFig3bSavingsVsCapacity(b *testing.B) { benchFigure(b, "3b") }

// Figure 4(a): adaptation policies versus share of objects with reads
// increased.
func BenchmarkFig4aAdaptReadsUp(b *testing.B) { benchFigure(b, "4a") }

// Figure 4(b): adaptation policies versus share of objects with updates
// increased.
func BenchmarkFig4bAdaptUpdatesUp(b *testing.B) { benchFigure(b, "4b") }

// Figure 4(c): adaptation policies versus the read/update mix of changes.
func BenchmarkFig4cAdaptMix(b *testing.B) { benchFigure(b, "4c") }

// Figure 4(d): execution time of the adaptation policies.
func BenchmarkFig4dAdaptRuntime(b *testing.B) { benchFigure(b, "4d") }

// --- Algorithm primitives ---

func benchProblem(b *testing.B, m, n int, u float64) *drp.Problem {
	b.Helper()
	p, err := drp.Generate(drp.NewSpec(m, n, u, 0.15), 1)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkCostEvaluation measures one full D computation (eq. 4) on the
// paper's adaptive test-case shape.
func BenchmarkCostEvaluation(b *testing.B) {
	p := benchProblem(b, 50, 200, 0.05)
	scheme := drp.SRA(p).Scheme
	bits := scheme.Bits()
	ev := drp.NewEvaluator(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.Cost(bits)
	}
}

// BenchmarkSRA measures the full greedy on the adaptive test-case shape.
func BenchmarkSRA(b *testing.B) {
	p := benchProblem(b, 50, 200, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = drp.SRA(p)
	}
}

// BenchmarkSRALarge measures the greedy at the paper's largest static
// configuration (M=100, N=150).
func BenchmarkSRALarge(b *testing.B) {
	p := benchProblem(b, 100, 150, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = drp.SRA(p)
	}
}

// BenchmarkGRAGeneration measures GRA cost per generation (population 50,
// one generation, amortising the SRA seeding out via ResetTimer).
func BenchmarkGRAGeneration(b *testing.B) {
	p := benchProblem(b, 50, 200, 0.05)
	params := drp.DefaultGRAParams()
	params.Generations = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Seed = uint64(i + 1)
		if _, err := drp.GRA(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGRAGenerationParallel is BenchmarkGRAGeneration with the
// evaluation pool set to every core; the ratio of the two is the
// realised speedup of the parallel evaluation layer (≈1 on one core).
func BenchmarkGRAGenerationParallel(b *testing.B) {
	p := benchProblem(b, 50, 200, 0.05)
	params := drp.DefaultGRAParams()
	params.Generations = 1
	params.Parallelism = 0 // all cores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params.Seed = uint64(i + 1)
		if _, err := drp.GRA(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAGRAObject measures one per-object micro-GA (Ap=10, Ag=50), the
// unit of adaptive work.
func BenchmarkAGRAObject(b *testing.B) {
	p := benchProblem(b, 50, 200, 0.05)
	current := drp.SRA(p).Scheme
	in := drp.AdaptInput{Problem: p, Current: current, Changed: []int{0}}
	mini := drp.DefaultGRAParams()
	mini.PopSize = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params := drp.DefaultAGRAParams()
		params.Seed = uint64(i + 1)
		if _, err := drp.Adapt(in, params, mini, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGenerate measures instance generation at the adaptive
// test-case shape (complete topology + all-pairs shortest paths included).
func BenchmarkWorkloadGenerate(b *testing.B) {
	spec := drp.NewSpec(50, 200, 0.05, 0.15)
	for i := 0; i < b.N; i++ {
		if _, err := drp.Generate(spec, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHillClimb measures the local-search baseline on the adaptive
// test-case shape.
func BenchmarkHillClimb(b *testing.B) {
	p := benchProblem(b, 30, 80, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = drp.HillClimb(p, nil, 0)
	}
}

// BenchmarkDistributedSRA measures the token-passing protocol including
// its goroutine fan-out and channel traffic.
func BenchmarkDistributedSRA(b *testing.B) {
	p := benchProblem(b, 30, 60, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = drp.SRADistributed(p)
	}
}
