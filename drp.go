// Package drp is a library for data replication in large distributed
// systems, reproducing Loukopoulos & Ahmad, "Static and Adaptive Data
// Replication Algorithms for Fast Information Access in Large Distributed
// Systems" (ICDCS 2000).
//
// Given M sites with storage capacities, N objects with sizes and fixed
// primary copies, per-(site, object) read/write frequencies and a
// site-to-site transfer cost matrix, the Data Replication Problem (DRP)
// asks for the replica placement minimising total network transfer cost
// (NTC) — reads served by the nearest replica, writes shipped to the
// primary and broadcast to all replicas. The decision problem is
// NP-complete, so this package provides the paper's three heuristics:
//
//   - SRA — a fast greedy that replicates by benefit-per-storage-unit,
//   - GRA — a genetic algorithm over placement matrices, slower but
//     substantially better once updates or tight capacities bite, and
//   - Adapt (AGRA) — an online micro-GA that re-optimises just the objects
//     whose read/write pattern shifted, optionally polished by a few
//     mini-GRA generations.
//
// The typical flow:
//
//	p, _ := drp.Generate(drp.NewSpec(50, 200, 0.05, 0.15), seed)
//	res, _ := drp.GRA(p, drp.DefaultGRAParams())
//	fmt.Printf("saves %.1f%% of transfer cost\n", res.Scheme.Savings())
//
// Problems can also be built from explicit topologies and patterns via
// NewProblem, or loaded from JSON via ReadProblem.
//
// # Parallelism
//
// GRAParams, AGRAParams and the experiment harness expose a Parallelism
// knob that fans cost evaluation (and, for Adapt, whole per-object
// micro-GAs) out across a pool of worker goroutines: 0 uses every core,
// 1 runs fully serial. All randomness stays on the coordinating
// goroutine — workers only evaluate — so for a fixed seed the results are
// bit-for-bit identical at every worker count.
//
// # Anytime runs
//
// Every solver has a With-variant (SRAWithOptions, GRAWith, GRAContinue,
// AdaptWith, HillClimbWith, OptimalWith) accepting RunOptions: a
// context.Context, a wall-clock Timeout, an evaluation Budget and a
// progress Observer. Interruption is checked only at generation/iteration
// boundaries, so an uninterrupted run is bit-identical to one without
// controls, a GRA run cancelled after generation g returns exactly what a
// Generations=g run would, and an interrupted run always returns the best
// valid scheme found so far. Each result's SolverStats records the
// evaluations, iterations, elapsed time and the StopReason.
package drp

import (
	"io"

	"drp/internal/agra"
	"drp/internal/baseline"
	"drp/internal/bitset"
	"drp/internal/cluster"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/netsim"
	"drp/internal/solver"
	"drp/internal/sra"
	"drp/internal/workload"
	"drp/internal/xrand"
)

// Core problem types.
type (
	// Problem is an immutable DRP instance: sites, objects, patterns,
	// capacities, primaries and the transfer cost matrix.
	Problem = core.Problem
	// ProblemConfig carries explicit inputs into NewProblem.
	ProblemConfig = core.Config
	// Scheme is a replication placement satisfying the capacity and
	// primary-copy constraints.
	Scheme = core.Scheme
	// Evaluator computes NTC for raw placement matrices.
	Evaluator = core.Evaluator
	// NearestTable tracks each site's nearest replica per object.
	NearestTable = core.NearestTable
	// PlacementBits is a raw site-major placement bit matrix, the genetic
	// algorithms' chromosome representation (see Scheme.Bits).
	PlacementBits = bitset.Set
)

// Network substrate types.
type (
	// Topology is an undirected weighted site graph.
	Topology = netsim.Topology
	// DistMatrix is an all-pairs shortest-path transfer cost matrix.
	DistMatrix = netsim.DistMatrix
)

// Workload generation types.
type (
	// Spec parameterises the paper's random instance generator.
	Spec = workload.Spec
	// ZipfSpec parameterises the Zipf-popularity workload extension.
	ZipfSpec = workload.ZipfSpec
	// ChangeSpec parameterises a read/write pattern shift.
	ChangeSpec = workload.ChangeSpec
	// Change reports one object's pattern shift.
	Change = workload.Change
)

// Algorithm parameter and result types.
type (
	// SRAOptions tunes the greedy's site-visit order.
	SRAOptions = sra.Options
	// SRAResult is the greedy's scheme plus run accounting.
	SRAResult = sra.Result
	// GRAParams are the genetic algorithm's control parameters, including
	// the Parallelism worker count (0 = all cores, 1 = serial; results are
	// identical either way).
	GRAParams = gra.Params
	// GRAResult is the genetic algorithm's outcome.
	GRAResult = gra.Result
	// AGRAParams are the adaptive micro-GA's control parameters, including
	// the Parallelism worker count for the per-object fan-out.
	AGRAParams = agra.Params
	// AdaptInput bundles one adaptation event.
	AdaptInput = agra.Input
	// AdaptResult is the adaptation outcome.
	AdaptResult = agra.Result
	// DistSRAResult is the distributed (token-passing) SRA outcome with
	// protocol-message accounting.
	DistSRAResult = sra.DistResult
	// HillClimbResult is the local-search outcome with move and evaluation
	// accounting.
	HillClimbResult = baseline.HillClimbResult
	// OptimalResult is the exhaustive search outcome; its scheme is the
	// true optimum only when the run completed.
	OptimalResult = baseline.OptimalResult
)

// Anytime solver runtime types (see the package comment's "Anytime runs").
type (
	// RunOptions carries a run's anytime controls: Context, Timeout,
	// Budget, Observer. The zero value runs open-loop to completion.
	RunOptions = solver.Run
	// SolverStats is the uniform run accounting attached to every result:
	// evaluations, iterations, elapsed and the stop reason.
	SolverStats = solver.Stats
	// SolverProgress is one per-iteration observation.
	SolverProgress = solver.Progress
	// SolverObserver receives SolverProgress events.
	SolverObserver = solver.Observer
	// ObserverFunc adapts a function to SolverObserver.
	ObserverFunc = solver.ObserverFunc
	// StopReason says why a run ended: completed, cancelled, deadline or
	// budget.
	StopReason = solver.StopReason
)

// Stop reasons.
const (
	StopCompleted = solver.StopCompleted
	StopCancelled = solver.StopCancelled
	StopDeadline  = solver.StopDeadline
	StopBudget    = solver.StopBudget
)

// SynchronizedObserver wraps an observer with a mutex for solvers that emit
// progress from concurrent workers (AdaptWith with Parallelism != 1, the
// experiment harness).
func SynchronizedObserver(o SolverObserver) SolverObserver { return solver.Synchronized(o) }

// Cluster simulation types (see ClusterRun).
type (
	// ClusterConfig drives a cluster simulation.
	ClusterConfig = cluster.Config
	// ClusterPolicy selects the simulated monitor's adaptation strategy.
	ClusterPolicy = cluster.Policy
	// ClusterFailure injects a site outage over a span of epochs.
	ClusterFailure = cluster.Failure
	// ClusterResult reports per-epoch simulation statistics.
	ClusterResult = cluster.Result
	// EpochStats is one epoch of simulated traffic.
	EpochStats = cluster.EpochStats
)

// Cluster monitor policies.
const (
	PolicyNone     = cluster.PolicyNone
	PolicySRA      = cluster.PolicySRA
	PolicyAGRA     = cluster.PolicyAGRA
	PolicyAGRAMini = cluster.PolicyAGRAMini
	PolicyGRA      = cluster.PolicyGRA
)

// NewProblem validates cfg and builds a DRP instance.
func NewProblem(cfg ProblemConfig) (*Problem, error) { return core.NewProblem(cfg) }

// ReadProblem parses a JSON-encoded problem.
func ReadProblem(r io.Reader) (*Problem, error) { return core.ReadProblem(r) }

// ReadScheme parses a JSON-encoded scheme against p.
func ReadScheme(p *Problem, r io.Reader) (*Scheme, error) { return core.ReadScheme(p, r) }

// NewScheme returns the primaries-only allocation for p.
func NewScheme(p *Problem) *Scheme { return core.NewScheme(p) }

// NewEvaluator returns a reusable NTC evaluator for raw placement matrices.
// Not safe for concurrent use; create one per goroutine.
func NewEvaluator(p *Problem) *Evaluator { return core.NewEvaluator(p) }

// RebindScheme re-validates a scheme's placements against another problem —
// typically the same system carrying new read/write patterns (see
// ApplyChange). The two problems must agree on sites, objects, sizes,
// capacities and primaries.
func RebindScheme(p *Problem, s *Scheme) (*Scheme, error) {
	return core.SchemeFromBits(p, s.Bits())
}

// SchemeFromBits rebuilds a Scheme from a raw placement matrix, validating
// both DRP constraints.
func SchemeFromBits(p *Problem, bits *PlacementBits) (*Scheme, error) {
	return core.SchemeFromBits(p, bits)
}

// NewSpec returns the paper's workload constants for M sites and N objects
// with update ratio u and capacity ratio c (fractions, e.g. 0.05 and 0.15).
func NewSpec(sites, objects int, u, c float64) Spec {
	return workload.NewSpec(sites, objects, u, c)
}

// Generate builds a random instance per the paper's Section 6.1 generator.
func Generate(spec Spec, seed uint64) (*Problem, error) {
	return workload.Generate(spec, seed)
}

// NewZipfSpec returns a workload spec with Zipf-skewed object popularity
// (skew 0 = uniform; web traces commonly fit 0.6–1.0).
func NewZipfSpec(sites, objects int, u, c, skew float64) ZipfSpec {
	return workload.NewZipfSpec(sites, objects, u, c, skew)
}

// GenerateZipf builds a random instance with Zipf-skewed popularity.
func GenerateZipf(spec ZipfSpec, seed uint64) (*Problem, error) {
	return workload.GenerateZipf(spec, seed)
}

// ApplyChange perturbs p's patterns per spec (Section 6.3) and returns the
// shifted problem plus per-object change records.
func ApplyChange(p *Problem, spec ChangeSpec, seed uint64) (*Problem, []Change, error) {
	return workload.ApplyChange(p, spec, seed)
}

// SRA runs the greedy Static Replication Algorithm with round-robin site
// visits.
func SRA(p *Problem) *SRAResult {
	return sra.Run(p, sra.Options{})
}

// SRAWithOptions runs the greedy with explicit options (e.g. random site
// order, used when seeding genetic populations).
func SRAWithOptions(p *Problem, opts SRAOptions) *SRAResult {
	return sra.Run(p, opts)
}

// SRADistributed runs the token-passing distributed SRA over one goroutine
// per site, producing the same scheme as SRA plus protocol-message counts.
func SRADistributed(p *Problem) *DistSRAResult {
	return sra.RunDistributed(p)
}

// ClusterRun simulates the distributed system serving the problem's traffic
// under the given replication scheme and monitor policy (discrete-event,
// with optional pattern drift and failure injection). A nil initial scheme
// means primaries only.
func ClusterRun(p *Problem, initial *Scheme, cfg ClusterConfig) (*ClusterResult, error) {
	return cluster.Run(p, initial, cfg)
}

// DefaultGRAParams returns the paper's tuned GRA parameters
// (Np=50, Ng=80, µc=0.9, µm=0.01).
func DefaultGRAParams() GRAParams { return gra.DefaultParams() }

// GRA runs the Genetic Replication Algorithm with SRA-seeded initialisation.
func GRA(p *Problem, params GRAParams) (*GRAResult, error) {
	return gra.Run(p, params)
}

// GRAWith is GRA under anytime controls: a run interrupted after
// generation g returns exactly what a Generations=g run would, with
// Stats.Stopped recording why it ended.
func GRAWith(p *Problem, params GRAParams, run RunOptions) (*GRAResult, error) {
	return gra.RunWith(p, params, run)
}

// GRAWithPopulation runs GRA from a caller-supplied initial population of
// placement matrices (as produced by Scheme.Bits or a previous GRAResult).
func GRAWithPopulation(p *Problem, params GRAParams, init []*PlacementBits) (*GRAResult, error) {
	return gra.RunWithPopulation(p, params, init)
}

// GRAContinue is GRAWithPopulation under anytime controls.
func GRAContinue(p *Problem, params GRAParams, init []*PlacementBits, run RunOptions) (*GRAResult, error) {
	return gra.ContinueWith(p, params, init, run)
}

// DefaultAGRAParams returns the paper's micro-GA parameters
// (Ap=10, Ag=50, crossover 0.8, mutation 0.01).
func DefaultAGRAParams() AGRAParams { return agra.DefaultParams() }

// Adapt runs the AGRA pipeline — per-object micro-GAs, transcription with
// estimator-guided capacity repair, and miniGenerations of mini-GRA polish
// (0 realises the best transcribed scheme directly).
func Adapt(in AdaptInput, params AGRAParams, mini GRAParams, miniGenerations int) (*AdaptResult, error) {
	return agra.Adapt(in, params, mini, miniGenerations)
}

// AdaptWith is Adapt under anytime controls: the micro-GAs share one
// evaluation budget, the mini-GRA inherits whatever deadline and budget
// remain, and an interrupted adaptation still returns a valid scheme built
// from the per-object results computed so far.
func AdaptWith(in AdaptInput, params AGRAParams, mini GRAParams, miniGenerations int, run RunOptions) (*AdaptResult, error) {
	return agra.AdaptWith(in, params, mini, miniGenerations, run)
}

// Baselines.

// NoReplication returns the primaries-only scheme.
func NoReplication(p *Problem) *Scheme { return baseline.NoReplication(p) }

// RandomPlacement fills sites with random valid replicas.
func RandomPlacement(p *Problem, seed uint64) *Scheme { return baseline.Random(p, seed) }

// ReadOnlyGreedy replicates by read benefit alone, ignoring update costs.
func ReadOnlyGreedy(p *Problem) *Scheme { return baseline.ReadOnlyGreedy(p) }

// Optimal exhaustively solves tiny instances (≤ maxFreeBits free placement
// bits) for ground truth.
func Optimal(p *Problem, maxFreeBits int) (*Scheme, error) {
	return baseline.Optimal(p, maxFreeBits)
}

// OptimalWith is the exhaustive search under anytime controls: when
// interrupted it returns the best scheme among the leaves enumerated so
// far, flagged by a non-completed stop reason.
func OptimalWith(p *Problem, maxFreeBits int, run RunOptions) (*OptimalResult, error) {
	return baseline.OptimalWith(p, maxFreeBits, run)
}

// HillClimb runs steepest-descent local search over single-replica
// add/remove moves from start (primaries-only if nil), stopping at a local
// optimum or after maxMoves accepted moves (0 = unbounded).
func HillClimb(p *Problem, start *Scheme, maxMoves int) *Scheme {
	return baseline.HillClimb(p, start, maxMoves).Scheme
}

// HillClimbWith is HillClimb under anytime controls, returning the full
// result with move and evaluation accounting.
func HillClimbWith(p *Problem, start *Scheme, maxMoves int, run RunOptions) *HillClimbResult {
	return baseline.HillClimbWith(p, start, maxMoves, run)
}

// Topology generators. All costs are drawn uniformly from [minCost, maxCost].

// CompleteTopology generates the paper's fully-connected network.
func CompleteTopology(n int, minCost, maxCost int64, seed uint64) *Topology {
	return netsim.CompleteUniform(n, minCost, maxCost, xrand.New(seed))
}

// RandomTopology generates a connected G(n,p)-style network.
func RandomTopology(n int, p float64, minCost, maxCost int64, seed uint64) *Topology {
	return netsim.Random(n, p, minCost, maxCost, xrand.New(seed))
}

// TreeTopology generates a random recursive tree.
func TreeTopology(n int, minCost, maxCost int64, seed uint64) *Topology {
	return netsim.Tree(n, minCost, maxCost, xrand.New(seed))
}
