// Integration tests exercising the public facade end to end: generate →
// solve → adapt → simulate, plus serialization round-trips through the API
// surface a downstream user sees.
package drp_test

import (
	"bytes"
	"testing"

	"drp"
)

func facadeProblem(t *testing.T, m, n int, u, c float64, seed uint64) *drp.Problem {
	t.Helper()
	p, err := drp.Generate(drp.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEndToEndStaticPipeline(t *testing.T) {
	p := facadeProblem(t, 15, 30, 0.05, 0.15, 1)

	sraRes := drp.SRA(p)
	if err := sraRes.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}

	params := drp.DefaultGRAParams()
	params.PopSize = 12
	params.Generations = 12
	params.Seed = 1
	graRes, err := drp.GRA(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if graRes.Cost > sraRes.Scheme.Cost() {
		slack := float64(graRes.Cost) / float64(sraRes.Scheme.Cost())
		if slack > 1.02 {
			t.Fatalf("GRA %d much worse than SRA %d", graRes.Cost, sraRes.Scheme.Cost())
		}
	}

	// Baselines bracket the heuristics.
	if drp.NoReplication(p).Cost() != p.DPrime() {
		t.Fatal("no-replication baseline broken")
	}
	if rp := drp.RandomPlacement(p, 1); rp.Validate() != nil {
		t.Fatal("random placement invalid")
	}
}

func TestEndToEndAdaptivePipeline(t *testing.T) {
	p := facadeProblem(t, 12, 24, 0.05, 0.15, 2)
	params := drp.DefaultGRAParams()
	params.PopSize = 10
	params.Generations = 8
	params.Seed = 2
	staticRes, err := drp.GRA(p, params)
	if err != nil {
		t.Fatal(err)
	}

	day, changes, err := drp.ApplyChange(p, drp.ChangeSpec{Ch: 6, ObjectShare: 0.25, ReadShare: 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	changed := make([]int, len(changes))
	for i, c := range changes {
		changed[i] = c.Object
	}

	current, err := drp.RebindScheme(day, staticRes.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	res, err := drp.Adapt(drp.AdaptInput{
		Problem:       day,
		Current:       current,
		GRAPopulation: staticRes.Population,
		Changed:       changed,
	}, drp.DefaultAGRAParams(), params, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Cost > current.Cost() {
		t.Fatalf("adaptation made things worse: %d > %d", res.Cost, current.Cost())
	}
}

func TestEndToEndClusterSimulation(t *testing.T) {
	p := facadeProblem(t, 10, 15, 0.05, 0.15, 4)
	initial := drp.SRA(p).Scheme
	graParams := drp.DefaultGRAParams()
	graParams.PopSize = 8
	graParams.Generations = 5
	cfg := drp.ClusterConfig{
		Epochs:     2,
		Policy:     drp.PolicyAGRAMini,
		Threshold:  2.0,
		Drift:      &drp.ChangeSpec{Ch: 4, ObjectShare: 0.2, ReadShare: 0.5},
		GRAParams:  graParams,
		AGRAParams: drp.DefaultAGRAParams(),
		Seed:       4,
	}
	res, err := drp.ClusterRun(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("%d epochs", len(res.Epochs))
	}
	if res.Epochs[0].ServeNTC != res.Epochs[0].ModelNTC {
		t.Fatal("simulated cost diverged from the analytic model")
	}
}

func TestDistributedSRAFacade(t *testing.T) {
	p := facadeProblem(t, 8, 12, 0.05, 0.15, 5)
	dist := drp.SRADistributed(p)
	central := drp.SRA(p)
	if !dist.Scheme.Equal(central.Scheme) {
		t.Fatal("distributed SRA differs from centralized via facade")
	}
	if dist.Messages == 0 {
		t.Fatal("no protocol messages counted")
	}
}

func TestSerializationThroughFacade(t *testing.T) {
	p := facadeProblem(t, 6, 8, 0.05, 0.2, 6)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := drp.ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	scheme := drp.SRA(p2).Scheme
	buf.Reset()
	if err := scheme.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := drp.ReadScheme(p2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cost() != scheme.Cost() {
		t.Fatal("scheme cost changed across serialization")
	}
}

func TestExplicitProblemConstruction(t *testing.T) {
	topo := drp.TreeTopology(6, 1, 5, 7)
	dist, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	reads := make([][]int64, 6)
	writes := make([][]int64, 6)
	for i := range reads {
		reads[i] = []int64{3, 1}
		writes[i] = []int64{0, 1}
	}
	p, err := drp.NewProblem(drp.ProblemConfig{
		Sizes:      []int64{4, 2},
		Capacities: []int64{10, 10, 10, 10, 10, 10},
		Primaries:  []int{0, 5},
		Reads:      reads,
		Writes:     writes,
		Dist:       dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	if drp.SRA(p).Scheme.Validate() != nil {
		t.Fatal("scheme invalid")
	}
	if opt, err := drp.Optimal(p, 12); err != nil || opt.Validate() != nil {
		t.Fatalf("optimal failed: %v", err)
	}
}

func TestOptimalBracketsHeuristicsOnTinyInstance(t *testing.T) {
	p := facadeProblem(t, 3, 4, 0.05, 0.4, 8)
	opt, err := drp.Optimal(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	params := drp.DefaultGRAParams()
	params.PopSize = 8
	params.Generations = 10
	params.Seed = 8
	graRes, err := drp.GRA(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost() > graRes.Cost || opt.Cost() > drp.SRA(p).Scheme.Cost() {
		t.Fatal("exhaustive optimum beaten by a heuristic — optimality bug")
	}
}

func TestHillClimbFacade(t *testing.T) {
	p := facadeProblem(t, 10, 14, 0.05, 0.15, 9)
	start := drp.SRA(p).Scheme
	improved := drp.HillClimb(p, start, 0)
	if improved.Validate() != nil {
		t.Fatal("hill climb scheme invalid")
	}
	if improved.Cost() > start.Cost() {
		t.Fatal("hill climb made SRA's scheme worse")
	}
}

func TestZipfFacade(t *testing.T) {
	p, err := drp.GenerateZipf(drp.NewZipfSpec(10, 30, 0.05, 0.15, 0.9), 10)
	if err != nil {
		t.Fatal(err)
	}
	res := drp.SRA(p)
	if res.Scheme.Validate() != nil {
		t.Fatal("scheme invalid on Zipf workload")
	}
	stats := res.Scheme.Stats()
	if stats.MeanDegree < 1 {
		t.Fatalf("mean degree %v < 1", stats.MeanDegree)
	}
}

func TestSchemeDiffFacade(t *testing.T) {
	p := facadeProblem(t, 8, 10, 0.05, 0.2, 11)
	a := drp.NoReplication(p)
	b := drp.SRA(p).Scheme
	added, removed := a.Diff(b)
	if len(added) != b.TotalReplicas() || len(removed) != 0 {
		t.Fatalf("diff: %d added (%d replicas), %d removed", len(added), b.TotalReplicas(), len(removed))
	}
	if a.MigrationCost(b) <= 0 && len(added) > 0 {
		t.Fatal("migration cost zero despite added replicas")
	}
}

func TestGRAPatienceFacade(t *testing.T) {
	p := facadeProblem(t, 8, 10, 0.05, 0.15, 12)
	params := drp.DefaultGRAParams()
	params.PopSize = 8
	params.Generations = 500
	params.Patience = 3
	params.Seed = 12
	res, err := drp.GRA(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) >= 501 {
		t.Fatal("patience ignored through the facade")
	}
}
