// Command drpbench regenerates the paper's evaluation figures (Section 6).
//
// Usage:
//
//	drpbench -fig 1a                 # one figure, quick preset
//	drpbench -fig all -preset paper  # full campaign at paper fidelity
//	drpbench -fig 3a -csv            # machine-readable output
//	drpbench -preset paper -timeout 5s -budget 2000000  # time-boxed GA cells
//
// Figures: 1a 1b 1c 1d (SRA/GRA savings & replicas vs sites/objects),
// 2a 2b (runtimes vs sites), 3a 3b (savings vs update ratio / capacity),
// 4a 4b 4c 4d (adaptive AGRA policies under pattern changes).
//
// Observability: -metrics-out writes a JSON snapshot of the campaign's
// solver instruments (drp_solver_* families) after all figures render;
// -events streams per-iteration solver progress as JSONL. The deterministic
// part of the snapshot is identical at any -par setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"drp/internal/experiments"
	"drp/internal/metrics"
	"drp/internal/report"
	"drp/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "drpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("drpbench", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "figure id (1a..4d) or 'all'")
		preset     = fs.String("preset", "quick", "campaign preset: quick | paper | tiny")
		networks   = fs.Int("networks", 0, "override: networks averaged per point")
		gens       = fs.Int("gens", 0, "override: GRA generations")
		pop        = fs.Int("pop", 0, "override: GRA population size")
		seed       = fs.Uint64("seed", 0, "override: campaign seed")
		par        = fs.Int("par", 0, "worker count for sweep cells (0 = all cores, 1 = serial); results are identical at any setting")
		timeout    = fs.Duration("timeout", 0, "wall-clock cap per GA run; capped runs report their best scheme so far (0 = none)")
		budget     = fs.Int("budget", 0, "cost-model evaluation cap per GA run (0 = none)")
		progress   = fs.Bool("progress", false, "stream per-generation solver progress to stderr")
		csv        = fs.Bool("csv", false, "emit CSV instead of tables")
		svgDir     = fs.String("svg", "", "also write each figure as an SVG chart into this directory")
		quiet      = fs.Bool("q", false, "suppress progress output")
		metricsOut = fs.String("metrics-out", "", "write a JSON metrics snapshot of the campaign's solver instruments to this file")
		eventsOut  = fs.String("events", "", "append structured JSONL solver events to this file")

		sparseBench   = fs.Bool("sparse-bench", false, "run the sparse-core scaling benchmark instead of the figure campaign")
		sparseSites   = fs.Int("sparse-sites", 100, "sparse bench: site count M")
		sparseObjects = fs.Int("sparse-objects", 1_000_000, "sparse bench: object count N")
		sparseShards  = fs.Int("sparse-shards", 0, "sparse bench: shard count (0 = all cores); results are identical at any setting")
		sparseSeed    = fs.Uint64("sparse-seed", 1, "sparse bench: workload seed")
		sparseAdapt   = fs.Float64("sparse-adapt", 0.01, "sparse bench: fraction of accessed objects perturbed for the adaptive round (0 = skip)")
		sparseOut     = fs.String("sparse-out", "", "sparse bench: write the JSON report to this file (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sparseBench {
		return runSparseBench(sparseBenchOpts{
			sites:   *sparseSites,
			objects: *sparseObjects,
			shards:  *sparseShards,
			seed:    *sparseSeed,
			adapt:   *sparseAdapt,
			out:     *sparseOut,
		}, stdout, stderr)
	}
	// Overrides apply when the flag was given, not when its value is
	// truthy — "-seed 0" and "-par 0" are meaningful settings, and an
	// explicit "-networks 0" should fail validation loudly rather than be
	// silently dropped.
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var cfg experiments.Config
	switch *preset {
	case "quick":
		cfg = experiments.Quick()
	case "paper":
		cfg = experiments.Paper()
	case "tiny":
		cfg = experiments.Tiny()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if set["networks"] {
		cfg.Networks = *networks
	}
	if set["gens"] {
		cfg.GRAGens = *gens
	}
	if set["pop"] {
		cfg.GRAPop = *pop
	}
	if set["seed"] {
		cfg.Seed = *seed
	}
	if set["par"] {
		cfg.Parallelism = *par
	}
	cfg.CellTimeout = *timeout
	cfg.CellBudget = *budget
	if *progress {
		// Cells run concurrently, so the observer must be synchronized.
		cfg.Observer = solver.Synchronized(solver.ObserverFunc(func(pr solver.Progress) {
			fmt.Fprintf(stderr, "%s it=%d best=%.4f evals=%d elapsed=%v\n",
				pr.Algorithm, pr.Iteration, pr.BestFitness, pr.Evaluations, pr.Elapsed.Round(time.Millisecond))
		}))
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
	}
	var events *metrics.EventLog
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		events = metrics.NewEventLog(f)
	}
	if reg != nil || events != nil {
		// The bridge is concurrency-safe by construction; only the chained
		// -progress observer (if any) needs the Synchronized wrapper it
		// already has.
		cfg.Observer = metrics.BridgeObserver(reg, events, cfg.Observer)
	}

	logFn := func(format string, a ...interface{}) {
		if !*quiet {
			fmt.Fprintf(stderr, format+"\n", a...)
		}
	}
	campaign, err := experiments.NewCampaign(cfg, logFn)
	if err != nil {
		return err
	}

	ids := experiments.FigureIDs
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
		for _, id := range ids {
			if !experiments.ValidFigure(id) && id != "summary" && id != "conv" {
				return fmt.Errorf("unknown figure %q (valid: %s, summary, conv)", id, strings.Join(experiments.FigureIDs, " "))
			}
		}
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
	}
	writeSVG := func(result *experiments.FigureResult) error {
		if *svgDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*svgDir, "fig"+result.ID+".svg"))
		if err != nil {
			return err
		}
		defer f.Close()
		return report.SVG(result, f)
	}
	for _, id := range ids {
		switch id {
		case "summary":
			result, err := experiments.RunSummary(cfg, logFn)
			if err != nil {
				return err
			}
			if err := result.Render(stdout); err != nil {
				return err
			}
			continue
		case "conv":
			result, err := experiments.RunConvergence(cfg, logFn)
			if err != nil {
				return err
			}
			if err := writeSVG(result); err != nil {
				return err
			}
			if *csv {
				if err := result.RenderCSV(stdout); err != nil {
					return err
				}
			} else if err := result.Render(stdout); err != nil {
				return err
			}
			continue
		}
		result, err := campaign.Figure(id)
		if err != nil {
			return err
		}
		if err := writeSVG(result); err != nil {
			return err
		}
		if *csv {
			if err := result.RenderCSV(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			continue
		}
		if err := result.Render(stdout); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := metrics.WriteSnapshotFile(reg, *metricsOut); err != nil {
			return err
		}
	}
	return nil
}
