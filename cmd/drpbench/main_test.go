package main

import (
	"encoding/json"
	"os"
	"path/filepath"

	"bytes"
	"strings"
	"testing"
)

func TestBenchSingleFigureTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-fig", "3b", "-q"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3b") {
		t.Fatalf("missing figure header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "GRA") {
		t.Fatal("missing GRA series")
	}
}

func TestBenchCSVOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-fig", "3b", "-csv", "-q"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "capacity %,") {
		t.Fatalf("CSV header = %q", first)
	}
}

func TestBenchFigureList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-fig", "3a,3b", "-q"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3a") || !strings.Contains(out.String(), "Figure 3b") {
		t.Fatal("figure list not honoured")
	}
}

func TestBenchOverrides(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-preset", "tiny", "-fig", "3b", "-networks", "1", "-gens", "3", "-pop", "6", "-seed", "9", "-q"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
}

// TestBenchSeedZeroOverride pins the fs.Visit override detection: an
// explicit "-seed 0" must take effect (the presets use seed 1), not be
// mistaken for "flag not given".
func TestBenchSeedZeroOverride(t *testing.T) {
	csvAt := func(args ...string) string {
		var out, errOut bytes.Buffer
		if err := run(append([]string{"-preset", "tiny", "-fig", "3b", "-csv", "-q"}, args...), &out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	base := csvAt()
	if zero := csvAt("-seed", "0"); zero == base {
		t.Fatal("-seed 0 was ignored")
	}
	if one := csvAt("-seed", "1"); one != base {
		t.Fatal("-seed 1 should reproduce the tiny preset's default seed")
	}
}

// TestBenchExplicitZeroNetworksRejected: an explicit nonsense override
// should fail validation loudly instead of being silently dropped.
func TestBenchExplicitZeroNetworksRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-fig", "3b", "-networks", "0", "-q"}, &out, &errOut); err == nil {
		t.Fatal("-networks 0 accepted")
	}
}

// TestBenchParallelMatchesSerial runs the deterministic capacity sweep at
// two worker counts end to end through the CLI and compares the CSV bytes.
func TestBenchParallelMatchesSerial(t *testing.T) {
	csvAt := func(par string) string {
		var out, errOut bytes.Buffer
		if err := run([]string{"-preset", "tiny", "-fig", "3b", "-csv", "-q", "-par", par}, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := csvAt("1")
	if parallel := csvAt("3"); parallel != serial {
		t.Fatalf("-par 3 CSV diverged from -par 1:\n%s\nvs\n%s", parallel, serial)
	}
}

func TestBenchRejectsBadInput(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "warp"}, &out, &errOut); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run([]string{"-fig", "9z"}, &out, &errOut); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestBenchProgressGoesToStderr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-fig", "3b"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "fig3b") {
		t.Fatalf("progress missing from stderr: %q", errOut.String())
	}
	if strings.Contains(out.String(), "fig3b:") {
		t.Fatal("progress leaked into stdout")
	}
}

func TestBenchSummaryAndConvergence(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-fig", "summary", "-q"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Algorithm comparison") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-preset", "tiny", "-fig", "conv", "-q"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "convergence") {
		t.Fatalf("convergence missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-preset", "tiny", "-fig", "conv", "-csv", "-q"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "generation,") {
		t.Fatalf("convergence CSV header wrong: %q", strings.SplitN(out.String(), "\n", 2)[0])
	}
}

func TestBenchSVGOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "tiny", "-fig", "3b", "-q", "-svg", dir}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3b.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("SVG output malformed")
	}
}

func TestBenchSparseMode(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_sparse.json")
	var out, errOut bytes.Buffer
	err := run([]string{"-sparse-bench", "-sparse-sites", "12", "-sparse-objects", "400",
		"-sparse-shards", "2", "-sparse-out", outPath}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep sparseBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Schema != "drp-bench-sparse/1" || rep.N != 400 || rep.M != 12 {
		t.Fatalf("unexpected report header: %+v", rep)
	}
	if rep.SolveCost > rep.DPrime || rep.SolveEvals == 0 || rep.PeakRSSBytes <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.AdaptEvals == 0 || rep.AdaptCost <= 0 {
		t.Fatalf("adapt round missing from report: %+v", rep)
	}
}
