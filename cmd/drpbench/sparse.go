package main

// The sparse-core scaling benchmark (-sparse-bench): generate a
// million-object-class instance directly in the compressed representation,
// run the sharded sparse solve plus one adaptive round, and report
// throughput and peak memory as JSON (BENCH_sparse.json in CI). This is the
// evidence for ROADMAP item 3's "N ≈ 10^6 within minutes" claim, so the
// numbers come from the real solver entry points, not a microbenchmark.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"drp/internal/solver"
	"drp/internal/sparse"
)

// sparseBenchOpts carries the -sparse-* flags.
type sparseBenchOpts struct {
	sites   int
	objects int
	shards  int
	seed    uint64
	adapt   float64
	out     string
}

// sparseBenchReport is the JSON document the CI job archives and gates on.
type sparseBenchReport struct {
	Schema     string `json:"schema"`
	M          int    `json:"m"`
	N          int    `json:"n"`
	Shards     int    `json:"shards"`
	Seed       uint64 `json:"seed"`
	ReadNNZ    int    `json:"read_nnz"`
	WriteNNZ   int    `json:"write_nnz"`
	Candidates int    `json:"candidates"`

	DPrime        int64   `json:"d_prime"`
	SolveCost     int64   `json:"solve_cost"`
	SolveSavings  float64 `json:"solve_savings_pct"`
	SolveReplicas int     `json:"solve_replicas"`
	SolveEvals    int     `json:"solve_evals"`
	SolveMillis   int64   `json:"solve_millis"`
	EvalsPerSec   float64 `json:"evals_per_sec"`

	AdaptChanged int   `json:"adapt_changed"`
	AdaptCost    int64 `json:"adapt_cost"`
	AdaptEvals   int   `json:"adapt_evals"`
	AdaptMillis  int64 `json:"adapt_millis"`

	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// runSparseBench executes the benchmark and writes the report.
func runSparseBench(opts sparseBenchOpts, stdout, stderr io.Writer) error {
	logf := func(format string, a ...interface{}) { fmt.Fprintf(stderr, format+"\n", a...) }
	spec := sparse.NewWorkloadSpec(opts.sites, opts.objects)
	logf("generating %d×%d sparse instance (seed %d)…", opts.sites, opts.objects, opts.seed)
	genStart := time.Now()
	mo, err := sparse.GenerateWorkload(spec, opts.seed)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	readNNZ, writeNNZ := mo.AccessEntries()
	logf("generated in %v: %d read entries, %d write entries, %d candidate sites",
		time.Since(genStart).Round(time.Millisecond), readNNZ, writeNNZ, mo.CandidateCount())

	logf("solving with %d shards…", opts.shards)
	solveStart := time.Now()
	res, err := sparse.Solve(mo, sparse.SolveParams{Shards: opts.shards}, solver.Run{})
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	solveElapsed := time.Since(solveStart)
	logf("solved in %v: D=%d (D′=%d, %.2f%% savings), %d replicas, %d evaluations",
		solveElapsed.Round(time.Millisecond), res.Cost, mo.DPrime(), mo.Savings(res.Cost),
		res.Assignment.TotalReplicas(), res.Stats.Evaluations)

	report := sparseBenchReport{
		Schema:        "drp-bench-sparse/1",
		M:             opts.sites,
		N:             opts.objects,
		Shards:        opts.shards,
		Seed:          opts.seed,
		ReadNNZ:       readNNZ,
		WriteNNZ:      writeNNZ,
		Candidates:    mo.CandidateCount(),
		DPrime:        mo.DPrime(),
		SolveCost:     res.Cost,
		SolveSavings:  mo.Savings(res.Cost),
		SolveReplicas: res.Assignment.TotalReplicas(),
		SolveEvals:    res.Stats.Evaluations,
		SolveMillis:   solveElapsed.Milliseconds(),
	}
	if secs := solveElapsed.Seconds(); secs > 0 {
		report.EvalsPerSec = float64(res.Stats.Evaluations) / secs
	}

	if opts.adapt > 0 {
		shifted, changed, err := sparse.PerturbWorkload(mo, spec, opts.adapt, opts.seed+1)
		if err != nil {
			return fmt.Errorf("perturb: %w", err)
		}
		carried, err := carryAssignment(shifted, res.Assignment)
		if err != nil {
			return fmt.Errorf("carry: %w", err)
		}
		logf("adapting %d changed objects…", len(changed))
		adaptStart := time.Now()
		ares, err := sparse.Adapt(shifted, carried, changed, sparse.SolveParams{Shards: opts.shards}, solver.Run{})
		if err != nil {
			return fmt.Errorf("adapt: %w", err)
		}
		adaptElapsed := time.Since(adaptStart)
		logf("adapted in %v: D=%d, %d evaluations",
			adaptElapsed.Round(time.Millisecond), ares.Cost, ares.Stats.Evaluations)
		report.AdaptChanged = len(changed)
		report.AdaptCost = ares.Cost
		report.AdaptEvals = ares.Stats.Evaluations
		report.AdaptMillis = adaptElapsed.Milliseconds()
	}

	report.PeakRSSBytes = peakRSS()

	var w io.Writer = stdout
	if opts.out != "" {
		f, err := os.Create(opts.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}

// carryAssignment rebinds an assignment onto a perturbed model that shares
// sizes, capacities and primaries, replaying every non-primary replica.
func carryAssignment(mo *sparse.Model, a *sparse.Assignment) (*sparse.Assignment, error) {
	out := sparse.NewAssignment(mo)
	for k := 0; k < mo.Objects(); k++ {
		for _, i := range a.Replicators(k) {
			if i == mo.Primary(k) {
				continue
			}
			if err := out.Add(int(i), k); err != nil {
				return nil, fmt.Errorf("object %d site %d: %w", k, i, err)
			}
		}
	}
	return out, nil
}

// peakRSS returns the process's peak resident set in bytes: VmHWM from
// /proc/self/status where available (Linux), else the Go runtime's
// OS-reserved total as a coarse upper bound.
func peakRSS() int64 {
	if f, err := os.Open("/proc/self/status"); err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
