package main

// Golden determinism test: the quick-preset Figure 1a campaign is pinned
// byte for byte. Any change to the generator, the solvers, the parallel
// sweep reduction or the CSV renderer that moves a single digit fails here
// — and the -par 1 vs -par 8 comparison pins that the worker fan-out is
// pure plumbing, not a source of nondeterminism.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"drp/internal/metrics"
)

// benchCSV runs the quick fig-1a campaign at the given parallelism and
// returns the CSV bytes plus the JSON of the run's deterministic metric
// snapshot (counters and histograms, minus wall-clock series).
func benchCSV(t *testing.T, par string) ([]byte, string) {
	t.Helper()
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	var out, errOut bytes.Buffer
	args := []string{"-preset", "quick", "-fig", "1a", "-csv", "-q", "-par", par, "-metrics-out", metricsPath}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	snap, err := metrics.ReadSnapshotFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	det, err := json.Marshal(snap.Deterministic())
	if err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), string(det)
}

func TestQuickFig1aMatchesGoldenAtAnyParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	goldenPath := filepath.Join("testdata", "quick-fig1a.golden.csv")
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	serial, serialMetrics := benchCSV(t, "1")
	if !bytes.Equal(serial, golden) {
		t.Errorf("-par 1 output deviates from %s:\ngot:\n%s\nwant:\n%s", goldenPath, serial, golden)
	}
	wide, wideMetrics := benchCSV(t, "8")
	if !bytes.Equal(wide, serial) {
		t.Errorf("-par 8 output differs from -par 1:\n-par 8:\n%s\n-par 1:\n%s", wide, serial)
	}
	// The parity extends to telemetry: the instrumented campaign's
	// deterministic metric snapshot is identical at any worker count.
	if wideMetrics != serialMetrics {
		t.Errorf("-par 8 metric snapshot differs from -par 1:\n-par 8:\n%s\n-par 1:\n%s", wideMetrics, serialMetrics)
	}
	if serialMetrics == `{"instruments":null}` || serialMetrics == `{"instruments":[]}` {
		t.Error("instrumented campaign produced an empty deterministic snapshot")
	}
}
