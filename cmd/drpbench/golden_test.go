package main

// Golden determinism test: the quick-preset Figure 1a campaign is pinned
// byte for byte. Any change to the generator, the solvers, the parallel
// sweep reduction or the CSV renderer that moves a single digit fails here
// — and the -par 1 vs -par 8 comparison pins that the worker fan-out is
// pure plumbing, not a source of nondeterminism.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func benchCSV(t *testing.T, par string) []byte {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run([]string{"-preset", "quick", "-fig", "1a", "-csv", "-q", "-par", par}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestQuickFig1aMatchesGoldenAtAnyParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	goldenPath := filepath.Join("testdata", "quick-fig1a.golden.csv")
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	serial := benchCSV(t, "1")
	if !bytes.Equal(serial, golden) {
		t.Errorf("-par 1 output deviates from %s:\ngot:\n%s\nwant:\n%s", goldenPath, serial, golden)
	}
	wide := benchCSV(t, "8")
	if !bytes.Equal(wide, serial) {
		t.Errorf("-par 8 output differs from -par 1:\n-par 8:\n%s\n-par 1:\n%s", wide, serial)
	}
}
