// Command drpcluster simulates a distributed system serving reads and
// writes under the paper's replication policy, with a monitor site
// re-optimising the replication scheme each epoch while the read/write
// patterns drift.
//
// Usage:
//
//	drpcluster -sites 20 -objects 60 -epochs 6 -policy agra+mini -drift 0.2
//	drpcluster -policy none -fail-site 3 -fail-from 2 -fail-to 4
//	drpcluster -fault-plan plan.json    # crash events become epoch outages
//	drpcluster -data-dir /var/lib/drp   # journal the scheme, resume on rerun
//
// It prints one row per epoch: measured serving cost versus the analytic
// model, migrations, failures and savings, then a one-line summary.
//
// With -data-dir the monitor journals its deployed scheme after every epoch
// (see drp/internal/store.Journal); a rerun on the same directory starts
// from the last recorded scheme instead of the greedy seed, so a monitor
// killed between epochs loses no placement decision.
//
// Observability: -listen-metrics serves live Prometheus text at /metrics
// (plus /debug/vars and /debug/pprof) while the simulation runs; -serve-for
// keeps the endpoint up after the last epoch so a scraper can collect the
// final state. -metrics-out snapshots the same registry to a JSON file and
// -events streams per-epoch and per-adaptation JSONL events.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"drp/internal/agra"
	"drp/internal/cluster"
	"drp/internal/core"
	"drp/internal/fault"
	"drp/internal/gra"
	"drp/internal/metrics"
	"drp/internal/netnode"
	"drp/internal/plan"
	"drp/internal/spans"
	"drp/internal/sra"
	"drp/internal/store"
	"drp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpcluster:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("drpcluster", flag.ContinueOnError)
	var (
		sites     = fs.Int("sites", 20, "number of sites")
		objects   = fs.Int("objects", 60, "number of objects")
		update    = fs.Float64("update", 0.05, "update ratio U")
		capacity  = fs.Float64("capacity", 0.15, "capacity ratio C")
		epochs    = fs.Int("epochs", 6, "measurement periods to simulate")
		policy    = fs.String("policy", "agra+mini", "monitor policy: none | sra | agra | agra+mini | gra")
		drift     = fs.Float64("drift", 0.2, "share of objects changing pattern each epoch (0 disables)")
		driftCh   = fs.Float64("drift-ch", 6.0, "pattern change magnitude (6.0 = +600%)")
		driftR    = fs.Float64("drift-reads", 0.5, "share of drifting objects whose reads (vs updates) grow")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		adaptTO   = fs.Duration("adapt-timeout", 0, "wall-clock cap per epoch re-optimisation; a missed deadline keeps the current scheme (0 = none)")
		adaptBud  = fs.Int("adapt-budget", 0, "cost-model evaluation cap per epoch re-optimisation (0 = none)")
		failSite  = fs.Int("fail-site", -1, "site to take offline (-1 disables)")
		failFrom  = fs.Int("fail-from", 0, "first failed epoch")
		failTo    = fs.Int("fail-to", 0, "one past the last failed epoch")
		faultPlan = fs.String("fault-plan", "", "derive site outages from this fault plan JSON (crash events map to epoch windows; other kinds are wire-level and ignored here)")
		compare   = fs.Bool("compare", false, "run every policy on identical traffic and print a comparison table")

		dataDir   = fs.String("data-dir", "", "journal the monitor's deployed scheme after every epoch to this directory; a rerun resumes from the last recorded scheme instead of re-seeding")
		fsync     = fs.String("fsync", "always", `journal fsync policy: "always", "never" or "every:N" (requires -data-dir)`)
		snapEvery = fs.Int("snapshot-every", 0, "compact the journal every N recorded epochs (0 = never; requires -data-dir)")

		listenMetrics = fs.String("listen-metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:0)")
		serveFor      = fs.Duration("serve-for", 0, "keep the metrics endpoint up this long after the run (0 = exit immediately)")
		metricsOut    = fs.String("metrics-out", "", "write a JSON metrics snapshot to this file")
		eventsOut     = fs.String("events", "", "append structured JSONL events to this file")
		planOut       = fs.String("plan-out", "", "write the scheme in force after the last epoch as a canonical placement-plan JSON to this file")
		blockRate     = fs.Int("block-profile-rate", 0, "sample goroutine blocking events at this rate (ns) for /debug/pprof/block (0 = off; requires -listen-metrics)")
		mutexFrac     = fs.Int("mutex-profile-fraction", 0, "sample 1/N mutex contention events for /debug/pprof/mutex (0 = off; requires -listen-metrics)")

		traceOut    = fs.String("trace-out", "", "record one JSON span per line to this file: an epoch root with adapt and serve children per measurement period (analyse with drptrace)")
		traceSample = fs.Int64("trace-sample", 1, "trace every nth epoch (deterministic counter, not probability; requires -trace-out)")
		traceClock  = fs.String("trace-clock", "logical", `span timestamp source: "logical" (deterministic ticks) or "wall" (real durations; requires -trace-out)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(flagState{
		sites: *sites, drift: *drift, driftR: *driftR,
		failSite: *failSite, failFrom: *failFrom, failTo: *failTo,
		dataDir: *dataDir, fsync: *fsync, snapEvery: *snapEvery,
		listenMetrics: *listenMetrics, serveFor: *serveFor,
		compare: *compare, planOut: *planOut,
		blockRate: *blockRate, mutexFrac: *mutexFrac,
		traceOut: *traceOut, traceSample: *traceSample, traceClock: *traceClock,
	}); err != nil {
		return err
	}

	policies := map[string]cluster.Policy{
		"none":      cluster.PolicyNone,
		"sra":       cluster.PolicySRA,
		"agra":      cluster.PolicyAGRA,
		"agra+mini": cluster.PolicyAGRAMini,
		"gra":       cluster.PolicyGRA,
	}
	pol, ok := policies[*policy]
	if !ok {
		return fmt.Errorf("unknown policy %q", *policy)
	}

	p, err := workload.Generate(workload.NewSpec(*sites, *objects, *update, *capacity), *seed)
	if err != nil {
		return err
	}
	initial := sra.Run(p, sra.Options{}).Scheme

	var journal *store.Journal
	if *dataDir != "" {
		syncPolicy, every, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		journal, err = store.OpenJournal(*dataDir, store.Options{
			Sync:          syncPolicy,
			SyncEvery:     every,
			SnapshotEvery: *snapEvery,
		})
		if err != nil {
			return err
		}
		defer journal.Close()
		if epoch, repl, ok := journal.Latest(); ok {
			resumed, err := schemeFromReplicators(p, repl)
			if err != nil {
				return fmt.Errorf("journal %s: %w", *dataDir, err)
			}
			initial = resumed
			fmt.Fprintf(stdout, "resuming from journal: scheme of epoch %d (%d replicas)\n",
				epoch, initial.TotalReplicas())
		}
	}

	graParams := gra.DefaultParams()
	graParams.PopSize = 20
	graParams.Generations = 20
	cfg := cluster.Config{
		Epochs:       *epochs,
		Policy:       pol,
		Threshold:    2.0,
		GRAParams:    graParams,
		AGRAParams:   agra.DefaultParams(),
		Seed:         *seed,
		EpochTimeout: *adaptTO,
		AdaptBudget:  *adaptBud,
	}
	if *drift > 0 {
		cfg.Drift = &workload.ChangeSpec{Ch: *driftCh, ObjectShare: *drift, ReadShare: *driftR}
	}
	if *failSite >= 0 {
		cfg.Failures = []cluster.Failure{{Site: *failSite, From: *failFrom, To: *failTo}}
	}
	if journal != nil {
		cfg.OnEpoch = func(epoch int, scheme *core.Scheme, _ *cluster.EpochStats) error {
			repl := make([][]int, p.Objects())
			for k := range repl {
				repl[k] = scheme.Replicators(k)
			}
			return journal.Record(epoch, repl)
		}
	}
	if *faultPlan != "" {
		plan, err := fault.LoadPlan(*faultPlan, p.Sites())
		if err != nil {
			return err
		}
		// The epoch simulator's unit of time is the epoch, not the request
		// step, so crash windows translate directly: [Step, Until) epochs.
		// An open-ended crash (Until 0) lasts to the end of the run unless a
		// restart event closes it.
		for _, e := range plan.Events {
			if e.Kind != fault.KindCrash {
				continue
			}
			to := int(e.Until)
			if to == 0 {
				to = *epochs
				for _, r := range plan.Events {
					if r.Kind == fault.KindRestart && r.Site == e.Site && r.Step >= e.Step && int(r.Step) < to {
						to = int(r.Step)
					}
				}
			}
			cfg.Failures = append(cfg.Failures, cluster.Failure{Site: e.Site, From: int(e.Step), To: to})
		}
	}

	var reg *metrics.Registry
	if *listenMetrics != "" || *metricsOut != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Events = metrics.NewEventLog(f)
	}
	if *traceOut != "" {
		// Spans stream to the JSONL file and, when -events is also set,
		// interleave into the event sink as "span" records.
		tracer, closeTrace, terr := spans.OpenFile(*traceOut, *traceSample, *traceClock, spans.NewEventExporter(cfg.Events))
		if terr != nil {
			return terr
		}
		defer func() {
			if cerr := closeTrace(); cerr != nil && err == nil {
				err = fmt.Errorf("trace file %s: %w", *traceOut, cerr)
			}
		}()
		cfg.Tracer = tracer
		fmt.Fprintf(stdout, "tracing epochs to %s (sample 1/%d, %s clock)\n", *traceOut, *traceSample, *traceClock)
	}
	if *listenMetrics != "" {
		metrics.EnableRuntimeProfiles(*blockRate, *mutexFrac)
		// Expose the full metric surface from the first scrape: families a
		// quiet run never touches still appear, at zero.
		metrics.RegisterSolverFamilies(reg, pol.String())
		cluster.RegisterMetricFamilies(reg)
		netnode.RegisterMetricFamilies(reg)
		srv, err := metrics.Serve(*listenMetrics, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", srv.Addr())
		if *serveFor > 0 {
			defer time.Sleep(*serveFor)
		}
	}

	if *compare {
		cmp, err := cluster.Compare(p, initial, cfg, []cluster.Policy{
			cluster.PolicyNone, cluster.PolicySRA, cluster.PolicyAGRA,
			cluster.PolicyAGRAMini, cluster.PolicyGRA,
		})
		if err != nil {
			return err
		}
		return cmp.Render(stdout)
	}

	res, err := cluster.Run(p, initial, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "cluster: %d sites, %d objects, policy=%s, drift=%.0f%%/epoch\n\n",
		*sites, *objects, pol, 100**drift)
	fmt.Fprintf(stdout, "%5s %9s %8s %12s %12s %7s %9s %8s %8s %8s %8s %9s\n",
		"epoch", "reads", "writes", "serveNTC", "modelNTC", "saved%", "meanRead", "p50Read", "p95Read", "migrate", "changed", "failures")
	degraded := 0
	for _, e := range res.Epochs {
		mark := ""
		if e.AdaptDegraded {
			mark = " *"
			degraded++
		}
		fmt.Fprintf(stdout, "%5d %9d %8d %12d %12d %7.2f %9.1f %8d %8d %8d %8d %9d%s\n",
			e.Epoch, e.Reads, e.Writes, e.ServeNTC, e.ModelNTC, e.Savings,
			e.MeanReadCost, e.ReadCostP50, e.ReadCostP95, e.Migrations, e.Changed, e.FailedReads+e.FailedWrites, mark)
	}
	fmt.Fprintf(stdout, "\nsummary: epochs=%d degraded=%d migrations=%d migrationNTC=%d serveNTC=%d total NTC (serve+migrate)=%d\n",
		len(res.Epochs), res.DegradedEpochs(), res.TotalMigrations(), res.TotalMigrationNTC(), res.TotalServeNTC(), res.TotalNTC())
	if degraded > 0 {
		fmt.Fprintf(stdout, "adapt misses (*): %d epoch(s) kept the previous scheme after hitting the re-optimisation cap\n", degraded)
	}
	if *metricsOut != "" {
		if err := metrics.WriteSnapshotFile(reg, *metricsOut); err != nil {
			return err
		}
	}
	if *planOut != "" {
		data, err := plan.FromScheme(res.FinalScheme).Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote final scheme as a placement plan to %s\n", *planOut)
	}
	return nil
}

// flagState carries the parsed flags validateFlags cross-checks.
type flagState struct {
	sites              int
	drift, driftR      float64
	failSite, failFrom int
	failTo             int
	dataDir, fsync     string
	snapEvery          int
	listenMetrics      string
	serveFor           time.Duration
	compare            bool
	planOut            string
	blockRate          int
	mutexFrac          int
	traceOut           string
	traceSample        int64
	traceClock         string
}

// validateFlags rejects flag combinations that would otherwise be
// silently ignored or quietly do something other than what was asked.
func validateFlags(f flagState) error {
	if f.drift < 0 || f.drift > 1 {
		return fmt.Errorf("-drift %g: the share of drifting objects must be within [0, 1]", f.drift)
	}
	if f.driftR < 0 || f.driftR > 1 {
		return fmt.Errorf("-drift-reads %g: the read share must be within [0, 1]", f.driftR)
	}
	if f.failSite < 0 && (f.failFrom != 0 || f.failTo != 0) {
		return fmt.Errorf("-fail-from/-fail-to schedule an outage window and need -fail-site")
	}
	if f.failSite >= f.sites {
		return fmt.Errorf("-fail-site %d is outside the %d-site system", f.failSite, f.sites)
	}
	if f.failSite >= 0 && f.failTo <= f.failFrom {
		return fmt.Errorf("-fail-site %d has an empty outage window [%d, %d); -fail-to must exceed -fail-from", f.failSite, f.failFrom, f.failTo)
	}
	if f.dataDir == "" {
		if f.snapEvery > 0 {
			return fmt.Errorf("-snapshot-every compacts the journal and needs -data-dir")
		}
		if f.fsync != "always" {
			return fmt.Errorf("-fsync sets the journal sync policy and needs -data-dir")
		}
	}
	if f.compare {
		if f.dataDir != "" {
			return fmt.Errorf("-compare runs every policy on the same traffic and cannot journal a single scheme history; drop -data-dir")
		}
		if f.planOut != "" {
			return fmt.Errorf("-compare produces one scheme per policy; -plan-out needs a single-policy run")
		}
	}
	if f.serveFor > 0 && f.listenMetrics == "" {
		return fmt.Errorf("-serve-for keeps the metrics endpoint alive and needs -listen-metrics")
	}
	if f.listenMetrics == "" && (f.blockRate > 0 || f.mutexFrac > 0) {
		return fmt.Errorf("-block-profile-rate/-mutex-profile-fraction feed /debug/pprof and need -listen-metrics")
	}
	if f.blockRate < 0 || f.mutexFrac < 0 {
		return fmt.Errorf("profile sampling rates cannot be negative")
	}
	if f.traceOut == "" {
		if f.traceSample != 1 {
			return fmt.Errorf("-trace-sample selects traced epochs and needs -trace-out")
		}
		if f.traceClock != "logical" {
			return fmt.Errorf("-trace-clock sets the span clock and needs -trace-out")
		}
	}
	if f.compare && f.traceOut != "" {
		return fmt.Errorf("-compare interleaves every policy's epochs; -trace-out needs a single-policy run")
	}
	return nil
}

// schemeFromReplicators rebuilds a deployed scheme from the journal's
// per-object replicator lists, validating against the current problem: a
// journal recorded for a different workload shape is rejected rather than
// silently mis-deployed.
func schemeFromReplicators(p *core.Problem, repl [][]int) (*core.Scheme, error) {
	if len(repl) != p.Objects() {
		return nil, fmt.Errorf("recorded scheme covers %d objects, problem has %d", len(repl), p.Objects())
	}
	s := core.NewScheme(p)
	for k, sites := range repl {
		for _, i := range sites {
			if i < 0 || i >= p.Sites() {
				return nil, fmt.Errorf("recorded scheme places object %d at site %d, out of range", k, i)
			}
			if s.Has(i, k) {
				continue // the primary, which NewScheme already placed
			}
			if err := s.Add(i, k); err != nil {
				return nil, fmt.Errorf("recorded scheme places object %d at site %d: %w", k, i, err)
			}
		}
	}
	return s, nil
}
