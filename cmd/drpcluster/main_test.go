package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"drp/internal/metrics"
)

func TestClusterRunsAllPolicies(t *testing.T) {
	for _, policy := range []string{"none", "sra", "agra", "agra+mini"} {
		var out bytes.Buffer
		err := run([]string{
			"-sites", "8", "-objects", "12", "-epochs", "2",
			"-policy", policy, "-drift", "0.2",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(out.String(), "total NTC") {
			t.Fatalf("%s output missing total:\n%s", policy, out.String())
		}
	}
}

func TestClusterFailureInjection(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-sites", "6", "-objects", "8", "-epochs", "2", "-policy", "none",
		"-drift", "0", "-fail-site", "0", "-fail-from", "1", "-fail-to", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "failures") {
		t.Fatal("missing failures column")
	}
}

func TestClusterUnknownPolicy(t *testing.T) {
	if err := run([]string{"-policy", "chaos"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestClusterBadWorkload(t *testing.T) {
	if err := run([]string{"-sites", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("zero sites accepted")
	}
}

func TestClusterSummaryAndTelemetryFiles(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	eventsPath := filepath.Join(dir, "events.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-sites", "8", "-objects", "12", "-epochs", "3", "-policy", "agra+mini",
		"-drift", "0.2", "-metrics-out", metricsPath, "-events", eventsPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// The end-of-run summary reports every aggregate on one line.
	summary := regexp.MustCompile(`summary: epochs=3 degraded=\d+ migrations=\d+ migrationNTC=\d+ serveNTC=\d+ total NTC \(serve\+migrate\)=\d+`)
	if !summary.MatchString(out.String()) {
		t.Errorf("missing or malformed summary line:\n%s", out.String())
	}

	snap, err := metrics.ReadSnapshotFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var epochs float64
	for _, is := range snap.Instruments {
		if is.Name == "drp_cluster_epochs_total" {
			epochs = is.Value
		}
	}
	if epochs != 3 {
		t.Errorf("snapshot epochs counter = %v, want 3", epochs)
	}

	eventsData, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(eventsData), `"event":"cluster.epoch"`); got != 3 {
		t.Errorf("event log has %d cluster.epoch records, want 3:\n%s", got, eventsData)
	}
}

// TestClusterListenMetricsServes scrapes the live endpoint while the CLI
// runs: the acceptance criterion that -listen-metrics 127.0.0.1:0 serves
// Prometheus text carrying solver, cluster-epoch and netnode families.
func TestClusterListenMetricsServes(t *testing.T) {
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-sites", "6", "-objects", "8", "-epochs", "2", "-policy", "agra+mini",
			"-drift", "0.2", "-listen-metrics", "127.0.0.1:0", "-serve-for", "2s",
		}, out)
	}()

	// The address line is printed before the simulation starts.
	addrRE := regexp.MustCompile(`metrics: http://([^/\s]+)/metrics`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("metrics address never printed:\n%s", out.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	for _, family := range []string{
		"drp_solver_runs_total", "drp_solver_iterations_total",
		"drp_cluster_epochs_total", "drp_cluster_serve_ntc_total",
		"drp_net_messages_total",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(string(body), "# TYPE drp_cluster_epochs_total counter") {
		t.Errorf("/metrics missing TYPE metadata:\n%.2000s", body)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drpcluster run did not finish")
	}
}

// syncBuffer lets the test read CLI output while run() is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestClusterCompareMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sites", "6", "-objects", "10", "-epochs", "2", "-drift", "0.2", "-compare"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"none", "sra", "agra", "agra+mini", "gra"} {
		if !strings.Contains(out.String(), policy) {
			t.Fatalf("comparison missing policy %s:\n%s", policy, out.String())
		}
	}
}

func TestClusterJournalResumes(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-sites", "8", "-objects", "12", "-epochs", "2", "-policy", "agra",
		"-drift", "0.2", "-data-dir", dir, "-fsync", "never", "-snapshot-every", "4",
	}

	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(first.String(), "resuming from journal") {
		t.Fatalf("fresh run claimed to resume:\n%s", first.String())
	}

	// The rerun must start from the last recorded epoch's scheme, not the
	// greedy seed.
	var second bytes.Buffer
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "resuming from journal: scheme of epoch 1") {
		t.Fatalf("rerun did not resume from the journal:\n%s", second.String())
	}
	if !strings.Contains(second.String(), "total NTC") {
		t.Fatalf("resumed run incomplete:\n%s", second.String())
	}
}

func TestClusterJournalFlagConflicts(t *testing.T) {
	if err := run([]string{"-sites", "6", "-objects", "8", "-epochs", "1",
		"-compare", "-data-dir", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Fatal("-compare with -data-dir accepted")
	}
	if err := run([]string{"-sites", "6", "-objects", "8", "-epochs", "1",
		"-snapshot-every", "4"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-snapshot-every without -data-dir accepted")
	}
	if err := run([]string{"-sites", "6", "-objects", "8", "-epochs", "1",
		"-data-dir", t.TempDir(), "-fsync", "sometimes"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

func TestClusterFaultPlanMapsCrashesToEpochOutages(t *testing.T) {
	plan := `{"seed":1,"events":[
		{"kind":"crash","site":0,"step":1,"until":2},
		{"kind":"crash","site":2,"step":0},
		{"kind":"restart","site":2,"step":1},
		{"kind":"latency","site":1,"step":0,"until":2,"delay_ms":5}
	]}`
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-sites", "6", "-objects", "8", "-epochs", "2", "-policy", "none",
		"-drift", "0", "-fault-plan", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// The crash windows must surface as failed requests: site 0 is down in
	// epoch 1 and site 2 in epoch 0 (its restart at step 1 closes the
	// open-ended crash), so both epoch rows end with a nonzero failure count.
	rows := regexp.MustCompile(`(?m)^\s+(\d+)\s+.*?(\d+)\s*$`).FindAllStringSubmatch(out.String(), -1)
	var totalFailures int64
	for _, row := range rows {
		n, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			t.Fatalf("unparseable failures column %q", row[2])
		}
		totalFailures += n
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 epoch rows, got %d:\n%s", len(rows), out.String())
	}
	if totalFailures == 0 {
		t.Fatalf("fault plan crashes produced no failed requests:\n%s", out.String())
	}
}

func TestClusterFaultPlanRejectsBadPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed":1,"events":[{"kind":"crash","site":77,"step":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-sites", "4", "-objects", "6", "-epochs", "1", "-policy", "none", "-drift", "0", "-fault-plan", path}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("out-of-range fault plan accepted")
	}
}
