package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestClusterRunsAllPolicies(t *testing.T) {
	for _, policy := range []string{"none", "sra", "agra", "agra+mini"} {
		var out bytes.Buffer
		err := run([]string{
			"-sites", "8", "-objects", "12", "-epochs", "2",
			"-policy", policy, "-drift", "0.2",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(out.String(), "total NTC") {
			t.Fatalf("%s output missing total:\n%s", policy, out.String())
		}
	}
}

func TestClusterFailureInjection(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-sites", "6", "-objects", "8", "-epochs", "2", "-policy", "none",
		"-drift", "0", "-fail-site", "0", "-fail-from", "1", "-fail-to", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "failures") {
		t.Fatal("missing failures column")
	}
}

func TestClusterUnknownPolicy(t *testing.T) {
	if err := run([]string{"-policy", "chaos"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestClusterBadWorkload(t *testing.T) {
	if err := run([]string{"-sites", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("zero sites accepted")
	}
}

func TestClusterCompareMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sites", "6", "-objects", "10", "-epochs", "2", "-drift", "0.2", "-compare"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"none", "sra", "agra", "agra+mini", "gra"} {
		if !strings.Contains(out.String(), policy) {
			t.Fatalf("comparison missing policy %s:\n%s", policy, out.String())
		}
	}
}
