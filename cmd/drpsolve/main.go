// Command drpsolve solves a Data Replication Problem instance (JSON, as
// produced by drpgen) with one of the implemented algorithms and reports
// the resulting scheme's quality.
//
// Usage:
//
//	drpsolve -algo gra -in problem.json -out scheme.json
//	drpsolve -algo sra -in problem.json
//
// Algorithms: sra, gra, random, readonly, none, optimal (tiny instances).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"drp"
	"drp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpsolve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drpsolve", flag.ContinueOnError)
	var (
		algo    = fs.String("algo", "sra", "algorithm: sra | gra | hill | random | readonly | none | optimal")
		in      = fs.String("in", "", "problem JSON (default: stdin)")
		out     = fs.String("out", "", "write the scheme as JSON to this file")
		seed    = fs.Uint64("seed", 1, "algorithm seed (gra, random)")
		pop     = fs.Int("pop", 50, "GRA population size Np")
		gens    = fs.Int("gens", 80, "GRA generations Ng")
		maxBits = fs.Int("maxbits", 24, "optimal: maximum free placement bits")
		replay  = fs.String("replay", "", "replay a request trace (JSON lines) against the solved scheme")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	p, err := drp.ReadProblem(r)
	if err != nil {
		return err
	}

	start := time.Now()
	var scheme *drp.Scheme
	switch *algo {
	case "sra":
		scheme = drp.SRA(p).Scheme
	case "gra":
		params := drp.DefaultGRAParams()
		params.PopSize = *pop
		params.Generations = *gens
		params.Seed = *seed
		res, err := drp.GRA(p, params)
		if err != nil {
			return err
		}
		scheme = res.Scheme
	case "random":
		scheme = drp.RandomPlacement(p, *seed)
	case "readonly":
		scheme = drp.ReadOnlyGreedy(p)
	case "hill":
		scheme = drp.HillClimb(p, nil, 0)
	case "none":
		scheme = drp.NoReplication(p)
	case "optimal":
		scheme, err = drp.Optimal(p, *maxBits)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	elapsed := time.Since(start)

	cost := scheme.Cost()
	fmt.Fprintf(stdout, "algorithm:   %s\n", *algo)
	fmt.Fprintf(stdout, "sites:       %d\n", p.Sites())
	fmt.Fprintf(stdout, "objects:     %d\n", p.Objects())
	fmt.Fprintf(stdout, "D' (no repl): %d\n", p.DPrime())
	fmt.Fprintf(stdout, "D (solved):  %d\n", cost)
	fmt.Fprintf(stdout, "NTC savings: %.2f%%\n", p.Savings(cost))
	fmt.Fprintf(stdout, "replicas:    %d beyond primaries\n", scheme.TotalReplicas())
	fmt.Fprintf(stdout, "elapsed:     %v\n", elapsed)

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Decode(p, f)
		if err != nil {
			return err
		}
		st := trace.Replay(scheme, tr)
		fmt.Fprintf(stdout, "replayed:    %d reads, %d writes -> measured NTC %d\n", st.Reads, st.Writes, st.NTC)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := scheme.Encode(f); err != nil {
			return fmt.Errorf("encode scheme: %w", err)
		}
	}
	return nil
}
