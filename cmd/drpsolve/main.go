// Command drpsolve solves a Data Replication Problem instance (JSON, as
// produced by drpgen) with one of the implemented algorithms and reports
// the resulting scheme's quality.
//
// Usage:
//
//	drpsolve -algo gra -in problem.json -out scheme.json
//	drpsolve -algo sra -in problem.json
//	drpsolve -algo gra -timeout 2s -budget 100000 -progress -in problem.json
//
// Algorithms: sra, gra, random, readonly, none, optimal (tiny instances).
//
// Anytime controls: -timeout caps wall-clock time, -budget caps cost-model
// evaluations, -progress streams per-iteration status to stderr. An
// interrupted run still prints the best valid scheme found so far; the
// "stopped:" line says why it ended. Flags that do not apply to the chosen
// algorithm are rejected (e.g. -pop with -algo sra).
//
// Observability: -metrics-out writes a JSON snapshot of the run's
// instruments (drp_solver_* families), -events streams structured JSONL
// events (solver.progress, solver.finished), and -manifest writes a
// self-describing run manifest (flags, seed, git revision, final D and its
// eq. 4 term breakdown).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"drp"
	"drp/internal/metrics"
	"drp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpsolve:", err)
		os.Exit(1)
	}
}

// flagsFor maps each algorithm to the flags it consumes, beyond the common
// set; setting any other flag is an error, not a silent no-op.
var flagsFor = map[string]map[string]bool{
	"sra":      {"timeout": true, "budget": true, "progress": true},
	"gra":      {"seed": true, "pop": true, "gens": true, "par": true, "sparse": true, "shards": true, "timeout": true, "budget": true, "progress": true},
	"hill":     {"timeout": true, "budget": true, "progress": true},
	"optimal":  {"maxbits": true, "timeout": true, "budget": true},
	"random":   {"seed": true},
	"readonly": {},
	"none":     {},
}

var commonFlags = map[string]bool{
	"algo": true, "in": true, "out": true, "replay": true,
	"metrics-out": true, "events": true, "manifest": true,
}

// checkFlags rejects explicitly-set flags the chosen algorithm ignores.
func checkFlags(fs *flag.FlagSet, algo string) error {
	spec, ok := flagsFor[algo]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		if !commonFlags[f.Name] && !spec[f.Name] {
			bad = append(bad, f.Name)
		}
	})
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("flag -%s does not apply to algorithm %q", bad[0], algo)
	}
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drpsolve", flag.ContinueOnError)
	var (
		algo       = fs.String("algo", "sra", "algorithm: sra | gra | hill | random | readonly | none | optimal")
		in         = fs.String("in", "", "problem JSON (default: stdin)")
		out        = fs.String("out", "", "write the scheme as JSON to this file")
		seed       = fs.Uint64("seed", 1, "algorithm seed (gra, random)")
		pop        = fs.Int("pop", 50, "GRA population size Np")
		gens       = fs.Int("gens", 80, "GRA generations Ng")
		par        = fs.Int("par", 0, "GRA evaluation workers (0 = all cores, 1 = serial)")
		sparseCore = fs.Bool("sparse", false, "GRA: solve on the sparse/sharded core instead of the genetic search")
		shards     = fs.Int("shards", 0, "GRA sparse shard count (0 = -par, then all cores); requires -sparse")
		maxBits    = fs.Int("maxbits", 24, "optimal: maximum free placement bits")
		timeout    = fs.Duration("timeout", 0, "wall-clock limit; the best scheme so far is reported (0 = none)")
		budget     = fs.Int("budget", 0, "cost-model evaluation limit (0 = none)")
		progress   = fs.Bool("progress", false, "stream per-iteration progress to stderr")
		replay     = fs.String("replay", "", "replay a request trace (JSON lines) against the solved scheme")
		metricsOut = fs.String("metrics-out", "", "write a JSON metrics snapshot to this file")
		eventsOut  = fs.String("events", "", "append structured JSONL events to this file")
		manifest   = fs.String("manifest", "", "write a run manifest (JSON) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlags(fs, *algo); err != nil {
		return err
	}
	if *shards != 0 && !*sparseCore {
		return fmt.Errorf("flag -shards requires -sparse")
	}

	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
	}
	var events *metrics.EventLog
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		events = metrics.NewEventLog(f)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	p, err := drp.ReadProblem(r)
	if err != nil {
		return err
	}

	runOpts := drp.RunOptions{Timeout: *timeout, Budget: *budget}
	if *progress {
		runOpts.Observer = drp.ObserverFunc(func(pr drp.SolverProgress) {
			fmt.Fprintf(os.Stderr, "%s it=%d best=%.4f cost=%d evals=%d elapsed=%v\n",
				pr.Algorithm, pr.Iteration, pr.BestFitness, pr.BestCost, pr.Evaluations, pr.Elapsed.Round(time.Millisecond))
		})
	}
	if reg != nil || events != nil {
		runOpts.Observer = metrics.BridgeObserver(reg, events, runOpts.Observer)
	}

	var man *metrics.Manifest
	if *manifest != "" {
		man = metrics.NewManifest("drpsolve", args)
		man.Seed = *seed
		man.Sites = p.Sites()
		man.Objects = p.Objects()
		man.Algorithm = *algo
	}

	start := time.Now()
	var scheme *drp.Scheme
	var stats *drp.SolverStats
	var sparseRan bool
	switch *algo {
	case "sra":
		res := drp.SRAWithOptions(p, drp.SRAOptions{Run: runOpts})
		scheme, stats = res.Scheme, &res.Stats
	case "gra":
		params := drp.DefaultGRAParams()
		params.PopSize = *pop
		params.Generations = *gens
		params.Seed = *seed
		params.Parallelism = *par
		params.Sparse = *sparseCore
		params.Shards = *shards
		res, err := drp.GRAWith(p, params, runOpts)
		if err != nil {
			return err
		}
		scheme, stats = res.Scheme, &res.Stats
		sparseRan = res.Sparse
	case "random":
		scheme = drp.RandomPlacement(p, *seed)
	case "readonly":
		scheme = drp.ReadOnlyGreedy(p)
	case "hill":
		res := drp.HillClimbWith(p, nil, 0, runOpts)
		scheme, stats = res.Scheme, &res.Stats
	case "none":
		scheme = drp.NoReplication(p)
	case "optimal":
		res, err := drp.OptimalWith(p, *maxBits, runOpts)
		if err != nil {
			return err
		}
		scheme, stats = res.Scheme, &res.Stats
	}
	elapsed := time.Since(start)

	cost := scheme.Cost()
	fmt.Fprintf(stdout, "algorithm:   %s\n", *algo)
	if sparseRan {
		fmt.Fprintf(stdout, "core:        sparse\n")
	}
	fmt.Fprintf(stdout, "sites:       %d\n", p.Sites())
	fmt.Fprintf(stdout, "objects:     %d\n", p.Objects())
	fmt.Fprintf(stdout, "D' (no repl): %d\n", p.DPrime())
	fmt.Fprintf(stdout, "D (solved):  %d\n", cost)
	fmt.Fprintf(stdout, "NTC savings: %.2f%%\n", p.Savings(cost))
	fmt.Fprintf(stdout, "replicas:    %d beyond primaries\n", scheme.TotalReplicas())
	fmt.Fprintf(stdout, "elapsed:     %v\n", elapsed)
	if stats != nil {
		fmt.Fprintf(stdout, "evaluations: %d\n", stats.Evaluations)
		fmt.Fprintf(stdout, "stopped:     %s\n", stats.Stopped)
	}

	if stats != nil && (reg != nil || events != nil) {
		metrics.RecordStats(reg, *algo, *stats, events)
	}
	if *metricsOut != "" {
		if err := metrics.WriteSnapshotFile(reg, *metricsOut); err != nil {
			return err
		}
	}
	if man != nil {
		terms := scheme.CostTerms()
		man.FinalD = cost
		man.DPrime = p.DPrime()
		man.SavingsPct = p.Savings(cost)
		man.Terms = map[string]int64{
			"read_ntc":   terms.ReadNTC,
			"write_ntc":  terms.WriteNTC,
			"update_ntc": terms.UpdateNTC,
		}
		if stats != nil {
			man.Evaluations = stats.Evaluations
			man.Iterations = stats.Iterations
			man.Stopped = stats.Stopped.String()
		}
		if err := man.Write(*manifest); err != nil {
			return err
		}
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Decode(p, f)
		if err != nil {
			return err
		}
		st := trace.Replay(scheme, tr)
		fmt.Fprintf(stdout, "replayed:    %d reads, %d writes -> measured NTC %d\n", st.Reads, st.Writes, st.NTC)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := scheme.Encode(f); err != nil {
			return fmt.Errorf("encode scheme: %w", err)
		}
	}
	return nil
}
