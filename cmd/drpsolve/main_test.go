package main

import (
	"fmt"

	"drp/internal/metrics"
	"drp/internal/trace"

	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drp"
)

func writeProblem(t *testing.T) string {
	t.Helper()
	p, err := drp.Generate(drp.NewSpec(6, 8, 0.05, 0.2), 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := p.Encode(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSolveAlgorithms(t *testing.T) {
	path := writeProblem(t)
	for _, algo := range []string{"sra", "random", "readonly", "none"} {
		var out bytes.Buffer
		if err := run([]string{"-algo", algo, "-in", path}, &out); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "NTC savings") {
			t.Fatalf("%s output missing savings:\n%s", algo, out.String())
		}
	}
}

func TestSolveGRAWithSchemeOutput(t *testing.T) {
	path := writeProblem(t)
	schemePath := filepath.Join(t.TempDir(), "scheme.json")
	var out bytes.Buffer
	err := run([]string{"-algo", "gra", "-pop", "8", "-gens", "5", "-in", path, "-out", schemePath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// The scheme must load back against the problem.
	pf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	p, err := drp.ReadProblem(pf)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := os.Open(schemePath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if _, err := drp.ReadScheme(p, sf); err != nil {
		t.Fatalf("scheme output unreadable: %v", err)
	}
}

func TestSolveOptimalGate(t *testing.T) {
	path := writeProblem(t)
	// 6 sites × 8 objects = 40 free bits: must be refused at maxbits 24.
	if err := run([]string{"-algo", "optimal", "-in", path}, &bytes.Buffer{}); err == nil {
		t.Fatal("optimal accepted an oversized instance")
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	path := writeProblem(t)
	if err := run([]string{"-algo", "magic", "-in", path}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSolveMissingInput(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent/p.json"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestSolveHillClimb(t *testing.T) {
	path := writeProblem(t)
	var out bytes.Buffer
	if err := run([]string{"-algo", "hill", "-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NTC savings") {
		t.Fatalf("hill output missing savings:\n%s", out.String())
	}
}

func TestSolveRejectsInapplicableFlags(t *testing.T) {
	path := writeProblem(t)
	bad := [][]string{
		{"-algo", "sra", "-pop", "10", "-in", path},
		{"-algo", "sra", "-seed", "2", "-in", path},
		{"-algo", "gra", "-maxbits", "10", "-in", path},
		{"-algo", "random", "-timeout", "1s", "-in", path},
		{"-algo", "readonly", "-budget", "5", "-in", path},
		{"-algo", "none", "-progress", "-in", path},
		{"-algo", "optimal", "-progress", "-in", path},
		{"-algo", "hill", "-gens", "3", "-in", path},
	}
	for _, args := range bad {
		err := run(args, &bytes.Buffer{})
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if !strings.Contains(err.Error(), "does not apply") {
			t.Errorf("args %v: unexpected error %v", args, err)
		}
	}
	// The same flags at their defaults (unset) are fine.
	if err := run([]string{"-algo", "sra", "-in", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveAnytimeFlags(t *testing.T) {
	path := writeProblem(t)
	var out bytes.Buffer
	// A generous budget never fires: the run completes and reports stats.
	if err := run([]string{"-algo", "gra", "-pop", "8", "-gens", "5", "-budget", "1000000", "-timeout", "1m", "-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stopped:     completed") {
		t.Fatalf("missing completed stop line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "evaluations: ") {
		t.Fatalf("missing evaluations line:\n%s", out.String())
	}

	// A tiny budget fires and is reported, but the scheme is still printed.
	out.Reset()
	if err := run([]string{"-algo", "gra", "-pop", "8", "-gens", "50", "-budget", "10", "-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stopped:     budget") {
		t.Fatalf("missing budget stop line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "NTC savings") {
		t.Fatalf("interrupted run printed no scheme summary:\n%s", out.String())
	}
}

func TestSolveParFlagDeterministic(t *testing.T) {
	path := writeProblem(t)
	outputs := make([]string, 0, 2)
	for _, par := range []string{"1", "4"} {
		var out bytes.Buffer
		if err := run([]string{"-algo", "gra", "-pop", "8", "-gens", "5", "-par", par, "-in", path}, &out); err != nil {
			t.Fatal(err)
		}
		// Strip the timing lines, which legitimately vary.
		var kept []string
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "elapsed:") {
				continue
			}
			kept = append(kept, line)
		}
		outputs = append(outputs, strings.Join(kept, "\n"))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-par changed the result:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

func TestSolveTelemetryOutputs(t *testing.T) {
	path := writeProblem(t)
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	eventsPath := filepath.Join(dir, "events.jsonl")
	manifestPath := filepath.Join(dir, "manifest.json")
	var out bytes.Buffer
	err := run([]string{
		"-algo", "gra", "-pop", "8", "-gens", "5", "-in", path,
		"-metrics-out", metricsPath, "-events", eventsPath, "-manifest", manifestPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// The snapshot parses and carries the solver families.
	snap, err := metrics.ReadSnapshotFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, is := range snap.Instruments {
		names[is.Name] = true
	}
	for _, want := range []string{"drp_solver_iterations_total", "drp_solver_runs_total", "drp_solver_evaluations_total"} {
		if !names[want] {
			t.Errorf("snapshot missing %s (have %v)", want, names)
		}
	}

	// The manifest records the result, and its eq. 4 terms sum to final D.
	manifestData, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Tool      string           `json:"tool"`
		Algorithm string           `json:"algorithm"`
		FinalD    int64            `json:"final_d"`
		Terms     map[string]int64 `json:"eq4_terms"`
		Stopped   string           `json:"stopped"`
	}
	if err := json.Unmarshal(manifestData, &man); err != nil {
		t.Fatal(err)
	}
	if man.Tool != "drpsolve" || man.Algorithm != "gra" || man.Stopped != "completed" {
		t.Errorf("manifest header wrong: %+v", man)
	}
	var termSum int64
	for _, v := range man.Terms {
		termSum += v
	}
	if len(man.Terms) != 3 || termSum != man.FinalD {
		t.Errorf("eq4_terms %v sum to %d, want final_d %d", man.Terms, termSum, man.FinalD)
	}

	// The event log holds per-iteration progress plus the finish record.
	eventsData, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(eventsData), `"event":"solver.progress"`) ||
		!strings.Contains(string(eventsData), `"event":"solver.finished"`) {
		t.Errorf("event log missing expected records:\n%s", eventsData)
	}
}

func TestSolveReplaysTrace(t *testing.T) {
	dir := t.TempDir()
	problemPath := filepath.Join(dir, "p.json")
	tracePath := filepath.Join(dir, "t.jsonl")
	// Generate problem + trace with drpgen's package-level logic: reuse the
	// drp API directly to avoid cross-command coupling.
	p, err := drp.Generate(drp.NewSpec(5, 6, 0.1, 0.2), 3)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := os.Create(problemPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Encode(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Generate(p, 4).Encode(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	var out bytes.Buffer
	if err := run([]string{"-algo", "sra", "-in", problemPath, "-replay", tracePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replayed:") {
		t.Fatalf("replay output missing:\n%s", out.String())
	}
	// The replayed NTC must equal the solved scheme's model cost.
	scheme := drp.SRA(p).Scheme
	want := fmt.Sprintf("measured NTC %d", scheme.Cost())
	if !strings.Contains(out.String(), want) {
		t.Fatalf("replay NTC does not match model (%s):\n%s", want, out.String())
	}
}

func TestSolveGRASparse(t *testing.T) {
	path := writeProblem(t)
	var out bytes.Buffer
	if err := run([]string{"-algo", "gra", "-sparse", "-shards", "2", "-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "core:        sparse") {
		t.Fatalf("output missing sparse core line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "NTC savings") {
		t.Fatalf("output missing savings:\n%s", out.String())
	}
}

func TestSolveSparseFlagValidation(t *testing.T) {
	path := writeProblem(t)
	var out bytes.Buffer
	if err := run([]string{"-algo", "gra", "-shards", "2", "-in", path}, &out); err == nil {
		t.Fatal("-shards without -sparse accepted")
	}
	if err := run([]string{"-algo", "sra", "-sparse", "-in", path}, &out); err == nil {
		t.Fatal("-sparse with -algo sra accepted")
	}
}
