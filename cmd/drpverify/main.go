// Command drpverify soaks the cost model, evaluators and solvers with the
// drp/internal/verify harness: randomly generated instances are checked
// against metamorphic properties of eq. 4 and differential oracles until a
// wall-clock deadline, an iteration cap or a violation.
//
// Usage:
//
//	drpverify -duration 30s -seed 1
//	drpverify -iters 200 -checks eq4-oracle,delta-eval -par 4
//	drpverify -list
//
// On a violation, the failing instance is delta-debugged down to a minimal
// reproducer, printed (or written with -out) as drpgen-compatible problem
// JSON together with the seed that replays it, and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"drp/internal/core"
	"drp/internal/solver"
	"drp/internal/verify"
)

// testCost, when non-nil, replaces the production evaluator inside the
// harness. It exists solely so the CLI tests can drive the failure path —
// shrinking, reporting, reproducer output — end to end; main never sets it.
var testCost func(*core.Scheme) int64

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpverify:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drpverify", flag.ContinueOnError)
	var (
		duration = fs.Duration("duration", 0, "wall-clock soak budget (0 = no deadline)")
		iters    = fs.Int("iters", 0, "instance cap (0 = unbounded; set -duration instead)")
		checks   = fs.String("checks", "", "comma-separated check subset (default: all; see -list)")
		seed     = fs.Uint64("seed", 1, "soak seed; identical seeds replay identical soaks")
		par      = fs.Int("par", 1, "instances verified concurrently (0 = GOMAXPROCS)")
		maxM     = fs.Int("max-sites", 0, "largest generated site count (0 = default 12)")
		maxN     = fs.Int("max-objects", 0, "largest generated object count (0 = default 10)")
		out      = fs.String("out", "", "write a failing reproducer as problem JSON to this file")
		list     = fs.Bool("list", false, "list the registered checks and exit")
		quiet    = fs.Bool("quiet", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *list {
		for _, c := range verify.Checks() {
			kind := "general"
			if c.Small {
				kind = "small"
			}
			fmt.Fprintf(stdout, "%-16s %-8s %s\n", c.Name, kind, c.Doc)
		}
		return nil
	}
	if *duration <= 0 && *iters <= 0 {
		return fmt.Errorf("set -duration and/or -iters, otherwise the soak never ends")
	}

	opts := verify.Options{
		Seed:        *seed,
		Iterations:  *iters,
		Parallelism: *par,
		MaxSites:    *maxM,
		MaxObjects:  *maxN,
		Cost:        testCost,
		Run:         solver.Run{Timeout: *duration},
	}
	if *checks != "" {
		opts.Checks = strings.Split(*checks, ",")
	}
	if !*quiet {
		opts.Log = func(format string, a ...interface{}) {
			fmt.Fprintf(os.Stderr, "drpverify: "+format+"\n", a...)
		}
	}

	start := time.Now()
	report, err := verify.Soak(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "instances: %d\n", report.Instances)
	fmt.Fprintf(stdout, "checks:    %s\n", strings.Join(report.SortedRunCounts(), " "))
	fmt.Fprintf(stdout, "elapsed:   %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "stopped:   %s\n", report.Stats.Stopped)
	if report.Passed() {
		fmt.Fprintln(stdout, "result:    PASS")
		return nil
	}

	f := report.Failure
	fmt.Fprintln(stdout, "result:    FAIL")
	fmt.Fprintf(stdout, "%v\n", f)
	fmt.Fprintf(stdout, "replay:    drpverify -seed %d -checks %s\n", *seed, f.Check)
	if f.Problem != nil {
		dst := stdout
		if *out != "" {
			file, err := os.Create(*out)
			if err != nil {
				return fmt.Errorf("writing reproducer: %w", err)
			}
			defer file.Close()
			dst = file
			fmt.Fprintf(stdout, "reproducer: %s (%d sites × %d objects, check seed %d)\n",
				*out, f.Problem.Sites(), f.Problem.Objects(), f.Seed)
		} else {
			fmt.Fprintf(stdout, "reproducer (%d sites × %d objects, check seed %d):\n",
				f.Problem.Sites(), f.Problem.Objects(), f.Seed)
		}
		if err := f.Problem.Encode(dst); err != nil {
			return fmt.Errorf("encoding reproducer: %w", err)
		}
	}
	return fmt.Errorf("check %q failed (instance seed %d)", f.Check, f.Seed)
}
