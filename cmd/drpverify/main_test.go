package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drp/internal/core"
)

func TestVerifyBoundedSoakPasses(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-iters", "5", "-seed", "1", "-quiet"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "result:    PASS") {
		t.Fatalf("missing PASS verdict:\n%s", s)
	}
	if !strings.Contains(s, "instances: 5") {
		t.Fatalf("instance count not reported:\n%s", s)
	}
	if !strings.Contains(s, "eq4-oracle=5") {
		t.Fatalf("per-check counters not reported:\n%s", s)
	}
}

func TestVerifyDurationOnly(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-duration", "300ms", "-seed", "2", "-par", "2", "-quiet"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "stopped:   deadline") {
		t.Fatalf("deadline stop not reported:\n%s", out.String())
	}
}

func TestVerifyCheckSubsetAndList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "eq4-oracle") || !strings.Contains(out.String(), "optimal-gap") {
		t.Fatalf("listing incomplete:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-iters", "3", "-checks", "perm-sites,zero-object", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "eq4-oracle") {
		t.Fatalf("unselected check ran:\n%s", out.String())
	}
}

func TestVerifyRejectsBadInvocations(t *testing.T) {
	for name, args := range map[string][]string{
		"no stop condition": {},
		"unknown check":     {"-iters", "1", "-checks", "nope"},
		"stray argument":    {"-iters", "1", "extra"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestVerifyPassingSoakWritesNoReproducer: -out stays untouched on PASS.
func TestVerifyPassingSoakWritesNoReproducer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repro.json")
	var out bytes.Buffer
	if err := run([]string{"-iters", "2", "-seed", "4", "-out", path, "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("reproducer file created on a passing soak (err=%v)", err)
	}
}

// TestVerifyFailureWritesShrunkenReproducer drives the acceptance path end
// to end: a write-blind evaluator (injected through the test-only hook)
// fails the eq4-oracle check, the CLI exits non-nil, and the -out file holds
// a decodable reproducer of at most 4 sites × 4 objects.
func TestVerifyFailureWritesShrunkenReproducer(t *testing.T) {
	testCost = func(s *core.Scheme) int64 {
		p := s.Problem()
		var d int64
		for i := 0; i < p.Sites(); i++ {
			for k := 0; k < p.Objects(); k++ {
				if s.Has(i, k) {
					continue // drop the replicator update fan-in
				}
				sp := p.Primary(k)
				minC := int64(-1)
				for j := 0; j < p.Sites(); j++ {
					if s.Has(j, k) {
						if c := p.Cost(i, j); minC < 0 || c < minC {
							minC = c
						}
					}
				}
				d += p.Reads(i, k)*p.Size(k)*minC + p.Writes(i, k)*p.Size(k)*p.Cost(i, sp)
			}
		}
		return d
	}
	defer func() { testCost = nil }()

	path := filepath.Join(t.TempDir(), "repro.json")
	var out bytes.Buffer
	err := run([]string{"-iters", "50", "-seed", "1", "-checks", "eq4-oracle", "-out", path, "-quiet"}, &out)
	if err == nil {
		t.Fatalf("broken evaluator passed:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "result:    FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", s)
	}
	if !strings.Contains(s, "replay:") {
		t.Fatalf("missing replay line:\n%s", s)
	}
	file, ferr := os.Open(path)
	if ferr != nil {
		t.Fatalf("reproducer not written: %v", ferr)
	}
	defer file.Close()
	p, perr := core.ReadProblem(file)
	if perr != nil {
		t.Fatalf("reproducer does not decode: %v", perr)
	}
	if p.Sites() > 4 || p.Objects() > 4 {
		t.Fatalf("reproducer is %d sites × %d objects, want ≤ 4 × 4", p.Sites(), p.Objects())
	}
}
