package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenReport pins the full report for the committed span file — the
// same fixture the CI trace-smoke job regenerates from a seeded drpnet run
// — so any drift in assembly, critical paths, waterfalls or the fault
// cross-reference shows up as a byte diff.
func TestGoldenReport(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{
		"-in", filepath.Join("testdata", "spans.jsonl"),
		"-fault-plan", filepath.Join("testdata", "fault_plan.json"),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("report drifted from testdata/golden.txt\n--- got ---\n%s", out.Bytes())
	}
}

// TestGoldenInvariants sanity-checks the fixture itself rather than the
// renderer: every injected event claimed spans and the summed NTC in the
// summary is non-zero.
func TestGoldenInvariants(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-in", filepath.Join("testdata", "spans.jsonl"),
		"-fault-plan", filepath.Join("testdata", "fault_plan.json"),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if strings.Contains(report, ": 0 degraded spans") {
		t.Error("a fault event in the fixture claimed no spans; widen its window")
	}
	if strings.Contains(report, "summed ntc: 0\n") {
		t.Error("fixture carries no transfer cost")
	}
	if strings.Contains(report, "match no event") {
		t.Error("fixture holds fault spans the plan cannot explain")
	}
	if strings.Contains(report, "WARNING") {
		t.Error("fixture assembled with orphaned spans")
	}
}

func TestSectionFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-in", filepath.Join("testdata", "spans.jsonl"),
		"-edges=false", "-slowest", "0", "-waterfall", "0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, section := range []string{"edges (", "slowest ", "waterfall of", "fault plan ("} {
		if strings.Contains(report, section) {
			t.Errorf("section %q printed despite being disabled", section)
		}
	}
	if !strings.Contains(report, "spans in") {
		t.Error("summary header missing")
	}
}

func TestBadInputs(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                             // -in required
		{"-in", "testdata/nope.jsonl"}, // missing file
		{"-in", empty},                 // no spans
		{"-in", "testdata/spans.jsonl", "-slowest", "-1"},
		{"-in", "testdata/spans.jsonl", "-fault-plan", "testdata/nope.json"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
