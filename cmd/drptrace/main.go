// Command drptrace analyses a span file recorded by drpnet or drpcluster
// -trace-out: it reassembles the per-request trees, summarises per-edge
// latency and transfer cost, surfaces the slowest exemplars with their
// critical paths, renders waterfalls, and — given the fault plan the run
// was injected with — attributes degraded spans to the fault events that
// caused them.
//
// Usage:
//
//	drptrace -in spans.jsonl
//	drptrace -in spans.jsonl -slowest 5 -waterfall 2
//	drptrace -in spans.jsonl -fault-plan plan.json
//
// Input is one JSON span per line (see drp/internal/spans). All output is
// a pure function of the input file, so span files recorded with the
// logical clock produce byte-identical reports run after run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"drp/internal/fault"
	"drp/internal/spans"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drptrace", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "span JSONL file recorded with -trace-out (required)")
		slowest   = fs.Int("slowest", 3, "show the N slowest traces with their critical paths (0 = skip)")
		waterfall = fs.Int("waterfall", 1, "render waterfalls for the N slowest traces (0 = skip)")
		edges     = fs.Bool("edges", true, "print the per-edge latency / NTC breakdown")
		faultPlan = fs.String("fault-plan", "", "cross-reference span fault verdicts against this plan JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *slowest < 0 || *waterfall < 0 {
		return fmt.Errorf("-slowest and -waterfall cannot be negative")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	sps, err := spans.Decode(f)
	if err != nil {
		return err
	}
	if len(sps) == 0 {
		return fmt.Errorf("%s holds no spans", *in)
	}
	traces := spans.Assemble(sps)
	printSummary(stdout, sps, traces)
	if *edges {
		printEdges(stdout, traces)
	}
	if *slowest > 0 {
		printSlowest(stdout, traces, *slowest)
	}
	if *waterfall > 0 {
		printWaterfalls(stdout, traces, *waterfall)
	}
	if *faultPlan != "" {
		plan, err := loadPlan(*faultPlan)
		if err != nil {
			return err
		}
		printFaultCrossRef(stdout, sps, plan)
	}
	return nil
}

func printSummary(w io.Writer, sps []spans.Span, traces []*spans.Trace) {
	var errs int
	var ntc int64
	lo, hi := sps[0].Start, sps[0].End
	for _, s := range sps {
		if s.Err != "" {
			errs++
		}
		ntc += s.NTC
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	orphaned := 0
	for _, t := range traces {
		if len(t.Roots) > 1 {
			orphaned += len(t.Roots) - 1
		}
	}
	fmt.Fprintf(w, "%d spans in %d traces, clock [%d,%d]\n", len(sps), len(traces), lo, hi)
	fmt.Fprintf(w, "  errors: %d, summed ntc: %d\n", errs, ntc)
	if orphaned > 0 {
		fmt.Fprintf(w, "  WARNING: %d orphaned spans (truncated file?)\n", orphaned)
	}
}

func printEdges(w io.Writer, traces []*spans.Trace) {
	fmt.Fprintf(w, "\nedges (latency in clock units):\n")
	fmt.Fprintf(w, "  %-16s %7s %6s %8s %8s %8s %12s\n", "name", "count", "errs", "p50", "p99", "max", "ntc")
	for _, e := range spans.Edges(traces) {
		fmt.Fprintf(w, "  %-16s %7d %6d %8d %8d %8d %12d\n",
			e.Name, e.Count, e.Errors, e.P50, e.P99, e.Max, e.TotalNTC)
	}
}

func printSlowest(w io.Writer, traces []*spans.Trace, n int) {
	top := spans.Slowest(traces, n)
	fmt.Fprintf(w, "\nslowest %d traces:\n", len(top))
	for i, t := range top {
		root := t.Root()
		fmt.Fprintf(w, "  %d. trace %s %s dur=%d spans=%d ntc=%d\n",
			i+1, t.ID, root.Label(), t.Dur(), t.Count, t.NTC())
		path := spans.CriticalPath(root)
		labels := make([]string, len(path))
		for j, s := range path {
			labels[j] = fmt.Sprintf("%s[%d]", s.Label(), s.Dur())
		}
		fmt.Fprintf(w, "     critical path: %s\n", strings.Join(labels, " -> "))
	}
}

func printWaterfalls(w io.Writer, traces []*spans.Trace, n int) {
	top := spans.Slowest(traces, n)
	fmt.Fprintf(w, "\nwaterfall of the %d slowest:\n", len(top))
	for _, t := range top {
		spans.Waterfall(w, t)
	}
}

// loadPlan reads a fault plan without a site universe to validate
// against: the span file does not carry the cluster size and the
// cross-reference only needs the event list.
func loadPlan(path string) (fault.Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return fault.Plan{}, err
	}
	defer f.Close()
	return fault.ReadPlan(f)
}

// printFaultCrossRef attributes fault-verdict spans to the plan events
// whose injected error they carry, so a degraded trace reads back to the
// exact crash or blackhole that caused it.
func printFaultCrossRef(w io.Writer, sps []spans.Span, plan fault.Plan) {
	matched := make(map[int]int, len(plan.Events)) // event index → spans
	claimed := make([]bool, len(sps))
	for ei, e := range plan.Events {
		var needles []string
		switch e.Kind {
		case fault.KindCrash:
			needles = []string{fmt.Sprintf("site %d is down", e.Site)}
		case fault.KindBlackhole:
			needles = []string{
				fmt.Sprintf("link %d↔%d blackholed", e.Site, e.Peer),
				fmt.Sprintf("link %d↔%d blackholed", e.Peer, e.Site),
			}
		case fault.KindDrop:
			needles = []string{
				fmt.Sprintf("message %d→%d dropped", e.Site, e.Peer),
				fmt.Sprintf("message %d→%d dropped", e.Peer, e.Site),
			}
		default:
			// Restart closes a crash window and latency spikes leave no
			// error; neither marks spans.
			continue
		}
		for si, s := range sps {
			if claimed[si] || s.Verdict == "" {
				continue
			}
			for _, needle := range needles {
				if strings.Contains(s.Err, needle) {
					matched[ei]++
					claimed[si] = true
					break
				}
			}
		}
	}
	fmt.Fprintf(w, "\nfault plan (seed %d, %d events):\n", plan.Seed, len(plan.Events))
	for ei, e := range plan.Events {
		var desc string
		switch e.Kind {
		case fault.KindCrash, fault.KindRestart:
			desc = fmt.Sprintf("%-9s site %d", e.Kind, e.Site)
		default:
			desc = fmt.Sprintf("%-9s %d↔%d", e.Kind, e.Site, e.Peer)
		}
		window := fmt.Sprintf("steps [%d,%d)", e.Step, e.Until)
		if e.Until == 0 {
			window = fmt.Sprintf("steps [%d,∞)", e.Step)
		}
		fmt.Fprintf(w, "  %s %s: %d degraded spans\n", desc, window, matched[ei])
	}
	unclaimed := 0
	for si, s := range sps {
		if s.Verdict != "" && s.Verdict != "queued" && s.Verdict != "stale" && !claimed[si] {
			unclaimed++
		}
	}
	if unclaimed > 0 {
		fmt.Fprintf(w, "  %d fault-verdict spans match no event in this plan\n", unclaimed)
	}
}
