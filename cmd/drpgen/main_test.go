package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"drp"
)

func TestRunWritesValidProblem(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sites", "6", "-objects", "8", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	p, err := drp.ReadProblem(&out)
	if err != nil {
		t.Fatalf("generated JSON unreadable: %v", err)
	}
	if p.Sites() != 6 || p.Objects() != 8 {
		t.Fatalf("dims %d×%d", p.Sites(), p.Objects())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	if err := run([]string{"-sites", "4", "-objects", "5", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := drp.ReadProblem(f); err != nil {
		t.Fatalf("file unreadable: %v", err)
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	if err := run([]string{"-sites", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("zero sites accepted")
	}
	if err := run([]string{"-update", "-1"}, &bytes.Buffer{}); err == nil {
		t.Fatal("negative update ratio accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunWritesTrace(t *testing.T) {
	dir := t.TempDir()
	problemPath := filepath.Join(dir, "p.json")
	tracePath := filepath.Join(dir, "t.jsonl")
	if err := run([]string{"-sites", "4", "-objects", "5", "-o", problemPath, "-trace", tracePath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
}

func TestRunZipfFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sites", "5", "-objects", "20", "-zipf", "0.9"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := drp.ReadProblem(&out); err != nil {
		t.Fatalf("zipf-generated JSON unreadable: %v", err)
	}
}
