// Command drpgen generates random Data Replication Problem instances
// following the paper's Section 6.1 workload model and writes them as JSON.
//
// Usage:
//
//	drpgen -sites 50 -objects 200 -update 0.05 -capacity 0.15 -seed 1 -o problem.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"drp"
	"drp/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drpgen", flag.ContinueOnError)
	var (
		sites    = fs.Int("sites", 50, "number of sites (M)")
		objects  = fs.Int("objects", 200, "number of objects (N)")
		update   = fs.Float64("update", 0.05, "update ratio U (updates as a fraction of reads)")
		capacity = fs.Float64("capacity", 0.15, "capacity ratio C (site storage as a fraction of total object size)")
		seed     = fs.Uint64("seed", 1, "workload seed (identical seeds reproduce instances)")
		zipf     = fs.Float64("zipf", 0, "Zipf popularity skew (0 = the paper's uniform reads)")
		out      = fs.String("o", "", "output file (default: stdout)")
		traceOut = fs.String("trace", "", "also write a timestamped request trace (JSON lines) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		p   *drp.Problem
		err error
	)
	if *zipf > 0 {
		p, err = drp.GenerateZipf(drp.NewZipfSpec(*sites, *objects, *update, *capacity, *zipf), *seed)
	} else {
		p, err = drp.Generate(drp.NewSpec(*sites, *objects, *update, *capacity), *seed)
	}
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := p.Encode(w); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer tf.Close()
		if err := trace.Generate(p, *seed+1).Encode(tf); err != nil {
			return fmt.Errorf("encode trace: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "drpgen: M=%d N=%d U=%.1f%% C=%.1f%% seed=%d D'=%d\n",
		*sites, *objects, 100**update, 100**capacity, *seed, p.DPrime())
	return nil
}
