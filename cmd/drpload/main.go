// Command drpload is the open-loop load harness: it boots a live netnode
// cluster over TCP on loopback, deploys a replication scheme, and drives
// a deterministic seeded arrival schedule against it at a fixed offered
// rate — Poisson or flash-crowd arrivals, Zipf object popularity, a
// per-site origin mix, optional WAN link latency injected through the
// fault middleware. Latencies are recorded from each request's intended
// send time (coordinated-omission-safe) into log-linear histograms, the
// run's own accounting is cross-checked against the cluster's drp_net_*
// counters, and the report is gated by an SLO expression.
//
// Usage:
//
//	drpload -sites 4 -objects 40 -rate 500 -duration 2s
//	drpload -algo gra -geo wan3 -slo 'p99<250ms,err<1%,tput>90%'
//	drpload -arrival bursty -burst-mult 10 -burst-start 500ms -burst-dur 300ms
//	drpload -compare none,sra -out BENCH_load.json
//	drpload -profile load.json -metrics-out drp_net.json
//
// -compare replays the byte-identical schedule against two placements on
// two fresh clusters and reports the p50/p99 and NTC deltas; the report
// carries both schedule digests so the identical-stream claim is
// checkable. -out writes the canonical BENCH_load.json; the exit status
// is non-zero when the SLO fails or the metrics cross-check mismatches.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"drp"
	"drp/internal/fault"
	"drp/internal/load"
	"drp/internal/metrics"
	"drp/internal/netnode"
	"drp/internal/spans"
	"drp/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpload:", err)
		os.Exit(1)
	}
}

// errGate marks a run that completed but failed its gate — distinct from
// harness errors only in the message; both exit non-zero.
func gateErr(format string, args ...any) error { return fmt.Errorf(format, args...) }

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("drpload", flag.ContinueOnError)
	var (
		sites    = fs.Int("sites", 4, "number of sites (ignored with -in)")
		objects  = fs.Int("objects", 40, "number of objects (ignored with -in)")
		update   = fs.Float64("update", 0.05, "update ratio U for the generated problem")
		capacity = fs.Float64("capacity", 0.15, "capacity ratio C for the generated problem")
		seed     = fs.Uint64("seed", 1, "seed for problem generation, placement and the arrival schedule")
		in       = fs.String("in", "", "problem JSON (default: generate)")
		algo     = fs.String("algo", "sra", "placement algorithm: none | sra | gra")
		scheme   = fs.String("scheme", "", "replication scheme JSON (overrides -algo)")

		rate      = fs.Float64("rate", 500, "offered arrival rate in requests per second")
		duration  = fs.Duration("duration", 2*time.Second, "schedule length")
		arrival   = fs.String("arrival", load.ArrivalPoisson, "arrival process: poisson | uniform | bursty")
		burstMult = fs.Float64("burst-mult", 0, "rate multiplier inside the burst window (bursty)")
		burstAt   = fs.Duration("burst-start", 0, "burst window start offset (bursty)")
		burstDur  = fs.Duration("burst-dur", 0, "burst window length (bursty)")
		burstFoc  = fs.Float64("burst-focus", 0, "fraction of burst requests redirected to the hottest object (bursty)")
		writeFrac = fs.Float64("write-frac", 0.10, "fraction of requests that are writes")
		skew      = fs.Float64("skew", 0.8, "Zipf exponent of object popularity (0 = uniform)")
		origins   = fs.String("origins", "", "comma-separated per-site origin weights (default: uniform)")
		workers   = fs.Int("workers", 0, "max in-flight requests (0 = default pool)")
		geo       = fs.String("geo", load.GeoNone, "injected link-latency profile: none | lan | wan3")
		profile   = fs.String("profile", "", "load profile JSON (overrides the schedule flags)")

		sloExpr    = fs.String("slo", "", `SLO gate, e.g. "p99<250ms,err<1%,tput>90%" (read./write. prefixes scope latency terms)`)
		out        = fs.String("out", "", "write the canonical report JSON (BENCH_load.json) to this file")
		compare    = fs.String("compare", "", `A/B mode: two comma-separated placements ("none,sra", "sra,gra", or two scheme files) replaying the identical schedule`)
		metricsOut = fs.String("metrics-out", "", "write the cluster's drp_net_* snapshot after the run (cross-checkable against the report)")
		traceOut   = fs.String("trace-out", "", "record one JSON span per line to this file (analyse with drptrace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	slo, err := load.ParseSLO(*sloExpr)
	if err != nil {
		return err
	}
	if *compare != "" && *scheme != "" {
		return fmt.Errorf("-compare names its own placements; drop -scheme")
	}

	var p *drp.Problem
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		p, err = drp.ReadProblem(f)
	} else {
		p, err = drp.Generate(drp.NewSpec(*sites, *objects, *update, *capacity), *seed)
	}
	if err != nil {
		return err
	}

	var pr load.Profile
	if *profile != "" {
		pr, err = load.LoadProfile(*profile, p.Sites())
		if err != nil {
			return err
		}
	} else {
		pr = load.DefaultProfile()
		pr.Seed = *seed
		pr.Rate = *rate
		pr.DurationMS = duration.Milliseconds()
		pr.Arrival = *arrival
		pr.BurstMult = *burstMult
		pr.BurstStartMS = burstAt.Milliseconds()
		pr.BurstEndMS = (*burstAt + *burstDur).Milliseconds()
		pr.BurstFocus = *burstFoc
		pr.WriteFraction = *writeFrac
		pr.Skew = *skew
		pr.Geo = *geo
		if *origins != "" {
			pr.Origins, err = parseWeights(*origins)
			if err != nil {
				return fmt.Errorf("-origins: %w", err)
			}
		}
	}

	sched, err := load.BuildSchedule(p.Sites(), p.Objects(), pr)
	if err != nil {
		return err
	}
	if len(sched.Requests) == 0 {
		return fmt.Errorf("schedule is empty: rate %.3g req/s over %s produced no arrivals", pr.Rate, *duration)
	}

	var tracer *spans.Tracer
	if *traceOut != "" {
		var closeTrace func() error
		tracer, closeTrace, err = spans.OpenFile(*traceOut, 1, "wall")
		if err != nil {
			return err
		}
		defer func() {
			if cerr := closeTrace(); cerr != nil && err == nil {
				err = fmt.Errorf("trace file %s: %w", *traceOut, cerr)
			}
		}()
	}

	if *compare != "" {
		names := strings.Split(*compare, ",")
		if len(names) != 2 {
			return fmt.Errorf("-compare wants exactly two placements, got %q", *compare)
		}
		repA, err := runScheme(p, strings.TrimSpace(names[0]), *seed, pr, sched, *workers, slo, nil, "", stdout)
		if err != nil {
			return err
		}
		repB, err := runScheme(p, strings.TrimSpace(names[1]), *seed, pr, sched, *workers, slo, nil, "", stdout)
		if err != nil {
			return err
		}
		cmp := load.NewCompare(repA, repB)
		fmt.Fprint(stdout, cmp.Text())
		if *out != "" {
			data, err := cmp.Canonical()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote comparison to %s\n", *out)
		}
		if !cmp.SameSchedule {
			return gateErr("comparison drove different schedules (digests %.12s… vs %.12s…)", repA.ScheduleDigest, repB.ScheduleDigest)
		}
		return gateCheck(repA, repB)
	}

	schemeName := *algo
	if *scheme != "" {
		schemeName = *scheme
	}
	rep, err := runScheme(p, schemeName, *seed, pr, sched, *workers, slo, tracer, *metricsOut, stdout)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.Text())
	if *out != "" {
		data, err := rep.Canonical()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote report to %s\n", *out)
	}
	return gateCheck(rep)
}

// gateCheck turns failed gates into a non-zero exit.
func gateCheck(reps ...*load.Report) error {
	for _, rep := range reps {
		if rep.Metrics != nil && !rep.Metrics.Match {
			return gateErr("scheme %s: metrics cross-check mismatch: %s", rep.Scheme, rep.Metrics.Describe())
		}
		if !rep.SLO.Pass {
			return gateErr("scheme %s: SLO %q not met", rep.Scheme, rep.SLO.Expr)
		}
	}
	return nil
}

// runScheme boots a fresh cluster, deploys the named placement, injects
// the profile's link latency, replays the schedule open loop and returns
// the cross-checked report.
func runScheme(p *drp.Problem, name string, seed uint64, pr load.Profile, sched *load.Schedule,
	workers int, slo *load.SLO, tracer *spans.Tracer, metricsOut string, stdout io.Writer) (*load.Report, error) {
	scheme, err := resolveScheme(p, name, seed)
	if err != nil {
		return nil, err
	}

	reg := metrics.NewRegistry()
	netnode.RegisterMetricFamilies(reg)
	store.RegisterMetricFamilies(reg)

	cluster, err := netnode.StartLocal(p)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	cluster.EnableMetrics(reg)
	if tracer != nil {
		cluster.EnableTracing(tracer)
	}

	migration, err := cluster.Deploy(scheme)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "booted %d TCP sites, deployed %s (%d replicas, migration cost %d)\n",
		p.Sites(), name, scheme.TotalReplicas(), migration)

	// Geo latency rides the fault middleware: an injector built from the
	// profile's link-latency plan delays every dial on a matching link.
	plan, err := pr.LatencyPlan(p.Sites())
	if err != nil {
		return nil, err
	}
	if len(plan.Events) > 0 {
		fault.Attach(cluster, fault.NewInjector(plan))
		fmt.Fprintf(stdout, "injecting link latency (%s, %d links)\n", geoLabel(pr), len(plan.Events))
	}

	before := load.CaptureNetCounters(reg)
	res, err := load.Run(load.ClusterTarget{C: cluster}, sched, load.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	mc := load.CrossCheck(res, reg, before)
	if metricsOut != "" {
		if err := metrics.WriteSnapshotFile(reg, metricsOut); err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "wrote metrics snapshot to %s\n", metricsOut)
	}
	return load.BuildReport(name, pr, sched, res, slo, &mc), nil
}

func geoLabel(pr load.Profile) string {
	if len(pr.MatrixMS) > 0 {
		return "matrix"
	}
	return pr.Geo
}

// resolveScheme maps a placement name — an algorithm or a scheme file —
// to a concrete replication scheme.
func resolveScheme(p *drp.Problem, name string, seed uint64) (*drp.Scheme, error) {
	switch name {
	case "none":
		return drp.NoReplication(p), nil
	case "sra":
		return drp.SRA(p).Scheme, nil
	case "gra":
		params := drp.DefaultGRAParams()
		params.Seed = seed
		res, err := drp.GRA(p, params)
		if err != nil {
			return nil, err
		}
		return res.Scheme, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("placement %q is not an algorithm (none|sra|gra) or a readable scheme file: %w", name, err)
	}
	defer f.Close()
	return drp.ReadScheme(p, f)
}

// parseWeights parses "1,0,2.5" into origin weights.
func parseWeights(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		var w float64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &w); err != nil {
			return nil, fmt.Errorf("bad weight %q", f)
		}
		out = append(out, w)
	}
	return out, nil
}
