package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drp/internal/load"
	"drp/internal/spans"
)

func TestLoadRunWritesGatedReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-sites", "4", "-objects", "20", "-rate", "300", "-duration", "800ms",
		"-slo", "p99<250ms,err<1%,tput>80%", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for _, want := range []string{"metrics cross-check: MATCH", "PASS"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.SLO.Pass || rep.Metrics == nil || !rep.Metrics.Match {
		t.Fatalf("archived report not gated: %+v", rep)
	}
	if rep.Requests.Total == 0 || rep.ScheduleDigest == "" {
		t.Fatalf("archived report incomplete: %+v", rep)
	}
	if rep.Requests.Total != rep.Read.Count+rep.Write.Count {
		t.Fatalf("request breakdown inconsistent: %d != %d+%d",
			rep.Requests.Total, rep.Read.Count, rep.Write.Count)
	}
}

func TestLoadSLOFailureExitsNonZero(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-sites", "3", "-objects", "10", "-rate", "200", "-duration", "400ms",
		"-slo", "p50<1ns", // unmeetable
	}, &buf)
	if err == nil {
		t.Fatalf("unmeetable SLO did not fail the run:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "SLO") {
		t.Fatalf("error does not name the SLO: %v", err)
	}
}

func TestLoadCompareReplaysIdenticalSchedule(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-sites", "4", "-objects", "16", "-rate", "250", "-duration", "700ms",
		"-compare", "none,sra", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "schedules IDENTICAL") {
		t.Fatalf("compare did not certify identical schedules:\n%s", buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var cmp load.Compare
	if err := json.Unmarshal(data, &cmp); err != nil {
		t.Fatal(err)
	}
	if !cmp.SameSchedule || cmp.A.ScheduleDigest != cmp.B.ScheduleDigest {
		t.Fatalf("comparison digests differ: %s vs %s", cmp.A.ScheduleDigest, cmp.B.ScheduleDigest)
	}
	if cmp.A.Scheme != "none" || cmp.B.Scheme != "sra" {
		t.Fatalf("schemes mislabeled: %q vs %q", cmp.A.Scheme, cmp.B.Scheme)
	}
}

func TestLoadProfileFileDrivesRun(t *testing.T) {
	dir := t.TempDir()
	profile := filepath.Join(dir, "load.json")
	if err := os.WriteFile(profile, []byte(`{
  "seed": 4, "rate": 300, "duration_ms": 500, "arrival": "bursty",
  "burst_mult": 6, "burst_start_ms": 100, "burst_end_ms": 300,
  "burst_focus": 0.8, "write_fraction": 0.1, "skew": 0.9, "geo": "lan"
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-sites", "4", "-objects", "12", "-profile", profile}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "arrival=bursty geo=lan") {
		t.Fatalf("profile file ignored:\n%s", buf.String())
	}
}

// TestLoadTraceFileCrossChecksReport runs with -trace-out and verifies
// the span file tells the same story as the report: one root span per
// request, split by op exactly as the report counts them.
func TestLoadTraceFileCrossChecksReport(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_load.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	var buf bytes.Buffer
	err := run([]string{
		"-sites", "3", "-objects", "12", "-rate", "200", "-duration", "500ms",
		"-out", outPath, "-trace-out", tracePath,
	}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}

	var rep load.Report
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sps, err := spans.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int64
	for _, tr := range spans.Assemble(sps) {
		switch tr.Root().Name {
		case "read":
			reads++
		case "write":
			writes++
		}
	}
	if reads != rep.Requests.Reads || writes != rep.Requests.Writes {
		t.Fatalf("span file holds %d read / %d write traces; report claims %d / %d",
			reads, writes, rep.Requests.Reads, rep.Requests.Writes)
	}
}

func TestLoadRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-slo", "p42<1ms"},
		{"-compare", "none"},
		{"-compare", "none,sra,gra"},
		{"-compare", "none,sra", "-scheme", "s.json"},
		{"-arrival", "chaotic"},
		{"-rate", "0"},
		{"-origins", "1,nope"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
