package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNetRunSRA(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sites", "5", "-objects", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model and wire agree exactly") {
		t.Fatalf("model/wire mismatch:\n%s", out.String())
	}
}

func TestNetRunNone(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sites", "4", "-objects", "6", "-algo", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 replicas") {
		t.Fatalf("none policy placed replicas:\n%s", out.String())
	}
}

func TestNetRunGRA(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sites", "5", "-objects", "6", "-algo", "gra", "-pop", "6", "-gens", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model and wire agree exactly") {
		t.Fatalf("model/wire mismatch:\n%s", out.String())
	}
}

func TestNetRunBadAlgo(t *testing.T) {
	if err := run([]string{"-algo", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNetRunMissingInput(t *testing.T) {
	if err := run([]string{"-in", "/does/not/exist"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestNetRunFaultPlan(t *testing.T) {
	plan := `{"seed":1,"events":[
		{"kind":"crash","site":1,"step":1,"until":20},
		{"kind":"latency","site":2,"step":1,"until":10,"delay_ms":1}
	]}`
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-sites", "5", "-objects", "8",
		"-fault-plan", path, "-retry", "3", "-req-timeout", "2s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"injecting 2 fault events",
		"reads served/failed",
		"writes served/queued",
		"cluster fully reconverged",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNetRunDurableRecovers(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-sites", "5", "-objects", "8",
		"-data-dir", dir, "-fsync", "never", "-snapshot-every", "16"}

	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "persisting to "+dir) {
		t.Fatalf("fresh run did not announce persistence:\n%s", first.String())
	}
	if !strings.Contains(first.String(), "model and wire agree exactly") {
		t.Fatalf("model/wire mismatch:\n%s", first.String())
	}

	// A rerun on the same directory replays the WALs: the scheme is already
	// deployed, so the redeploy migration is free.
	var second bytes.Buffer
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "recovered 5 of 5 sites from "+dir) {
		t.Fatalf("rerun did not recover from disk:\n%s", second.String())
	}
	if !strings.Contains(second.String(), "migration cost 0") {
		t.Fatalf("recovered scheme was re-shipped:\n%s", second.String())
	}
	if !strings.Contains(second.String(), "model and wire agree exactly") {
		t.Fatalf("model/wire mismatch after recovery:\n%s", second.String())
	}
}

func TestNetRunBadDurableFlags(t *testing.T) {
	if err := run([]string{"-sites", "4", "-objects", "6", "-snapshot-every", "8"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-snapshot-every without -data-dir accepted")
	}
	if err := run([]string{"-sites", "4", "-objects", "6",
		"-data-dir", t.TempDir(), "-fsync", "sometimes"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

func TestNetRunFaultPlanRejectsBadPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed":1,"events":[{"kind":"crash","site":99,"step":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sites", "4", "-objects", "6", "-fault-plan", path}, &bytes.Buffer{}); err == nil {
		t.Fatal("out-of-range fault plan accepted")
	}
}

func TestNetRunSLOGate(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sites", "4", "-objects", "6", "-slo", "p99<5s"}, &out); err != nil {
		t.Fatalf("generous latency gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `slo "p99<5s": PASS`) {
		t.Fatalf("gate verdict missing:\n%s", out.String())
	}

	out.Reset()
	err := run([]string{"-sites", "4", "-objects", "6", "-slo", "p50<1ns"}, &out)
	if err == nil || !strings.Contains(err.Error(), "SLO") {
		t.Fatalf("unmeetable gate did not fail the run: %v", err)
	}

	// err/tput terms need drpload's open-loop accounting.
	if err := run([]string{"-sites", "4", "-objects", "6", "-slo", "err<1%"}, &bytes.Buffer{}); err == nil {
		t.Fatal("err gate accepted by drpnet")
	}
	// The membership scenario has no single measurement period to gate.
	if err := run([]string{"-sites", "4", "-objects", "6", "-members", "0,1,2,3", "-slo", "p99<5s"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-slo with membership scenario accepted")
	}
}
