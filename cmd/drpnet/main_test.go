package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetRunSRA(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sites", "5", "-objects", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model and wire agree exactly") {
		t.Fatalf("model/wire mismatch:\n%s", out.String())
	}
}

func TestNetRunNone(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sites", "4", "-objects", "6", "-algo", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 replicas") {
		t.Fatalf("none policy placed replicas:\n%s", out.String())
	}
}

func TestNetRunGRA(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sites", "5", "-objects", "6", "-algo", "gra", "-pop", "6", "-gens", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model and wire agree exactly") {
		t.Fatalf("model/wire mismatch:\n%s", out.String())
	}
}

func TestNetRunBadAlgo(t *testing.T) {
	if err := run([]string{"-algo", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNetRunMissingInput(t *testing.T) {
	if err := run([]string{"-in", "/does/not/exist"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing input accepted")
	}
}
