// Command drpnet boots the replication system over real TCP sockets on
// the loopback interface: one server per site, a coordinator deploying a
// replication scheme, and a full measurement period of reads and writes
// driven through the wire protocol. It prints the accounted transfer cost
// next to the analytic model's prediction — they match exactly.
//
// Usage:
//
//	drpnet -sites 10 -objects 20                  # generate and run
//	drpnet -in problem.json -algo gra -gens 30    # optimise then serve
//	drpnet -fault-plan plan.json -retry 3 -req-timeout 2s   # chaos run
//	drpnet -data-dir /var/lib/drp -fsync every:64 # durable sites
//
// With -data-dir every site's state (replica holdings, versions, stale
// marks, queued writes, accounted NTC) lives in a per-site write-ahead
// log under the directory; a rerun on the same directory replays the logs
// and continues from the recovered state instead of re-seeding.
//
// With -fault-plan the measurement period is served under injected faults
// (site crashes, link blackholes, latency spikes, message drops — see
// internal/fault): degraded requests are reported instead of aborting the
// run, and afterwards queued writes are flushed and stale replicas
// reconciled.
//
// Observability: -listen-metrics serves the nodes' shared drp_net_* request
// instruments (latency histograms, replica-hit and NTC counters) as
// Prometheus text at /metrics, plus /debug/vars and /debug/pprof;
// -serve-for keeps the endpoint up after the traffic finishes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"drp"
	"drp/internal/fault"
	"drp/internal/metrics"
	"drp/internal/netnode"
	"drp/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpnet:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drpnet", flag.ContinueOnError)
	var (
		sites    = fs.Int("sites", 10, "number of sites (ignored with -in)")
		objects  = fs.Int("objects", 20, "number of objects (ignored with -in)")
		update   = fs.Float64("update", 0.05, "update ratio U")
		capacity = fs.Float64("capacity", 0.15, "capacity ratio C")
		seed     = fs.Uint64("seed", 1, "workload / algorithm seed")
		in       = fs.String("in", "", "problem JSON (default: generate)")
		algo     = fs.String("algo", "sra", "placement algorithm: none | sra | gra")
		pop      = fs.Int("pop", 16, "GRA population size")
		gens     = fs.Int("gens", 15, "GRA generations")

		listenMetrics = fs.String("listen-metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:0)")
		serveFor      = fs.Duration("serve-for", 0, "keep the metrics endpoint up this long after the run (0 = exit immediately)")

		faultPlan  = fs.String("fault-plan", "", "inject faults from this plan JSON (see internal/fault); degraded requests are reported, then queued writes flush and stale replicas reconcile")
		retries    = fs.Int("retry", 1, "transport attempts per request (1 = no retrying)")
		reqTimeout = fs.Duration("req-timeout", 0, "per-request deadline for dial plus round trip (0 = none)")

		dataDir   = fs.String("data-dir", "", "persist each site's state to a write-ahead log under this directory; a rerun on the same directory recovers the deployed scheme, versions and queued writes from disk")
		snapEvery = fs.Int("snapshot-every", 0, "snapshot each site's state and truncate its log every N appended records (0 = never; requires -data-dir)")
		fsync     = fs.String("fsync", "always", `WAL fsync policy: "always", "never" or "every:N" (requires -data-dir)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		p   *drp.Problem
		err error
	)
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		p, err = drp.ReadProblem(f)
	} else {
		p, err = drp.Generate(drp.NewSpec(*sites, *objects, *update, *capacity), *seed)
	}
	if err != nil {
		return err
	}

	var scheme *drp.Scheme
	switch *algo {
	case "none":
		scheme = drp.NoReplication(p)
	case "sra":
		scheme = drp.SRA(p).Scheme
	case "gra":
		params := drp.DefaultGRAParams()
		params.PopSize = *pop
		params.Generations = *gens
		params.Seed = *seed
		res, err := drp.GRA(p, params)
		if err != nil {
			return err
		}
		scheme = res.Scheme
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	// The metrics registry is created before the cluster so durable stores
	// can record drp_store_* counters from their very first replayed record.
	var reg *metrics.Registry
	if *listenMetrics != "" {
		reg = metrics.NewRegistry()
		netnode.RegisterMetricFamilies(reg)
		store.RegisterMetricFamilies(reg)
	}

	var cluster *netnode.Cluster
	if *dataDir != "" {
		policy, every, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		cluster, err = netnode.StartDurable(p, *dataDir, store.Options{
			Sync:          policy,
			SyncEvery:     every,
			SnapshotEvery: *snapEvery,
			Metrics:       reg,
		})
		if err != nil {
			return err
		}
	} else {
		if *snapEvery > 0 {
			return fmt.Errorf("-snapshot-every needs -data-dir")
		}
		var err error
		cluster, err = netnode.StartLocal(p)
		if err != nil {
			return err
		}
	}
	defer cluster.Close()

	if *retries > 1 {
		rp := netnode.DefaultRetry()
		rp.Attempts = *retries
		cluster.SetRetry(rp)
	}
	if *reqTimeout > 0 {
		cluster.SetRequestTimeout(*reqTimeout)
	}

	if reg != nil {
		cluster.EnableMetrics(reg)
		srv, err := metrics.Serve(*listenMetrics, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", srv.Addr())
		if *serveFor > 0 {
			defer time.Sleep(*serveFor)
		}
	}

	fmt.Fprintf(stdout, "booted %d TCP sites on loopback (e.g. site 0 at %s)\n",
		p.Sites(), cluster.Node(0).Addr())
	if *dataDir != "" {
		recovered := 0
		for i := 0; i < cluster.Sites(); i++ {
			if cluster.Node(i).Store().Recovered() {
				recovered++
			}
		}
		if recovered > 0 {
			fmt.Fprintf(stdout, "recovered %d of %d sites from %s: %d replicas already deployed\n",
				recovered, cluster.Sites(), *dataDir, cluster.Scheme().TotalReplicas())
		} else {
			fmt.Fprintf(stdout, "persisting to %s (fsync %s)\n", *dataDir, *fsync)
		}
	}

	migration, err := cluster.Deploy(scheme)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "deployed %s scheme: %d replicas, migration cost %d\n",
		*algo, scheme.TotalReplicas(), migration)

	if *faultPlan != "" {
		return runFaulted(cluster, p, scheme, *faultPlan, stdout)
	}

	total, err := cluster.DriveTraffic()
	if err != nil {
		return err
	}
	model := scheme.Cost()
	fmt.Fprintf(stdout, "served one measurement period over TCP:\n")
	fmt.Fprintf(stdout, "  accounted transfer cost: %d\n", total)
	fmt.Fprintf(stdout, "  eq.4 model prediction:   %d\n", model)
	fmt.Fprintf(stdout, "  savings vs primaries:    %.2f%%\n", p.Savings(total))
	if total == model {
		fmt.Fprintln(stdout, "  model and wire agree exactly ✓")
	} else {
		fmt.Fprintln(stdout, "  WARNING: model and wire disagree")
	}
	return nil
}

// runFaulted serves the measurement period under an injected fault plan,
// then recovers: queued writes flush and stale replicas reconcile once the
// logical clock has passed the last fault window.
func runFaulted(cluster *netnode.Cluster, p *drp.Problem, scheme *drp.Scheme, planPath string, stdout io.Writer) error {
	plan, err := fault.LoadPlan(planPath, p.Sites())
	if err != nil {
		return err
	}
	in := fault.NewInjector(plan)
	fault.Attach(cluster, in)
	fmt.Fprintf(stdout, "injecting %d fault events (seed %d)\n", len(plan.Events), plan.Seed)

	rep, err := cluster.DriveTrafficReport()
	if err != nil {
		return err
	}
	dials, refused, severed, dropped, delayed := in.Stats()
	fmt.Fprintf(stdout, "served one measurement period over TCP under faults:\n")
	fmt.Fprintf(stdout, "  accounted transfer cost: %d (eq.4 fault-free prediction: %d)\n", rep.NTC, scheme.Cost())
	fmt.Fprintf(stdout, "  reads served/failed:     %d/%d\n", rep.Reads, rep.FailedReads)
	fmt.Fprintf(stdout, "  writes served/queued:    %d/%d\n", rep.Writes, rep.QueuedWrites)
	fmt.Fprintf(stdout, "  dials: %d (refused %d, severed %d, dropped %d, delayed %d)\n",
		dials, refused, severed, dropped, delayed)

	// Recovery: move the clock past the last scheduled fault, replay the
	// queued writes and re-sync the replicas that missed a broadcast.
	in.AdvanceTo(plan.MaxStep())
	flushNTC, err := cluster.FlushPending()
	if err != nil {
		return err
	}
	recNTC, remaining, err := cluster.Reconcile()
	if err != nil {
		return fmt.Errorf("reconcile (are open-ended faults still active?): %w", err)
	}
	fmt.Fprintf(stdout, "recovery after the last fault window:\n")
	fmt.Fprintf(stdout, "  flushed queued writes:   cost %d (%d still queued)\n", flushNTC, cluster.PendingWrites())
	fmt.Fprintf(stdout, "  reconciled replicas:     cost %d (%d still stale)\n", recNTC, remaining)
	if cluster.PendingWrites() == 0 && remaining == 0 {
		fmt.Fprintln(stdout, "  cluster fully reconverged ✓")
	} else {
		fmt.Fprintln(stdout, "  WARNING: cluster did not fully reconverge")
	}
	return nil
}
