// Command drpnet boots the replication system over real TCP sockets on
// the loopback interface: one server per site, a coordinator deploying a
// replication scheme, and a full measurement period of reads and writes
// driven through the wire protocol. It prints the accounted transfer cost
// next to the analytic model's prediction — they match exactly.
//
// Usage:
//
//	drpnet -sites 10 -objects 20                  # generate and run
//	drpnet -in problem.json -algo gra -gens 30    # optimise then serve
//
// Observability: -listen-metrics serves the nodes' shared drp_net_* request
// instruments (latency histograms, replica-hit and NTC counters) as
// Prometheus text at /metrics, plus /debug/vars and /debug/pprof;
// -serve-for keeps the endpoint up after the traffic finishes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"drp"
	"drp/internal/metrics"
	"drp/internal/netnode"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpnet:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("drpnet", flag.ContinueOnError)
	var (
		sites    = fs.Int("sites", 10, "number of sites (ignored with -in)")
		objects  = fs.Int("objects", 20, "number of objects (ignored with -in)")
		update   = fs.Float64("update", 0.05, "update ratio U")
		capacity = fs.Float64("capacity", 0.15, "capacity ratio C")
		seed     = fs.Uint64("seed", 1, "workload / algorithm seed")
		in       = fs.String("in", "", "problem JSON (default: generate)")
		algo     = fs.String("algo", "sra", "placement algorithm: none | sra | gra")
		pop      = fs.Int("pop", 16, "GRA population size")
		gens     = fs.Int("gens", 15, "GRA generations")

		listenMetrics = fs.String("listen-metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:0)")
		serveFor      = fs.Duration("serve-for", 0, "keep the metrics endpoint up this long after the run (0 = exit immediately)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		p   *drp.Problem
		err error
	)
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		p, err = drp.ReadProblem(f)
	} else {
		p, err = drp.Generate(drp.NewSpec(*sites, *objects, *update, *capacity), *seed)
	}
	if err != nil {
		return err
	}

	var scheme *drp.Scheme
	switch *algo {
	case "none":
		scheme = drp.NoReplication(p)
	case "sra":
		scheme = drp.SRA(p).Scheme
	case "gra":
		params := drp.DefaultGRAParams()
		params.PopSize = *pop
		params.Generations = *gens
		params.Seed = *seed
		res, err := drp.GRA(p, params)
		if err != nil {
			return err
		}
		scheme = res.Scheme
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	cluster, err := netnode.StartLocal(p)
	if err != nil {
		return err
	}
	defer cluster.Close()

	if *listenMetrics != "" {
		reg := metrics.NewRegistry()
		netnode.RegisterMetricFamilies(reg)
		cluster.EnableMetrics(reg)
		srv, err := metrics.Serve(*listenMetrics, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", srv.Addr())
		if *serveFor > 0 {
			defer time.Sleep(*serveFor)
		}
	}

	fmt.Fprintf(stdout, "booted %d TCP sites on loopback (e.g. site 0 at %s)\n",
		p.Sites(), cluster.Node(0).Addr())

	migration, err := cluster.Deploy(scheme)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "deployed %s scheme: %d replicas, migration cost %d\n",
		*algo, scheme.TotalReplicas(), migration)

	total, err := cluster.DriveTraffic()
	if err != nil {
		return err
	}
	model := scheme.Cost()
	fmt.Fprintf(stdout, "served one measurement period over TCP:\n")
	fmt.Fprintf(stdout, "  accounted transfer cost: %d\n", total)
	fmt.Fprintf(stdout, "  eq.4 model prediction:   %d\n", model)
	fmt.Fprintf(stdout, "  savings vs primaries:    %.2f%%\n", p.Savings(total))
	if total == model {
		fmt.Fprintln(stdout, "  model and wire agree exactly ✓")
	} else {
		fmt.Fprintln(stdout, "  WARNING: model and wire disagree")
	}
	return nil
}
