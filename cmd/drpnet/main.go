// Command drpnet boots the replication system over real TCP sockets on
// the loopback interface: one server per site, a coordinator deploying a
// replication scheme, and a full measurement period of reads and writes
// driven through the wire protocol. It prints the accounted transfer cost
// next to the analytic model's prediction — they match exactly.
//
// Usage:
//
//	drpnet -sites 10 -objects 20                  # generate and run
//	drpnet -in problem.json -algo gra -gens 30    # optimise then serve
//	drpnet -fault-plan plan.json -retry 3 -req-timeout 2s   # chaos run
//	drpnet -data-dir /var/lib/drp -fsync every:64 # durable sites
//	drpnet -members 0,1,2,3 -join 4 -leave 0      # reshape the cluster
//
// With -data-dir every site's state (replica holdings, versions, stale
// marks, queued writes, accounted NTC) lives in a per-site write-ahead
// log under the directory; a rerun on the same directory replays the logs
// and continues from the recovered state instead of re-seeding.
//
// With -fault-plan the measurement period is served under injected faults
// (site crashes, link blackholes, latency spikes, message drops — see
// internal/fault): degraded requests are reported instead of aborting the
// run, and afterwards queued writes are flushed and stale replicas
// reconciled.
//
// With -members/-join/-leave the run becomes a membership scenario: the
// cluster boots on the founding view, a control plane (SRA founding
// solve, AGRA adaptation per view change) emits a versioned placement
// plan for every join and leave, and the data plane migrates
// incrementally — replicas copy in before anything routes to them, and a
// departing site keeps serving until the plan drains it. Combined with
// -data-dir the coordinator journals each plan before migrating; a rerun
// on the same directory boots the reshaped member set recorded in the
// journal and resumes any unfinished migration instead of replaying the
// scenario. -plan-out writes the final deployed plan as canonical JSON.
//
// Observability: -listen-metrics serves the nodes' shared drp_net_* request
// instruments (latency histograms, replica-hit and NTC counters) as
// Prometheus text at /metrics, plus /debug/vars and /debug/pprof;
// -serve-for keeps the endpoint up after the traffic finishes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"drp"
	ctrl "drp/internal/cluster"
	"drp/internal/fault"
	"drp/internal/load"
	"drp/internal/membership"
	"drp/internal/metrics"
	"drp/internal/netnode"
	"drp/internal/netsim"
	"drp/internal/plan"
	"drp/internal/spans"
	"drp/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drpnet:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("drpnet", flag.ContinueOnError)
	var (
		sites    = fs.Int("sites", 10, "number of sites (ignored with -in)")
		objects  = fs.Int("objects", 20, "number of objects (ignored with -in)")
		update   = fs.Float64("update", 0.05, "update ratio U")
		capacity = fs.Float64("capacity", 0.15, "capacity ratio C")
		seed     = fs.Uint64("seed", 1, "workload / algorithm seed")
		in       = fs.String("in", "", "problem JSON (default: generate)")
		algo     = fs.String("algo", "sra", "placement algorithm: none | sra | gra")
		pop      = fs.Int("pop", 16, "GRA population size")
		gens     = fs.Int("gens", 15, "GRA generations")

		sloExpr = fs.String("slo", "", `gate the run on client-observed wire latency, e.g. "p99<5ms" (latency terms of the drpload SLO grammar; exits non-zero when unmet)`)

		listenMetrics = fs.String("listen-metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:0)")
		serveFor      = fs.Duration("serve-for", 0, "keep the metrics endpoint up this long after the run (0 = exit immediately)")
		blockRate     = fs.Int("block-profile-rate", 0, "sample goroutine blocking events at this rate (ns) for /debug/pprof/block (0 = off; requires -listen-metrics)")
		mutexFrac     = fs.Int("mutex-profile-fraction", 0, "sample 1/N mutex contention events for /debug/pprof/mutex (0 = off; requires -listen-metrics)")

		traceOut    = fs.String("trace-out", "", "record one JSON span per line to this file: a trace per client request, deploy and migration (analyse with drptrace)")
		traceSample = fs.Int64("trace-sample", 1, "trace every nth request (deterministic counter, not probability; requires -trace-out)")
		traceClock  = fs.String("trace-clock", "logical", `span timestamp source: "logical" (deterministic ticks) or "wall" (real durations; requires -trace-out)`)

		faultPlan  = fs.String("fault-plan", "", "inject faults from this plan JSON (see internal/fault); degraded requests are reported, then queued writes flush and stale replicas reconcile")
		retries    = fs.Int("retry", 1, "transport attempts per request (1 = no retrying)")
		reqTimeout = fs.Duration("req-timeout", 0, "per-request deadline for dial plus round trip (0 = none)")

		dataDir   = fs.String("data-dir", "", "persist each site's state to a write-ahead log under this directory; a rerun on the same directory recovers the deployed scheme, versions and queued writes from disk")
		snapEvery = fs.Int("snapshot-every", 0, "snapshot each site's state and truncate its log every N appended records (0 = never; requires -data-dir)")
		fsync     = fs.String("fsync", "always", `WAL fsync policy: "always", "never" or "every:N" (requires -data-dir)`)

		members = fs.String("members", "", "comma-separated founding member sites (membership scenario; must cover every primary site)")
		join    = fs.String("join", "", "comma-separated sites that join after the founding plan deploys, each followed by a re-optimised plan and incremental migration")
		leave   = fs.String("leave", "", "comma-separated sites to drain and remove after the joins, each preceded by a plan that migrates the site empty")
		planOut = fs.String("plan-out", "", "write the final deployed placement plan as canonical JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Reject flag combinations that would otherwise be silently ignored.
	reshaping := *members != "" || *join != "" || *leave != ""
	slo, err := load.ParseSLO(*sloExpr)
	if err != nil {
		return err
	}
	if slo.HasNonLatency() {
		return fmt.Errorf("-slo on drpnet supports latency terms only; err/tput gates need drpload's open-loop accounting")
	}
	if slo != nil && reshaping {
		return fmt.Errorf("-slo cannot combine with the membership scenario; gate a separate drpload run instead")
	}
	if *serveFor > 0 && *listenMetrics == "" {
		return fmt.Errorf("-serve-for keeps the metrics endpoint alive and needs -listen-metrics")
	}
	if *listenMetrics == "" && (*blockRate > 0 || *mutexFrac > 0) {
		return fmt.Errorf("-block-profile-rate/-mutex-profile-fraction feed /debug/pprof and need -listen-metrics")
	}
	if *blockRate < 0 || *mutexFrac < 0 {
		return fmt.Errorf("profile sampling rates cannot be negative")
	}
	if *traceOut == "" {
		if *traceSample != 1 {
			return fmt.Errorf("-trace-sample selects traced requests and needs -trace-out")
		}
		if *traceClock != "logical" {
			return fmt.Errorf("-trace-clock sets the span clock and needs -trace-out")
		}
	}
	if *dataDir == "" {
		if *snapEvery > 0 {
			return fmt.Errorf("-snapshot-every needs -data-dir")
		}
		if *fsync != "always" {
			return fmt.Errorf("-fsync sets the WAL sync policy and needs -data-dir")
		}
	}
	if reshaping {
		if *faultPlan != "" {
			return fmt.Errorf("-fault-plan cannot combine with the membership scenario (-members/-join/-leave); run a chaos pass and a reshape pass separately")
		}
		if *algo != "sra" {
			return fmt.Errorf("-algo %q conflicts with the membership scenario: its control plane picks placements itself (SRA founding solve, AGRA adaptation); drop -algo", *algo)
		}
	}

	if *listenMetrics != "" {
		metrics.EnableRuntimeProfiles(*blockRate, *mutexFrac)
	}

	// The trace file flushes span by span; the deferred close reports the
	// first write error so a full disk cannot truncate a run silently.
	var tracer *spans.Tracer
	if *traceOut != "" {
		var closeTrace func() error
		tracer, closeTrace, err = spans.OpenFile(*traceOut, *traceSample, *traceClock)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := closeTrace(); cerr != nil && err == nil {
				err = fmt.Errorf("trace file %s: %w", *traceOut, cerr)
			}
		}()
		fmt.Fprintf(stdout, "tracing requests to %s (sample 1/%d, %s clock)\n", *traceOut, *traceSample, *traceClock)
	}

	var p *drp.Problem
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		p, err = drp.ReadProblem(f)
	} else {
		p, err = drp.Generate(drp.NewSpec(*sites, *objects, *update, *capacity), *seed)
	}
	if err != nil {
		return err
	}

	var storeOpts store.Options
	if *dataDir != "" {
		policy, every, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		storeOpts = store.Options{Sync: policy, SyncEvery: every, SnapshotEvery: *snapEvery}
	}

	if reshaping {
		founding, err := parseSiteList(*members, p.Sites())
		if err != nil {
			return fmt.Errorf("-members: %w", err)
		}
		if founding == nil {
			founding = make([]int, p.Sites())
			for i := range founding {
				founding[i] = i
			}
		}
		sort.Ints(founding)
		joins, err := parseSiteList(*join, p.Sites())
		if err != nil {
			return fmt.Errorf("-join: %w", err)
		}
		leaves, err := parseSiteList(*leave, p.Sites())
		if err != nil {
			return fmt.Errorf("-leave: %w", err)
		}
		inFounding := make(map[int]bool, len(founding))
		for _, m := range founding {
			inFounding[m] = true
		}
		for _, s := range joins {
			if inFounding[s] {
				return fmt.Errorf("-join: site %d is already a founding member", s)
			}
		}
		return runMembership(p, founding, joins, leaves, *dataDir, storeOpts,
			*retries, *reqTimeout, *listenMetrics, *serveFor, *planOut, tracer, stdout)
	}

	var scheme *drp.Scheme
	switch *algo {
	case "none":
		scheme = drp.NoReplication(p)
	case "sra":
		scheme = drp.SRA(p).Scheme
	case "gra":
		params := drp.DefaultGRAParams()
		params.PopSize = *pop
		params.Generations = *gens
		params.Seed = *seed
		res, err := drp.GRA(p, params)
		if err != nil {
			return err
		}
		scheme = res.Scheme
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	// The metrics registry is created before the cluster so durable stores
	// can record drp_store_* counters from their very first replayed record.
	// An SLO gate needs the latency instruments even without an endpoint.
	var reg *metrics.Registry
	if *listenMetrics != "" || slo != nil {
		reg = metrics.NewRegistry()
		netnode.RegisterMetricFamilies(reg)
		store.RegisterMetricFamilies(reg)
	}

	var cluster *netnode.Cluster
	if *dataDir != "" {
		storeOpts.Metrics = reg
		cluster, err = netnode.StartDurable(p, *dataDir, storeOpts)
		if err != nil {
			return err
		}
	} else {
		var err error
		cluster, err = netnode.StartLocal(p)
		if err != nil {
			return err
		}
	}
	defer cluster.Close()

	if *retries > 1 {
		rp := netnode.DefaultRetry()
		rp.Attempts = *retries
		cluster.SetRetry(rp)
	}
	if *reqTimeout > 0 {
		cluster.SetRequestTimeout(*reqTimeout)
	}
	if tracer != nil {
		cluster.EnableTracing(tracer)
	}

	if reg != nil {
		cluster.EnableMetrics(reg)
		if *listenMetrics != "" {
			srv, err := metrics.Serve(*listenMetrics, reg)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", srv.Addr())
			if *serveFor > 0 {
				defer time.Sleep(*serveFor)
			}
		}
	}

	fmt.Fprintf(stdout, "booted %d TCP sites on loopback (e.g. site 0 at %s)\n",
		p.Sites(), cluster.Node(0).Addr())
	if *dataDir != "" {
		recovered := 0
		for i := 0; i < cluster.Sites(); i++ {
			if cluster.Node(i).Store().Recovered() {
				recovered++
			}
		}
		if recovered > 0 {
			fmt.Fprintf(stdout, "recovered %d of %d sites from %s: %d replicas already deployed\n",
				recovered, cluster.Sites(), *dataDir, cluster.Scheme().TotalReplicas())
		} else {
			fmt.Fprintf(stdout, "persisting to %s (fsync %s)\n", *dataDir, *fsync)
		}
	}

	migration, err := cluster.Deploy(scheme)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "deployed %s scheme: %d replicas, migration cost %d\n",
		*algo, scheme.TotalReplicas(), migration)

	if *faultPlan != "" {
		if err := runFaulted(cluster, p, scheme, *faultPlan, reg, stdout); err != nil {
			return err
		}
		if err := gateSLO(slo, reg, stdout); err != nil {
			return err
		}
		return writePlanFile(cluster, *planOut, stdout)
	}

	total, err := cluster.DriveTraffic()
	if err != nil {
		return err
	}
	model := scheme.Cost()
	fmt.Fprintf(stdout, "served one measurement period over TCP:\n")
	fmt.Fprintf(stdout, "  accounted transfer cost: %d\n", total)
	fmt.Fprintf(stdout, "  eq.4 model prediction:   %d\n", model)
	fmt.Fprintf(stdout, "  savings vs primaries:    %.2f%%\n", p.Savings(total))
	if total == model {
		fmt.Fprintln(stdout, "  model and wire agree exactly ✓")
	} else {
		fmt.Fprintln(stdout, "  WARNING: model and wire disagree")
	}
	printLatency(reg, stdout)
	if err := gateSLO(slo, reg, stdout); err != nil {
		return err
	}
	return writePlanFile(cluster, *planOut, stdout)
}

// gateSLO evaluates a latency SLO against the drp_net_request_seconds
// histograms and fails the run when it is unmet.
func gateSLO(slo *load.SLO, reg *metrics.Registry, stdout io.Writer) error {
	if slo == nil {
		return nil
	}
	out := slo.EvalQuantiles(func(op string, p float64) int64 {
		h := reg.Histogram("drp_net_request_seconds", "", nil, metrics.Labels{"op": op})
		return int64(h.Quantile(p) * 1e9)
	})
	verdict := "PASS"
	if !out.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(stdout, "  slo %q: %s\n", out.Expr, verdict)
	for _, t := range out.Terms {
		mark := "ok"
		if !t.Pass {
			mark = "VIOLATED"
		}
		fmt.Fprintf(stdout, "    %-16s actual=%.3fms bound=%.3fms %s\n", t.Term, t.Actual, t.Bound, mark)
	}
	if !out.Pass {
		return fmt.Errorf("SLO %q not met", out.Expr)
	}
	return nil
}

// printLatency reports the client-observed wire latency quantiles when the
// run is instrumented; without a registry it prints nothing.
func printLatency(reg *metrics.Registry, stdout io.Writer) {
	if reg == nil {
		return
	}
	read := reg.Histogram("drp_net_request_seconds", "", nil, metrics.Labels{"op": "read"})
	write := reg.Histogram("drp_net_request_seconds", "", nil, metrics.Labels{"op": "write"})
	if read.Count()+write.Count() == 0 {
		return
	}
	fmt.Fprintf(stdout, "  request latency (ms):    read p50 %.3f p99 %.3f, write p50 %.3f p99 %.3f\n",
		read.Quantile(0.50)*1e3, read.Quantile(0.99)*1e3,
		write.Quantile(0.50)*1e3, write.Quantile(0.99)*1e3)
}

// runFaulted serves the measurement period under an injected fault plan,
// then recovers: queued writes flush and stale replicas reconcile once the
// logical clock has passed the last fault window.
func runFaulted(cluster *netnode.Cluster, p *drp.Problem, scheme *drp.Scheme, planPath string, reg *metrics.Registry, stdout io.Writer) error {
	fp, err := fault.LoadPlan(planPath, p.Sites())
	if err != nil {
		return err
	}
	in := fault.NewInjector(fp)
	fault.Attach(cluster, in)
	fmt.Fprintf(stdout, "injecting %d fault events (seed %d)\n", len(fp.Events), fp.Seed)

	rep, err := cluster.DriveTrafficReport()
	if err != nil {
		return err
	}
	dials, refused, severed, dropped, delayed := in.Stats()
	fmt.Fprintf(stdout, "served one measurement period over TCP under faults:\n")
	fmt.Fprintf(stdout, "  accounted transfer cost: %d (eq.4 fault-free prediction: %d)\n", rep.NTC, scheme.Cost())
	fmt.Fprintf(stdout, "  reads served/failed:     %d/%d\n", rep.Reads, rep.FailedReads)
	fmt.Fprintf(stdout, "  writes served/queued:    %d/%d\n", rep.Writes, rep.QueuedWrites)
	fmt.Fprintf(stdout, "  dials: %d (refused %d, severed %d, dropped %d, delayed %d)\n",
		dials, refused, severed, dropped, delayed)
	printLatency(reg, stdout)

	// Recovery: move the clock past the last scheduled fault, replay the
	// queued writes and re-sync the replicas that missed a broadcast.
	in.AdvanceTo(fp.MaxStep())
	flushNTC, err := cluster.FlushPending()
	if err != nil {
		return err
	}
	recNTC, remaining, err := cluster.Reconcile()
	if err != nil {
		return fmt.Errorf("reconcile (are open-ended faults still active?): %w", err)
	}
	fmt.Fprintf(stdout, "recovery after the last fault window:\n")
	fmt.Fprintf(stdout, "  flushed queued writes:   cost %d (%d still queued)\n", flushNTC, cluster.PendingWrites())
	fmt.Fprintf(stdout, "  reconciled replicas:     cost %d (%d still stale)\n", recNTC, remaining)
	if cluster.PendingWrites() == 0 && remaining == 0 {
		fmt.Fprintln(stdout, "  cluster fully reconverged ✓")
	} else {
		fmt.Fprintln(stdout, "  WARNING: cluster did not fully reconverge")
	}
	return nil
}

// runMembership drives the control/data-plane split end to end: boot the
// founding view, deploy the control plane's founding plan, then migrate
// through each join and leave while reads keep serving. With a data
// directory the coordinator journal makes the whole sequence resumable:
// a rerun finds the last recorded plan, boots its member set and resumes
// any unfinished migration instead of replaying the scenario.
func runMembership(p *drp.Problem, founding, joins, leaves []int, dataDir string, storeOpts store.Options,
	retries int, reqTimeout time.Duration, listenMetrics string, serveFor time.Duration,
	planOut string, tracer *spans.Tracer, stdout io.Writer) error {
	pcost := func(i, j int) int64 { return p.Cost(i, j) }

	var reg *metrics.Registry
	if listenMetrics != "" {
		reg = metrics.NewRegistry()
		netnode.RegisterMetricFamilies(reg)
		store.RegisterMetricFamilies(reg)
		storeOpts.Metrics = reg
	}

	var journal *store.Journal
	if dataDir != "" {
		var err error
		journal, err = store.OpenJournal(filepath.Join(dataDir, "coordinator"), storeOpts)
		if err != nil {
			return err
		}
		defer journal.Close()
		if _, data, ok := journal.LatestPlan(); ok {
			// The journal outranks the scenario flags: the recorded plan
			// names the member set the cluster was last migrating toward.
			target, err := plan.Unmarshal(data)
			if err != nil {
				return fmt.Errorf("journaled plan in %s: %w", dataDir, err)
			}
			fmt.Fprintf(stdout, "journal holds plan epoch %d over members %v; resuming it (the -members/-join/-leave scenario already ran)\n",
				target.Epoch, target.View.Members)
			c, err := netnode.StartDurableView(p, dataDir, storeOpts, target.View.Members)
			if err != nil {
				return err
			}
			defer c.Close()
			c.AttachJournal(journal)
			applyNet(c, retries, reqTimeout)
			if tracer != nil {
				c.EnableTracing(tracer)
			}
			stop, err := serveMetricsEndpoint(c, reg, listenMetrics, serveFor, stdout)
			if err != nil {
				return err
			}
			defer stop()
			rep, resumed, err := c.ResumeMigration(pcost)
			if err != nil {
				return fmt.Errorf("resume journaled migration: %w", err)
			}
			if resumed {
				fmt.Fprintf(stdout, "resumed migration to plan epoch %d: %d remaining steps, migration cost %d\n",
					c.Plan().Epoch, rep.Completed, rep.MigrationNTC)
			}
			return serveViewTraffic(p, c, pcost, planOut, stdout)
		}
	}

	var (
		c   *netnode.Cluster
		err error
	)
	if dataDir != "" {
		c, err = netnode.StartDurableView(p, dataDir, storeOpts, founding)
	} else {
		c, err = netnode.StartView(p, founding)
	}
	if err != nil {
		return err
	}
	defer c.Close()
	if journal != nil {
		c.AttachJournal(journal)
	}
	applyNet(c, retries, reqTimeout)
	if tracer != nil {
		c.EnableTracing(tracer)
	}
	stop, err := serveMetricsEndpoint(c, reg, listenMetrics, serveFor, stdout)
	if err != nil {
		return err
	}
	defer stop()
	fmt.Fprintf(stdout, "booted %d-member view %v over a %d-site universe (e.g. site %d at %s)\n",
		len(founding), founding, p.Sites(), founding[0], c.Node(founding[0]).Addr())

	tr, err := membership.NewTracker(netsim.Complete(p.Dist()), founding)
	if err != nil {
		return err
	}
	cp, err := ctrl.NewControlPlane(p, tr, ctrl.ControlOptions{Tracer: tracer})
	if err != nil {
		return err
	}
	cp.Bind()

	apply := func(stage string) error {
		if err := cp.Err(); err != nil {
			return fmt.Errorf("control plane: %w", err)
		}
		pl := cp.Plan()
		rep, err := c.ApplyPlan(pl, pcost)
		if err != nil {
			return fmt.Errorf("%s: %w", stage, err)
		}
		fmt.Fprintf(stdout, "%s: plan epoch %d over view %v, %d migration steps, cost %d\n",
			stage, pl.Epoch, pl.View.Members, rep.Completed, rep.MigrationNTC)
		return nil
	}
	if err := apply("founding plan"); err != nil {
		return err
	}
	for _, s := range joins {
		if _, err := c.Join(s, pcost); err != nil {
			return err
		}
		if _, err := tr.JoinSite(s); err != nil {
			return err
		}
		if err := apply(fmt.Sprintf("join site %d", s)); err != nil {
			return err
		}
	}
	for _, s := range leaves {
		if _, err := tr.LeaveSite(s); err != nil {
			return err
		}
		if err := apply(fmt.Sprintf("drain site %d", s)); err != nil {
			return err
		}
		if err := c.Leave(s); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "site %d left: view is now %v\n", s, c.Members())
	}
	return serveViewTraffic(p, c, pcost, planOut, stdout)
}

// serveViewTraffic drives one measurement period over the deployed plan
// and checks the wire accounting against the plan's eq. 4 serve cost.
func serveViewTraffic(p *drp.Problem, c *netnode.Cluster, pcost plan.CostFn, planOut string, stdout io.Writer) error {
	total, err := c.DriveTraffic()
	if err != nil {
		return err
	}
	model := plan.ServeCost(p, c.Plan(), pcost)
	fmt.Fprintf(stdout, "served one measurement period over TCP:\n")
	fmt.Fprintf(stdout, "  accounted transfer cost: %d\n", total)
	fmt.Fprintf(stdout, "  eq.4 model prediction:   %d\n", model)
	if total == model {
		fmt.Fprintln(stdout, "  model and wire agree exactly ✓")
	} else {
		fmt.Fprintln(stdout, "  WARNING: model and wire disagree")
	}
	return writePlanFile(c, planOut, stdout)
}

// applyNet pushes the transport knobs to every live node.
func applyNet(c *netnode.Cluster, retries int, reqTimeout time.Duration) {
	if retries > 1 {
		rp := netnode.DefaultRetry()
		rp.Attempts = retries
		c.SetRetry(rp)
	}
	if reqTimeout > 0 {
		c.SetRequestTimeout(reqTimeout)
	}
}

// serveMetricsEndpoint enables the cluster instruments and serves the
// registry; the returned stop function honours -serve-for then shuts the
// endpoint down. With no registry both are no-ops.
func serveMetricsEndpoint(c *netnode.Cluster, reg *metrics.Registry, listen string, serveFor time.Duration, stdout io.Writer) (func(), error) {
	if reg == nil {
		return func() {}, nil
	}
	c.EnableMetrics(reg)
	srv, err := metrics.Serve(listen, reg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", srv.Addr())
	return func() {
		if serveFor > 0 {
			time.Sleep(serveFor)
		}
		srv.Close()
	}, nil
}

// writePlanFile writes the deployed plan's canonical JSON encoding.
func writePlanFile(c *netnode.Cluster, path string, stdout io.Writer) error {
	if path == "" {
		return nil
	}
	pl := c.Plan()
	if pl == nil {
		return fmt.Errorf("-plan-out: no plan deployed")
	}
	data, err := pl.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote plan epoch %d (%d-member view) to %s\n",
		pl.Epoch, len(pl.View.Members), path)
	return nil
}

// parseSiteList parses a comma-separated list of site indices, rejecting
// duplicates and sites outside the universe. An empty list returns nil.
func parseSiteList(s string, sites int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	seen := make(map[int]bool)
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad site %q", f)
		}
		if v < 0 || v >= sites {
			return nil, fmt.Errorf("site %d is outside the %d-site universe", v, sites)
		}
		if seen[v] {
			return nil, fmt.Errorf("site %d listed twice", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}
