package netnode

import (
	"time"

	"drp/internal/metrics"
)

// nodeMetrics caches the instrument handles one node records into. All
// nodes of a cluster share one registry, so the drp_net_* families
// aggregate across sites (per-site series would multiply cardinality for
// no operational value on a single host).
type nodeMetrics struct {
	reg *metrics.Registry

	readSeconds   *metrics.Histogram
	writeSeconds  *metrics.Histogram
	readsLocal    *metrics.Counter
	readsRemote   *metrics.Counter
	writesPrimary *metrics.Counter
	writesRemote  *metrics.Counter
	ntcRead       *metrics.Counter
	ntcWrite      *metrics.Counter
	failovers     *metrics.Counter
	ntcFailover   *metrics.Counter
	ntcFlush      *metrics.Counter
}

func newNodeMetrics(reg *metrics.Registry) *nodeMetrics {
	latency := metrics.LatencyBuckets()
	return &nodeMetrics{
		reg:           reg,
		readSeconds:   reg.Histogram("drp_net_request_seconds", "Client-observed request latency over the wire.", latency, metrics.Labels{"op": "read"}),
		writeSeconds:  reg.Histogram("drp_net_request_seconds", "Client-observed request latency over the wire.", latency, metrics.Labels{"op": "write"}),
		readsLocal:    reg.Counter("drp_net_replica_reads_total", "Reads by serving replica location.", metrics.Labels{"source": "local"}),
		readsRemote:   reg.Counter("drp_net_replica_reads_total", "Reads by serving replica location.", metrics.Labels{"source": "remote"}),
		writesPrimary: reg.Counter("drp_net_writes_total", "Writes by the writer's role for the object.", metrics.Labels{"role": "primary"}),
		writesRemote:  reg.Counter("drp_net_writes_total", "Writes by the writer's role for the object.", metrics.Labels{"role": "remote"}),
		ntcRead:       reg.Counter("drp_net_ntc_total", "Transfer cost accounted to client requests.", metrics.Labels{"op": "read"}),
		ntcWrite:      reg.Counter("drp_net_ntc_total", "Transfer cost accounted to client requests.", metrics.Labels{"op": "write"}),
		failovers:     reg.Counter("drp_net_read_failovers_total", "Reads served by a farther replica after the nearest was unreachable.", nil),
		ntcFailover:   reg.Counter("drp_net_ntc_degraded_total", "Transfer cost accounted to degraded-path requests.", metrics.Labels{"op": "read_failover"}),
		ntcFlush:      reg.Counter("drp_net_ntc_degraded_total", "Transfer cost accounted to degraded-path requests.", metrics.Labels{"op": "write_flush"}),
	}
}

// message op → served-message counter; get-or-create per message is one
// mutex-guarded map lookup, noise next to a loopback round trip.
func (nm *nodeMetrics) served(op string) {
	nm.reg.Counter("drp_net_messages_total", "Wire protocol messages served, by op.", metrics.Labels{"op": op}).Inc()
}

// retry counts one transport-level retry of an outbound call, by op.
func (nm *nodeMetrics) retry(op string) {
	nm.reg.Counter("drp_net_retries_total", "Transport-level retries of outbound calls, by op.", metrics.Labels{"op": op}).Inc()
}

// timeout counts one per-request deadline miss, by op.
func (nm *nodeMetrics) timeout(op string) {
	nm.reg.Counter("drp_net_request_timeouts_total", "Outbound calls that missed their per-request deadline, by op.", metrics.Labels{"op": op}).Inc()
}

// degraded counts one degraded-path outcome: a read with no live replica,
// a write queued behind an unreachable primary, or a partial broadcast.
func (nm *nodeMetrics) degraded(kind string) {
	nm.reg.Counter("drp_net_degraded_total", "Requests that left the happy path, by outcome.", metrics.Labels{"kind": kind}).Inc()
}

// failover records a read served by a farther replica and its cost.
func (nm *nodeMetrics) failover(cost int64) {
	nm.failovers.Inc()
	nm.ntcFailover.Add(cost)
}

// flushed records one queued write replayed successfully.
func (nm *nodeMetrics) flushed(cost int64) {
	nm.degraded("write_flushed")
	nm.ntcFlush.Add(cost)
}

// RegisterMetricFamilies pre-creates the drp_net_* families in reg at zero,
// for endpoints that must expose the full surface before any traffic.
func RegisterMetricFamilies(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	nm := newNodeMetrics(reg)
	for _, op := range []string{"read", "update", "sync", "place", "drop", "version", "registry", "nearest", "replicas", "reconcile"} {
		nm.reg.Counter("drp_net_messages_total", "Wire protocol messages served, by op.", metrics.Labels{"op": op})
	}
	for _, op := range []string{"read", "update", "sync"} {
		nm.reg.Counter("drp_net_retries_total", "Transport-level retries of outbound calls, by op.", metrics.Labels{"op": op})
		nm.reg.Counter("drp_net_request_timeouts_total", "Outbound calls that missed their per-request deadline, by op.", metrics.Labels{"op": op})
	}
	for _, kind := range []string{"read_failed", "write_queued", "write_flushed", "broadcast_partial"} {
		nm.reg.Counter("drp_net_degraded_total", "Requests that left the happy path, by outcome.", metrics.Labels{"kind": kind})
	}
}

func (nm *nodeMetrics) read(local bool, cost int64, elapsed time.Duration) {
	if local {
		nm.readsLocal.Inc()
	} else {
		nm.readsRemote.Inc()
	}
	nm.ntcRead.Add(cost)
	nm.readSeconds.Observe(elapsed.Seconds())
}

func (nm *nodeMetrics) write(primary bool, cost int64, elapsed time.Duration) {
	if primary {
		nm.writesPrimary.Inc()
	} else {
		nm.writesRemote.Inc()
	}
	nm.ntcWrite.Add(cost)
	nm.writeSeconds.Observe(elapsed.Seconds())
}

// SetMetrics attaches a registry to the node: client-side Read/Write
// latency histograms, replica-hit and NTC counters, and server-side
// message counters. Call before driving traffic; nil detaches.
func (n *Node) SetMetrics(reg *metrics.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reg == nil {
		n.metrics = nil
		return
	}
	n.metrics = newNodeMetrics(reg)
}

// EnableMetrics attaches one shared registry to every node of the cluster
// (and to nodes later brought back by RestartNode).
func (c *Cluster) EnableMetrics(reg *metrics.Registry) {
	c.metricsReg = reg
	for _, node := range c.nodes {
		if node != nil {
			node.SetMetrics(reg)
		}
	}
}
