package netnode

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"drp/internal/core"
	"drp/internal/membership"
	"drp/internal/metrics"
	"drp/internal/plan"
	"drp/internal/spans"
	"drp/internal/store"
	"drp/internal/xrand"
)

// Cluster manages one node per member site on the loopback interface and
// plays the coordinator (monitor) role: deploying replication schemes and
// placement plans, driving traffic, and — under faults — flushing queued
// writes and reconciling stale replicas. The node slice is
// universe-indexed; a site that has not joined (or has left) is a nil
// slot.
type Cluster struct {
	p       *core.Problem
	nodes   []*Node
	current *core.Scheme // nil when the deployed plan has no scheme form
	members []int        // member sites, ascending
	plan    *plan.Plan   // deployed placement plan

	dial       Dialer        // coordinator's outbound dialer (fault seam)
	retry      RetryPolicy   // coordinator command retries
	reqTimeout time.Duration // coordinator per-command deadline
	rng        *xrand.Source // backoff jitter for coordinator retries
	hook       func()        // called before every driven request

	journal  *store.Journal  // coordinator journal (plan persistence)
	stepHook func(plan.Step) // chaos seam: runs before each migration step

	dataDir    string            // "" for a memory cluster
	storeOpts  store.Options     // per-site store options (durable clusters)
	metricsReg *metrics.Registry // re-applied to restarted nodes
	tracer     *spans.Tracer     // shared request tracer; re-applied to restarted nodes
}

// SiteDir returns the data directory of site i under a cluster root.
func SiteDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("site-%03d", i))
}

// StartLocal boots one node per site on 127.0.0.1 ephemeral ports, wires
// the address tables and deploys the primaries-only scheme.
func StartLocal(p *core.Problem) (*Cluster, error) {
	c := &Cluster{
		p:       p,
		current: core.NewScheme(p),
		retry:   RetryPolicy{Attempts: 1},
		rng:     xrand.New(0x10ad),
	}
	addrs := make([]string, p.Sites())
	for i := 0; i < p.Sites(); i++ {
		node, err := Listen(p, i, "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		addrs[i] = node.Addr()
	}
	for _, node := range c.nodes {
		node.SetPeers(addrs)
	}
	c.members = allSites(p)
	c.plan = plan.FromScheme(c.current)
	return c, nil
}

// allSites returns every universe site index, ascending.
func allSites(p *core.Problem) []int {
	ms := make([]int, p.Sites())
	for i := range ms {
		ms[i] = i
	}
	return ms
}

// StartDurable boots one durable node per site, each opening — and
// therefore replaying — a WAL-backed store in root/site-NNN. On a fresh
// root this is StartLocal with persistence; on a root that has seen a
// crash, every node restarts with exactly the state it had acknowledged,
// and the coordinator's notion of the deployed scheme is reconstructed
// from the recovered holdings so the next Deploy diffs against what the
// disks actually hold.
func StartDurable(p *core.Problem, root string, opts store.Options) (*Cluster, error) {
	if root == "" {
		return nil, errors.New("netnode: StartDurable needs a data directory")
	}
	c := &Cluster{
		p:         p,
		retry:     RetryPolicy{Attempts: 1},
		rng:       xrand.New(0x10ad),
		dataDir:   root,
		storeOpts: opts,
	}
	addrs := make([]string, p.Sites())
	for i := 0; i < p.Sites(); i++ {
		st, err := store.Open(SiteDir(root, i), i, primaries(p), opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		node, err := ListenStore(p, i, "127.0.0.1:0", st)
		if err != nil {
			_ = st.Close()
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		addrs[i] = node.Addr()
	}
	for _, node := range c.nodes {
		node.SetPeers(addrs)
	}
	cur, err := c.recoveredScheme()
	if err != nil {
		c.Close()
		return nil, err
	}
	c.current = cur
	c.members = allSites(p)
	c.plan = plan.FromScheme(c.current)
	return c, nil
}

// recoveredScheme rebuilds the deployed scheme from the nodes' (possibly
// replayed) holdings.
func (c *Cluster) recoveredScheme() (*core.Scheme, error) {
	cur := core.NewScheme(c.p)
	for i, node := range c.nodes {
		if node == nil {
			continue
		}
		for k := 0; k < c.p.Objects(); k++ {
			if !node.Holds(k) || cur.Has(i, k) {
				continue
			}
			if err := cur.Add(i, k); err != nil {
				return nil, fmt.Errorf("netnode: recovered holdings of site %d are inconsistent: object %d: %w", i, k, err)
			}
		}
	}
	return cur, nil
}

// RestartNode brings site i back after a Kill (or Close): its store is
// reopened from the site's data directory — replaying the log — a fresh
// listener starts, and every node's address table is rewired. The
// cluster's retry policy, request timeout and metrics registry are
// re-applied; fault middleware is not (re-Attach or re-register the new
// address with the injector, since the injector middleware holds the old
// dialer).
func (c *Cluster) RestartNode(i int) (*Node, error) {
	if c.dataDir == "" {
		return nil, errors.New("netnode: RestartNode needs a durable cluster")
	}
	if i < 0 || i >= len(c.nodes) {
		return nil, fmt.Errorf("netnode: site %d out of range", i)
	}
	if c.nodes[i] == nil {
		return nil, fmt.Errorf("netnode: site %d is not a member", i)
	}
	_ = c.nodes[i].Kill() // idempotent: a no-op after Kill or Close
	st, err := store.Open(SiteDir(c.dataDir, i), i, primaries(c.p), c.storeOpts)
	if err != nil {
		return nil, err
	}
	node, err := ListenStore(c.p, i, "127.0.0.1:0", st)
	if err != nil {
		_ = st.Close()
		return nil, err
	}
	node.SetRetry(c.retry)
	node.SetRequestTimeout(c.reqTimeout)
	if c.metricsReg != nil {
		node.SetMetrics(c.metricsReg)
	}
	if c.tracer != nil {
		node.SetTracer(c.tracer)
	}
	c.nodes[i] = node
	c.rewirePeers()
	return node, nil
}

// Node returns the node for site i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Sites returns the number of sites in the cluster.
func (c *Cluster) Sites() int { return c.p.Sites() }

// TotalNTC sums the transfer cost accounted by every live node since it
// started — deploy, serve and migration traffic alike. Load harnesses
// diff it around a run to attribute cost to that run alone.
func (c *Cluster) TotalNTC() int64 {
	var total int64
	for _, node := range c.nodes {
		if node != nil {
			total += node.NTC()
		}
	}
	return total
}

// Scheme returns the currently deployed scheme, or nil when the deployed
// plan has moved a primary (or drained a universe primary site) and so
// has no scheme representation — use Plan then.
func (c *Cluster) Scheme() *core.Scheme {
	if c.current == nil {
		return nil
	}
	return c.current.Clone()
}

// SetCommandDialer routes the coordinator's own commands through d (nil
// restores the default TCP dialer). Fault middleware hooks in here.
func (c *Cluster) SetCommandDialer(d Dialer) { c.dial = d }

// SetRequestHook installs fn to run immediately before every request
// driven by DriveTraffic / DriveTrafficReport. Fault injectors use it to
// advance their deterministic logical clock in lockstep with the traffic.
func (c *Cluster) SetRequestHook(fn func()) { c.hook = fn }

// SetRetry applies one retry policy to every node's client calls and to
// the coordinator's commands.
func (c *Cluster) SetRetry(rp RetryPolicy) {
	c.retry = rp
	for _, node := range c.nodes {
		if node != nil {
			node.SetRetry(rp)
		}
	}
}

// SetRequestTimeout applies one per-request deadline to every node's
// client calls and to the coordinator's commands.
func (c *Cluster) SetRequestTimeout(d time.Duration) {
	c.reqTimeout = d
	for _, node := range c.nodes {
		if node != nil {
			node.SetRequestTimeout(d)
		}
	}
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, node := range c.nodes {
		if node != nil {
			_ = node.Close()
		}
	}
}

// Deploy diffs the current scheme against next and realises it: placing
// and dropping replicas, refreshing each primary's replicator registry,
// every site's nearest-replica records and every site's replicator list
// (the read-failover ranking). Returns the migration transfer cost (each
// new replica fetched from the nearest prior holder).
func (c *Cluster) Deploy(next *core.Scheme) (migration int64, err error) {
	if c.current == nil {
		return 0, errors.New("netnode: deployed plan has no scheme form; use ApplyPlan")
	}
	nextPlan, err := plan.FromSchemeView(next, membership.View{Epoch: c.plan.View.Epoch, Members: c.members})
	if err != nil {
		return 0, err
	}
	nextPlan.Epoch = c.plan.Epoch
	migration = c.current.MigrationCost(next)
	added, removed := c.current.Diff(next)
	root := c.tracer.Root("deploy")
	defer func() {
		root.SetErr(err)
		root.Finish()
	}()
	for _, pl := range added {
		// New replicas start at the primary's current version: placing a
		// replica is a fetch of the latest copy.
		version := c.nodes[c.p.Primary(pl.Object)].Version(pl.Object)
		if err := c.command(pl.Site, message{Op: "place", Object: pl.Object, Version: version}, root); err != nil {
			return 0, err
		}
	}
	for _, pl := range removed {
		if err := c.command(pl.Site, message{Op: "drop", Object: pl.Object}, root); err != nil {
			return 0, err
		}
	}
	// Refresh primary registries, nearest tables and replicator lists for
	// every object whose replicator set changed.
	touched := make(map[int]bool)
	for _, pl := range added {
		touched[pl.Object] = true
	}
	for _, pl := range removed {
		touched[pl.Object] = true
	}
	nearest := core.NewNearestTable(next)
	objs := make([]int, 0, len(touched))
	for k := range touched {
		objs = append(objs, k)
	}
	sort.Ints(objs)
	for _, k := range objs {
		repl := next.Replicators(k)
		if err := c.command(c.p.Primary(k), message{Op: "registry", Object: k, Sites: repl}, root); err != nil {
			return 0, err
		}
		for _, i := range c.members {
			if err := c.command(i, message{Op: "nearest", Object: k, Site: nearest.Nearest(i, k)}, root); err != nil {
				return 0, err
			}
			if err := c.command(i, message{Op: "replicas", Object: k, Sites: repl}, root); err != nil {
				return 0, err
			}
		}
	}
	// The migration cost is computed analytically (each new replica
	// fetched from the nearest prior holder); attribute it to the
	// deploy's root span.
	root.SetNTC(migration)
	c.current = next.Clone()
	c.plan = nextPlan
	return migration, nil
}

// command sends one coordinator request to a site, retrying transport
// failures per the coordinator's retry policy. parent, when non-nil,
// receives one rpc child span per attempt (the coordinator-side mirror
// of Node.call).
func (c *Cluster) command(site int, msg message, parent *spans.Span) error {
	resp, err := c.exchange(site, msg, parent)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: site %d rejected %s: %w", site, msg.Op, &ReplyError{Code: resp.Code, Msg: resp.Err})
	}
	return nil
}

func (c *Cluster) exchange(site int, msg message, parent *spans.Span) (reply, error) {
	if c.nodes[site] == nil {
		return reply{}, fmt.Errorf("netnode: site %d is not a member", site)
	}
	addr := c.nodes[site].Addr()
	attempts := c.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if d := c.retry.backoff(a-1, c.rng); d > 0 {
				time.Sleep(d)
			}
		}
		att := parent.Child("rpc." + msg.Op)
		att.SetPeer(site)
		att.SetAttempt(a)
		msg.Trace, msg.Span = att.Context()
		resp, err := callOnce(c.dial, addr, msg, c.reqTimeout)
		if err == nil {
			att.Finish()
			return resp, nil
		}
		att.SetErr(err)
		att.Finish()
		lastErr = err
	}
	return reply{}, lastErr
}

// TrafficReport summarises one measurement period driven under faults.
type TrafficReport struct {
	// NTC is the transfer cost accounted to the requests that were served.
	NTC int64
	// Reads/Writes count the requests that were served (including reads
	// served by failover and writes with a partial broadcast).
	Reads, Writes int64
	// FailedReads count reads that found no reachable replica.
	FailedReads int64
	// QueuedWrites count writes queued because the primary was unreachable;
	// FlushPending replays them.
	QueuedWrites int64
}

// DriveTraffic issues every read and write of the problem's measurement
// period through the TCP cluster and returns the total accounted transfer
// cost. With correct nearest tables and no faults this equals eq. 4's D
// for the deployed scheme. Any request failure aborts with its error.
func (c *Cluster) DriveTraffic() (int64, error) {
	rep, err := c.driveTraffic(false)
	if err != nil {
		return 0, err
	}
	return rep.NTC, nil
}

// DriveTrafficReport drives the same measurement period but degrades
// instead of aborting: reads with no live replica and writes whose
// primary is unreachable are counted in the report rather than failing
// the run. Protocol-level rejections (coordination bugs) still abort.
func (c *Cluster) DriveTrafficReport() (*TrafficReport, error) {
	return c.driveTraffic(true)
}

func (c *Cluster) driveTraffic(tolerate bool) (*TrafficReport, error) {
	rep := &TrafficReport{}
	for _, i := range c.members {
		for k := 0; k < c.p.Objects(); k++ {
			for r := int64(0); r < c.p.Reads(i, k); r++ {
				if c.hook != nil {
					c.hook()
				}
				cost, err := c.nodes[i].Read(k)
				if err != nil {
					if tolerate && errors.Is(err, ErrNoReplica) {
						rep.FailedReads++
						continue
					}
					return rep, fmt.Errorf("read site %d object %d: %w", i, k, err)
				}
				rep.Reads++
				rep.NTC += cost
			}
			for w := int64(0); w < c.p.Writes(i, k); w++ {
				if c.hook != nil {
					c.hook()
				}
				cost, err := c.nodes[i].Write(k)
				if err != nil {
					if tolerate && errors.Is(err, ErrWriteQueued) {
						rep.QueuedWrites++
						continue
					}
					return rep, fmt.Errorf("write site %d object %d: %w", i, k, err)
				}
				rep.Writes++
				rep.NTC += cost
			}
		}
	}
	return rep, nil
}

// FlushPending replays every queued write in site order and returns the
// transfer cost incurred. Writes whose primary is still unreachable stay
// queued.
func (c *Cluster) FlushPending() (int64, error) {
	var total int64
	for _, node := range c.nodes {
		if node == nil {
			continue
		}
		cost, err := node.FlushPending()
		total += cost
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// PendingWrites sums the queued writes across all nodes.
func (c *Cluster) PendingWrites() int {
	total := 0
	for _, node := range c.nodes {
		if node != nil {
			total += node.PendingWrites()
		}
	}
	return total
}

// Reconcile asks every primary to re-sync the replicas that missed a
// broadcast (crashed or partitioned during a write), returning the
// transfer cost of the re-shipped copies and the number of replicas still
// unreachable. Run it after a failed site rejoins to restore version
// convergence.
func (c *Cluster) Reconcile() (int64, int, error) {
	var total int64
	remaining := 0
	for k := 0; k < c.p.Objects(); k++ {
		sp := c.plan.Primaries[k]
		// One root span per object: the re-sync transfers themselves are
		// recorded primary-side and stitch in over the wire context.
		root := c.tracer.Root("reconcile")
		root.SetObject(k)
		root.SetPeer(sp)
		resp, err := c.exchange(sp, message{Op: "reconcile", Object: k}, root)
		if err != nil {
			root.SetErr(err)
			root.Finish()
			return total, remaining, fmt.Errorf("reconcile object %d: %w", k, err)
		}
		if !resp.OK {
			root.SetErrText(resp.Err)
			root.Finish()
			return total, remaining, fmt.Errorf("reconcile object %d: %w", k, &ReplyError{Code: resp.Code, Msg: resp.Err})
		}
		root.Finish()
		total += resp.Cost
		remaining += len(resp.Stale)
	}
	return total, remaining, nil
}
