package netnode

import (
	"fmt"

	"drp/internal/core"
)

// Cluster manages one node per site on the loopback interface and plays
// the coordinator (monitor) role: deploying replication schemes and
// driving traffic.
type Cluster struct {
	p       *core.Problem
	nodes   []*Node
	current *core.Scheme
}

// StartLocal boots one node per site on 127.0.0.1 ephemeral ports, wires
// the address tables and deploys the primaries-only scheme.
func StartLocal(p *core.Problem) (*Cluster, error) {
	c := &Cluster{p: p, current: core.NewScheme(p)}
	addrs := make([]string, p.Sites())
	for i := 0; i < p.Sites(); i++ {
		node, err := Listen(p, i, "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		addrs[i] = node.Addr()
	}
	for _, node := range c.nodes {
		node.SetPeers(addrs)
	}
	return c, nil
}

// Node returns the node for site i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Scheme returns the currently deployed scheme.
func (c *Cluster) Scheme() *core.Scheme { return c.current.Clone() }

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, node := range c.nodes {
		if node != nil {
			_ = node.Close()
		}
	}
}

// Deploy diffs the current scheme against next and realises it: placing
// and dropping replicas, refreshing each primary's replicator registry and
// every site's nearest-replica records. Returns the migration transfer
// cost (each new replica fetched from the nearest prior holder).
func (c *Cluster) Deploy(next *core.Scheme) (int64, error) {
	migration := c.current.MigrationCost(next)
	added, removed := c.current.Diff(next)
	for _, pl := range added {
		// New replicas start at the primary's current version: placing a
		// replica is a fetch of the latest copy.
		version := c.nodes[c.p.Primary(pl.Object)].Version(pl.Object)
		if err := c.command(pl.Site, message{Op: "place", Object: pl.Object, Version: version}); err != nil {
			return 0, err
		}
	}
	for _, pl := range removed {
		if err := c.command(pl.Site, message{Op: "drop", Object: pl.Object}); err != nil {
			return 0, err
		}
	}
	// Refresh primary registries and nearest tables for every object whose
	// replicator set changed.
	touched := make(map[int]bool)
	for _, pl := range added {
		touched[pl.Object] = true
	}
	for _, pl := range removed {
		touched[pl.Object] = true
	}
	nearest := core.NewNearestTable(next)
	for k := range touched {
		if err := c.command(c.p.Primary(k), message{Op: "registry", Object: k, Sites: next.Replicators(k)}); err != nil {
			return 0, err
		}
		for i := 0; i < c.p.Sites(); i++ {
			if err := c.command(i, message{Op: "nearest", Object: k, Site: nearest.Nearest(i, k)}); err != nil {
				return 0, err
			}
		}
	}
	c.current = next.Clone()
	return migration, nil
}

func (c *Cluster) command(site int, msg message) error {
	resp, err := call(c.nodes[site].Addr(), msg)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("netnode: site %d rejected %s: %s", site, msg.Op, resp.Err)
	}
	return nil
}

// DriveTraffic issues every read and write of the problem's measurement
// period through the TCP cluster and returns the total accounted transfer
// cost. With correct nearest tables this equals eq. 4's D for the deployed
// scheme.
func (c *Cluster) DriveTraffic() (int64, error) {
	var total int64
	for i := 0; i < c.p.Sites(); i++ {
		for k := 0; k < c.p.Objects(); k++ {
			for r := int64(0); r < c.p.Reads(i, k); r++ {
				cost, err := c.nodes[i].Read(k)
				if err != nil {
					return 0, fmt.Errorf("read site %d object %d: %w", i, k, err)
				}
				total += cost
			}
			for w := int64(0); w < c.p.Writes(i, k); w++ {
				cost, err := c.nodes[i].Write(k)
				if err != nil {
					return 0, fmt.Errorf("write site %d object %d: %w", i, k, err)
				}
				total += cost
			}
		}
	}
	return total, nil
}
