package netnode

import (
	"time"

	"drp/internal/xrand"
)

// RetryPolicy caps transport-level retries with jittered exponential
// backoff. Attempt a (0-based) sleeps Base·2^a, capped at Cap, with up to
// Jitter·backoff of seeded random spread subtracted so synchronized
// clients fan out. Only transport failures (dial errors, IO errors,
// deadline misses) are retried; protocol rejections never are.
type RetryPolicy struct {
	// Attempts is the total number of tries; values ≤ 1 disable retrying.
	Attempts int
	// Base is the first backoff interval.
	Base time.Duration
	// Cap bounds the exponential growth (0 means no bound).
	Cap time.Duration
	// Jitter in [0,1] is the fraction of each backoff randomized away.
	Jitter float64
}

// maxBackoff saturates the exponential growth when Cap is 0 ("no bound"):
// the doubling loop must never overflow into a negative Duration.
const maxBackoff = time.Duration(1<<63 - 1)

// DefaultRetry is a conservative production-ish policy: three tries with
// 2ms → 4ms backoff, half jittered.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Attempts: 3, Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, Jitter: 0.5}
}

// backoff returns the sleep before retry number attempt (0-based). The rng
// feeds only the jitter; accounting never observes it.
func (rp RetryPolicy) backoff(attempt int, rng *xrand.Source) time.Duration {
	if rp.Base <= 0 {
		return 0
	}
	d := rp.Base
	for i := 0; i < attempt; i++ {
		if d > maxBackoff/2 {
			// Doubling again would overflow time.Duration (and no caller
			// wants a negative sleep); saturate instead.
			d = maxBackoff
			break
		}
		d *= 2
		if rp.Cap > 0 && d >= rp.Cap {
			d = rp.Cap
			break
		}
	}
	if rp.Cap > 0 && d > rp.Cap {
		d = rp.Cap
	}
	if rp.Jitter > 0 && rng != nil {
		j := rp.Jitter
		if j > 1 {
			j = 1
		}
		d -= time.Duration(j * rng.Float64() * float64(d))
	}
	return d
}
