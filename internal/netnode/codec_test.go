package netnode

// Wire-codec edge cases: malformed, truncated and oversized request lines
// must produce typed error replies (or a clean close for unframeable
// streams), never a panic, and must not wedge the node for later clients.

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// rawExchange writes raw bytes to the node, optionally half-closes the
// write side, and decodes one reply line.
func rawExchange(t *testing.T, addr string, payload []byte, closeWrite bool) (reply, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	if closeWrite {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}
	var resp reply
	err = json.NewDecoder(bufio.NewReader(conn)).Decode(&resp)
	return resp, err
}

func TestWireCodecEdgeCases(t *testing.T) {
	p := gen(t, 3, 3, 0.3, 0.5, 1)
	c := startCluster(t, p)
	addr := c.Node(0).Addr()

	primaryAddr := c.Node(p.Primary(0)).Addr()
	oversized := `{"op":"read","obj":0,"pad":"` + strings.Repeat("x", maxLineBytes) + `"}` + "\n"

	cases := []struct {
		name       string
		payload    string
		closeWrite bool
		wantCode   string
		wantClosed bool // stream closes with no reply at all
	}{
		{name: "bad JSON line", payload: "{op read}\n", wantCode: CodeBadJSON},
		{name: "unknown op", payload: `{"op":"explode","obj":0}` + "\n", wantCode: CodeBadOp},
		{name: "oversized line", payload: oversized, wantCode: CodeOversized},
		{name: "truncated request", payload: `{"op":"read","obj`, closeWrite: true, wantClosed: true},
		{name: "object out of range", payload: `{"op":"read","obj":99}` + "\n", wantCode: CodeBadObject},
		{name: "negative object", payload: `{"op":"read","obj":-1}` + "\n", wantCode: CodeBadObject},
		{name: "empty line then valid request", payload: "\n" + `{"op":"version","obj":0}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target := addr
			if tc.wantCode == "" && !tc.wantClosed {
				target = primaryAddr // the version probe needs a holder
			}
			resp, err := rawExchange(t, target, []byte(tc.payload), tc.closeWrite)
			if tc.wantClosed {
				if err == nil {
					t.Fatalf("expected the node to close the stream without replying, got %+v", resp)
				}
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("expected EOF-style close, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("no reply: %v", err)
			}
			if resp.Code != tc.wantCode {
				t.Fatalf("reply code %q, want %q (reply %+v)", resp.Code, tc.wantCode, resp)
			}
			if tc.wantCode != "" && resp.OK {
				t.Fatalf("error reply claims OK: %+v", resp)
			}
		})
	}

	// The abuse above must not have wedged the node: a well-formed request
	// on a fresh connection still gets served.
	resp, err := call(primaryAddr, message{Op: "version", Object: 0})
	if err != nil {
		t.Fatalf("node unusable after codec abuse: %v", err)
	}
	if !resp.OK {
		t.Fatalf("version request rejected after codec abuse: %+v", resp)
	}
}

// TestFramingViolationClosesConn pins that oversized and malformed lines
// terminate the connection after the typed reply — the stream cannot be
// re-framed — while in-protocol errors keep it open.
func TestFramingViolationClosesConn(t *testing.T) {
	p := gen(t, 3, 3, 0.3, 0.5, 1)
	c := startCluster(t, p)
	addr := c.Node(0).Addr()

	for _, tc := range []struct {
		name      string
		payload   string
		wantClose bool
	}{
		{"bad JSON closes", "{op}\n", true},
		{"oversized closes", strings.Repeat("y", maxLineBytes+2) + "\n", true},
		{"unknown op keeps serving", `{"op":"explode","obj":0}` + "\n", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := conn.Write([]byte(tc.payload)); err != nil {
				t.Fatal(err)
			}
			r := bufio.NewReader(conn)
			var first reply
			if err := json.NewDecoder(r).Decode(&first); err != nil {
				t.Fatalf("no error reply before close: %v", err)
			}
			// Second request on the same connection.
			if _, err := conn.Write([]byte(`{"op":"version","obj":0}` + "\n")); err != nil {
				if tc.wantClose {
					return // write failed because the node closed: fine
				}
				t.Fatal(err)
			}
			var second reply
			err = json.NewDecoder(r).Decode(&second)
			if tc.wantClose {
				if err == nil {
					t.Fatalf("connection survived a framing violation: %+v", second)
				}
			} else if err != nil {
				t.Fatalf("connection died after an in-protocol error: %v", err)
			}
		})
	}
}

// TestCallPeerClosesMidReply exercises the client side: a peer that
// accepts and then closes without replying (or mid-reply) must surface a
// transport error from call, not a hang or panic.
func TestCallPeerClosesMidReply(t *testing.T) {
	for _, tc := range []struct {
		name    string
		partial string // bytes written before the abrupt close
	}{
		{"close before any reply", ""},
		{"close mid-reply", `{"ok":tr`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				// Drain the request line, emit the partial bytes, slam shut.
				_, _ = bufio.NewReader(conn).ReadString('\n')
				if tc.partial != "" {
					_, _ = conn.Write([]byte(tc.partial))
				}
				conn.Close()
			}()
			_, err = callOnce(nil, ln.Addr().String(), message{Op: "read", Object: 0}, 5*time.Second)
			if err == nil {
				t.Fatal("call against a peer that closed mid-reply returned no error")
			}
			if !strings.Contains(err.Error(), "recv") {
				t.Fatalf("expected a recv error, got %v", err)
			}
		})
	}
}

// TestUnknownOpTypedReplyRegression is the regression for the formerly
// bare default branches: an unknown op must yield a typed CodeBadOp reply
// naming the op, and a sync for an unheld object must yield CodeNotHolder
// — neither silently succeeds.
func TestUnknownOpTypedReplyRegression(t *testing.T) {
	p := gen(t, 3, 3, 0.3, 0.5, 1)
	c := startCluster(t, p)
	k := 0
	nonHolder := (p.Primary(k) + 1) % p.Sites()

	resp, err := call(c.Node(0).Addr(), message{Op: "mystery", Object: k})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeBadOp || !strings.Contains(resp.Err, "mystery") {
		t.Errorf("unknown op reply = %+v, want Code=%q naming the op", resp, CodeBadOp)
	}

	resp, err = call(c.Node(nonHolder).Addr(), message{Op: "sync", Object: k, Version: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeNotHolder {
		t.Errorf("sync to non-holder reply = %+v, want Code=%q", resp, CodeNotHolder)
	}
	if got := c.Node(nonHolder).Version(k); got != 0 {
		t.Errorf("rejected sync still bumped version to %d", got)
	}
}
