package netnode

import (
	"bytes"
	"path/filepath"
	"testing"

	"drp/internal/core"
	"drp/internal/membership"
	"drp/internal/netsim"
	"drp/internal/plan"
	"drp/internal/sra"
	"drp/internal/store"
)

// viewProblem builds a 5-site universe on a line topology
// (0 -2- 1 -1- 2 -2- 3 -1- 4) whose primaries all live on sites 0..3, so
// a cluster can boot on those four members and site 4 can join later.
func viewProblem(t *testing.T) *core.Problem {
	t.Helper()
	topo := netsim.NewTopology(5)
	for _, l := range [][3]int64{{0, 1, 2}, {1, 2, 1}, {2, 3, 2}, {3, 4, 1}} {
		if err := topo.AddLink(int(l[0]), int(l[1]), l[2]); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(core.Config{
		Sizes:      []int64{4, 3, 2, 5},
		Capacities: []int64{14, 14, 14, 14, 14},
		Primaries:  []int{0, 1, 2, 3},
		Reads: [][]int64{
			{36, 8, 4, 0},
			{12, 32, 8, 4},
			{4, 12, 28, 8},
			{0, 4, 12, 36},
			{24, 4, 8, 28},
		},
		Writes: [][]int64{
			{2, 0, 1, 0},
			{0, 2, 0, 1},
			{1, 0, 2, 0},
			{0, 1, 0, 2},
			{1, 0, 1, 1},
		},
		Dist: dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// universePrimaries returns the problem's primary sites per object.
func universePrimaries(p *core.Problem) []int {
	sp := make([]int, p.Objects())
	for k := range sp {
		sp[k] = p.Primary(k)
	}
	return sp
}

// solveView runs the static greedy over the view-restricted problem and
// lifts the result to a universe plan with the given epoch.
func solveView(t *testing.T, p *core.Problem, view membership.View, primaries []int, sub *netsim.DistMatrix, epoch int) (*plan.Plan, int64) {
	t.Helper()
	rp, err := plan.Restrict(p, view, primaries, sub)
	if err != nil {
		t.Fatal(err)
	}
	res := sra.Run(rp, sra.Options{})
	pl := plan.Lift(view, res.Scheme)
	pl.Epoch = epoch
	if err := pl.Validate(p); err != nil {
		t.Fatalf("lifted plan invalid: %v", err)
	}
	return pl, res.Scheme.Cost()
}

// subFor builds the member-to-member distance matrix of a view straight
// from the universe metric (valid here because the universe distances
// obey the triangle inequality, so restricting sites does not reroute).
func subFor(p *core.Problem, members []int) *netsim.DistMatrix {
	sub := netsim.NewDistMatrix(len(members))
	for a, i := range members {
		for b, j := range members {
			sub.Set(a, b, p.Cost(i, j))
		}
	}
	return sub
}

// TestViewClusterJoinMigrateLeave is the end-to-end membership scenario:
// a 4-site durable cluster serves its solved placement, a 5th site joins
// and a re-solved plan migrates replicas onto it while reads keep being
// served, then an original site is drained and removed. Driven traffic
// matches the restricted solver's exact eq. 4 cost at every stage, and
// the survivors' state is byte-identical across a full restart.
func TestViewClusterJoinMigrateLeave(t *testing.T) {
	p := viewProblem(t)
	root := t.TempDir()
	tr, err := membership.NewTracker(netsim.Complete(p.Dist()), []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartDurableView(p, root, store.Options{}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	j, err := store.OpenJournal(filepath.Join(root, "coord"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	c.AttachJournal(j)

	// Stage 1: solve and deploy over the founding four members.
	sub4, siteMap := tr.SubMatrix()
	view4 := tr.View()
	if len(siteMap) != 4 {
		t.Fatalf("site map %v", siteMap)
	}
	pl4, cost4 := solveView(t, p, view4, universePrimaries(p), sub4, 1)
	if _, err := c.ApplyPlan(pl4, tr.Cost); err != nil {
		t.Fatal(err)
	}
	got, err := c.DriveTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if got != cost4 {
		t.Fatalf("stage 1 driven NTC %d, solver cost %d", got, cost4)
	}

	// Stage 2: site 4 joins; re-solve over five members and migrate.
	// Reads must keep serving at every step of the migration.
	if _, err := tr.JoinSite(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(4, tr.Cost); err != nil {
		t.Fatal(err)
	}
	sub5, _ := tr.SubMatrix()
	pl5, cost5 := solveView(t, p, tr.View(), universePrimaries(p), sub5, 2)
	steps, err := plan.Diff(c.Plan(), pl5, p, tr.Cost)
	if err != nil {
		t.Fatal(err)
	}
	migrationReads := 0
	c.SetStepHook(func(plan.Step) {
		for k := 0; k < p.Objects(); k++ {
			if _, err := c.Node(1).Read(k); err != nil {
				t.Errorf("read of object %d failed mid-migration: %v", k, err)
			}
			migrationReads++
		}
	})
	rep, err := c.ApplyPlan(pl5, tr.Cost)
	c.SetStepHook(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Steps || rep.Steps != len(steps) {
		t.Fatalf("migration ran %d/%d steps, diff had %d", rep.Completed, rep.Steps, len(steps))
	}
	if want := plan.TotalCost(steps); rep.MigrationNTC != want {
		t.Fatalf("migration NTC %d, a-priori diff cost %d", rep.MigrationNTC, want)
	}
	if len(steps) == 0 || migrationReads == 0 {
		t.Fatalf("expected a non-trivial migration with mid-flight reads (steps %d, reads %d)", len(steps), migrationReads)
	}
	if got, err = c.DriveTraffic(); err != nil {
		t.Fatal(err)
	}
	if got != cost5 {
		t.Fatalf("stage 2 driven NTC %d, solver cost %d", got, cost5)
	}

	// Stage 3: drain site 0 — its primaries move to site 1 (the nearest
	// survivor), a plan over the remaining four members migrates
	// everything off it, and only then does it leave.
	members4b := []int{1, 2, 3, 4}
	view4b := membership.View{Epoch: view4.Epoch + 2, Members: members4b}
	prim4b := universePrimaries(p)
	for k, sp := range prim4b {
		if sp == 0 {
			prim4b[k] = 1
		}
	}
	pcost := func(i, j int) int64 { return p.Cost(i, j) }
	pl4b, cost4b := solveView(t, p, view4b, prim4b, subFor(p, members4b), 3)
	if _, err := c.ApplyPlan(pl4b, pcost); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(0); err != nil {
		t.Fatal(err)
	}
	if c.Node(0) != nil {
		t.Fatal("departed site still has a live node")
	}
	if got, err = c.DriveTraffic(); err != nil {
		t.Fatal(err)
	}
	if got != cost4b {
		t.Fatalf("stage 3 driven NTC %d, solver cost %d", got, cost4b)
	}

	// Restart the survivors from disk: state must be byte-identical and
	// the recovered plan must match a fresh solve on the final view.
	want := make(map[int][]byte)
	for _, m := range members4b {
		want[m] = c.Node(m).Store().EncodeState()
	}
	c.Close()
	c2, err := StartDurableView(p, root, store.Options{}, members4b)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, m := range members4b {
		if got := c2.Node(m).Store().EncodeState(); !bytes.Equal(got, want[m]) {
			t.Fatalf("site %d state diverged across restart:\n  %s\n  %s", m, want[m], got)
		}
	}
	rec := c2.Plan()
	for k := 0; k < p.Objects(); k++ {
		if rec.Primaries[k] != pl4b.Primaries[k] {
			t.Fatalf("recovered primary of object %d is %d, plan says %d", k, rec.Primaries[k], pl4b.Primaries[k])
		}
		if len(rec.Placement[k]) != len(pl4b.Placement[k]) {
			t.Fatalf("recovered placement of object %d is %v, plan says %v", k, rec.Placement[k], pl4b.Placement[k])
		}
		for x := range rec.Placement[k] {
			if rec.Placement[k][x] != pl4b.Placement[k][x] {
				t.Fatalf("recovered placement of object %d is %v, plan says %v", k, rec.Placement[k], pl4b.Placement[k])
			}
		}
	}
}

// TestViewClusterResumeAfterCrashMidMigration kills the destination node
// of a copy step mid-migration, restarts the whole cluster from disk and
// resumes from the journaled plan: the remainder executes exactly once,
// its transfer cost matches the a-priori diff against the actual
// holdings, and a second resume finds nothing left to do.
func TestViewClusterResumeAfterCrashMidMigration(t *testing.T) {
	p := viewProblem(t)
	root := t.TempDir()
	members := []int{0, 1, 2, 3, 4}
	c, err := StartDurableView(p, root, store.Options{}, members)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	j, err := store.OpenJournal(filepath.Join(root, "coord"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.AttachJournal(j)
	pcost := func(i, j int) int64 { return p.Cost(i, j) }
	view := membership.View{Epoch: 1, Members: members}
	target, targetCost := solveView(t, p, view, universePrimaries(p), subFor(p, members), 1)
	steps, err := plan.Diff(c.Plan(), target, p, pcost)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 3 {
		t.Fatalf("migration too small to interrupt: %d steps", len(steps))
	}
	killAt := 2
	stepIdx := 0
	c.SetStepHook(func(s plan.Step) {
		if stepIdx == killAt {
			_ = c.Node(s.Site).Kill()
		}
		stepIdx++
	})
	rep1, err := c.ApplyPlan(target, pcost)
	c.SetStepHook(nil)
	if err == nil {
		t.Fatal("migration survived a killed destination")
	}
	if rep1.Completed != killAt {
		t.Fatalf("completed %d steps before the crash, want %d", rep1.Completed, killAt)
	}

	// The coordinator dies with the cluster; everything restarts from
	// disk and the journal.
	c.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := StartDurableView(p, root, store.Options{}, members)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	j2, err := store.OpenJournal(filepath.Join(root, "coord"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	c2.AttachJournal(j2)

	// What the sites actually hold after the crash — the a-priori basis
	// for the resumed remainder.
	actual := c2.Plan()
	remainder, err := plan.Diff(actual, target, p, pcost)
	if err != nil {
		t.Fatal(err)
	}
	rep2, resumed, err := c2.ResumeMigration(pcost)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("journaled plan not resumed")
	}
	if rep2.Completed != rep2.Steps || rep2.Steps != len(remainder) {
		t.Fatalf("resume ran %d/%d steps, remainder diff had %d", rep2.Completed, rep2.Steps, len(remainder))
	}
	if want := plan.TotalCost(remainder); rep2.MigrationNTC != want {
		t.Fatalf("resume NTC %d, a-priori remainder cost %d", rep2.MigrationNTC, want)
	}
	if !c2.Plan().Equal(target) {
		t.Fatal("resumed cluster did not adopt the journaled plan")
	}
	for k := 0; k < p.Objects(); k++ {
		for _, m := range members {
			if c2.Node(m).Holds(k) != target.Has(m, k) {
				t.Fatalf("site %d holds(%d)=%v, target plan says %v", m, k, c2.Node(m).Holds(k), target.Has(m, k))
			}
		}
	}

	// A second resume finds the target realised: zero steps.
	rep3, resumed, err := c2.ResumeMigration(pcost)
	if err != nil || !resumed {
		t.Fatalf("idempotent resume: %v (resumed %v)", err, resumed)
	}
	if rep3.Steps != 0 {
		t.Fatalf("idempotent resume found %d steps", rep3.Steps)
	}

	got, err := c2.DriveTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if got != targetCost {
		t.Fatalf("post-resume driven NTC %d, solver cost %d", got, targetCost)
	}
}
