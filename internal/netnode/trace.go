package netnode

import (
	"drp/internal/spans"
	"drp/internal/store"
)

// SetTracer attaches a tracer to this node: client requests issued here
// (Read, Write, FlushPending) mint root spans, outbound calls mint
// per-attempt rpc spans whose IDs ride the wire, and inbound traced
// requests mint serve spans stitched under the caller's attempt. A nil
// tracer disables tracing (the default).
func (n *Node) SetTracer(tr *spans.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracer = tr
}

// EnableTracing attaches one shared tracer to every node and to the
// coordinator, so coordinator-driven operations (deploys, plan steps,
// reconciliation) trace alongside client requests and all span IDs are
// globally consistent. Like EnableMetrics, the attachment survives
// RestartNode and Join.
func (c *Cluster) EnableTracing(tr *spans.Tracer) {
	c.tracer = tr
	for _, n := range c.nodes {
		if n != nil {
			n.SetTracer(tr)
		}
	}
}

// walSpan opens a wal.append child span when the store is durable —
// the point where the mutation is logged before acknowledgement. For
// memory stores (or untraced requests) it returns nil, so callers
// finish it unconditionally.
func walSpan(parent *spans.Span, st *store.Store, op string) *spans.Span {
	if parent == nil || !st.Durable() {
		return nil
	}
	ws := parent.Child("wal.append")
	ws.SetAttr("op", op)
	return ws
}
