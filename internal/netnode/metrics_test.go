package netnode

import (
	"testing"

	"drp/internal/metrics"
	"drp/internal/sra"
	"drp/internal/workload"
)

// TestNodeMetricsAccountTraffic drives a full measurement period over TCP
// with instrumentation attached and pins the counters against the ground
// truth the problem defines: request counts, replica-hit split and the NTC
// the cluster accounted.
func TestNodeMetricsAccountTraffic(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(6, 10, 0.05, 0.2), 3)
	if err != nil {
		t.Fatal(err)
	}
	scheme := sra.Run(p, sra.Options{}).Scheme

	c, err := StartLocal(p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c.EnableMetrics(reg)

	total, err := c.DriveTraffic()
	if err != nil {
		t.Fatal(err)
	}

	var wantReads, wantWrites int64
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			wantReads += p.Reads(i, k)
			wantWrites += p.Writes(i, k)
		}
	}

	counter := func(name string, labels metrics.Labels) int64 {
		return reg.Counter(name, "", labels).Value()
	}
	gotReads := counter("drp_net_replica_reads_total", metrics.Labels{"source": "local"}) +
		counter("drp_net_replica_reads_total", metrics.Labels{"source": "remote"})
	if gotReads != wantReads {
		t.Errorf("replica reads counter = %d, want %d", gotReads, wantReads)
	}
	gotWrites := counter("drp_net_writes_total", metrics.Labels{"role": "primary"}) +
		counter("drp_net_writes_total", metrics.Labels{"role": "remote"})
	if gotWrites != wantWrites {
		t.Errorf("writes counter = %d, want %d", gotWrites, wantWrites)
	}
	gotNTC := counter("drp_net_ntc_total", metrics.Labels{"op": "read"}) +
		counter("drp_net_ntc_total", metrics.Labels{"op": "write"})
	if gotNTC != total {
		t.Errorf("NTC counters = %d, want accounted total %d", gotNTC, total)
	}

	readH := reg.Histogram("drp_net_request_seconds", "", nil, metrics.Labels{"op": "read"})
	writeH := reg.Histogram("drp_net_request_seconds", "", nil, metrics.Labels{"op": "write"})
	if got := readH.Count() + writeH.Count(); got != uint64(wantReads+wantWrites) {
		t.Errorf("latency observations = %d, want %d", got, wantReads+wantWrites)
	}

	// Server-side message counters: every remote read and every remote
	// write's primary 'update' shows up; a fully local workload would be 0.
	if counter("drp_net_messages_total", metrics.Labels{"op": "read"}) == 0 &&
		counter("drp_net_messages_total", metrics.Labels{"op": "update"}) == 0 {
		t.Error("no wire messages counted despite remote traffic")
	}
}

// TestSetMetricsNilDetaches pins that detaching stops recording without
// breaking serving.
func TestSetMetricsNilDetaches(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(4, 6, 0.05, 0.2), 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartLocal(p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := metrics.NewRegistry()
	c.EnableMetrics(reg)
	for i := 0; i < p.Sites(); i++ {
		c.Node(i).SetMetrics(nil)
	}
	if _, err := c.DriveTraffic(); err != nil {
		t.Fatal(err)
	}
	reads := reg.Counter("drp_net_replica_reads_total", "", metrics.Labels{"source": "local"}).Value() +
		reg.Counter("drp_net_replica_reads_total", "", metrics.Labels{"source": "remote"}).Value()
	if reads != 0 {
		t.Fatalf("detached nodes still recorded %d reads", reads)
	}
}
