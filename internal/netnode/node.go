// Package netnode runs the paper's replication policy over real TCP
// sockets: every site is a server holding object replicas, reads are
// forwarded to the requester's nearest replica, writes ship to the primary
// copy which broadcasts the new version to the other replicators, and a
// coordinator (the paper's monitor site) deploys replication schemes by
// diffing placements into place/drop commands.
//
// Object payloads are not materialised — a transfer of object k between
// sites i and j is accounted as o_k·C(i,j) transfer-cost units, exactly as
// the cost model counts it — but every hop is a real network round trip on
// the loopback interface, so the protocol, the per-site state machines and
// their locking are exercised for real. With a full measurement period of
// traffic the cluster's accounted NTC equals eq. 4's D exactly; the tests
// assert it.
//
// The serving path tolerates faults. Every outbound call goes through an
// injectable dialer (see drp/internal/fault) with a per-request deadline
// and capped, jittered exponential backoff. Reads that cannot reach the
// recorded nearest replica fail over to the next-nearest live replica,
// walking the cost ranking exactly as eq. 4's min C(i,j) would with the
// dead sites excluded. Writes degrade instead of failing: an unreachable
// primary queues the write locally (flushed with FlushPending), and a
// partial broadcast marks the missed replicas stale at the primary for
// later version reconciliation (the "reconcile" op).
//
// Site state lives in a drp/internal/store.Store — in-memory by default,
// or backed by a write-ahead log and snapshots when the node is opened on
// a data directory (ListenStore / StartDurable). In durable mode every
// state change is appended to the log before the request is acknowledged,
// so a node killed at any instant restarts from its directory (open →
// replay → serve) with exactly the versions, stale marks, queued writes
// and accounted NTC it had acknowledged.
package netnode

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"drp/internal/core"
	"drp/internal/spans"
	"drp/internal/store"
	"drp/internal/xrand"
)

// message is the wire format: one JSON object per line. Trace and Span
// carry the caller's trace context (the trace ID and the exact rpc
// attempt span that sent this message), so server-side spans stitch
// into the caller's tree; both are empty — and absent from the wire —
// when the request is untraced or unsampled.
type message struct {
	Op      string `json:"op"`
	Object  int    `json:"obj"`
	From    int    `json:"from,omitempty"`
	Site    int    `json:"site,omitempty"`
	Sites   []int  `json:"sites,omitempty"`
	Version int64  `json:"version,omitempty"`
	Trace   string `json:"trace,omitempty"`
	Span    string `json:"span,omitempty"`
}

// reply is the wire response.
type reply struct {
	OK      bool   `json:"ok"`
	Err     string `json:"err,omitempty"`
	Code    string `json:"code,omitempty"`
	Cost    int64  `json:"cost,omitempty"`
	Holds   bool   `json:"holds,omitempty"`
	Version int64  `json:"version,omitempty"`
	Stale   []int  `json:"stale,omitempty"`
}

// Typed protocol rejection codes carried in reply.Code, so clients can
// distinguish coordination bugs from transport faults without parsing
// error strings.
const (
	CodeBadOp      = "bad_op"
	CodeBadJSON    = "bad_json"
	CodeOversized  = "oversized"
	CodeBadObject  = "bad_object"
	CodeBadSite    = "bad_site"
	CodeNotPrimary = "not_primary"
	CodeNotHolder  = "not_holder"
	CodeStorage    = "storage"
)

// maxLineBytes caps one wire request line; longer lines are rejected with
// CodeOversized and the connection is closed (the stream can no longer be
// trusted to be framed).
const maxLineBytes = 1 << 20

// defaultReplyTimeout bounds reply writes when no per-request timeout is
// configured, so a client that stops reading cannot pin a handler
// goroutine (and therefore Close) forever.
const defaultReplyTimeout = 5 * time.Second

// errOversized is returned by readLine when the cap is exceeded.
var errOversized = errors.New("netnode: request line exceeds limit")

// ReplyError is a protocol-level rejection from a peer: the transport
// worked, but the peer refused the operation. Protocol rejections are
// never retried or failed over — they indicate a coordination bug, not a
// dead site.
type ReplyError struct {
	Code string
	Msg  string
}

func (e *ReplyError) Error() string {
	if e.Code == "" {
		return "netnode: peer rejected request: " + e.Msg
	}
	return fmt.Sprintf("netnode: peer rejected request (%s): %s", e.Code, e.Msg)
}

// Sentinel outcomes of the degraded serving paths.
var (
	// ErrNoReplica reports a read that found no reachable replica.
	ErrNoReplica = errors.New("netnode: no live replica")
	// ErrWriteQueued reports a write whose primary was unreachable; the
	// write is queued locally and will be retried by FlushPending.
	ErrWriteQueued = errors.New("netnode: write queued, primary unreachable")
)

// Dialer opens a connection to a peer address. The default is a plain TCP
// dial; drp/internal/fault substitutes middleware that injects crashes,
// blackholes, latency and drops without the node code changing.
type Dialer func(addr string) (net.Conn, error)

// Node is one site: a TCP server plus the site-local replication state the
// paper prescribes (its replica holdings, the nearest-replica record per
// object, and — for objects primaried here — the full replication scheme).
// The state itself lives in a store.Store: memory-backed by Listen,
// WAL-backed by ListenStore.
type Node struct {
	p    *core.Problem
	site int
	ln   net.Listener
	st   *store.Store

	mu      sync.Mutex
	peers   []string
	metrics *nodeMetrics  // telemetry instruments; nil when disabled
	tracer  *spans.Tracer // request tracing; nil when disabled

	dial       Dialer
	retry      RetryPolicy
	reqTimeout time.Duration
	rng        *xrand.Source // backoff jitter only; never touches accounting

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// primaries returns the primary site of every object, the store's
// bootstrap parameter.
func primaries(p *core.Problem) []int {
	out := make([]int, p.Objects())
	for k := range out {
		out[k] = p.Primary(k)
	}
	return out
}

// Listen starts a memory-backed node for the given site on addr (use
// "127.0.0.1:0" for an ephemeral port). The node initially holds exactly
// the objects primaried at it; peers must be wired with SetPeers before
// serving remote traffic.
func Listen(p *core.Problem, site int, addr string) (*Node, error) {
	if site < 0 || site >= p.Sites() {
		return nil, fmt.Errorf("netnode: site %d out of range", site)
	}
	return ListenStore(p, site, addr, store.Memory(site, primaries(p)))
}

// ListenStore starts a node whose state lives in st — typically a durable
// store opened (and therefore replayed) from the site's data directory.
// The lifecycle is open → replay → serve: by the time the listener accepts
// its first connection the state is exactly what the log prescribes.
func ListenStore(p *core.Problem, site int, addr string, st *store.Store) (*Node, error) {
	if site < 0 || site >= p.Sites() {
		return nil, fmt.Errorf("netnode: site %d out of range", site)
	}
	if st == nil {
		return nil, errors.New("netnode: nil store")
	}
	if st.Site() != site || st.Objects() != p.Objects() {
		return nil, fmt.Errorf("netnode: store is for site %d with %d objects, node wants site %d with %d",
			st.Site(), st.Objects(), site, p.Objects())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netnode: listen: %w", err)
	}
	n := &Node{
		p:      p,
		site:   site,
		ln:     ln,
		st:     st,
		retry:  RetryPolicy{Attempts: 1},
		rng:    xrand.New(uint64(site) + 1),
		closed: make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Site returns the node's site index.
func (n *Node) Site() int { return n.site }

// Store returns the node's state store.
func (n *Node) Store() *store.Store { return n.st }

// SetPeers wires the full address table (indexed by site).
func (n *Node) SetPeers(addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append([]string(nil), addrs...)
}

// SetDialer routes the node's outbound calls through d (nil restores the
// default TCP dialer). Fault-injection middleware hooks in here.
func (n *Node) SetDialer(d Dialer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dial = d
}

// SetRetry configures transport-level retries for the node's outbound
// calls. The zero policy (Attempts ≤ 1) disables retrying.
func (n *Node) SetRetry(rp RetryPolicy) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.retry = rp
}

// SetRequestTimeout bounds each outbound call (dial plus round trip) and
// each reply write; 0 disables the outbound deadline (reply writes then
// fall back to a conservative default).
func (n *Node) SetRequestTimeout(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reqTimeout = d
}

// Version returns the local version of object k (0 if not held). Versions
// count the writes the primary has serialised; the primary-copy protocol
// guarantees replicas converge to the primary's version once broadcasts
// complete (or, after a partial broadcast, once reconciliation runs).
func (n *Node) Version(k int) int64 { return n.st.Version(k) }

// NTC returns the transfer cost accounted to this node so far.
func (n *Node) NTC() int64 { return n.st.NTC() }

// Holds reports whether the node currently stores object k.
func (n *Node) Holds(k int) bool { return n.st.Holds(k) }

// PendingWrites returns the number of writes queued locally because the
// primary was unreachable when they were issued.
func (n *Node) PendingWrites() int { return n.st.TotalPending() }

// StaleReplicas returns, for an object primaried at this node, the sites
// that missed a sync broadcast and still await reconciliation.
func (n *Node) StaleReplicas(k int) []int { return n.st.StaleSites(k) }

// Close shuts the listener down, waits for in-flight handlers and closes
// the store (flushing its log). Close is idempotent: concurrent or
// repeated calls all return the first outcome.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		err := n.ln.Close()
		n.wg.Wait()
		if serr := n.st.Close(); err == nil {
			err = serr
		}
		n.closeErr = err
	})
	return n.closeErr
}

// Kill crash-stops the node: the listener closes and the store's log is
// abandoned without a flush or snapshot — the SIGKILL-equivalent stop.
// A node restarted from the same data directory recovers purely by
// replay. Kill and Close share the once-guard, so either may follow the
// other harmlessly.
func (n *Node) Kill() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		err := n.ln.Close()
		n.wg.Wait()
		if serr := n.st.Crash(); err == nil {
			err = serr
		}
		n.closeErr = err
	})
	return n.closeErr
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				if errors.Is(err, net.ErrClosed) {
					return
				}
				// Transient accept failure: back off briefly instead of
				// spinning the CPU on a hot error.
				time.Sleep(time.Millisecond)
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(conn)
		}()
	}
}

// replyTimeout bounds one reply write: the configured request timeout, or
// a conservative default so no reply write can stall unboundedly.
func (n *Node) replyTimeout() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.reqTimeout > 0 {
		return n.reqTimeout
	}
	return defaultReplyTimeout
}

// sendReply writes one reply under a write deadline. Error replies and
// normal replies get the same treatment: a stalled client makes the write
// miss its deadline and the connection dies, instead of pinning the
// handler goroutine past Close.
func (n *Node) sendReply(conn net.Conn, enc *json.Encoder, resp reply) error {
	if d := n.replyTimeout(); d > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(d))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return enc.Encode(resp)
}

// serve handles one connection: a sequence of JSON-line requests. Framing
// violations (oversized or malformed lines) get a typed error reply and
// close the connection, since the stream can no longer be trusted.
func (n *Node) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		line, err := readLine(r, maxLineBytes)
		if err == errOversized {
			_ = n.sendReply(conn, enc, reply{Code: CodeOversized, Err: "request line exceeds limit"})
			return
		}
		if err != nil {
			return
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var msg message
		if err := json.Unmarshal(line, &msg); err != nil {
			_ = n.sendReply(conn, enc, reply{Code: CodeBadJSON, Err: fmt.Sprintf("malformed request: %v", err)})
			return
		}
		resp := n.handle(msg)
		if err := n.sendReply(conn, enc, resp); err != nil {
			return
		}
	}
}

// readLine reads one newline-terminated line of at most max bytes. A line
// exceeding the cap returns errOversized; EOF before any byte returns the
// underlying error.
func readLine(r *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > max {
			return nil, errOversized
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			// io.EOF with a partial line is a truncated request: surface it
			// as a plain read error so the connection closes without a reply.
			return line, err
		}
		return line, nil
	}
}

// storageReply converts a store append failure into a typed rejection: the
// mutation was NOT acknowledged, because it never reached the log.
func storageReply(err error) reply {
	return reply{Code: CodeStorage, Err: fmt.Sprintf("storage: %v", err)}
}

// handle wraps the op dispatch in a server-side span when the message
// carries wire trace context and this node has a tracer attached; the
// span nests under the caller's exact rpc attempt span.
func (n *Node) handle(msg message) reply {
	n.mu.Lock()
	nm := n.metrics
	tr := n.tracer
	n.mu.Unlock()
	if nm != nil {
		nm.served(msg.Op)
	}
	sv := tr.StartRemote(msg.Trace, msg.Span, "serve."+msg.Op)
	sv.SetSite(n.site)
	sv.SetObject(msg.Object)
	resp := n.serveOp(msg, sv)
	if !resp.OK {
		sv.SetErrText(resp.Err)
	}
	sv.Finish()
	return resp
}

// serveOp dispatches one request. sv is the server-side span (nil when
// the request is untraced); ops that fan out — update's broadcast,
// reconcile's re-syncs — hang their transfer spans under it.
func (n *Node) serveOp(msg message, sv *spans.Span) reply {
	if msg.Object < 0 || msg.Object >= n.p.Objects() {
		return reply{Code: CodeBadObject, Err: fmt.Sprintf("object %d out of range", msg.Object)}
	}
	switch msg.Op {
	case "read":
		// A remote site reads from us; we must hold a replica. The reply
		// carries the replica's version so staleness is observable.
		holds, version := n.st.Replica(msg.Object)
		if !holds {
			return reply{Code: CodeNotHolder, Err: fmt.Sprintf("site %d does not hold object %d", n.site, msg.Object)}
		}
		return reply{OK: true, Holds: true, Version: version}

	case "update":
		// A writer ships a new version to us — the primary — and we
		// broadcast it to every other replicator. Unreachable replicators
		// are marked stale instead of failing the write. The version stamp
		// hits the log before anything is acknowledged or broadcast.
		if n.st.PrimaryOf(msg.Object) != n.site {
			return reply{Code: CodeNotPrimary, Err: fmt.Sprintf("site %d is not the primary of object %d", n.site, msg.Object)}
		}
		ws := walSpan(sv, n.st, "bump_version")
		version, err := n.st.BumpVersion(msg.Object)
		ws.SetErr(err)
		ws.Finish()
		if err != nil {
			return storageReply(err)
		}
		cost, stale, err := n.broadcast(msg.Object, msg.From, version, sv)
		if err != nil {
			return errorReply(err)
		}
		return reply{OK: true, Cost: cost, Version: version, Stale: stale}

	case "sync":
		// The primary pushes a fresh version of an object we replicate.
		held, _, err := n.st.AdoptVersion(msg.Object, msg.Version)
		if err != nil {
			return storageReply(err)
		}
		if !held {
			return reply{Code: CodeNotHolder, Err: fmt.Sprintf("sync for object %d not replicated at site %d", msg.Object, n.site)}
		}
		return reply{OK: true}

	case "place":
		if err := n.st.Place(msg.Object, msg.Version); err != nil {
			return storageReply(err)
		}
		return reply{OK: true}

	case "drop":
		if n.st.PrimaryOf(msg.Object) == n.site {
			return reply{Code: CodeNotPrimary, Err: "cannot drop a primary copy"}
		}
		if err := n.st.Drop(msg.Object); err != nil {
			return storageReply(err)
		}
		return reply{OK: true}

	case "version":
		holds, version := n.st.Replica(msg.Object)
		if !holds {
			return reply{Code: CodeNotHolder, Err: fmt.Sprintf("site %d does not hold object %d", n.site, msg.Object)}
		}
		return reply{OK: true, Version: version}

	case "registry":
		// The coordinator updates the primary's replicator list. Stale
		// marks for sites no longer replicating the object are dropped —
		// there is nothing left to reconcile at them. One log record
		// covers both (store.SetRegistry).
		if n.st.PrimaryOf(msg.Object) != n.site {
			return reply{Code: CodeNotPrimary, Err: "registry update sent to a non-primary"}
		}
		if code, err := checkSites(msg.Sites, n.p.Sites()); err != nil {
			return reply{Code: code, Err: err.Error()}
		}
		if err := n.st.SetRegistry(msg.Object, msg.Sites); err != nil {
			return storageReply(err)
		}
		return reply{OK: true}

	case "replicas":
		// The coordinator pushes the object's full replicator set to every
		// site; reads fail over along this list when the nearest dies.
		if code, err := checkSites(msg.Sites, n.p.Sites()); err != nil {
			return reply{Code: code, Err: err.Error()}
		}
		if err := n.st.SetReplicas(msg.Object, msg.Sites); err != nil {
			return storageReply(err)
		}
		return reply{OK: true}

	case "nearest":
		if msg.Site < 0 || msg.Site >= n.p.Sites() {
			return reply{Code: CodeBadSite, Err: "nearest site out of range"}
		}
		if err := n.st.SetNearest(msg.Object, msg.Site); err != nil {
			return storageReply(err)
		}
		return reply{OK: true}

	case "primary":
		// The coordinator promotes a new primary for the object; every
		// member learns the same routing record, and the promotion hits the
		// log before it is acknowledged. Re-asserting the current primary
		// is a no-op, which makes plan resume idempotent.
		if msg.Site < 0 || msg.Site >= n.p.Sites() {
			return reply{Code: CodeBadSite, Err: "primary site out of range"}
		}
		if err := n.st.SetPrimary(msg.Object, msg.Site); err != nil {
			return storageReply(err)
		}
		return reply{OK: true}

	case "reconcile":
		// The coordinator asks the primary to re-sync every replica that
		// missed a broadcast. Each successful re-sync is a fresh transfer
		// of the object and is accounted as such; replicas still
		// unreachable stay marked and are reported back.
		if n.st.PrimaryOf(msg.Object) != n.site {
			return reply{Code: CodeNotPrimary, Err: "reconcile sent to a non-primary"}
		}
		cost, remaining, err := n.reconcile(msg.Object, sv)
		if err != nil {
			return errorReply(err)
		}
		return reply{OK: true, Cost: cost, Stale: remaining}

	default:
		return reply{Code: CodeBadOp, Err: fmt.Sprintf("unknown op %q", msg.Op)}
	}
}

// checkSites validates a site list from the wire.
func checkSites(sites []int, m int) (string, error) {
	for _, j := range sites {
		if j < 0 || j >= m {
			return CodeBadSite, fmt.Errorf("site %d out of range", j)
		}
	}
	return "", nil
}

// errorReply converts a local error into a wire reply, preserving a typed
// code when the error is itself a protocol rejection.
func errorReply(err error) reply {
	var re *ReplyError
	if errors.As(err, &re) {
		return reply{Code: re.Code, Err: re.Msg}
	}
	return reply{Err: err.Error()}
}

// broadcast pushes the updated object to every replicator except the
// writer and the primary itself. Replicators that cannot be reached are
// marked stale for later reconciliation instead of failing the write; the
// returned cost covers only the syncs that landed. Stale marks hit the
// log before the write is acknowledged.
func (n *Node) broadcast(obj, writer int, version int64, parent *spans.Span) (int64, []int, error) {
	targets := n.st.Registry(obj)
	n.mu.Lock()
	peers := n.peers
	nm := n.metrics
	n.mu.Unlock()
	var cost int64
	var missed []int
	for _, j := range targets {
		if j == writer || j == n.site {
			continue
		}
		if j < 0 || j >= len(peers) {
			return 0, nil, fmt.Errorf("replicator %d has no known address", j)
		}
		ss := parent.Child("sync")
		ss.SetSite(n.site)
		ss.SetPeer(j)
		ss.SetObject(obj)
		resp, err := n.call(peers[j], message{Op: "sync", Object: obj, Version: version}, ss)
		if err != nil {
			ss.SetErr(err)
			ss.SetVerdict("stale")
			ss.Finish()
			missed = append(missed, j)
			continue
		}
		if !resp.OK {
			ss.SetErrText(resp.Err)
			ss.Finish()
			return 0, nil, &ReplyError{Code: resp.Code, Msg: fmt.Sprintf("sync to site %d: %s", j, resp.Err)}
		}
		cost += n.p.Size(obj) * n.p.Cost(n.site, j)
		ss.SetNTC(n.p.Size(obj) * n.p.Cost(n.site, j))
		ss.Finish()
		if err := n.st.ClearStale(obj, j); err != nil {
			return 0, nil, err
		}
	}
	if len(missed) > 0 {
		if err := n.st.MarkStale(obj, missed); err != nil {
			return 0, nil, err
		}
		if nm != nil {
			nm.degraded("broadcast_partial")
		}
	}
	return cost, missed, nil
}

// reconcile re-syncs the stale replicas of an object primaried here,
// returning the transfer cost of the copies that shipped and the sites
// that remain unreachable.
func (n *Node) reconcile(obj int, parent *spans.Span) (int64, []int, error) {
	targets := n.st.StaleSites(obj)
	version := n.st.Version(obj)
	n.mu.Lock()
	peers := n.peers
	n.mu.Unlock()
	var cost int64
	var remaining []int
	for _, j := range targets {
		if j < 0 || j >= len(peers) {
			remaining = append(remaining, j)
			continue
		}
		ss := parent.Child("sync")
		ss.SetSite(n.site)
		ss.SetPeer(j)
		ss.SetObject(obj)
		resp, err := n.call(peers[j], message{Op: "sync", Object: obj, Version: version}, ss)
		if err != nil || !resp.OK {
			if err != nil {
				ss.SetErr(err)
			} else {
				ss.SetErrText(resp.Err)
			}
			ss.SetVerdict("stale")
			ss.Finish()
			remaining = append(remaining, j)
			continue
		}
		cost += n.p.Size(obj) * n.p.Cost(n.site, j)
		ss.SetNTC(n.p.Size(obj) * n.p.Cost(n.site, j))
		ss.Finish()
		if err := n.st.ClearStale(obj, j); err != nil {
			return cost, remaining, err
		}
	}
	return cost, remaining, nil
}

// readCandidates returns the replicas to try for a read of obj: the
// recorded nearest first (it is the policy's authoritative SN_k(i)
// record), then the remaining replicators in core.RankReplicas order —
// ascending transfer cost from this site, ties broken by site index.
// Sites with no peer address (departed from the membership view) are
// skipped entirely, so the failover order over the surviving replicas is
// deterministic.
func (n *Node) readCandidates(obj, nearest int, replicas []int, peers []string) []int {
	inView := func(j int) bool {
		return j != n.site && j < len(peers) && peers[j] != ""
	}
	ranked := core.RankReplicas(n.p, n.site, replicas, inView)
	out := make([]int, 0, len(ranked)+1)
	if nearest >= 0 && inView(nearest) {
		out = append(out, nearest)
	}
	for _, j := range ranked {
		if j != nearest {
			out = append(out, j)
		}
	}
	return out
}

// Read performs a client read from this node: served locally if a replica
// is held, otherwise fetched from the recorded nearest replica over TCP,
// failing over to the next-nearest live replica when sites are down.
// Returns the transfer cost incurred. ErrNoReplica reports that every
// replica was unreachable.
func (n *Node) Read(obj int) (cost int64, err error) {
	start := time.Now()
	if obj < 0 || obj >= n.p.Objects() {
		return 0, fmt.Errorf("netnode: object %d out of range", obj)
	}
	local := n.st.Holds(obj)
	target := n.st.Nearest(obj)
	replicas := n.st.Replicas(obj)
	n.mu.Lock()
	peers := n.peers
	nm := n.metrics
	tr := n.tracer
	n.mu.Unlock()
	root := tr.Root("read")
	root.SetSite(n.site)
	root.SetObject(obj)
	defer func() {
		root.SetErr(err)
		root.Finish()
	}()
	if local {
		root.SetAttr("source", "local")
		if nm != nil {
			nm.read(true, 0, time.Since(start))
		}
		return 0, nil
	}
	var lastErr error
	for idx, j := range n.readCandidates(obj, target, replicas, peers) {
		hop := root.Child("read.hop")
		hop.SetPeer(j)
		hop.SetHop(idx)
		resp, err := n.call(peers[j], message{Op: "read", Object: obj}, hop)
		if err != nil {
			hop.SetErr(err)
			hop.Finish()
			lastErr = err
			continue
		}
		if !resp.OK {
			// A live peer refusing the read is a coordination bug (e.g. a
			// stale nearest record pointing at a non-holder): fail loudly
			// rather than silently serving from elsewhere.
			hop.SetErrText(resp.Err)
			hop.Finish()
			return 0, &ReplyError{Code: resp.Code, Msg: resp.Err}
		}
		cost := n.p.Size(obj) * n.p.Cost(n.site, j)
		if err := n.st.AddNTC(cost); err != nil {
			hop.Finish()
			return 0, err
		}
		hop.SetNTC(cost)
		hop.Finish()
		if nm != nil {
			nm.read(false, cost, time.Since(start))
			if idx > 0 {
				nm.failover(cost)
			}
		}
		return cost, nil
	}
	if nm != nil {
		nm.degraded("read_failed")
	}
	if lastErr != nil {
		return 0, fmt.Errorf("%w for object %d: %v", ErrNoReplica, obj, lastErr)
	}
	return 0, fmt.Errorf("%w for object %d", ErrNoReplica, obj)
}

// Write performs a client write from this node: the new version ships to
// the primary, which broadcasts it to the other replicators (unreachable
// ones are marked stale at the primary rather than failing the write).
// Returns the total transfer cost (shipping plus the successful part of
// the broadcast). When the primary itself is unreachable the write is
// queued locally — durably, in durable mode — and ErrWriteQueued is
// returned; FlushPending retries it.
func (n *Node) Write(obj int) (cost int64, err error) {
	start := time.Now()
	if obj < 0 || obj >= n.p.Objects() {
		return 0, fmt.Errorf("netnode: object %d out of range", obj)
	}
	n.mu.Lock()
	nm := n.metrics
	tr := n.tracer
	n.mu.Unlock()
	sp := n.st.PrimaryOf(obj)
	root := tr.Root("write")
	root.SetSite(n.site)
	root.SetObject(obj)
	root.SetPeer(sp)
	defer func() {
		root.SetErr(err)
		root.Finish()
	}()
	if sp == n.site {
		// Local primary: no shipping; bump the version and broadcast.
		ws := walSpan(root, n.st, "bump_version")
		version, err := n.st.BumpVersion(obj)
		ws.SetErr(err)
		ws.Finish()
		if err != nil {
			return 0, err
		}
		bcast, _, err := n.broadcast(obj, n.site, version, root)
		if err != nil {
			return 0, err
		}
		cost = bcast
	} else {
		n.mu.Lock()
		peers := n.peers
		n.mu.Unlock()
		if sp >= len(peers) {
			return 0, fmt.Errorf("netnode: no address for primary site %d", sp)
		}
		ship := root.Child("write.ship")
		ship.SetPeer(sp)
		resp, err := n.call(peers[sp], message{Op: "update", Object: obj, From: n.site}, ship)
		if err != nil {
			ship.SetErr(err)
			ship.Finish()
			// Primary unreachable: queue-and-flag. The write is not lost —
			// it is logged before ErrWriteQueued is returned, and
			// FlushPending replays it once the primary is back.
			qs := root.Child("write.queue")
			ws := walSpan(qs, n.st, "queue")
			qerr := n.st.Queue(obj)
			ws.SetErr(qerr)
			ws.Finish()
			qs.SetErr(qerr)
			qs.Finish()
			if qerr != nil {
				return 0, qerr
			}
			if nm != nil {
				nm.degraded("write_queued")
			}
			root.SetVerdict("queued")
			return 0, fmt.Errorf("%w: object %d: %v", ErrWriteQueued, obj, err)
		}
		if !resp.OK {
			ship.SetErrText(resp.Err)
			ship.Finish()
			return 0, &ReplyError{Code: resp.Code, Msg: resp.Err}
		}
		ship.SetNTC(n.p.Size(obj) * n.p.Cost(n.site, sp))
		ship.Finish()
		cost = n.p.Size(obj)*n.p.Cost(n.site, sp) + resp.Cost
		// The broadcast skips the writer (it produced the new version), so
		// a writer that is itself a replicator adopts the version locally.
		if _, _, err := n.st.AdoptVersion(obj, resp.Version); err != nil {
			return 0, err
		}
	}
	if err := n.st.AddNTC(cost); err != nil {
		return 0, err
	}
	if nm != nil {
		nm.write(sp == n.site, cost, time.Since(start))
	}
	return cost, nil
}

// FlushPending replays the writes queued while the primary was down, in
// object order, and returns the transfer cost incurred. Writes whose
// primary is still unreachable stay queued; the first such stall stops
// flushing that object and moves on to the next.
func (n *Node) FlushPending() (int64, error) {
	objs := n.st.PendingObjects()
	n.mu.Lock()
	peers := n.peers
	nm := n.metrics
	tr := n.tracer
	n.mu.Unlock()
	sort.Ints(objs)
	var total int64
	for _, obj := range objs {
		sp := n.st.PrimaryOf(obj)
		if sp >= len(peers) {
			return total, fmt.Errorf("netnode: no address for primary site %d", sp)
		}
		for n.st.PendingCount(obj) > 0 {
			root := tr.Root("write.flush")
			root.SetSite(n.site)
			root.SetObject(obj)
			root.SetPeer(sp)
			ship := root.Child("write.ship")
			ship.SetPeer(sp)
			resp, err := n.call(peers[sp], message{Op: "update", Object: obj, From: n.site}, ship)
			if err != nil {
				ship.SetErr(err)
				ship.Finish()
				root.SetErr(err)
				root.Finish()
				break // still unreachable; keep the remainder queued
			}
			if !resp.OK {
				ship.SetErrText(resp.Err)
				ship.Finish()
				root.SetErrText(resp.Err)
				root.Finish()
				return total, &ReplyError{Code: resp.Code, Msg: resp.Err}
			}
			ship.SetNTC(n.p.Size(obj) * n.p.Cost(n.site, sp))
			ship.Finish()
			cost := n.p.Size(obj)*n.p.Cost(n.site, sp) + resp.Cost
			if err := n.st.Dequeue(obj); err != nil {
				root.Finish()
				return total, err
			}
			if err := n.st.AddNTC(cost); err != nil {
				root.Finish()
				return total, err
			}
			if _, _, err := n.st.AdoptVersion(obj, resp.Version); err != nil {
				root.Finish()
				return total, err
			}
			root.Finish()
			total += cost
			if nm != nil {
				nm.flushed(cost)
			}
		}
	}
	return total, nil
}

// call dials addr, sends one request and reads one reply, retrying
// transport failures per the node's RetryPolicy with capped, jittered
// exponential backoff. Protocol rejections are returned as replies, never
// retried. Each attempt gets its own rpc span under parent, and the
// attempt's span IDs ride the wire so the peer's serve span nests under
// the exact attempt that reached it.
func (n *Node) call(addr string, msg message, parent *spans.Span) (reply, error) {
	n.mu.Lock()
	dial := n.dial
	rp := n.retry
	timeout := n.reqTimeout
	nm := n.metrics
	n.mu.Unlock()
	attempts := rp.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if nm != nil {
				nm.retry(msg.Op)
			}
			n.mu.Lock()
			d := rp.backoff(a-1, n.rng)
			n.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
		}
		att := parent.Child("rpc." + msg.Op)
		att.SetAttempt(a)
		msg.Trace, msg.Span = att.Context()
		resp, err := callOnce(dial, addr, msg, timeout)
		if err == nil {
			att.Finish()
			return resp, nil
		}
		att.SetErr(err)
		att.Finish()
		if nm != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				nm.timeout(msg.Op)
			}
		}
		lastErr = err
	}
	return reply{}, lastErr
}

// callOnce performs one dial + request + reply exchange with an optional
// deadline covering the whole round trip.
func callOnce(dial Dialer, addr string, msg message, timeout time.Duration) (reply, error) {
	var conn net.Conn
	var err error
	if dial != nil {
		conn, err = dial(addr)
	} else if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return reply{}, fmt.Errorf("netnode: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := json.NewEncoder(conn).Encode(msg); err != nil {
		return reply{}, fmt.Errorf("netnode: send: %w", err)
	}
	var resp reply
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return reply{}, fmt.Errorf("netnode: recv: %w", err)
	}
	return resp, nil
}

// call is the coordinator-side one-shot exchange with no node state.
func call(addr string, msg message) (reply, error) {
	return callOnce(nil, addr, msg, 0)
}
