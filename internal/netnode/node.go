// Package netnode runs the paper's replication policy over real TCP
// sockets: every site is a server holding object replicas, reads are
// forwarded to the requester's nearest replica, writes ship to the primary
// copy which broadcasts the new version to the other replicators, and a
// coordinator (the paper's monitor site) deploys replication schemes by
// diffing placements into place/drop commands.
//
// Object payloads are not materialised — a transfer of object k between
// sites i and j is accounted as o_k·C(i,j) transfer-cost units, exactly as
// the cost model counts it — but every hop is a real network round trip on
// the loopback interface, so the protocol, the per-site state machines and
// their locking are exercised for real. With a full measurement period of
// traffic the cluster's accounted NTC equals eq. 4's D exactly; the tests
// assert it.
//
// The serving path tolerates faults. Every outbound call goes through an
// injectable dialer (see drp/internal/fault) with a per-request deadline
// and capped, jittered exponential backoff. Reads that cannot reach the
// recorded nearest replica fail over to the next-nearest live replica,
// walking the cost ranking exactly as eq. 4's min C(i,j) would with the
// dead sites excluded. Writes degrade instead of failing: an unreachable
// primary queues the write locally (flushed with FlushPending), and a
// partial broadcast marks the missed replicas stale at the primary for
// later version reconciliation (the "reconcile" op).
package netnode

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"drp/internal/core"
	"drp/internal/xrand"
)

// message is the wire format: one JSON object per line.
type message struct {
	Op      string `json:"op"`
	Object  int    `json:"obj"`
	From    int    `json:"from,omitempty"`
	Site    int    `json:"site,omitempty"`
	Sites   []int  `json:"sites,omitempty"`
	Version int64  `json:"version,omitempty"`
}

// reply is the wire response.
type reply struct {
	OK      bool   `json:"ok"`
	Err     string `json:"err,omitempty"`
	Code    string `json:"code,omitempty"`
	Cost    int64  `json:"cost,omitempty"`
	Holds   bool   `json:"holds,omitempty"`
	Version int64  `json:"version,omitempty"`
	Stale   []int  `json:"stale,omitempty"`
}

// Typed protocol rejection codes carried in reply.Code, so clients can
// distinguish coordination bugs from transport faults without parsing
// error strings.
const (
	CodeBadOp      = "bad_op"
	CodeBadJSON    = "bad_json"
	CodeOversized  = "oversized"
	CodeBadObject  = "bad_object"
	CodeBadSite    = "bad_site"
	CodeNotPrimary = "not_primary"
	CodeNotHolder  = "not_holder"
)

// maxLineBytes caps one wire request line; longer lines are rejected with
// CodeOversized and the connection is closed (the stream can no longer be
// trusted to be framed).
const maxLineBytes = 1 << 20

// errOversized is returned by readLine when the cap is exceeded.
var errOversized = errors.New("netnode: request line exceeds limit")

// ReplyError is a protocol-level rejection from a peer: the transport
// worked, but the peer refused the operation. Protocol rejections are
// never retried or failed over — they indicate a coordination bug, not a
// dead site.
type ReplyError struct {
	Code string
	Msg  string
}

func (e *ReplyError) Error() string {
	if e.Code == "" {
		return "netnode: peer rejected request: " + e.Msg
	}
	return fmt.Sprintf("netnode: peer rejected request (%s): %s", e.Code, e.Msg)
}

// Sentinel outcomes of the degraded serving paths.
var (
	// ErrNoReplica reports a read that found no reachable replica.
	ErrNoReplica = errors.New("netnode: no live replica")
	// ErrWriteQueued reports a write whose primary was unreachable; the
	// write is queued locally and will be retried by FlushPending.
	ErrWriteQueued = errors.New("netnode: write queued, primary unreachable")
)

// Dialer opens a connection to a peer address. The default is a plain TCP
// dial; drp/internal/fault substitutes middleware that injects crashes,
// blackholes, latency and drops without the node code changing.
type Dialer func(addr string) (net.Conn, error)

// Node is one site: a TCP server plus the site-local replication state the
// paper prescribes (its replica holdings, the nearest-replica record per
// object, and — for objects primaried here — the full replication scheme).
type Node struct {
	p    *core.Problem
	site int
	ln   net.Listener

	mu       sync.Mutex
	holds    map[int]bool
	versions map[int]int64        // version of each locally held replica
	nearest  []int                // SN_k(site): where this site sends reads for k
	replicas [][]int              // R_k as last pushed by the coordinator
	registry [][]int              // for objects primaried here: the replicator list
	stale    map[int]map[int]bool // primary only: replicas that missed a sync
	pending  map[int]int          // writes queued while the primary was unreachable
	peers    []string
	ntc      int64        // transfer cost charged to this node's activities
	metrics  *nodeMetrics // telemetry instruments; nil when disabled

	dial       Dialer
	retry      RetryPolicy
	reqTimeout time.Duration
	rng        *xrand.Source // backoff jitter only; never touches accounting

	wg     sync.WaitGroup
	closed chan struct{}
}

// Listen starts a node for the given site on addr (use "127.0.0.1:0" for
// an ephemeral port). The node initially holds exactly the objects
// primaried at it; peers must be wired with SetPeers before serving
// remote traffic.
func Listen(p *core.Problem, site int, addr string) (*Node, error) {
	if site < 0 || site >= p.Sites() {
		return nil, fmt.Errorf("netnode: site %d out of range", site)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netnode: listen: %w", err)
	}
	n := &Node{
		p:        p,
		site:     site,
		ln:       ln,
		holds:    make(map[int]bool),
		versions: make(map[int]int64),
		nearest:  make([]int, p.Objects()),
		replicas: make([][]int, p.Objects()),
		registry: make([][]int, p.Objects()),
		stale:    make(map[int]map[int]bool),
		pending:  make(map[int]int),
		retry:    RetryPolicy{Attempts: 1},
		rng:      xrand.New(uint64(site) + 1),
		closed:   make(chan struct{}),
	}
	for k := 0; k < p.Objects(); k++ {
		sp := p.Primary(k)
		n.nearest[k] = sp
		n.replicas[k] = []int{sp}
		if sp == site {
			n.holds[k] = true
			n.registry[k] = []int{site}
		}
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Site returns the node's site index.
func (n *Node) Site() int { return n.site }

// SetPeers wires the full address table (indexed by site).
func (n *Node) SetPeers(addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append([]string(nil), addrs...)
}

// SetDialer routes the node's outbound calls through d (nil restores the
// default TCP dialer). Fault-injection middleware hooks in here.
func (n *Node) SetDialer(d Dialer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dial = d
}

// SetRetry configures transport-level retries for the node's outbound
// calls. The zero policy (Attempts ≤ 1) disables retrying.
func (n *Node) SetRetry(rp RetryPolicy) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.retry = rp
}

// SetRequestTimeout bounds each outbound call (dial plus round trip);
// 0 disables the deadline.
func (n *Node) SetRequestTimeout(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reqTimeout = d
}

// Version returns the local version of object k (0 if not held). Versions
// count the writes the primary has serialised; the primary-copy protocol
// guarantees replicas converge to the primary's version once broadcasts
// complete (or, after a partial broadcast, once reconciliation runs).
func (n *Node) Version(k int) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.versions[k]
}

// NTC returns the transfer cost accounted to this node so far.
func (n *Node) NTC() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ntc
}

// Holds reports whether the node currently stores object k.
func (n *Node) Holds(k int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.holds[k]
}

// PendingWrites returns the number of writes queued locally because the
// primary was unreachable when they were issued.
func (n *Node) PendingWrites() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, c := range n.pending {
		total += c
	}
	return total
}

// StaleReplicas returns, for an object primaried at this node, the sites
// that missed a sync broadcast and still await reconciliation.
func (n *Node) StaleReplicas(k int) []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return sortedSites(n.stale[k])
}

// Close shuts the listener down and waits for in-flight handlers.
func (n *Node) Close() error {
	close(n.closed)
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				if errors.Is(err, net.ErrClosed) {
					return
				}
				// Transient accept failure: back off briefly instead of
				// spinning the CPU on a hot error.
				time.Sleep(time.Millisecond)
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(conn)
		}()
	}
}

// serve handles one connection: a sequence of JSON-line requests. Framing
// violations (oversized or malformed lines) get a typed error reply and
// close the connection, since the stream can no longer be trusted.
func (n *Node) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		line, err := readLine(r, maxLineBytes)
		if err == errOversized {
			_ = enc.Encode(reply{Code: CodeOversized, Err: "request line exceeds limit"})
			return
		}
		if err != nil {
			return
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var msg message
		if err := json.Unmarshal(line, &msg); err != nil {
			_ = enc.Encode(reply{Code: CodeBadJSON, Err: fmt.Sprintf("malformed request: %v", err)})
			return
		}
		resp := n.handle(msg)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// readLine reads one newline-terminated line of at most max bytes. A line
// exceeding the cap returns errOversized; EOF before any byte returns the
// underlying error.
func readLine(r *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > max {
			return nil, errOversized
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			// io.EOF with a partial line is a truncated request: surface it
			// as a plain read error so the connection closes without a reply.
			return line, err
		}
		return line, nil
	}
}

func (n *Node) handle(msg message) reply {
	n.mu.Lock()
	nm := n.metrics
	n.mu.Unlock()
	if nm != nil {
		nm.served(msg.Op)
	}
	if msg.Object < 0 || msg.Object >= n.p.Objects() {
		return reply{Code: CodeBadObject, Err: fmt.Sprintf("object %d out of range", msg.Object)}
	}
	switch msg.Op {
	case "read":
		// A remote site reads from us; we must hold a replica. The reply
		// carries the replica's version so staleness is observable.
		n.mu.Lock()
		holds := n.holds[msg.Object]
		version := n.versions[msg.Object]
		n.mu.Unlock()
		if !holds {
			return reply{Code: CodeNotHolder, Err: fmt.Sprintf("site %d does not hold object %d", n.site, msg.Object)}
		}
		return reply{OK: true, Holds: true, Version: version}

	case "update":
		// A writer ships a new version to us — the primary — and we
		// broadcast it to every other replicator. Unreachable replicators
		// are marked stale instead of failing the write.
		if n.p.Primary(msg.Object) != n.site {
			return reply{Code: CodeNotPrimary, Err: fmt.Sprintf("site %d is not the primary of object %d", n.site, msg.Object)}
		}
		n.mu.Lock()
		n.versions[msg.Object]++
		version := n.versions[msg.Object]
		n.mu.Unlock()
		cost, stale, err := n.broadcast(msg.Object, msg.From, version)
		if err != nil {
			return errorReply(err)
		}
		return reply{OK: true, Cost: cost, Version: version, Stale: stale}

	case "sync":
		// The primary pushes a fresh version of an object we replicate.
		n.mu.Lock()
		holds := n.holds[msg.Object]
		if holds && msg.Version > n.versions[msg.Object] {
			n.versions[msg.Object] = msg.Version
		}
		n.mu.Unlock()
		if !holds {
			return reply{Code: CodeNotHolder, Err: fmt.Sprintf("sync for object %d not replicated at site %d", msg.Object, n.site)}
		}
		return reply{OK: true}

	case "place":
		n.mu.Lock()
		n.holds[msg.Object] = true
		n.versions[msg.Object] = msg.Version
		n.nearest[msg.Object] = n.site
		n.mu.Unlock()
		return reply{OK: true}

	case "drop":
		if n.p.Primary(msg.Object) == n.site {
			return reply{Code: CodeNotPrimary, Err: "cannot drop a primary copy"}
		}
		n.mu.Lock()
		delete(n.holds, msg.Object)
		delete(n.versions, msg.Object)
		n.mu.Unlock()
		return reply{OK: true}

	case "version":
		n.mu.Lock()
		version := n.versions[msg.Object]
		holds := n.holds[msg.Object]
		n.mu.Unlock()
		if !holds {
			return reply{Code: CodeNotHolder, Err: fmt.Sprintf("site %d does not hold object %d", n.site, msg.Object)}
		}
		return reply{OK: true, Version: version}

	case "registry":
		// The coordinator updates the primary's replicator list. Stale
		// marks for sites no longer replicating the object are dropped —
		// there is nothing left to reconcile at them.
		if n.p.Primary(msg.Object) != n.site {
			return reply{Code: CodeNotPrimary, Err: "registry update sent to a non-primary"}
		}
		if code, err := checkSites(msg.Sites, n.p.Sites()); err != nil {
			return reply{Code: code, Err: err.Error()}
		}
		n.mu.Lock()
		n.registry[msg.Object] = append([]int(nil), msg.Sites...)
		if marks := n.stale[msg.Object]; marks != nil {
			keep := make(map[int]bool, len(msg.Sites))
			for _, j := range msg.Sites {
				keep[j] = true
			}
			for j := range marks {
				if !keep[j] {
					delete(marks, j)
				}
			}
		}
		n.mu.Unlock()
		return reply{OK: true}

	case "replicas":
		// The coordinator pushes the object's full replicator set to every
		// site; reads fail over along this list when the nearest dies.
		if code, err := checkSites(msg.Sites, n.p.Sites()); err != nil {
			return reply{Code: code, Err: err.Error()}
		}
		n.mu.Lock()
		n.replicas[msg.Object] = append([]int(nil), msg.Sites...)
		n.mu.Unlock()
		return reply{OK: true}

	case "nearest":
		if msg.Site < 0 || msg.Site >= n.p.Sites() {
			return reply{Code: CodeBadSite, Err: "nearest site out of range"}
		}
		n.mu.Lock()
		n.nearest[msg.Object] = msg.Site
		n.mu.Unlock()
		return reply{OK: true}

	case "reconcile":
		// The coordinator asks the primary to re-sync every replica that
		// missed a broadcast. Each successful re-sync is a fresh transfer
		// of the object and is accounted as such; replicas still
		// unreachable stay marked and are reported back.
		if n.p.Primary(msg.Object) != n.site {
			return reply{Code: CodeNotPrimary, Err: "reconcile sent to a non-primary"}
		}
		cost, remaining := n.reconcile(msg.Object)
		return reply{OK: true, Cost: cost, Stale: remaining}

	default:
		return reply{Code: CodeBadOp, Err: fmt.Sprintf("unknown op %q", msg.Op)}
	}
}

// checkSites validates a site list from the wire.
func checkSites(sites []int, m int) (string, error) {
	for _, j := range sites {
		if j < 0 || j >= m {
			return CodeBadSite, fmt.Errorf("site %d out of range", j)
		}
	}
	return "", nil
}

// errorReply converts a local error into a wire reply, preserving a typed
// code when the error is itself a protocol rejection.
func errorReply(err error) reply {
	var re *ReplyError
	if errors.As(err, &re) {
		return reply{Code: re.Code, Err: re.Msg}
	}
	return reply{Err: err.Error()}
}

// broadcast pushes the updated object to every replicator except the
// writer and the primary itself. Replicators that cannot be reached are
// marked stale for later reconciliation instead of failing the write; the
// returned cost covers only the syncs that landed.
func (n *Node) broadcast(obj, writer int, version int64) (int64, []int, error) {
	n.mu.Lock()
	targets := append([]int(nil), n.registry[obj]...)
	peers := n.peers
	nm := n.metrics
	n.mu.Unlock()
	var cost int64
	var missed []int
	for _, j := range targets {
		if j == writer || j == n.site {
			continue
		}
		if j < 0 || j >= len(peers) {
			return 0, nil, fmt.Errorf("replicator %d has no known address", j)
		}
		resp, err := n.call(peers[j], message{Op: "sync", Object: obj, Version: version})
		if err != nil {
			missed = append(missed, j)
			continue
		}
		if !resp.OK {
			return 0, nil, &ReplyError{Code: resp.Code, Msg: fmt.Sprintf("sync to site %d: %s", j, resp.Err)}
		}
		cost += n.p.Size(obj) * n.p.Cost(n.site, j)
		n.clearStale(obj, j)
	}
	if len(missed) > 0 {
		n.markStale(obj, missed)
		if nm != nil {
			nm.degraded("broadcast_partial")
		}
	}
	return cost, missed, nil
}

func (n *Node) markStale(obj int, sites []int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	marks := n.stale[obj]
	if marks == nil {
		marks = make(map[int]bool)
		n.stale[obj] = marks
	}
	for _, j := range sites {
		marks[j] = true
	}
}

func (n *Node) clearStale(obj, site int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if marks := n.stale[obj]; marks != nil {
		delete(marks, site)
	}
}

// reconcile re-syncs the stale replicas of an object primaried here,
// returning the transfer cost of the copies that shipped and the sites
// that remain unreachable.
func (n *Node) reconcile(obj int) (int64, []int) {
	n.mu.Lock()
	targets := sortedSites(n.stale[obj])
	version := n.versions[obj]
	peers := n.peers
	n.mu.Unlock()
	var cost int64
	var remaining []int
	for _, j := range targets {
		if j < 0 || j >= len(peers) {
			remaining = append(remaining, j)
			continue
		}
		resp, err := n.call(peers[j], message{Op: "sync", Object: obj, Version: version})
		if err != nil || !resp.OK {
			remaining = append(remaining, j)
			continue
		}
		cost += n.p.Size(obj) * n.p.Cost(n.site, j)
		n.clearStale(obj, j)
	}
	return cost, remaining
}

func sortedSites(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// readCandidates returns the replicas to try for a read of obj, nearest
// first, then the remaining replicators ordered by transfer cost from this
// site (ties broken by site index) — the exact ranking eq. 4's min C(i,j)
// induces once dead sites are excluded.
func (n *Node) readCandidates(obj, nearest int, replicas []int) []int {
	rest := make([]int, 0, len(replicas))
	for _, j := range replicas {
		if j != nearest && j != n.site {
			rest = append(rest, j)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		ca, cb := n.p.Cost(n.site, rest[a]), n.p.Cost(n.site, rest[b])
		if ca != cb {
			return ca < cb
		}
		return rest[a] < rest[b]
	})
	return append([]int{nearest}, rest...)
}

// Read performs a client read from this node: served locally if a replica
// is held, otherwise fetched from the recorded nearest replica over TCP,
// failing over to the next-nearest live replica when sites are down.
// Returns the transfer cost incurred. ErrNoReplica reports that every
// replica was unreachable.
func (n *Node) Read(obj int) (int64, error) {
	start := time.Now()
	if obj < 0 || obj >= n.p.Objects() {
		return 0, fmt.Errorf("netnode: object %d out of range", obj)
	}
	n.mu.Lock()
	local := n.holds[obj]
	target := n.nearest[obj]
	replicas := n.replicas[obj]
	peers := n.peers
	nm := n.metrics
	n.mu.Unlock()
	if local {
		if nm != nil {
			nm.read(true, 0, time.Since(start))
		}
		return 0, nil
	}
	var lastErr error
	for idx, j := range n.readCandidates(obj, target, replicas) {
		if j < 0 || j >= len(peers) {
			lastErr = fmt.Errorf("netnode: no address for site %d", j)
			continue
		}
		resp, err := n.call(peers[j], message{Op: "read", Object: obj})
		if err != nil {
			lastErr = err
			continue
		}
		if !resp.OK {
			// A live peer refusing the read is a coordination bug (e.g. a
			// stale nearest record pointing at a non-holder): fail loudly
			// rather than silently serving from elsewhere.
			return 0, &ReplyError{Code: resp.Code, Msg: resp.Err}
		}
		cost := n.p.Size(obj) * n.p.Cost(n.site, j)
		n.mu.Lock()
		n.ntc += cost
		n.mu.Unlock()
		if nm != nil {
			nm.read(false, cost, time.Since(start))
			if idx > 0 {
				nm.failover(cost)
			}
		}
		return cost, nil
	}
	if nm != nil {
		nm.degraded("read_failed")
	}
	if lastErr != nil {
		return 0, fmt.Errorf("%w for object %d: %v", ErrNoReplica, obj, lastErr)
	}
	return 0, fmt.Errorf("%w for object %d", ErrNoReplica, obj)
}

// Write performs a client write from this node: the new version ships to
// the primary, which broadcasts it to the other replicators (unreachable
// ones are marked stale at the primary rather than failing the write).
// Returns the total transfer cost (shipping plus the successful part of
// the broadcast). When the primary itself is unreachable the write is
// queued locally and ErrWriteQueued is returned; FlushPending retries it.
func (n *Node) Write(obj int) (int64, error) {
	start := time.Now()
	if obj < 0 || obj >= n.p.Objects() {
		return 0, fmt.Errorf("netnode: object %d out of range", obj)
	}
	n.mu.Lock()
	nm := n.metrics
	n.mu.Unlock()
	sp := n.p.Primary(obj)
	var cost int64
	if sp == n.site {
		// Local primary: no shipping; bump the version and broadcast.
		n.mu.Lock()
		n.versions[obj]++
		version := n.versions[obj]
		n.mu.Unlock()
		bcast, _, err := n.broadcast(obj, n.site, version)
		if err != nil {
			return 0, err
		}
		cost = bcast
	} else {
		n.mu.Lock()
		peers := n.peers
		n.mu.Unlock()
		if sp >= len(peers) {
			return 0, fmt.Errorf("netnode: no address for primary site %d", sp)
		}
		resp, err := n.call(peers[sp], message{Op: "update", Object: obj, From: n.site})
		if err != nil {
			// Primary unreachable: queue-and-flag. The write is not lost —
			// FlushPending replays it once the primary is back.
			n.mu.Lock()
			n.pending[obj]++
			n.mu.Unlock()
			if nm != nil {
				nm.degraded("write_queued")
			}
			return 0, fmt.Errorf("%w: object %d: %v", ErrWriteQueued, obj, err)
		}
		if !resp.OK {
			return 0, &ReplyError{Code: resp.Code, Msg: resp.Err}
		}
		cost = n.p.Size(obj)*n.p.Cost(n.site, sp) + resp.Cost
		// The broadcast skips the writer (it produced the new version), so
		// a writer that is itself a replicator adopts the version locally.
		n.mu.Lock()
		if n.holds[obj] && resp.Version > n.versions[obj] {
			n.versions[obj] = resp.Version
		}
		n.mu.Unlock()
	}
	n.mu.Lock()
	n.ntc += cost
	n.mu.Unlock()
	if nm != nil {
		nm.write(sp == n.site, cost, time.Since(start))
	}
	return cost, nil
}

// FlushPending replays the writes queued while the primary was down, in
// object order, and returns the transfer cost incurred. Writes whose
// primary is still unreachable stay queued; the first such stall stops
// flushing that object and moves on to the next.
func (n *Node) FlushPending() (int64, error) {
	n.mu.Lock()
	objs := make([]int, 0, len(n.pending))
	for k, c := range n.pending {
		if c > 0 {
			objs = append(objs, k)
		}
	}
	peers := n.peers
	nm := n.metrics
	n.mu.Unlock()
	sort.Ints(objs)
	var total int64
	for _, obj := range objs {
		sp := n.p.Primary(obj)
		if sp >= len(peers) {
			return total, fmt.Errorf("netnode: no address for primary site %d", sp)
		}
		for {
			n.mu.Lock()
			remaining := n.pending[obj]
			n.mu.Unlock()
			if remaining == 0 {
				break
			}
			resp, err := n.call(peers[sp], message{Op: "update", Object: obj, From: n.site})
			if err != nil {
				break // still unreachable; keep the remainder queued
			}
			if !resp.OK {
				return total, &ReplyError{Code: resp.Code, Msg: resp.Err}
			}
			cost := n.p.Size(obj)*n.p.Cost(n.site, sp) + resp.Cost
			n.mu.Lock()
			n.pending[obj]--
			if n.pending[obj] == 0 {
				delete(n.pending, obj)
			}
			n.ntc += cost
			if n.holds[obj] && resp.Version > n.versions[obj] {
				n.versions[obj] = resp.Version
			}
			n.mu.Unlock()
			total += cost
			if nm != nil {
				nm.flushed(cost)
			}
		}
	}
	return total, nil
}

// call dials addr, sends one request and reads one reply, retrying
// transport failures per the node's RetryPolicy with capped, jittered
// exponential backoff. Protocol rejections are returned as replies, never
// retried.
func (n *Node) call(addr string, msg message) (reply, error) {
	n.mu.Lock()
	dial := n.dial
	rp := n.retry
	timeout := n.reqTimeout
	nm := n.metrics
	n.mu.Unlock()
	attempts := rp.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if nm != nil {
				nm.retry(msg.Op)
			}
			n.mu.Lock()
			d := rp.backoff(a-1, n.rng)
			n.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
		}
		resp, err := callOnce(dial, addr, msg, timeout)
		if err == nil {
			return resp, nil
		}
		if nm != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				nm.timeout(msg.Op)
			}
		}
		lastErr = err
	}
	return reply{}, lastErr
}

// callOnce performs one dial + request + reply exchange with an optional
// deadline covering the whole round trip.
func callOnce(dial Dialer, addr string, msg message, timeout time.Duration) (reply, error) {
	var conn net.Conn
	var err error
	if dial != nil {
		conn, err = dial(addr)
	} else if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return reply{}, fmt.Errorf("netnode: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := json.NewEncoder(conn).Encode(msg); err != nil {
		return reply{}, fmt.Errorf("netnode: send: %w", err)
	}
	var resp reply
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return reply{}, fmt.Errorf("netnode: recv: %w", err)
	}
	return resp, nil
}

// call is the coordinator-side one-shot exchange with no node state.
func call(addr string, msg message) (reply, error) {
	return callOnce(nil, addr, msg, 0)
}
