// Package netnode runs the paper's replication policy over real TCP
// sockets: every site is a server holding object replicas, reads are
// forwarded to the requester's nearest replica, writes ship to the primary
// copy which broadcasts the new version to the other replicators, and a
// coordinator (the paper's monitor site) deploys replication schemes by
// diffing placements into place/drop commands.
//
// Object payloads are not materialised — a transfer of object k between
// sites i and j is accounted as o_k·C(i,j) transfer-cost units, exactly as
// the cost model counts it — but every hop is a real network round trip on
// the loopback interface, so the protocol, the per-site state machines and
// their locking are exercised for real. With a full measurement period of
// traffic the cluster's accounted NTC equals eq. 4's D exactly; the tests
// assert it.
package netnode

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"drp/internal/core"
)

// message is the wire format: one JSON object per line.
type message struct {
	Op      string `json:"op"`
	Object  int    `json:"obj"`
	From    int    `json:"from,omitempty"`
	Site    int    `json:"site,omitempty"`
	Sites   []int  `json:"sites,omitempty"`
	Version int64  `json:"version,omitempty"`
}

// reply is the wire response.
type reply struct {
	OK      bool   `json:"ok"`
	Err     string `json:"err,omitempty"`
	Cost    int64  `json:"cost,omitempty"`
	Holds   bool   `json:"holds,omitempty"`
	Version int64  `json:"version,omitempty"`
}

// Node is one site: a TCP server plus the site-local replication state the
// paper prescribes (its replica holdings, the nearest-replica record per
// object, and — for objects primaried here — the full replication scheme).
type Node struct {
	p    *core.Problem
	site int
	ln   net.Listener

	mu       sync.Mutex
	holds    map[int]bool
	versions map[int]int64 // version of each locally held replica
	nearest  []int         // SN_k(site): where this site sends reads for k
	registry [][]int       // for objects primaried here: the replicator list
	peers    []string
	ntc      int64        // transfer cost charged to this node's activities
	metrics  *nodeMetrics // telemetry instruments; nil when disabled

	wg     sync.WaitGroup
	closed chan struct{}
}

// Listen starts a node for the given site on addr (use "127.0.0.1:0" for
// an ephemeral port). The node initially holds exactly the objects
// primaried at it; peers must be wired with SetPeers before serving
// remote traffic.
func Listen(p *core.Problem, site int, addr string) (*Node, error) {
	if site < 0 || site >= p.Sites() {
		return nil, fmt.Errorf("netnode: site %d out of range", site)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netnode: listen: %w", err)
	}
	n := &Node{
		p:        p,
		site:     site,
		ln:       ln,
		holds:    make(map[int]bool),
		versions: make(map[int]int64),
		nearest:  make([]int, p.Objects()),
		registry: make([][]int, p.Objects()),
		closed:   make(chan struct{}),
	}
	for k := 0; k < p.Objects(); k++ {
		sp := p.Primary(k)
		n.nearest[k] = sp
		if sp == site {
			n.holds[k] = true
			n.registry[k] = []int{site}
		}
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Site returns the node's site index.
func (n *Node) Site() int { return n.site }

// SetPeers wires the full address table (indexed by site).
func (n *Node) SetPeers(addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append([]string(nil), addrs...)
}

// Version returns the local version of object k (0 if not held). Versions
// count the writes the primary has serialised; the primary-copy protocol
// guarantees replicas converge to the primary's version once broadcasts
// complete.
func (n *Node) Version(k int) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.versions[k]
}

// NTC returns the transfer cost accounted to this node so far.
func (n *Node) NTC() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ntc
}

// Holds reports whether the node currently stores object k.
func (n *Node) Holds(k int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.holds[k]
}

// Close shuts the listener down and waits for in-flight handlers.
func (n *Node) Close() error {
	close(n.closed)
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(conn)
		}()
	}
}

// serve handles one connection: a sequence of JSON-line requests.
func (n *Node) serve(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var msg message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		resp := n.handle(msg)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (n *Node) handle(msg message) reply {
	n.mu.Lock()
	nm := n.metrics
	n.mu.Unlock()
	if nm != nil {
		nm.served(msg.Op)
	}
	if msg.Object < 0 || msg.Object >= n.p.Objects() {
		return reply{Err: fmt.Sprintf("object %d out of range", msg.Object)}
	}
	switch msg.Op {
	case "read":
		// A remote site reads from us; we must hold a replica. The reply
		// carries the replica's version so staleness is observable.
		n.mu.Lock()
		holds := n.holds[msg.Object]
		version := n.versions[msg.Object]
		n.mu.Unlock()
		if !holds {
			return reply{Err: fmt.Sprintf("site %d does not hold object %d", n.site, msg.Object)}
		}
		return reply{OK: true, Holds: true, Version: version}

	case "update":
		// A writer ships a new version to us — the primary — and we
		// broadcast it to every other replicator.
		if n.p.Primary(msg.Object) != n.site {
			return reply{Err: fmt.Sprintf("site %d is not the primary of object %d", n.site, msg.Object)}
		}
		n.mu.Lock()
		n.versions[msg.Object]++
		version := n.versions[msg.Object]
		n.mu.Unlock()
		cost, err := n.broadcast(msg.Object, msg.From, version)
		if err != nil {
			return reply{Err: err.Error()}
		}
		return reply{OK: true, Cost: cost, Version: version}

	case "sync":
		// The primary pushes a fresh version of an object we replicate.
		n.mu.Lock()
		holds := n.holds[msg.Object]
		if holds && msg.Version > n.versions[msg.Object] {
			n.versions[msg.Object] = msg.Version
		}
		n.mu.Unlock()
		if !holds {
			return reply{Err: fmt.Sprintf("sync for object %d not replicated at site %d", msg.Object, n.site)}
		}
		return reply{OK: true}

	case "place":
		n.mu.Lock()
		n.holds[msg.Object] = true
		n.versions[msg.Object] = msg.Version
		n.nearest[msg.Object] = n.site
		n.mu.Unlock()
		return reply{OK: true}

	case "drop":
		if n.p.Primary(msg.Object) == n.site {
			return reply{Err: "cannot drop a primary copy"}
		}
		n.mu.Lock()
		delete(n.holds, msg.Object)
		delete(n.versions, msg.Object)
		n.mu.Unlock()
		return reply{OK: true}

	case "version":
		n.mu.Lock()
		version := n.versions[msg.Object]
		holds := n.holds[msg.Object]
		n.mu.Unlock()
		if !holds {
			return reply{Err: fmt.Sprintf("site %d does not hold object %d", n.site, msg.Object)}
		}
		return reply{OK: true, Version: version}

	case "registry":
		// The coordinator updates the primary's replicator list.
		if n.p.Primary(msg.Object) != n.site {
			return reply{Err: "registry update sent to a non-primary"}
		}
		n.mu.Lock()
		n.registry[msg.Object] = append([]int(nil), msg.Sites...)
		n.mu.Unlock()
		return reply{OK: true}

	case "nearest":
		if msg.Site < 0 || msg.Site >= n.p.Sites() {
			return reply{Err: "nearest site out of range"}
		}
		n.mu.Lock()
		n.nearest[msg.Object] = msg.Site
		n.mu.Unlock()
		return reply{OK: true}

	default:
		return reply{Err: fmt.Sprintf("unknown op %q", msg.Op)}
	}
}

// broadcast pushes the updated object to every replicator except the
// writer and the primary itself, returning the transfer cost of the
// fan-out.
func (n *Node) broadcast(obj, writer int, version int64) (int64, error) {
	n.mu.Lock()
	targets := append([]int(nil), n.registry[obj]...)
	peers := n.peers
	n.mu.Unlock()
	var cost int64
	for _, j := range targets {
		if j == writer || j == n.site {
			continue
		}
		if j < 0 || j >= len(peers) {
			return 0, fmt.Errorf("replicator %d has no known address", j)
		}
		resp, err := call(peers[j], message{Op: "sync", Object: obj, Version: version})
		if err != nil {
			return 0, fmt.Errorf("sync to site %d: %w", j, err)
		}
		if !resp.OK {
			return 0, errors.New(resp.Err)
		}
		cost += n.p.Size(obj) * n.p.Cost(n.site, j)
	}
	return cost, nil
}

// Read performs a client read from this node: served locally if a replica
// is held, otherwise fetched from the recorded nearest replica over TCP.
// Returns the transfer cost incurred.
func (n *Node) Read(obj int) (int64, error) {
	start := time.Now()
	n.mu.Lock()
	local := n.holds[obj]
	target := n.nearest[obj]
	peers := n.peers
	nm := n.metrics
	n.mu.Unlock()
	if local {
		if nm != nil {
			nm.read(true, 0, time.Since(start))
		}
		return 0, nil
	}
	if target < 0 || target >= len(peers) {
		return 0, fmt.Errorf("netnode: no address for nearest site %d", target)
	}
	resp, err := call(peers[target], message{Op: "read", Object: obj})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, errors.New(resp.Err)
	}
	cost := n.p.Size(obj) * n.p.Cost(n.site, target)
	n.mu.Lock()
	n.ntc += cost
	n.mu.Unlock()
	if nm != nil {
		nm.read(false, cost, time.Since(start))
	}
	return cost, nil
}

// Write performs a client write from this node: the new version ships to
// the primary, which broadcasts it to the other replicators. Returns the
// total transfer cost (shipping plus broadcast).
func (n *Node) Write(obj int) (int64, error) {
	start := time.Now()
	n.mu.Lock()
	nm := n.metrics
	n.mu.Unlock()
	sp := n.p.Primary(obj)
	var cost int64
	if sp == n.site {
		// Local primary: no shipping; bump the version and broadcast.
		n.mu.Lock()
		n.versions[obj]++
		version := n.versions[obj]
		n.mu.Unlock()
		bcast, err := n.broadcast(obj, n.site, version)
		if err != nil {
			return 0, err
		}
		cost = bcast
	} else {
		n.mu.Lock()
		peers := n.peers
		n.mu.Unlock()
		if sp >= len(peers) {
			return 0, fmt.Errorf("netnode: no address for primary site %d", sp)
		}
		resp, err := call(peers[sp], message{Op: "update", Object: obj, From: n.site})
		if err != nil {
			return 0, err
		}
		if !resp.OK {
			return 0, errors.New(resp.Err)
		}
		cost = n.p.Size(obj)*n.p.Cost(n.site, sp) + resp.Cost
		// The broadcast skips the writer (it produced the new version), so
		// a writer that is itself a replicator adopts the version locally.
		n.mu.Lock()
		if n.holds[obj] && resp.Version > n.versions[obj] {
			n.versions[obj] = resp.Version
		}
		n.mu.Unlock()
	}
	n.mu.Lock()
	n.ntc += cost
	n.mu.Unlock()
	if nm != nil {
		nm.write(sp == n.site, cost, time.Since(start))
	}
	return cost, nil
}

// call dials addr, sends one request and reads one reply.
func call(addr string, msg message) (reply, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return reply{}, fmt.Errorf("netnode: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(msg); err != nil {
		return reply{}, fmt.Errorf("netnode: send: %w", err)
	}
	var resp reply
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return reply{}, fmt.Errorf("netnode: recv: %w", err)
	}
	return resp, nil
}
