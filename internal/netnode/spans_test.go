package netnode

import (
	"testing"

	"drp/internal/spans"
	"drp/internal/sra"
	"drp/internal/store"
)

// TestTracedDeployAndRequests walks one traced deploy-read-write cycle
// over real TCP and checks the shape the analyzer depends on: the deploy
// root carries the migration NTC, a remote read stitches serve spans
// under the exact rpc attempt that reached the replica, and a write trace
// sums to the accounted write cost.
func TestTracedDeployAndRequests(t *testing.T) {
	p := gen(t, 4, 3, 0.1, 0.8, 9)
	c := startCluster(t, p)
	col := &spans.Collector{}
	c.EnableTracing(spans.New(col))

	scheme := sra.Run(p, sra.Options{}).Scheme
	migration, err := c.Deploy(scheme)
	if err != nil {
		t.Fatal(err)
	}
	traces := spans.Assemble(col.Spans())
	if len(traces) != 1 || traces[0].Root().Name != "deploy" {
		t.Fatalf("deploy produced %d traces, want one deploy root", len(traces))
	}
	if got := traces[0].Root().NTC; got != migration {
		t.Fatalf("deploy root NTC %d, want migration cost %d", got, migration)
	}
	col.Reset()

	// A read from a non-replica site must traverse the wire: the trace
	// needs an rpc.read attempt with a serve.read child.
	k := 0
	reader := -1
	for i := 0; i < p.Sites(); i++ {
		if !scheme.Has(i, k) {
			reader = i
			break
		}
	}
	if reader < 0 {
		t.Skip("scheme replicates object 0 everywhere; no remote read possible")
	}
	cost, err := c.Node(reader).Read(k)
	if err != nil {
		t.Fatal(err)
	}
	traces = spans.Assemble(col.Spans())
	if len(traces) != 1 {
		t.Fatalf("read produced %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Root().Name != "read" {
		t.Fatalf("root span %q, want read", tr.Root().Name)
	}
	if got := tr.NTC(); got != cost {
		t.Fatalf("read trace NTC %d, want accounted cost %d", got, cost)
	}
	var attempt, serve bool
	tr.Walk(func(ts *spans.TreeSpan) {
		switch ts.Name {
		case "rpc.read":
			attempt = true
			for _, ch := range ts.Children {
				if ch.Name == "serve.read" {
					serve = true
				}
			}
		}
	})
	if !attempt || !serve {
		t.Fatalf("remote read trace missing rpc.read attempt (%v) or stitched serve.read child (%v)", attempt, serve)
	}
	col.Reset()

	writer := (p.Primary(k) + 1) % p.Sites()
	wcost, err := c.Node(writer).Write(k)
	if err != nil {
		t.Fatal(err)
	}
	traces = spans.Assemble(col.Spans())
	if len(traces) != 1 || traces[0].Root().Name != "write" {
		t.Fatalf("write produced %d traces, want one write root", len(traces))
	}
	if got := traces[0].NTC(); got != wcost {
		t.Fatalf("write trace NTC %d, want accounted cost %d", got, wcost)
	}
}

// TestTracingSamplingAndRestart checks that sampling drops whole request
// trees (no half-traced requests) and that a restarted node keeps the
// cluster's tracer.
func TestTracingSamplingAndRestart(t *testing.T) {
	p := gen(t, 3, 2, 0.1, 0.8, 5)
	c, err := StartDurable(p, t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	scheme := sra.Run(p, sra.Options{}).Scheme
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	col := &spans.Collector{}
	tr := spans.New(col)
	tr.SetSample(3)
	c.EnableTracing(tr)

	for i := 0; i < 9; i++ {
		if _, err := c.Node(i % p.Sites()).Read(0); err != nil {
			t.Fatal(err)
		}
	}
	traces := spans.Assemble(col.Spans())
	if len(traces) != 3 {
		t.Fatalf("sample=3 kept %d traces of 9 reads, want 3", len(traces))
	}
	for _, tt := range traces {
		if len(tt.Roots) != 1 || tt.Root().Name != "read" {
			t.Fatalf("sampled trace is not a single read tree")
		}
	}

	if _, err := c.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	col.Reset()
	tr.SetSample(1)
	if _, err := c.Node(0).Read(0); err != nil {
		t.Fatal(err)
	}
	if len(col.Spans()) == 0 {
		t.Fatal("restarted node lost the cluster tracer")
	}
}
