package netnode

import (
	"sync"
	"testing"

	"drp/internal/core"
	"drp/internal/sra"
	"drp/internal/workload"
)

func gen(t testing.TB, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func startCluster(t *testing.T, p *core.Problem) *Cluster {
	t.Helper()
	c, err := StartLocal(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// The headline test: traffic served over real TCP sockets costs exactly
// what eq. 4 predicts, both for the primaries-only scheme and for an
// SRA-optimised one.
func TestTCPTrafficCostEqualsEq4(t *testing.T) {
	p := gen(t, 5, 6, 0.2, 0.4, 1)
	c := startCluster(t, p)

	total, err := c.DriveTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if total != p.DPrime() {
		t.Fatalf("primaries-only TCP traffic cost %d != D' %d", total, p.DPrime())
	}

	scheme := sra.Run(p, sra.Options{}).Scheme
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	total, err = c.DriveTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if want := scheme.Cost(); total != want {
		t.Fatalf("deployed-scheme TCP traffic cost %d != eq.4 D %d", total, want)
	}
}

func TestDeployMigrationCostMatchesModel(t *testing.T) {
	p := gen(t, 4, 5, 0.05, 0.5, 2)
	c := startCluster(t, p)
	scheme := sra.Run(p, sra.Options{}).Scheme
	want := core.NewScheme(p).MigrationCost(scheme)
	got, err := c.Deploy(scheme)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("deploy migration cost %d, model says %d", got, want)
	}
	// Idempotent redeploy is free.
	again, err := c.Deploy(scheme)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("redeploy cost %d, want 0", again)
	}
}

func TestLocalReadIsFree(t *testing.T) {
	p := gen(t, 3, 4, 0.05, 0.5, 3)
	c := startCluster(t, p)
	// The primary site reads its own object for free.
	k := 0
	sp := p.Primary(k)
	cost, err := c.Node(sp).Read(k)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("local read cost %d, want 0", cost)
	}
	// A remote site pays o_k · C(i, SP_k).
	other := (sp + 1) % p.Sites()
	cost, err = c.Node(other).Read(k)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Size(k) * p.Cost(other, sp); cost != want {
		t.Fatalf("remote read cost %d, want %d", cost, want)
	}
	if c.Node(other).NTC() != cost {
		t.Fatal("node NTC accounting missed the read")
	}
}

func TestWriteBroadcastCost(t *testing.T) {
	p := gen(t, 4, 3, 0.05, 1.0, 4)
	c := startCluster(t, p)
	k := 0
	sp := p.Primary(k)
	// Replicate object k at two extra sites.
	scheme := core.NewScheme(p)
	var extras []int
	for i := 0; i < p.Sites() && len(extras) < 2; i++ {
		if i != sp && scheme.Add(i, k) == nil {
			extras = append(extras, i)
		}
	}
	if len(extras) < 2 {
		t.Skip("not enough capacity to build the scenario")
	}
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	// A write from extras[0]: ship to primary + broadcast to extras[1]
	// (the writer itself is excluded from the fan-out).
	writer := extras[0]
	cost, err := c.Node(writer).Write(k)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Size(k)*p.Cost(writer, sp) + p.Size(k)*p.Cost(sp, extras[1])
	if cost != want {
		t.Fatalf("write cost %d, want %d", cost, want)
	}
}

func TestDropPrimaryRejected(t *testing.T) {
	p := gen(t, 3, 3, 0.05, 0.5, 5)
	c := startCluster(t, p)
	k := 0
	if err := c.command(p.Primary(k), message{Op: "drop", Object: k}, nil); err == nil {
		t.Fatal("primary drop accepted")
	}
}

func TestUnknownOpAndBadObject(t *testing.T) {
	p := gen(t, 2, 2, 0.05, 0.5, 6)
	c := startCluster(t, p)
	if err := c.command(0, message{Op: "warp", Object: 0}, nil); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := c.command(0, message{Op: "read", Object: 99}, nil); err == nil {
		t.Fatal("out-of-range object accepted")
	}
}

func TestReadFromNonHolderFails(t *testing.T) {
	p := gen(t, 3, 2, 0.05, 0.5, 7)
	c := startCluster(t, p)
	k := 0
	nonHolder := (p.Primary(k) + 1) % p.Sites()
	// Point site 2's nearest at a non-holder and read: must error loudly,
	// not silently serve.
	reader := (nonHolder + 1) % p.Sites()
	if reader == p.Primary(k) {
		reader = nonHolder
	}
	if err := c.command(reader, message{Op: "nearest", Object: k, Site: nonHolder}, nil); err != nil {
		t.Fatal(err)
	}
	if nonHolder != reader {
		if _, err := c.Node(reader).Read(k); err == nil {
			t.Fatal("read from a non-holder succeeded")
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	p := gen(t, 4, 6, 0.05, 0.5, 8)
	c := startCluster(t, p)
	scheme := sra.Run(p, sra.Options{}).Scheme
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				if _, err := c.Node(w % p.Sites()).Read(r % p.Objects()); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestListenValidation(t *testing.T) {
	p := gen(t, 2, 2, 0.05, 0.5, 9)
	if _, err := Listen(p, -1, "127.0.0.1:0"); err == nil {
		t.Fatal("negative site accepted")
	}
	if _, err := Listen(p, 0, "256.0.0.1:99999"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestVersionsConvergeAcrossReplicas(t *testing.T) {
	p := gen(t, 5, 4, 0.1, 1.0, 10)
	c := startCluster(t, p)
	k := 0
	sp := p.Primary(k)
	scheme := core.NewScheme(p)
	for i := 0; i < p.Sites(); i++ {
		_ = scheme.Add(i, k) // replicate everywhere capacity allows
	}
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	// Issue writes from rotating sites; the primary serialises them.
	const writes = 7
	for w := 0; w < writes; w++ {
		if _, err := c.Node(w % p.Sites()).Write(k); err != nil {
			t.Fatal(err)
		}
	}
	want := c.Node(sp).Version(k)
	if want != writes {
		t.Fatalf("primary version %d, want %d", want, writes)
	}
	for i := 0; i < p.Sites(); i++ {
		if !scheme.Has(i, k) {
			continue
		}
		if got := c.Node(i).Version(k); got != want {
			t.Fatalf("replica at site %d has version %d, primary has %d", i, got, want)
		}
	}
}

func TestPlacedReplicaStartsAtPrimaryVersion(t *testing.T) {
	p := gen(t, 4, 3, 0.1, 1.0, 11)
	c := startCluster(t, p)
	k := 0
	sp := p.Primary(k)
	// Write a few times before any replication.
	for w := 0; w < 3; w++ {
		if _, err := c.Node((sp + 1) % p.Sites()).Write(k); err != nil {
			t.Fatal(err)
		}
	}
	scheme := core.NewScheme(p)
	target := (sp + 1) % p.Sites()
	if err := scheme.Add(target, k); err != nil {
		t.Skip("no capacity for the scenario")
	}
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(target).Version(k); got != 3 {
		t.Fatalf("fresh replica version %d, want 3 (the primary's)", got)
	}
}
