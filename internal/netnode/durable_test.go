package netnode

import (
	"bytes"
	"testing"

	"drp/internal/core"
	"drp/internal/sra"
	"drp/internal/store"
)

func startDurable(t *testing.T, p *core.Problem, root string, opts store.Options) *Cluster {
	t.Helper()
	c, err := StartDurable(p, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// A durable cluster serves the measurement period at exactly eq. 4's cost,
// like the memory cluster — the WAL must be invisible to the cost model.
func TestDurableTrafficCostEqualsEq4(t *testing.T) {
	p := gen(t, 4, 5, 0.2, 0.4, 31)
	c := startDurable(t, p, t.TempDir(), testStoreOpts())
	scheme := sra.Run(p, sra.Options{}).Scheme
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	total, err := c.DriveTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if want := scheme.Cost(); total != want {
		t.Fatalf("durable TCP traffic cost %d != eq.4 D %d", total, want)
	}
}

// testStoreOpts keeps durable tests fast: process kills lose nothing that
// reached the OS, so SyncNever still exercises the full recovery path.
func testStoreOpts() store.Options { return store.Options{Sync: store.SyncNever} }

// Kill one node mid-cluster and restart it from its directory: the
// recovered state must be byte-identical to what the node had acknowledged
// at the instant of the kill, and the cluster must serve correctly again.
func TestKillAndRestartRecoversNodeState(t *testing.T) {
	p := gen(t, 4, 5, 0.2, 0.6, 32)
	root := t.TempDir()
	c := startDurable(t, p, root, testStoreOpts())
	scheme := sra.Run(p, sra.Options{}).Scheme
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DriveTraffic(); err != nil {
		t.Fatal(err)
	}

	victim := 1
	want := c.Node(victim).Store().EncodeState()
	if err := c.Node(victim).Kill(); err != nil {
		t.Fatal(err)
	}
	node, err := c.RestartNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !node.Store().Recovered() {
		t.Fatal("restarted node found no durable state")
	}
	if got := node.Store().EncodeState(); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
	// The cluster serves the full period again at the model's exact cost
	// (versions advance from the recovered stamps; cost is unaffected).
	total, err := c.DriveTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if want := scheme.Cost(); total != want {
		t.Fatalf("post-restart traffic cost %d != eq.4 D %d", total, want)
	}
}

// Stop the whole cluster and reopen it from the same root: the deployed
// scheme, versions and NTC must all come back from disk, and a redeploy of
// the same scheme must be free (the diff is empty because the recovered
// scheme matches).
func TestClusterRestartRecoversSchemeAndVersions(t *testing.T) {
	p := gen(t, 4, 5, 0.1, 0.8, 33)
	root := t.TempDir()
	scheme := sra.Run(p, sra.Options{}).Scheme

	c := startDurable(t, p, root, testStoreOpts())
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DriveTraffic(); err != nil {
		t.Fatal(err)
	}
	versions := make([]int64, p.Objects())
	ntc := make([]int64, p.Sites())
	for k := 0; k < p.Objects(); k++ {
		versions[k] = c.Node(p.Primary(k)).Version(k)
	}
	for i := 0; i < p.Sites(); i++ {
		ntc[i] = c.Node(i).NTC()
	}
	c.Close()

	r := startDurable(t, p, root, testStoreOpts())
	if !r.Scheme().Equal(scheme) {
		t.Fatal("recovered scheme differs from the deployed one")
	}
	for k := 0; k < p.Objects(); k++ {
		if got := r.Node(p.Primary(k)).Version(k); got != versions[k] {
			t.Fatalf("object %d recovered at version %d, want %d", k, got, versions[k])
		}
	}
	for i := 0; i < p.Sites(); i++ {
		if got := r.Node(i).NTC(); got != ntc[i] {
			t.Fatalf("site %d recovered NTC %d, want %d", i, got, ntc[i])
		}
	}
	cost, err := r.Deploy(scheme)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("redeploying the recovered scheme cost %d, want 0", cost)
	}
}

// Snapshots must be transparent: force one mid-run, keep writing, crash,
// and recover the exact state from snapshot + tail segment.
func TestSnapshotMidTrafficIsTransparent(t *testing.T) {
	p := gen(t, 3, 4, 0.2, 0.8, 34)
	root := t.TempDir()
	c := startDurable(t, p, root, testStoreOpts())
	scheme := sra.Run(p, sra.Options{}).Scheme
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DriveTraffic(); err != nil {
		t.Fatal(err)
	}
	victim := 0
	if err := c.Node(victim).Store().Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DriveTraffic(); err != nil { // post-snapshot delta
		t.Fatal(err)
	}
	want := c.Node(victim).Store().EncodeState()
	if err := c.Node(victim).Kill(); err != nil {
		t.Fatal(err)
	}
	node, err := c.RestartNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if got := node.Store().EncodeState(); !bytes.Equal(got, want) {
		t.Fatalf("snapshot+tail recovery differs:\n got %s\nwant %s", got, want)
	}
}
