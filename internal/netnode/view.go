package netnode

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"drp/internal/core"
	"drp/internal/membership"
	"drp/internal/plan"
	"drp/internal/spans"
	"drp/internal/store"
	"drp/internal/xrand"
)

// This file is the data-plane half of the control/data-plane split: a
// Cluster whose member set changes at runtime (Join/Leave) and whose
// placement moves by applying versioned plans (ApplyPlan) instead of raw
// scheme diffs. The node slice stays universe-indexed — a non-member site
// is simply a nil slot — so site indices on the wire never need
// translation.
//
// Invariants:
//   - the initial member set contains every universe primary site, so a
//     later joiner bootstraps empty (no object is universe-primaried at
//     it) and a rejoining site is resynchronised by Join;
//   - plans are journaled before the first migration step executes, so a
//     coordinator restart resumes the remainder by diffing the journaled
//     target against what the sites actually hold (ResumeMigration);
//   - migration order is copies → promotes → routing refresh → drops:
//     replicas copy in before anything routes to them, and a departing
//     site keeps serving (drains) until the plan stops placing on it.

// ApplyReport accounts one ApplyPlan or ResumeMigration run.
type ApplyReport struct {
	// Steps is the length of the migration step list the plan diff
	// produced; Completed counts the steps that executed.
	Steps, Completed int
	// MigrationNTC is the transfer cost of the completed copy steps —
	// exactly the a-priori sum of their Step.Cost fields.
	MigrationNTC int64
}

// ErrNotDrained reports a Leave of a site the current plan still places
// replicas (or a primary) on. Apply a plan that migrates the site empty
// first.
var ErrNotDrained = errors.New("netnode: site not drained")

// StartView boots a memory-backed cluster over the member subset of the
// universe problem. Members must include every universe primary site; the
// initial plan is the primaries-only placement over that view.
func StartView(p *core.Problem, members []int) (*Cluster, error) {
	ms, err := checkMembers(p, members)
	if err != nil {
		return nil, err
	}
	if err := checkPrimariesCovered(p, ms); err != nil {
		return nil, err
	}
	c := &Cluster{
		p:       p,
		nodes:   make([]*Node, p.Sites()),
		members: ms,
		retry:   RetryPolicy{Attempts: 1},
		rng:     xrand.New(0x10ad),
	}
	for _, i := range ms {
		node, err := Listen(p, i, "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[i] = node
	}
	c.rewirePeers()
	c.current = core.NewScheme(p)
	c.plan, err = plan.FromSchemeView(c.current, membership.View{Members: ms})
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// StartDurableView boots a durable cluster over the member subset, each
// member replaying its WAL from root/site-NNN. The deployed plan is
// reconstructed from the recovered holdings and primary records — a
// universe primary site may be absent as long as every object still has
// a member holder and a member primary (i.e. it was drained by an
// earlier plan before leaving); if a journal is attached afterwards,
// ResumeMigration finishes any migration the previous incarnation had
// journaled but not completed.
func StartDurableView(p *core.Problem, root string, opts store.Options, members []int) (*Cluster, error) {
	if root == "" {
		return nil, errors.New("netnode: StartDurableView needs a data directory")
	}
	ms, err := checkMembers(p, members)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		p:         p,
		nodes:     make([]*Node, p.Sites()),
		members:   ms,
		retry:     RetryPolicy{Attempts: 1},
		rng:       xrand.New(0x10ad),
		dataDir:   root,
		storeOpts: opts,
	}
	for _, i := range ms {
		st, err := store.Open(SiteDir(root, i), i, primaries(p), opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		node, err := ListenStore(p, i, "127.0.0.1:0", st)
		if err != nil {
			_ = st.Close()
			c.Close()
			return nil, err
		}
		c.nodes[i] = node
	}
	c.rewirePeers()
	c.plan = c.actualPlan()
	for k := 0; k < p.Objects(); k++ {
		if len(c.plan.Placement[k]) == 0 {
			c.Close()
			return nil, fmt.Errorf("netnode: no member holds object %d; its primary site %d must be in the member set or the object migrated before it left", k, p.Primary(k))
		}
		if !c.isMember(c.plan.Primaries[k]) {
			c.Close()
			return nil, fmt.Errorf("netnode: recovered primary of object %d is site %d, which is not a member", k, c.plan.Primaries[k])
		}
	}
	c.current = schemeOfPlan(p, c.plan)
	return c, nil
}

// checkMembers validates and normalises an initial member set.
func checkMembers(p *core.Problem, members []int) ([]int, error) {
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	if len(ms) == 0 {
		return nil, errors.New("netnode: need at least one member")
	}
	for i, m := range ms {
		if m < 0 || m >= p.Sites() {
			return nil, fmt.Errorf("netnode: member %d outside universe of %d sites", m, p.Sites())
		}
		if i > 0 && ms[i-1] == m {
			return nil, fmt.Errorf("netnode: duplicate member %d", m)
		}
	}
	return ms, nil
}

// checkPrimariesCovered requires every universe primary site to be a
// member — the condition for a fresh (empty-store) boot, where each
// object's only replica bootstraps at its universe primary.
func checkPrimariesCovered(p *core.Problem, members []int) error {
	in := make(map[int]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	for k := 0; k < p.Objects(); k++ {
		if !in[p.Primary(k)] {
			return fmt.Errorf("netnode: members must cover every primary site; object %d is primaried at absent site %d", k, p.Primary(k))
		}
	}
	return nil
}

// rewirePeers rebuilds the universe-indexed address table and pushes it
// to every live node. Absent sites keep an empty address, which dials
// fail on — exactly like a dead site.
func (c *Cluster) rewirePeers() {
	addrs := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		if n != nil {
			addrs[i] = n.Addr()
		}
	}
	for _, n := range c.nodes {
		if n != nil {
			n.SetPeers(addrs)
		}
	}
}

// Members returns the current member sites, ascending.
func (c *Cluster) Members() []int {
	return append([]int(nil), c.members...)
}

// Plan returns the currently deployed placement plan.
func (c *Cluster) Plan() *plan.Plan {
	if c.plan == nil {
		return nil
	}
	return c.plan.Clone()
}

// AttachJournal wires the coordinator journal in: every ApplyPlan records
// its target plan before executing a single step, and ResumeMigration
// finishes the remainder after a restart.
func (c *Cluster) AttachJournal(j *store.Journal) { c.journal = j }

// SetStepHook installs fn to run immediately before every migration step
// ApplyPlan or ResumeMigration executes. The chaos tests use it to kill
// nodes at exact points of a migration.
func (c *Cluster) SetStepHook(fn func(plan.Step)) { c.stepHook = fn }

// Join adds a site to the cluster: boot its node (replaying its WAL in
// durable mode), rewire the address tables, and resynchronise its routing
// state with the deployed plan — the current primary of every object, a
// drop of any replica the plan no longer places at it (a rejoining former
// primary), and the nearest/replicas tables under the given cost
// function. The placement itself does not change: the control plane
// migrates replicas onto the joiner with a subsequent plan.
func (c *Cluster) Join(site int, cost plan.CostFn) (*Node, error) {
	if site < 0 || site >= c.p.Sites() {
		return nil, fmt.Errorf("netnode: site %d outside universe", site)
	}
	if c.isMember(site) {
		return nil, fmt.Errorf("netnode: site %d is already a member", site)
	}
	var st *store.Store
	var err error
	if c.dataDir != "" {
		st, err = store.Open(SiteDir(c.dataDir, site), site, primaries(c.p), c.storeOpts)
	} else {
		st = store.Memory(site, primaries(c.p))
	}
	if err != nil {
		return nil, err
	}
	node, err := ListenStore(c.p, site, "127.0.0.1:0", st)
	if err != nil {
		_ = st.Close()
		return nil, err
	}
	node.SetRetry(c.retry)
	node.SetRequestTimeout(c.reqTimeout)
	if c.metricsReg != nil {
		node.SetMetrics(c.metricsReg)
	}
	if c.tracer != nil {
		node.SetTracer(c.tracer)
	}
	c.nodes[site] = node
	c.members = append(c.members, site)
	sort.Ints(c.members)
	c.rewirePeers()
	if err := c.syncJoined(site, cost); err != nil {
		return node, fmt.Errorf("netnode: join sync for site %d: %w", site, err)
	}
	return node, nil
}

// syncJoined pushes the deployed plan's routing state to a joined site.
func (c *Cluster) syncJoined(site int, cost plan.CostFn) (err error) {
	node := c.nodes[site]
	root := c.tracer.Root("join.sync")
	root.SetPeer(site)
	defer func() {
		root.SetErr(err)
		root.Finish()
	}()
	for k := 0; k < c.p.Objects(); k++ {
		sp := c.plan.Primaries[k]
		if node.st.PrimaryOf(k) != sp {
			if err := c.command(site, message{Op: "primary", Object: k, Site: sp}, root); err != nil {
				return err
			}
		}
		if node.Holds(k) && !c.plan.Has(site, k) {
			// A rejoining site that was drained while away (memory mode
			// re-bootstraps its universe primaries; a crashed WAL can hold
			// pre-drain state).
			if err := c.command(site, message{Op: "drop", Object: k}, root); err != nil {
				return err
			}
		}
		if err := c.command(site, message{Op: "nearest", Object: k, Site: nearestOf(c.plan, site, k, cost)}, root); err != nil {
			return err
		}
		if err := c.command(site, message{Op: "replicas", Object: k, Sites: c.plan.Placement[k]}, root); err != nil {
			return err
		}
	}
	return nil
}

// Leave removes a drained site: the deployed plan must place nothing on
// it and route no primary to it. The node shuts down cleanly (flushing
// its log, which in durable mode preserves its directory for a later
// rejoin) and its slot goes nil.
func (c *Cluster) Leave(site int) error {
	if !c.isMember(site) {
		return fmt.Errorf("netnode: site %d is not a member", site)
	}
	if len(c.members) == 1 {
		return errors.New("netnode: cannot remove the last member")
	}
	for k := 0; k < c.p.Objects(); k++ {
		if c.plan.Primaries[k] == site {
			return fmt.Errorf("%w: site %d is still the primary of object %d", ErrNotDrained, site, k)
		}
		if c.plan.Has(site, k) {
			return fmt.Errorf("%w: site %d still holds object %d", ErrNotDrained, site, k)
		}
	}
	err := c.nodes[site].Close()
	c.nodes[site] = nil
	keep := c.members[:0]
	for _, m := range c.members {
		if m != site {
			keep = append(keep, m)
		}
	}
	c.members = keep
	c.rewirePeers()
	return err
}

func (c *Cluster) isMember(site int) bool {
	i := sort.SearchInts(c.members, site)
	return i < len(c.members) && c.members[i] == site
}

// ApplyPlan migrates the data plane from the deployed plan to next: the
// target is journaled first (when a journal is attached), then the
// ordered diff executes — copies along min-cost paths, primary
// promotions broadcast to every member, a routing refresh (registries,
// nearest tables, failover rankings), and finally the drops. Reads keep
// serving throughout: a site never loses a replica another site's
// routing still points at. Returns the migration accounting; on error
// the report covers the completed prefix and ResumeMigration (after the
// fault clears) finishes the remainder.
func (c *Cluster) ApplyPlan(next *plan.Plan, cost plan.CostFn) (*ApplyReport, error) {
	if err := next.Validate(c.p); err != nil {
		return nil, err
	}
	for _, m := range next.View.Members {
		if !c.isMember(m) {
			return nil, fmt.Errorf("netnode: plan epoch %d places on site %d which has not joined", next.Epoch, m)
		}
	}
	steps, err := plan.Diff(c.plan, next, c.p, cost)
	if err != nil {
		return nil, err
	}
	if c.journal != nil {
		data, err := next.Marshal()
		if err != nil {
			return nil, err
		}
		if err := c.journal.RecordPlan(next.Epoch, data); err != nil {
			return nil, fmt.Errorf("netnode: journal plan: %w", err)
		}
	}
	rep := &ApplyReport{Steps: len(steps)}
	root := c.tracer.Root("plan.apply")
	root.SetAttr("epoch", strconv.Itoa(next.Epoch))
	if err := c.runSteps(steps, c.plan, next, cost, rep, root); err != nil {
		root.SetErr(err)
		root.Finish()
		return rep, err
	}
	root.Finish()
	c.plan = next.Clone()
	c.current = schemeOfPlan(c.p, c.plan)
	return rep, nil
}

// runSteps executes an ordered step list. The list arrives phase-ordered
// (copies, promotes, drops); the routing refresh for every touched object
// runs after the promotes so no drop happens while a nearest record still
// points at the dropping site.
func (c *Cluster) runSteps(steps []plan.Step, old, next *plan.Plan, cost plan.CostFn, rep *ApplyReport, parent *spans.Span) error {
	touched := make(map[int]bool)
	for _, s := range steps {
		touched[s.Object] = true
	}
	refreshed := false
	for _, s := range steps {
		if s.Kind == plan.Drop && !refreshed {
			if err := c.refreshRouting(touched, next, cost, parent); err != nil {
				return err
			}
			refreshed = true
		}
		if c.stepHook != nil {
			c.stepHook(s)
		}
		ss := parent.Child("plan.step")
		ss.SetAttr("kind", stepKind(s.Kind))
		ss.SetPeer(s.Site)
		ss.SetObject(s.Object)
		if err := c.runStep(s, old, ss); err != nil {
			ss.SetErr(err)
			ss.Finish()
			return err
		}
		rep.Completed++
		if s.Kind == plan.Copy {
			rep.MigrationNTC += s.Cost
			// A copy's transfer cost is known a priori (the min-cost source
			// the diff chose); attribute it to the step span.
			ss.SetNTC(s.Cost)
		}
		ss.Finish()
	}
	if !refreshed {
		if err := c.refreshRouting(touched, next, cost, parent); err != nil {
			return err
		}
	}
	return nil
}

// stepKind names a migration step kind for span attributes.
func stepKind(k plan.StepKind) string {
	switch k {
	case plan.Copy:
		return "copy"
	case plan.Promote:
		return "promote"
	case plan.Drop:
		return "drop"
	}
	return "unknown"
}

func (c *Cluster) runStep(s plan.Step, old *plan.Plan, parent *spans.Span) error {
	switch s.Kind {
	case plan.Copy:
		// The new replica adopts the current primary's version: a copy is
		// a fetch of the latest acknowledged write.
		sp := old.Primaries[s.Object]
		var version int64
		if node := c.nodes[sp]; node != nil {
			version = node.Version(s.Object)
		}
		return c.command(s.Site, message{Op: "place", Object: s.Object, Version: version}, parent)
	case plan.Promote:
		// Every member learns the new primary, so writes route correctly
		// no matter where they originate.
		for _, m := range c.members {
			if err := c.command(m, message{Op: "primary", Object: s.Object, Site: s.Site}, parent); err != nil {
				return err
			}
		}
		return nil
	case plan.Drop:
		return c.command(s.Site, message{Op: "drop", Object: s.Object}, parent)
	default:
		return fmt.Errorf("netnode: unknown step kind %v", s.Kind)
	}
}

// refreshRouting pushes the next plan's routing state for the touched
// objects: the registry to each object's primary, and the nearest record
// plus failover ranking to every member.
func (c *Cluster) refreshRouting(touched map[int]bool, next *plan.Plan, cost plan.CostFn, parent *spans.Span) error {
	rs := parent.Child("plan.refresh")
	defer rs.Finish()
	objs := make([]int, 0, len(touched))
	for k := range touched {
		objs = append(objs, k)
	}
	sort.Ints(objs)
	for _, k := range objs {
		repl := next.Placement[k]
		if err := c.command(next.Primaries[k], message{Op: "registry", Object: k, Sites: repl}, rs); err != nil {
			rs.SetErr(err)
			return err
		}
		for _, m := range c.members {
			if err := c.command(m, message{Op: "nearest", Object: k, Site: nearestOf(next, m, k, cost)}, rs); err != nil {
				rs.SetErr(err)
				return err
			}
			if err := c.command(m, message{Op: "replicas", Object: k, Sites: repl}, rs); err != nil {
				rs.SetErr(err)
				return err
			}
		}
	}
	return nil
}

// nearestOf returns the plan's nearest replica of object k from site i
// (itself, when it holds one), ties broken by lowest site index.
func nearestOf(pl *plan.Plan, i, k int, cost plan.CostFn) int {
	if pl.Has(i, k) {
		return i
	}
	best, bestCost := -1, int64(0)
	for _, j := range pl.Placement[k] {
		d := cost(i, j)
		if d < 0 {
			continue
		}
		if best < 0 || d < bestCost {
			best, bestCost = j, d
		}
	}
	if best < 0 {
		// No member-reachable replica (disconnected cost function); fall
		// back to the first holder so the record stays in range.
		return pl.Placement[k][0]
	}
	return best
}

// actualPlan reconstructs the placement the data plane actually holds:
// replica sets from the members' (possibly just replayed) holdings and
// primaries from their routing records. Where members disagree on a
// primary — a crash landed mid-promotion — the dissenting value is kept,
// which forces the resume diff to re-broadcast the promotion (the
// "primary" op is idempotent).
func (c *Cluster) actualPlan() *plan.Plan {
	pl := &plan.Plan{
		View:      membership.View{Members: append([]int(nil), c.members...)},
		Primaries: make([]int, c.p.Objects()),
		Placement: make([][]int, c.p.Objects()),
	}
	for k := 0; k < c.p.Objects(); k++ {
		var sites []int
		for _, m := range c.members {
			if c.nodes[m] != nil && c.nodes[m].Holds(k) {
				sites = append(sites, m)
			}
		}
		pl.Placement[k] = sites
		sp := -1
		for _, m := range c.members {
			if c.nodes[m] == nil {
				continue
			}
			v := c.nodes[m].st.PrimaryOf(k)
			if sp < 0 {
				sp = v
			} else if v != sp {
				// Disagreement: prefer a value that differs from any one
				// member's, so the promote re-runs. Keeping the smaller site
				// is deterministic.
				if v < sp {
					sp = v
				}
			}
		}
		if sp < 0 {
			sp = c.p.Primary(k)
		}
		pl.Primaries[k] = sp
	}
	return pl
}

// ResumeMigration finishes a migration interrupted by a crash: the
// journaled target plan is diffed against what the members actually hold
// and the remainder executes. Returns (report, resumed): resumed is false
// when no journal is attached, the journal holds no plan, or the target
// is already fully realised. The completed prefix of the original run is
// never re-executed or re-accounted — the diff starts from the actual
// holdings.
func (c *Cluster) ResumeMigration(cost plan.CostFn) (*ApplyReport, bool, error) {
	if c.journal == nil {
		return nil, false, nil
	}
	_, data, ok := c.journal.LatestPlan()
	if !ok {
		return nil, false, nil
	}
	target, err := plan.Unmarshal(data)
	if err != nil {
		return nil, false, fmt.Errorf("netnode: journaled plan: %w", err)
	}
	if err := target.Validate(c.p); err != nil {
		return nil, false, fmt.Errorf("netnode: journaled plan: %w", err)
	}
	for _, m := range target.View.Members {
		if !c.isMember(m) {
			return nil, false, fmt.Errorf("netnode: journaled plan places on site %d which has not joined", m)
		}
	}
	actual := c.actualPlan()
	steps, err := plan.Diff(actual, target, c.p, cost)
	if err != nil {
		return nil, false, err
	}
	rep := &ApplyReport{Steps: len(steps)}
	root := c.tracer.Root("plan.resume")
	root.SetAttr("epoch", strconv.Itoa(target.Epoch))
	defer root.Finish()
	if len(steps) == 0 {
		// Nothing left to move; still adopt the target as the deployed
		// plan (epoch, view) and make sure the routing state matches it.
		all := make(map[int]bool)
		for k := 0; k < c.p.Objects(); k++ {
			all[k] = true
		}
		if err := c.refreshRouting(all, target, cost, root); err != nil {
			root.SetErr(err)
			return rep, true, err
		}
		c.plan = target
		c.current = schemeOfPlan(c.p, c.plan)
		return rep, true, nil
	}
	if err := c.runSteps(steps, actual, target, cost, rep, root); err != nil {
		root.SetErr(err)
		return rep, true, err
	}
	// The interrupted run may have fully migrated objects that the
	// remainder diff no longer touches, leaving their routing records at
	// the pre-migration state — refresh everything, not just the
	// remainder's objects.
	all := make(map[int]bool)
	for k := 0; k < c.p.Objects(); k++ {
		all[k] = true
	}
	if err := c.refreshRouting(all, target, cost, root); err != nil {
		root.SetErr(err)
		return rep, true, err
	}
	c.plan = target
	c.current = schemeOfPlan(c.p, c.plan)
	return rep, true, nil
}

// schemeOfPlan rebuilds the legacy scheme representation of a plan, used
// by the scheme-diff Deploy path and Scheme accessor. A plan that moved a
// primary off its universe site (or drained that site) cannot be a
// core.Scheme — those invariants are exactly what the plan type relaxes —
// so the result is nil and the scheme-based API reports unavailability.
func schemeOfPlan(p *core.Problem, pl *plan.Plan) *core.Scheme {
	s := core.NewScheme(p)
	for k := 0; k < p.Objects(); k++ {
		if pl.Primaries[k] != p.Primary(k) || !pl.Has(p.Primary(k), k) {
			return nil
		}
		for _, site := range pl.Placement[k] {
			if site == p.Primary(k) {
				continue
			}
			if err := s.Add(site, k); err != nil {
				return nil
			}
		}
	}
	return s
}
