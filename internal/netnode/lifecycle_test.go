package netnode

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"drp/internal/xrand"
)

// Regression: Close used to panic on the second call (unguarded
// close(n.closed)). It must be idempotent, including concurrently and
// when mixed with Kill.
func TestCloseIdempotent(t *testing.T) {
	p := gen(t, 2, 2, 0.05, 0.5, 21)
	n, err := Listen(p, 0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second Close errored: %v", err)
	}

	n2, err := Listen(p, 0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = n2.Close()
		}()
	}
	wg.Wait()

	n3, err := Listen(p, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := n3.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := n3.Close(); err != nil {
		t.Fatalf("Close after Kill errored: %v", err)
	}
}

// Property test for the backoff schedule over attempt ∈ [0, 64]: never
// negative, never past the cap, monotone non-decreasing without jitter,
// and positive whenever Base is. Attempt 62+ with Cap 0 used to overflow
// the doubling into a negative sleep.
func TestBackoffProperties(t *testing.T) {
	policies := []RetryPolicy{
		{Base: time.Millisecond},                              // uncapped: the overflow case
		{Base: time.Millisecond, Cap: 50 * time.Millisecond},  // capped
		{Base: time.Second, Cap: 0},                           // large base, uncapped
		{Base: 3 * time.Nanosecond, Cap: 7 * time.Nanosecond}, // tiny, cap not a power of two
		{Base: 0, Cap: time.Second},                           // zero base: always 0
	}
	for pi, rp := range policies {
		prev := time.Duration(-1)
		for attempt := 0; attempt <= 64; attempt++ {
			d := rp.backoff(attempt, nil)
			if d < 0 {
				t.Fatalf("policy %d attempt %d: negative backoff %v", pi, attempt, d)
			}
			if rp.Cap > 0 && d > rp.Cap {
				t.Fatalf("policy %d attempt %d: backoff %v exceeds cap %v", pi, attempt, d, rp.Cap)
			}
			if rp.Base > 0 && d == 0 {
				t.Fatalf("policy %d attempt %d: zero backoff with positive base", pi, attempt)
			}
			if d < prev {
				t.Fatalf("policy %d attempt %d: backoff %v < previous %v (not monotone)", pi, attempt, d, prev)
			}
			prev = d
		}
	}
	// Jitter stays within [d·(1-j), d]: never negative, never above the
	// unjittered schedule.
	rng := xrand.New(99)
	rp := RetryPolicy{Base: time.Millisecond, Jitter: 0.5}
	for attempt := 0; attempt <= 64; attempt++ {
		full := rp.backoff(attempt, nil)
		got := rp.backoff(attempt, rng)
		if got < 0 || got > full {
			t.Fatalf("attempt %d: jittered backoff %v outside [0, %v]", attempt, got, full)
		}
		if full > 0 && got < full/2 {
			t.Fatalf("attempt %d: jittered backoff %v below half of %v", attempt, got, full)
		}
	}
}

// Regression: error replies used to be written without a deadline, so a
// client that sent garbage and never read could pin the handler (and
// Close) forever. sendReply must give up once the timeout passes.
func TestSendReplyHonoursDeadline(t *testing.T) {
	p := gen(t, 2, 2, 0.05, 0.5, 22)
	n, err := Listen(p, 0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetRequestTimeout(50 * time.Millisecond)

	// net.Pipe is fully synchronous: a write blocks until the far end
	// reads, which nothing ever does here. Only the deadline can free it.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		done <- n.sendReply(server, json.NewEncoder(server), reply{Code: CodeBadJSON, Err: "x"})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("reply write to a stalled client succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reply write to a stalled client never timed out")
	}
}

// Oversized and malformed frames get a typed error reply (under the same
// deadline as normal replies) and the connection closes.
func TestServeRejectsBadFrames(t *testing.T) {
	p := gen(t, 2, 2, 0.05, 0.5, 23)
	n, err := Listen(p, 0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetRequestTimeout(time.Second)

	// The oversized payload is sized to a multiple of the server's 4096-byte
	// read buffer so every sent byte is consumed before the reply: unread
	// bytes at close would RST the connection and could discard the reply.
	tests := []struct {
		name, payload, code string
	}{
		{"oversized", strings.Repeat("x", maxLineBytes+4096), CodeOversized},
		{"malformed", "{not json}\n", CodeBadJSON},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", n.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			if _, err := conn.Write([]byte(tc.payload)); err != nil {
				t.Fatal(err)
			}
			var resp reply
			if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
				t.Fatalf("no error reply: %v", err)
			}
			if resp.OK || resp.Code != tc.code {
				t.Fatalf("reply %+v, want code %q", resp, tc.code)
			}
			// The stream is no longer trusted: the server must close it.
			if _, err := bufio.NewReader(conn).ReadByte(); err == nil {
				t.Fatal("connection stayed open after a framing violation")
			}
		})
	}
}
