package fault

import (
	"drp/internal/netnode"
)

// Attach wires an injector into a running netnode cluster: every node's
// outbound dials and the coordinator's commands go through the injector,
// and the traffic driver advances the injector's logical clock once per
// request. The cluster's addresses are registered so link-level faults
// can attribute both endpoints.
//
// Attach only installs middleware — retry policy and per-request timeouts
// stay the cluster's to configure (netnode.Cluster.SetRetry /
// SetRequestTimeout).
func Attach(c *netnode.Cluster, in *Injector) {
	for i := 0; i < c.Sites(); i++ {
		if node := c.Node(i); node != nil {
			in.Register(i, node.Addr())
		}
	}
	for i := 0; i < c.Sites(); i++ {
		if node := c.Node(i); node != nil {
			node.SetDialer(in.DialerFor(i))
		}
	}
	c.SetCommandDialer(in.DialerFor(Coordinator))
	c.SetRequestHook(in.Advance)
}
