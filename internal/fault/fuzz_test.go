package fault

// FuzzFaultPlan feeds arbitrary bytes through the plan codec and then
// through a real 3-site TCP cluster. Two properties:
//
//  1. Codec round trip: any plan that parses re-encodes to an equal plan.
//  2. Liveness: no normalized plan may deadlock the cluster — traffic plus
//     flush and reconcile always return (possibly with degraded outcomes)
//     within a watchdog budget. Crashes, blackholes, drops and latency can
//     make requests fail; they must never make the serving loop hang.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"drp/internal/netnode"
	"drp/internal/sra"
	"drp/internal/workload"
)

func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte(`{"seed":1,"events":[]}`))
	f.Add([]byte(`{"seed":7,"events":[{"kind":"crash","site":1,"step":1,"until":9}]}`))
	f.Add([]byte(`{"seed":9,"events":[{"kind":"crash","site":0,"step":2},{"kind":"restart","site":0,"step":5}]}`))
	f.Add([]byte(`{"seed":3,"events":[{"kind":"blackhole","site":0,"peer":2,"step":1,"until":6},{"kind":"latency","site":1,"step":1,"until":4,"delay_ms":1}]}`))
	f.Add([]byte(`{"seed":11,"events":[{"kind":"drop","site":2,"peer":-1,"step":1,"prob":0.5}]}`))
	f.Add([]byte(`{"seed":13,"events":[{"kind":"linklat","site":0,"peer":2,"delay_ms":2},{"kind":"linklat","site":1,"peer":2,"step":3,"until":8,"delay_ms":1}]}`))
	f.Add([]byte(`{"seed":2,"events":[{"kind":"crash","site":1,"step":1,"until":2},{"kind":"crash","site":2,"step":2,"until":3},{"kind":"blackhole","site":-1,"peer":0,"step":3,"until":4}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := ParsePlan(data)
		if err != nil {
			return // not a plan; nothing to check
		}

		// Property 1: Encode∘Parse is the identity on parsed plans.
		var buf bytes.Buffer
		if err := plan.Encode(&buf); err != nil {
			t.Fatalf("parsed plan failed to encode: %v", err)
		}
		again, err := ParsePlan(buf.Bytes())
		if err != nil {
			t.Fatalf("encoded plan failed to re-parse: %v", err)
		}
		if !plansEquivalent(plan, again) {
			t.Fatalf("codec round trip mutated the plan:\nin  %+v\nout %+v", plan, again)
		}

		// Property 2: the normalized plan cannot deadlock a 3-site cluster.
		norm := plan.Normalize(3, 2*time.Millisecond)
		if err := norm.Validate(3); err != nil {
			t.Fatalf("Normalize left an invalid plan: %v", err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			driveNormalizedPlan(t, norm)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			var buf bytes.Buffer
			_ = norm.Encode(&buf)
			panic("fault plan deadlocked a 3-site cluster:\n" + buf.String())
		}
	})
}

// driveNormalizedPlan boots a real 3-site cluster under the plan and runs
// a full serve + recover cycle; every call must return.
func driveNormalizedPlan(t *testing.T, plan Plan) {
	p, err := workload.Generate(workload.NewSpec(3, 4, 0.3, 0.8), 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := netnode.StartLocal(p)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Deploy(sra.Run(p, sra.Options{}).Scheme); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	Attach(c, in)
	c.SetRetry(netnode.RetryPolicy{Attempts: 2, Base: 100 * time.Microsecond, Cap: 500 * time.Microsecond, Jitter: 0.5})
	c.SetRequestTimeout(time.Second)
	if _, err := c.DriveTrafficReport(); err != nil {
		t.Fatalf("traffic aborted (must degrade, not fail): %v", err)
	}
	in.AdvanceTo(plan.MaxStep())
	if _, err := c.FlushPending(); err != nil {
		t.Fatalf("flush hit a protocol error: %v", err)
	}
	// Open-ended events outlive MaxStep, so a permanently-down primary can
	// legitimately fail reconciliation with a transport error; the property
	// is that the call returns, not that it succeeds.
	_, _, _ = c.Reconcile()
}

// plansEquivalent compares plans up to JSON-invisible differences (a nil
// event slice parses back as nil).
func plansEquivalent(a, b Plan) bool {
	if a.Seed != b.Seed {
		return false
	}
	if len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if !reflect.DeepEqual(a.Events[i], b.Events[i]) {
			return false
		}
	}
	return true
}
