package fault

import (
	"fmt"
	"net"
	"sync"
	"time"

	"drp/internal/xrand"
)

// Injector realises a Plan as dialer middleware. One injector is shared
// by every node of a cluster (and the coordinator); each participant gets
// its own dialer from DialerFor so link-level faults know both endpoints.
//
// The injector holds a logical step clock, advanced by the traffic driver
// once per request (Advance). All fault decisions are pure functions of
// (plan, step) except probabilistic drops, which consume the plan-seeded
// RNG in dial order — deterministic under the serial traffic the chaos
// tests drive.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	step     int64
	rng      *xrand.Source
	addrSite map[string]int

	// DialTimeout bounds the underlying real dial (default 2s).
	DialTimeout time.Duration

	// Fault outcome counters, for assertions and CLI summaries.
	dials, refused, severed, dropped, delayed int64
}

// NewInjector builds an injector for the plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{
		plan:        plan,
		rng:         xrand.New(plan.Seed),
		addrSite:    make(map[string]int),
		DialTimeout: 2 * time.Second,
	}
}

// Plan returns the injector's fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Register maps a peer address to its site index so dials can be
// attributed to links.
func (in *Injector) Register(site int, addr string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.addrSite[addr] = site
}

// Advance moves the logical clock one step and returns the new step.
func (in *Injector) Advance() {
	in.mu.Lock()
	in.step++
	in.mu.Unlock()
}

// AdvanceTo fast-forwards the clock to at least step (used to move past
// the last fault window before recovery runs).
func (in *Injector) AdvanceTo(step int64) {
	in.mu.Lock()
	if step > in.step {
		in.step = step
	}
	in.mu.Unlock()
}

// Step returns the current logical step.
func (in *Injector) Step() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step
}

// Stats reports the injector's fault outcome counts: total dials seen,
// dials refused because an endpoint was crashed, severed by a blackhole,
// dropped probabilistically, and delayed by latency spikes.
func (in *Injector) Stats() (dials, refused, severed, dropped, delayed int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dials, in.refused, in.severed, in.dropped, in.delayed
}

// faultError is the transport error the injector synthesises; it mimics a
// net.OpError so retry classification treats it like a real dial failure.
type faultError struct {
	msg string
}

func (e *faultError) Error() string   { return e.msg }
func (e *faultError) Timeout() bool   { return false }
func (e *faultError) Temporary() bool { return true }

// DialerFor returns the dialer for one participant: a site index, or
// Coordinator for the cluster coordinator. The returned function is safe
// for concurrent use.
func (in *Injector) DialerFor(client int) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		in.mu.Lock()
		step := in.step
		target, known := in.addrSite[addr]
		in.dials++
		var verdict error
		var delay time.Duration
		if !known {
			target = Coordinator // unknown address: only client-side faults apply
		}
		switch {
		case client >= 0 && in.plan.Crashed(client, step):
			in.refused++
			verdict = &faultError{fmt.Sprintf("fault: site %d is down (step %d)", client, step)}
		case known && in.plan.Crashed(target, step):
			in.refused++
			verdict = &faultError{fmt.Sprintf("fault: dial %s: site %d is down (step %d)", addr, target, step)}
		case in.plan.Blackholed(client, target, step):
			in.severed++
			verdict = &faultError{fmt.Sprintf("fault: link %d↔%d blackholed (step %d)", client, target, step)}
		default:
			if p := in.plan.DropProb(client, target, step); p > 0 && in.rng.Float64() < p {
				in.dropped++
				verdict = &faultError{fmt.Sprintf("fault: message %d→%d dropped (step %d)", client, target, step)}
			} else {
				delay = in.plan.LatencyAt(client, target, step)
				if delay > 0 {
					in.delayed++
				}
			}
		}
		timeout := in.DialTimeout
		in.mu.Unlock()

		if verdict != nil {
			return nil, verdict
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
}
