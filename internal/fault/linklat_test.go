package fault

import (
	"strings"
	"testing"
	"time"
)

func TestMatrixPlanBuildsLinkLatency(t *testing.T) {
	p, err := MatrixPlan([][]int64{
		{0, 5, 40},
		{5, 0, 0},
		{40, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(3); err != nil {
		t.Fatalf("matrix plan failed validation: %v", err)
	}
	if len(p.Events) != 2 {
		t.Fatalf("%d events, want 2 (zero-delay links emit nothing)", len(p.Events))
	}
	// The injected delay is symmetric and open-ended.
	for step := int64(0); step < 100; step += 33 {
		if d := p.LatencyAt(0, 1, step); d != 5*time.Millisecond {
			t.Fatalf("link 0↔1 at step %d: %v, want 5ms", step, d)
		}
		if d := p.LatencyAt(2, 0, step); d != 40*time.Millisecond {
			t.Fatalf("link 2↔0 at step %d: %v, want 40ms", step, d)
		}
		if d := p.LatencyAt(1, 2, step); d != 0 {
			t.Fatalf("link 1↔2 at step %d: %v, want 0", step, d)
		}
	}
}

func TestMatrixPlanRejectsBadMatrices(t *testing.T) {
	cases := []struct {
		name   string
		matrix [][]int64
		want   string
	}{
		{"ragged", [][]int64{{0, 1}, {1}}, "row 1"},
		{"negative", [][]int64{{0, -3}, {-3, 0}}, "negative latency"},
		{"asymmetric", [][]int64{{0, 1}, {2, 0}}, "asymmetric"},
		{"diagonal", [][]int64{{7}}, "diagonal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MatrixPlan(tc.matrix)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestLinkLatencyComposesWithSiteLatency(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: KindLinkLatency, Site: 0, Peer: 1, DelayMS: 10},
		{Kind: KindLatency, Site: 0, Step: 5, Until: 10, DelayMS: 3},
	}}
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
	if d := p.LatencyAt(0, 1, 0); d != 10*time.Millisecond {
		t.Fatalf("before the spike: %v, want 10ms", d)
	}
	if d := p.LatencyAt(0, 1, 7); d != 13*time.Millisecond {
		t.Fatalf("during the spike: %v, want 13ms (link + site)", d)
	}
	// The site-scoped spike alone covers dials not on the 0↔1 link.
	if d := p.LatencyAt(0, Coordinator, 7); d != 3*time.Millisecond {
		t.Fatalf("coordinator dial during spike: %v, want 3ms", d)
	}
}

func TestLinkLatencyValidateRejectsSelfLink(t *testing.T) {
	p := Plan{Events: []Event{{Kind: KindLinkLatency, Site: 1, Peer: 1, DelayMS: 2}}}
	if err := p.Validate(3); err == nil {
		t.Fatal("self-link latency event passed validation")
	}
}

func TestNormalizeKeepsLinkLatencyValid(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: KindLinkLatency, Site: 9, Peer: 9, DelayMS: -4, Step: -2},
		{Kind: KindLinkLatency, Site: -7, Peer: 2, DelayMS: 500},
	}}
	norm := p.Normalize(3, 5*time.Millisecond)
	if err := norm.Validate(3); err != nil {
		t.Fatalf("Normalize left an invalid plan: %v", err)
	}
	for _, e := range norm.Events {
		if e.DelayMS > 5 {
			t.Fatalf("delay %dms exceeds the 5ms cap", e.DelayMS)
		}
	}
}
