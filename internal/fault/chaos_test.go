package fault

// The deterministic chaos suite: seeded fault plans whose surviving-replica
// transfer cost is computable a priori, so the assertions are exact — the
// NTC accounted by the TCP cluster under failures must equal the model's
// prediction to the unit, queued writes must flush for exactly the modelled
// cost, reconciliation must re-ship exactly the modelled copies, and every
// replica must reconverge to the primary's version after restart.
//
// On failure the offending plan is written to testdata/repro/<test>.json so
// CI can upload a reproducer.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drp/internal/core"
	"drp/internal/netnode"
	"drp/internal/sra"
	"drp/internal/workload"
)

func genProblem(t testing.TB, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// chaosCluster boots a TCP cluster, deploys the SRA scheme, attaches the
// injector and configures fast retries suited to a test run.
func chaosCluster(t *testing.T, p *core.Problem, scheme *core.Scheme, plan Plan) (*netnode.Cluster, *Injector) {
	t.Helper()
	if err := plan.Validate(p.Sites()); err != nil {
		t.Fatal(err)
	}
	c, err := netnode.StartLocal(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	Attach(c, in)
	c.SetRetry(netnode.RetryPolicy{Attempts: 3, Base: 200 * time.Microsecond, Cap: time.Millisecond, Jitter: 0.5})
	c.SetRequestTimeout(2 * time.Second)
	dumpOnFailure(t, plan)
	return c, in
}

// dumpOnFailure writes the plan to testdata/repro/<test>.json when the
// test fails, so the chaos-smoke CI job can upload a reproducer.
func dumpOnFailure(t *testing.T, plan Plan) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := filepath.Join("testdata", "repro")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("reproducer dir: %v", err)
			return
		}
		name := strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()) + ".json"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Logf("reproducer: %v", err)
			return
		}
		defer f.Close()
		if err := plan.Encode(f); err != nil {
			t.Logf("reproducer encode: %v", err)
		}
		t.Logf("fault plan reproducer written to %s", f.Name())
	})
}

// prediction is the a-priori outcome of one measurement period plus
// recovery (flush + reconcile) under a plan with only deterministic
// reachability faults (crash / restart / blackhole — no drops).
type prediction struct {
	ntc           int64
	reads, writes int64
	failedReads   int64
	queuedWrites  int64
	flushNTC      int64
	reconcileNTC  int64
	versions      []int64
}

// predict replays DriveTrafficReport's exact request order (sites outer,
// objects inner, reads then writes; the step clock ticks once per
// request) against the plan's pure reachability relation, then models the
// flush and reconcile passes with every site live again.
func predict(p *core.Problem, s *core.Scheme, plan Plan) *prediction {
	pr := &prediction{versions: make([]int64, p.Objects())}
	stale := make(map[int]map[int]bool)
	queued := make(map[int]map[int]int64) // site → object → count
	mark := func(k, j int) {
		if stale[k] == nil {
			stale[k] = make(map[int]bool)
		}
		stale[k][j] = true
	}
	clear := func(k, j int) {
		if stale[k] != nil {
			delete(stale[k], j)
		}
	}
	// One successful write by site i: ship (unless local primary), then
	// broadcast from the primary to every other replicator, marking the
	// unreachable ones stale. live==true models the recovery passes.
	writeCost := func(i, k int, step int64, live bool) int64 {
		sp := p.Primary(k)
		pr.versions[k]++
		var cost int64
		if i != sp {
			cost += p.Size(k) * p.Cost(i, sp)
		}
		for _, j := range s.Replicators(k) {
			if j == i || j == sp {
				continue
			}
			if live || plan.Reachable(sp, j, step) {
				cost += p.Size(k) * p.Cost(sp, j)
				clear(k, j)
			} else {
				mark(k, j)
			}
		}
		return cost
	}

	step := int64(0)
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			for r := int64(0); r < p.Reads(i, k); r++ {
				step++
				if s.Has(i, k) {
					pr.reads++
					continue
				}
				best := int64(-1)
				for _, j := range s.Replicators(k) {
					if !plan.Reachable(i, j, step) {
						continue
					}
					if d := p.Cost(i, j); best < 0 || d < best {
						best = d
					}
				}
				if best < 0 {
					pr.failedReads++
					continue
				}
				pr.reads++
				pr.ntc += p.Size(k) * best
			}
			for w := int64(0); w < p.Writes(i, k); w++ {
				step++
				sp := p.Primary(k)
				if i != sp && !plan.Reachable(i, sp, step) {
					if queued[i] == nil {
						queued[i] = make(map[int]int64)
					}
					queued[i][k]++
					pr.queuedWrites++
					continue
				}
				pr.writes++
				pr.ntc += writeCost(i, k, step, false)
			}
		}
	}

	// Recovery happens after every fault window has closed: queued writes
	// flush in site order then object order, then every primary re-ships
	// its stale replicas.
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			for n := int64(0); n < queued[i][k]; n++ {
				pr.flushNTC += writeCost(i, k, step, true)
			}
		}
	}
	for k := 0; k < p.Objects(); k++ {
		sp := p.Primary(k)
		for j := 0; j < p.Sites(); j++ {
			if stale[k][j] {
				pr.reconcileNTC += p.Size(k) * p.Cost(sp, j)
			}
		}
	}
	return pr
}

// totalRequests is the plan-step span of one measurement period.
func totalRequests(p *core.Problem) int64 {
	var total int64
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			total += p.Reads(i, k) + p.Writes(i, k)
		}
	}
	return total
}

// runChaos drives one full chaos scenario — traffic under the plan, then
// flush and reconcile with the clock past every fault window — and
// asserts the exact a-priori costs and version reconvergence.
func runChaos(t *testing.T, p *core.Problem, scheme *core.Scheme, plan Plan) *netnode.TrafficReport {
	t.Helper()
	c, in := chaosCluster(t, p, scheme, plan)
	want := predict(p, scheme, plan)

	rep, err := c.DriveTrafficReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NTC != want.ntc {
		t.Errorf("accounted NTC %d, a-priori surviving-replica cost %d", rep.NTC, want.ntc)
	}
	if rep.Reads != want.reads || rep.FailedReads != want.failedReads {
		t.Errorf("reads served/failed %d/%d, want %d/%d", rep.Reads, rep.FailedReads, want.reads, want.failedReads)
	}
	if rep.Writes != want.writes || rep.QueuedWrites != want.queuedWrites {
		t.Errorf("writes served/queued %d/%d, want %d/%d", rep.Writes, rep.QueuedWrites, want.writes, want.queuedWrites)
	}
	if got := int64(c.PendingWrites()); got != want.queuedWrites {
		t.Errorf("pending writes %d, want %d", got, want.queuedWrites)
	}

	// Every fault window has closed by construction once the clock passes
	// the plan's horizon; recovery then runs against a fully live cluster.
	in.AdvanceTo(plan.MaxStep())
	flushNTC, err := c.FlushPending()
	if err != nil {
		t.Fatal(err)
	}
	if flushNTC != want.flushNTC {
		t.Errorf("flush NTC %d, want %d", flushNTC, want.flushNTC)
	}
	if left := c.PendingWrites(); left != 0 {
		t.Errorf("%d writes still queued after flush", left)
	}
	recNTC, remaining, err := c.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if recNTC != want.reconcileNTC {
		t.Errorf("reconcile NTC %d, want %d", recNTC, want.reconcileNTC)
	}
	if remaining != 0 {
		t.Errorf("%d replicas still stale after reconcile", remaining)
	}

	// Version reconvergence: every replica matches its primary, and the
	// primary serialised exactly the modelled number of writes.
	for k := 0; k < p.Objects(); k++ {
		sp := p.Primary(k)
		if got := c.Node(sp).Version(k); got != want.versions[k] {
			t.Errorf("object %d: primary version %d, want %d", k, got, want.versions[k])
		}
		for _, j := range scheme.Replicators(k) {
			if got := c.Node(j).Version(k); got != want.versions[k] {
				t.Errorf("object %d: replica at site %d has version %d, primary has %d", k, j, got, want.versions[k])
			}
		}
	}
	return rep
}

// TestChaosExactNTCUnderSeededPlans is the headline: for several seeded
// fault plans the NTC accounted over real TCP equals the a-priori
// surviving-replica cost exactly, recovery costs match the model, and all
// versions reconverge.
func TestChaosExactNTCUnderSeededPlans(t *testing.T) {
	p := genProblem(t, 6, 8, 0.15, 0.9, 21)
	scheme := sra.Run(p, sra.Options{}).Scheme
	total := totalRequests(p)
	if total < 10 {
		t.Fatalf("degenerate workload: %d requests", total)
	}
	// Pick a non-primary replica site (reads fail over around it) and a
	// primary site (writes to its objects queue) to crash.
	crashReplica, crashPrimary := -1, p.Primary(0)
	for j := 0; j < p.Sites(); j++ {
		primaried := false
		for k := 0; k < p.Objects(); k++ {
			if p.Primary(k) == j {
				primaried = true
				break
			}
		}
		if !primaried {
			crashReplica = j
			break
		}
	}
	if crashReplica < 0 {
		crashReplica = (crashPrimary + 1) % p.Sites()
	}
	half, third := total/2, total/3

	plans := []struct {
		name string
		plan Plan
	}{
		{"crash-replica-first-half", Plan{Seed: 1, Events: []Event{
			{Kind: KindCrash, Site: crashReplica, Step: 1, Until: half},
		}}},
		{"crash-primary-midwindow", Plan{Seed: 2, Events: []Event{
			{Kind: KindCrash, Site: crashPrimary, Step: third, Until: 2 * third},
		}}},
		{"double-crash-overlapping", Plan{Seed: 3, Events: []Event{
			{Kind: KindCrash, Site: crashReplica, Step: 1, Until: 2 * third},
			{Kind: KindCrash, Site: (crashReplica + 2) % p.Sites(), Step: third, Until: total},
		}}},
		{"blackhole-link", Plan{Seed: 4, Events: []Event{
			{Kind: KindBlackhole, Site: 0, Peer: crashPrimary, Step: 1, Until: half},
			{Kind: KindBlackhole, Site: 1, Peer: crashReplica, Step: third, Until: total},
		}}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			rep := runChaos(t, p, scheme, tc.plan)
			if rep.FailedReads == 0 && rep.QueuedWrites == 0 && rep.NTC == scheme.Cost() {
				t.Errorf("plan injected no observable fault (NTC %d == eq.4 D); the scenario is vacuous", rep.NTC)
			}
		})
	}
}

// TestChaosRestartEventReconverges exercises the explicit restart kind: a
// crash with no Until is ended by a KindRestart event, after which the
// restarted site reconverges to the coordinator's scheme with matching
// versions via reconciliation.
func TestChaosRestartEventReconverges(t *testing.T) {
	p := genProblem(t, 5, 6, 0.25, 1.0, 7)
	scheme := sra.Run(p, sra.Options{}).Scheme
	total := totalRequests(p)
	victim := -1
	for k := 0; k < p.Objects(); k++ {
		for _, j := range scheme.Replicators(k) {
			if j != p.Primary(k) {
				victim = j
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("SRA placed no secondary replicas; nothing to crash")
	}
	plan := Plan{Seed: 5, Events: []Event{
		{Kind: KindCrash, Site: victim, Step: 1}, // no Until: down until restarted
		{Kind: KindRestart, Site: victim, Step: total / 2},
	}}
	runChaos(t, p, scheme, plan)
}

// TestChaosHoldingsSurviveCrash asserts a crashed-then-restarted site's
// holdings still match the deployed scheme (the crash is a connectivity
// fault, not data loss, per the paper's fault model).
func TestChaosHoldingsSurviveCrash(t *testing.T) {
	p := genProblem(t, 5, 6, 0.25, 1.0, 7)
	scheme := sra.Run(p, sra.Options{}).Scheme
	total := totalRequests(p)
	victim := (p.Primary(0) + 1) % p.Sites()
	plan := Plan{Seed: 6, Events: []Event{
		{Kind: KindCrash, Site: victim, Step: 1, Until: total / 2},
	}}
	c, in := chaosCluster(t, p, scheme, plan)
	if _, err := c.DriveTrafficReport(); err != nil {
		t.Fatal(err)
	}
	in.AdvanceTo(plan.MaxStep())
	if _, err := c.FlushPending(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < p.Objects(); k++ {
		if got, want := c.Node(victim).Holds(k), scheme.Has(victim, k); got != want {
			t.Errorf("restarted site %d holds(%d)=%v, scheme says %v", victim, k, got, want)
		}
	}
}

// TestChaosBitIdenticalPerSeed runs a plan with probabilistic drops and
// latency spikes twice from the same seed and requires bit-identical
// accounting: identical reports, per-node NTC, versions and injector
// outcome counts.
func TestChaosBitIdenticalPerSeed(t *testing.T) {
	p := genProblem(t, 5, 6, 0.2, 0.8, 11)
	scheme := sra.Run(p, sra.Options{}).Scheme
	total := totalRequests(p)
	plan := Plan{Seed: 99, Events: []Event{
		{Kind: KindDrop, Site: 1, Peer: Coordinator, Step: 1, Until: total / 2, Prob: 0.4},
		{Kind: KindLatency, Site: 2, Step: total / 4, Until: total / 2, DelayMS: 1},
		{Kind: KindCrash, Site: 3, Step: total / 3, Until: total / 2},
	}}

	type snapshot struct {
		rep      netnode.TrafficReport
		flush    int64
		rec      int64
		ntc      []int64
		versions []int64
		drops    int64
		refused  int64
	}
	capture := func() snapshot {
		c, in := chaosCluster(t, p, scheme, plan)
		rep, err := c.DriveTrafficReport()
		if err != nil {
			t.Fatal(err)
		}
		in.AdvanceTo(plan.MaxStep())
		flush, err := c.FlushPending()
		if err != nil {
			t.Fatal(err)
		}
		rec, remaining, err := c.Reconcile()
		if err != nil {
			t.Fatal(err)
		}
		if remaining != 0 {
			t.Fatalf("%d replicas still stale after reconcile", remaining)
		}
		var s snapshot
		s.rep = *rep
		s.flush, s.rec = flush, rec
		for i := 0; i < p.Sites(); i++ {
			s.ntc = append(s.ntc, c.Node(i).NTC())
		}
		for k := 0; k < p.Objects(); k++ {
			for i := 0; i < p.Sites(); i++ {
				s.versions = append(s.versions, c.Node(i).Version(k))
			}
		}
		_, refused, _, dropped, _ := in.Stats()
		s.drops, s.refused = dropped, refused
		return s
	}

	a, b := capture(), capture()
	if a.rep != b.rep {
		t.Errorf("reports differ across identically seeded runs:\n  %+v\n  %+v", a.rep, b.rep)
	}
	if a.flush != b.flush || a.rec != b.rec {
		t.Errorf("recovery costs differ: flush %d vs %d, reconcile %d vs %d", a.flush, b.flush, a.rec, b.rec)
	}
	for i := range a.ntc {
		if a.ntc[i] != b.ntc[i] {
			t.Errorf("site %d NTC differs: %d vs %d", i, a.ntc[i], b.ntc[i])
		}
	}
	for i := range a.versions {
		if a.versions[i] != b.versions[i] {
			t.Fatalf("version vector differs at index %d: %d vs %d", i, a.versions[i], b.versions[i])
		}
	}
	if a.drops != b.drops || a.refused != b.refused {
		t.Errorf("injector outcomes differ: drops %d vs %d, refused %d vs %d", a.drops, b.drops, a.refused, b.refused)
	}
	if a.drops == 0 {
		t.Error("drop plan never dropped a message; the scenario is vacuous")
	}
}

// TestChaosEmptyPlanMatchesEq4 pins the degenerate case: an empty plan
// through the full fault machinery (injector attached, retries on) still
// accounts exactly eq. 4's D — the middleware is invisible on the happy
// path.
func TestChaosEmptyPlanMatchesEq4(t *testing.T) {
	p := genProblem(t, 4, 5, 0.2, 0.6, 3)
	scheme := sra.Run(p, sra.Options{}).Scheme
	c, _ := chaosCluster(t, p, scheme, Plan{Seed: 1})
	rep, err := c.DriveTrafficReport()
	if err != nil {
		t.Fatal(err)
	}
	if want := scheme.Cost(); rep.NTC != want {
		t.Errorf("fault-instrumented happy path NTC %d != eq.4 D %d", rep.NTC, want)
	}
	if rep.FailedReads != 0 || rep.QueuedWrites != 0 {
		t.Errorf("empty plan degraded requests: %+v", rep)
	}
}
