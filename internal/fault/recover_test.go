package fault

// Kill-and-recover chaos: unlike the connectivity-only crash tests, these
// scenarios actually stop the victim process mid-measurement-period — the
// listener dies and the WAL is abandoned without a flush, the
// SIGKILL-equivalent — and restart it from its data directory at the step
// the plan's crash window closes. The recovered state must be
// byte-identical to what the node had acknowledged at the kill instant,
// and the run's accounting must still match the a-priori oracle exactly:
// the durability layer is invisible to the cost model.

import (
	"bytes"
	"testing"
	"time"

	"drp/internal/core"
	"drp/internal/netnode"
	"drp/internal/sra"
	"drp/internal/store"
)

// siteBlock returns the 1-based step window [start, end] occupied by site's
// own requests in DriveTraffic's site-major order.
func siteBlock(p *core.Problem, site int) (start, end int64) {
	var before int64
	for i := 0; i < site; i++ {
		before += siteRequests(p, i)
	}
	return before + 1, before + siteRequests(p, site)
}

func siteRequests(p *core.Problem, i int) int64 {
	var total int64
	for k := 0; k < p.Objects(); k++ {
		total += p.Reads(i, k) + p.Writes(i, k)
	}
	return total
}

// pickVictim chooses the kill target: a site that replicates at least one
// object primaried elsewhere (so broadcasts to it go stale while it is
// down), preferring one that also primaries an object (so writes to that
// object queue at their writers). Early sites are preferred so the crash
// window fits after the victim's own request block.
func pickVictim(p *core.Problem, s *core.Scheme) int {
	best := -1
	for i := 0; i < p.Sites(); i++ {
		replicates := false
		for k := 0; k < p.Objects(); k++ {
			if s.Has(i, k) && p.Primary(k) != i {
				replicates = true
				break
			}
		}
		if !replicates {
			continue
		}
		if best < 0 {
			best = i
		}
		for k := 0; k < p.Objects(); k++ {
			if p.Primary(k) == i {
				return i
			}
		}
	}
	return best
}

// recoverOutcome captures everything a kill-and-recover run must reproduce.
type recoverOutcome struct {
	killed    []byte // victim state at the kill instant
	recovered []byte // victim state right after replay
	rep       netnode.TrafficReport
	flush     int64
	reconcile int64
	versions  []int64
	ntc       []int64
}

// runKillRecover drives one measurement period over a durable cluster,
// really killing the victim at the crash window's first step and
// restarting it from disk at the window's close, then runs recovery and
// returns the full outcome. All exact-oracle assertions happen here.
func runKillRecover(t *testing.T, p *core.Problem, scheme *core.Scheme, victim int, killStep, restartStep int64) *recoverOutcome {
	t.Helper()
	plan := Plan{Seed: 17, Events: []Event{
		{Kind: KindCrash, Site: victim, Step: killStep, Until: restartStep},
	}}
	if err := plan.Validate(p.Sites()); err != nil {
		t.Fatal(err)
	}
	dumpOnFailure(t, plan)

	c, err := netnode.StartDurable(p, t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	Attach(c, in)
	c.SetRetry(netnode.RetryPolicy{Attempts: 3, Base: 200 * time.Microsecond, Cap: time.Millisecond, Jitter: 0.5})
	c.SetRequestTimeout(2 * time.Second)

	out := &recoverOutcome{}
	// The request hook advances the injector's clock and, in lockstep,
	// performs the real kill and the real restart at the steps the plan
	// models — so the modeled reachability and the actual process state
	// agree at every step.
	var step int64
	c.SetRequestHook(func() {
		step++
		switch step {
		case killStep:
			if err := c.Node(victim).Kill(); err != nil {
				t.Errorf("kill: %v", err)
			}
			out.killed = c.Node(victim).Store().EncodeState()
		case restartStep:
			node, err := c.RestartNode(victim)
			if err != nil {
				t.Errorf("restart: %v", err)
				break
			}
			out.recovered = node.Store().EncodeState()
			in.Register(victim, node.Addr())
			node.SetDialer(in.DialerFor(victim))
		}
		in.Advance()
	})

	want := predict(p, scheme, plan)
	rep, err := c.DriveTrafficReport()
	if err != nil {
		t.Fatal(err)
	}
	out.rep = *rep

	if out.killed == nil || out.recovered == nil {
		t.Fatalf("kill/restart hooks did not both fire (steps %d/%d of %d)", killStep, restartStep, step)
	}
	if !bytes.Equal(out.recovered, out.killed) {
		t.Errorf("recovered state differs from the state acknowledged at the kill:\n killed    %s\n recovered %s", out.killed, out.recovered)
	}
	if !c.Node(victim).Store().Recovered() {
		t.Error("restarted victim reports no recovered state")
	}

	if rep.NTC != want.ntc {
		t.Errorf("accounted NTC %d, a-priori surviving-replica cost %d", rep.NTC, want.ntc)
	}
	if rep.Reads != want.reads || rep.FailedReads != want.failedReads {
		t.Errorf("reads served/failed %d/%d, want %d/%d", rep.Reads, rep.FailedReads, want.reads, want.failedReads)
	}
	if rep.Writes != want.writes || rep.QueuedWrites != want.queuedWrites {
		t.Errorf("writes served/queued %d/%d, want %d/%d", rep.Writes, rep.QueuedWrites, want.writes, want.queuedWrites)
	}

	in.AdvanceTo(plan.MaxStep())
	out.flush, err = c.FlushPending()
	if err != nil {
		t.Fatal(err)
	}
	if out.flush != want.flushNTC {
		t.Errorf("flush NTC %d, want %d", out.flush, want.flushNTC)
	}
	if left := c.PendingWrites(); left != 0 {
		t.Errorf("%d writes still queued after flush", left)
	}
	var remaining int
	out.reconcile, remaining, err = c.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if out.reconcile != want.reconcileNTC {
		t.Errorf("reconcile NTC %d, want %d", out.reconcile, want.reconcileNTC)
	}
	if remaining != 0 {
		t.Errorf("%d replicas still stale after reconcile", remaining)
	}

	// Version reconvergence, including at the restarted victim: replicas
	// match their primary, and every primary serialised exactly the
	// modelled number of writes.
	for k := 0; k < p.Objects(); k++ {
		sp := p.Primary(k)
		if got := c.Node(sp).Version(k); got != want.versions[k] {
			t.Errorf("object %d: primary version %d, want %d", k, got, want.versions[k])
		}
		for _, j := range scheme.Replicators(k) {
			if got := c.Node(j).Version(k); got != want.versions[k] {
				t.Errorf("object %d: replica at site %d has version %d, primary has %d", k, j, got, want.versions[k])
			}
		}
		out.versions = append(out.versions, want.versions[k])
	}
	for i := 0; i < p.Sites(); i++ {
		out.ntc = append(out.ntc, c.Node(i).NTC())
	}
	return out
}

// killRecoverScenario derives the victim and a crash window that avoids
// the victim's own request block (a down site issues no traffic; the
// oracle and the real run agree on that) while leaving restart inside the
// measurement period so the hook can fire it.
func killRecoverScenario(t *testing.T, p *core.Problem, scheme *core.Scheme) (victim int, killStep, restartStep int64) {
	t.Helper()
	total := totalRequests(p)
	victim = pickVictim(p, scheme)
	if victim < 0 {
		t.Skip("SRA placed no secondary replicas; nothing to kill")
	}
	_, blockEnd := siteBlock(p, victim)
	killStep, restartStep = blockEnd+1, total
	if killStep >= restartStep {
		t.Skipf("victim %d's own requests span to step %d of %d; no room for a crash window", victim, blockEnd, total)
	}
	return victim, killStep, restartStep
}

// TestKillAndRecoverExactNTC is the tentpole's headline: a mid-burst
// SIGKILL-equivalent stop, a WAL replay restart, byte-identical recovered
// state, and the exact a-priori NTC, flush, reconcile and version
// assertions all holding across the real kill.
func TestKillAndRecoverExactNTC(t *testing.T) {
	p := genProblem(t, 6, 8, 0.25, 0.9, 41)
	scheme := sra.Run(p, sra.Options{}).Scheme
	victim, killStep, restartStep := killRecoverScenario(t, p, scheme)
	out := runKillRecover(t, p, scheme, victim, killStep, restartStep)
	if out.rep.FailedReads == 0 && out.rep.QueuedWrites == 0 && out.rep.NTC == scheme.Cost() {
		t.Errorf("kill window injected no observable fault (NTC %d == eq.4 D); the scenario is vacuous", out.rep.NTC)
	}
}

// TestKillAndRecoverDeterministic runs the identical scenario twice in
// fresh directories: same seed + same crash schedule must give
// byte-identical killed and recovered states and identical accounting.
func TestKillAndRecoverDeterministic(t *testing.T) {
	p := genProblem(t, 5, 6, 0.25, 0.8, 42)
	scheme := sra.Run(p, sra.Options{}).Scheme
	victim, killStep, restartStep := killRecoverScenario(t, p, scheme)

	a := runKillRecover(t, p, scheme, victim, killStep, restartStep)
	b := runKillRecover(t, p, scheme, victim, killStep, restartStep)
	if !bytes.Equal(a.killed, b.killed) {
		t.Errorf("killed states differ across identically seeded runs:\n %s\n %s", a.killed, b.killed)
	}
	if !bytes.Equal(a.recovered, b.recovered) {
		t.Errorf("recovered states differ across identically seeded runs:\n %s\n %s", a.recovered, b.recovered)
	}
	if a.rep != b.rep {
		t.Errorf("reports differ: %+v vs %+v", a.rep, b.rep)
	}
	if a.flush != b.flush || a.reconcile != b.reconcile {
		t.Errorf("recovery costs differ: flush %d vs %d, reconcile %d vs %d", a.flush, b.flush, a.reconcile, b.reconcile)
	}
	for i := range a.ntc {
		if a.ntc[i] != b.ntc[i] {
			t.Errorf("site %d NTC differs: %d vs %d", i, a.ntc[i], b.ntc[i])
		}
	}
}

// TestKillAndRecoverWithSnapshots reruns the headline scenario with
// aggressive automatic snapshotting, so the victim recovers from a
// snapshot plus a log tail instead of a pure replay — the outcome must be
// identical either way.
func TestKillAndRecoverWithSnapshots(t *testing.T) {
	p := genProblem(t, 6, 8, 0.25, 0.9, 41)
	scheme := sra.Run(p, sra.Options{}).Scheme
	victim, killStep, restartStep := killRecoverScenario(t, p, scheme)
	plan := Plan{Seed: 17, Events: []Event{
		{Kind: KindCrash, Site: victim, Step: killStep, Until: restartStep},
	}}

	run := func(opts store.Options) *netnode.TrafficReport {
		c, err := netnode.StartDurable(p, t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		if _, err := c.Deploy(scheme); err != nil {
			t.Fatal(err)
		}
		in := NewInjector(plan)
		Attach(c, in)
		c.SetRetry(netnode.RetryPolicy{Attempts: 3, Base: 200 * time.Microsecond, Cap: time.Millisecond, Jitter: 0.5})
		c.SetRequestTimeout(2 * time.Second)
		var killed []byte
		var step int64
		c.SetRequestHook(func() {
			step++
			switch step {
			case killStep:
				_ = c.Node(victim).Kill()
				killed = c.Node(victim).Store().EncodeState()
			case restartStep:
				node, err := c.RestartNode(victim)
				if err != nil {
					t.Errorf("restart: %v", err)
					break
				}
				if got := node.Store().EncodeState(); !bytes.Equal(got, killed) {
					t.Errorf("snapshot recovery differs from killed state:\n killed    %s\n recovered %s", killed, got)
				}
				in.Register(victim, node.Addr())
				node.SetDialer(in.DialerFor(victim))
			}
			in.Advance()
		})
		rep, err := c.DriveTrafficReport()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	plain := run(store.Options{Sync: store.SyncNever})
	snappy := run(store.Options{Sync: store.SyncNever, SnapshotEvery: 8})
	if *plain != *snappy {
		t.Errorf("snapshotting changed the observable run:\n plain %+v\n snap  %+v", *plain, *snappy)
	}
}
