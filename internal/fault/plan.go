// Package fault injects deterministic, seed-driven failures into the TCP
// replication cluster of drp/internal/netnode without the node code
// changing: the injector is dialer middleware, so the happy path is the
// plain TCP dial and every fault is an error or delay a real network
// would produce.
//
// A Plan is a list of events — site crash/restart windows, link
// blackholes, latency spikes, probabilistic message drops — pinned to a
// logical step clock that the traffic driver advances once per request
// (netnode's SetRequestHook). Whether a given dial succeeds is a pure
// function of the plan and the current step (drops additionally consume a
// seeded RNG in dial order), so a seeded plan replays bit-identically and
// the surviving-replica transfer cost is computable a priori; the chaos
// tests assert it exactly.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Kind enumerates fault event types.
type Kind string

// Fault event kinds.
const (
	// KindCrash takes a site down for the window: every dial to it, and
	// every dial it originates, fails.
	KindCrash Kind = "crash"
	// KindRestart brings a site back up, ending any crash window covering
	// the restart step (an alternative to setting Until on the crash).
	KindRestart Kind = "restart"
	// KindBlackhole drops all traffic between Site and Peer, both
	// directions, for the window.
	KindBlackhole Kind = "blackhole"
	// KindLatency delays connection establishment involving Site by
	// DelayMS for the window.
	KindLatency Kind = "latency"
	// KindLinkLatency delays connection establishment on the Site↔Peer
	// link, both directions, by DelayMS for the window. Unlike KindLatency
	// it is per-link, so a matrix of link delays (a geo-latency profile)
	// is a set of these events; see MatrixPlan.
	KindLinkLatency Kind = "linklat"
	// KindDrop makes dials involving Site (or the Site↔Peer link when
	// Peer ≥ 0) fail with probability Prob during the window, driven by
	// the plan's seeded RNG.
	KindDrop Kind = "drop"
)

// Coordinator is the pseudo-site index of the cluster coordinator for
// link-level events (it originates deploy/reconcile commands but serves
// no traffic and cannot crash).
const Coordinator = -1

// Event is one scheduled fault. Step/Until delimit the half-open logical
// window [Step, Until); Until == 0 means "until cancelled" (for crashes, a
// later restart) or forever.
type Event struct {
	Kind  Kind  `json:"kind"`
	Site  int   `json:"site"`
	Peer  int   `json:"peer,omitempty"`
	Step  int64 `json:"step"`
	Until int64 `json:"until,omitempty"`
	// DelayMS is the latency-spike magnitude in milliseconds.
	DelayMS int64 `json:"delay_ms,omitempty"`
	// Prob is the per-dial drop probability in [0,1].
	Prob float64 `json:"prob,omitempty"`
}

// Delay returns the latency-spike magnitude as a duration.
func (e Event) Delay() time.Duration { return time.Duration(e.DelayMS) * time.Millisecond }

// active reports whether the event's window covers step.
func (e Event) active(step int64) bool {
	return step >= e.Step && (e.Until == 0 || step < e.Until)
}

// Plan is a deterministic fault schedule.
type Plan struct {
	// Seed drives the drop-event RNG; plans with the same seed replay
	// bit-identically under serial traffic.
	Seed uint64 `json:"seed"`
	// Events is the fault schedule.
	Events []Event `json:"events"`
}

// Validate checks the plan against a cluster of m sites.
func (p *Plan) Validate(m int) error {
	for i, e := range p.Events {
		prefix := fmt.Sprintf("fault: event %d (%s)", i, e.Kind)
		if e.Step < 0 || e.Until < 0 {
			return fmt.Errorf("%s: negative step window [%d,%d)", prefix, e.Step, e.Until)
		}
		if e.Until != 0 && e.Until <= e.Step {
			return fmt.Errorf("%s: empty step window [%d,%d)", prefix, e.Step, e.Until)
		}
		switch e.Kind {
		case KindCrash, KindRestart, KindLatency:
			if e.Site < 0 || e.Site >= m {
				return fmt.Errorf("%s: site %d out of range [0,%d)", prefix, e.Site, m)
			}
		case KindBlackhole, KindLinkLatency:
			if e.Site < Coordinator || e.Site >= m || e.Peer < Coordinator || e.Peer >= m {
				return fmt.Errorf("%s: endpoints %d↔%d out of range", prefix, e.Site, e.Peer)
			}
			if e.Site == e.Peer {
				return fmt.Errorf("%s: %s needs two distinct endpoints, got %d", prefix, e.Kind, e.Site)
			}
		case KindDrop:
			if e.Site < 0 || e.Site >= m {
				return fmt.Errorf("%s: site %d out of range [0,%d)", prefix, e.Site, m)
			}
			if e.Peer < Coordinator || e.Peer >= m {
				return fmt.Errorf("%s: peer %d out of range", prefix, e.Peer)
			}
			if e.Prob < 0 || e.Prob > 1 {
				return fmt.Errorf("%s: drop probability %v outside [0,1]", prefix, e.Prob)
			}
		default:
			return fmt.Errorf("%s: unknown kind", prefix)
		}
		if e.DelayMS < 0 {
			return fmt.Errorf("%s: negative delay %dms", prefix, e.DelayMS)
		}
	}
	return nil
}

// Normalize clamps a (possibly fuzzer-generated) plan onto a cluster of m
// sites with latency spikes capped at maxDelay, returning a plan that
// always passes Validate. Out-of-range endpoints are wrapped into range,
// windows are repaired, probabilities clamped.
func (p *Plan) Normalize(m int, maxDelay time.Duration) Plan {
	out := Plan{Seed: p.Seed}
	maxMS := maxDelay.Milliseconds()
	for _, e := range p.Events {
		switch e.Kind {
		case KindCrash, KindRestart, KindLatency, KindBlackhole, KindDrop, KindLinkLatency:
		default:
			continue
		}
		linkKind := e.Kind == KindBlackhole || e.Kind == KindLinkLatency
		e.Site = wrapSite(e.Site, m, linkKind)
		e.Peer = wrapSite(e.Peer, m, linkKind || e.Kind == KindDrop)
		if e.Kind == KindDrop && e.Site < 0 {
			e.Site = 0
		}
		if linkKind && e.Site == e.Peer {
			if e.Site == Coordinator {
				e.Peer = 0
			} else {
				e.Peer = (e.Site + 1) % m
			}
			if e.Peer == e.Site {
				continue // single-site cluster: no distinct link exists
			}
		}
		if e.Step < 0 {
			e.Step = -e.Step
		}
		if e.Until < 0 {
			e.Until = -e.Until
		}
		if e.Until != 0 && e.Until <= e.Step {
			e.Until = e.Step + 1
		}
		if e.DelayMS < 0 {
			e.DelayMS = -e.DelayMS
		}
		if e.DelayMS > maxMS {
			e.DelayMS = maxMS
		}
		if e.Prob < 0 || e.Prob != e.Prob { // negative or NaN
			e.Prob = 0
		}
		if e.Prob > 1 {
			e.Prob = 1
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// wrapSite folds an arbitrary site index into [0,m) — or [-1,m) when the
// coordinator is an allowed endpoint.
func wrapSite(s, m int, allowCoordinator bool) int {
	if allowCoordinator && s == Coordinator {
		return s
	}
	if s >= 0 && s < m {
		return s
	}
	if m <= 0 {
		return 0
	}
	s %= m
	if s < 0 {
		s += m
	}
	return s
}

// Crashed reports whether site is down at step: some crash window covers
// the step and no restart for the site landed in between.
func (p *Plan) Crashed(site int, step int64) bool {
	for _, e := range p.Events {
		if e.Kind != KindCrash || e.Site != site || !e.active(step) {
			continue
		}
		revived := false
		for _, r := range p.Events {
			if r.Kind == KindRestart && r.Site == site && r.Step >= e.Step && r.Step <= step {
				revived = true
				break
			}
		}
		if !revived {
			return true
		}
	}
	return false
}

// Blackholed reports whether the a↔b link is severed at step (either
// endpoint may be Coordinator).
func (p *Plan) Blackholed(a, b int, step int64) bool {
	for _, e := range p.Events {
		if e.Kind != KindBlackhole || !e.active(step) {
			continue
		}
		if (e.Site == a && e.Peer == b) || (e.Site == b && e.Peer == a) {
			return true
		}
	}
	return false
}

// Reachable reports whether a dial from client a (Coordinator allowed) to
// site b can succeed at step, ignoring probabilistic drops: neither
// endpoint crashed and the link not blackholed. This is the reachability
// relation the chaos tests' a-priori cost model uses.
func (p *Plan) Reachable(a, b int, step int64) bool {
	if a >= 0 && p.Crashed(a, step) {
		return false
	}
	if b >= 0 && p.Crashed(b, step) {
		return false
	}
	return !p.Blackholed(a, b, step)
}

// LatencyAt returns the total connection-establishment delay injected on
// dials from a to b at step: site-scoped latency spikes involving either
// endpoint plus link-scoped delays on the a↔b link.
func (p *Plan) LatencyAt(a, b int, step int64) time.Duration {
	var d time.Duration
	for _, e := range p.Events {
		if !e.active(step) {
			continue
		}
		switch e.Kind {
		case KindLatency:
			if e.Site == a || e.Site == b {
				d += e.Delay()
			}
		case KindLinkLatency:
			if (e.Site == a && e.Peer == b) || (e.Site == b && e.Peer == a) {
				d += e.Delay()
			}
		}
	}
	return d
}

// MatrixPlan builds the latency half of a geo profile: one open-ended
// link-latency event per site pair with a positive delay in the matrix.
// The matrix must be square and symmetric with non-negative entries and a
// zero diagonal (a site does not dial itself over the wire). The returned
// plan injects delayMS[i][j] on every dial between sites i and j, forever.
func MatrixPlan(delayMS [][]int64) (Plan, error) {
	m := len(delayMS)
	plan := Plan{}
	for i, row := range delayMS {
		if len(row) != m {
			return Plan{}, fmt.Errorf("fault: latency matrix row %d has %d entries, want %d", i, len(row), m)
		}
		for j, d := range row {
			if d < 0 {
				return Plan{}, fmt.Errorf("fault: negative latency %dms on link %d↔%d", d, i, j)
			}
			if i == j {
				if d != 0 {
					return Plan{}, fmt.Errorf("fault: latency matrix diagonal [%d][%d] must be zero, got %d", i, j, d)
				}
				continue
			}
			if delayMS[j][i] != d {
				return Plan{}, fmt.Errorf("fault: latency matrix asymmetric at [%d][%d]: %d vs %d", i, j, d, delayMS[j][i])
			}
			if i < j && d > 0 {
				plan.Events = append(plan.Events, Event{Kind: KindLinkLatency, Site: i, Peer: j, DelayMS: d})
			}
		}
	}
	return plan, nil
}

// DropProb returns the combined drop probability for a dial from a to b
// at step (independent drop events compose).
func (p *Plan) DropProb(a, b int, step int64) float64 {
	keep := 1.0
	for _, e := range p.Events {
		if e.Kind != KindDrop || !e.active(step) {
			continue
		}
		match := false
		if e.Peer == Coordinator {
			match = e.Site == a || e.Site == b
		} else {
			match = (e.Site == a && e.Peer == b) || (e.Site == b && e.Peer == a)
		}
		if match {
			keep *= 1 - e.Prob
		}
	}
	return 1 - keep
}

// MaxStep returns the largest step any event references (the end of the
// plan's schedule); events with Until == 0 contribute their start step.
func (p *Plan) MaxStep() int64 {
	var max int64
	for _, e := range p.Events {
		if e.Step > max {
			max = e.Step
		}
		if e.Until > max {
			max = e.Until
		}
	}
	return max
}

// Encode writes the plan as indented JSON.
func (p *Plan) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ParsePlan decodes a plan from JSON bytes, rejecting unknown fields so
// typos in hand-written plans fail loudly.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: parse plan: %w", err)
	}
	return p, nil
}

// ReadPlan decodes a plan from r.
func ReadPlan(r io.Reader) (Plan, error) {
	data, err := io.ReadAll(io.LimitReader(r, 8<<20))
	if err != nil {
		return Plan{}, fmt.Errorf("fault: read plan: %w", err)
	}
	return ParsePlan(data)
}

// LoadPlan reads and validates a plan file against a cluster of m sites.
func LoadPlan(path string, m int) (Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return Plan{}, fmt.Errorf("fault: %w", err)
	}
	defer f.Close()
	p, err := ReadPlan(f)
	if err != nil {
		return Plan{}, err
	}
	if err := p.Validate(m); err != nil {
		return Plan{}, err
	}
	return p, nil
}
