package fault

// Span-tree invariants under chaos: the tracing subsystem must describe the
// faulty run exactly. Every client request mints exactly one root span,
// children nest strictly inside their parents even when stitched across the
// wire, and — the tracing twin of the headline NTC assertion — the summed
// per-span NTC of each phase equals the phase's accounted transfer cost to
// the unit. Two identical seeded runs must serialise to identical bytes.

import (
	"bytes"
	"testing"

	"drp/internal/core"
	"drp/internal/netnode"
	"drp/internal/spans"
	"drp/internal/sra"
)

// tracedChaos runs the full chaos scenario (traffic, then flush and
// reconcile past the fault horizon) on a freshly booted cluster with a
// collector-backed tracer attached after deploy, so the spans cover
// exactly the request phases.
type tracedChaos struct {
	rep          *netnode.TrafficReport
	flushNTC     int64
	reconcileNTC int64
	spans        []spans.Span
}

func runTracedChaos(t *testing.T, p *core.Problem, scheme *core.Scheme, plan Plan) *tracedChaos {
	t.Helper()
	c, in := chaosCluster(t, p, scheme, plan)
	col := &spans.Collector{}
	c.EnableTracing(spans.New(col))

	rep, err := c.DriveTrafficReport()
	if err != nil {
		t.Fatal(err)
	}
	in.AdvanceTo(plan.MaxStep())
	flushNTC, err := c.FlushPending()
	if err != nil {
		t.Fatal(err)
	}
	recNTC, remaining, err := c.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0 {
		t.Fatalf("%d replicas still stale after reconcile", remaining)
	}
	return &tracedChaos{rep: rep, flushNTC: flushNTC, reconcileNTC: recNTC, spans: col.Spans()}
}

func chaosSpanPlan(p *core.Problem) Plan {
	total := totalRequests(p)
	return Plan{Seed: 11, Events: []Event{
		{Kind: KindCrash, Site: p.Primary(0), Step: total / 3, Until: 2 * total / 3},
		{Kind: KindCrash, Site: (p.Primary(0) + 1) % p.Sites(), Step: 1, Until: total / 2},
	}}
}

// TestChaosSpanTreeInvariants asserts the three structural guarantees of
// the span model over a faulty run: one root per client request, strict
// parent/child nesting, and phase-exact NTC attribution.
func TestChaosSpanTreeInvariants(t *testing.T) {
	p := genProblem(t, 6, 8, 0.15, 0.9, 21)
	scheme := sra.Run(p, sra.Options{}).Scheme
	res := runTracedChaos(t, p, scheme, chaosSpanPlan(p))

	traces := spans.Assemble(res.spans)
	roots := map[string]int64{}
	ntcByRoot := map[string]int64{}
	for _, tr := range traces {
		if len(tr.Roots) != 1 {
			t.Fatalf("trace %s has %d roots (orphaned spans)", tr.ID, len(tr.Roots))
		}
		root := tr.Root()
		roots[root.Name]++
		ntcByRoot[root.Name] += tr.NTC()
		tr.Walk(func(ts *spans.TreeSpan) {
			if ts.End < ts.Start {
				t.Fatalf("span %s %q ends before it starts", ts.ID, ts.Name)
			}
			if ts.NTC < 0 {
				t.Fatalf("span %s %q has negative NTC", ts.ID, ts.Name)
			}
			for _, ch := range ts.Children {
				if ch.Start <= ts.Start || ch.End >= ts.End {
					t.Fatalf("child %s %q [%d,%d] does not nest strictly inside %s %q [%d,%d]",
						ch.ID, ch.Name, ch.Start, ch.End, ts.ID, ts.Name, ts.Start, ts.End)
				}
			}
		})
	}

	rep := res.rep
	if got, want := roots["read"], rep.Reads+rep.FailedReads; got != want {
		t.Errorf("read roots %d, want one per issued read %d", got, want)
	}
	if got, want := roots["write"], rep.Writes+rep.QueuedWrites; got != want {
		t.Errorf("write roots %d, want one per issued write %d", got, want)
	}
	if got, want := roots["reconcile"], int64(p.Objects()); got != want {
		t.Errorf("reconcile roots %d, want one per object %d", got, want)
	}
	if rep.QueuedWrites == 0 {
		t.Error("plan queued no writes; the flush phase is vacuous")
	}

	// Phase-exact NTC: summed span NTC == accounted transfer cost, to the
	// unit, per phase.
	if got, want := ntcByRoot["read"]+ntcByRoot["write"], rep.NTC; got != want {
		t.Errorf("traffic span NTC %d, accounted NTC %d", got, want)
	}
	if got, want := ntcByRoot["write.flush"], res.flushNTC; got != want {
		t.Errorf("flush span NTC %d, accounted flush NTC %d", got, want)
	}
	if got, want := ntcByRoot["reconcile"], res.reconcileNTC; got != want {
		t.Errorf("reconcile span NTC %d, accounted reconcile NTC %d", got, want)
	}

	// Fault verdicts surface: the crashed-site plan must have produced at
	// least one classified span (crashed replicas during reads or writes).
	verdicts := 0
	for _, s := range res.spans {
		if s.Verdict == "crashed" {
			verdicts++
		}
	}
	if verdicts == 0 {
		t.Error("no span carries a crashed verdict despite crash events in the plan")
	}
}

// TestChaosSpansByteDeterministic reruns the identical scenario twice with
// fresh tracers and requires the encoded span streams to match byte for
// byte — logical clocks and redacted addresses make wall time and
// ephemeral ports invisible.
func TestChaosSpansByteDeterministic(t *testing.T) {
	p := genProblem(t, 6, 8, 0.15, 0.9, 21)
	scheme := sra.Run(p, sra.Options{}).Scheme
	plan := chaosSpanPlan(p)

	encode := func() []byte {
		res := runTracedChaos(t, p, scheme, plan)
		var buf bytes.Buffer
		if err := spans.Encode(&buf, res.spans); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("span streams differ across identical runs:\nrun A %d bytes, run B %d bytes", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty span stream")
	}
}
