package fault

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestPlanCodecRoundTrip(t *testing.T) {
	p := Plan{Seed: 42, Events: []Event{
		{Kind: KindCrash, Site: 2, Step: 3, Until: 9},
		{Kind: KindRestart, Site: 2, Step: 5},
		{Kind: KindBlackhole, Site: 0, Peer: 1, Step: 1, Until: 4},
		{Kind: KindLatency, Site: 1, Step: 2, Until: 6, DelayMS: 7},
		{Kind: KindDrop, Site: 3, Peer: Coordinator, Step: 1, Until: 8, Prob: 0.25},
	}}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePlan(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mutated the plan:\nin  %+v\nout %+v", p, got)
	}
}

func TestParsePlanRejectsUnknownFields(t *testing.T) {
	_, err := ParsePlan([]byte(`{"seed":1,"events":[{"kind":"crash","site":0,"step":1,"unitl":5}]}`))
	if err == nil {
		t.Fatal("typo'd field accepted silently")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"crash in range", Event{Kind: KindCrash, Site: 2, Step: 1, Until: 5}, true},
		{"crash site out of range", Event{Kind: KindCrash, Site: 4, Step: 1}, false},
		{"crash negative site", Event{Kind: KindCrash, Site: -1, Step: 1}, false},
		{"empty window", Event{Kind: KindCrash, Site: 0, Step: 5, Until: 5}, false},
		{"inverted window", Event{Kind: KindCrash, Site: 0, Step: 5, Until: 2}, false},
		{"negative step", Event{Kind: KindCrash, Site: 0, Step: -1}, false},
		{"blackhole coordinator leg", Event{Kind: KindBlackhole, Site: Coordinator, Peer: 1, Step: 1}, true},
		{"blackhole self link", Event{Kind: KindBlackhole, Site: 1, Peer: 1, Step: 1}, false},
		{"drop prob over 1", Event{Kind: KindDrop, Site: 0, Peer: 1, Step: 1, Prob: 1.5}, false},
		{"drop prob in range", Event{Kind: KindDrop, Site: 0, Peer: Coordinator, Step: 1, Prob: 0.5}, true},
		{"negative delay", Event{Kind: KindLatency, Site: 0, Step: 1, DelayMS: -3}, false},
		{"unknown kind", Event{Kind: Kind("meteor"), Site: 0, Step: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Plan{Events: []Event{tc.ev}}
			err := p.Validate(4)
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("invalid event accepted")
			}
		})
	}
}

func TestCrashedWindowAndRestart(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: KindCrash, Site: 1, Step: 3, Until: 8},
		{Kind: KindCrash, Site: 2, Step: 5}, // open-ended
		{Kind: KindRestart, Site: 2, Step: 9},
	}}
	for _, tc := range []struct {
		site int
		step int64
		want bool
	}{
		{1, 2, false}, {1, 3, true}, {1, 7, true}, {1, 8, false},
		{2, 4, false}, {2, 5, true}, {2, 8, true},
		{2, 9, false}, // restart cancels the open-ended crash
		{2, 100, false},
		{0, 5, false},
	} {
		if got := p.Crashed(tc.site, tc.step); got != tc.want {
			t.Errorf("Crashed(%d, %d) = %v, want %v", tc.site, tc.step, got, tc.want)
		}
	}
}

func TestReachableAndBlackhole(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: KindBlackhole, Site: 0, Peer: 2, Step: 2, Until: 6},
		{Kind: KindCrash, Site: 3, Step: 1, Until: 4},
	}}
	if !p.Blackholed(2, 0, 3) {
		t.Error("blackhole must be undirected")
	}
	if p.Reachable(0, 2, 3) || p.Reachable(2, 0, 3) {
		t.Error("blackholed link reported reachable")
	}
	if !p.Reachable(0, 2, 6) {
		t.Error("link still severed after window closed")
	}
	if p.Reachable(Coordinator, 3, 2) {
		t.Error("coordinator can reach a crashed site")
	}
	if !p.Reachable(Coordinator, 3, 4) {
		t.Error("coordinator cannot reach a recovered site")
	}
}

func TestDropProbComposes(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: KindDrop, Site: 0, Peer: Coordinator, Step: 1, Prob: 0.5},
		{Kind: KindDrop, Site: 0, Peer: 1, Step: 1, Prob: 0.5},
	}}
	if got := p.DropProb(0, 1, 2); got != 0.75 {
		t.Errorf("independent drops should compose: got %v, want 0.75", got)
	}
	if got := p.DropProb(0, 2, 2); got != 0.5 {
		t.Errorf("only the site-wide event matches 0→2: got %v, want 0.5", got)
	}
	if got := p.DropProb(2, 3, 2); got != 0 {
		t.Errorf("unrelated link drops: got %v, want 0", got)
	}
}

func TestLatencyAtSums(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: KindLatency, Site: 0, Step: 1, Until: 5, DelayMS: 2},
		{Kind: KindLatency, Site: 1, Step: 1, Until: 5, DelayMS: 3},
	}}
	if got := p.LatencyAt(0, 1, 2); got != 5*time.Millisecond {
		t.Errorf("LatencyAt = %v, want 5ms", got)
	}
	if got := p.LatencyAt(2, 3, 2); got != 0 {
		t.Errorf("LatencyAt on calm link = %v, want 0", got)
	}
}

func TestNormalizeAlwaysValidates(t *testing.T) {
	hostile := Plan{Seed: 9, Events: []Event{
		{Kind: KindCrash, Site: 99, Step: -4, Until: -2},
		{Kind: KindBlackhole, Site: 5, Peer: 5, Step: 0},
		{Kind: KindDrop, Site: -7, Peer: 42, Step: 1, Prob: 3.5},
		{Kind: KindLatency, Site: 2, Step: 1, DelayMS: 1 << 40},
		{Kind: Kind("meteor"), Site: 0, Step: 1},
	}}
	for _, m := range []int{1, 2, 3, 8} {
		got := hostile.Normalize(m, 2*time.Millisecond)
		if err := got.Validate(m); err != nil {
			t.Errorf("Normalize(%d) left an invalid plan: %v", m, err)
		}
		for _, e := range got.Events {
			if e.DelayMS > 2 {
				t.Errorf("Normalize(%d) kept a %dms delay", m, e.DelayMS)
			}
		}
	}
}

func TestMaxStep(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: KindCrash, Site: 0, Step: 3, Until: 12},
		{Kind: KindRestart, Site: 0, Step: 20},
	}}
	if got := p.MaxStep(); got != 20 {
		t.Errorf("MaxStep = %d, want 20", got)
	}
}

// TestInjectorRefusesCrashedEndpoints drives the dialer directly: dials to
// and from a crashed site fail with a transport (non-timeout) error while
// the window is open, and succeed once it closes.
func TestInjectorRefusesCrashedEndpoints(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	in := NewInjector(Plan{Events: []Event{{Kind: KindCrash, Site: 1, Step: 1, Until: 3}}})
	in.Register(1, ln.Addr().String())
	dialTo1 := in.DialerFor(0)
	dialFrom1 := in.DialerFor(1)

	in.Advance() // step 1: window open
	if _, err := dialTo1(ln.Addr().String()); err == nil {
		t.Fatal("dial to crashed site succeeded")
	} else if ne, ok := err.(net.Error); !ok || ne.Timeout() {
		t.Fatalf("want non-timeout net.Error, got %T %v", err, err)
	}
	if _, err := dialFrom1("127.0.0.1:1"); err == nil {
		t.Fatal("dial from crashed site succeeded")
	} else if !strings.Contains(err.Error(), "down") {
		t.Fatalf("unexpected error from crashed client: %v", err)
	}

	in.AdvanceTo(3) // window closed
	conn, err := dialTo1(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after restart failed: %v", err)
	}
	conn.Close()

	dials, refused, _, _, _ := in.Stats()
	if dials != 3 || refused != 2 {
		t.Errorf("stats dials/refused = %d/%d, want 3/2", dials, refused)
	}
}

// TestInjectorDropsAreSeeded replays the same drop plan twice and expects
// the identical accept/refuse sequence from the seeded RNG.
func TestInjectorDropsAreSeeded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	plan := Plan{Seed: 1234, Events: []Event{{Kind: KindDrop, Site: 1, Peer: Coordinator, Step: 1, Prob: 0.5}}}
	run := func() []bool {
		in := NewInjector(plan)
		in.Register(1, ln.Addr().String())
		dial := in.DialerFor(0)
		in.Advance()
		var outcomes []bool
		for i := 0; i < 32; i++ {
			conn, err := dial(ln.Addr().String())
			if err == nil {
				conn.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different drop sequences")
	}
	ok := 0
	for _, v := range a {
		if v {
			ok++
		}
	}
	if ok == 0 || ok == len(a) {
		t.Errorf("p=0.5 drop produced degenerate sequence (%d/%d succeeded)", ok, len(a))
	}
}
