package fault

// Membership churn under the injector: a durable 4-site view cluster
// joins a 5th site and migrates replicas onto it while every dial
// involving one site carries an injected latency spike. The destination
// of an in-flight copy is killed for real mid-migration — listener dead,
// WAL abandoned without a flush — then restarted from its data
// directory. The restarted node must replay to the exact acknowledged
// state, the journaled plan must resume and converge, the resumed
// remainder's transfer cost must equal its a-priori diff, and the driven
// measurement period afterwards must match the restricted solver's
// eq. 4 cost exactly.

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"drp/internal/core"
	"drp/internal/membership"
	"drp/internal/netnode"
	"drp/internal/netsim"
	"drp/internal/plan"
	"drp/internal/sra"
	"drp/internal/store"
)

// churnProblem builds the 5-site universe used by the membership chaos
// scenario: primaries confined to sites 0..3 so the cluster boots on
// four members, read-heavy demand so the solver replicates widely.
func churnProblem(t *testing.T) *core.Problem {
	t.Helper()
	topo := netsim.NewTopology(5)
	for _, l := range [][3]int64{{0, 1, 2}, {1, 2, 1}, {2, 3, 2}, {3, 4, 1}} {
		if err := topo.AddLink(int(l[0]), int(l[1]), l[2]); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(core.Config{
		Sizes:      []int64{4, 3, 2, 5},
		Capacities: []int64{14, 14, 14, 14, 14},
		Primaries:  []int{0, 1, 2, 3},
		Reads: [][]int64{
			{36, 8, 4, 0},
			{12, 32, 8, 4},
			{4, 12, 28, 8},
			{0, 4, 12, 36},
			{24, 4, 8, 28},
		},
		Writes: [][]int64{
			{2, 0, 1, 0},
			{0, 2, 0, 1},
			{1, 0, 2, 0},
			{0, 1, 0, 2},
			{1, 0, 1, 1},
		},
		Dist: dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// churnSolve solves the view-restricted problem and lifts the scheme.
func churnSolve(t *testing.T, p *core.Problem, members []int, epoch int) (*plan.Plan, int64) {
	t.Helper()
	view := membership.View{Epoch: epoch, Members: members}
	sub := netsim.NewDistMatrix(len(members))
	for a, i := range members {
		for b, j := range members {
			sub.Set(a, b, p.Cost(i, j))
		}
	}
	prim := make([]int, p.Objects())
	for k := range prim {
		prim[k] = p.Primary(k)
	}
	rp, err := plan.Restrict(p, view, prim, sub)
	if err != nil {
		t.Fatal(err)
	}
	res := sra.Run(rp, sra.Options{})
	pl := plan.Lift(view, res.Scheme)
	pl.Epoch = epoch
	return pl, res.Scheme.Cost()
}

// holdingsPlan reconstructs what the members actually hold — the same
// a-priori basis ResumeMigration diffs from.
func holdingsPlan(p *core.Problem, c *netnode.Cluster) *plan.Plan {
	members := c.Members()
	pl := &plan.Plan{
		View:      membership.View{Members: members},
		Primaries: make([]int, p.Objects()),
		Placement: make([][]int, p.Objects()),
	}
	for k := 0; k < p.Objects(); k++ {
		pl.Primaries[k] = p.Primary(k)
		for _, m := range members {
			if c.Node(m).Holds(k) {
				pl.Placement[k] = append(pl.Placement[k], m)
			}
		}
	}
	return pl
}

func TestMembershipChurnKillMidMigration(t *testing.T) {
	p := churnProblem(t)
	root := t.TempDir()
	pcost := func(i, j int) int64 { return p.Cost(i, j) }

	c, err := netnode.StartDurableView(p, root, store.Options{Sync: store.SyncNever}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	j, err := store.OpenJournal(filepath.Join(root, "coord"), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	c.AttachJournal(j)

	// Every dial involving site 2 rides a 1ms latency spike for the whole
	// run — churn happens under degraded, not pristine, conditions.
	fp := Plan{Seed: 7, Events: []Event{{Kind: KindLatency, Site: 2, Step: 0, DelayMS: 1}}}
	if err := fp.Validate(p.Sites()); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(fp)
	Attach(c, in)
	c.SetRetry(netnode.RetryPolicy{Attempts: 3, Base: 200 * time.Microsecond, Cap: time.Millisecond, Jitter: 0.5})
	c.SetRequestTimeout(2 * time.Second)

	pl4, _ := churnSolve(t, p, []int{0, 1, 2, 3}, 1)
	if _, err := c.ApplyPlan(pl4, pcost); err != nil {
		t.Fatal(err)
	}

	// Site 4 joins; its node must route through the injector too.
	node4, err := c.Join(4, pcost)
	if err != nil {
		t.Fatal(err)
	}
	in.Register(4, node4.Addr())
	node4.SetDialer(in.DialerFor(4))

	target, targetCost := churnSolve(t, p, []int{0, 1, 2, 3, 4}, 2)
	steps, err := plan.Diff(c.Plan(), target, p, pcost)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 2 {
		t.Fatalf("migration too small to interrupt: %d steps", len(steps))
	}

	// Kill the destination of the second copy right before the copy
	// lands — the SIGKILL-equivalent: listener gone, WAL unflushed.
	var killed []byte
	victim := -1
	stepIdx := 0
	c.SetStepHook(func(s plan.Step) {
		if stepIdx == 1 && s.Kind == plan.Copy {
			victim = s.Site
			if err := c.Node(victim).Kill(); err != nil {
				t.Errorf("kill: %v", err)
			}
			killed = c.Node(victim).Store().EncodeState()
		}
		stepIdx++
	})
	rep1, err := c.ApplyPlan(target, pcost)
	c.SetStepHook(nil)
	if err == nil {
		t.Fatal("migration survived a killed copy destination")
	}
	if victim < 0 {
		t.Fatal("kill hook never fired")
	}

	// Restart the victim from its WAL: byte-identical acknowledged state.
	node, err := c.RestartNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if got := node.Store().EncodeState(); !bytes.Equal(got, killed) {
		t.Fatalf("victim %d replayed to different state:\n  %s\n  %s", victim, killed, got)
	}
	in.Register(victim, node.Addr())
	node.SetDialer(in.DialerFor(victim))

	// Resume from the journaled plan: the remainder is the diff against
	// the actual holdings, executed exactly once.
	remainder, err := plan.Diff(holdingsPlan(p, c), target, p, pcost)
	if err != nil {
		t.Fatal(err)
	}
	rep2, resumed, err := c.ResumeMigration(pcost)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("journaled plan not resumed")
	}
	if rep2.Completed != rep2.Steps || rep2.Steps != len(remainder) {
		t.Fatalf("resume ran %d/%d steps, remainder diff had %d", rep2.Completed, rep2.Steps, len(remainder))
	}
	if want := plan.TotalCost(remainder); rep2.MigrationNTC != want {
		t.Fatalf("resume NTC %d, a-priori remainder cost %d", rep2.MigrationNTC, want)
	}
	if total, apriori := rep1.MigrationNTC+rep2.MigrationNTC, plan.TotalCost(steps); total > apriori {
		t.Fatalf("crash+resume moved %d units of cost, full migration costs %d", total, apriori)
	}

	// Plan version converged: the deployed plan is the journaled target.
	if !c.Plan().Equal(target) {
		t.Fatal("deployed plan did not converge to the journaled target")
	}
	for k := 0; k < p.Objects(); k++ {
		for _, m := range c.Members() {
			if c.Node(m).Holds(k) != target.Has(m, k) {
				t.Fatalf("site %d holds(%d)=%v, target says %v", m, k, c.Node(m).Holds(k), target.Has(m, k))
			}
		}
	}

	// The measurement period under the converged plan accounts exactly
	// the restricted solver's eq. 4 cost — latency spikes delay, but
	// never re-route or re-price, the traffic.
	got, err := c.DriveTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if got != targetCost {
		t.Fatalf("post-churn driven NTC %d, solver cost %d", got, targetCost)
	}
}
