// Package sra implements the Static Replication Algorithm of Section 3: a
// greedy heuristic that repeatedly visits sites and replicates the object
// with the highest replication benefit per storage unit (eq. 5), updating
// the nearest-replica tables after every placement.
//
// The pruning rule relies on a monotonicity property of the benefit value:
// as replicas are added elsewhere, a site's nearest-replica distances only
// shrink and its free capacity only shrinks, so once an object's benefit is
// non-positive — or the object no longer fits — it can be removed from the
// site's candidate list permanently.
package sra

import (
	"time"

	"drp/internal/core"
	"drp/internal/solver"
	"drp/internal/xrand"
)

// Options tunes the site-visit order. The paper's SRA picks sites
// round-robin; the GRA seeds its population with SRA runs that pick sites
// uniformly at random for diversity.
type Options struct {
	// RandomOrder picks the next site uniformly from the remaining
	// candidates instead of round-robin. Requires RNG.
	RandomOrder bool
	// RNG drives random site picks. Ignored unless RandomOrder is set.
	RNG *xrand.Source
	// Run carries the anytime controls (context, deadline, budget,
	// observer). SRA's budget unit is benefit scans — the greedy never
	// builds full cost evaluations — and interruption is checked at
	// site-visit boundaries; the zero value runs open-loop.
	Run solver.Run
}

// Result carries the scheme SRA produced plus run accounting.
type Result struct {
	Scheme *core.Scheme
	// Placements is the number of replicas created beyond the primaries.
	Placements int
	// Scans counts benefit evaluations, the algorithm's unit of work
	// (mirrors Stats.Evaluations).
	Scans int
	// Elapsed is the wall-clock duration of the run (mirrors
	// Stats.Elapsed).
	Elapsed time.Duration
	// Stats is the solver-runtime accounting: Evaluations counts benefit
	// scans, Iterations counts site visits, and Stopped tells whether the
	// greedy ran to exhaustion or was interrupted. An interrupted run still
	// returns a valid scheme — every placement is applied incrementally.
	Stats solver.Stats
}

// Run executes SRA on p and returns the resulting scheme. Interruption via
// opts.Run is checked once per site visit, before the visit draws any
// randomness, so an uninterrupted run is bit-identical to one without
// controls.
func Run(p *core.Problem, opts Options) *Result {
	c := solver.Start("sra", opts.Run)
	scheme := core.NewScheme(p)
	nearest := core.NewNearestTable(scheme)

	m, n := p.Sites(), p.Objects()

	// candidates[i] is L(i): objects that may still be worth replicating at
	// site i. Objects already present (primaries) are excluded up front.
	candidates := make([][]int, m)
	for i := 0; i < m; i++ {
		list := make([]int, 0, n)
		for k := 0; k < n; k++ {
			if p.Primary(k) != i {
				list = append(list, k)
			}
		}
		candidates[i] = list
	}
	// active is LS: sites with a non-empty candidate list.
	active := make([]int, 0, m)
	for i := 0; i < m; i++ {
		if len(candidates[i]) > 0 {
			active = append(active, i)
		}
	}

	res := &Result{}
	stop := solver.StopCompleted
	visits := 0
	cursor := 0
	for len(active) > 0 {
		if reason, halt := c.Check(); halt {
			stop = reason
			break
		}
		var idx int
		if opts.RandomOrder {
			idx = opts.RNG.Intn(len(active))
		} else {
			idx = cursor % len(active)
		}
		site := active[idx]

		before := res.Scans
		bestObj, _ := scanSite(p, scheme, nearest, candidates, site, res)
		c.Charge(res.Scans - before)
		visits++

		if bestObj >= 0 {
			// Replicate the winner and prune it from this site's list.
			if err := scheme.Add(site, bestObj); err != nil {
				// scanSite only nominates objects that fit, so this is a
				// programming error worth surfacing loudly.
				panic("sra: placement rejected: " + err.Error())
			}
			nearest.Add(site, bestObj)
			removeCandidate(candidates, site, bestObj)
			res.Placements++
		}

		if len(candidates[site]) == 0 {
			active[idx] = active[len(active)-1]
			active = active[:len(active)-1]
			// Round-robin continues from the same position, which now holds
			// the next site.
		} else if !opts.RandomOrder {
			cursor = idx + 1
		}
		c.Observe(visits, 0, 0, 0)
	}

	res.Scheme = scheme
	res.Stats = c.Finish(visits, stop)
	res.Elapsed = res.Stats.Elapsed
	return res
}

// scanSite computes B_k(site) for every candidate, pruning dead entries
// (non-positive benefit or no longer fitting), and returns the best
// strictly-positive-benefit object that fits, or -1.
func scanSite(p *core.Problem, scheme *core.Scheme, nearest *core.NearestTable, candidates [][]int, site int, res *Result) (int, float64) {
	list := candidates[site]
	free := scheme.Free(site)
	bestObj := -1
	bestBenefit := 0.0
	w := 0
	for _, k := range list {
		res.Scans++
		fits := p.Size(k) <= free
		benefit := p.Benefit(site, k, nearest.Dist(site, k))
		if benefit <= 0 || !fits {
			// Benefits only decrease and free capacity only shrinks as the
			// run progresses, so this entry can never become viable: drop it.
			continue
		}
		list[w] = k
		w++
		if benefit > bestBenefit {
			bestBenefit = benefit
			bestObj = k
		}
	}
	candidates[site] = list[:w]
	return bestObj, bestBenefit
}

func removeCandidate(candidates [][]int, site, obj int) {
	list := candidates[site]
	for i, k := range list {
		if k == obj {
			list[i] = list[len(list)-1]
			candidates[site] = list[:len(list)-1]
			return
		}
	}
}
