package sra

import (
	"testing"
)

func TestDistributedMatchesCentralized(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		p := gen(t, 12, 18, 0.05, 0.15, seed)
		central := Run(p, Options{})
		dist := RunDistributed(p)
		if !dist.Scheme.Equal(central.Scheme) {
			t.Fatalf("seed %d: distributed scheme differs from centralized", seed)
		}
		if dist.Placements != central.Placements {
			t.Fatalf("seed %d: placements %d != %d", seed, dist.Placements, central.Placements)
		}
	}
}

func TestDistributedMessageAccounting(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 3)
	res := RunDistributed(p)
	// Every round is a token + a nomination; every placement adds a
	// broadcast and acks (2·M messages).
	want := 2*res.Rounds + 2*p.Sites()*res.Placements
	if res.Messages != want {
		t.Fatalf("messages = %d, want %d (rounds=%d placements=%d)", res.Messages, want, res.Rounds, res.Placements)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestDistributedValidScheme(t *testing.T) {
	p := gen(t, 15, 20, 0.10, 0.10, 4)
	res := RunDistributed(p)
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("invalid scheme: %v", err)
	}
}

func TestDistributedWriteHeavyPlacesNothing(t *testing.T) {
	p := gen(t, 8, 10, 3.0, 0.15, 5)
	res := RunDistributed(p)
	if res.Placements != 0 {
		// With updates at 300% of reads replication can still occasionally
		// pay off; what matters is consistency with the centralized run.
		central := Run(p, Options{})
		if res.Placements != central.Placements {
			t.Fatalf("distributed placed %d, centralized %d", res.Placements, central.Placements)
		}
	}
}

func TestDistributedSingleSite(t *testing.T) {
	p := gen(t, 1, 5, 0.05, 0.15, 6)
	res := RunDistributed(p)
	if res.Placements != 0 {
		t.Fatalf("single site placed %d replicas", res.Placements)
	}
}
