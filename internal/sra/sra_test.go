package sra

import (
	"testing"

	"drp/internal/baseline"
	"drp/internal/core"
	"drp/internal/workload"
	"drp/internal/xrand"
)

func gen(t *testing.T, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunProducesValidScheme(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		p := gen(t, 15, 25, 0.05, 0.15, seed)
		res := Run(p, Options{})
		if err := res.Scheme.Validate(); err != nil {
			t.Fatalf("seed %d: invalid scheme: %v", seed, err)
		}
		if res.Placements != res.Scheme.TotalReplicas() {
			t.Fatalf("seed %d: placements %d != replicas %d", seed, res.Placements, res.Scheme.TotalReplicas())
		}
	}
}

func TestRunNeverWorseThanNoReplication(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		p := gen(t, 12, 20, 0.10, 0.15, seed)
		res := Run(p, Options{})
		if res.Scheme.Cost() > p.DPrime() {
			t.Fatalf("seed %d: SRA cost %d worse than no replication %d", seed, res.Scheme.Cost(), p.DPrime())
		}
	}
}

func TestRunSavesOnReadHeavyWorkload(t *testing.T) {
	// With a 2% update ratio SRA should find substantial savings.
	p := gen(t, 20, 30, 0.02, 0.20, 3)
	res := Run(p, Options{})
	if sv := res.Scheme.Savings(); sv < 20 {
		t.Fatalf("read-heavy savings = %v%%, want ≥ 20%%", sv)
	}
}

func TestRunDeterministicRoundRobin(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 4)
	a := Run(p, Options{})
	b := Run(p, Options{})
	if !a.Scheme.Equal(b.Scheme) {
		t.Fatal("round-robin SRA is not deterministic")
	}
}

func TestRandomOrderStillValid(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 5)
	seen := make(map[int64]bool)
	for s := uint64(0); s < 5; s++ {
		res := Run(p, Options{RandomOrder: true, RNG: xrand.New(s)})
		if err := res.Scheme.Validate(); err != nil {
			t.Fatalf("random-order scheme invalid: %v", err)
		}
		if res.Scheme.Cost() > p.DPrime() {
			t.Fatal("random-order SRA worse than no replication")
		}
		seen[res.Scheme.Cost()] = true
	}
	if len(seen) < 2 {
		t.Log("note: all random orders converged to the same cost (possible but unusual)")
	}
}

func TestEveryPlacementHadPositiveBenefit(t *testing.T) {
	// Remove any single non-primary replica: with zero-update workloads the
	// cost must strictly increase, because SRA only places replicas with
	// positive benefit and reads-only benefits are exactly the cost drop.
	p := gen(t, 10, 12, 0.0, 0.15, 6)
	res := Run(p, Options{})
	base := res.Scheme.Cost()
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			if !res.Scheme.Has(i, k) || p.Primary(k) == i {
				continue
			}
			mod := res.Scheme.Clone()
			if err := mod.Remove(i, k); err != nil {
				t.Fatal(err)
			}
			if mod.Cost() <= base {
				t.Fatalf("removing replica (%d,%d) did not increase cost: %d <= %d", i, k, mod.Cost(), base)
			}
		}
	}
}

func TestWriteHeavyWorkloadReplicatesLittle(t *testing.T) {
	// Crank updates high enough and replication stops paying: SRA should
	// create far fewer replicas than on the read-heavy version of the same
	// network.
	readHeavy := gen(t, 15, 20, 0.01, 0.20, 7)
	writeHeavy := gen(t, 15, 20, 1.0, 0.20, 7)
	r1 := Run(readHeavy, Options{})
	r2 := Run(writeHeavy, Options{})
	if r2.Placements >= r1.Placements {
		t.Fatalf("write-heavy placements %d ≥ read-heavy %d", r2.Placements, r1.Placements)
	}
}

func TestNearOptimalOnTinyReadHeavyInstance(t *testing.T) {
	// On tiny instances with no writes, compare against the exhaustive
	// optimum: the greedy must land within 10% of it.
	p := gen(t, 3, 4, 0.0, 0.6, 8)
	opt, err := baseline.Optimal(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, Options{})
	optCost, sraCost := opt.Cost(), res.Scheme.Cost()
	if optCost == 0 {
		if sraCost != 0 {
			t.Fatalf("optimal is 0 but SRA is %d", sraCost)
		}
		return
	}
	if float64(sraCost) > 1.10*float64(optCost) {
		t.Fatalf("SRA cost %d more than 10%% above optimal %d", sraCost, optCost)
	}
}

func TestScansAccounting(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 9)
	res := Run(p, Options{})
	if res.Scans <= 0 {
		t.Fatal("no benefit scans recorded")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestSingleSiteNoWork(t *testing.T) {
	p := gen(t, 1, 5, 0.05, 0.15, 10)
	res := Run(p, Options{})
	if res.Placements != 0 {
		t.Fatalf("single site placed %d replicas", res.Placements)
	}
}
