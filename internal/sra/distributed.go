package sra

import (
	"time"

	"drp/internal/core"
)

// This file implements the distributed version of SRA sketched at the end
// of Section 3: the candidate lists L(i) live at their sites, the site list
// LS at an elected leader. The leader circulates a token; the token holder
// scans its local candidates against its local nearest-replica row and
// nominates the best object, which the leader announces to every site so
// they can update their SN fields — a broadcast per placement, exactly the
// message the paper's step (11) requires.
//
// Every site runs as a goroutine exchanging typed messages over channels.
// The computation is deterministic and produces the same scheme as the
// centralized Run (the protocol serialises the same decision sequence);
// the value of the exercise is the message accounting and the demonstration
// that only O(M) protocol messages per placement are needed.

// DistResult reports the outcome of the distributed protocol.
type DistResult struct {
	Scheme *core.Scheme
	// Placements is the number of replicas created beyond the primaries.
	Placements int
	// Messages counts protocol messages: token passes, nominations,
	// broadcast updates and acknowledgements.
	Messages int
	// Rounds counts token circulations.
	Rounds  int
	Elapsed time.Duration
}

// message types exchanged between leader and sites.
type (
	// tokenMsg asks a site to scan its candidates and nominate.
	tokenMsg struct {
		reply chan nomination
	}
	// nomination is the site's answer: its best candidate, if any, and
	// whether its candidate list still has entries.
	nomination struct {
		object    int // -1 if none viable this round
		listEmpty bool
	}
	// updateMsg announces a placement so sites refresh their SN rows.
	updateMsg struct {
		site, object int
		ack          chan struct{}
	}
	// stopMsg shuts a site down.
	stopMsg struct{}
)

// RunDistributed executes the token-passing SRA and returns the scheme
// along with message accounting. The round-robin site order matches the
// centralized algorithm, and so does the resulting scheme.
func RunDistributed(p *core.Problem) *DistResult {
	start := time.Now()
	m := p.Sites()

	inboxes := make([]chan interface{}, m)
	for i := range inboxes {
		inboxes[i] = make(chan interface{})
		go siteLoop(p, i, inboxes[i])
	}

	res := &DistResult{}
	scheme := core.NewScheme(p)

	active := make([]int, 0, m)
	for i := 0; i < m; i++ {
		if p.Objects() > 0 {
			active = append(active, i)
		}
	}
	cursor := 0
	for len(active) > 0 {
		idx := cursor % len(active)
		site := active[idx]
		res.Rounds++

		// Token to the site; it nominates its best local candidate.
		reply := make(chan nomination)
		inboxes[site] <- tokenMsg{reply: reply}
		res.Messages++ // token
		nom := <-reply
		res.Messages++ // nomination

		if nom.object >= 0 {
			if err := scheme.Add(site, nom.object); err != nil {
				panic("sra: distributed placement rejected: " + err.Error())
			}
			res.Placements++
			// Broadcast the new replica so every site updates SN.
			ack := make(chan struct{})
			for j := 0; j < m; j++ {
				inboxes[j] <- updateMsg{site: site, object: nom.object, ack: ack}
			}
			for j := 0; j < m; j++ {
				<-ack
			}
			res.Messages += 2 * m // updates + acks
		}

		if nom.listEmpty {
			active[idx] = active[len(active)-1]
			active = active[:len(active)-1]
		} else {
			cursor = idx + 1
		}
	}
	for i := 0; i < m; i++ {
		inboxes[i] <- stopMsg{}
	}

	res.Scheme = scheme
	res.Elapsed = time.Since(start)
	return res
}

// siteLoop is one site's protocol handler: it owns the site's candidate
// list, free capacity and nearest-replica distance row.
func siteLoop(p *core.Problem, site int, inbox chan interface{}) {
	n := p.Objects()
	free := p.Capacity(site)
	// Local SN row: distance to the nearest replica of each object. Only
	// primaries exist at start.
	snDist := make([]int64, n)
	for k := 0; k < n; k++ {
		snDist[k] = p.Cost(site, p.Primary(k))
		if p.Primary(k) == site {
			free -= p.Size(k)
		}
	}
	candidates := make([]int, 0, n)
	for k := 0; k < n; k++ {
		if p.Primary(k) != site {
			candidates = append(candidates, k)
		}
	}

	for raw := range inbox {
		switch msg := raw.(type) {
		case tokenMsg:
			bestObj, bestBenefit := -1, 0.0
			w := 0
			for _, k := range candidates {
				benefit := p.Benefit(site, k, snDist[k])
				if benefit <= 0 || p.Size(k) > free {
					continue // prune permanently (benefit and capacity are monotone)
				}
				candidates[w] = k
				w++
				if benefit > bestBenefit {
					bestBenefit, bestObj = benefit, k
				}
			}
			candidates = candidates[:w]
			if bestObj >= 0 {
				// The nomination is accepted unconditionally by the leader,
				// so account for it locally right away.
				free -= p.Size(bestObj)
				candidates = remove(candidates, bestObj)
				snDist[bestObj] = 0
			}
			msg.reply <- nomination{object: bestObj, listEmpty: len(candidates) == 0}

		case updateMsg:
			if d := p.Cost(site, msg.site); d < snDist[msg.object] {
				snDist[msg.object] = d
			}
			msg.ack <- struct{}{}

		case stopMsg:
			return
		}
	}
}

func remove(list []int, v int) []int {
	for i, x := range list {
		if x == v {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}
