package sra

import (
	"context"
	"testing"

	"drp/internal/solver"
)

func TestPreCancelledRunReturnsValidPartialScheme(t *testing.T) {
	p := gen(t, 10, 15, 0.02, 0.2, 31)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(p, Options{Run: solver.Run{Context: ctx}})
	if res.Stats.Stopped != solver.StopCancelled {
		t.Fatalf("stopped %v, want cancelled", res.Stats.Stopped)
	}
	if res.Placements != 0 || res.Stats.Iterations != 0 {
		t.Fatalf("pre-cancelled run placed %d replicas over %d visits", res.Placements, res.Stats.Iterations)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("interrupted scheme invalid: %v", err)
	}
	if res.Scheme.TotalReplicas() != 0 {
		t.Fatal("pre-cancelled run should return primaries-only")
	}
}

func TestBudgetTruncatesGreedy(t *testing.T) {
	p := gen(t, 10, 15, 0.02, 0.2, 32)
	full := Run(p, Options{})
	res := Run(p, Options{Run: solver.Run{Budget: 1}})
	if res.Stats.Stopped != solver.StopBudget {
		t.Fatalf("stopped %v, want budget", res.Stats.Stopped)
	}
	// The budget is soft: the first visit completes, then the run stops.
	if res.Stats.Iterations != 1 {
		t.Fatalf("%d visits under a 1-scan budget, want 1", res.Stats.Iterations)
	}
	if res.Placements >= full.Placements {
		t.Fatalf("truncated run placed %d replicas, full run %d", res.Placements, full.Placements)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("interrupted scheme invalid: %v", err)
	}
}

func TestUnfiredControlsMatchOpenLoop(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 33)
	plain := Run(p, Options{})
	controlled := Run(p, Options{Run: solver.Run{Budget: 1 << 30}})
	if controlled.Stats.Stopped != solver.StopCompleted {
		t.Fatalf("stopped %v", controlled.Stats.Stopped)
	}
	if !plain.Scheme.Equal(controlled.Scheme) {
		t.Fatal("schemes differ under unfired controls")
	}
	if plain.Scans != controlled.Scans || plain.Placements != controlled.Placements {
		t.Fatal("accounting differs under unfired controls")
	}
}

func TestStatsMirrorsLegacyFields(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 34)
	res := Run(p, Options{})
	if res.Stats.Evaluations != res.Scans {
		t.Fatalf("Stats.Evaluations %d != Scans %d", res.Stats.Evaluations, res.Scans)
	}
	if res.Stats.Elapsed != res.Elapsed {
		t.Fatal("Stats.Elapsed != Elapsed")
	}
	if res.Stats.Iterations <= 0 {
		t.Fatal("no site visits recorded")
	}
}
