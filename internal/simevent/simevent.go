// Package simevent is a minimal discrete-event simulation kernel: a
// monotonic virtual clock and a time-ordered event queue. The cluster
// simulator schedules request arrivals, epoch boundaries and failures on
// it; nothing here knows about replication.
package simevent

import "container/heap"

// Scheduler runs events in non-decreasing time order. Events scheduled at
// equal times run in scheduling order (stable). The zero value is unusable;
// use New.
type Scheduler struct {
	now   int64
	queue eventHeap
	seq   uint64
}

// New returns an empty scheduler starting at virtual time 0.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() int64 { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past (t <
// Now) panics: discrete-event time is monotonic and such a call is always a
// simulation bug.
func (s *Scheduler) At(t int64, fn func()) {
	if t < s.now {
		panic("simevent: scheduling into the past")
	}
	s.seq++
	heap.Push(&s.queue, item{at: t, seq: s.seq, fn: fn})
}

// After schedules fn delay units after the current time.
func (s *Scheduler) After(delay int64, fn func()) {
	if delay < 0 {
		panic("simevent: negative delay")
	}
	s.At(s.now+delay, fn)
}

// Step runs the next pending event, advancing the clock to its time.
// Returns false if no events remain.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := heap.Pop(&s.queue).(item)
	s.now = it.at
	it.fn()
	return true
}

// Run drains the queue (events may schedule further events).
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil processes events with time ≤ deadline, then advances the clock
// to the deadline.
func (s *Scheduler) RunUntil(deadline int64) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

type item struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
