package simevent

import (
	"testing"
)

func TestRunsInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
}

func TestEqualTimesAreFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	s := New()
	var fired []int64
	s.At(1, func() {
		fired = append(fired, s.Now())
		s.After(4, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 5 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for _, at := range []int64{1, 5, 9, 15} {
		s.At(at, func() { count++ })
	}
	s.RunUntil(9)
	if count != 3 {
		t.Fatalf("%d events ran, want 3", count)
	}
	if s.Now() != 9 {
		t.Fatalf("Now = %d, want 9", s.Now())
	}
	s.RunUntil(20)
	if count != 4 || s.Now() != 20 {
		t.Fatalf("after drain: count=%d Now=%d", count, s.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	s.At(1, func() {})
	if !s.Step() || s.Step() {
		t.Fatal("Step sequence broken")
	}
}

func TestLen(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatal("fresh scheduler not empty")
	}
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}
