package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"drp/internal/metrics"
)

// primariesRR spreads n objects round-robin over m sites.
func primariesRR(m, n int) []int {
	p := make([]int, n)
	for k := range p {
		p[k] = k % m
	}
	return p
}

// driveOps applies a fixed mutation history exercising every opcode.
func driveOps(t *testing.T, s *Store) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Place(1, 3))
	must(s.Place(2, 0))
	if _, err := s.BumpVersion(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BumpVersion(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AdoptVersion(1, 7); err != nil {
		t.Fatal(err)
	}
	must(s.MarkStale(0, []int{2, 4}))
	must(s.ClearStale(0, 4))
	must(s.Queue(3))
	must(s.Queue(3))
	must(s.Dequeue(3))
	must(s.AddNTC(123))
	must(s.AddNTC(77))
	must(s.SetNearest(2, 4))
	must(s.SetReplicas(2, []int{0, 4, 1}))
	must(s.SetRegistry(0, []int{0, 2, 3}))
	must(s.SetPrimary(0, 2))
	must(s.SetPrimary(3, 1))
	must(s.Drop(2))
}

func TestMemoryBootstrap(t *testing.T) {
	s := Memory(1, primariesRR(3, 6)) // objects 1, 4 primaried at site 1
	for k := 0; k < 6; k++ {
		wantHold := k%3 == 1
		if s.Holds(k) != wantHold {
			t.Errorf("holds(%d) = %v, want %v", k, s.Holds(k), wantHold)
		}
		if got, want := s.Nearest(k), k%3; got != want {
			t.Errorf("nearest(%d) = %d, want %d", k, got, want)
		}
	}
	if got := s.Registry(4); len(got) != 1 || got[0] != 1 {
		t.Errorf("registry(4) = %v, want [1]", got)
	}
	if s.Recovered() {
		t.Error("fresh memory store claims to be recovered")
	}
}

// TestReplayReconstructsState is the heart of the engine: a store killed
// without any shutdown courtesy recovers byte-identical state from its
// directory alone.
func TestReplayReconstructsState(t *testing.T) {
	dir := t.TempDir()
	prim := primariesRR(5, 8)
	s, err := Open(dir, 0, prim, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, s)
	want := s.EncodeState()
	if err := s.Crash(); err != nil { // no fsync, no snapshot, no goodbye
		t.Fatal(err)
	}

	r, err := Open(dir, 0, prim, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Recovered() {
		t.Fatal("reopened store does not report recovery")
	}
	if got := r.EncodeState(); !bytes.Equal(got, want) {
		t.Errorf("recovered state differs:\n got %s\nwant %s", got, want)
	}
}

// TestReplayIsDeterministic pins byte-identical logs and states for the
// same operation history.
func TestReplayIsDeterministic(t *testing.T) {
	prim := primariesRR(5, 8)
	var logs [2][]byte
	var states [2][]byte
	for i := range logs {
		dir := t.TempDir()
		s, err := Open(dir, 2, prim, Options{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		driveOps(t, s)
		states[i] = s.EncodeState()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(walPath(dir, 1))
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = data
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Error("identical histories produced different WAL bytes")
	}
	if !bytes.Equal(states[0], states[1]) {
		t.Error("identical histories produced different states")
	}
}

// TestSnapshotTruncatesAndRecovers drives the snapshot protocol and checks
// both the on-disk rotation and recovery from the rotated layout.
func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	prim := primariesRR(4, 6)
	s, err := Open(dir, 1, prim, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, s)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Steady state after one snapshot: snap-1 + empty wal-2.
	if _, err := os.Stat(snapPath(dir, 1)); err != nil {
		t.Fatalf("snap-1 missing: %v", err)
	}
	if _, err := os.Stat(walPath(dir, 1)); !os.IsNotExist(err) {
		t.Error("wal-1 survived the snapshot truncation")
	}
	if err := s.AddNTC(5); err != nil { // post-snapshot delta lands in wal-2
		t.Fatal(err)
	}
	want := s.EncodeState()
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, 1, prim, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.EncodeState(); !bytes.Equal(got, want) {
		t.Errorf("post-snapshot recovery differs:\n got %s\nwant %s", got, want)
	}
}

// TestAutoSnapshotEvery checks SnapshotEvery rotates without being asked.
func TestAutoSnapshotEvery(t *testing.T) {
	dir := t.TempDir()
	prim := primariesRR(3, 4)
	s, err := Open(dir, 0, prim, Options{Sync: SyncNever, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := s.AddNTC(1); err != nil {
			t.Fatal(err)
		}
	}
	want := s.EncodeState()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wals, snaps, err := scanSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || len(wals) != 1 {
		t.Fatalf("expected exactly one snapshot and one wal after rotation, got snaps %v wals %v", snaps, wals)
	}
	r, err := Open(dir, 0, prim, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.EncodeState(); !bytes.Equal(got, want) {
		t.Error("auto-snapshot recovery diverged")
	}
}

// TestCorruptTailRecoversPrefix flips bytes at the end of the log: replay
// must keep every record before the damage and truncate the rest.
func TestCorruptTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	prim := primariesRR(4, 6)
	s, err := Open(dir, 0, prim, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	// Prefix history, capture, then a suffix that will be corrupted away.
	if err := s.AddNTC(11); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(1, 9); err != nil {
		t.Fatal(err)
	}
	prefix := s.EncodeState()
	if err := s.AddNTC(1000); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := walPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff // damage the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, 0, prim, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.EncodeState(); !bytes.Equal(got, prefix) {
		t.Errorf("corrupt tail did not recover the prefix:\n got %s\nwant %s", got, prefix)
	}
	// The truncation must be physical: appending now and reopening again
	// must not resurrect the damaged record.
	if err := r.AddNTC(2); err != nil {
		t.Fatal(err)
	}
	want := r.EncodeState()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, 0, prim, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.EncodeState(); !bytes.Equal(got, want) {
		t.Error("appends after tail truncation did not persist cleanly")
	}
}

// TestTornSnapshotFallsBack simulates a crash mid-snapshot: a torn snap
// file must be ignored in favour of the older snapshot + log replay.
func TestTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	prim := primariesRR(4, 6)
	s, err := Open(dir, 0, prim, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, s)
	want := s.EncodeState()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A half-written snap-1 (no valid frame) appears, as if the process
	// died inside the snapshot protocol before the WAL was retired.
	if err := os.WriteFile(snapPath(dir, 1), []byte("DRPSNAP1\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, 0, prim, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.EncodeState(); !bytes.Equal(got, want) {
		t.Error("torn snapshot was not ignored")
	}
}

func TestClosedStoreRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, primariesRR(2, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.AddNTC(1); err == nil {
		t.Fatal("mutation after Close succeeded")
	}
}

func TestStoreMetricsCount(t *testing.T) {
	reg := metrics.NewRegistry()
	dir := t.TempDir()
	prim := primariesRR(3, 4)
	s, err := Open(dir, 0, prim, Options{Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	driveOps(t, s)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	appends := reg.Counter("drp_store_appends_total", "", nil).Value()
	if appends == 0 {
		t.Error("no appends counted")
	}
	if reg.Counter("drp_store_fsyncs_total", "", nil).Value() == 0 {
		t.Error("no fsyncs counted under SyncAlways")
	}
	if reg.Counter("drp_store_snapshot_bytes_total", "", nil).Value() == 0 {
		t.Error("no snapshot bytes counted")
	}
	if reg.Counter("drp_store_truncations_total", "", nil).Value() == 0 {
		t.Error("no truncation counted for the retired segment")
	}

	// Reopen: every appended record is replayed and counted.
	r, err := Open(dir, 0, prim, Options{Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	replayed := reg.Counter("drp_store_replay_records_total", "", nil).Value()
	// Post-snapshot the segment is empty, so only records after it replay
	// (none here) — force some, crash, and reopen to see replay.
	if err := r.AddNTC(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, 0, prim, Options{Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := reg.Counter("drp_store_replay_records_total", "", nil).Value(); got != replayed+1 {
		t.Errorf("replay counter %d, want %d", got, replayed+1)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in     string
		policy SyncPolicy
		every  int
		ok     bool
	}{
		{"always", SyncAlways, 0, true},
		{"", SyncAlways, 0, true},
		{"never", SyncNever, 0, true},
		{"every:16", SyncInterval, 16, true},
		{"every:0", 0, 0, false},
		{"sometimes", 0, 0, false},
	}
	for _, c := range cases {
		p, n, err := ParseSyncPolicy(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseSyncPolicy(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (p != c.policy || n != c.every) {
			t.Errorf("ParseSyncPolicy(%q) = (%v,%d), want (%v,%d)", c.in, p, n, c.policy, c.every)
		}
	}
}

func TestJournalRecordRecoverCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{Sync: SyncAlways, SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := j.Latest(); ok {
		t.Fatal("fresh journal has a latest entry")
	}
	schemes := [][][]int{
		{{0}, {1, 2}},
		{{0, 1}, {1}},
		{{0, 2}, {1, 2}},
		{{2}, {0, 1, 2}},
	}
	for e, repl := range schemes {
		if err := j.Record(e, repl); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenJournal(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	epoch, repl, ok := r.Latest()
	if !ok || epoch != 3 {
		t.Fatalf("recovered epoch %d ok=%v, want 3", epoch, ok)
	}
	want := schemes[3]
	if len(repl) != len(want) {
		t.Fatalf("recovered %d objects, want %d", len(repl), len(want))
	}
	for k := range want {
		if len(repl[k]) != len(want[k]) {
			t.Fatalf("object %d replicators %v, want %v", k, repl[k], want[k])
		}
		for i := range want[k] {
			if repl[k][i] != want[k][i] {
				t.Fatalf("object %d replicators %v, want %v", k, repl[k], want[k])
			}
		}
	}
	// Compaction after 3 records: the log holds only the post-snapshot tail.
	data, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 256 {
		t.Errorf("journal log %d bytes after compaction; truncation did not happen", len(data))
	}
}
