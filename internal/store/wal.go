// Package store is the durable data plane under drp/internal/netnode: an
// append-only write-ahead log with CRC-framed records and replay-on-open,
// periodic full-state snapshots with log truncation, and the per-site
// replication state (replica holdings, primary-stamped versions, stale
// marks, queued writes, accounted NTC) materialised from them.
//
// Every state mutation appends one WAL record before the caller observes
// the new state, so a site killed at any instant recovers, by replaying
// its data directory, exactly the state it had acknowledged. Replay is
// deterministic: the recovered state is a pure function of the bootstrap
// parameters and the log bytes, and the same operation sequence produces
// byte-identical log files. A corrupted or torn log tail is truncated to
// the last whole record — recovery always yields a valid prefix of
// history and never panics (fuzz-backed by FuzzWALReplay).
//
// The same engine backs a pure in-memory mode (no directory), so the
// serving layer runs one code path whether or not durability is on.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// walMagic heads every log file; a file without it is rejected (it is not
// ours) rather than silently replayed as empty.
var walMagic = []byte("DRPWAL1\n")

// maxRecordBytes caps one record's payload. Frames claiming more are
// treated as corruption: replay stops and truncates there.
const maxRecordBytes = 1 << 24

// frameHeaderLen is payload length (uint32) plus CRC32 (uint32).
const frameHeaderLen = 8

// SyncPolicy says when appends reach the platters.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: nothing acknowledged is ever
	// lost, at one disk flush per record.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs every SyncEvery appends (and on snapshot/close):
	// a crash loses at most SyncEvery-1 acknowledged records to a power
	// failure, none to a process kill.
	SyncInterval
	// SyncNever leaves flushing to the OS entirely.
	SyncNever
)

// ParseSyncPolicy maps a CLI flag value onto a policy: "always", "never",
// or "every:N" for SyncInterval with N appends between flushes.
func ParseSyncPolicy(s string) (SyncPolicy, int, error) {
	switch s {
	case "always", "":
		return SyncAlways, 0, nil
	case "never":
		return SyncNever, 0, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "every:%d", &n); err == nil && n > 0 {
		return SyncInterval, n, nil
	}
	return 0, 0, fmt.Errorf(`store: bad fsync policy %q (want "always", "never" or "every:N")`, s)
}

// wal is one open log segment. All methods are called under the owning
// Store's lock.
type wal struct {
	f       *os.File
	path    string
	size    int64 // bytes of validated + appended frames (incl. magic)
	policy  SyncPolicy
	every   int
	unsynct int // appends since the last fsync
	obs     *instruments
}

// errCorruptRecord marks a payload the caller could not decode: replay
// treats it exactly like a CRC mismatch — the valid prefix ends before it.
var errCorruptRecord = errors.New("store: corrupt record payload")

// openWAL opens (or creates) the log at path, replays every whole record
// payload into apply, truncates any corrupt or torn tail, and leaves the
// file positioned for appending. apply is called once per valid record in
// log order; returning errCorruptRecord ends the valid prefix there, any
// other error aborts the open.
func openWAL(path string, policy SyncPolicy, every int, obs *instruments, apply func(payload []byte) error) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	w := &wal{f: f, path: path, policy: policy, every: every, obs: obs}
	valid, err := w.replay(apply)
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		// Torn or corrupt tail: cut the log back to the last whole record
		// so future appends extend a clean prefix.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate corrupt tail: %w", err)
		}
		if obs != nil {
			obs.truncations.Inc()
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek wal: %w", err)
	}
	w.size = valid
	return w, nil
}

// replay scans the log from the start, calling apply for each record whose
// frame checks out, and returns the byte offset of the end of the last
// valid record. Corruption is never an error — it just ends the valid
// prefix — but apply errors (state-level rejection) abort the open.
func (w *wal) replay(apply func(payload []byte) error) (int64, error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: seek wal: %w", err)
	}
	magic := make([]byte, len(walMagic))
	n, err := io.ReadFull(w.f, magic)
	if err != nil {
		if n == 0 {
			// Brand-new file: stamp the magic.
			if _, err := w.f.Write(walMagic); err != nil {
				return 0, fmt.Errorf("store: write wal magic: %w", err)
			}
			return int64(len(walMagic)), nil
		}
		// A file shorter than the magic is a torn header: truncate to zero
		// and restamp.
		if err := w.f.Truncate(0); err != nil {
			return 0, fmt.Errorf("store: reset torn wal header: %w", err)
		}
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			return 0, err
		}
		if _, err := w.f.Write(walMagic); err != nil {
			return 0, fmt.Errorf("store: write wal magic: %w", err)
		}
		return int64(len(walMagic)), nil
	}
	if string(magic) != string(walMagic) {
		return 0, fmt.Errorf("store: %s is not a drp wal (bad magic)", w.path)
	}
	valid := int64(len(walMagic))
	header := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(w.f, header); err != nil {
			return valid, nil // clean EOF or torn frame header: stop here
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordBytes {
			return valid, nil // absurd frame: treat as corruption
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(w.f, payload); err != nil {
			return valid, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return valid, nil // bit rot or torn write
		}
		if err := apply(payload); err != nil {
			if errors.Is(err, errCorruptRecord) {
				return valid, nil // framed but undecodable: treat as corruption
			}
			return 0, fmt.Errorf("store: replay: %w", err)
		}
		if w.obs != nil {
			w.obs.replayed.Inc()
		}
		valid += frameHeaderLen + int64(length)
	}
}

// append frames and writes one record payload, honouring the sync policy.
func (w *wal) append(payload []byte) error {
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	w.size += int64(len(frame))
	if w.obs != nil {
		w.obs.appends.Inc()
	}
	switch w.policy {
	case SyncAlways:
		return w.sync()
	case SyncInterval:
		w.unsynct++
		if w.unsynct >= w.every {
			return w.sync()
		}
	}
	return nil
}

func (w *wal) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	w.unsynct = 0
	if w.obs != nil {
		w.obs.fsyncs.Inc()
	}
	return nil
}

// close flushes (unless the policy is SyncNever) and closes the file.
func (w *wal) close() error {
	var errSync error
	if w.policy != SyncNever {
		errSync = w.sync()
	}
	errClose := w.f.Close()
	if errSync != nil {
		return errSync
	}
	return errClose
}

// abandon closes the file handle without flushing — the crash-stop path.
func (w *wal) abandon() error { return w.f.Close() }
