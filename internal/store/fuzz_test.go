package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedWAL produces a valid log with a handful of records, for the
// fuzzer to mangle.
func buildSeedWAL(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	s, err := Open(dir, 0, primariesRR(4, 6), Options{Sync: SyncNever})
	if err != nil {
		tb.Fatal(err)
	}
	for _, err := range []error{
		s.Place(1, 2),
		s.MarkStale(0, []int{1, 3}),
		s.AddNTC(41),
		s.Queue(2),
		s.SetReplicas(1, []int{0, 1, 2}),
		s.SetRegistry(0, []int{0, 3}),
		s.Drop(1),
	} {
		if err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(walPath(dir, 1))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes to the store's recovery path as a
// log file. Whatever the damage — truncated tails, flipped bits, random
// garbage — recovery must never panic, must produce a state (a valid
// prefix of whatever history the bytes encode), and must be idempotent:
// opening the already-truncated file again yields the identical state and
// appends still work.
func FuzzWALReplay(f *testing.F) {
	seed := buildSeedWAL(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])     // torn tail
	f.Add(seed[:len(walMagic)+4]) // torn frame header
	f.Add([]byte{})               // empty file
	f.Add([]byte("DRPWAL1\n"))    // magic only
	f.Add([]byte("not a wal at all"))
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0x40 // mid-log bit flip
	f.Add(corrupt)

	prim := primariesRR(4, 6)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := walPath(dir, 1)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, 0, prim, Options{Sync: SyncNever})
		if err != nil {
			// Only a non-WAL file (bad magic) may be rejected; that must
			// not leave the process in a weird state — just stop.
			return
		}
		state := s.EncodeState()
		if err := s.Crash(); err != nil {
			t.Fatal(err)
		}

		// Idempotence: recovery already truncated the damage away, so a
		// second recovery sees a fully valid log and the same state.
		r, err := Open(dir, 0, prim, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("second open after recovery failed: %v", err)
		}
		if got := r.EncodeState(); !bytes.Equal(got, state) {
			t.Fatalf("recovery not idempotent:\n first %s\nsecond %s", state, got)
		}
		// The recovered prefix must accept appends and survive them.
		if err := r.AddNTC(1); err != nil {
			t.Fatal(err)
		}
		want := r.EncodeState()
		if err := r.Crash(); err != nil {
			t.Fatal(err)
		}
		r2, err := Open(dir, 0, prim, Options{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer r2.Close()
		if got := r2.EncodeState(); !bytes.Equal(got, want) {
			t.Fatalf("append after recovery lost:\n got %s\nwant %s", got, want)
		}
	})
}

// FuzzJournalReplay gives the coordinator journal the same treatment.
func FuzzJournalReplay(f *testing.F) {
	dir := f.TempDir()
	j, err := OpenJournal(dir, Options{Sync: SyncNever})
	if err != nil {
		f.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		if err := j.Record(e, [][]int{{0, e}, {1}}); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		jdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(jdir, "journal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(jdir, Options{Sync: SyncNever})
		if err != nil {
			return // bad magic rejection is fine; panics are not
		}
		epoch, repl, ok := j.Latest()
		if ok && (epoch < 0 || repl == nil) {
			t.Fatalf("journal recovered nonsense: epoch %d replicators %v", epoch, repl)
		}
		if err := j.Record(99, [][]int{{0}}); err != nil {
			t.Fatal(err)
		}
		j.Close()
	})
}
