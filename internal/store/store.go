package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"drp/internal/metrics"
)

// Options tune a durable store.
type Options struct {
	// Sync is the fsync policy for WAL appends.
	Sync SyncPolicy
	// SyncEvery is the appends-between-fsyncs interval for SyncInterval.
	SyncEvery int
	// SnapshotEvery takes an automatic snapshot (with log truncation)
	// every that many appended records; 0 disables automatic snapshots.
	SnapshotEvery int
	// Metrics, when non-nil, receives the drp_store_* counters.
	Metrics *metrics.Registry
}

// Store is one site's replication state: replica holdings, primary-stamped
// versions, the nearest-replica and failover tables, the primary-side
// replicator registries and stale marks, queued writes and accounted NTC.
//
// In durable mode (Open with a directory) every mutation appends one WAL
// record before it is visible to the caller, so an acknowledgement implies
// the state change survives a crash; Open replays the directory back into
// the identical state. In memory mode (Memory, or Open with an empty dir)
// the same state machine runs without a log.
//
// All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	site    int
	primary []int // bootstrap: primary site per object
	dir     string
	w       *wal // nil in memory mode
	seg     uint64
	policy  SyncPolicy
	every   int
	snapN   int
	obs     *instruments
	appends int // since the last snapshot
	recov   bool
	closed  bool

	holds    []bool
	versions []int64
	nearest  []int
	replicas [][]int
	registry [][]int
	stale    []map[int]bool
	pending  []int
	ntc      int64
	// curPrimary is the routing primary per object; it starts at the
	// bootstrap primaries and moves when the control plane promotes a
	// different member (opPrimary records).
	curPrimary []int
}

// ErrClosed reports a mutation on a store whose log has been closed (the
// node is shutting down or crash-stopped).
var ErrClosed = errors.New("store: closed")

// Memory builds a memory-only store bootstrapped for site: every object's
// nearest replica and failover list point at its primary, and objects
// primaried at site are held at version 0 with a singleton registry.
func Memory(site int, primaries []int) *Store {
	s := &Store{site: site, primary: append([]int(nil), primaries...)}
	s.bootstrap()
	return s
}

func (s *Store) bootstrap() {
	n := len(s.primary)
	s.holds = make([]bool, n)
	s.versions = make([]int64, n)
	s.nearest = make([]int, n)
	s.replicas = make([][]int, n)
	s.registry = make([][]int, n)
	s.stale = make([]map[int]bool, n)
	s.pending = make([]int, n)
	s.ntc = 0
	s.curPrimary = append([]int(nil), s.primary...)
	for k, sp := range s.primary {
		s.nearest[k] = sp
		s.replicas[k] = []int{sp}
		if sp == s.site {
			s.holds[k] = true
			s.registry[k] = []int{s.site}
		}
	}
}

// Open opens (or creates) the durable store for site in dir: bootstrap,
// load the newest valid snapshot, replay the WAL segments after it,
// truncate any corrupt tail, and leave the log open for appending. An
// empty dir returns a memory-only store. The recovered state is a pure
// function of (site, primaries, directory bytes); Recovered reports
// whether any prior state was found.
func Open(dir string, site int, primaries []int, opts Options) (*Store, error) {
	s := Memory(site, primaries)
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.dir = dir
	s.policy = opts.Sync
	s.every = opts.SyncEvery
	if s.policy == SyncInterval && s.every <= 0 {
		s.every = 64
	}
	s.snapN = opts.SnapshotEvery
	s.obs = newInstruments(opts.Metrics)

	wals, snaps, err := scanSegments(dir)
	if err != nil {
		return nil, err
	}
	// Newest snapshot that validates wins; older ones and torn tmp files
	// are garbage from interrupted snapshot cycles.
	snapSeq, haveSnap := uint64(0), false
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, err := readSnapshotFile(snapPath(dir, snaps[i]))
		if err != nil {
			continue
		}
		if err := s.loadSnapshot(payload); err != nil {
			continue
		}
		snapSeq, haveSnap = snaps[i], true
		break
	}
	if haveSnap {
		s.recov = true
	}
	// Replay every segment after the snapshot, oldest first. Normally that
	// is exactly one; an interrupted snapshot cycle can leave the fresh
	// empty segment alongside it.
	cur := snapSeq + 1
	for _, seq := range wals {
		if haveSnap && seq <= snapSeq {
			continue
		}
		if seq > cur {
			cur = seq
		}
	}
	var last *wal
	for _, seq := range wals {
		if (haveSnap && seq <= snapSeq) || seq > cur {
			continue
		}
		w, err := openWAL(walPath(dir, seq), s.policy, s.every, s.obs, s.applyPayload)
		if err != nil {
			return nil, err
		}
		if seq == cur {
			last = w
		} else if err := w.close(); err != nil {
			return nil, err
		}
	}
	if last == nil {
		w, err := openWAL(walPath(dir, cur), s.policy, s.every, s.obs, s.applyPayload)
		if err != nil {
			return nil, err
		}
		last = w
	}
	s.w, s.seg = last, cur
	return s, nil
}

// applyPayload decodes and applies one replayed WAL record; undecodable
// payloads end the valid prefix.
func (s *Store) applyPayload(payload []byte) error {
	rec, err := decodeRecord(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", errCorruptRecord, err)
	}
	if rec.op == opNTC {
		if rec.obj != -1 {
			return fmt.Errorf("%w: ntc record with object %d", errCorruptRecord, rec.obj)
		}
	} else if int(rec.obj) < 0 || int(rec.obj) >= len(s.primary) {
		return fmt.Errorf("%w: object %d out of range", errCorruptRecord, rec.obj)
	}
	s.apply(rec)
	s.recov = true
	return nil
}

// apply materialises one record into the in-memory state. It must stay a
// pure function of (state, record): replay determinism depends on it.
func (s *Store) apply(rec record) {
	k := int(rec.obj)
	switch rec.op {
	case opPlace:
		s.holds[k] = true
		s.versions[k] = rec.arg
		s.nearest[k] = s.site
	case opDrop:
		s.holds[k] = false
		s.versions[k] = 0
	case opSetVer:
		s.versions[k] = rec.arg
	case opStale:
		marks := s.stale[k]
		if marks == nil {
			marks = make(map[int]bool)
			s.stale[k] = marks
		}
		for _, j := range rec.sites {
			marks[int(j)] = true
		}
	case opClear:
		if marks := s.stale[k]; marks != nil {
			delete(marks, int(rec.arg))
		}
	case opQueue:
		s.pending[k] += int(rec.arg)
		if s.pending[k] < 0 {
			s.pending[k] = 0
		}
	case opNTC:
		s.ntc += rec.arg
	case opNearest:
		s.nearest[k] = int(rec.arg)
	case opReplicas:
		s.replicas[k] = intsOf(rec.sites)
	case opPrimary:
		s.curPrimary[k] = int(rec.arg)
	case opRegistry:
		s.registry[k] = intsOf(rec.sites)
		// A site no longer replicating the object has nothing left to
		// reconcile: trim its stale mark with the registry update, in one
		// record, so replay and live execution agree.
		if marks := s.stale[k]; marks != nil {
			keep := make(map[int]bool, len(rec.sites))
			for _, j := range rec.sites {
				keep[int(j)] = true
			}
			for j := range marks {
				if !keep[j] {
					delete(marks, j)
				}
			}
		}
	}
}

func intsOf(sites []int32) []int {
	if sites == nil {
		return nil
	}
	out := make([]int, len(sites))
	for i, s := range sites {
		out[i] = int(s)
	}
	return out
}

func int32sOf(sites []int) []int32 {
	if sites == nil {
		return nil
	}
	out := make([]int32, len(sites))
	for i, s := range sites {
		out[i] = int32(s)
	}
	return out
}

// commit appends rec to the WAL (durable mode) and applies it. The state
// only changes if the log accepted the record: append-before-ack.
func (s *Store) commit(rec record) error {
	if s.closed {
		return ErrClosed
	}
	if s.w != nil {
		if err := s.w.append(rec.encode()); err != nil {
			return err
		}
	}
	s.apply(rec)
	if s.w != nil {
		s.appends++
		if s.snapN > 0 && s.appends >= s.snapN {
			return s.snapshotLocked()
		}
	}
	return nil
}

// Recovered reports whether Open found prior durable state (a snapshot or
// at least one WAL record).
func (s *Store) Recovered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recov
}

// Dir returns the data directory ("" for a memory store).
func (s *Store) Dir() string { return s.dir }

// Durable reports whether mutations are appended to a write-ahead log
// before acknowledgement. The tracing layer uses it to emit wal.append
// spans only when there is a log to append to.
func (s *Store) Durable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w != nil
}

// Site returns the site this store belongs to.
func (s *Store) Site() int { return s.site }

// Objects returns the object count the store was bootstrapped with.
func (s *Store) Objects() int { return len(s.primary) }

// --- getters ---

// Holds reports whether the site holds a replica of object k.
func (s *Store) Holds(k int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.holds[k]
}

// Version returns the local version of object k (0 if not held).
func (s *Store) Version(k int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[k]
}

// Replica returns the holding flag and version of object k atomically.
func (s *Store) Replica(k int) (bool, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.holds[k], s.versions[k]
}

// Nearest returns the recorded nearest-replica site for object k.
func (s *Store) Nearest(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nearest[k]
}

// Replicas returns a copy of object k's replicator list (failover order
// source).
func (s *Store) Replicas(k int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.replicas[k]...)
}

// Registry returns a copy of the primary-side replicator registry for k.
func (s *Store) Registry(k int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.registry[k]...)
}

// StaleSites returns the sites marked stale for object k, sorted.
func (s *Store) StaleSites(k int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedKeys(s.stale[k])
}

// PendingCount returns the queued-write count for object k.
func (s *Store) PendingCount(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending[k]
}

// PendingObjects returns the objects with queued writes, ascending.
func (s *Store) PendingObjects() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var objs []int
	for k, c := range s.pending {
		if c > 0 {
			objs = append(objs, k)
		}
	}
	return objs
}

// TotalPending sums the queued writes across objects.
func (s *Store) TotalPending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, c := range s.pending {
		total += c
	}
	return total
}

// PrimaryOf returns the current routing primary of object k (the
// bootstrap primary until a promotion moves it).
func (s *Store) PrimaryOf(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curPrimary[k]
}

// NTC returns the transfer cost accounted to this site.
func (s *Store) NTC() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ntc
}

// --- mutators (append before the new state is observable) ---

// Place stores a replica of k at version ver and points the nearest-replica
// record at the site itself.
func (s *Store) Place(k int, ver int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit(record{op: opPlace, obj: int32(k), arg: ver})
}

// Drop discards the replica of k.
func (s *Store) Drop(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit(record{op: opDrop, obj: int32(k)})
}

// BumpVersion serialises one write at the primary: version++ and returns
// the new stamp.
func (s *Store) BumpVersion(k int) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.versions[k] + 1
	if err := s.commit(record{op: opSetVer, obj: int32(k), arg: next}); err != nil {
		return 0, err
	}
	return next, nil
}

// AdoptVersion installs ver for a held replica when it is newer than the
// local stamp, reporting (held, adopted). Non-holders and stale stamps
// append nothing.
func (s *Store) AdoptVersion(k int, ver int64) (held, adopted bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.holds[k] {
		return false, false, nil
	}
	if ver <= s.versions[k] {
		return true, false, nil
	}
	if err := s.commit(record{op: opSetVer, obj: int32(k), arg: ver}); err != nil {
		return true, false, err
	}
	return true, true, nil
}

// MarkStale records that sites missed a sync broadcast of k.
func (s *Store) MarkStale(k int, sites []int) error {
	if len(sites) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit(record{op: opStale, obj: int32(k), sites: int32sOf(sites)})
}

// ClearStale drops the stale mark for one site (a sync landed).
func (s *Store) ClearStale(k, site int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if marks := s.stale[k]; marks == nil || !marks[site] {
		return nil // nothing marked: no record
	}
	return s.commit(record{op: opClear, obj: int32(k), arg: int64(site)})
}

// Queue records one write waiting for an unreachable primary.
func (s *Store) Queue(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit(record{op: opQueue, obj: int32(k), arg: 1})
}

// Dequeue retires one queued write after a successful replay.
func (s *Store) Dequeue(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[k] == 0 {
		return nil
	}
	return s.commit(record{op: opQueue, obj: int32(k), arg: -1})
}

// AddNTC accounts d transfer-cost units to the site.
func (s *Store) AddNTC(d int64) error {
	if d == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit(record{op: opNTC, obj: -1, arg: d})
}

// SetNearest repoints the nearest-replica record for k.
func (s *Store) SetNearest(k, site int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit(record{op: opNearest, obj: int32(k), arg: int64(site)})
}

// SetReplicas replaces the read-failover replicator list for k.
func (s *Store) SetReplicas(k int, sites []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit(record{op: opReplicas, obj: int32(k), sites: int32sOf(sites)})
}

// SetPrimary records a primary promotion: object k's writes now route to
// site. Setting the already-current primary appends nothing.
func (s *Store) SetPrimary(k, site int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curPrimary[k] == site {
		return nil
	}
	return s.commit(record{op: opPrimary, obj: int32(k), arg: int64(site)})
}

// SetRegistry replaces the primary's replicator registry for k and trims
// stale marks for sites that left the set (one record covers both).
func (s *Store) SetRegistry(k int, sites []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit(record{op: opRegistry, obj: int32(k), sites: int32sOf(sites)})
}

// --- snapshots, shutdown, inspection ---

// snapState is the canonical full-state encoding: slices indexed by object
// with stale sets sorted, so identical states encode to identical bytes.
type snapState struct {
	Site     int     `json:"site"`
	Holds    []bool  `json:"holds"`
	Versions []int64 `json:"versions"`
	Nearest  []int   `json:"nearest"`
	Replicas [][]int `json:"replicas"`
	Registry [][]int `json:"registry"`
	Stale    [][]int `json:"stale"`
	Pending  []int   `json:"pending"`
	NTC      int64   `json:"ntc"`
	// Primary is the current routing primary per object. Omitted by
	// snapshots written before promotions existed; loading such a snapshot
	// keeps the bootstrap primaries.
	Primary []int `json:"primary,omitempty"`
}

func (s *Store) encodeStateLocked() []byte {
	st := snapState{
		Site:     s.site,
		Holds:    s.holds,
		Versions: s.versions,
		Nearest:  s.nearest,
		Replicas: s.replicas,
		Registry: s.registry,
		Stale:    make([][]int, len(s.stale)),
		Pending:  s.pending,
		NTC:      s.ntc,
		Primary:  s.curPrimary,
	}
	for k, marks := range s.stale {
		st.Stale[k] = sortedKeys(marks)
	}
	data, err := json.Marshal(st)
	if err != nil {
		// Marshalling plain slices of ints cannot fail; treat it as the
		// programming error it would be.
		panic(fmt.Sprintf("store: encode state: %v", err))
	}
	return data
}

// EncodeState returns the canonical byte encoding of the full site state.
// Two stores serve identically if and only if their encodings are equal;
// the recovery tests assert byte identity across kill and replay.
func (s *Store) EncodeState() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.encodeStateLocked()
}

func (s *Store) loadSnapshot(payload []byte) error {
	var st snapState
	if err := json.Unmarshal(payload, &st); err != nil {
		return err
	}
	n := len(s.primary)
	if st.Site != s.site || len(st.Holds) != n || len(st.Versions) != n ||
		len(st.Nearest) != n || len(st.Replicas) != n || len(st.Registry) != n ||
		len(st.Stale) != n || len(st.Pending) != n ||
		(st.Primary != nil && len(st.Primary) != n) {
		return fmt.Errorf("store: snapshot shape does not match site %d with %d objects", s.site, n)
	}
	if st.Primary != nil {
		s.curPrimary = st.Primary
	} else {
		s.curPrimary = append([]int(nil), s.primary...)
	}
	s.holds = st.Holds
	s.versions = st.Versions
	s.nearest = st.Nearest
	s.replicas = st.Replicas
	s.registry = st.Registry
	s.stale = make([]map[int]bool, n)
	for k, sites := range st.Stale {
		if len(sites) == 0 {
			continue
		}
		marks := make(map[int]bool, len(sites))
		for _, j := range sites {
			marks[j] = true
		}
		s.stale[k] = marks
	}
	s.pending = st.Pending
	s.ntc = st.NTC
	return nil
}

// Snapshot forces a full-state snapshot with log truncation: the state is
// committed to snap-<seg>, a fresh segment wal-<seg+1> takes over, and the
// old segment plus older snapshots are retired. A crash at any step of the
// protocol recovers correctly (see DESIGN.md §11 for the crash matrix).
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	if s.closed {
		return ErrClosed
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	payload := s.encodeStateLocked()
	n, err := writeSnapshotFile(snapPath(s.dir, s.seg), payload)
	if err != nil {
		return err
	}
	if s.obs != nil {
		s.obs.snapshots.Inc()
		s.obs.snapshotBytes.Add(n)
		s.obs.fsyncs.Inc()
	}
	next, err := openWAL(walPath(s.dir, s.seg+1), s.policy, s.every, s.obs, func([]byte) error {
		return errCorruptRecord // a fresh segment has no business holding records
	})
	if err != nil {
		return err
	}
	if err := s.w.close(); err != nil {
		next.close()
		return err
	}
	// Retirement is the last step: until it happens the old files are
	// harmlessly shadowed by the newer snapshot.
	if err := os.Remove(walPath(s.dir, s.seg)); err == nil && s.obs != nil {
		s.obs.truncations.Inc()
	}
	if s.seg > 0 {
		_ = os.Remove(snapPath(s.dir, s.seg-1))
	}
	syncDir(s.dir)
	s.w = next
	s.seg++
	s.appends = 0
	return nil
}

// Sync forces the log to disk regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil || s.closed {
		return nil
	}
	return s.w.sync()
}

// Close flushes and closes the log. No snapshot is taken: shutdown and
// crash recover through the same replay path, which keeps recovery honest.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.w == nil {
		return nil
	}
	return s.w.close()
}

// Crash closes the log without flushing — the SIGKILL-equivalent stop the
// recovery tests use. Acknowledged records already handed to the OS
// survive (a process kill loses nothing; only power loss tests the fsync
// policy).
func (s *Store) Crash() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.w == nil {
		return nil
	}
	return s.w.abandon()
}

func sortedKeys(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	for i := 1; i < len(out); i++ { // insertion sort: sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
