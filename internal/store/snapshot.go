package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// snapMagic heads every snapshot file.
var snapMagic = []byte("DRPSNAP1\n")

// writeSnapshotFile atomically writes payload to path: the bytes land in a
// temp file first (magic | length | crc32 | payload), are fsynced, and the
// rename is the commit point — a crash at any instant leaves either the
// old snapshot or the new one, never a half-written file that validates.
func writeSnapshotFile(path string, payload []byte) (int64, error) {
	frame := make([]byte, len(snapMagic)+frameHeaderLen+len(payload))
	copy(frame, snapMagic)
	binary.LittleEndian.PutUint32(frame[len(snapMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[len(snapMagic)+4:], crc32.ChecksumIEEE(payload))
	copy(frame[len(snapMagic)+frameHeaderLen:], payload)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: snapshot: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("store: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: snapshot commit: %w", err)
	}
	syncDir(filepath.Dir(path))
	return int64(len(frame)), nil
}

// readSnapshotFile loads and validates a snapshot, returning its payload.
// Any validation failure (bad magic, torn frame, CRC mismatch) is an
// error; callers fall back to an older snapshot or the empty state.
func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+frameHeaderLen || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("store: %s: bad snapshot header", path)
	}
	body := data[len(snapMagic):]
	length := binary.LittleEndian.Uint32(body[0:4])
	sum := binary.LittleEndian.Uint32(body[4:8])
	payload := body[frameHeaderLen:]
	if int(length) != len(payload) {
		return nil, fmt.Errorf("store: %s: snapshot length %d != %d", path, length, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("store: %s: snapshot checksum mismatch", path)
	}
	return payload, nil
}

// syncDir fsyncs a directory so renames and unlinks within it are durable.
// Best-effort: some filesystems refuse directory fsync and recovery does
// not depend on it (an undurable rename just re-runs a longer replay).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// Segment file naming: wal-<seq>.log holds the records appended after
// snap-<seq-1>.snap was taken; snap-<seq>.snap captures the state at the
// end of wal-<seq>. Steady state on disk is {snap-(N-1), wal-N}; the
// snapshot protocol (Store.Snapshot) walks it to {snap-N, wal-(N+1)} with
// a crash at any step recovering correctly.
func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", seq))
}

// scanSegments lists the WAL and snapshot sequence numbers present in dir,
// each sorted ascending.
func scanSegments(dir string) (wals, snaps []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	parse := func(name, prefix, suffix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			return 0, false
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		return n, err == nil
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parse(e.Name(), "wal-", ".log"); ok {
			wals = append(wals, n)
		}
		if n, ok := parse(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return wals, snaps, nil
}
