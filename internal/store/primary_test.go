package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSetPrimarySurvivesCrashReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, primariesRR(3, 6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PrimaryOf(4); got != 1 {
		t.Fatalf("bootstrap PrimaryOf(4) = %d, want 1", got)
	}
	if err := s.SetPrimary(4, 0); err != nil {
		t.Fatal(err)
	}
	// Re-setting the current primary must append nothing.
	before, _ := os.Stat(filepath.Join(dir, "wal-000001.log"))
	if err := s.SetPrimary(4, 0); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(dir, "wal-000001.log"))
	if before != nil && after != nil && after.Size() != before.Size() {
		t.Fatal("idempotent SetPrimary grew the log")
	}
	want := s.EncodeState()
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, 0, primariesRR(3, 6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.PrimaryOf(4); got != 0 {
		t.Fatalf("replayed PrimaryOf(4) = %d, want promoted 0", got)
	}
	if got := r.EncodeState(); !bytes.Equal(got, want) {
		t.Fatalf("state diverged across crash:\n  %s\n  %s", want, got)
	}
	// Promotions must survive snapshot + truncation too.
	if err := r.SetPrimary(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want = r.EncodeState()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, 0, primariesRR(3, 6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.EncodeState(); !bytes.Equal(got, want) {
		t.Fatal("state diverged across snapshot recovery")
	}
	if got := r2.PrimaryOf(2); got != 0 {
		t.Fatalf("snapshot PrimaryOf(2) = %d, want 0", got)
	}
}

// TestLoadSnapshotWithoutPrimaries pins back-compat: a snapshot written
// before primary promotion existed (no "primary" field) loads with the
// bootstrap primaries intact.
func TestLoadSnapshotWithoutPrimaries(t *testing.T) {
	s := Memory(1, primariesRR(2, 4))
	if err := s.loadSnapshot([]byte(`{"site":1,"holds":[false,true,false,true],` +
		`"versions":[0,0,0,0],"nearest":[0,1,0,1],"replicas":[[0],[1],[0],[1]],` +
		`"registry":[[],[1],[],[1]],"stale":[[],[],[],[]],"pending":[0,0,0,0],"ntc":5}`)); err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	for k := 0; k < 4; k++ {
		if got := s.PrimaryOf(k); got != k%2 {
			t.Fatalf("PrimaryOf(%d) = %d after legacy snapshot, want bootstrap %d", k, got, k%2)
		}
	}
}

func TestJournalPlanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := j.LatestPlan(); ok {
		t.Fatal("empty journal claims a plan")
	}
	planA := []byte(`{"epoch":1,"view":{"epoch":1,"members":[0,1,2]},"primaries":[0],"placement":[[0,1]]}`)
	planB := []byte(`{"epoch":2,"view":{"epoch":2,"members":[1,2]},"primaries":[1],"placement":[[1]]}`)
	if err := j.RecordPlan(1, planA); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(2, [][]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordPlan(3, planB); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	epoch, plan, ok := r.LatestPlan()
	if !ok || epoch != 3 || !bytes.Equal(plan, planB) {
		t.Fatalf("LatestPlan = (%d, %s, %v), want (3, %s, true)", epoch, plan, ok, planB)
	}
	// The scheme entry interleaved between plans must still be recoverable.
	epoch, repl, ok := r.Latest()
	if !ok || epoch != 3 || len(repl) != 1 {
		t.Fatalf("Latest = (%d, %v, %v)", epoch, repl, ok)
	}
	// Compaction must not lose the plan.
	if err := r.Record(4, [][]int{{1}}); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	err = r.compactLocked()
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, plan, ok := r2.LatestPlan(); !ok || !bytes.Equal(plan, planB) {
		t.Fatalf("plan lost across compaction: (%s, %v)", plan, ok)
	}
}
