package store

import "drp/internal/metrics"

// instruments caches the drp_store_* counter handles. All stores of a
// process share one registry, so the families aggregate across sites,
// matching the drp_net_* convention.
type instruments struct {
	appends       *metrics.Counter
	fsyncs        *metrics.Counter
	replayed      *metrics.Counter
	snapshots     *metrics.Counter
	snapshotBytes *metrics.Counter
	truncations   *metrics.Counter
}

func newInstruments(reg *metrics.Registry) *instruments {
	if reg == nil {
		return nil
	}
	return &instruments{
		appends:       reg.Counter("drp_store_appends_total", "WAL records appended.", nil),
		fsyncs:        reg.Counter("drp_store_fsyncs_total", "WAL and snapshot fsync calls.", nil),
		replayed:      reg.Counter("drp_store_replay_records_total", "WAL records replayed during recovery.", nil),
		snapshots:     reg.Counter("drp_store_snapshots_total", "State snapshots written.", nil),
		snapshotBytes: reg.Counter("drp_store_snapshot_bytes_total", "Bytes written to state snapshots.", nil),
		truncations:   reg.Counter("drp_store_truncations_total", "Log truncations: retired segments after a snapshot plus corrupt tails cut at recovery.", nil),
	}
}

// RegisterMetricFamilies pre-creates the drp_store_* families in reg at
// zero, for endpoints that must expose the full surface before any
// durable traffic.
func RegisterMetricFamilies(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	newInstruments(reg)
}
