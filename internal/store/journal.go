package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is the coordinator's durable placement log: one entry per epoch
// recording the deployed replication scheme, so a monitor killed between
// epochs restarts from its last decision instead of re-seeding. Entries
// are self-contained (latest wins), which keeps the compaction protocol a
// single snapshot-then-truncate with no segment bookkeeping: replaying a
// stale record under a newer snapshot is a no-op.
type Journal struct {
	mu      sync.Mutex
	dir     string
	w       *wal
	obs     *instruments
	snapN   int
	appends int
	closed  bool

	epoch       int
	replicators [][]int         // latest recorded scheme, per object
	plan        json.RawMessage // latest recorded placement plan, if any
}

// journalEntry is one record (and the snapshot payload): the scheme after
// an epoch as per-object replicator lists, and/or the control plane's
// placement plan in its canonical encoding. Either field may be absent;
// latest-wins applies to each independently so the scheme-only and
// plan-only call paths do not clobber one another.
type journalEntry struct {
	Epoch       int             `json:"epoch"`
	Replicators [][]int         `json:"replicators,omitempty"`
	Plan        json.RawMessage `json:"plan,omitempty"`
}

// OpenJournal opens (or creates) the placement journal in dir. SnapshotEvery
// compacts the log every that many recorded epochs.
func OpenJournal(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	j := &Journal{
		dir:   dir,
		obs:   newInstruments(opts.Metrics),
		snapN: opts.SnapshotEvery,
		epoch: -1,
	}
	if payload, err := readSnapshotFile(j.snapFile()); err == nil {
		if err := j.applyPayload(payload); err != nil {
			return nil, fmt.Errorf("store: journal snapshot: %w", err)
		}
	}
	every := opts.SyncEvery
	if opts.Sync == SyncInterval && every <= 0 {
		every = 64
	}
	w, err := openWAL(j.logFile(), opts.Sync, every, j.obs, j.applyPayload)
	if err != nil {
		return nil, err
	}
	j.w = w
	return j, nil
}

func (j *Journal) logFile() string  { return filepath.Join(j.dir, "journal.log") }
func (j *Journal) snapFile() string { return filepath.Join(j.dir, "journal.snap") }

func (j *Journal) applyPayload(payload []byte) error {
	var e journalEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return fmt.Errorf("%w: %v", errCorruptRecord, err)
	}
	if e.Epoch >= j.epoch { // stale replays under a newer snapshot are no-ops
		j.epoch = e.Epoch
		if e.Replicators != nil {
			j.replicators = e.Replicators
		}
		if e.Plan != nil {
			j.plan = e.Plan
		}
	}
	return nil
}

// Latest returns the most recent recorded epoch and its per-object
// replicator lists; ok is false when the journal holds no scheme yet.
func (j *Journal) Latest() (epoch int, replicators [][]int, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.epoch < 0 || j.replicators == nil {
		return 0, nil, false
	}
	out := make([][]int, len(j.replicators))
	for k, sites := range j.replicators {
		out[k] = append([]int(nil), sites...)
	}
	return j.epoch, out, true
}

// Record appends one epoch's deployed scheme, compacting per SnapshotEvery.
func (j *Journal) Record(epoch int, replicators [][]int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	payload, err := json.Marshal(journalEntry{Epoch: epoch, Replicators: replicators})
	if err != nil {
		return fmt.Errorf("store: journal encode: %w", err)
	}
	if err := j.w.append(payload); err != nil {
		return err
	}
	if epoch >= j.epoch {
		j.epoch = epoch
		j.replicators = make([][]int, len(replicators))
		for k, sites := range replicators {
			j.replicators[k] = append([]int(nil), sites...)
		}
	}
	j.appends++
	if j.snapN > 0 && j.appends >= j.snapN {
		return j.compactLocked()
	}
	return nil
}

// RecordPlan appends one control-plane placement plan in its canonical
// encoding. The coordinator journals the *target* plan before executing a
// single migration step, so a restart mid-migration can diff the journaled
// intent against the sites' actual holdings and finish the remainder.
func (j *Journal) RecordPlan(epoch int, plan []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	payload, err := json.Marshal(journalEntry{Epoch: epoch, Plan: json.RawMessage(plan)})
	if err != nil {
		return fmt.Errorf("store: journal encode: %w", err)
	}
	if err := j.w.append(payload); err != nil {
		return err
	}
	if epoch >= j.epoch {
		j.epoch = epoch
		j.plan = append(json.RawMessage(nil), plan...)
	}
	j.appends++
	if j.snapN > 0 && j.appends >= j.snapN {
		return j.compactLocked()
	}
	return nil
}

// LatestPlan returns the most recently journaled plan bytes; ok is false
// when no plan has been recorded.
func (j *Journal) LatestPlan() (epoch int, plan []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.epoch < 0 || j.plan == nil {
		return 0, nil, false
	}
	return j.epoch, append([]byte(nil), j.plan...), true
}

// compactLocked snapshots the latest entry and truncates the log. Crash
// windows: before the rename the old snapshot+log pair still recovers;
// after the rename but before the truncate the log replays entries the
// snapshot already covers, which latest-wins absorbs.
func (j *Journal) compactLocked() error {
	payload, err := json.Marshal(journalEntry{Epoch: j.epoch, Replicators: j.replicators, Plan: j.plan})
	if err != nil {
		return fmt.Errorf("store: journal encode: %w", err)
	}
	n, err := writeSnapshotFile(j.snapFile(), payload)
	if err != nil {
		return err
	}
	if j.obs != nil {
		j.obs.snapshots.Inc()
		j.obs.snapshotBytes.Add(n)
		j.obs.fsyncs.Inc()
	}
	if err := j.w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("store: journal truncate: %w", err)
	}
	if _, err := j.w.f.Seek(int64(len(walMagic)), 0); err != nil {
		return fmt.Errorf("store: journal seek: %w", err)
	}
	j.w.size = int64(len(walMagic))
	if j.obs != nil {
		j.obs.truncations.Inc()
	}
	j.appends = 0
	return nil
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.w.close()
}
