package store

import (
	"encoding/binary"
	"fmt"
)

// Record opcodes. The WAL is a log of these logical mutations; replaying
// them over the deterministic bootstrap state reconstructs the site.
const (
	opPlace    uint8 = 1  // obj, arg=version: hold a replica at that version
	opDrop     uint8 = 2  // obj: stop holding (version forgotten)
	opSetVer   uint8 = 3  // obj, arg=version: absolute version stamp
	opStale    uint8 = 4  // obj, sites: mark replicas stale at the primary
	opClear    uint8 = 5  // obj, arg=site: clear one stale mark
	opQueue    uint8 = 6  // obj, arg=±1: queue / dequeue a pending write
	opNTC      uint8 = 7  // arg=delta: account transfer cost
	opNearest  uint8 = 8  // obj, arg=site: nearest-replica record
	opReplicas uint8 = 9  // obj, sites: read-failover replica ranking
	opRegistry uint8 = 10 // obj, sites: primary's replicator list (trims stale)
	opPrimary  uint8 = 11 // obj, arg=site: current primary after a promotion
)

// record is one logical mutation. Versions and cost deltas ride in arg;
// list-valued ops (stale marks, replica sets) ride in sites.
type record struct {
	op    uint8
	obj   int32
	arg   int64
	sites []int32
}

// encode lays the record out as op(1) | obj(4) | arg(8) | nsites(4) |
// sites(4·n), little-endian throughout. The layout is fixed-width so the
// same mutation always produces the same bytes (byte-identical logs for
// identical histories).
func (r record) encode() []byte {
	buf := make([]byte, 1+4+8+4+4*len(r.sites))
	buf[0] = r.op
	binary.LittleEndian.PutUint32(buf[1:5], uint32(r.obj))
	binary.LittleEndian.PutUint64(buf[5:13], uint64(r.arg))
	binary.LittleEndian.PutUint32(buf[13:17], uint32(len(r.sites)))
	for i, s := range r.sites {
		binary.LittleEndian.PutUint32(buf[17+4*i:], uint32(s))
	}
	return buf
}

// decodeRecord rejects anything that is not exactly one well-formed
// record; replay treats a rejection as corruption and stops there.
func decodeRecord(b []byte) (record, error) {
	if len(b) < 17 {
		return record{}, fmt.Errorf("store: record too short (%d bytes)", len(b))
	}
	r := record{
		op:  b[0],
		obj: int32(binary.LittleEndian.Uint32(b[1:5])),
		arg: int64(binary.LittleEndian.Uint64(b[5:13])),
	}
	n := binary.LittleEndian.Uint32(b[13:17])
	if n > maxRecordBytes/4 || len(b) != 17+4*int(n) {
		return record{}, fmt.Errorf("store: record length %d does not match %d sites", len(b), n)
	}
	if r.op < opPlace || r.op > opPrimary {
		return record{}, fmt.Errorf("store: unknown opcode %d", r.op)
	}
	if n > 0 {
		r.sites = make([]int32, n)
		for i := range r.sites {
			r.sites[i] = int32(binary.LittleEndian.Uint32(b[17+4*i:]))
		}
	}
	return r, nil
}
