package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	for _, n := range []int{1, 2, 7} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestForCoversEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 57
		counts := make([]int32, n)
		For(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForInlineWithOneWorker(t *testing.T) {
	// With one worker every task must run on the calling goroutine, in
	// order — the serial-reference path of the determinism guarantee.
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial path ran out of order: %v", order)
		}
	}
	For(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}

func TestForWorkerIdentitiesDisjoint(t *testing.T) {
	// Each task sees exactly one worker id in [0, workers); results written
	// by index never collide.
	const n, workers = 200, 8
	ids := make([]int, n)
	ForWorker(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		ids[i] = w
	})
	// All ids valid implies the scratch-state contract held (the race
	// detector covers simultaneous use of one id).
	for i, w := range ids {
		if w < 0 || w >= workers {
			t.Fatalf("task %d ran on worker %d", i, w)
		}
	}
}
