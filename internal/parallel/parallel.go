// Package parallel provides the deterministic fan-out primitive behind the
// solvers' worker pools.
//
// The contract that keeps parallel runs bit-identical to serial ones is
// split between this package and its callers: tasks are identified by index
// and must write their results into index-addressed slots, so the reduction
// order is the input order regardless of completion order; and all
// randomness stays on the coordinator goroutine — workers only compute.
// Under that contract any worker count, including the inline single-worker
// path, yields exactly the same results.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob to a concrete worker count: 0 (or any
// non-positive value) means GOMAXPROCS, anything else is used as-is. 1 is
// the fully serial setting.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines.
// With workers <= 1 (or n <= 1) everything runs inline on the caller's
// goroutine and no goroutines are spawned. fn must be safe for concurrent
// invocation and must communicate only through index-addressed slots.
func For(n, workers int, fn func(i int)) {
	ForWorker(n, workers, func(_, i int) { fn(i) })
}

// ForWorker is For with a worker identity: fn(w, i) runs task i on worker
// w in [0, workers). A worker identity is held by exactly one goroutine at
// a time, so callers can hand each worker private scratch state (e.g. a
// core.Evaluator). Tasks are handed out by an atomic counter, which keeps
// the workers busy even when task costs are skewed.
func ForWorker(n, workers int, fn func(worker, task int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
