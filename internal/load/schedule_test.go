package load

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestScheduleDeterministic is the reproducibility contract: equal
// (profile, sites, objects) inputs must yield byte-identical schedule
// encodings and equal digests — what lets an A/B run claim both
// placements faced the same request stream.
func TestScheduleDeterministic(t *testing.T) {
	pr := DefaultProfile()
	pr.Seed = 42
	pr.Rate = 2000
	pr.DurationMS = 500
	pr.Origins = []float64{3, 1, 0, 1}

	a, err := BuildSchedule(4, 50, pr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(4, 50, pr)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.EncodeTo(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.EncodeTo(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same profile produced different schedule bytes")
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same profile produced different digests: %s vs %s", a.Digest(), b.Digest())
	}
	if len(a.Requests) == 0 {
		t.Fatal("schedule is empty")
	}

	// A different seed must produce a different stream.
	pr.Seed = 43
	c, err := BuildSchedule(4, 50, pr)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() == a.Digest() {
		t.Fatal("different seeds produced equal digests")
	}
}

// TestScheduleShape checks the structural invariants every downstream
// consumer relies on: ascending arrival times, sites restricted to the
// positive-weight origins, objects in range, counts consistent.
func TestScheduleShape(t *testing.T) {
	pr := DefaultProfile()
	pr.Rate = 5000
	pr.DurationMS = 400
	pr.WriteFraction = 0.3
	pr.Origins = []float64{1, 0, 2} // site 1 originates nothing

	s, err := BuildSchedule(3, 20, pr)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int64
	prev := time.Duration(-1)
	for _, r := range s.Requests {
		if r.At <= prev {
			t.Fatalf("arrivals not strictly ascending: %v after %v", r.At, prev)
		}
		prev = r.At
		if r.Site == 1 {
			t.Fatal("zero-weight site 1 originated a request")
		}
		if r.Site < 0 || r.Site >= 3 || r.Obj < 0 || r.Obj >= 20 {
			t.Fatalf("request out of range: %+v", r)
		}
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != s.Reads || writes != s.Writes {
		t.Fatalf("counts drifted: %d/%d vs %d/%d", reads, writes, s.Reads, s.Writes)
	}
	if s.Duration() >= time.Duration(pr.DurationMS)*time.Millisecond {
		t.Fatalf("schedule overran its duration: %v", s.Duration())
	}
	// WriteFraction 0.3 over thousands of arrivals: crude sanity band.
	frac := float64(writes) / float64(reads+writes)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("write fraction %.3f far from 0.3", frac)
	}
}

// TestBurstyScheduleConcentratesLoad checks the flash crowd: the burst
// window must carry a far higher arrival rate than the ambient schedule
// and focus on the hottest object.
func TestBurstyScheduleConcentratesLoad(t *testing.T) {
	pr := DefaultProfile()
	pr.Rate = 1000
	pr.DurationMS = 1000
	pr.Arrival = ArrivalBursty
	pr.BurstMult = 10
	pr.BurstStartMS = 400
	pr.BurstEndMS = 600
	pr.BurstFocus = 0.9

	s, err := BuildSchedule(4, 50, pr)
	if err != nil {
		t.Fatal(err)
	}
	inBurst, outBurst := 0, 0
	objCount := map[int]int{}
	for _, r := range s.Requests {
		if r.At >= 400*time.Millisecond && r.At < 600*time.Millisecond {
			inBurst++
			objCount[r.Obj]++
		} else {
			outBurst++
		}
	}
	// The 200ms window at 10× rate should hold ~2000 arrivals vs ~800
	// ambient; require a clear majority.
	if inBurst < outBurst {
		t.Fatalf("burst window holds %d arrivals vs %d ambient — no burst", inBurst, outBurst)
	}
	var hot, hotCount int
	for obj, c := range objCount {
		if c > hotCount {
			hot, hotCount = obj, c
		}
	}
	if float64(hotCount) < 0.5*float64(inBurst) {
		t.Fatalf("hottest object %d got only %d of %d burst requests — no focus", hot, hotCount, inBurst)
	}
}

// TestProfileValidate covers the rejection paths the fuzz target also
// exercises.
func TestProfileValidate(t *testing.T) {
	base := DefaultProfile()
	cases := []struct {
		name   string
		mutate func(*Profile)
		substr string
	}{
		{"zero rate", func(p *Profile) { p.Rate = 0 }, "rate"},
		{"negative rate", func(p *Profile) { p.Rate = -1 }, "rate"},
		{"zero duration", func(p *Profile) { p.DurationMS = 0 }, "duration"},
		{"unknown arrival", func(p *Profile) { p.Arrival = "chaotic" }, "arrival"},
		{"burst without bursty", func(p *Profile) { p.BurstMult = 5 }, "burst"},
		{"bursty without mult", func(p *Profile) { p.Arrival = ArrivalBursty; p.BurstEndMS = 100 }, "burst_mult"},
		{"burst window outside", func(p *Profile) {
			p.Arrival = ArrivalBursty
			p.BurstMult = 2
			p.BurstStartMS = 1900
			p.BurstEndMS = 2500
		}, "burst window"},
		{"bad write fraction", func(p *Profile) { p.WriteFraction = 1.5 }, "write fraction"},
		{"negative skew", func(p *Profile) { p.Skew = -0.1 }, "skew"},
		{"origin count", func(p *Profile) { p.Origins = []float64{1, 1} }, "origin"},
		{"negative origin", func(p *Profile) { p.Origins = []float64{1, -1, 1, 1} }, "origin"},
		{"all-zero origins", func(p *Profile) { p.Origins = []float64{0, 0, 0, 0} }, "origin"},
		{"unknown geo", func(p *Profile) { p.Geo = "mars" }, "geo"},
		{"ragged matrix", func(p *Profile) { p.MatrixMS = [][]int64{{0, 1}, {1}} }, "matrix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pr := base
			tc.mutate(&pr)
			err := pr.Validate(4)
			if err == nil {
				t.Fatalf("Validate accepted %+v", pr)
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.substr) {
				t.Fatalf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
	if err := base.Validate(4); err != nil {
		t.Fatalf("default profile rejected: %v", err)
	}
}

// TestProfileCanonicalRoundTrip checks parse(canonical(p)) == p and that
// unknown fields are rejected.
func TestProfileCanonicalRoundTrip(t *testing.T) {
	pr := DefaultProfile()
	pr.Arrival = ArrivalBursty
	pr.BurstMult = 4
	pr.BurstStartMS = 100
	pr.BurstEndMS = 300
	pr.Origins = []float64{1, 2}
	data, err := pr.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("canonical round trip drifted:\n%s\nvs\n%s", data, data2)
	}
	if _, err := ParseProfile([]byte(`{"rate": 5, "warp": 9}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestGeoMatrixShapes checks the named profiles produce valid symmetric
// matrices that MatrixPlan accepts.
func TestGeoMatrixShapes(t *testing.T) {
	for _, name := range []string{GeoLAN, GeoWAN3} {
		for _, m := range []int{1, 2, 4, 7} {
			matrix := GeoMatrix(name, m)
			if len(matrix) != m {
				t.Fatalf("%s/%d: %d rows", name, m, len(matrix))
			}
			pr := Profile{Geo: name}
			if _, err := pr.LatencyPlan(m); err != nil {
				t.Fatalf("%s/%d: %v", name, m, err)
			}
		}
	}
	if GeoMatrix(GeoNone, 4) != nil {
		t.Fatal("GeoNone must produce no matrix")
	}
	pr := Profile{Geo: GeoNone}
	plan, err := pr.LatencyPlan(4)
	if err != nil || len(plan.Events) != 0 {
		t.Fatalf("GeoNone plan: %d events, err %v", len(plan.Events), err)
	}
}
