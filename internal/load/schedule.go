package load

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"time"

	"drp/internal/xrand"
)

// Request is one scheduled arrival: the op fires at offset At from the
// run's start whether or not earlier requests have completed.
type Request struct {
	// At is the intended send time, as an offset from the run start.
	At time.Duration
	// Site is the origin site issuing the request.
	Site int
	// Obj is the target object.
	Obj int
	// Write selects the op: true = write, false = read.
	Write bool
}

// Schedule is a fully materialised arrival schedule. It is a pure
// function of (profile, sites, objects): building it twice yields
// byte-identical encodings, which is what makes A/B comparison honest —
// both placements face exactly the same request stream.
type Schedule struct {
	// Requests in ascending At order.
	Requests []Request
	// Sites and Objects record the dimensions the schedule was built for.
	Sites, Objects int
	// Reads/Writes count the ops in Requests.
	Reads, Writes int64
}

// Duration returns the last arrival's offset (0 for an empty schedule).
func (s *Schedule) Duration() time.Duration {
	if len(s.Requests) == 0 {
		return 0
	}
	return s.Requests[len(s.Requests)-1].At
}

// BuildSchedule materialises the profile's arrival schedule for a
// cluster of m sites and n objects. All randomness flows from the
// profile's seed through one xrand stream consumed in arrival order, so
// equal inputs produce identical schedules.
func BuildSchedule(m, n int, pr Profile) (*Schedule, error) {
	if err := pr.Validate(m); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("load: schedule needs objects, got %d", n)
	}
	rng := xrand.New(pr.Seed)

	// Zipf popularity over a seeded object ranking, so the hot set is not
	// always the low object ids (mirrors workload.GenerateZipf).
	rank := rng.Perm(n)
	cumObj := make([]float64, n)
	hottest := 0
	var acc float64
	for k := 0; k < n; k++ {
		w := 1 / math.Pow(float64(rank[k]+1), pr.Skew)
		acc += w
		cumObj[k] = acc
		if rank[k] == 0 {
			hottest = k // rank 0 carries the largest weight
		}
	}

	origins := pr.originSites(m)
	cumOrigin := make([]float64, len(origins))
	acc = 0
	for i, site := range origins {
		w := 1.0
		if len(pr.Origins) > 0 {
			w = pr.Origins[site]
		}
		acc += w
		cumOrigin[i] = acc
	}

	sched := &Schedule{Sites: m, Objects: n}
	duration := time.Duration(pr.DurationMS) * time.Millisecond
	burstStart := time.Duration(pr.BurstStartMS) * time.Millisecond
	burstEnd := time.Duration(pr.BurstEndMS) * time.Millisecond
	var t time.Duration
	for {
		inBurst := pr.Arrival == ArrivalBursty && t >= burstStart && t < burstEnd
		rate := pr.Rate
		if inBurst {
			rate *= pr.BurstMult
		}
		var gap time.Duration
		switch pr.Arrival {
		case ArrivalUniform:
			gap = time.Duration(float64(time.Second) / rate)
		default: // poisson, bursty
			// Exponential inter-arrival: -ln(1-U)/rate seconds.
			gap = time.Duration(-math.Log1p(-rng.Float64()) / rate * float64(time.Second))
		}
		if gap < time.Nanosecond {
			gap = time.Nanosecond // keep arrivals strictly ordered
		}
		t += gap
		if t >= duration {
			break
		}
		req := Request{
			At:   t,
			Site: pick(cumOrigin, origins, rng),
			Obj:  pickIndex(cumObj, rng),
		}
		if inBurst && pr.BurstFocus > 0 && rng.Bool(pr.BurstFocus) {
			req.Obj = hottest // the flash crowd converges on one object
		}
		req.Write = rng.Bool(pr.WriteFraction)
		if req.Write {
			sched.Writes++
		} else {
			sched.Reads++
		}
		sched.Requests = append(sched.Requests, req)
	}
	return sched, nil
}

// pickIndex samples an index from a cumulative weight ladder.
func pickIndex(cum []float64, rng *xrand.Source) int {
	u := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// pick samples a value from values by the cumulative ladder.
func pick(cum []float64, values []int, rng *xrand.Source) int {
	return values[pickIndex(cum, rng)]
}

// EncodeTo writes the schedule as one text line per request
// ("<offset-ns> <site> <obj> <r|w>"), the byte representation the
// determinism tests compare and Digest hashes.
func (s *Schedule) EncodeTo(w io.Writer) error {
	for _, r := range s.Requests {
		op := byte('r')
		if r.Write {
			op = 'w'
		}
		if _, err := fmt.Fprintf(w, "%d %d %d %c\n", r.At.Nanoseconds(), r.Site, r.Obj, op); err != nil {
			return err
		}
	}
	return nil
}

// Digest returns a hex SHA-256 over the schedule's canonical binary
// form: dimensions then (At, Site, Obj, op) per request. Two schedules
// with equal digests issue identical request streams.
func (s *Schedule) Digest() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(s.Sites))
	writeInt(int64(s.Objects))
	for _, r := range s.Requests {
		writeInt(r.At.Nanoseconds())
		writeInt(int64(r.Site))
		writeInt(int64(r.Obj))
		if r.Write {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
