package load

import (
	"math"
	"sort"
	"testing"

	"drp/internal/xrand"
)

// exactQuantile is the oracle: the value of rank ⌈p·n⌉ in the sorted
// sample — precisely the element Quantile's bucket walk lands on.
func exactQuantile(sorted []int64, p float64) int64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// quantileBoundsOK checks the histogram's advertised error contract:
// true ≤ estimate ≤ true·(1 + 2^-subBits) + 1.
func quantileBoundsOK(t *testing.T, name string, estimate, exact int64) {
	t.Helper()
	if estimate < exact {
		t.Errorf("%s: estimate %d understates exact %d", name, estimate, exact)
	}
	upper := float64(exact)*(1+1.0/(1<<subBits)) + 1
	if float64(estimate) > upper {
		t.Errorf("%s: estimate %d exceeds bound %.1f (exact %d)", name, estimate, upper, exact)
	}
}

// TestQuantileAgainstSortedOracle drives the histogram with several
// latency-shaped distributions and checks every quantile the report uses
// against the exact sorted-sample answer, at the documented relative
// error bound.
func TestQuantileAgainstSortedOracle(t *testing.T) {
	const n = 20_000
	quantiles := []float64{0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}
	dists := map[string]func(rng *xrand.Source) int64{
		"uniform_1ms": func(rng *xrand.Source) int64 { return int64(rng.Float64() * 1e6) },
		"exponential": func(rng *xrand.Source) int64 { return int64(-math.Log1p(-rng.Float64()) * 5e5) },
		"heavy_tail": func(rng *xrand.Source) int64 {
			v := int64(1e3 / math.Pow(1-rng.Float64(), 1.5))
			if v > maxRecordable {
				v = maxRecordable // keep the oracle and the recorder in the same domain
			}
			return v
		},
		"small_values": func(rng *xrand.Source) int64 { return int64(rng.Float64() * 100) },
		"constant":     func(rng *xrand.Source) int64 { return 42_000 },
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			rng := xrand.New(7)
			h := NewHist()
			values := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				v := gen(rng)
				h.Record(v)
				values = append(values, v)
			}
			sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
			for _, p := range quantiles {
				quantileBoundsOK(t, name, h.Quantile(p), exactQuantile(values, p))
			}
			if h.Count() != n {
				t.Fatalf("count = %d, want %d", h.Count(), n)
			}
			var sum int64
			for _, v := range values {
				sum += v
			}
			if h.Sum() != sum {
				t.Fatalf("sum = %d, want %d", h.Sum(), sum)
			}
			if h.Min() != values[0] || h.Max() != values[n-1] {
				t.Fatalf("min/max = %d/%d, want %d/%d", h.Min(), h.Max(), values[0], values[n-1])
			}
		})
	}
}

// TestQuantileExactBelowLinearRange checks that small values (the
// all-exact band below 2^(subBits+1)) report quantiles with zero bucket
// error beyond the +1 upper-edge offset.
func TestQuantileExactBelowLinearRange(t *testing.T) {
	h := NewHist()
	for v := int64(0); v < 100; v++ {
		h.Record(v)
	}
	// Rank ⌈0.5·100⌉ = 50 → value 49 (0-indexed rank 49), upper edge 50.
	if got := h.Quantile(0.50); got != 50 {
		t.Fatalf("p50 = %d, want 50 (exclusive upper edge of value 49)", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("p100 = %d, want 100", got)
	}
}

// TestRecordClamps checks the never-drop contract at both extremes.
func TestRecordClamps(t *testing.T) {
	h := NewHist()
	h.Record(-5)
	h.Record(maxRecordable + 12345)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2 (clamped, not dropped)", h.Count())
	}
	if h.Min() != 0 {
		t.Fatalf("min = %d, want 0", h.Min())
	}
	if h.Max() != maxRecordable {
		t.Fatalf("max = %d, want maxRecordable", h.Max())
	}
}

// TestBucketIndexMonotoneAndAligned walks the value range checking the
// index is monotone and every value lands inside its bucket's bounds.
func TestBucketIndexMonotoneAndAligned(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 97 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d)", v, idx, lo, hi)
		}
	}
	if idx := bucketIndex(maxRecordable); idx >= numBuckets {
		t.Fatalf("maxRecordable index %d out of range %d", idx, numBuckets)
	}
}

// TestMergeMatchesSingleHistogram splits one sample across eight
// histograms (as the worker pool does) and checks the merge is
// indistinguishable from recording into one.
func TestMergeMatchesSingleHistogram(t *testing.T) {
	rng := xrand.New(3)
	single := NewHist()
	parts := make([]*Hist, 8)
	for i := range parts {
		parts[i] = NewHist()
	}
	for i := 0; i < 10_000; i++ {
		v := int64(rng.Float64() * 5e7)
		single.Record(v)
		parts[i%len(parts)].Record(v)
	}
	merged := NewHist()
	for _, p := range parts {
		merged.Merge(p)
	}
	merged.Merge(NewHist()) // empty merge is a no-op
	if merged.Count() != single.Count() || merged.Sum() != single.Sum() ||
		merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("merge diverged: count %d/%d sum %d/%d", merged.Count(), single.Count(), merged.Sum(), single.Sum())
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		if merged.Quantile(p) != single.Quantile(p) {
			t.Fatalf("p%g: merged %d != single %d", p*100, merged.Quantile(p), single.Quantile(p))
		}
	}
}

// TestEmptyHistogram checks the zero-observation edge cases.
func TestEmptyHistogram(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	s := h.Summarize()
	if s.Count != 0 || s.P99MS != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}
