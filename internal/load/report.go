package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Report is one run's canonical outcome record — what drpload prints as
// text and writes as BENCH_load.json. Every number the SLO gate or the
// A/B comparison consumes lives here, so a CI artifact is sufficient to
// re-audit a gating decision.
type Report struct {
	// Scheme labels the placement under test (e.g. "sra", "none", or a
	// scheme file path).
	Scheme string `json:"scheme"`
	// Sites/Objects are the cluster dimensions.
	Sites   int `json:"sites"`
	Objects int `json:"objects"`
	// Profile is the load profile the schedule was built from.
	Profile Profile `json:"profile"`
	// ScheduleDigest fingerprints the exact request stream; equal digests
	// mean identical streams (the A/B honesty check).
	ScheduleDigest string `json:"schedule_digest"`
	// Requests breaks down the schedule by op.
	Requests struct {
		Total  int64 `json:"total"`
		Reads  int64 `json:"reads"`
		Writes int64 `json:"writes"`
	} `json:"requests"`
	// Read/Write are the measured latency ladders per op.
	Read  Summary `json:"read"`
	Write Summary `json:"write"`
	// OfferedRPS/AchievedRPS compare the schedule's arrival rate to the
	// completion rate the system sustained.
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	// Errors breaks down non-served outcomes.
	Errors struct {
		ReadsFailed  int64    `json:"reads_failed"`
		WritesQueued int64    `json:"writes_queued"`
		Unexplained  int64    `json:"unexplained"`
		Samples      []string `json:"samples,omitempty"`
	} `json:"errors"`
	// NTC is the run's network transfer cost (eq. 4 units) as accounted by
	// the data plane.
	NTC struct {
		Read  int64 `json:"read"`
		Write int64 `json:"write"`
		Total int64 `json:"total"`
	} `json:"ntc"`
	// SLO is the gate evaluation (empty Expr when no gate was given).
	SLO SLOResult `json:"slo"`
	// Metrics is the drp_net_* cross-check, when a registry was attached.
	Metrics *MetricsCheck `json:"metrics,omitempty"`
}

// BuildReport assembles a report from a run. slo may be nil (vacuous
// pass) and mc may be nil (no registry attached).
func BuildReport(scheme string, pr Profile, sched *Schedule, res *Result, slo *SLO, mc *MetricsCheck) *Report {
	rep := &Report{
		Scheme:         scheme,
		Sites:          sched.Sites,
		Objects:        sched.Objects,
		Profile:        pr,
		ScheduleDigest: res.Digest,
		Read:           res.ReadHist.Summarize(),
		Write:          res.WriteHist.Summarize(),
		OfferedRPS:     res.Offered,
		AchievedRPS:    res.Achieved,
		ElapsedMS:      float64(res.Elapsed.Nanoseconds()) / 1e6,
		SLO:            slo.Eval(res),
		Metrics:        mc,
	}
	rep.Requests.Total = int64(len(sched.Requests))
	rep.Requests.Reads = sched.Reads
	rep.Requests.Writes = sched.Writes
	rep.Errors.ReadsFailed = res.ReadsFailed
	rep.Errors.WritesQueued = res.WritesQueued
	rep.Errors.Unexplained = res.Unexplained
	rep.Errors.Samples = res.ErrSamples
	rep.NTC.Read = res.NTCRead
	rep.NTC.Write = res.NTCWrite
	rep.NTC.Total = res.NTC()
	return rep
}

// Canonical returns the report's canonical JSON: fixed field order,
// two-space indent, trailing newline — the BENCH_load.json format.
func (r *Report) Canonical() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("load: encode report: %w", err)
	}
	return buf.Bytes(), nil
}

// Text renders the report for a terminal.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drpload: scheme=%s sites=%d objects=%d seed=%d arrival=%s geo=%s\n",
		r.Scheme, r.Sites, r.Objects, r.Profile.Seed, r.Profile.Arrival, r.geoName())
	fmt.Fprintf(&b, "  schedule: %d requests (%d reads, %d writes) over %.0fms, digest %.12s…\n",
		r.Requests.Total, r.Requests.Reads, r.Requests.Writes, float64(r.Profile.DurationMS), r.ScheduleDigest)
	fmt.Fprintf(&b, "  offered %.1f req/s, achieved %.1f req/s (%.1f%%), elapsed %.0fms\n",
		r.OfferedRPS, r.AchievedRPS, 100*safeRatio(r.AchievedRPS, r.OfferedRPS), r.ElapsedMS)
	fmt.Fprintf(&b, "  read : %s\n", r.Read)
	fmt.Fprintf(&b, "  write: %s\n", r.Write)
	fmt.Fprintf(&b, "  errors: reads_failed=%d writes_queued=%d unexplained=%d\n",
		r.Errors.ReadsFailed, r.Errors.WritesQueued, r.Errors.Unexplained)
	for _, s := range r.Errors.Samples {
		fmt.Fprintf(&b, "    sample: %s\n", s)
	}
	fmt.Fprintf(&b, "  ntc: read=%d write=%d total=%d\n", r.NTC.Read, r.NTC.Write, r.NTC.Total)
	if r.Metrics != nil {
		verdict := "MATCH"
		if !r.Metrics.Match {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(&b, "  metrics cross-check: %s (%s)\n", verdict, r.Metrics.Describe())
	}
	if r.SLO.Expr != "" {
		verdict := "PASS"
		if !r.SLO.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  slo %q: %s\n", r.SLO.Expr, verdict)
		for _, t := range r.SLO.Terms {
			mark := "ok"
			if !t.Pass {
				mark = "VIOLATED"
			}
			fmt.Fprintf(&b, "    %-16s actual=%.3f bound=%.3f %s\n", t.Term, t.Actual, t.Bound, mark)
		}
	}
	return b.String()
}

func (r *Report) geoName() string {
	if len(r.Profile.MatrixMS) > 0 {
		return "matrix"
	}
	if r.Profile.Geo == "" {
		return GeoNone
	}
	return r.Profile.Geo
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Compare holds an A/B run: the same schedule replayed against two
// placements, with the latency and NTC deltas that decide which scheme
// actually serves users faster and cheaper.
type Compare struct {
	A *Report `json:"a"`
	B *Report `json:"b"`
	// SameSchedule confirms both runs drove byte-identical request
	// streams; a comparison without it is meaningless.
	SameSchedule bool `json:"same_schedule"`
	Delta        struct {
		// ReadP99MS/WriteP99MS are B minus A (negative = B faster).
		ReadP99MS  float64 `json:"read_p99_ms"`
		WriteP99MS float64 `json:"write_p99_ms"`
		ReadP50MS  float64 `json:"read_p50_ms"`
		WriteP50MS float64 `json:"write_p50_ms"`
		// NTC is B minus A in eq. 4 cost units (negative = B cheaper).
		NTC int64 `json:"ntc"`
	} `json:"delta"`
}

// NewCompare assembles the A/B record and its deltas.
func NewCompare(a, b *Report) *Compare {
	c := &Compare{A: a, B: b, SameSchedule: a.ScheduleDigest == b.ScheduleDigest && a.ScheduleDigest != ""}
	c.Delta.ReadP99MS = b.Read.P99MS - a.Read.P99MS
	c.Delta.WriteP99MS = b.Write.P99MS - a.Write.P99MS
	c.Delta.ReadP50MS = b.Read.P50MS - a.Read.P50MS
	c.Delta.WriteP50MS = b.Write.P50MS - a.Write.P50MS
	c.Delta.NTC = b.NTC.Total - a.NTC.Total
	return c
}

// Canonical returns the comparison's canonical JSON (the BENCH_load.json
// format in -compare mode).
func (c *Compare) Canonical() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return nil, fmt.Errorf("load: encode comparison: %w", err)
	}
	return buf.Bytes(), nil
}

// Text renders the comparison for a terminal.
func (c *Compare) Text() string {
	var b strings.Builder
	b.WriteString(c.A.Text())
	b.WriteString(c.B.Text())
	sched := "IDENTICAL"
	if !c.SameSchedule {
		sched = "DIFFERENT — comparison invalid"
	}
	fmt.Fprintf(&b, "compare %s vs %s (schedules %s):\n", c.A.Scheme, c.B.Scheme, sched)
	fmt.Fprintf(&b, "  read  p50 %+.3fms  p99 %+.3fms\n", c.Delta.ReadP50MS, c.Delta.ReadP99MS)
	fmt.Fprintf(&b, "  write p50 %+.3fms  p99 %+.3fms\n", c.Delta.WriteP50MS, c.Delta.WriteP99MS)
	fmt.Fprintf(&b, "  ntc   %+d (%s minus %s)\n", c.Delta.NTC, c.B.Scheme, c.A.Scheme)
	return b.String()
}
