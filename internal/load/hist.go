package load

import (
	"fmt"
	"math/bits"
	"time"
)

// subBits sets the recorder's log-linear resolution: each power-of-two
// band of the value range splits into 2^subBits linear sub-buckets, so a
// recorded value is off from the true one by at most a factor of
// 1 + 2^-subBits (HDR histograms call this "significant figures"). With
// subBits = 7 the relative quantile error is bounded by 1/128 ≈ 0.8%.
const subBits = 7

// maxRecordable caps recorded values so the bucket index stays in range;
// an hour in nanoseconds is far beyond any latency this harness can see.
const maxRecordable = int64(time.Hour)

// numBuckets covers values in [0, maxRecordable] at subBits resolution.
// Index layout (see bucketIndex): values below 2^(subBits+1) are exact,
// above that each doubling adds 2^subBits buckets.
var numBuckets = bucketIndex(maxRecordable) + 1

// Hist is an HDR-style log-linear histogram of non-negative int64 values
// (latencies in nanoseconds). Values are exact below 2^(subBits+1) and
// bucketed with bounded relative error above. A Hist is owned by one
// goroutine; concurrent load workers each record into their own and the
// runner merges them, so recording needs no locks and stays cheap enough
// to sit on the request hot path.
type Hist struct {
	counts []int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]int64, numBuckets), min: -1}
}

// bucketIndex maps a value to its bucket. Values below 2^subBits use
// exp = 0 and map to themselves; a value with more bits shifts down so
// its top subBits+1 bits select a linear sub-bucket within its
// power-of-two band. The resulting index is monotone in v and contiguous
// across bands.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	exp := bits.Len64(uint64(v)) - 1 - subBits
	if exp < 0 {
		exp = 0
	}
	return exp<<subBits + int(v>>uint(exp))
}

// bucketBounds returns the half-open value range [lo, hi) of bucket idx.
func bucketBounds(idx int) (lo, hi int64) {
	exp := idx>>subBits - 1
	if exp < 1 {
		return int64(idx), int64(idx) + 1
	}
	base := int64(idx - (exp+1)<<subBits) // linear sub-bucket within the band
	lo = (base + 1<<subBits) << uint(exp)
	return lo, lo + 1<<uint(exp)
}

// Record adds one value. Negative values clamp to zero and values beyond
// maxRecordable clamp to it, so the histogram never drops an observation.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if v > maxRecordable {
		v = maxRecordable
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Hist) Count() int64 { return h.total }

// Sum returns the sum of recorded values.
func (h *Hist) Sum() int64 { return h.sum }

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Min returns the smallest recorded value (0 when empty).
func (h *Hist) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Mean returns the average recorded value (0 when empty).
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an upper bound on the p-quantile of the recorded
// values: the exclusive upper edge of the bucket holding the value of
// rank ⌈p·n⌉ (1-indexed). The estimate q satisfies
//
//	true ≤ q ≤ true·(1 + 2^-subBits) + 1
//
// so it never understates a latency — the property the coordinated-
// omission tests lean on. p outside (0,1] clamps; an empty histogram
// reports 0.
func (h *Hist) Quantile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		p = 1 / float64(h.total) // smallest value's rank
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(h.total))
	if float64(rank) < p*float64(h.total) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for idx, c := range h.counts {
		seen += c
		if seen >= rank {
			_, hi := bucketBounds(idx)
			return hi
		}
	}
	return h.max // unreachable: total > 0 guarantees the loop hits rank
}

// Merge adds other's observations into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if h.min < 0 || (other.min >= 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Summary is the fixed quantile ladder a report prints for one op.
type Summary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Summarize freezes the histogram into the report's quantile ladder.
func (h *Hist) Summarize() Summary {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return Summary{
		Count:  h.total,
		MeanMS: h.Mean() / 1e6,
		P50MS:  ms(h.Quantile(0.50)),
		P90MS:  ms(h.Quantile(0.90)),
		P99MS:  ms(h.Quantile(0.99)),
		P999MS: ms(h.Quantile(0.999)),
		MaxMS:  ms(h.max),
	}
}

// String renders the summary for terminal output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms p99.9=%.3fms max=%.3fms",
		s.Count, s.MeanMS, s.P50MS, s.P90MS, s.P99MS, s.P999MS, s.MaxMS)
}
