package load

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"drp/internal/metrics"
	"drp/internal/netnode"
)

// Target is the system under load: per-request read/write entry points
// returning the transfer cost accounted to the request. Implementations
// must be safe for concurrent use — the worker pool calls them from many
// goroutines.
type Target interface {
	Read(site, obj int) (int64, error)
	Write(site, obj int) (int64, error)
}

// ClusterTarget drives a live netnode cluster: requests enter at their
// origin site's node exactly as a local client would.
type ClusterTarget struct{ C *netnode.Cluster }

// Read issues a client read at the origin site.
func (t ClusterTarget) Read(site, obj int) (int64, error) { return t.C.Node(site).Read(obj) }

// Write issues a client write at the origin site.
func (t ClusterTarget) Write(site, obj int) (int64, error) { return t.C.Node(site).Write(obj) }

// Options tune the runner. The zero value is usable.
type Options struct {
	// Workers caps in-flight requests (default 128). The pool exists so a
	// stalled system cannot exhaust goroutines; requests the pool cannot
	// start on time still count their queue delay, because latency is
	// measured from the schedule's intended send time.
	Workers int
	// Hook, when set, runs once per request at dispatch time, in schedule
	// order — the seam a fault injector's logical clock advances through.
	Hook func()
}

// errSample caps how many distinct unexpected error strings a result keeps.
const errSample = 5

// Result is one run's measured outcome.
type Result struct {
	// ReadHist/WriteHist record successful request latencies from the
	// intended send time (coordinated-omission-safe).
	ReadHist, WriteHist *Hist
	// ReadsOK/WritesOK count requests served (including degraded serves
	// like failover reads and partial-broadcast writes).
	ReadsOK, WritesOK int64
	// ReadsFailed counts reads with no reachable replica; WritesQueued
	// counts writes queued behind an unreachable primary. Both are
	// expected degraded outcomes under faults, not harness errors.
	ReadsFailed, WritesQueued int64
	// Unexplained counts errors outside the protocol's degraded outcomes;
	// ErrSamples holds the first few, for the report.
	Unexplained int64
	ErrSamples  []string
	// NTCRead/NTCWrite sum the transfer cost accounted to served requests.
	NTCRead, NTCWrite int64
	// Offered is the schedule's arrival rate over its span; Achieved is
	// completed requests over the measured wall time (arrival of the
	// first request to completion of the last).
	Offered, Achieved float64
	// Elapsed is the wall time from run start to the last completion.
	Elapsed time.Duration
	// Digest fingerprints the schedule that was driven.
	Digest string
}

// Requests returns the total number of requests that completed (served
// or degraded — every scheduled request lands somewhere).
func (r *Result) Requests() int64 {
	return r.ReadsOK + r.WritesOK + r.ReadsFailed + r.WritesQueued + r.Unexplained
}

// NTC returns the total transfer cost accounted to the run.
func (r *Result) NTC() int64 { return r.NTCRead + r.NTCWrite }

// worker-local tallies, merged after the pool drains.
type tally struct {
	readHist, writeHist       *Hist
	readsOK, writesOK         int64
	readsFailed, writesQueued int64
	unexplained               int64
	errSamples                []string
	ntcRead, ntcWrite         int64
}

// Run drives the schedule against the target, open loop: every request
// fires at its intended send time regardless of how earlier requests
// are faring, and each latency is measured from that intended time. A
// system that stalls therefore shows the stall in its quantiles instead
// of silently shedding offered load — the coordinated-omission-safe
// discipline (Tene's "How NOT to Measure Latency").
func Run(target Target, sched *Schedule, opts Options) (*Result, error) {
	if target == nil {
		return nil, errors.New("load: nil target")
	}
	if sched == nil || len(sched.Requests) == 0 {
		return nil, errors.New("load: empty schedule")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 128
	}

	type timed struct {
		req      Request
		intended time.Time
	}
	// The queue is sized for the whole schedule so dispatch never blocks
	// on a slow system — blocking the dispatcher would turn the harness
	// closed-loop exactly when the measurement matters most.
	queue := make(chan timed, len(sched.Requests))
	tallies := make([]*tally, workers)
	var lastDone struct {
		sync.Mutex
		t time.Time
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tl := &tally{readHist: NewHist(), writeHist: NewHist()}
		tallies[w] = tl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range queue {
				var cost int64
				var err error
				if item.req.Write {
					cost, err = target.Write(item.req.Site, item.req.Obj)
				} else {
					cost, err = target.Read(item.req.Site, item.req.Obj)
				}
				done := time.Now()
				latency := done.Sub(item.intended).Nanoseconds()
				switch {
				case err == nil:
					if item.req.Write {
						tl.writesOK++
						tl.ntcWrite += cost
						tl.writeHist.Record(latency)
					} else {
						tl.readsOK++
						tl.ntcRead += cost
						tl.readHist.Record(latency)
					}
				case errors.Is(err, netnode.ErrNoReplica):
					tl.readsFailed++
				case errors.Is(err, netnode.ErrWriteQueued):
					tl.writesQueued++
				default:
					tl.unexplained++
					if len(tl.errSamples) < errSample {
						tl.errSamples = append(tl.errSamples, err.Error())
					}
				}
				lastDone.Lock()
				if done.After(lastDone.t) {
					lastDone.t = done
				}
				lastDone.Unlock()
			}
		}()
	}

	start := time.Now()
	for _, req := range sched.Requests {
		if d := time.Until(start.Add(req.At)); d > 0 {
			time.Sleep(d)
		}
		if opts.Hook != nil {
			opts.Hook()
		}
		queue <- timed{req: req, intended: start.Add(req.At)}
	}
	close(queue)
	wg.Wait()

	res := &Result{
		ReadHist:  NewHist(),
		WriteHist: NewHist(),
		Digest:    sched.Digest(),
	}
	for _, tl := range tallies {
		res.ReadHist.Merge(tl.readHist)
		res.WriteHist.Merge(tl.writeHist)
		res.ReadsOK += tl.readsOK
		res.WritesOK += tl.writesOK
		res.ReadsFailed += tl.readsFailed
		res.WritesQueued += tl.writesQueued
		res.Unexplained += tl.unexplained
		res.NTCRead += tl.ntcRead
		res.NTCWrite += tl.ntcWrite
		for _, s := range tl.errSamples {
			if len(res.ErrSamples) < errSample {
				res.ErrSamples = append(res.ErrSamples, s)
			}
		}
	}
	res.Elapsed = lastDone.t.Sub(start)
	if res.Elapsed <= 0 {
		res.Elapsed = time.Since(start)
	}
	span := sched.Duration()
	if span > 0 {
		res.Offered = float64(len(sched.Requests)) / span.Seconds()
	}
	if res.Elapsed > 0 {
		res.Achieved = float64(res.Requests()) / res.Elapsed.Seconds()
	}
	return res, nil
}

// MetricsCheck cross-references a run's own accounting against the
// cluster's drp_net_* instruments: every request the harness issued must
// appear in the cluster's counters exactly once. Deltas are computed
// against a snapshot taken before the run, so deploy-time traffic (or an
// earlier run on the same registry) does not pollute the check.
type MetricsCheck struct {
	Reads        deltaCheck `json:"reads"`
	Writes       deltaCheck `json:"writes"`
	ReadsFailed  deltaCheck `json:"reads_failed"`
	WritesQueued deltaCheck `json:"writes_queued"`
	NTC          deltaCheck `json:"ntc"`
	Match        bool       `json:"match"`
}

type deltaCheck struct {
	Load    int64 `json:"load"`
	Cluster int64 `json:"cluster"`
}

// netCounters freezes the drp_net_* counters a load run moves.
type NetCounters struct {
	readsLocal, readsRemote   int64
	writesPrimary, writesRem  int64
	readFailed, writeQueued   int64
	ntcRead, ntcWrite, ntcTot int64
}

// CaptureNetCounters snapshots the cluster counters CrossCheck diffs.
// Call it immediately before Run.
func CaptureNetCounters(reg *metrics.Registry) NetCounters {
	c := func(name string, labels metrics.Labels) int64 {
		return reg.Counter(name, "", labels).Value()
	}
	nc := NetCounters{
		readsLocal:    c("drp_net_replica_reads_total", metrics.Labels{"source": "local"}),
		readsRemote:   c("drp_net_replica_reads_total", metrics.Labels{"source": "remote"}),
		writesPrimary: c("drp_net_writes_total", metrics.Labels{"role": "primary"}),
		writesRem:     c("drp_net_writes_total", metrics.Labels{"role": "remote"}),
		readFailed:    c("drp_net_degraded_total", metrics.Labels{"kind": "read_failed"}),
		writeQueued:   c("drp_net_degraded_total", metrics.Labels{"kind": "write_queued"}),
		ntcRead:       c("drp_net_ntc_total", metrics.Labels{"op": "read"}),
		ntcWrite:      c("drp_net_ntc_total", metrics.Labels{"op": "write"}),
	}
	nc.ntcTot = nc.ntcRead + nc.ntcWrite
	return nc
}

// CrossCheck diffs the cluster's counters against the before-run capture
// and compares the movement to the run's own tallies. Match is true only
// when every request and every NTC unit is accounted exactly once.
func CrossCheck(res *Result, reg *metrics.Registry, before NetCounters) MetricsCheck {
	after := CaptureNetCounters(reg)
	mc := MetricsCheck{
		Reads:        deltaCheck{Load: res.ReadsOK, Cluster: after.readsLocal + after.readsRemote - before.readsLocal - before.readsRemote},
		Writes:       deltaCheck{Load: res.WritesOK, Cluster: after.writesPrimary + after.writesRem - before.writesPrimary - before.writesRem},
		ReadsFailed:  deltaCheck{Load: res.ReadsFailed, Cluster: after.readFailed - before.readFailed},
		WritesQueued: deltaCheck{Load: res.WritesQueued, Cluster: after.writeQueued - before.writeQueued},
		NTC:          deltaCheck{Load: res.NTC(), Cluster: after.ntcTot - before.ntcTot},
	}
	mc.Match = mc.Reads.Load == mc.Reads.Cluster &&
		mc.Writes.Load == mc.Writes.Cluster &&
		mc.ReadsFailed.Load == mc.ReadsFailed.Cluster &&
		mc.WritesQueued.Load == mc.WritesQueued.Cluster &&
		mc.NTC.Load == mc.NTC.Cluster
	return mc
}

// Describe renders the mismatch (or match) for error messages.
func (mc MetricsCheck) Describe() string {
	return fmt.Sprintf("reads %d/%d writes %d/%d reads_failed %d/%d writes_queued %d/%d ntc %d/%d (load/cluster)",
		mc.Reads.Load, mc.Reads.Cluster,
		mc.Writes.Load, mc.Writes.Cluster,
		mc.ReadsFailed.Load, mc.ReadsFailed.Cluster,
		mc.WritesQueued.Load, mc.WritesQueued.Cluster,
		mc.NTC.Load, mc.NTC.Cluster)
}
