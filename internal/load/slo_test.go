package load

import (
	"strings"
	"testing"
	"time"
)

// resultWithLatencies builds a result whose read/write histograms hold
// the given millisecond samples.
func resultWithLatencies(readMS, writeMS []int64, failed, queued, unexplained int64) *Result {
	res := &Result{ReadHist: NewHist(), WriteHist: NewHist()}
	for _, ms := range readMS {
		res.ReadHist.Record(ms * int64(time.Millisecond))
		res.ReadsOK++
	}
	for _, ms := range writeMS {
		res.WriteHist.Record(ms * int64(time.Millisecond))
		res.WritesOK++
	}
	res.ReadsFailed = failed
	res.WritesQueued = queued
	res.Unexplained = unexplained
	res.Offered = 100
	res.Achieved = 95
	return res
}

func TestParseSLORejectsGarbage(t *testing.T) {
	for _, expr := range []string{
		"p98<5ms",        // unknown quantile
		"p99<abc",        // bad duration
		"p99<-3ms",       // negative bound
		"p99>5ms",        // wrong comparator for latency
		"err<150%",       // outside [0,100%]
		"err<x",          // not a number
		"tput>-5%",       // negative
		"p99<5ms,,err<1", // empty term
		"latency<5ms",    // unknown term
	} {
		if _, err := ParseSLO(expr); err == nil {
			t.Errorf("ParseSLO(%q) accepted", expr)
		}
	}
}

func TestParseSLOEmptyIsVacuous(t *testing.T) {
	slo, err := ParseSLO("  ")
	if err != nil || slo != nil {
		t.Fatalf("empty expression: slo=%v err=%v", slo, err)
	}
	res := resultWithLatencies([]int64{1}, nil, 0, 0, 0)
	if out := slo.Eval(res); !out.Pass || len(out.Terms) != 0 {
		t.Fatalf("nil SLO must pass vacuously: %+v", out)
	}
}

func TestSLOEvalLatencyGates(t *testing.T) {
	// 100 reads: 97 at 1ms and three 100ms stragglers, so the p99 rank
	// (⌈0.99·100⌉ = 99) lands inside the straggler tail; writes all fast.
	readMS := make([]int64, 97)
	for i := range readMS {
		readMS[i] = 1
	}
	readMS = append(readMS, 100, 100, 100)
	// Writes stay at 1ms: a 2ms sample's bucket upper edge slightly
	// exceeds 2ms, which would trip the joint p50<2ms case below.
	res := resultWithLatencies(readMS, []int64{1, 1, 1}, 0, 0, 0)

	cases := []struct {
		expr string
		pass bool
	}{
		{"p50<5ms", true},
		{"p99<50ms", false},      // straggler breaks the joint gate
		{"write.p99<50ms", true}, // scoped to writes it passes
		{"read.p99<50ms", false}, // scoped to reads it fails
		{"p99<200ms", true},      // generous bound passes
		{"p99.9<200ms,p50<2ms", true},
		{"p999<50ms", false},
	}
	for _, tc := range cases {
		slo, err := ParseSLO(tc.expr)
		if err != nil {
			t.Fatalf("ParseSLO(%q): %v", tc.expr, err)
		}
		if out := slo.Eval(res); out.Pass != tc.pass {
			t.Errorf("%q: pass=%v want %v (%+v)", tc.expr, out.Pass, tc.pass, out.Terms)
		}
	}
}

func TestSLOEvalErrorAndThroughputGates(t *testing.T) {
	// 97 served + 2 failed reads + 1 queued write = 3% degraded.
	res := resultWithLatencies(make([]int64, 87), make([]int64, 10), 2, 1, 0)

	for _, tc := range []struct {
		expr string
		pass bool
	}{
		{"err<5%", true},
		{"err<3%", false}, // exactly 3% is not under 3%
		{"err<0.02", false},
		{"tput>90%", true}, // 95/100 achieved
		{"tput>0.96", false},
	} {
		slo, err := ParseSLO(tc.expr)
		if err != nil {
			t.Fatalf("ParseSLO(%q): %v", tc.expr, err)
		}
		if out := slo.Eval(res); out.Pass != tc.pass {
			t.Errorf("%q: pass=%v want %v (%+v)", tc.expr, out.Pass, tc.pass, out.Terms)
		}
	}
}

func TestSLOResultRendersInReport(t *testing.T) {
	res := resultWithLatencies([]int64{1, 2, 3}, []int64{1}, 0, 0, 0)
	slo, err := ParseSLO("p99<1us")
	if err != nil {
		t.Fatal(err)
	}
	pr := DefaultProfile()
	sched := &Schedule{Sites: 2, Objects: 3, Reads: 3, Writes: 1,
		Requests: make([]Request, 4)}
	rep := BuildReport("sra", pr, sched, res, slo, nil)
	if rep.SLO.Pass {
		t.Fatal("1µs gate must fail against millisecond latencies")
	}
	text := rep.Text()
	for _, want := range []string{"FAIL", "VIOLATED", "p99<1us"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}
}
