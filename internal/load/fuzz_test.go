package load

import (
	"bytes"
	"testing"
)

// FuzzLoadProfile hammers the profile decode → validate → re-encode
// path with arbitrary bytes: parsing must never panic, validation must
// reject ragged or negative latency matrices and malformed origin
// mixes, and any profile that survives validation must round-trip
// through its canonical encoding byte-identically (the property the
// schedule fingerprint relies on).
func FuzzLoadProfile(f *testing.F) {
	seed := DefaultProfile()
	if canon, err := seed.Canonical(); err == nil {
		f.Add(canon)
	}
	f.Add([]byte(`{"seed":3,"rate":100,"duration_ms":500,"arrival":"bursty","burst_mult":5,"burst_start_ms":100,"burst_end_ms":300,"burst_focus":0.5,"write_fraction":0.2,"skew":1.1,"geo":"wan3"}`))
	f.Add([]byte(`{"rate":10,"duration_ms":100,"arrival":"uniform","geo":"none","write_fraction":0,"skew":0,"origins":[1,0,2,1],"seed":0}`))
	f.Add([]byte(`{"rate":10,"duration_ms":100,"arrival":"poisson","write_fraction":0,"skew":0,"seed":0,"geo":"none","matrix_ms":[[0,5],[5,0]]}`))
	f.Add([]byte(`{"rate":10,"duration_ms":100,"arrival":"poisson","write_fraction":0,"skew":0,"seed":0,"geo":"none","matrix_ms":[[0,5],[-5,0]]}`))
	f.Add([]byte(`{"rate":1e308,"duration_ms":9999999999,"arrival":"poisson"}`))
	f.Add([]byte(`not json`))

	const sites = 4
	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := ParseProfile(data)
		if err != nil {
			return // malformed JSON or unknown fields: rejected, not panicked
		}
		if err := pr.Validate(sites); err != nil {
			return // rejected profiles must not be usable
		}

		// Sanity the validator actually enforced its contract.
		if !(pr.Rate > 0) || pr.DurationMS <= 0 {
			t.Fatalf("validator accepted degenerate rate/duration: %+v", pr)
		}
		for i, row := range pr.MatrixMS {
			if len(row) != len(pr.MatrixMS) {
				t.Fatalf("validator accepted ragged matrix row %d: %+v", i, pr.MatrixMS)
			}
			for j, d := range row {
				if d < 0 || row[j] != pr.MatrixMS[j][i] {
					t.Fatalf("validator accepted negative/asymmetric matrix: %+v", pr.MatrixMS)
				}
			}
		}

		// A valid profile must build a latency plan without error…
		if _, err := pr.LatencyPlan(sites); err != nil {
			t.Fatalf("valid profile rejected by LatencyPlan: %v", err)
		}

		// …and round-trip canonically.
		canon, err := pr.Canonical()
		if err != nil {
			t.Fatalf("valid profile failed to encode: %v", err)
		}
		back, err := ParseProfile(canon)
		if err != nil {
			t.Fatalf("canonical encoding failed to parse: %v\n%s", err, canon)
		}
		canon2, err := back.Canonical()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", canon, canon2)
		}
	})
}
