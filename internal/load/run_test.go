package load

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"drp/internal/baseline"
	"drp/internal/core"
	"drp/internal/fault"
	"drp/internal/metrics"
	"drp/internal/netnode"
	"drp/internal/sra"
	"drp/internal/workload"
)

func gen(t testing.TB, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func startCluster(t *testing.T, p *core.Problem) (*netnode.Cluster, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	netnode.RegisterMetricFamilies(reg)
	c, err := netnode.StartLocal(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.EnableMetrics(reg)
	return c, reg
}

// TestOpenLoopRunAgainstCluster is the end-to-end satellite: a seeded
// burst against a live 4-site cluster must achieve the offered rate
// within tolerance, finish with zero unexplained errors, and — the exact
// accounting claim — move the cluster's drp_net_* counters by precisely
// the runner's own per-op tallies.
func TestOpenLoopRunAgainstCluster(t *testing.T) {
	p := gen(t, 4, 24, 0.1, 0.5, 3)
	c, reg := startCluster(t, p)
	scheme := sra.Run(p, sra.Options{}).Scheme
	if _, err := c.Deploy(scheme); err != nil {
		t.Fatal(err)
	}

	pr := DefaultProfile()
	pr.Seed = 11
	pr.Rate = 400
	pr.DurationMS = 1500
	pr.WriteFraction = 0.15
	sched, err := BuildSchedule(p.Sites(), p.Objects(), pr)
	if err != nil {
		t.Fatal(err)
	}

	before := CaptureNetCounters(reg)
	res, err := Run(ClusterTarget{C: c}, sched, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if res.Requests() != int64(len(sched.Requests)) {
		t.Fatalf("completed %d of %d scheduled requests", res.Requests(), len(sched.Requests))
	}
	if res.Unexplained != 0 {
		t.Fatalf("%d unexplained errors: %v", res.Unexplained, res.ErrSamples)
	}
	if res.ReadsFailed != 0 || res.WritesQueued != 0 {
		t.Fatalf("degraded outcomes without faults: failed=%d queued=%d", res.ReadsFailed, res.WritesQueued)
	}
	if res.ReadsOK != sched.Reads || res.WritesOK != sched.Writes {
		t.Fatalf("op counts drifted: reads %d/%d writes %d/%d", res.ReadsOK, sched.Reads, res.WritesOK, sched.Writes)
	}
	// Loopback at 400 req/s leaves the system far from saturation: the
	// achieved rate must sit within 15% of offered.
	if res.Achieved < 0.85*res.Offered {
		t.Fatalf("achieved %.1f req/s vs offered %.1f — open loop fell behind", res.Achieved, res.Offered)
	}

	mc := CrossCheck(res, reg, before)
	if !mc.Match {
		t.Fatalf("metrics cross-check mismatch: %s", mc.Describe())
	}
	// The cluster's own NTC ledger must agree with both accountings.
	if total := c.TotalNTC(); total != res.NTC() {
		t.Fatalf("cluster NTC ledger %d != run accounting %d", total, res.NTC())
	}
	if res.Digest != sched.Digest() {
		t.Fatal("result digest does not fingerprint the driven schedule")
	}
}

// stallTarget serves instantly except for one long stall; the stall
// blocks its worker, so with one worker every queued request behind it
// is late relative to its intended send time.
type stallTarget struct {
	stallAt int64 // request ordinal that stalls
	stall   time.Duration
	served  atomic.Int64
}

func (s *stallTarget) Read(site, obj int) (int64, error) {
	if s.served.Add(1) == s.stallAt {
		time.Sleep(s.stall)
	}
	return 1, nil
}

func (s *stallTarget) Write(site, obj int) (int64, error) { return s.Read(site, obj) }

// TestCoordinatedOmissionStallRaisesP99 is the coordinated-omission
// regression: a server that stalls once for 400ms in the middle of a 1s
// run must push the measured p99 up toward the stall length, because
// every request scheduled during the stall waited. A closed-loop
// harness (or one measuring from actual send time) would report
// near-zero latencies here — the bug this test pins out.
func TestCoordinatedOmissionStallRaisesP99(t *testing.T) {
	pr := DefaultProfile()
	pr.Seed = 5
	pr.Rate = 1000
	pr.DurationMS = 1000
	pr.WriteFraction = 0
	pr.Arrival = ArrivalUniform
	sched, err := BuildSchedule(2, 4, pr)
	if err != nil {
		t.Fatal(err)
	}
	stall := 400 * time.Millisecond
	target := &stallTarget{stallAt: int64(len(sched.Requests)) / 4, stall: stall}

	res, err := Run(target, sched, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ~40% of the run sits behind the stall, so p99 of the recorded
	// latencies must reflect most of it. Demand at least half the stall —
	// generous against scheduler jitter, far above the sub-millisecond
	// latencies a coordinated-omission-blind harness would report.
	if p99 := res.ReadHist.Quantile(0.99); p99 < int64(stall)/2 {
		t.Fatalf("p99 = %v after a %v stall — coordinated omission is back",
			time.Duration(p99), stall)
	}
	// ~40% of requests queued behind the stall with latencies spread
	// uniformly up to its length, so p90 lands well inside that tail.
	if p90 := res.ReadHist.Quantile(0.90); p90 < int64(stall)/4 {
		t.Fatalf("p90 = %v after a %v stall — queue delay not measured",
			time.Duration(p90), stall)
	}
}

// TestABCompareSRABeatsPrimariesOnly replays the identical schedule
// against primaries-only and SRA placements under WAN link latency: the
// acceptance claim is that SRA wins on measured read p99 AND on total
// NTC, with both runs provably driving the same request stream.
func TestABCompareSRABeatsPrimariesOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("drives two clusters with injected WAN latency")
	}
	p := gen(t, 6, 24, 0.02, 1.0, 7)
	pr := DefaultProfile()
	pr.Seed = 9
	pr.Rate = 250
	pr.DurationMS = 1200
	pr.WriteFraction = 0.05
	// High skew keeps the read p99 rank on hot objects, which SRA
	// replicates everywhere at this capacity — so the tail collapses to
	// local reads and the margin over primaries-only is tens of ms, not
	// bucket noise.
	pr.Skew = 2.0
	pr.Geo = GeoWAN3
	sched, err := BuildSchedule(p.Sites(), p.Objects(), pr)
	if err != nil {
		t.Fatal(err)
	}

	runScheme := func(scheme *core.Scheme) *Report {
		t.Helper()
		c, reg := startCluster(t, p)
		if _, err := c.Deploy(scheme); err != nil {
			t.Fatal(err)
		}
		plan, err := pr.LatencyPlan(p.Sites())
		if err != nil {
			t.Fatal(err)
		}
		fault.Attach(c, fault.NewInjector(plan))
		before := CaptureNetCounters(reg)
		res, err := Run(ClusterTarget{C: c}, sched, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mc := CrossCheck(res, reg, before)
		if !mc.Match {
			t.Fatalf("cross-check mismatch: %s", mc.Describe())
		}
		return BuildReport("x", pr, sched, res, nil, &mc)
	}

	repNone := runScheme(baseline.NoReplication(p))
	repSRA := runScheme(sra.Run(p, sra.Options{}).Scheme)
	cmp := NewCompare(repNone, repSRA)

	if !cmp.SameSchedule {
		t.Fatalf("A/B did not replay the same schedule: %s vs %s",
			repNone.ScheduleDigest, repSRA.ScheduleDigest)
	}
	// With capacity for full replication and a 2% update ratio, SRA
	// replicates the read-hot objects everywhere: remote WAN reads become
	// local and the read tail collapses.
	if cmp.Delta.ReadP99MS >= 0 {
		t.Fatalf("SRA read p99 %.3fms not better than primaries-only %.3fms",
			repSRA.Read.P99MS, repNone.Read.P99MS)
	}
	if cmp.Delta.NTC >= 0 {
		t.Fatalf("SRA NTC %d not cheaper than primaries-only %d",
			repSRA.NTC.Total, repNone.NTC.Total)
	}
}

// TestRunRejectsDegenerateInputs covers the runner's error paths.
func TestRunRejectsDegenerateInputs(t *testing.T) {
	if _, err := Run(nil, &Schedule{Requests: make([]Request, 1)}, Options{}); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := Run(&stallTarget{}, &Schedule{}, Options{}); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

// errTarget always fails with a protocol-unknown error.
type errTarget struct{}

func (errTarget) Read(site, obj int) (int64, error)  { return 0, errors.New("boom") }
func (errTarget) Write(site, obj int) (int64, error) { return 0, errors.New("boom") }

// TestRunClassifiesUnexplainedErrors checks unknown failures are counted
// and sampled rather than silently folded into degraded outcomes.
func TestRunClassifiesUnexplainedErrors(t *testing.T) {
	pr := DefaultProfile()
	pr.Rate = 2000
	pr.DurationMS = 100
	sched, err := BuildSchedule(2, 4, pr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(errTarget{}, sched, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unexplained != int64(len(sched.Requests)) {
		t.Fatalf("unexplained = %d, want %d", res.Unexplained, len(sched.Requests))
	}
	if len(res.ErrSamples) == 0 || len(res.ErrSamples) > errSample {
		t.Fatalf("error samples = %d, want 1..%d", len(res.ErrSamples), errSample)
	}
	if res.ReadsOK != 0 || res.WritesOK != 0 {
		t.Fatal("failed requests counted as served")
	}
}
