// Package load is the open-loop load harness: it drives a live netnode
// cluster at a fixed offered arrival rate, with deterministic seeded
// schedules (Poisson or bursty arrivals, Zipf object popularity, a
// per-site origin mix), coordinated-omission-safe latency recording into
// log-linear histograms, geo-latency injection through drp/internal/fault
// link-latency middleware, and an SLO-gated report — the harness that
// turns eq. 4's solver-side cost numbers into measured end-to-end
// latency and throughput under concurrency.
//
// Open loop means the schedule, not the system under test, decides when
// requests fire: a request's intended send time is fixed up front, and
// its latency is measured from that intended time even when the system
// stalls and the request leaves late. A closed-loop driver (one request
// per goroutine, send-after-receive) silently self-throttles against a
// slow server and reports flattering latencies — the coordinated
// omission problem; this harness is built not to.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"drp/internal/fault"
)

// Arrival processes.
const (
	// ArrivalPoisson spaces requests by exponential inter-arrival times at
	// the profile's rate — independent users, the open-loop default.
	ArrivalPoisson = "poisson"
	// ArrivalUniform spaces requests exactly 1/rate apart — a metronome,
	// useful when a test wants zero arrival jitter.
	ArrivalUniform = "uniform"
	// ArrivalBursty is Poisson with a flash crowd: during the burst window
	// the rate multiplies by BurstMult and the object popularity collapses
	// onto the hottest objects (BurstFocus).
	ArrivalBursty = "bursty"
)

// Geo latency profile names.
const (
	// GeoNone injects no latency: raw loopback.
	GeoNone = "none"
	// GeoLAN injects a uniform 1ms on every inter-site link — one
	// datacenter, different racks.
	GeoLAN = "lan"
	// GeoWAN3 spreads the sites round-robin over three continents and
	// injects intra-region 2ms, and 40/70/90ms across region pairs — the
	// 3-continent WAN of the delay-aware placement literature.
	GeoWAN3 = "wan3"
)

// Profile parameterises one load run. The zero value is not runnable;
// start from DefaultProfile. Profiles are JSON round-trippable (the
// drpload -profile file) and everything deterministic flows from Seed.
type Profile struct {
	// Seed drives schedule generation via internal/xrand: two runs with
	// equal profiles produce byte-identical schedules.
	Seed uint64 `json:"seed"`
	// Rate is the offered arrival rate in requests per second.
	Rate float64 `json:"rate"`
	// DurationMS is the schedule length in milliseconds.
	DurationMS int64 `json:"duration_ms"`
	// Arrival selects the arrival process ("poisson", "uniform", "bursty").
	Arrival string `json:"arrival"`
	// BurstMult multiplies Rate inside the burst window (bursty only; > 1).
	BurstMult float64 `json:"burst_mult,omitempty"`
	// BurstStartMS/BurstEndMS delimit the burst window (bursty only).
	BurstStartMS int64 `json:"burst_start_ms,omitempty"`
	BurstEndMS   int64 `json:"burst_end_ms,omitempty"`
	// BurstFocus is the fraction of burst-window requests redirected to
	// the single hottest object — the flash crowd's subject (bursty only;
	// in [0,1], 0 keeps the ambient popularity).
	BurstFocus float64 `json:"burst_focus,omitempty"`
	// WriteFraction is the probability a request is a write (in [0,1]).
	WriteFraction float64 `json:"write_fraction"`
	// Skew is the Zipf exponent of object popularity (0 = uniform).
	Skew float64 `json:"skew"`
	// Origins weights the request origin mix per universe site. Empty
	// means uniform over the driven sites; otherwise it must have one
	// non-negative weight per site with a positive sum (zero-weight sites
	// originate nothing).
	Origins []float64 `json:"origins,omitempty"`
	// Geo names a built-in latency profile ("none", "lan", "wan3").
	Geo string `json:"geo"`
	// MatrixMS is an explicit symmetric site×site link-latency matrix in
	// milliseconds, overriding Geo when present.
	MatrixMS [][]int64 `json:"matrix_ms,omitempty"`
}

// DefaultProfile returns a runnable baseline: 2s of Poisson arrivals at
// 500 req/s, 10% writes, web-like Zipf popularity, no injected latency.
func DefaultProfile() Profile {
	return Profile{
		Seed:          1,
		Rate:          500,
		DurationMS:    2000,
		Arrival:       ArrivalPoisson,
		WriteFraction: 0.10,
		Skew:          0.8,
		Geo:           GeoNone,
	}
}

// Validate checks the profile against a cluster of m sites.
func (pr *Profile) Validate(m int) error {
	if m <= 0 {
		return fmt.Errorf("load: cluster has %d sites", m)
	}
	if !(pr.Rate > 0) || pr.Rate > 1e7 {
		return fmt.Errorf("load: rate %v outside (0, 1e7] req/s", pr.Rate)
	}
	if pr.DurationMS <= 0 || pr.DurationMS > 3_600_000 {
		return fmt.Errorf("load: duration %dms outside (0, 1h]", pr.DurationMS)
	}
	switch pr.Arrival {
	case ArrivalPoisson, ArrivalUniform:
		if pr.BurstMult != 0 || pr.BurstStartMS != 0 || pr.BurstEndMS != 0 || pr.BurstFocus != 0 {
			return fmt.Errorf("load: burst parameters need arrival %q", ArrivalBursty)
		}
	case ArrivalBursty:
		if !(pr.BurstMult > 1) || pr.BurstMult > 1e4 {
			return fmt.Errorf("load: bursty arrival needs burst_mult in (1, 1e4], got %v", pr.BurstMult)
		}
		if pr.BurstStartMS < 0 || pr.BurstEndMS <= pr.BurstStartMS || pr.BurstEndMS > pr.DurationMS {
			return fmt.Errorf("load: burst window [%d,%d)ms outside the %dms schedule", pr.BurstStartMS, pr.BurstEndMS, pr.DurationMS)
		}
		if pr.BurstFocus < 0 || pr.BurstFocus > 1 || pr.BurstFocus != pr.BurstFocus {
			return fmt.Errorf("load: burst_focus %v outside [0,1]", pr.BurstFocus)
		}
	default:
		return fmt.Errorf("load: unknown arrival process %q", pr.Arrival)
	}
	if pr.WriteFraction < 0 || pr.WriteFraction > 1 || pr.WriteFraction != pr.WriteFraction {
		return fmt.Errorf("load: write fraction %v outside [0,1]", pr.WriteFraction)
	}
	if pr.Skew < 0 || pr.Skew > 64 || pr.Skew != pr.Skew {
		return fmt.Errorf("load: Zipf skew %v outside [0,64]", pr.Skew)
	}
	if len(pr.Origins) > 0 {
		if len(pr.Origins) != m {
			return fmt.Errorf("load: %d origin weights for %d sites", len(pr.Origins), m)
		}
		var sum float64
		for i, w := range pr.Origins {
			if w < 0 || w != w {
				return fmt.Errorf("load: origin weight %v for site %d (must be ≥ 0)", w, i)
			}
			sum += w
		}
		if !(sum > 0) {
			return fmt.Errorf("load: origin weights sum to %v (need > 0)", sum)
		}
	}
	if len(pr.MatrixMS) > 0 {
		if len(pr.MatrixMS) != m {
			return fmt.Errorf("load: %d latency matrix rows for %d sites", len(pr.MatrixMS), m)
		}
		if _, err := fault.MatrixPlan(pr.MatrixMS); err != nil {
			return err
		}
	} else {
		switch pr.Geo {
		case GeoNone, GeoLAN, GeoWAN3:
		default:
			return fmt.Errorf("load: unknown geo profile %q", pr.Geo)
		}
	}
	return nil
}

// LatencyPlan resolves the profile's geo setting into a fault plan for a
// cluster of m sites: the explicit matrix when present, the named
// profile's matrix otherwise. GeoNone returns an empty plan.
func (pr *Profile) LatencyPlan(m int) (fault.Plan, error) {
	matrix := pr.MatrixMS
	if len(matrix) == 0 {
		matrix = GeoMatrix(pr.Geo, m)
	}
	if len(matrix) == 0 {
		return fault.Plan{}, nil
	}
	return fault.MatrixPlan(matrix)
}

// GeoMatrix returns the named profile's symmetric link-latency matrix in
// milliseconds for m sites, or nil for GeoNone/unknown names (Validate
// rejects the latter before anything runs).
func GeoMatrix(name string, m int) [][]int64 {
	var link func(i, j int) int64
	switch name {
	case GeoLAN:
		link = func(i, j int) int64 { return 1 }
	case GeoWAN3:
		// Sites spread round-robin over three regions; cross-region delays
		// are ballpark one-way WAN numbers (NA↔EU 40, NA↔AP 70, EU↔AP 90).
		cross := [3][3]int64{
			{2, 40, 70},
			{40, 2, 90},
			{70, 90, 2},
		}
		link = func(i, j int) int64 { return cross[i%3][j%3] }
	default:
		return nil
	}
	matrix := make([][]int64, m)
	for i := range matrix {
		matrix[i] = make([]int64, m)
		for j := range matrix[i] {
			if i == j {
				continue
			}
			d := link(i, j)
			if j < i {
				d = link(j, i) // symmetric by construction
			}
			matrix[i][j] = d
		}
	}
	return matrix
}

// Canonical returns the profile's canonical JSON encoding: fixed field
// order, two-space indent, trailing newline. Equal profiles encode to
// equal bytes, so a profile can serve as a schedule fingerprint input.
func (pr *Profile) Canonical() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pr); err != nil {
		return nil, fmt.Errorf("load: encode profile: %w", err)
	}
	return buf.Bytes(), nil
}

// ParseProfile decodes a profile from JSON, rejecting unknown fields so
// typos in hand-written profiles fail loudly. It does not validate —
// call Validate with the cluster size.
func ParseProfile(data []byte) (Profile, error) {
	var pr Profile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pr); err != nil {
		return Profile{}, fmt.Errorf("load: parse profile: %w", err)
	}
	return pr, nil
}

// LoadProfile reads and validates a profile file against m sites.
func LoadProfile(path string, m int) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, fmt.Errorf("load: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, 8<<20))
	if err != nil {
		return Profile{}, fmt.Errorf("load: read profile: %w", err)
	}
	pr, err := ParseProfile(data)
	if err != nil {
		return Profile{}, err
	}
	if err := pr.Validate(m); err != nil {
		return Profile{}, err
	}
	return pr, nil
}

// originSites returns the sites with a positive origin weight, ascending.
func (pr *Profile) originSites(m int) []int {
	if len(pr.Origins) == 0 {
		out := make([]int, m)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	for i, w := range pr.Origins {
		if w > 0 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
