package load

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO is a parsed service-level objective: a conjunction of gate terms
// evaluated against a run's result. The drpload expression grammar is a
// comma-separated list of terms:
//
//	p99<250ms          latency gate on reads AND writes (p50, p90, p99, p999)
//	read.p99<5ms       latency gate scoped to one op (read. / write.)
//	err<0.5%           failed+queued+unexplained requests under 0.5% of total
//	tput>95%           achieved throughput at least 95% of offered
//
// Latency values take any time.ParseDuration suffix.
type SLO struct {
	Expr  string
	terms []sloTerm
}

type sloTerm struct {
	raw      string
	kind     string  // "latency", "err", "tput"
	op       string  // "read", "write", "" = both (latency only)
	quantile float64 // latency only
	bound    float64 // ns for latency, fraction for err/tput
}

// quantileNames maps term prefixes to quantiles.
var quantileNames = map[string]float64{
	"p50":   0.50,
	"p90":   0.90,
	"p99":   0.99,
	"p999":  0.999,
	"p99.9": 0.999,
}

// ParseSLO parses an SLO expression. An empty expression yields a nil
// SLO, which every run satisfies.
func ParseSLO(expr string) (*SLO, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return nil, nil
	}
	slo := &SLO{Expr: expr}
	for _, raw := range strings.Split(expr, ",") {
		term := strings.TrimSpace(raw)
		if term == "" {
			return nil, fmt.Errorf("load: empty SLO term in %q", expr)
		}
		switch {
		case strings.HasPrefix(term, "err<"):
			frac, err := parsePercent(term[len("err<"):])
			if err != nil {
				return nil, fmt.Errorf("load: SLO term %q: %w", term, err)
			}
			slo.terms = append(slo.terms, sloTerm{raw: term, kind: "err", bound: frac})
		case strings.HasPrefix(term, "tput>"):
			frac, err := parsePercent(term[len("tput>"):])
			if err != nil {
				return nil, fmt.Errorf("load: SLO term %q: %w", term, err)
			}
			slo.terms = append(slo.terms, sloTerm{raw: term, kind: "tput", bound: frac})
		default:
			t, err := parseLatencyTerm(term)
			if err != nil {
				return nil, err
			}
			slo.terms = append(slo.terms, t)
		}
	}
	return slo, nil
}

func parseLatencyTerm(term string) (sloTerm, error) {
	t := sloTerm{raw: term, kind: "latency"}
	rest := term
	if strings.HasPrefix(rest, "read.") {
		t.op, rest = "read", rest[len("read."):]
	} else if strings.HasPrefix(rest, "write.") {
		t.op, rest = "write", rest[len("write."):]
	}
	name, bound, ok := strings.Cut(rest, "<")
	if !ok {
		return t, fmt.Errorf("load: SLO term %q: want <quantile><<duration>, err<pct%%> or tput><pct%%>", term)
	}
	q, ok := quantileNames[name]
	if !ok {
		return t, fmt.Errorf("load: SLO term %q: unknown quantile %q (p50, p90, p99, p999)", term, name)
	}
	d, err := time.ParseDuration(bound)
	if err != nil || d <= 0 {
		return t, fmt.Errorf("load: SLO term %q: bad latency bound %q", term, bound)
	}
	t.quantile = q
	t.bound = float64(d.Nanoseconds())
	return t, nil
}

// parsePercent parses "0.5%" or "0.005" into a fraction in [0,1].
func parsePercent(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad percentage %q", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 || v > 1 || v != v {
		return 0, fmt.Errorf("percentage %q outside [0,100%%]", s)
	}
	return v, nil
}

// TermResult reports one gate term's evaluation.
type TermResult struct {
	Term   string  `json:"term"`
	Actual float64 `json:"actual"` // ms for latency terms, fraction otherwise
	Bound  float64 `json:"bound"`
	Pass   bool    `json:"pass"`
}

// SLOResult is the report's SLO attainment section.
type SLOResult struct {
	Expr  string       `json:"expr"`
	Pass  bool         `json:"pass"`
	Terms []TermResult `json:"terms"`
}

// HasNonLatency reports whether the expression contains err or tput
// terms — gates that need the open-loop runner's own accounting and
// cannot be evaluated from latency instruments alone.
func (s *SLO) HasNonLatency() bool {
	if s == nil {
		return false
	}
	for _, t := range s.terms {
		if t.kind != "latency" {
			return true
		}
	}
	return false
}

// EvalQuantiles checks the expression's latency terms against an
// external quantile source — fn returns the measured quantile in
// nanoseconds for op "read" or "write" — so a tool holding only
// drp_net_request_seconds histograms can reuse the same gate grammar.
// Unprefixed terms take the worse of the two ops; err/tput terms fail
// (callers reject them up front via HasNonLatency).
func (s *SLO) EvalQuantiles(fn func(op string, p float64) int64) SLOResult {
	if s == nil {
		return SLOResult{Pass: true}
	}
	out := SLOResult{Expr: s.Expr, Pass: true}
	for _, t := range s.terms {
		tr := TermResult{Term: t.raw}
		if t.kind == "latency" {
			var ns int64
			switch t.op {
			case "read", "write":
				ns = fn(t.op, t.quantile)
			default:
				ns = fn("read", t.quantile)
				if w := fn("write", t.quantile); w > ns {
					ns = w
				}
			}
			tr.Actual = float64(ns) / 1e6
			tr.Bound = t.bound / 1e6
			tr.Pass = float64(ns) < t.bound
		}
		if !tr.Pass {
			out.Pass = false
		}
		out.Terms = append(out.Terms, tr)
	}
	return out
}

// Eval checks every term against the result. A nil SLO passes vacuously
// with no terms.
func (s *SLO) Eval(res *Result) SLOResult {
	if s == nil {
		return SLOResult{Pass: true}
	}
	out := SLOResult{Expr: s.Expr, Pass: true}
	for _, t := range s.terms {
		tr := TermResult{Term: t.raw}
		switch t.kind {
		case "latency":
			var ns int64
			switch t.op {
			case "read":
				ns = res.ReadHist.Quantile(t.quantile)
			case "write":
				ns = res.WriteHist.Quantile(t.quantile)
			default:
				ns = res.ReadHist.Quantile(t.quantile)
				if w := res.WriteHist.Quantile(t.quantile); w > ns {
					ns = w
				}
			}
			tr.Actual = float64(ns) / 1e6
			tr.Bound = t.bound / 1e6
			tr.Pass = float64(ns) < t.bound
		case "err":
			total := res.Requests()
			frac := 0.0
			if total > 0 {
				frac = float64(res.ReadsFailed+res.WritesQueued+res.Unexplained) / float64(total)
			}
			tr.Actual, tr.Bound = frac, t.bound
			tr.Pass = frac < t.bound || (t.bound == 0 && frac == 0)
		case "tput":
			ratio := 0.0
			if res.Offered > 0 {
				ratio = res.Achieved / res.Offered
			}
			tr.Actual, tr.Bound = ratio, t.bound
			tr.Pass = ratio > t.bound
		}
		if !tr.Pass {
			out.Pass = false
		}
		out.Terms = append(out.Terms, tr)
	}
	return out
}
