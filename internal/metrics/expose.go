package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, series
// sorted by label string, histograms as cumulative _bucket/_sum/_count
// series. The output is a pure function of the registry state, so two
// registries with equal deterministic instruments render identically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, e := range r.sorted() {
		if e.name != lastFamily {
			if e.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", e.name, strings.ReplaceAll(e.help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind)
			lastFamily = e.name
		}
		switch e.kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", e.name, e.labelStr, e.counter.Value())
		case KindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", e.name, e.labelStr, formatFloat(e.gauge.Value()))
		case KindHistogram:
			h := e.hist
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", e.name, withLE(e.labels, formatFloat(bound)), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", e.name, withLE(e.labels, "+Inf"), h.Count())
			fmt.Fprintf(&b, "%s_sum%s %s\n", e.name, e.labelStr, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, e.labelStr, h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLE renders labels plus the histogram bucket's le dimension.
func withLE(labels Labels, le string) string {
	merged := make(Labels, len(labels)+1)
	for k, v := range labels {
		merged[k] = v
	}
	merged["le"] = le
	return renderLabels(merged)
}

// formatFloat renders floats the way Prometheus clients expect: integers
// without an exponent or trailing zeros, everything else in shortest form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as text/plain Prometheus exposition — mount
// it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// expvarMu serialises publication checks: expvar.Publish panics on
// duplicate names, and CLI tests run several instrumented runs per process.
var expvarMu sync.Mutex

// PublishExpvar publishes the registry under the given expvar name (it then
// appears in /debug/vars as a JSON snapshot). Publishing the same name
// twice is a no-op — the first registry wins — because expvar's global
// namespace cannot be unpublished.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
