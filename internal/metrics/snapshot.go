package metrics

import (
	"encoding/json"
	"io"
	"os"
)

// Bucket is one cumulative histogram bucket: the count of observations
// less than or equal to the upper bound LE. The implicit +Inf bucket is not
// materialised — its cumulative count equals the instrument's Count.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// InstrumentSnapshot is the frozen state of one instrument.
type InstrumentSnapshot struct {
	Name   string            `json:"name"`
	Kind   Kind              `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Help   string            `json:"help,omitempty"`

	// Value carries counters (integral) and gauges.
	Value float64 `json:"value,omitempty"`

	// Count/Sum/Buckets carry histograms. P50/P99 are the interpolated
	// quantile estimates at freeze time (see Histogram.Quantile); they are
	// derived from Buckets, kept for direct consumption.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	P50     float64  `json:"p50,omitempty"`
	P99     float64  `json:"p99,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, ordered by (name,
// labels) so equal registry states marshal to equal bytes.
type Snapshot struct {
	Instruments []InstrumentSnapshot `json:"instruments"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	entries := r.sorted()
	out := Snapshot{Instruments: make([]InstrumentSnapshot, 0, len(entries))}
	for _, e := range entries {
		is := InstrumentSnapshot{Name: e.name, Kind: e.kind, Labels: e.labels, Help: e.help}
		switch e.kind {
		case KindCounter:
			is.Value = float64(e.counter.Value())
		case KindGauge:
			is.Value = e.gauge.Value()
		case KindHistogram:
			h := e.hist
			is.Count = h.Count()
			is.Sum = h.Sum()
			var cum uint64
			is.Buckets = make([]Bucket, len(h.bounds))
			cumAll := make([]uint64, len(h.bounds)+1)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				is.Buckets[i] = Bucket{LE: bound, Count: cum}
				cumAll[i] = cum
			}
			cumAll[len(h.bounds)] = cum + h.counts[len(h.bounds)].Load()
			is.P50 = bucketQuantile(h.bounds, cumAll, 0.50)
			is.P99 = bucketQuantile(h.bounds, cumAll, 0.99)
		}
		out.Instruments = append(out.Instruments, is)
	}
	return out
}

// CounterValue looks up a counter by name and exact label set and
// returns its integral value. The second result is false when no such
// instrument exists (or it is not a counter) — snapshot-file consumers
// like drpload's cross-check use it to audit archived runs.
func (s Snapshot) CounterValue(name string, labels map[string]string) (int64, bool) {
	for _, is := range s.Instruments {
		if is.Name != name || is.Kind != KindCounter || len(is.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if is.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return int64(is.Value), true
		}
	}
	return 0, false
}

// Filter returns the snapshot restricted to instruments keep accepts,
// preserving order.
func (s Snapshot) Filter(keep func(InstrumentSnapshot) bool) Snapshot {
	out := Snapshot{}
	for _, is := range s.Instruments {
		if keep(is) {
			out.Instruments = append(out.Instruments, is)
		}
	}
	return out
}

// Deterministic keeps only the instruments covered by the determinism
// contract — counters and histograms, whose updates commute — dropping
// gauges (last-writer-wins) and any *_seconds series (wall clock). Two
// instrumented runs of the same seeded workload produce equal Deterministic
// snapshots at any worker count.
func (s Snapshot) Deterministic() Snapshot {
	return s.Filter(func(is InstrumentSnapshot) bool {
		if is.Kind == KindGauge {
			return false
		}
		return !timingName(is.Name)
	})
}

func timingName(name string) bool {
	for _, suffix := range []string{"_seconds", "_seconds_total", "_per_second"} {
		if len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix {
			return true
		}
	}
	return false
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteSnapshotFile dumps the registry's snapshot to path — the CLI
// `-metrics-out` implementation.
func WriteSnapshotFile(r *Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.Snapshot().WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadSnapshotFile loads a snapshot written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}
