// Package metrics is the repository's zero-dependency telemetry layer: a
// concurrency-safe registry of named instruments (monotonic counters,
// last-value gauges, fixed-bound histograms) with Prometheus text-format
// exposition, expvar publication, deterministic JSON snapshots, a JSONL
// structured-event sink and a bridge from the solver runtime's progress
// events.
//
// The determinism contract mirrors the solver runtime's boundary-only
// discipline (DESIGN.md §7): instrumentation never draws randomness and
// never feeds back into a solver's decisions, so an instrumented run is
// bit-identical to an uninstrumented one at any worker count. Counter adds
// and histogram observations commute, and every histogram in this
// repository observes integer-valued quantities (NTC units) whose float64
// sums stay exact below 2^53 — so counter and histogram snapshots of a
// deterministic run are themselves identical at any worker count, which the
// tests pin. Gauges are last-writer-wins and timing instruments measure
// wall clock; both are excluded from determinism comparisons (see
// Snapshot.Deterministic).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the instrument types.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Labels attach constant dimensions to an instrument. Instruments with the
// same name but different label sets are distinct time series of one family
// and must share a kind.
type Labels map[string]string

// Counter is a monotonically increasing integer, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative n panics (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: counter add of negative %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-writer-wins float value, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (CAS loop; gauges may go down).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with ascending upper
// bounds (an implicit +Inf bucket catches the rest), tracking count and sum.
// Safe for concurrent use.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound with v <= bound
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the histogram's upper bucket bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Quantile estimates the p-quantile (p in [0,1]) of the observed values by
// linear interpolation inside the containing bucket. Mass in the +Inf
// bucket clamps to the highest finite bound — the estimate never invents
// values beyond the ladder — and an empty histogram reports 0. Concurrent
// observers may move individual buckets mid-read; like Prometheus's
// histogram_quantile, the estimate is only as consistent as the scrape.
func (h *Histogram) Quantile(p float64) float64 {
	cum := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return bucketQuantile(h.bounds, cum, p)
}

// bucketQuantile interpolates the p-quantile from cumulative bucket counts.
// cum has len(bounds)+1 entries; the last is the +Inf bucket. The first
// finite bucket interpolates from a lower edge of 0, matching the
// all-positive ladders ExponentialBuckets builds.
func bucketQuantile(bounds []float64, cum []uint64, p float64) float64 {
	if len(cum) == 0 || cum[len(cum)-1] == 0 || len(bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(cum[len(cum)-1])
	idx := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if idx >= len(bounds) {
		return bounds[len(bounds)-1]
	}
	lo, below := 0.0, uint64(0)
	if idx > 0 {
		lo, below = bounds[idx-1], cum[idx-1]
	}
	in := cum[idx] - below
	if in == 0 {
		return bounds[idx]
	}
	return lo + (bounds[idx]-lo)*(rank-float64(below))/float64(in)
}

// ExponentialBuckets returns count ascending bounds start, start·factor,
// start·factor², … — the fixed exponential ladders every histogram in this
// repository uses. start must be positive and factor > 1.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("metrics: bad exponential buckets (start=%v factor=%v count=%d)", start, factor, count))
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 100µs .. ~3.3s in doublings — request latencies and
// adaptation wall times in seconds.
func LatencyBuckets() []float64 { return ExponentialBuckets(100e-6, 2, 16) }

// CostBuckets spans 1 .. ~2.7e11 NTC units in powers of four — per-request
// transfer costs and best-so-far scheme costs.
func CostBuckets() []float64 { return ExponentialBuckets(1, 4, 20) }

// entry is one registered instrument.
type entry struct {
	name     string
	help     string
	labels   Labels
	labelStr string // rendered {k="v",...}, sorted by key; "" when unlabelled
	kind     Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. Instrument getters are get-or-create:
// the first call registers, later calls with the same (name, labels) return
// the same instrument; a kind conflict panics (programmer error, as with
// expvar). The zero Registry is not usable — call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	e := r.get(name, help, labels, KindCounter)
	return e.counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	e := r.get(name, help, labels, KindGauge)
	return e.gauge
}

// Histogram returns the histogram registered under name+labels, creating it
// with the given bucket bounds on first use. Later calls may pass nil
// bounds; non-nil bounds that disagree with the registered ones panic.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + renderLabels(labels)
	if e, ok := r.entries[key]; ok {
		if e.kind != KindHistogram {
			panic(fmt.Sprintf("metrics: %s already registered as %s", key, e.kind))
		}
		if bounds != nil && !equalBounds(bounds, e.hist.bounds) {
			panic(fmt.Sprintf("metrics: %s re-registered with different bounds", key))
		}
		return e.hist
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s needs bucket bounds", key))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %s bounds not ascending", key))
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(key, &entry{name: name, help: help, labels: copyLabels(labels), labelStr: renderLabels(labels), kind: KindHistogram, hist: h})
	return h
}

func (r *Registry) get(name, help string, labels Labels, kind Kind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + renderLabels(labels)
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered as %s, requested %s", key, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, help: help, labels: copyLabels(labels), labelStr: renderLabels(labels), kind: kind}
	switch kind {
	case KindCounter:
		e.counter = &Counter{}
	case KindGauge:
		e.gauge = &Gauge{}
	}
	r.register(key, e)
	return e
}

func (r *Registry) register(key string, e *entry) {
	checkName(e.name)
	for k := range e.labels {
		checkName(k)
	}
	// A family (shared name) must keep one kind across label sets; scan is
	// fine at this registry's size.
	for _, other := range r.entries {
		if other.name == e.name && other.kind != e.kind {
			panic(fmt.Sprintf("metrics: family %s mixes kinds %s and %s", e.name, other.kind, e.kind))
		}
	}
	r.entries[key] = e
}

// sorted returns the entries ordered by (name, labelStr) — the single
// deterministic ordering behind exposition and snapshots.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labelStr < out[j].labelStr
	})
	return out
}

func copyLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// renderLabels serialises a label set as {k="v",k2="v2"} with keys sorted;
// empty sets render as "".
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// checkName enforces the Prometheus metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) {
	if name == "" {
		panic("metrics: empty name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid name %q", name))
		}
	}
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
