package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAddAndInc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help", nil)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("test_total", "help", nil); again != c {
		t.Fatal("get-or-create returned a different counter")
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("test_total", "", nil).Add(-1)
}

func TestGaugeSetAdd(t *testing.T) {
	g := NewRegistry().Gauge("test", "", nil)
	g.Set(2.5)
	g.Add(-1.0)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test", "", []float64{1, 10, 100}, nil)
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 1066.5 {
		t.Fatalf("sum = %v, want 1066.5", got)
	}
	// Bounds are inclusive upper limits: cumulative counts 2, 4, 5, +Inf 6.
	snap := r.Snapshot().Instruments[0]
	wantCum := []uint64{2, 4, 5}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket le=%v count = %d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
}

func TestHistogramBoundsConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("test", "", []float64{1, 2}, nil)
	if h := r.Histogram("test", "", nil, nil); h == nil {
		t.Fatal("nil bounds on re-get should return the instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting bounds did not panic")
		}
	}()
	r.Histogram("test", "", []float64{1, 3}, nil)
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("test", "", nil)
}

func TestFamilyKindMixPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test", "", Labels{"a": "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("family kind mix did not panic")
		}
	}()
	r.Gauge("test", "", Labels{"a": "2"})
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	NewRegistry().Counter("bad name", "", nil)
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n := len(LatencyBuckets()); n != 16 {
		t.Fatalf("latency buckets = %d, want 16", n)
	}
	if n := len(CostBuckets()); n != 20 {
		t.Fatalf("cost buckets = %d, want 20", n)
	}
}

func TestRenderLabelsSortedAndEscaped(t *testing.T) {
	got := renderLabels(Labels{"b": "x\"y", "a": "p\\q\nr"})
	want := `{a="p\\q\nr",b="x\"y"}`
	if got != want {
		t.Fatalf("renderLabels = %s, want %s", got, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("drp_reqs_total", "Requests.", Labels{"op": "read"}).Add(3)
	r.Counter("drp_reqs_total", "Requests.", Labels{"op": "write"}).Add(1)
	r.Gauge("drp_live", "Live value.", nil).Set(0.5)
	h := r.Histogram("drp_lat", "Latency.", []float64{1, 2}, nil)
	h.Observe(1)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP drp_reqs_total Requests.\n",
		"# TYPE drp_reqs_total counter\n",
		`drp_reqs_total{op="read"} 3` + "\n",
		`drp_reqs_total{op="write"} 1` + "\n",
		"# TYPE drp_live gauge\n",
		"drp_live 0.5\n",
		"# TYPE drp_lat histogram\n",
		`drp_lat_bucket{le="1"} 1` + "\n",
		`drp_lat_bucket{le="2"} 1` + "\n",
		`drp_lat_bucket{le="+Inf"} 2` + "\n",
		"drp_lat_sum 6\n",
		"drp_lat_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear once per family, not once per series.
	if n := strings.Count(out, "# TYPE drp_reqs_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestSnapshotDeterministicFilters(t *testing.T) {
	r := NewRegistry()
	r.Counter("drp_work_total", "", nil).Inc()
	r.Gauge("drp_live", "", nil).Set(1)
	r.Gauge("drp_rate_per_second", "", nil).Set(9)
	r.Histogram("drp_adapt_seconds", "", []float64{1}, nil).Observe(0.2)
	r.Histogram("drp_cost", "", []float64{1}, nil).Observe(0.5)

	det := r.Snapshot().Deterministic()
	var names []string
	for _, is := range det.Instruments {
		names = append(names, is.Name)
	}
	if len(names) != 2 || names[0] != "drp_cost" || names[1] != "drp_work_total" {
		t.Fatalf("deterministic snapshot kept %v, want [drp_cost drp_work_total]", names)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("drp_work_total", "Work.", Labels{"k": "v"}).Add(7)
	r.Histogram("drp_cost", "Cost.", []float64{1, 2}, nil).Observe(1.5)

	path := t.TempDir() + "/snap.json"
	if err := WriteSnapshotFile(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Instruments) != 2 {
		t.Fatalf("round trip kept %d instruments, want 2", len(got.Instruments))
	}
	if got.Instruments[1].Value != 7 || got.Instruments[1].Labels["k"] != "v" {
		t.Fatalf("counter snapshot corrupted: %+v", got.Instruments[1])
	}
	if got.Instruments[0].Count != 1 || got.Instruments[0].Buckets[1].Count != 1 {
		t.Fatalf("histogram snapshot corrupted: %+v", got.Instruments[0])
	}
}

func TestEventLogJSONL(t *testing.T) {
	var b strings.Builder
	l := NewEventLog(&b)
	l.Emit("alpha", map[string]any{"x": 1})
	l.Emit("beta", nil)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0] != `{"event":"alpha","seq":1,"x":1}` {
		t.Fatalf("line 1 = %s", lines[0])
	}
	if lines[1] != `{"event":"beta","seq":2}` {
		t.Fatalf("line 2 = %s", lines[1])
	}
}

func TestEventLogEncodeError(t *testing.T) {
	var b strings.Builder
	NewEventLog(&b).Emit("bad", map[string]any{"f": math.NaN()})
	if !strings.Contains(b.String(), "metrics.encode_error") {
		t.Fatalf("unencodable field not recorded: %s", b.String())
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("drp_work_total", "", nil).Inc()
				r.Histogram("drp_cost", "", []float64{1, 10}, nil).Observe(float64(j % 20))
				r.Gauge("drp_live", "", nil).Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("drp_work_total", "", nil).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("drp_cost", "", nil, nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("drp_q", "", []float64{10, 20, 40}, nil)

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}

	// 10 observations spread evenly through the first bucket (0,10].
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	// p50 ranks 5 of 10 into [0,10): linear interpolation gives 5.
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v, want bucket bound 10, got %v", got, got)
	}

	// Add 10 observations in (20,40]: 20 total, half below 10.
	for i := 0; i < 10; i++ {
		h.Observe(30)
	}
	// p75 ranks 15 of 20 → 5 into the (20,40] bucket of mass 10 → 30.
	if got := h.Quantile(0.75); got != 30 {
		t.Fatalf("p75 = %v, want 30", got)
	}

	// +Inf mass clamps to the highest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 40 {
		t.Fatalf("p100 with +Inf mass = %v, want clamp to 40", got)
	}

	// Out-of-range p clamps rather than panicking.
	if got := h.Quantile(-1); got != 0 {
		t.Fatalf("p(-1) = %v, want 0", got)
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("drp_q", "", []float64{10, 20}, nil)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	s := r.Snapshot()
	if len(s.Instruments) != 1 {
		t.Fatalf("instruments = %d, want 1", len(s.Instruments))
	}
	is := s.Instruments[0]
	if is.P50 != h.Quantile(0.5) || is.P99 != h.Quantile(0.99) {
		t.Fatalf("snapshot p50/p99 = %v/%v, want %v/%v", is.P50, is.P99, h.Quantile(0.5), h.Quantile(0.99))
	}
	if is.P50 != 5 {
		t.Fatalf("p50 = %v, want 5", is.P50)
	}
}
