package metrics

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest makes a run self-describing and diffable: which tool ran with
// which flags and seed, on which git revision and Go toolchain, for how
// long, over which instance, and what it produced (final D, its eq. 4 term
// breakdown, solver accounting). Experiments archived next to their
// manifest can be compared across PRs without re-deriving the context.
type Manifest struct {
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`
	Seed uint64   `json:"seed,omitempty"`

	GitRevision string `json:"git_revision,omitempty"`
	GitDirty    bool   `json:"git_dirty,omitempty"`
	GoVersion   string `json:"go_version"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`

	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	ElapsedMS float64   `json:"elapsed_ms"`

	// Problem dimensions, when the run solves one instance.
	Sites   int `json:"sites,omitempty"`
	Objects int `json:"objects,omitempty"`

	// Result quality, when the run produces one scheme. Terms is eq. 4's
	// breakdown of FinalD: reads served by non-replicators, their write
	// shipping, and the replicators' update fan-in.
	Algorithm  string           `json:"algorithm,omitempty"`
	FinalD     int64            `json:"final_d,omitempty"`
	DPrime     int64            `json:"d_prime,omitempty"`
	SavingsPct float64          `json:"savings_pct,omitempty"`
	Terms      map[string]int64 `json:"eq4_terms,omitempty"`

	// Solver accounting, when a solver ran.
	Evaluations int    `json:"evaluations,omitempty"`
	Iterations  int    `json:"iterations,omitempty"`
	Stopped     string `json:"stopped,omitempty"`

	// Extra carries tool-specific facts (figure ids, epoch counts, ...).
	Extra map[string]any `json:"extra,omitempty"`
}

// NewManifest starts a manifest for tool, stamping the start time, the
// toolchain and the VCS revision baked into the binary (present when built
// from a git checkout with module info; empty under plain `go test`).
func NewManifest(tool string, args []string) *Manifest {
	m := &Manifest{
		Tool:      tool,
		Args:      args,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Start:     time.Now(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// Write stamps the end time and writes the manifest to path as indented
// JSON.
func (m *Manifest) Write(path string) error {
	m.End = time.Now()
	m.ElapsedMS = float64(m.End.Sub(m.Start)) / float64(time.Millisecond)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
