package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventLog is a structured JSONL sink: one JSON object per line, each
// carrying a monotonic sequence number, the event name and the caller's
// fields (keys sorted by encoding/json, so equal events marshal to equal
// bytes). Emit is safe for concurrent use; lines are flushed as written so
// a crashed run keeps everything emitted before the crash.
//
// Timestamps are optional and off by default: the solver runtime's
// boundary-only discipline makes event *content* deterministic for
// deterministic quantities, and omitting wall-clock stamps keeps single
// -stream logs byte-comparable across runs. Call Timestamps(true) for
// operational logs that need them.
type EventLog struct {
	mu    sync.Mutex
	w     *bufio.Writer
	seq   int64
	stamp bool
	now   func() time.Time
}

// NewEventLog wraps w as a JSONL event sink.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: bufio.NewWriter(w), now: time.Now}
}

// Timestamps toggles an RFC3339Nano "ts" field on every event.
func (l *EventLog) Timestamps(on bool) *EventLog {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stamp = on
	return l
}

// Emit writes one event line. fields must be JSON-encodable; the reserved
// keys "seq", "event" and "ts" are overwritten if supplied.
func (l *EventLog) Emit(event string, fields map[string]any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	obj := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		obj[k] = v
	}
	obj["seq"] = l.seq
	obj["event"] = event
	if l.stamp {
		obj["ts"] = l.now().Format(time.RFC3339Nano)
	}
	data, err := json.Marshal(obj)
	if err != nil {
		// A non-encodable field is a programmer error; record it without
		// losing the line.
		data = []byte(`{"event":"metrics.encode_error","error":` + jsonString(err.Error()) + `}`)
	}
	l.w.Write(data)
	l.w.WriteByte('\n')
	l.w.Flush()
}

// Flush forces buffered lines out (Emit already flushes per line; Flush
// exists for symmetry and future buffered modes).
func (l *EventLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
