package metrics_test

// Integration tests for the telemetry layer against the real solvers and
// simulators: the determinism contract (identical counter/histogram
// snapshots at any worker count) and the HTTP exposition endpoint serving
// the solver, cluster-epoch and netnode families together.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"drp/internal/agra"
	"drp/internal/cluster"
	"drp/internal/gra"
	"drp/internal/metrics"
	"drp/internal/netnode"
	"drp/internal/solver"
	"drp/internal/sra"
	"drp/internal/workload"
)

// deterministicJSON renders the comparable part of a registry: counters and
// histograms minus wall-clock series.
func deterministicJSON(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	data, err := json.Marshal(reg.Snapshot().Deterministic())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestInstrumentedGRASnapshotsIdenticalAcrossWorkers(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(12, 24, 0.05, 0.2), 7)
	if err != nil {
		t.Fatal(err)
	}
	runAt := func(par int) string {
		reg := metrics.NewRegistry()
		params := gra.DefaultParams()
		params.PopSize = 16
		params.Generations = 10
		params.Seed = 3
		params.Parallelism = par
		res, err := gra.RunWith(p, params, solver.Run{Observer: metrics.BridgeObserver(reg, nil, nil)})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		metrics.RecordStats(reg, "gra", res.Stats, nil)
		return deterministicJSON(t, reg)
	}
	serial := runAt(1)
	if wide := runAt(8); wide != serial {
		t.Fatalf("-par 8 deterministic snapshot diverged from -par 1:\npar8: %s\npar1: %s", wide, serial)
	}
	if !strings.Contains(serial, "drp_solver_iterations_total") {
		t.Fatalf("snapshot missing solver instruments: %s", serial)
	}
}

func TestInstrumentedClusterSnapshotsIdenticalAcrossWorkers(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(8, 16, 0.05, 0.2), 11)
	if err != nil {
		t.Fatal(err)
	}
	initial := sra.Run(p, sra.Options{}).Scheme
	runAt := func(par int) string {
		reg := metrics.NewRegistry()
		graParams := gra.DefaultParams()
		graParams.PopSize = 10
		graParams.Generations = 6
		graParams.Parallelism = par
		cfg := clusterConfig(par, graParams, reg)
		if _, err := cluster.Run(p, initial, cfg); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return deterministicJSON(t, reg)
	}
	serial := runAt(1)
	if wide := runAt(8); wide != serial {
		t.Fatalf("-par 8 deterministic snapshot diverged from -par 1:\npar8: %s\npar1: %s", wide, serial)
	}
	for _, family := range []string{"drp_cluster_epochs_total", "drp_cluster_serve_ntc_total", "drp_solver_iterations_total"} {
		if !strings.Contains(serial, family) {
			t.Fatalf("snapshot missing %s: %s", family, serial)
		}
	}
}

func TestMetricsEndpointServesAllFamilies(t *testing.T) {
	p, err := workload.Generate(workload.NewSpec(6, 10, 0.05, 0.2), 5)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	metrics.RegisterSolverFamilies(reg, "agra+mini")
	cluster.RegisterMetricFamilies(reg)
	netnode.RegisterMetricFamilies(reg)

	// Drive all three layers into the shared registry: a cluster simulation
	// (epoch + solver families) and real TCP traffic (netnode families).
	initial := sra.Run(p, sra.Options{}).Scheme
	graParams := gra.DefaultParams()
	graParams.PopSize = 8
	graParams.Generations = 4
	if _, err := cluster.Run(p, initial, clusterConfig(1, graParams, reg)); err != nil {
		t.Fatal(err)
	}
	net, err := netnode.StartLocal(p)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.EnableMetrics(reg)
	if _, err := net.DriveTraffic(); err != nil {
		t.Fatal(err)
	}

	srv, err := metrics.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := httpGet(t, "http://"+srv.Addr()+"/metrics")
	for _, family := range []string{
		"drp_solver_iterations_total", "drp_solver_runs_total",
		"drp_cluster_epochs_total", "drp_cluster_serve_ntc_total", "drp_cluster_adapt_seconds_bucket",
		"drp_net_request_seconds_bucket", "drp_net_replica_reads_total", "drp_net_messages_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(body, "# TYPE drp_cluster_epochs_total counter") {
		t.Errorf("/metrics missing TYPE metadata:\n%.2000s", body)
	}

	vars := httpGet(t, "http://"+srv.Addr()+"/debug/vars")
	if !strings.Contains(vars, "drp_metrics") {
		t.Errorf("/debug/vars missing published registry")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(body)
}

// clusterConfig builds a small adaptive simulation wired to reg.
func clusterConfig(par int, graParams gra.Params, reg *metrics.Registry) cluster.Config {
	agraParams := agra.DefaultParams()
	agraParams.Parallelism = par
	return cluster.Config{
		Epochs:     3,
		Policy:     cluster.PolicyAGRAMini,
		Drift:      &workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.5},
		Threshold:  2.0,
		GRAParams:  graParams,
		AGRAParams: agraParams,
		Seed:       1,
		Metrics:    reg,
	}
}
