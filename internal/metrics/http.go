package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry over HTTP for live scraping:
//
//	/metrics      Prometheus text exposition
//	/debug/vars   expvar JSON (the registry is published as "drp_metrics")
//	/debug/pprof  the standard Go profiling endpoints
//
// It binds its own mux, so importing this package never mutates
// http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts a metrics server on addr ("127.0.0.1:0" picks an ephemeral
// port; read it back with Addr).
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	reg.PublishExpvar("drp_metrics")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
