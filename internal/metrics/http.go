package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Server exposes a registry over HTTP for live scraping:
//
//	/metrics      Prometheus text exposition
//	/debug/vars   expvar JSON (the registry is published as "drp_metrics")
//	/debug/pprof  the standard Go profiling endpoints
//
// It binds its own mux, so importing this package never mutates
// http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts a metrics server on addr ("127.0.0.1:0" picks an ephemeral
// port; read it back with Addr).
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	reg.PublishExpvar("drp_metrics")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// EnableRuntimeProfiles turns on the runtime's contention profilers so the
// /debug/pprof/block and /debug/pprof/mutex endpoints carry data.
// blockRate is the blocking-event sampling rate in nanoseconds (1 samples
// every event; see runtime.SetBlockProfileRate) and mutexFraction samples
// 1/n of mutex contention events (see runtime.SetMutexProfileFraction).
// Zero leaves the corresponding profiler untouched; both default to off
// because sampling taxes every contended lock in the process.
func EnableRuntimeProfiles(blockRate, mutexFraction int) {
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
