package metrics

import (
	"strings"
	"testing"
	"time"

	"drp/internal/solver"
)

func TestBridgeObserverRecordsProgress(t *testing.T) {
	r := NewRegistry()
	var b strings.Builder
	events := NewEventLog(&b)
	var forwarded []solver.Progress
	next := solver.ObserverFunc(func(p solver.Progress) { forwarded = append(forwarded, p) })

	obs := BridgeObserver(r, events, next)
	for i := 1; i <= 3; i++ {
		obs.Progress(solver.Progress{
			Algorithm: "gra", Iteration: i,
			BestFitness: 1.0 / float64(i), BestCost: int64(1000 * i),
			Evaluations: 50 * i, Elapsed: time.Millisecond,
		})
	}

	if got := r.Counter("drp_solver_iterations_total", "", Labels{"algorithm": "gra"}).Value(); got != 3 {
		t.Fatalf("iterations counter = %d, want 3", got)
	}
	if got := r.Histogram("drp_solver_best_ntc", "", nil, Labels{"algorithm": "gra"}).Count(); got != 3 {
		t.Fatalf("best-ntc histogram count = %d, want 3", got)
	}
	if got := r.Gauge("drp_solver_best_cost", "", Labels{"algorithm": "gra"}).Value(); got != 3000 {
		t.Fatalf("best-cost gauge = %v, want 3000", got)
	}
	if len(forwarded) != 3 {
		t.Fatalf("forwarded %d events to next, want 3", len(forwarded))
	}
	if got := strings.Count(b.String(), `"event":"solver.progress"`); got != 3 {
		t.Fatalf("event log has %d progress lines, want 3:\n%s", got, b.String())
	}
}

func TestBridgeObserverNilRegistryStillForwards(t *testing.T) {
	calls := 0
	obs := BridgeObserver(nil, nil, solver.ObserverFunc(func(solver.Progress) { calls++ }))
	obs.Progress(solver.Progress{Algorithm: "sra", Iteration: 1})
	if calls != 1 {
		t.Fatalf("next called %d times, want 1", calls)
	}
}

func TestRecordStats(t *testing.T) {
	r := NewRegistry()
	var b strings.Builder
	events := NewEventLog(&b)
	st := solver.Stats{Evaluations: 1234, Iterations: 7, Elapsed: 10 * time.Millisecond, Stopped: solver.StopCompleted}
	RecordStats(r, "gra", st, events)
	RecordStats(r, "gra", st, events)

	if got := r.Counter("drp_solver_runs_total", "", Labels{"algorithm": "gra"}).Value(); got != 2 {
		t.Fatalf("runs counter = %d, want 2", got)
	}
	if got := r.Counter("drp_solver_evaluations_total", "", Labels{"algorithm": "gra"}).Value(); got != 2468 {
		t.Fatalf("evaluations counter = %d, want 2468", got)
	}
	if got := r.Counter("drp_solver_stops_total", "", Labels{"algorithm": "gra", "reason": solver.StopCompleted.String()}).Value(); got != 2 {
		t.Fatalf("stops counter = %d, want 2", got)
	}
	if got := strings.Count(b.String(), `"event":"solver.finished"`); got != 2 {
		t.Fatalf("event log has %d finished lines, want 2", got)
	}
}

func TestRegisterSolverFamilies(t *testing.T) {
	r := NewRegistry()
	RegisterSolverFamilies(r, "gra", "agra")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, family := range []string{
		"drp_solver_iterations_total", "drp_solver_best_ntc",
		"drp_solver_runs_total", "drp_solver_evaluations_total", "drp_solver_stops_total",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("preregistered exposition missing %s", family)
		}
	}
	if !strings.Contains(out, `drp_solver_runs_total{algorithm="agra"} 0`) {
		t.Errorf("agra runs counter not exposed at zero:\n%s", out)
	}
}
