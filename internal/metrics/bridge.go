package metrics

import (
	"sync"
	"time"

	"drp/internal/solver"
)

// BridgeObserver adapts a metrics registry (and optionally an event log)
// into a solver.Observer: every per-iteration Progress event increments the
// per-algorithm iteration counter, feeds the best-cost convergence
// histogram and updates the live gauges, then forwards to next (which may
// be nil). The bridge is safe for concurrent emitters (AGRA's micro-GA
// fan-out) without external synchronisation — instruments are atomic and
// the event log locks internally — so it does NOT need solver.Synchronized
// unless next does.
//
// Determinism: the counter and histogram updates commute and observe only
// deterministic quantities (iteration boundaries, best NTC), so their
// snapshots are identical at any worker count. The gauges
// (drp_solver_evaluations, drp_solver_best_fitness, drp_solver_best_cost)
// are last-writer-wins live views and are excluded by
// Snapshot.Deterministic.
func BridgeObserver(reg *Registry, events *EventLog, next solver.Observer) solver.Observer {
	return &bridge{reg: reg, events: events, next: next, perAlg: make(map[string]*algInstruments)}
}

type bridge struct {
	reg    *Registry
	events *EventLog
	next   solver.Observer

	mu     sync.Mutex
	perAlg map[string]*algInstruments
}

type algInstruments struct {
	iterations  *Counter
	bestCostH   *Histogram
	bestCost    *Gauge
	bestFitness *Gauge
	evaluations *Gauge
}

func (b *bridge) instruments(alg string) *algInstruments {
	b.mu.Lock()
	defer b.mu.Unlock()
	ins, ok := b.perAlg[alg]
	if !ok {
		l := Labels{"algorithm": alg}
		ins = &algInstruments{
			iterations:  b.reg.Counter("drp_solver_iterations_total", "Completed solver iteration boundaries (generations, site visits, moves).", l),
			bestCostH:   b.reg.Histogram("drp_solver_best_ntc", "Best-so-far scheme NTC observed at each iteration boundary (convergence trajectory).", CostBuckets(), l),
			bestCost:    b.reg.Gauge("drp_solver_best_cost", "Most recent best-so-far scheme NTC.", l),
			bestFitness: b.reg.Gauge("drp_solver_best_fitness", "Most recent best fitness.", l),
			evaluations: b.reg.Gauge("drp_solver_evaluations", "Evaluations consumed so far by the most recently observed run.", l),
		}
		b.perAlg[alg] = ins
	}
	return ins
}

// Progress implements solver.Observer.
func (b *bridge) Progress(p solver.Progress) {
	if b.reg != nil {
		ins := b.instruments(p.Algorithm)
		ins.iterations.Inc()
		if p.BestCost > 0 {
			ins.bestCostH.Observe(float64(p.BestCost))
			ins.bestCost.Set(float64(p.BestCost))
		}
		if p.BestFitness != 0 {
			ins.bestFitness.Set(p.BestFitness)
		}
		ins.evaluations.Set(float64(p.Evaluations))
	}
	if b.events != nil {
		b.events.Emit("solver.progress", map[string]any{
			"algorithm":    p.Algorithm,
			"iteration":    p.Iteration,
			"best_fitness": p.BestFitness,
			"mean_fitness": p.MeanFitness,
			"best_ntc":     p.BestCost,
			"evaluations":  p.Evaluations,
			"elapsed_ms":   float64(p.Elapsed) / float64(time.Millisecond),
		})
	}
	if b.next != nil {
		b.next.Progress(p)
	}
}

// runsCounter, evalsCounter and stopsCounter get-or-create the finished-run
// accounting instruments; RecordStats and RegisterSolverFamilies share them
// so names and help strings cannot drift apart.
func runsCounter(reg *Registry, alg string) *Counter {
	return reg.Counter("drp_solver_runs_total", "Completed solver runs.", Labels{"algorithm": alg})
}

func evalsCounter(reg *Registry, alg string) *Counter {
	return reg.Counter("drp_solver_evaluations_total", "Cost-model evaluations consumed by finished runs.", Labels{"algorithm": alg})
}

func stopsCounter(reg *Registry, alg, reason string) *Counter {
	return reg.Counter("drp_solver_stops_total", "Finished runs by stop reason.", Labels{"algorithm": alg, "reason": reason})
}

// RegisterSolverFamilies pre-creates the drp_solver_* counter and histogram
// families for the given algorithm names, so an exposition endpoint shows
// the full surface (at zero) before — or without — any run completing.
func RegisterSolverFamilies(reg *Registry, algorithms ...string) {
	if reg == nil {
		return
	}
	b := &bridge{reg: reg, perAlg: make(map[string]*algInstruments)}
	for _, alg := range algorithms {
		b.instruments(alg)
		runsCounter(reg, alg)
		evalsCounter(reg, alg)
		stopsCounter(reg, alg, solver.StopCompleted.String())
	}
}

// RecordStats folds a finished run's solver.Stats into the registry: run
// and stop-reason counters, the evaluation total and the (wall-clock, hence
// non-deterministic) elapsed and throughput gauges. The counters record
// deterministic quantities, so they join the determinism contract.
func RecordStats(reg *Registry, alg string, st solver.Stats, events *EventLog) {
	if reg != nil {
		l := Labels{"algorithm": alg}
		runsCounter(reg, alg).Inc()
		evalsCounter(reg, alg).Add(int64(st.Evaluations))
		stopsCounter(reg, alg, st.Stopped.String()).Inc()
		reg.Gauge("drp_solver_elapsed_seconds", "Wall-clock duration of the most recent run.", l).Set(st.Elapsed.Seconds())
		if st.Elapsed > 0 {
			reg.Gauge("drp_solver_evals_per_second", "Evaluation throughput of the most recent run.", l).
				Set(float64(st.Evaluations) / st.Elapsed.Seconds())
		}
	}
	if events != nil {
		events.Emit("solver.finished", map[string]any{
			"algorithm":   alg,
			"evaluations": st.Evaluations,
			"iterations":  st.Iterations,
			"elapsed_ms":  float64(st.Elapsed) / float64(time.Millisecond),
			"stopped":     st.Stopped.String(),
		})
	}
}
