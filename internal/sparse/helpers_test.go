package sparse

import (
	"testing"

	"drp/internal/core"
	"drp/internal/xrand"
)

// denseFromModel expands a sparse model into the equivalent dense
// core.Problem — the other direction of FromProblem, for differential
// tests.
func denseFromModel(t *testing.T, mo *Model) *core.Problem {
	t.Helper()
	m, n := mo.Sites(), mo.Objects()
	cfg := core.Config{
		Sizes:      make([]int64, n),
		Capacities: make([]int64, m),
		Primaries:  make([]int, n),
		Reads:      make([][]int64, m),
		Writes:     make([][]int64, m),
		Dist:       mo.Dist(),
	}
	for i := 0; i < m; i++ {
		cfg.Capacities[i] = mo.Capacity(i)
		cfg.Reads[i] = make([]int64, n)
		cfg.Writes[i] = make([]int64, n)
	}
	for k := 0; k < n; k++ {
		cfg.Sizes[k] = mo.Size(k)
		cfg.Primaries[k] = int(mo.Primary(k))
		rs, rc := mo.ReadEntries(k)
		for idx, site := range rs {
			cfg.Reads[site][k] = rc[idx]
		}
		ws, wc := mo.WriteEntries(k)
		for idx, site := range ws {
			cfg.Writes[site][k] = wc[idx]
		}
	}
	p, err := core.NewProblem(cfg)
	if err != nil {
		t.Fatalf("dense problem from model: %v", err)
	}
	return p
}

// testModel generates a small sparse instance, failing the test on error.
func testModel(t *testing.T, sites, objects int, seed uint64) *Model {
	t.Helper()
	spec := NewWorkloadSpec(sites, objects)
	mo, err := GenerateWorkload(spec, seed)
	if err != nil {
		t.Fatalf("generate workload: %v", err)
	}
	return mo
}

// randomWalk applies steps random candidate-respecting mutations to both a
// sparse assignment and its dense mirror, calling check after each applied
// step. Additions draw from the candidate lists; removals from current
// replicas.
func randomWalk(t *testing.T, mo *Model, s *core.Scheme, a *Assignment, rng *xrand.Source, steps int, check func(step int)) {
	t.Helper()
	n := mo.Objects()
	for step := 0; step < steps; step++ {
		k := rng.Intn(n)
		if rng.Bool(0.6) {
			cand := mo.Candidates(k)
			site := int(cand[rng.Intn(len(cand))])
			errS := a.Add(site, k)
			errD := s.Add(site, k)
			if (errS == nil) != (errD == nil) {
				t.Fatalf("step %d: add(%d,%d) sparse err %v, dense err %v", step, site, k, errS, errD)
			}
		} else {
			repl := a.Replicators(k)
			site := int(repl[rng.Intn(len(repl))])
			errS := a.Remove(site, k)
			errD := s.Remove(site, k)
			if (errS == nil) != (errD == nil) {
				t.Fatalf("step %d: remove(%d,%d) sparse err %v, dense err %v", step, site, k, errS, errD)
			}
		}
		check(step)
	}
}
