package sparse

import (
	"math"
	"strings"
	"testing"

	"drp/internal/baseline"
	"drp/internal/core"
	"drp/internal/netsim"
	"drp/internal/workload"
	"drp/internal/xrand"
)

func TestFromProblemEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		p, err := workload.Generate(workload.NewSpec(10, 14, 0.05, 0.2), seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		mo, err := FromProblem(p)
		if err != nil {
			t.Fatalf("seed %d: FromProblem: %v", seed, err)
		}
		if mo.Sites() != p.Sites() || mo.Objects() != p.Objects() {
			t.Fatalf("seed %d: dims %d×%d, want %d×%d", seed, mo.Sites(), mo.Objects(), p.Sites(), p.Objects())
		}
		if mo.DPrime() != p.DPrime() {
			t.Fatalf("seed %d: D′ %d, dense %d", seed, mo.DPrime(), p.DPrime())
		}
		for k := 0; k < p.Objects(); k++ {
			if mo.VPrime(k) != p.VPrime(k) {
				t.Fatalf("seed %d: V′_%d %d, dense %d", seed, k, mo.VPrime(k), p.VPrime(k))
			}
			if mo.TotalReads(k) != p.TotalReads(k) || mo.TotalWrites(k) != p.TotalWrites(k) {
				t.Fatalf("seed %d: object %d traffic totals diverge", seed, k)
			}
		}
		for i := 0; i < p.Sites(); i++ {
			if mo.Capacity(i) != p.Capacity(i) {
				t.Fatalf("seed %d: capacity %d diverges", seed, i)
			}
		}
	}
}

func TestModelRoundTrip(t *testing.T) {
	mo := testModel(t, 12, 40, 7)
	p := denseFromModel(t, mo)
	back, err := FromProblem(p)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.DPrime() != mo.DPrime() {
		t.Fatalf("round-trip D′ %d, want %d", back.DPrime(), mo.DPrime())
	}
	r1, w1 := mo.AccessEntries()
	r2, w2 := back.AccessEntries()
	if r1 != r2 || w1 != w2 {
		t.Fatalf("round-trip nnz (%d,%d), want (%d,%d)", r2, w2, r1, w1)
	}
}

// validConfig builds a minimal well-formed 2-site, 2-object config for the
// validation table to corrupt.
func validConfig() Config {
	d := netsim.NewDistMatrix(2)
	d.Set(0, 1, 3)
	return Config{
		Sizes:      []int64{5, 7},
		Capacities: []int64{20, 20},
		Primaries:  []int32{0, 1},
		Reads: CSR{
			Off:  []int32{0, 1, 2},
			Site: []int32{1, 0},
			Cnt:  []int64{4, 9},
		},
		Writes: CSR{
			Off:  []int32{0, 0, 1},
			Site: []int32{0},
			Cnt:  []int64{2},
		},
		Dist: d,
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(validConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func(*Config)
		want    string
	}{
		{"nil dist", func(c *Config) { c.Dist = nil }, "nil distance"},
		{"no objects", func(c *Config) {
			c.Sizes = nil
			c.Primaries = nil
			c.Reads = CSR{Off: []int32{0}}
			c.Writes = CSR{Off: []int32{0}}
		}, "no objects"},
		{"capacity count", func(c *Config) { c.Capacities = c.Capacities[:1] }, "capacities"},
		{"primary count", func(c *Config) { c.Primaries = c.Primaries[:1] }, "primaries"},
		{"non-positive size", func(c *Config) { c.Sizes[0] = 0 }, "non-positive size"},
		{"negative capacity", func(c *Config) { c.Capacities[1] = -1 }, "negative capacity"},
		{"primary range", func(c *Config) { c.Primaries[0] = 5 }, "out-of-range primary"},
		{"primary fit", func(c *Config) { c.Capacities[0] = 1 }, "infeasible"},
		{"offset length", func(c *Config) { c.Reads.Off = c.Reads.Off[:2] }, "offsets have length"},
		{"offset start", func(c *Config) { c.Reads.Off[0] = 1 }, "start at 0"},
		{"offset end", func(c *Config) { c.Reads.Off[2] = 1 }, "entries exist"},
		{"offset decrease", func(c *Config) { c.Reads.Off[1] = 2; c.Reads.Off[2] = 1 }, "entries exist"},
		{"ragged counts", func(c *Config) { c.Writes.Cnt = c.Writes.Cnt[:0] }, "counts"},
		{"site range", func(c *Config) { c.Reads.Site[0] = 9 }, "references site"},
		{"site order", func(c *Config) {
			c.Reads.Off = []int32{0, 2, 2}
			c.Reads.Site = []int32{1, 1}
			c.Reads.Cnt = []int64{4, 9}
		}, "strictly ascending"},
		{"negative count", func(c *Config) { c.Reads.Cnt[0] = -4 }, "negative count"},
	}
	for _, tc := range cases {
		cfg := validConfig()
		tc.corrupt(&cfg)
		_, err := NewModel(cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestOverflowGateBoundary pins the worst-case-NTC gate at the exact int64
// boundary: the sparse and dense constructors accept and reject the same
// instances, and at the largest accepted magnitude the evaluator's sum is
// still exact.
func TestOverflowGateBoundary(t *testing.T) {
	build := func(readCount int64) (Config, core.Config) {
		d := netsim.NewDistMatrix(2)
		d.Set(0, 1, 1)
		size := int64(1) << 31
		sc := Config{
			Sizes:      []int64{size},
			Capacities: []int64{size, size},
			Primaries:  []int32{0},
			Reads:      CSR{Off: []int32{0, 1}, Site: []int32{1}, Cnt: []int64{readCount}},
			Writes:     CSR{Off: []int32{0, 0}},
			Dist:       d,
		}
		dc := core.Config{
			Sizes:      []int64{size},
			Capacities: []int64{size, size},
			Primaries:  []int{0},
			Reads:      [][]int64{{0}, {readCount}},
			Writes:     [][]int64{{0}, {0}},
			Dist:       d,
		}
		return sc, dc
	}
	// With M=2, W=0, maxC=1, o=2^31: the gate bound is (1+R)·2^31, which
	// fits int64 iff 1+R ≤ 2^32−1.
	fitsR := int64(1)<<32 - 2
	sc, dc := build(fitsR)
	mo, errS := NewModel(sc)
	_, errD := core.NewProblem(dc)
	if errS != nil || errD != nil {
		t.Fatalf("boundary instance rejected: sparse %v, dense %v", errS, errD)
	}
	wantV := fitsR * (int64(1) << 31) // R·o·C(1,0)
	if mo.DPrime() != wantV {
		t.Fatalf("boundary D′ = %d, want %d", mo.DPrime(), wantV)
	}
	if got := NewEvaluator(mo).Cost(NewAssignment(mo)); got != wantV {
		t.Fatalf("boundary cost = %d, want %d (wrapped?)", got, wantV)
	}
	if wantV <= 0 || wantV > math.MaxInt64-(int64(1)<<31) {
		t.Fatalf("boundary not near the int64 edge: %d", wantV)
	}

	sc, dc = build(fitsR + 1)
	_, errS = NewModel(sc)
	_, errD = core.NewProblem(dc)
	if errS == nil || errD == nil {
		t.Fatalf("over-boundary instance accepted: sparse %v, dense %v", errS, errD)
	}
	if !strings.Contains(errS.Error(), "overflows") {
		t.Fatalf("sparse rejection %q does not mention overflow", errS)
	}
}

// TestCandidatesContainOptimal is the pruning soundness property: on small
// instances the exhaustive dense optimum never replicates an object at a
// site the sparse model pruned.
func TestCandidatesContainOptimal(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		p, err := workload.Generate(workload.NewSpec(4, 4, 0.08, 0.25), seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		mo, err := FromProblem(p)
		if err != nil {
			t.Fatalf("seed %d: FromProblem: %v", seed, err)
		}
		opt, err := baseline.Optimal(p, 16)
		if err != nil {
			t.Fatalf("seed %d: optimal: %v", seed, err)
		}
		for k := 0; k < p.Objects(); k++ {
			cand := mo.Candidates(k)
			for _, i := range opt.Replicators(k) {
				if _, found := search(cand, int32(i)); !found {
					t.Fatalf("seed %d: optimum replicates object %d at pruned site %d (candidates %v)", seed, k, i, cand)
				}
			}
		}
		// The bridge must therefore accept the optimum wholesale.
		if _, err := FromScheme(mo, opt); err != nil {
			t.Fatalf("seed %d: optimum rejected by FromScheme: %v", seed, err)
		}
	}
}

// TestCandidatePruningEquivariance relabels the sites and checks the
// candidate sets relabel with them, like the metamorphic eq. 4 checks.
func TestCandidatePruningEquivariance(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		mo := testModel(t, 9, 25, seed)
		m, n := mo.Sites(), mo.Objects()
		rng := xrand.New(seed * 77)
		perm := rng.Perm(m) // out site a ← in site perm[a]
		inv := make([]int32, m)
		for a, b := range perm {
			inv[b] = int32(a)
		}
		d := netsim.NewDistMatrix(m)
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				d.Set(a, b, mo.Dist().At(perm[a], perm[b]))
			}
		}
		cfg := Config{
			Sizes:      mo.size,
			Capacities: make([]int64, m),
			Primaries:  make([]int32, n),
			Dist:       d,
		}
		for a := 0; a < m; a++ {
			cfg.Capacities[a] = mo.Capacity(perm[a])
		}
		cfg.Reads.Off = make([]int32, n+1)
		cfg.Writes.Off = make([]int32, n+1)
		type entry struct {
			site int32
			cnt  int64
		}
		remap := func(sites []int32, cnts []int64) []entry {
			out := make([]entry, len(sites))
			for idx, s := range sites {
				out[idx] = entry{inv[s], cnts[idx]}
			}
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j-1].site > out[j].site; j-- {
					out[j-1], out[j] = out[j], out[j-1]
				}
			}
			return out
		}
		for k := 0; k < n; k++ {
			cfg.Primaries[k] = inv[mo.Primary(k)]
			rs, rc := mo.ReadEntries(k)
			for _, e := range remap(rs, rc) {
				cfg.Reads.Site = append(cfg.Reads.Site, e.site)
				cfg.Reads.Cnt = append(cfg.Reads.Cnt, e.cnt)
			}
			cfg.Reads.Off[k+1] = int32(len(cfg.Reads.Site))
			ws, wc := mo.WriteEntries(k)
			for _, e := range remap(ws, wc) {
				cfg.Writes.Site = append(cfg.Writes.Site, e.site)
				cfg.Writes.Cnt = append(cfg.Writes.Cnt, e.cnt)
			}
			cfg.Writes.Off[k+1] = int32(len(cfg.Writes.Site))
		}
		permuted, err := NewModel(cfg)
		if err != nil {
			t.Fatalf("seed %d: permuted model: %v", seed, err)
		}
		for k := 0; k < n; k++ {
			orig := mo.Candidates(k)
			mapped := make([]int32, len(orig))
			for idx, s := range orig {
				mapped[idx] = inv[s]
			}
			for i := 1; i < len(mapped); i++ {
				for j := i; j > 0 && mapped[j-1] > mapped[j]; j-- {
					mapped[j-1], mapped[j] = mapped[j], mapped[j-1]
				}
			}
			got := permuted.Candidates(k)
			if len(got) != len(mapped) {
				t.Fatalf("seed %d: object %d candidates %v, want relabelled %v", seed, k, got, mapped)
			}
			for idx := range got {
				if got[idx] != mapped[idx] {
					t.Fatalf("seed %d: object %d candidates %v, want relabelled %v", seed, k, got, mapped)
				}
			}
		}
	}
}

// TestCapacityReachabilityPrune: a site whose primaries leave no room for
// an object is never that object's candidate.
func TestCapacityReachabilityPrune(t *testing.T) {
	d := netsim.NewDistMatrix(3)
	d.Set(0, 1, 5)
	d.Set(0, 2, 5)
	d.Set(1, 2, 5)
	cfg := Config{
		Sizes:      []int64{10, 4},
		Capacities: []int64{10, 12, 20},
		Primaries:  []int32{0, 1},
		// Both objects heavily read everywhere, so traffic alone would keep
		// every site.
		Reads: CSR{
			Off:  []int32{0, 3, 6},
			Site: []int32{0, 1, 2, 0, 1, 2},
			Cnt:  []int64{50, 50, 50, 50, 50, 50},
		},
		Writes: CSR{Off: []int32{0, 0, 0}},
		Dist:   d,
	}
	mo, err := NewModel(cfg)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	// Object 0 (size 10) cannot reach site 0's free space beyond its own
	// primary load (10 of 10 used)… it IS the primary there. Site 1 has
	// capacity 12 with primary load 4: object 0 does not fit (4+10 > 12).
	if _, found := search(mo.Candidates(0), 1); found {
		t.Fatalf("object 0 candidates %v include unreachable site 1", mo.Candidates(0))
	}
	// Site 2 (capacity 20, no primaries) fits and the read traffic pays.
	if _, found := search(mo.Candidates(0), 2); !found {
		t.Fatalf("object 0 candidates %v miss reachable site 2", mo.Candidates(0))
	}
}
