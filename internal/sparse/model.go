// Package sparse is the million-object solver core (ROADMAP item 3). The
// dense path materialises M×N read/write matrices and M·N-bit chromosomes,
// which caps instances at toy scale; this package exploits the structural
// sparsity of real workloads — most objects are read from few sites
// ("Optimal Data Placement on Networks With Constant Number of Clients",
// PAPERS.md) — with three ingredients:
//
//   - CSR-style access vectors: per-object (site, count) lists for reads and
//     writes, pooled into four flat arrays, so an N=1e6 × M=100 instance
//     with ~10 accessing sites per object costs ~100 MB instead of the
//     ~1.6 GB two dense matrices would need;
//   - candidate-site pruning: per object, the sites at which a replica could
//     ever pay for its update fan-in (plus the primary), computed from a
//     sound upper bound on the achievable saving and from capacity
//     reachability — the solver never considers a pruned (site, object)
//     pair, and internal/verify proves the dense optimum survives pruning;
//   - object-space sharding: objects couple only through per-site capacity,
//     so per-object search fans out across workers and a deterministic
//     capacity-ledger merge reconciles the proposals (solve.go).
//
// The evaluator and delta-evaluator over this representation are
// bit-identical to internal/core's dense ones wherever both apply: both
// compute exact int64 sums of identical eq. 4 terms, and int64 addition is
// associative and commutative, so the reordered sparse summation cannot
// diverge. The differential checks in internal/verify (sparse-eval,
// sparse-delta) and the tests in this package enforce that equality
// term-for-term.
package sparse

import (
	"fmt"
	"math"

	"drp/internal/core"
	"drp/internal/netsim"
	"drp/internal/parallel"
)

// CSR is a compressed sparse row access pattern over objects: object k's
// entries are Site[Off[k]:Off[k+1]] (strictly ascending site indices) with
// parallel counts Cnt[Off[k]:Off[k+1]]. Offsets are int32 — ample, since
// even a fully dense 1e6×100 instance has 1e8 entries — to halve index
// memory.
type CSR struct {
	Off  []int32 // length N+1, non-decreasing, Off[0] = 0
	Site []int32 // ascending within each object, in [0, M)
	Cnt  []int64 // non-negative counts, parallel to Site
}

// Range returns object k's entry range.
func (c *CSR) Range(k int) (int32, int32) { return c.Off[k], c.Off[k+1] }

// validate checks CSR well-formedness for n objects over m sites.
func (c *CSR) validate(kind string, m, n int) error {
	if len(c.Off) != n+1 {
		return fmt.Errorf("sparse: %s offsets have length %d, want %d", kind, len(c.Off), n+1)
	}
	if c.Off[0] != 0 {
		return fmt.Errorf("sparse: %s offsets must start at 0, got %d", kind, c.Off[0])
	}
	if len(c.Site) != len(c.Cnt) {
		return fmt.Errorf("sparse: %s has %d sites but %d counts", kind, len(c.Site), len(c.Cnt))
	}
	if int(c.Off[n]) != len(c.Site) {
		return fmt.Errorf("sparse: %s offsets end at %d but %d entries exist", kind, c.Off[n], len(c.Site))
	}
	for k := 0; k < n; k++ {
		lo, hi := c.Off[k], c.Off[k+1]
		if hi < lo {
			return fmt.Errorf("sparse: %s offsets decrease at object %d", kind, k)
		}
		prev := int32(-1)
		for idx := lo; idx < hi; idx++ {
			site := c.Site[idx]
			if site < 0 || int(site) >= m {
				return fmt.Errorf("sparse: %s object %d references site %d of %d", kind, k, site, m)
			}
			if site <= prev {
				return fmt.Errorf("sparse: %s object %d sites not strictly ascending at entry %d", kind, k, idx-lo)
			}
			prev = site
			if c.Cnt[idx] < 0 {
				return fmt.Errorf("sparse: %s object %d has negative count at site %d", kind, k, site)
			}
		}
	}
	return nil
}

// Config carries the raw inputs of a sparse DRP instance into NewModel.
// Slices are retained, not copied — callers hand over ownership (the pooled
// flat arrays are the point of this representation).
type Config struct {
	Sizes      []int64 // o_k, positive
	Capacities []int64 // s(i), non-negative
	Primaries  []int32 // SP_k
	Reads      CSR     // r_k(i) for the sites that read k
	Writes     CSR     // w_k(i) for the sites that write k
	Dist       *netsim.DistMatrix
}

// Model is an immutable sparse DRP instance: the same eq. 4 problem as
// core.Problem, stored object-major in CSR form with per-object candidate
// site lists precomputed.
type Model struct {
	m, n    int
	size    []int64
	cap     []int64
	primary []int32
	reads   CSR
	writes  CSR
	dist    *netsim.DistMatrix

	totalReads  []int64
	totalWrites []int64
	vPrime      []int64
	dPrime      int64
	primaryLoad []int64 // Σ o_k over objects with SP_k = i: the floor of any valid usage

	// Candidate lists, pooled: object k may hold replicas only at
	// candSite[candOff[k]:candOff[k+1]] (ascending, primary always present).
	candOff  []int32
	candSite []int32
}

// NewModel validates cfg and builds the instance: the same gates as
// core.NewProblem (positive sizes, primary fit, the worst-case-NTC int64
// overflow bound) plus CSR well-formedness, then the derived caches and the
// pruned candidate lists.
func NewModel(cfg Config) (*Model, error) {
	if cfg.Dist == nil {
		return nil, fmt.Errorf("sparse: nil distance matrix")
	}
	m := cfg.Dist.Sites()
	n := len(cfg.Sizes)
	if n == 0 {
		return nil, fmt.Errorf("sparse: no objects")
	}
	if len(cfg.Capacities) != m {
		return nil, fmt.Errorf("sparse: %d capacities for %d sites", len(cfg.Capacities), m)
	}
	if len(cfg.Primaries) != n {
		return nil, fmt.Errorf("sparse: %d primaries for %d objects", len(cfg.Primaries), n)
	}
	if int64(m)*int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("sparse: %d sites × %d objects exceeds the int32 offset range", m, n)
	}
	if err := cfg.Dist.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: %w", err)
	}
	mo := &Model{
		m:       m,
		n:       n,
		size:    cfg.Sizes,
		cap:     cfg.Capacities,
		primary: cfg.Primaries,
		reads:   cfg.Reads,
		writes:  cfg.Writes,
		dist:    cfg.Dist,
	}
	for k, sz := range mo.size {
		if sz <= 0 {
			return nil, fmt.Errorf("sparse: object %d has non-positive size %d", k, sz)
		}
	}
	for i, c := range mo.cap {
		if c < 0 {
			return nil, fmt.Errorf("sparse: site %d has negative capacity %d", i, c)
		}
	}
	var sizeSum int64
	for k, sz := range mo.size {
		var ok bool
		if sizeSum, ok = addNonNeg(sizeSum, sz); !ok {
			return nil, fmt.Errorf("sparse: object sizes overflow int64 at object %d", k)
		}
	}
	mo.primaryLoad = make([]int64, m)
	for k, sp := range mo.primary {
		if sp < 0 || int(sp) >= m {
			return nil, fmt.Errorf("sparse: object %d has out-of-range primary %d", k, sp)
		}
		mo.primaryLoad[sp] += mo.size[k]
	}
	for i, use := range mo.primaryLoad {
		if use > mo.cap[i] {
			return nil, fmt.Errorf("sparse: infeasible instance: primaries at site %d need %d units, capacity is %d", i, use, mo.cap[i])
		}
	}
	if err := mo.reads.validate("read pattern", m, n); err != nil {
		return nil, err
	}
	if err := mo.writes.validate("write pattern", m, n); err != nil {
		return nil, err
	}
	if err := mo.buildCaches(); err != nil {
		return nil, err
	}
	mo.buildCandidates()
	return mo, nil
}

// addNonNeg returns a+b and whether the sum of two non-negative values
// stayed within int64 (core.NewProblem's helper, mirrored).
func addNonNeg(a, b int64) (int64, bool) {
	s := a + b
	return s, s >= a
}

// mulNonNeg returns a·b and whether the product of two non-negative values
// stayed within int64.
func mulNonNeg(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	prod := a * b
	return prod, prod/a == b && prod >= 0
}

// satAdd and satMul are the saturating variants used only by the candidate
// scorer: a saturated saving bound keeps the site as a candidate (the
// conservative direction), so pruning stays sound on extreme instances.
func satAdd(a, b int64) int64 {
	if s, ok := addNonNeg(a, b); ok {
		return s
	}
	return math.MaxInt64
}

func satMul(a, b int64) int64 {
	if p, ok := mulNonNeg(a, b); ok {
		return p
	}
	return math.MaxInt64
}

func (mo *Model) buildCaches() error {
	mo.totalReads = make([]int64, mo.n)
	mo.totalWrites = make([]int64, mo.n)
	for k := 0; k < mo.n; k++ {
		ro, re := mo.reads.Range(k)
		for idx := ro; idx < re; idx++ {
			var ok bool
			if mo.totalReads[k], ok = addNonNeg(mo.totalReads[k], mo.reads.Cnt[idx]); !ok {
				return fmt.Errorf("sparse: read total for object %d overflows int64", k)
			}
		}
		wo, we := mo.writes.Range(k)
		for idx := wo; idx < we; idx++ {
			var ok bool
			if mo.totalWrites[k], ok = addNonNeg(mo.totalWrites[k], mo.writes.Cnt[idx]); !ok {
				return fmt.Errorf("sparse: write total for object %d overflows int64", k)
			}
		}
	}
	// Worst-case NTC gate, identical to core.NewProblem's: if
	// Σ_k (1 + Rtot_k + (M+1)·Wtot_k)·o_k·maxC fits int64, every cost any
	// evaluator, delta evaluator or merge in this package can compute fits
	// too — so the hot paths never need per-term overflow checks, even at
	// N=1e6 where a 53-bit float mantissa or an unchecked product would
	// silently wrap.
	var maxC int64
	for i := 0; i < mo.m; i++ {
		for _, c := range mo.dist.Row(i) {
			if c > maxC {
				maxC = c
			}
		}
	}
	var bound int64
	for k := 0; k < mo.n; k++ {
		fanIn, ok := mulNonNeg(int64(mo.m)+1, mo.totalWrites[k])
		if !ok {
			return errMagnitude(k)
		}
		traffic, ok := addNonNeg(mo.totalReads[k], fanIn)
		if !ok {
			return errMagnitude(k)
		}
		traffic, ok = addNonNeg(traffic, 1)
		if !ok {
			return errMagnitude(k)
		}
		vol, ok := mulNonNeg(traffic, mo.size[k])
		if !ok {
			return errMagnitude(k)
		}
		cost, ok := mulNonNeg(vol, maxC)
		if !ok {
			return errMagnitude(k)
		}
		if bound, ok = addNonNeg(bound, cost); !ok {
			return errMagnitude(k)
		}
	}
	mo.vPrime = make([]int64, mo.n)
	for k := 0; k < mo.n; k++ {
		sp := int(mo.primary[k])
		spRow := mo.dist.Row(sp)
		var v int64
		ro, re := mo.reads.Range(k)
		for idx := ro; idx < re; idx++ {
			v += mo.reads.Cnt[idx] * mo.size[k] * spRow[mo.reads.Site[idx]]
		}
		wo, we := mo.writes.Range(k)
		for idx := wo; idx < we; idx++ {
			v += mo.writes.Cnt[idx] * mo.size[k] * spRow[mo.writes.Site[idx]]
		}
		mo.vPrime[k] = v
		mo.dPrime += v
	}
	return nil
}

func errMagnitude(k int) error {
	return fmt.Errorf("sparse: traffic volume of object %d overflows the int64 cost range", k)
}

// buildCandidates computes the pruned candidate-site list of every object.
//
// Site i ≠ SP_k is pruned when either
//
//   - capacity reachability: primaryLoad(i) + o_k > s(i) — the primaries
//     pinned to i already leave no room, so no valid scheme can ever place
//     k there; or
//
//   - the benefit bound: the largest saving a replica at i can contribute
//     to ANY replica set never exceeds the update fan-in it must pay,
//
//     (r_k(i)+w_k(i))·C(i,SP_k) + Σ_{j≠i} r_k(j)·max(0, C(j,SP_k)−C(j,i))
//     ≤ Wtot_k·C(i,SP_k)
//
//     (common factor o_k divided out). The left side bounds the saving
//     because every reader's nearest-replica distance is at most
//     C(j,SP_k) — the primary is always a replicator — and a new replica
//     can lower it to no less than C(j,i); the right side is exact and
//     unavoidable. With ≤, adding i to any set never strictly lowers D, so
//     baseline.Optimal — which enumerates bit-off before bit-on and only
//     replaces its best on a strict improvement — can never return a scheme
//     using a pruned pair; the sparse-prune verify check asserts exactly
//     that. The rule depends only on relabelling-invariant quantities, so
//     candidate sets are permutation-equivariant like eq. 4 itself.
//
// Saturating arithmetic on the saving side only ever keeps a candidate, so
// extreme magnitudes degrade pruning, never correctness.
func (mo *Model) buildCandidates() {
	lists := make([][]int32, mo.n)
	workers := parallel.Workers(0)
	type scratch struct {
		rAt     []int64
		wAt     []int64
		touched []int32
	}
	scratches := make([]scratch, workers)
	for w := range scratches {
		scratches[w] = scratch{rAt: make([]int64, mo.m), wAt: make([]int64, mo.m)}
	}
	parallel.ForWorker(mo.n, workers, func(w, k int) {
		sc := &scratches[w]
		sp := int(mo.primary[k])
		spCol := mo.dist.Row(sp) // C(sp,·) = C(·,sp); the matrix is symmetric
		ro, re := mo.reads.Range(k)
		wo, we := mo.writes.Range(k)
		sc.touched = sc.touched[:0]
		for idx := ro; idx < re; idx++ {
			site := mo.reads.Site[idx]
			sc.rAt[site] = mo.reads.Cnt[idx]
			sc.touched = append(sc.touched, site)
		}
		for idx := wo; idx < we; idx++ {
			site := mo.writes.Site[idx]
			sc.wAt[site] = mo.writes.Cnt[idx]
			sc.touched = append(sc.touched, site)
		}
		wTot := mo.totalWrites[k]
		sz := mo.size[k]
		cand := make([]int32, 0, 8)
		for i := 0; i < mo.m; i++ {
			if i == sp {
				cand = append(cand, int32(i))
				continue
			}
			if mo.primaryLoad[i]+sz > mo.cap[i] {
				continue
			}
			cSP := spCol[i]
			fanIn := wTot * cSP // bounded by the NTC gate; exact
			saving := satMul(sc.rAt[i]+sc.wAt[i], cSP)
			rowI := mo.dist.Row(i)
			for idx := ro; idx < re; idx++ {
				j := mo.reads.Site[idx]
				if int(j) == i {
					continue
				}
				if drop := spCol[j] - rowI[j]; drop > 0 {
					saving = satAdd(saving, satMul(mo.reads.Cnt[idx], drop))
				}
			}
			if saving > fanIn {
				cand = append(cand, int32(i))
			}
		}
		lists[k] = cand
		for _, site := range sc.touched {
			sc.rAt[site] = 0
			sc.wAt[site] = 0
		}
	})
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	mo.candOff = make([]int32, mo.n+1)
	mo.candSite = make([]int32, 0, total)
	for k, l := range lists {
		mo.candSite = append(mo.candSite, l...)
		mo.candOff[k+1] = int32(len(mo.candSite))
	}
}

// FromProblem converts a dense instance into the sparse representation
// (zero read/write entries dropped), revalidating through NewModel. The
// distance matrix is shared. Differential tests assert the derived caches
// (D′, V′_k, traffic totals) match the dense ones exactly.
func FromProblem(p *core.Problem) (*Model, error) {
	m, n := p.Sites(), p.Objects()
	cfg := Config{
		Sizes:      make([]int64, n),
		Capacities: make([]int64, m),
		Primaries:  make([]int32, n),
		Dist:       p.Dist(),
	}
	for k := 0; k < n; k++ {
		cfg.Sizes[k] = p.Size(k)
		cfg.Primaries[k] = int32(p.Primary(k))
	}
	for i := 0; i < m; i++ {
		cfg.Capacities[i] = p.Capacity(i)
	}
	cfg.Reads.Off = make([]int32, n+1)
	cfg.Writes.Off = make([]int32, n+1)
	for k := 0; k < n; k++ {
		for i := 0; i < m; i++ {
			if r := p.Reads(i, k); r > 0 {
				cfg.Reads.Site = append(cfg.Reads.Site, int32(i))
				cfg.Reads.Cnt = append(cfg.Reads.Cnt, r)
			}
			if w := p.Writes(i, k); w > 0 {
				cfg.Writes.Site = append(cfg.Writes.Site, int32(i))
				cfg.Writes.Cnt = append(cfg.Writes.Cnt, w)
			}
		}
		cfg.Reads.Off[k+1] = int32(len(cfg.Reads.Site))
		cfg.Writes.Off[k+1] = int32(len(cfg.Writes.Site))
	}
	return NewModel(cfg)
}

// Sites returns M.
func (mo *Model) Sites() int { return mo.m }

// Objects returns N.
func (mo *Model) Objects() int { return mo.n }

// Size returns o_k.
func (mo *Model) Size(k int) int64 { return mo.size[k] }

// Capacity returns s(i).
func (mo *Model) Capacity(i int) int64 { return mo.cap[i] }

// Primary returns SP_k.
func (mo *Model) Primary(k int) int32 { return mo.primary[k] }

// PrimaryLoad returns the storage the primary copies pin at site i.
func (mo *Model) PrimaryLoad(i int) int64 { return mo.primaryLoad[i] }

// TotalReads returns Σ_i r_k(i).
func (mo *Model) TotalReads(k int) int64 { return mo.totalReads[k] }

// TotalWrites returns Σ_i w_k(i).
func (mo *Model) TotalWrites(k int) int64 { return mo.totalWrites[k] }

// DPrime returns the NTC of the primaries-only allocation.
func (mo *Model) DPrime() int64 { return mo.dPrime }

// VPrime returns the per-object NTC of the primaries-only allocation.
func (mo *Model) VPrime(k int) int64 { return mo.vPrime[k] }

// Dist exposes the distance matrix (read-only by convention).
func (mo *Model) Dist() *netsim.DistMatrix { return mo.dist }

// Candidates returns object k's candidate sites, ascending, primary
// included — a view into the pooled array; callers must not modify it.
func (mo *Model) Candidates(k int) []int32 {
	return mo.candSite[mo.candOff[k]:mo.candOff[k+1]]
}

// CandidateCount returns the total candidate-list length across objects
// (the solver's search-space size after pruning).
func (mo *Model) CandidateCount() int { return len(mo.candSite) }

// ReadEntries returns object k's reader sites and counts as views into the
// pooled CSR arrays.
func (mo *Model) ReadEntries(k int) ([]int32, []int64) {
	lo, hi := mo.reads.Range(k)
	return mo.reads.Site[lo:hi], mo.reads.Cnt[lo:hi]
}

// WriteEntries returns object k's writer sites and counts.
func (mo *Model) WriteEntries(k int) ([]int32, []int64) {
	lo, hi := mo.writes.Range(k)
	return mo.writes.Site[lo:hi], mo.writes.Cnt[lo:hi]
}

// AccessEntries returns the pooled entry totals (reads, writes) — the
// instance's nnz, reported by the bench trajectory.
func (mo *Model) AccessEntries() (int, int) {
	return len(mo.reads.Site), len(mo.writes.Site)
}

// Savings converts a cost into the paper's quality metric: percent of the
// primaries-only NTC saved.
func (mo *Model) Savings(cost int64) float64 {
	if mo.dPrime == 0 {
		return 0
	}
	return 100 * float64(mo.dPrime-cost) / float64(mo.dPrime)
}
