package sparse

import (
	"fmt"
	"slices"

	"drp/internal/netsim"
	"drp/internal/xrand"
)

// WorkloadSpec parameterises the sparse instance generator: the Section 6.1
// constants (per-site read counts U(1,40), link costs U(1,10), object sizes
// U(1,69), capacities around a ratio of Σ o_k) restricted to the
// few-accessing-sites structure of "Optimal Data Placement on Networks With
// Constant Number of Clients" — each object is read from at most
// ReaderSites and written from at most WriterSites distinct sites, however
// many objects there are. That bounded nnz per object is what makes the
// CSR representation and candidate pruning pay at N=1e6.
type WorkloadSpec struct {
	Sites   int // M
	Objects int // N

	ReaderSites int // per-object distinct reader-site count ~ U(1, ReaderSites)
	WriterSites int // per-object distinct writer-site count ~ U(0, WriterSites)

	ReadMin, ReadMax   int // per reader-site counts, paper: 1..40
	WriteMin, WriteMax int // per writer-site counts (≈ the paper's 2–10% update ratios)
	LinkMin, LinkMax   int // per-link cost, paper: 1..10
	SizeMean           int // object size mean, paper: 35 (sizes U(1, 2·mean−1))

	CapacityRatio float64 // site capacity as a fraction of Σ o_k
}

// NewWorkloadSpec returns the defaults for M sites and N objects: ~10
// reader sites and ~3 writer sites per object, read counts U(1,40), write
// counts U(1,4) (≈5% update ratio), links U(1,10), size mean 35, capacity
// ratio 0.15 — the mid-points of the paper's sweeps.
func NewWorkloadSpec(sites, objects int) WorkloadSpec {
	readers := 10
	if readers > sites {
		readers = sites
	}
	writers := 3
	if writers > sites {
		writers = sites
	}
	return WorkloadSpec{
		Sites:         sites,
		Objects:       objects,
		ReaderSites:   readers,
		WriterSites:   writers,
		ReadMin:       1,
		ReadMax:       40,
		WriteMin:      1,
		WriteMax:      4,
		LinkMin:       1,
		LinkMax:       10,
		SizeMean:      35,
		CapacityRatio: 0.15,
	}
}

func (s WorkloadSpec) validate() error {
	switch {
	case s.Sites <= 0:
		return fmt.Errorf("sparse: need at least one site, got %d", s.Sites)
	case s.Objects <= 0:
		return fmt.Errorf("sparse: need at least one object, got %d", s.Objects)
	case s.ReaderSites < 1 || s.ReaderSites > s.Sites:
		return fmt.Errorf("sparse: reader-site bound %d outside [1,%d]", s.ReaderSites, s.Sites)
	case s.WriterSites < 0 || s.WriterSites > s.Sites:
		return fmt.Errorf("sparse: writer-site bound %d outside [0,%d]", s.WriterSites, s.Sites)
	case s.ReadMin < 0 || s.ReadMax < s.ReadMin:
		return fmt.Errorf("sparse: bad read range [%d,%d]", s.ReadMin, s.ReadMax)
	case s.WriteMin < 0 || s.WriteMax < s.WriteMin:
		return fmt.Errorf("sparse: bad write range [%d,%d]", s.WriteMin, s.WriteMax)
	case s.LinkMin < 1 || s.LinkMax < s.LinkMin:
		return fmt.Errorf("sparse: bad link cost range [%d,%d]", s.LinkMin, s.LinkMax)
	case s.SizeMean < 1:
		return fmt.Errorf("sparse: object size mean %d < 1", s.SizeMean)
	case s.CapacityRatio < 0:
		return fmt.Errorf("sparse: negative capacity ratio %v", s.CapacityRatio)
	}
	return nil
}

// sampler draws k distinct sites by a partial Fisher–Yates over one
// reusable permutation — O(k) per draw with no per-object allocation. The
// permutation is never reset: a partial shuffle of any permutation yields
// uniform distinct samples, and the evolving state is a deterministic
// function of the RNG stream.
type sampler struct {
	perm []int32
}

func newSampler(m int) *sampler {
	s := &sampler{perm: make([]int32, m)}
	for i := range s.perm {
		s.perm[i] = int32(i)
	}
	return s
}

// draw writes k distinct sites into out, ascending, and returns it.
func (s *sampler) draw(k int, rng *xrand.Source, out []int32) []int32 {
	out = out[:0]
	for idx := 0; idx < k; idx++ {
		swap := idx + rng.Intn(len(s.perm)-idx)
		s.perm[idx], s.perm[swap] = s.perm[swap], s.perm[idx]
		out = append(out, s.perm[idx])
	}
	slices.Sort(out)
	return out
}

// GenerateWorkload builds one random sparse instance. Identical seeds
// produce identical models.
func GenerateWorkload(spec WorkloadSpec, seed uint64) (*Model, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	m, n := spec.Sites, spec.Objects

	var dist *netsim.DistMatrix
	if m == 1 {
		dist = netsim.NewDistMatrix(1)
	} else {
		topo := netsim.CompleteUniform(m, int64(spec.LinkMin), int64(spec.LinkMax), rng)
		var err error
		dist, err = topo.Distances()
		if err != nil {
			return nil, fmt.Errorf("sparse: %w", err)
		}
	}

	cfg := Config{
		Sizes:      make([]int64, n),
		Capacities: make([]int64, m),
		Primaries:  make([]int32, n),
		Dist:       dist,
	}
	cfg.Reads.Off = make([]int32, n+1)
	cfg.Writes.Off = make([]int32, n+1)
	avgNnz := spec.ReaderSites/2 + spec.WriterSites/2 + 2
	cfg.Reads.Site = make([]int32, 0, n*avgNnz)
	cfg.Reads.Cnt = make([]int64, 0, n*avgNnz)

	var totalSize int64
	smp := newSampler(m)
	scratch := make([]int32, 0, spec.ReaderSites+spec.WriterSites)
	for k := 0; k < n; k++ {
		cfg.Sizes[k] = int64(rng.IntRange(1, 2*spec.SizeMean-1))
		totalSize += cfg.Sizes[k]
		cfg.Primaries[k] = int32(rng.Intn(m))

		readers := rng.IntRange(1, spec.ReaderSites)
		scratch = smp.draw(readers, rng, scratch)
		for _, site := range scratch {
			cfg.Reads.Site = append(cfg.Reads.Site, site)
			cfg.Reads.Cnt = append(cfg.Reads.Cnt, int64(rng.IntRange(spec.ReadMin, spec.ReadMax)))
		}
		cfg.Reads.Off[k+1] = int32(len(cfg.Reads.Site))

		writers := 0
		if spec.WriterSites > 0 {
			writers = rng.IntRange(0, spec.WriterSites)
		}
		if writers > 0 {
			scratch = smp.draw(writers, rng, scratch)
			for _, site := range scratch {
				cfg.Writes.Site = append(cfg.Writes.Site, site)
				cfg.Writes.Cnt = append(cfg.Writes.Cnt, int64(rng.IntRange(spec.WriteMin, spec.WriteMax)))
			}
		}
		cfg.Writes.Off[k+1] = int32(len(cfg.Writes.Site))
	}

	base := spec.CapacityRatio * float64(totalSize)
	for i := range cfg.Capacities {
		cfg.Capacities[i] = int64(rng.FloatRange(base/2, 3*base/2) + 0.5)
	}
	// Grow capacities where the draw fell short of the primaries a site must
	// host, as the dense generator does.
	need := make([]int64, m)
	for k, sp := range cfg.Primaries {
		need[sp] += cfg.Sizes[k]
	}
	for i := range cfg.Capacities {
		if cfg.Capacities[i] < need[i] {
			cfg.Capacities[i] = need[i]
		}
	}

	return NewModel(cfg)
}

// PerturbWorkload re-draws the access patterns of a deterministic random
// fraction of mo's objects (Section 6.3's pattern shift, sparse form) and
// returns the shifted model plus the ascending changed-object list —
// AGRA-style adaptation input. Sizes, primaries, capacities and the
// topology are shared with mo; only the CSR arrays are rebuilt.
func PerturbWorkload(mo *Model, spec WorkloadSpec, frac float64, seed uint64) (*Model, []int, error) {
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("sparse: perturbation fraction %v outside [0,1]", frac)
	}
	if err := spec.validate(); err != nil {
		return nil, nil, err
	}
	if spec.Sites != mo.m || spec.Objects != mo.n {
		return nil, nil, fmt.Errorf("sparse: spec is %d×%d, model is %d×%d", spec.Sites, spec.Objects, mo.m, mo.n)
	}
	rng := xrand.New(seed)
	cfg := Config{
		Sizes:      mo.size,
		Capacities: mo.cap,
		Primaries:  mo.primary,
		Dist:       mo.dist,
	}
	cfg.Reads.Off = make([]int32, mo.n+1)
	cfg.Writes.Off = make([]int32, mo.n+1)

	var changed []int
	smp := newSampler(mo.m)
	scratch := make([]int32, 0, spec.ReaderSites+spec.WriterSites)
	for k := 0; k < mo.n; k++ {
		if rng.Float64() < frac {
			changed = append(changed, k)
			readers := rng.IntRange(1, spec.ReaderSites)
			scratch = smp.draw(readers, rng, scratch)
			for _, site := range scratch {
				cfg.Reads.Site = append(cfg.Reads.Site, site)
				cfg.Reads.Cnt = append(cfg.Reads.Cnt, int64(rng.IntRange(spec.ReadMin, spec.ReadMax)))
			}
			writers := 0
			if spec.WriterSites > 0 {
				writers = rng.IntRange(0, spec.WriterSites)
			}
			if writers > 0 {
				scratch = smp.draw(writers, rng, scratch)
				for _, site := range scratch {
					cfg.Writes.Site = append(cfg.Writes.Site, site)
					cfg.Writes.Cnt = append(cfg.Writes.Cnt, int64(rng.IntRange(spec.WriteMin, spec.WriteMax)))
				}
			}
		} else {
			rs, rc := mo.ReadEntries(k)
			cfg.Reads.Site = append(cfg.Reads.Site, rs...)
			cfg.Reads.Cnt = append(cfg.Reads.Cnt, rc...)
			ws, wc := mo.WriteEntries(k)
			cfg.Writes.Site = append(cfg.Writes.Site, ws...)
			cfg.Writes.Cnt = append(cfg.Writes.Cnt, wc...)
		}
		cfg.Reads.Off[k+1] = int32(len(cfg.Reads.Site))
		cfg.Writes.Off[k+1] = int32(len(cfg.Writes.Site))
	}
	shifted, err := NewModel(cfg)
	if err != nil {
		return nil, nil, err
	}
	return shifted, changed, nil
}
