package sparse

import (
	"context"
	"testing"

	"drp/internal/solver"
)

func TestSolveValid(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		mo := testModel(t, 14, 120, seed)
		res, err := Solve(mo, SolveParams{Shards: 1}, solver.Run{})
		if err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		if err := res.Assignment.Validate(); err != nil {
			t.Fatalf("seed %d: invalid assignment: %v", seed, err)
		}
		if full := NewEvaluator(mo).Cost(res.Assignment); full != res.Cost {
			t.Fatalf("seed %d: incremental cost %d, full re-eval %d", seed, res.Cost, full)
		}
		if res.Cost > mo.DPrime() {
			t.Fatalf("seed %d: cost %d exceeds D′ %d", seed, res.Cost, mo.DPrime())
		}
		if res.Applied+res.Truncated != res.Proposed {
			t.Fatalf("seed %d: applied %d + truncated %d != proposed %d", seed, res.Applied, res.Truncated, res.Proposed)
		}
		if res.Stats.Stopped != solver.StopCompleted {
			t.Fatalf("seed %d: stopped %v, want completed", seed, res.Stats.Stopped)
		}
		if res.Stats.Evaluations == 0 {
			t.Fatalf("seed %d: no evaluations metered", seed)
		}
	}
}

// TestSolveShardDeterminism is the seed-determinism satellite for the raw
// sharded solver: shard counts 1, 2 and 8 yield bit-identical assignments.
func TestSolveShardDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		mo := testModel(t, 16, 200, seed)
		base, err := Solve(mo, SolveParams{Shards: 1}, solver.Run{})
		if err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		for _, shards := range []int{2, 8} {
			res, err := Solve(mo, SolveParams{Shards: shards}, solver.Run{})
			if err != nil {
				t.Fatalf("seed %d shards %d: solve: %v", seed, shards, err)
			}
			if res.Cost != base.Cost {
				t.Fatalf("seed %d shards %d: cost %d, serial %d", seed, shards, res.Cost, base.Cost)
			}
			if !res.Assignment.Equal(base.Assignment) {
				t.Fatalf("seed %d shards %d: assignment diverges from serial", seed, shards)
			}
			if res.Stats.Evaluations != base.Stats.Evaluations {
				t.Fatalf("seed %d shards %d: evaluations %d, serial %d", seed, shards,
					res.Stats.Evaluations, base.Stats.Evaluations)
			}
		}
	}
}

func TestSolveMaxReplicas(t *testing.T) {
	mo := testModel(t, 12, 80, 9)
	res, err := Solve(mo, SolveParams{Shards: 1, MaxReplicas: 2}, solver.Run{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	for k := 0; k < mo.Objects(); k++ {
		if deg := res.Assignment.ReplicaDegree(k); deg > 2 {
			t.Fatalf("object %d has %d replicas, cap is 2", k, deg)
		}
	}
	unlimited, err := Solve(mo, SolveParams{Shards: 1, MaxReplicas: -1}, solver.Run{})
	if err != nil {
		t.Fatalf("unlimited solve: %v", err)
	}
	if unlimited.Cost > res.Cost {
		t.Fatalf("unlimited cost %d worse than capped %d", unlimited.Cost, res.Cost)
	}
}

func TestSolveBudget(t *testing.T) {
	mo := testModel(t, 12, 150, 4)
	res, err := Solve(mo, SolveParams{Shards: 1}, solver.Run{Budget: 20})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Stats.Stopped != solver.StopBudget {
		t.Fatalf("stopped %v, want budget", res.Stats.Stopped)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatalf("interrupted assignment invalid: %v", err)
	}
	if full := NewEvaluator(mo).Cost(res.Assignment); full != res.Cost {
		t.Fatalf("interrupted cost %d, full re-eval %d", res.Cost, full)
	}
}

func TestSolveCancelled(t *testing.T) {
	mo := testModel(t, 10, 60, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(mo, SolveParams{Shards: 4}, solver.Run{Context: ctx})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Stats.Stopped != solver.StopCancelled {
		t.Fatalf("stopped %v, want cancelled", res.Stats.Stopped)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatalf("cancelled assignment invalid: %v", err)
	}
	if full := NewEvaluator(mo).Cost(res.Assignment); full != res.Cost {
		t.Fatalf("cancelled cost %d, full re-eval %d", res.Cost, full)
	}
}

// TestAdapt re-optimises only shifted objects: untouched objects keep their
// placement bit-identically and the cost stays exact.
func TestAdapt(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		spec := NewWorkloadSpec(14, 150)
		mo, err := GenerateWorkload(spec, seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		first, err := Solve(mo, SolveParams{Shards: 2}, solver.Run{})
		if err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		shifted, changed, err := PerturbWorkload(mo, spec, 0.2, seed*101)
		if err != nil {
			t.Fatalf("seed %d: perturb: %v", seed, err)
		}
		if len(changed) == 0 {
			t.Fatalf("seed %d: perturbation changed nothing", seed)
		}
		// Rebase the assignment onto the shifted model: placements carry
		// over (sizes and primaries are shared), candidates may differ only
		// for changed objects, which Adapt strips anyway.
		carried := NewAssignment(shifted)
		changedSet := make(map[int]bool, len(changed))
		for _, k := range changed {
			changedSet[k] = true
		}
		for k := 0; k < mo.Objects(); k++ {
			if changedSet[k] {
				continue
			}
			for _, i := range first.Assignment.Replicators(k) {
				if i != shifted.Primary(k) {
					if err := carried.Add(int(i), k); err != nil {
						t.Fatalf("seed %d: carry over object %d: %v", seed, k, err)
					}
				}
			}
		}
		before := carried.Clone()
		res, err := Adapt(shifted, carried, changed, SolveParams{Shards: 2}, solver.Run{})
		if err != nil {
			t.Fatalf("seed %d: adapt: %v", seed, err)
		}
		if err := res.Assignment.Validate(); err != nil {
			t.Fatalf("seed %d: adapted assignment invalid: %v", seed, err)
		}
		if full := NewEvaluator(shifted).Cost(res.Assignment); full != res.Cost {
			t.Fatalf("seed %d: adapted cost %d, full re-eval %d", seed, res.Cost, full)
		}
		for k := 0; k < mo.Objects(); k++ {
			if changedSet[k] {
				continue
			}
			got := res.Assignment.Replicators(k)
			want := before.Replicators(k)
			if len(got) != len(want) {
				t.Fatalf("seed %d: untouched object %d moved: %v -> %v", seed, k, want, got)
			}
			for idx := range got {
				if got[idx] != want[idx] {
					t.Fatalf("seed %d: untouched object %d moved: %v -> %v", seed, k, want, got)
				}
			}
		}
		// Adapt must also be shard-deterministic.
		again, err := Adapt(shifted, before.Clone(), changed, SolveParams{Shards: 8}, solver.Run{})
		if err != nil {
			t.Fatalf("seed %d: re-adapt: %v", seed, err)
		}
		if !again.Assignment.Equal(res.Assignment) || again.Cost != res.Cost {
			t.Fatalf("seed %d: adapt diverges across shard counts", seed)
		}
	}
}

func TestAdaptRejectsBadObject(t *testing.T) {
	mo := testModel(t, 8, 10, 1)
	if _, err := Adapt(mo, NewAssignment(mo), []int{10}, SolveParams{}, solver.Run{}); err == nil {
		t.Fatal("out-of-range changed object accepted")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec := NewWorkloadSpec(20, 300)
	a, err := GenerateWorkload(spec, 42)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, err := GenerateWorkload(spec, 42)
	if err != nil {
		t.Fatalf("generate again: %v", err)
	}
	if a.DPrime() != b.DPrime() {
		t.Fatalf("same seed, D′ %d vs %d", a.DPrime(), b.DPrime())
	}
	ra, wa := a.AccessEntries()
	rb, wb := b.AccessEntries()
	if ra != rb || wa != wb {
		t.Fatalf("same seed, nnz (%d,%d) vs (%d,%d)", ra, wa, rb, wb)
	}
	for k := 0; k < a.Objects(); k++ {
		as, ac := a.ReadEntries(k)
		bs, bc := b.ReadEntries(k)
		if len(as) != len(bs) {
			t.Fatalf("object %d: reader counts differ", k)
		}
		for idx := range as {
			if as[idx] != bs[idx] || ac[idx] != bc[idx] {
				t.Fatalf("object %d: read entries differ", k)
			}
		}
	}
	other, err := GenerateWorkload(spec, 43)
	if err != nil {
		t.Fatalf("generate other: %v", err)
	}
	if other.DPrime() == a.DPrime() {
		t.Fatalf("different seeds produced identical D′ %d", a.DPrime())
	}
}

func TestPerturbDeterminismAndIsolation(t *testing.T) {
	spec := NewWorkloadSpec(12, 100)
	mo, err := GenerateWorkload(spec, 7)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	s1, c1, err := PerturbWorkload(mo, spec, 0.3, 11)
	if err != nil {
		t.Fatalf("perturb: %v", err)
	}
	s2, c2, err := PerturbWorkload(mo, spec, 0.3, 11)
	if err != nil {
		t.Fatalf("perturb again: %v", err)
	}
	if len(c1) != len(c2) {
		t.Fatalf("same seed, %d vs %d changed objects", len(c1), len(c2))
	}
	changedSet := make(map[int]bool, len(c1))
	for idx, k := range c1 {
		if c2[idx] != k {
			t.Fatalf("same seed, changed lists differ at %d", idx)
		}
		changedSet[k] = true
	}
	if s1.DPrime() != s2.DPrime() {
		t.Fatalf("same seed, shifted D′ %d vs %d", s1.DPrime(), s2.DPrime())
	}
	// Unchanged objects keep their exact access entries; V′ follows.
	for k := 0; k < mo.Objects(); k++ {
		if changedSet[k] {
			continue
		}
		os, oc := mo.ReadEntries(k)
		ns, nc := s1.ReadEntries(k)
		if len(os) != len(ns) {
			t.Fatalf("unchanged object %d: reader count moved", k)
		}
		for idx := range os {
			if os[idx] != ns[idx] || oc[idx] != nc[idx] {
				t.Fatalf("unchanged object %d: read entries moved", k)
			}
		}
		if mo.VPrime(k) != s1.VPrime(k) {
			t.Fatalf("unchanged object %d: V′ moved %d -> %d", k, mo.VPrime(k), s1.VPrime(k))
		}
	}
}

// TestSolveMatchesDeltaDescent cross-checks the greedy proposal deltas: on
// an uncontended instance (capacities never bind during the merge), every
// applied step's delta must equal the dense-mirroring delta evaluator's
// prediction for the same (site, object) in the same order.
func TestSolveCostAgainstDeltaEvaluator(t *testing.T) {
	mo := testModel(t, 10, 40, 6)
	res, err := Solve(mo, SolveParams{Shards: 1}, solver.Run{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	// Replay the final assignment through the delta evaluator: summing
	// AddDelta along any order that reconstructs it must land on the same
	// cost (deltas are exact, order-dependent individually but the final
	// cost is a state function).
	replay := NewDeltaEvaluator(NewAssignment(mo))
	for k := 0; k < mo.Objects(); k++ {
		for _, i := range res.Assignment.Replicators(k) {
			if i == mo.Primary(k) {
				continue
			}
			if err := replay.Add(int(i), k); err != nil {
				t.Fatalf("replay add(%d,%d): %v", i, k, err)
			}
		}
	}
	if replay.Cost() != res.Cost {
		t.Fatalf("replayed cost %d, solver cost %d", replay.Cost(), res.Cost)
	}
}
