package sparse

import (
	"fmt"

	"drp/internal/core"
)

// Assignment is the sparse analogue of core.Scheme: a mutable replication
// scheme stored as per-object replica-site lists instead of an M×N bit
// matrix. The same two invariants hold at every mutation — the primary copy
// is never dropped and Σ_k o_k over a site's replicas stays within s(i) —
// and mutations fail with the same sentinel errors (core.ErrCapacity,
// core.ErrPrimary, core.ErrDuplicate, core.ErrAbsent) so callers written
// against the dense scheme match errors unchanged.
//
// Replica lists are kept ascending, so list order is a pure function of the
// set — two assignments holding the same replicas are representation-equal,
// which the shard-determinism tests rely on.
type Assignment struct {
	mo   *Model
	repl [][]int32 // repl[k]: ascending site list, primary always present
	used []int64   // storage consumed per site
}

// NewAssignment returns the primaries-only allocation. The per-object
// replica lists start as length-1 views into one pooled backing array, so
// an N=1e6 instance allocates two slabs, not a million slivers; lists that
// grow past their slot migrate to their own storage on first append.
func NewAssignment(mo *Model) *Assignment {
	backing := make([]int32, mo.n)
	a := &Assignment{
		mo:   mo,
		repl: make([][]int32, mo.n),
		used: make([]int64, mo.m),
	}
	for k := 0; k < mo.n; k++ {
		backing[k] = mo.primary[k]
		a.repl[k] = backing[k : k+1 : k+1]
	}
	copy(a.used, mo.primaryLoad)
	return a
}

// Model returns the instance this assignment belongs to.
func (a *Assignment) Model() *Model { return a.mo }

// Has reports whether site i holds a replica of object k.
func (a *Assignment) Has(i, k int) bool {
	_, found := search(a.repl[k], int32(i))
	return found
}

// search locates site in an ascending list: the insertion index and whether
// the site is present. Lists are short (bounded by the candidate count), so
// a linear scan beats binary search in practice and stays branch-predictable.
func search(list []int32, site int32) (int, bool) {
	for idx, s := range list {
		if s == site {
			return idx, true
		}
		if s > site {
			return idx, false
		}
	}
	return len(list), false
}

// Used returns the storage consumed at site i.
func (a *Assignment) Used(i int) int64 { return a.used[i] }

// Free returns the remaining capacity b(i) at site i.
func (a *Assignment) Free(i int) int64 { return a.mo.cap[i] - a.used[i] }

// Replicators returns object k's replica sites, ascending — a live view;
// callers must not modify it.
func (a *Assignment) Replicators(k int) []int32 { return a.repl[k] }

// ReplicaDegree returns |R_k|.
func (a *Assignment) ReplicaDegree(k int) int { return len(a.repl[k]) }

// TotalReplicas returns the replica count beyond the N primary copies.
func (a *Assignment) TotalReplicas() int {
	total := 0
	for _, l := range a.repl {
		total += len(l) - 1
	}
	return total
}

// Add places a replica of object k at site i.
func (a *Assignment) Add(i, k int) error {
	idx, found := search(a.repl[k], int32(i))
	if found {
		return core.ErrDuplicate
	}
	if a.Free(i) < a.mo.size[k] {
		return core.ErrCapacity
	}
	list := a.repl[k]
	if len(list) < cap(list) {
		list = list[:len(list)+1]
		copy(list[idx+1:], list[idx:])
	} else {
		grown := make([]int32, len(list)+1, len(list)+2)
		copy(grown, list[:idx])
		copy(grown[idx+1:], list[idx:])
		list = grown
	}
	list[idx] = int32(i)
	a.repl[k] = list
	a.used[i] += a.mo.size[k]
	return nil
}

// Remove drops the replica of object k from site i. Primary copies cannot
// be removed.
func (a *Assignment) Remove(i, k int) error {
	idx, found := search(a.repl[k], int32(i))
	if !found {
		return core.ErrAbsent
	}
	if a.mo.primary[k] == int32(i) {
		return core.ErrPrimary
	}
	list := a.repl[k]
	copy(list[idx:], list[idx+1:])
	a.repl[k] = list[:len(list)-1]
	a.used[i] -= a.mo.size[k]
	return nil
}

// SetReplicators replaces object k's whole replica set (ascending site
// list, primary included), adjusting usage. Used by AGRA transcription;
// fails with the matching core sentinel if the list is malformed or the
// swap would overflow a site.
func (a *Assignment) SetReplicators(k int, sites []int32) error {
	prev := int32(-1)
	hasPrimary := false
	for _, s := range sites {
		if s <= prev {
			return fmt.Errorf("sparse: replica list for object %d not strictly ascending", k)
		}
		if s < 0 || int(s) >= a.mo.m {
			return fmt.Errorf("sparse: replica list for object %d references site %d of %d", k, s, a.mo.m)
		}
		prev = s
		if s == a.mo.primary[k] {
			hasPrimary = true
		}
	}
	if !hasPrimary {
		return core.ErrPrimary
	}
	// Adjust usage as remove-all + add-all; check capacity before mutating.
	delta := make(map[int32]int64, len(sites)+len(a.repl[k]))
	for _, s := range a.repl[k] {
		delta[s] -= a.mo.size[k]
	}
	for _, s := range sites {
		delta[s] += a.mo.size[k]
	}
	for s, d := range delta {
		if d > 0 && a.Free(int(s)) < d {
			return core.ErrCapacity
		}
	}
	for s, d := range delta {
		a.used[s] += d
	}
	a.repl[k] = append(a.repl[k][:0:0], sites...)
	return nil
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	out := &Assignment{
		mo:   a.mo,
		repl: make([][]int32, a.mo.n),
		used: append([]int64(nil), a.used...),
	}
	backing := make([]int32, 0, a.mo.n+a.TotalReplicas())
	for k, l := range a.repl {
		start := len(backing)
		backing = append(backing, l...)
		out.repl[k] = backing[start:len(backing):len(backing)]
	}
	return out
}

// Equal reports whether two assignments place identical replicas.
func (a *Assignment) Equal(other *Assignment) bool {
	if a.mo != other.mo {
		return false
	}
	for k := range a.repl {
		if len(a.repl[k]) != len(other.repl[k]) {
			return false
		}
		for idx, s := range a.repl[k] {
			if other.repl[k][idx] != s {
				return false
			}
		}
	}
	return true
}

// ToScheme converts into a dense core.Scheme over the equivalent dense
// problem — the bridge the differential tests cross.
func (a *Assignment) ToScheme(p *core.Problem) (*core.Scheme, error) {
	if p.Sites() != a.mo.m || p.Objects() != a.mo.n {
		return nil, fmt.Errorf("sparse: problem is %d×%d, assignment is %d×%d", p.Sites(), p.Objects(), a.mo.m, a.mo.n)
	}
	s := core.NewScheme(p)
	for k, l := range a.repl {
		for _, i := range l {
			if int(i) == p.Primary(k) {
				continue
			}
			if err := s.Add(int(i), k); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// FromScheme converts a dense scheme into a sparse assignment over mo
// (dimensions must agree). Replicas outside the candidate lists are
// accepted: pruning constrains what the solver proposes, not what the
// representation can hold or evaluate, so schemes produced by the dense
// algorithms always convert.
func FromScheme(mo *Model, s *core.Scheme) (*Assignment, error) {
	p := s.Problem()
	if p.Sites() != mo.m || p.Objects() != mo.n {
		return nil, fmt.Errorf("sparse: scheme is %d×%d, model is %d×%d", p.Sites(), p.Objects(), mo.m, mo.n)
	}
	a := NewAssignment(mo)
	for k := 0; k < mo.n; k++ {
		for _, i := range s.Replicators(k) {
			if int32(i) == mo.primary[k] {
				continue
			}
			if err := a.Add(i, k); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// Validate re-checks both DRP constraints from scratch, mirroring
// core.Scheme.Validate.
func (a *Assignment) Validate() error {
	usage := make([]int64, a.mo.m)
	for k, l := range a.repl {
		prev := int32(-1)
		hasPrimary := false
		for _, s := range l {
			if s <= prev {
				return fmt.Errorf("sparse: object %d replica list not ascending", k)
			}
			prev = s
			usage[s] += a.mo.size[k]
			if s == a.mo.primary[k] {
				hasPrimary = true
			}
		}
		if !hasPrimary {
			return fmt.Errorf("sparse: object %d lost its primary copy", k)
		}
	}
	for i := 0; i < a.mo.m; i++ {
		if usage[i] != a.used[i] {
			return fmt.Errorf("sparse: site %d tracked usage %d != actual %d", i, a.used[i], usage[i])
		}
		if usage[i] > a.mo.cap[i] {
			return fmt.Errorf("sparse: site %d over capacity: %d > %d", i, usage[i], a.mo.cap[i])
		}
	}
	return nil
}
