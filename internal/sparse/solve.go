package sparse

import (
	"container/heap"
	"fmt"

	"drp/internal/parallel"
	"drp/internal/solver"
)

// This file implements the sharded greedy solver over the sparse
// representation. Objects couple only through per-site capacity, so the
// search splits into two phases:
//
//  1. Propose — every object is searched independently: a greedy descent
//     over its pruned candidate sites, each step adding the replica with
//     the most negative exact cost delta (computed from cached per-reader
//     nearest-replica distances in O(|cand|·|readers|) per step). Objects
//     fan out across shard workers via parallel.ForWorker; proposals are
//     pure functions of the object written into index-addressed slots, so
//     the shard count only groups work and never changes any result.
//
//  2. Merge — a single deterministic capacity-ledger pass reconciles the
//     proposals: all first steps enter a max-heap ordered by benefit
//     density (saving per storage unit, then absolute saving, then object
//     index — a total order), and steps are applied best-first while
//     capacity admits them. The first rejected step of an object truncates
//     the object's remaining steps, because each later delta was computed
//     assuming the earlier replicas exist; truncation keeps the running
//     cost exact (start cost plus applied deltas, verified against a full
//     re-evaluation in tests).
//
// Both phases honour the anytime runtime: proposals check the controller
// per object, the merge at fixed step intervals, and every greedy step
// charges the evaluation meter — so budgets, deadlines and observers work
// exactly as they do for the dense solvers.

// DefaultMaxReplicas caps the greedy descent per object. Unlimited descent
// on a million-object instance multiplies work by the replica count for
// near-zero marginal saving; 8 replicas on ~100 sites matches the paper's
// observed replica degrees.
const DefaultMaxReplicas = 8

// SolveParams configures the sharded solve.
type SolveParams struct {
	// Shards is the worker count for the proposal fan-out: 0 means
	// GOMAXPROCS, 1 is serial. Results are bit-identical at any value.
	Shards int
	// MaxReplicas caps replicas per object (primary included): 0 means
	// DefaultMaxReplicas, negative means unlimited.
	MaxReplicas int
}

// Result is a sharded solve's outcome.
type Result struct {
	// Assignment is the final replica placement (primary-valid, within
	// capacity).
	Assignment *Assignment
	// Cost is the exact eq. 4 NTC of Assignment, maintained incrementally
	// and equal to a full re-evaluation.
	Cost int64
	// Savings is the paper's 100·(D′−D)/D′ quality metric.
	Savings float64
	// Proposed and Applied count greedy steps before and after the
	// capacity-ledger merge; Truncated counts steps dropped because a site
	// filled up (including steps invalidated by an earlier rejection).
	Proposed, Applied, Truncated int
	// Stats is the anytime runtime's uniform accounting.
	Stats solver.Stats
}

// proposal is one object's greedy descent: sites to add in order, with the
// exact cost delta of each step given the previous steps applied.
type proposal struct {
	sites  []int32
	deltas []int64
}

// Solve runs the sharded greedy from the primaries-only allocation.
func Solve(mo *Model, params SolveParams, run solver.Run) (*Result, error) {
	c := solver.Start("sparse", run)
	a := NewAssignment(mo)
	props := make([]proposal, mo.n)
	objects := make([]int, mo.n)
	for k := range objects {
		objects[k] = k
	}
	propose(mo, objects, props, params, c)
	c.Observe(0, 0, 0, mo.dPrime)
	res := merge(mo, a, mo.dPrime, objects, props, c)
	return res, nil
}

// Adapt re-optimises only the changed objects of an existing assignment:
// their replicas (beyond the primary) are stripped, fresh proposals are
// computed against the residual capacity ledger, and the merge reconciles
// them. Untouched objects keep their placement bit-identically. The
// assignment is mutated in place and returned in the result.
func Adapt(mo *Model, a *Assignment, changed []int, params SolveParams, run solver.Run) (*Result, error) {
	c := solver.Start("sparse", run)
	seen := make(map[int]bool, len(changed))
	objects := make([]int, 0, len(changed))
	for _, k := range changed {
		if k < 0 || k >= mo.n {
			return nil, fmt.Errorf("sparse: changed object %d out of range [0,%d)", k, mo.n)
		}
		if !seen[k] {
			seen[k] = true
			objects = append(objects, k)
		}
	}
	pool := NewEvalPool(mo, params.Shards)
	pool.SetMeter(c.Meter())
	cost := pool.Cost(a)
	// Strip the changed objects to primary-only; the cost moves to their
	// V′_k and the ledger releases their storage.
	ev := pool.Evaluator()
	for _, k := range objects {
		cost += mo.vPrime[k] - ev.ObjectCost(k, a.repl[k])
		repl := append([]int32(nil), a.repl[k]...)
		for _, i := range repl {
			if i != mo.primary[k] {
				if err := a.Remove(int(i), k); err != nil {
					return nil, err
				}
			}
		}
	}
	props := make([]proposal, len(objects))
	propose(mo, objects, props, params, c)
	c.Observe(0, 0, 0, cost)
	res := merge(mo, a, cost, objects, props, c)
	return res, nil
}

// propose computes the greedy descent of every listed object into
// props[idx] (parallel, index-addressed, RNG-free). Capacity is not
// consulted here — proposals are optimistic and the merge settles them
// against the shared ledger — so a proposal is a pure function of its
// object and the shard count cannot influence it.
func propose(mo *Model, objects []int, props []proposal, params SolveParams, c *solver.Controller) {
	maxAdds := params.MaxReplicas
	switch {
	case maxAdds == 0:
		maxAdds = DefaultMaxReplicas - 1
	case maxAdds < 0:
		maxAdds = mo.m
	default:
		maxAdds--
	}
	workers := parallel.Workers(params.Shards)
	type scratch struct {
		dmin   []int64 // per-reader nearest-replica distance
		inRepl []bool  // candidate-indexed: already added this descent
	}
	scratches := make([]scratch, workers)
	parallel.ForWorker(len(objects), workers, func(w, idx int) {
		if _, stop := c.Check(); stop {
			return // remaining objects keep empty proposals
		}
		sc := &scratches[w]
		k := objects[idx]
		cand := mo.Candidates(k)
		if len(cand) <= 1 {
			c.Charge(1)
			return // only the primary: nothing to propose
		}
		sp := int(mo.primary[k])
		ok := mo.size[k]
		wTot := mo.totalWrites[k]
		spRow := mo.dist.Row(sp)
		rs, rc := mo.ReadEntries(k)
		ws, wc := mo.WriteEntries(k)
		if cap(sc.dmin) < len(rs) {
			sc.dmin = make([]int64, len(rs))
		}
		dmin := sc.dmin[:len(rs)]
		for j, site := range rs {
			dmin[j] = spRow[site]
		}
		if cap(sc.inRepl) < len(cand) {
			sc.inRepl = make([]bool, len(cand))
		}
		inRepl := sc.inRepl[:len(cand)]
		for ci := range inRepl {
			inRepl[ci] = cand[ci] == int32(sp)
		}
		var sites []int32
		var deltas []int64
		rounds := 1
		for len(sites) < maxAdds {
			bestCI := -1
			var bestDelta int64
			for ci, x := range cand {
				if inRepl[ci] {
					continue
				}
				row := mo.dist.Row(int(x))
				// Fan-in the new replica starts paying, minus the write
				// shipping and read traffic site x stops paying, minus the
				// read-distance drops of the other non-replicator readers.
				delta := wTot * ok * spRow[x]
				for j, site := range rs {
					if site == x {
						delta -= rc[j] * ok * dmin[j]
						continue
					}
					if drop := dmin[j] - row[site]; drop > 0 {
						// Readers that are replicators have dmin 0, so they
						// never contribute here.
						delta -= rc[j] * ok * drop
					}
				}
				for j, site := range ws {
					if site == x {
						delta -= wc[j] * ok * spRow[x]
						break // sites are unique within the CSR row
					}
				}
				if bestCI < 0 || delta < bestDelta {
					bestCI, bestDelta = ci, delta
				}
			}
			rounds++
			if bestCI < 0 || bestDelta >= 0 {
				break
			}
			x := cand[bestCI]
			inRepl[bestCI] = true
			row := mo.dist.Row(int(x))
			for j, site := range rs {
				if d := row[site]; d < dmin[j] {
					dmin[j] = d
				}
			}
			sites = append(sites, x)
			deltas = append(deltas, bestDelta)
		}
		props[idx] = proposal{sites: sites, deltas: deltas}
		// One charge per greedy scan round — the sparse analogue of a
		// cost-model evaluation, so budgets bite proportionally.
		c.Charge(rounds)
	})
}

// ledgerEntry is one pending merge step: objects[obj]'s step-th greedy add.
type ledgerEntry struct {
	obj     int // index into the objects/props slices
	step    int
	density float64 // saving per storage unit of this step
	benefit int64   // −delta
}

type ledgerHeap []ledgerEntry

func (h ledgerHeap) Len() int { return len(h) }
func (h ledgerHeap) Less(a, b int) bool {
	if h[a].density != h[b].density {
		return h[a].density > h[b].density
	}
	if h[a].benefit != h[b].benefit {
		return h[a].benefit > h[b].benefit
	}
	return h[a].obj < h[b].obj
}
func (h ledgerHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *ledgerHeap) Push(x interface{}) { *h = append(*h, x.(ledgerEntry)) }
func (h *ledgerHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

const (
	mergeCheckEvery   = 4096
	mergeObserveEvery = 65536
)

// merge applies the proposals best-density-first against the shared
// capacity ledger. startCost must be the exact cost of a as passed in; the
// returned cost is startCost plus every applied delta.
func merge(mo *Model, a *Assignment, startCost int64, objects []int, props []proposal, c *solver.Controller) *Result {
	res := &Result{Assignment: a}
	cost := startCost
	h := make(ledgerHeap, 0, len(props))
	for idx := range props {
		res.Proposed += len(props[idx].sites)
		if len(props[idx].sites) > 0 {
			h = append(h, entryFor(mo, objects, props, idx, 0))
		}
	}
	heap.Init(&h)
	// Sample the controller once up front: a run interrupted during the
	// propose phase (which leaves later objects with empty proposals) must
	// report its stop reason even when nothing reaches the heap.
	stopped, _ := c.Check()
	steps := 0
	for stopped == solver.StopCompleted && h.Len() > 0 {
		if steps%mergeCheckEvery == 0 {
			if reason, stop := c.Check(); stop {
				stopped = reason
				break
			}
		}
		e := heap.Pop(&h).(ledgerEntry)
		k := objects[e.obj]
		p := &props[e.obj]
		site := int(p.sites[e.step])
		if err := a.Add(site, k); err != nil {
			// Capacity: this and every later step of the object assumed the
			// add succeeded, so the whole tail is invalid.
			res.Truncated += len(p.sites) - e.step
			continue
		}
		cost += -e.benefit
		res.Applied++
		steps++
		if e.step+1 < len(p.sites) {
			heap.Push(&h, entryFor(mo, objects, props, e.obj, e.step+1))
		}
		if steps%mergeObserveEvery == 0 {
			c.Observe(steps, 0, 0, cost)
		}
	}
	if stopped.Interrupted() {
		// Anything left pending stays unapplied; the assignment and cost
		// remain exact for what was applied.
		for h.Len() > 0 {
			e := heap.Pop(&h).(ledgerEntry)
			res.Truncated += len(props[e.obj].sites) - e.step
		}
	}
	res.Cost = cost
	res.Savings = mo.Savings(cost)
	res.Stats = c.Finish(res.Applied, stopped)
	c.Observe(res.Applied, 0, 0, cost)
	return res
}

func entryFor(mo *Model, objects []int, props []proposal, idx, step int) ledgerEntry {
	k := objects[idx]
	benefit := -props[idx].deltas[step]
	return ledgerEntry{
		obj:     idx,
		step:    step,
		density: float64(benefit) / float64(mo.size[k]),
		benefit: benefit,
	}
}
