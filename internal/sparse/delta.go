package sparse

// DeltaEvaluator maintains an assignment's cost incrementally, mirroring
// core.DeltaEvaluator: adding or removing one replica of object k only
// changes V_k, so the exact new cost is computable in O(|R_k| + nnz_k). The
// sparse-delta differential check holds its predictions equal to the dense
// delta evaluator's along mutation walks.
type DeltaEvaluator struct {
	p       *Assignment
	ev      *Evaluator
	objCost []int64
	cost    int64
	scratch []int32
}

// NewDeltaEvaluator wraps the assignment (not copied: mutations must go
// through Add/Remove so the cache stays consistent).
func NewDeltaEvaluator(a *Assignment) *DeltaEvaluator {
	d := &DeltaEvaluator{
		p:       a,
		ev:      NewEvaluator(a.mo),
		objCost: make([]int64, a.mo.n),
	}
	for k := 0; k < a.mo.n; k++ {
		d.objCost[k] = d.ev.objectCost(k, a.repl[k])
		d.cost += d.objCost[k]
	}
	return d
}

// Assignment returns the underlying assignment.
func (d *DeltaEvaluator) Assignment() *Assignment { return d.p }

// Cost returns the current exact NTC.
func (d *DeltaEvaluator) Cost() int64 { return d.cost }

// ObjectCost returns the cached V_k.
func (d *DeltaEvaluator) ObjectCost(k int) int64 { return d.objCost[k] }

// AddDelta returns the cost change of placing a replica of k at site i
// without applying it. Returns 0, false if the placement is invalid — the
// same guards as the dense evaluator (duplicate or over capacity).
func (d *DeltaEvaluator) AddDelta(i, k int) (int64, bool) {
	if d.p.Has(i, k) || d.p.Free(i) < d.p.mo.size[k] {
		return 0, false
	}
	after := d.objectCostWith(k, i, true)
	return after - d.objCost[k], true
}

// RemoveDelta returns the cost change of dropping the replica of k at site
// i without applying it. Returns 0, false if the removal is invalid.
func (d *DeltaEvaluator) RemoveDelta(i, k int) (int64, bool) {
	if !d.p.Has(i, k) || d.p.mo.primary[k] == int32(i) {
		return 0, false
	}
	after := d.objectCostWith(k, i, false)
	return after - d.objCost[k], true
}

// Add applies the placement and updates the cached cost.
func (d *DeltaEvaluator) Add(i, k int) error {
	if err := d.p.Add(i, k); err != nil {
		return err
	}
	d.refresh(k)
	return nil
}

// Remove applies the removal and updates the cached cost.
func (d *DeltaEvaluator) Remove(i, k int) error {
	if err := d.p.Remove(i, k); err != nil {
		return err
	}
	d.refresh(k)
	return nil
}

func (d *DeltaEvaluator) refresh(k int) {
	next := d.ev.objectCost(k, d.p.repl[k])
	d.cost += next - d.objCost[k]
	d.objCost[k] = next
}

// objectCostWith computes V_k as if the replica at site i were present
// (add=true) or absent (add=false), without mutating the assignment.
func (d *DeltaEvaluator) objectCostWith(k, i int, add bool) int64 {
	d.scratch = d.scratch[:0]
	inserted := false
	for _, s := range d.p.repl[k] {
		if s == int32(i) {
			if add {
				d.scratch = append(d.scratch, s)
				inserted = true
			}
			continue
		}
		if add && !inserted && s > int32(i) {
			d.scratch = append(d.scratch, int32(i))
			inserted = true
		}
		d.scratch = append(d.scratch, s)
	}
	if add && !inserted {
		d.scratch = append(d.scratch, int32(i))
	}
	return d.ev.objectCost(k, d.scratch)
}
