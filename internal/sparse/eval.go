package sparse

import (
	"sync/atomic"

	"drp/internal/parallel"
)

// Evaluator computes eq. 4's D over the sparse representation. Where the
// dense core.Evaluator walks all M sites per object, this one touches only
// the replicators (for the update fan-in term) and the object's CSR
// read/write entries (for the non-replicator terms) — O(|R_k| + nnz_k)
// instead of O(M·|R_k|) per object. Every term is the same int64 product
// the dense evaluator adds, and int64 addition is associative and
// commutative, so the reordered sum is bit-identical; the sparse-eval
// differential check in internal/verify holds the two paths equal.
//
// Not safe for concurrent use; create one per goroutine (EvalPool does).
type Evaluator struct {
	mo    *Model
	meter *atomic.Int64
}

// NewEvaluator returns an evaluator for mo.
func NewEvaluator(mo *Model) *Evaluator { return &Evaluator{mo: mo} }

// SetMeter attaches an evaluation counter: every subsequent Cost and
// ObjectCost call adds one to it, the same unit the dense evaluator meters,
// so sparse runs draw from solver budgets identically. The counter may be
// shared across evaluators (and goroutines); nil detaches.
func (e *Evaluator) SetMeter(meter *atomic.Int64) { e.meter = meter }

// Cost returns D for the assignment.
func (e *Evaluator) Cost(a *Assignment) int64 {
	if e.meter != nil {
		e.meter.Add(1)
	}
	var total int64
	for k := 0; k < e.mo.n; k++ {
		total += e.objectCost(k, a.repl[k])
	}
	return total
}

// ObjectCost returns V_k, the NTC attributable to object k, for the
// replicator set given as ascending site indices.
func (e *Evaluator) ObjectCost(k int, replicators []int32) int64 {
	if e.meter != nil {
		e.meter.Add(1)
	}
	return e.objectCost(k, replicators)
}

func (e *Evaluator) objectCost(k int, repl []int32) int64 {
	mo := e.mo
	if len(repl) == 0 {
		// Degenerate replica-free input: primaries-only, like the dense path.
		return mo.vPrime[k]
	}
	sp := int(mo.primary[k])
	ok := mo.size[k]
	wTot := mo.totalWrites[k]
	spRow := mo.dist.Row(sp)
	var total int64
	// Update fan-in: every replicator receives each update from the primary
	// (a replicator's own writes ship via the x=i term, exactly as dense).
	for _, i := range repl {
		total += wTot * ok * spRow[i]
	}
	// Non-replicator reads go to the nearest replica; non-replicator writes
	// ship to the primary. Sites with zero traffic contribute zero in the
	// dense sum, so skipping them cannot diverge.
	rs, rc := mo.ReadEntries(k)
	for idx, j := range rs {
		if _, isRepl := search(repl, j); isRepl {
			continue
		}
		row := mo.dist.Row(int(j))
		dmin := row[repl[0]]
		for _, x := range repl[1:] {
			if d := row[x]; d < dmin {
				dmin = d
			}
		}
		total += rc[idx] * ok * dmin
	}
	ws, wc := mo.WriteEntries(k)
	for idx, j := range ws {
		if _, isRepl := search(repl, j); isRepl {
			continue
		}
		total += wc[idx] * ok * spRow[j]
	}
	return total
}

// EvalPool fans sparse cost evaluations out across per-goroutine
// Evaluators, mirroring core.EvalPool: results are written by task index,
// so the reduction order — and every downstream decision — is identical at
// any worker count.
type EvalPool struct {
	workers int
	evs     []*Evaluator
}

// NewEvalPool returns a pool for mo. parallelism follows the solvers'
// convention: 0 means GOMAXPROCS, 1 is fully serial.
func NewEvalPool(mo *Model, parallelism int) *EvalPool {
	w := parallel.Workers(parallelism)
	evs := make([]*Evaluator, w)
	for i := range evs {
		evs[i] = NewEvaluator(mo)
	}
	return &EvalPool{workers: w, evs: evs}
}

// SetMeter attaches one shared evaluation counter to every worker's
// evaluator; nil detaches.
func (pl *EvalPool) SetMeter(meter *atomic.Int64) {
	for _, ev := range pl.evs {
		ev.SetMeter(meter)
	}
}

// Workers returns the pool's worker count.
func (pl *EvalPool) Workers() int { return pl.workers }

// Evaluator returns worker 0's evaluator for inline use on the caller's
// goroutine (never concurrently with Each).
func (pl *EvalPool) Evaluator() *Evaluator { return pl.evs[0] }

// Each runs fn(ev, i) for every i in [0, n) across the pool, handing each
// invocation a worker-private Evaluator. fn must write its result into an
// index-addressed slot and must not touch shared mutable state.
func (pl *EvalPool) Each(n int, fn func(ev *Evaluator, i int)) {
	parallel.ForWorker(n, pl.workers, func(w, i int) { fn(pl.evs[w], i) })
}

// ObjectCosts evaluates V_k for every object of the assignment in parallel
// and returns them in object order (their sum is D).
func (pl *EvalPool) ObjectCosts(a *Assignment) []int64 {
	out := make([]int64, a.mo.n)
	pl.Each(a.mo.n, func(ev *Evaluator, k int) { out[k] = ev.objectCost(k, a.repl[k]) })
	if len(pl.evs) > 0 && pl.evs[0].meter != nil {
		pl.evs[0].meter.Add(1) // one full-assignment evaluation
	}
	return out
}

// Cost evaluates D for the assignment with per-object parallelism — the
// million-object full evaluation the bench trajectory times.
func (pl *EvalPool) Cost(a *Assignment) int64 {
	costs := pl.ObjectCosts(a)
	var total int64
	for _, v := range costs {
		total += v
	}
	return total
}
