package sparse

import (
	"sync/atomic"
	"testing"

	"drp/internal/core"
	"drp/internal/xrand"
)

// TestEvalMatchesDense walks random mutations and holds the sparse
// evaluator's full cost bit-identical to the dense one at every step.
func TestEvalMatchesDense(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		mo := testModel(t, 12, 30, seed)
		p := denseFromModel(t, mo)
		a := NewAssignment(mo)
		s := core.NewScheme(p)
		ev := NewEvaluator(mo)
		dev := core.NewEvaluator(p)
		rng := xrand.New(seed * 13)
		randomWalk(t, mo, s, a, rng, 60, func(step int) {
			sparseCost := ev.Cost(a)
			denseCost := dev.Cost(s.Bits())
			if sparseCost != denseCost {
				t.Fatalf("seed %d step %d: sparse cost %d, dense %d", seed, step, sparseCost, denseCost)
			}
			k := rng.Intn(mo.Objects())
			repl := a.Replicators(k)
			if got, want := ev.ObjectCost(k, repl), s.ObjectCost(k); got != want {
				t.Fatalf("seed %d step %d: V_%d sparse %d, dense %d", seed, step, k, got, want)
			}
		})
	}
}

// TestDeltaMatchesDense holds the sparse delta evaluator's predictions and
// applied costs equal to the dense delta evaluator along a mutation walk.
func TestDeltaMatchesDense(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		mo := testModel(t, 10, 20, seed)
		p := denseFromModel(t, mo)
		a := NewAssignment(mo)
		s := core.NewScheme(p)
		sd := NewDeltaEvaluator(a)
		dd := core.NewDeltaEvaluator(s)
		if sd.Cost() != dd.Cost() {
			t.Fatalf("seed %d: initial cost sparse %d, dense %d", seed, sd.Cost(), dd.Cost())
		}
		rng := xrand.New(seed * 31)
		for step := 0; step < 80; step++ {
			k := rng.Intn(mo.Objects())
			if rng.Bool(0.6) {
				cand := mo.Candidates(k)
				site := int(cand[rng.Intn(len(cand))])
				gotD, gotOK := sd.AddDelta(site, k)
				wantD, wantOK := dd.AddDelta(site, k)
				if gotD != wantD || gotOK != wantOK {
					t.Fatalf("seed %d step %d: AddDelta(%d,%d) sparse (%d,%v), dense (%d,%v)",
						seed, step, site, k, gotD, gotOK, wantD, wantOK)
				}
				if gotOK {
					if err := sd.Add(site, k); err != nil {
						t.Fatalf("seed %d step %d: sparse add: %v", seed, step, err)
					}
					if err := dd.Add(site, k); err != nil {
						t.Fatalf("seed %d step %d: dense add: %v", seed, step, err)
					}
				}
			} else {
				repl := a.Replicators(k)
				site := int(repl[rng.Intn(len(repl))])
				gotD, gotOK := sd.RemoveDelta(site, k)
				wantD, wantOK := dd.RemoveDelta(site, k)
				if gotD != wantD || gotOK != wantOK {
					t.Fatalf("seed %d step %d: RemoveDelta(%d,%d) sparse (%d,%v), dense (%d,%v)",
						seed, step, site, k, gotD, gotOK, wantD, wantOK)
				}
				if gotOK {
					if err := sd.Remove(site, k); err != nil {
						t.Fatalf("seed %d step %d: sparse remove: %v", seed, step, err)
					}
					if err := dd.Remove(site, k); err != nil {
						t.Fatalf("seed %d step %d: dense remove: %v", seed, step, err)
					}
				}
			}
			if sd.Cost() != dd.Cost() {
				t.Fatalf("seed %d step %d: cost sparse %d, dense %d", seed, step, sd.Cost(), dd.Cost())
			}
			if full := NewEvaluator(mo).Cost(a); full != sd.Cost() {
				t.Fatalf("seed %d step %d: cached cost %d, full re-eval %d", seed, step, sd.Cost(), full)
			}
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: final assignment invalid: %v", seed, err)
		}
	}
}

// TestEvalPoolParity holds the pooled per-object costs identical at worker
// counts 1/2/8 and equal to the serial evaluator.
func TestEvalPoolParity(t *testing.T) {
	mo := testModel(t, 12, 60, 3)
	a := NewAssignment(mo)
	rng := xrand.New(99)
	for step := 0; step < 40; step++ {
		k := rng.Intn(mo.Objects())
		cand := mo.Candidates(k)
		_ = a.Add(int(cand[rng.Intn(len(cand))]), k)
	}
	serial := NewEvaluator(mo)
	want := make([]int64, mo.Objects())
	var wantTotal int64
	for k := range want {
		want[k] = serial.ObjectCost(k, a.Replicators(k))
		wantTotal += want[k]
	}
	for _, workers := range []int{1, 2, 8} {
		pool := NewEvalPool(mo, workers)
		got := pool.ObjectCosts(a)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("workers %d: V_%d = %d, want %d", workers, k, got[k], want[k])
			}
		}
		if total := pool.Cost(a); total != wantTotal {
			t.Fatalf("workers %d: total %d, want %d", workers, total, wantTotal)
		}
	}
}

func TestEvaluatorMeter(t *testing.T) {
	mo := testModel(t, 8, 10, 1)
	a := NewAssignment(mo)
	ev := NewEvaluator(mo)
	var meter atomic.Int64
	ev.SetMeter(&meter)
	ev.Cost(a)
	ev.ObjectCost(0, a.Replicators(0))
	if got := meter.Load(); got != 2 {
		t.Fatalf("meter %d after Cost+ObjectCost, want 2", got)
	}
	pool := NewEvalPool(mo, 4)
	pool.SetMeter(&meter)
	pool.Cost(a)
	if got := meter.Load(); got != 3 {
		t.Fatalf("meter %d after pooled Cost, want 3 (one charge per full evaluation)", got)
	}
}

func TestEmptyReplicatorsDegenerate(t *testing.T) {
	mo := testModel(t, 6, 8, 2)
	ev := NewEvaluator(mo)
	for k := 0; k < mo.Objects(); k++ {
		if got := ev.ObjectCost(k, nil); got != mo.VPrime(k) {
			t.Fatalf("object %d: empty-replicator cost %d, want V′ %d", k, got, mo.VPrime(k))
		}
	}
}
