// Package trace records and replays request traces: the concrete sequence
// of timestamped reads and writes behind a measurement period's aggregate
// r_k(i)/w_k(i) counts. Traces serialise as JSON lines, so workloads can
// be archived, inspected and replayed against different replication
// schemes — replaying a full period against a scheme reproduces eq. 4's D
// exactly.
//
// This package describes workload INPUT — which requests arrive, where and
// when. It is unrelated to drp/internal/spans, which records how the system
// EXECUTED each request (per-hop spans, retries, transfer costs). Replay a
// trace.Trace to regenerate traffic; read a spans file to explain it.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"drp/internal/core"
	"drp/internal/xrand"
)

// Op is the request type.
type Op string

// Request operations.
const (
	OpRead  Op = "read"
	OpWrite Op = "write"
)

// Request is one timestamped operation issued by a site.
type Request struct {
	Time   int64 `json:"t"`
	Site   int   `json:"site"`
	Object int   `json:"obj"`
	Op     Op    `json:"op"`
}

// Trace is a time-ordered request sequence.
type Trace struct {
	Requests []Request
}

// periodTicks is the virtual duration of the generated measurement period.
const periodTicks = 1_000_000

// Generate expands the problem's aggregate read/write counts into a
// concrete trace: every counted request gets a uniformly random timestamp
// in the period. Identical seeds produce identical traces.
func Generate(p *core.Problem, seed uint64) *Trace {
	rng := xrand.New(seed)
	var total int64
	for k := 0; k < p.Objects(); k++ {
		total += p.TotalReads(k) + p.TotalWrites(k)
	}
	tr := &Trace{Requests: make([]Request, 0, total)}
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			for r := int64(0); r < p.Reads(i, k); r++ {
				tr.Requests = append(tr.Requests, Request{
					Time: int64(rng.Intn(periodTicks)), Site: i, Object: k, Op: OpRead,
				})
			}
			for w := int64(0); w < p.Writes(i, k); w++ {
				tr.Requests = append(tr.Requests, Request{
					Time: int64(rng.Intn(periodTicks)), Site: i, Object: k, Op: OpWrite,
				})
			}
		}
	}
	sort.SliceStable(tr.Requests, func(a, b int) bool {
		return tr.Requests[a].Time < tr.Requests[b].Time
	})
	return tr
}

// Encode writes the trace as JSON lines.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, req := range t.Requests {
		if err := enc.Encode(req); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses a JSON-lines trace, validating it against the problem's
// dimensions.
func Decode(p *core.Problem, r io.Reader) (*Trace, error) {
	tr := &Trace{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for dec.More() {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		if req.Site < 0 || req.Site >= p.Sites() {
			return nil, fmt.Errorf("trace: site %d out of range", req.Site)
		}
		if req.Object < 0 || req.Object >= p.Objects() {
			return nil, fmt.Errorf("trace: object %d out of range", req.Object)
		}
		if req.Op != OpRead && req.Op != OpWrite {
			return nil, fmt.Errorf("trace: unknown op %q", req.Op)
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

// Counts re-aggregates the trace into read/write matrices — the inverse of
// Generate up to timestamps.
func (t *Trace) Counts(p *core.Problem) (reads, writes [][]int64) {
	reads = make([][]int64, p.Sites())
	writes = make([][]int64, p.Sites())
	for i := range reads {
		reads[i] = make([]int64, p.Objects())
		writes[i] = make([]int64, p.Objects())
	}
	for _, req := range t.Requests {
		if req.Op == OpRead {
			reads[req.Site][req.Object]++
		} else {
			writes[req.Site][req.Object]++
		}
	}
	return reads, writes
}

// ReplayStats aggregates a replay.
type ReplayStats struct {
	Reads, Writes int64
	// NTC is the total transfer cost of serving the trace under the given
	// scheme via the paper's policy.
	NTC int64
}

// Replay serves the trace against a replication scheme, request by
// request, and returns the accounted transfer cost. Replaying the full
// trace of a problem against a scheme for that problem yields exactly the
// scheme's eq. 4 cost.
func Replay(scheme *core.Scheme, t *Trace) ReplayStats {
	p := scheme.Problem()
	nearest := core.NewNearestTable(scheme)
	var st ReplayStats
	for _, req := range t.Requests {
		switch req.Op {
		case OpRead:
			st.Reads++
			st.NTC += p.Size(req.Object) * nearest.Dist(req.Site, req.Object)
		case OpWrite:
			st.Writes++
			sp := p.Primary(req.Object)
			st.NTC += p.Size(req.Object) * p.Cost(req.Site, sp)
			for _, j := range scheme.Replicators(req.Object) {
				if j == req.Site || j == sp {
					continue
				}
				st.NTC += p.Size(req.Object) * p.Cost(sp, j)
			}
		}
	}
	return st
}
