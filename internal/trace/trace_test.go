package trace

import (
	"bytes"
	"strings"
	"testing"

	"drp/internal/core"
	"drp/internal/sra"
	"drp/internal/workload"
)

func gen(t testing.TB, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateMatchesCounts(t *testing.T) {
	p := gen(t, 8, 12, 0.1, 0.2, 1)
	tr := Generate(p, 7)
	reads, writes := tr.Counts(p)
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			if reads[i][k] != p.Reads(i, k) || writes[i][k] != p.Writes(i, k) {
				t.Fatalf("trace counts (%d,%d) = %d/%d, want %d/%d",
					i, k, reads[i][k], writes[i][k], p.Reads(i, k), p.Writes(i, k))
			}
		}
	}
}

func TestGenerateTimeOrdered(t *testing.T) {
	p := gen(t, 6, 8, 0.05, 0.2, 2)
	tr := Generate(p, 3)
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Time < tr.Requests[i-1].Time {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestReplayEqualsEq4(t *testing.T) {
	p := gen(t, 8, 10, 0.1, 0.2, 3)
	tr := Generate(p, 11)
	for _, scheme := range []*core.Scheme{
		core.NewScheme(p),
		sra.Run(p, sra.Options{}).Scheme,
	} {
		st := Replay(scheme, tr)
		if st.NTC != scheme.Cost() {
			t.Fatalf("replay NTC %d != eq.4 D %d", st.NTC, scheme.Cost())
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := gen(t, 5, 6, 0.1, 0.2, 4)
	tr := Generate(p, 5)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Requests) != len(tr.Requests) {
		t.Fatalf("round-trip lost requests: %d vs %d", len(loaded.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		if loaded.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d changed across round-trip", i)
		}
	}
}

func TestDecodeValidation(t *testing.T) {
	p := gen(t, 3, 3, 0.05, 0.3, 6)
	bad := []string{
		`{"t":1,"site":9,"obj":0,"op":"read"}`,
		`{"t":1,"site":0,"obj":9,"op":"read"}`,
		`{"t":1,"site":0,"obj":0,"op":"scan"}`,
		`not json`,
	}
	for _, line := range bad {
		if _, err := Decode(p, strings.NewReader(line)); err == nil {
			t.Fatalf("bad line accepted: %s", line)
		}
	}
	if tr, err := Decode(p, strings.NewReader("")); err != nil || len(tr.Requests) != 0 {
		t.Fatal("empty trace should decode to zero requests")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := gen(t, 6, 8, 0.1, 0.2, 7)
	a := Generate(p, 9)
	b := Generate(p, 9)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed produced different trace lengths")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}
