package solver

import (
	"context"
	"testing"
	"time"
)

func TestZeroRunNeverStops(t *testing.T) {
	c := Start("test", Run{})
	c.Charge(1 << 20)
	for i := 0; i < 3; i++ {
		if reason, halt := c.Check(); halt {
			t.Fatalf("open-loop run stopped: %v", reason)
		}
	}
}

func TestCheckCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := Start("test", Run{Context: ctx})
	if _, halt := c.Check(); halt {
		t.Fatal("stopped before cancellation")
	}
	cancel()
	if reason, halt := c.Check(); !halt || reason != StopCancelled {
		t.Fatalf("got (%v, %v), want (cancelled, true)", reason, halt)
	}
}

func TestCheckContextDeadlineReportsDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := Start("test", Run{Context: ctx})
	if reason, halt := c.Check(); !halt || reason != StopDeadline {
		t.Fatalf("got (%v, %v), want (deadline, true)", reason, halt)
	}
}

func TestCheckOwnDeadline(t *testing.T) {
	c := Start("test", Run{Timeout: -time.Second})
	if reason, halt := c.Check(); !halt || reason != StopDeadline {
		t.Fatalf("got (%v, %v), want (deadline, true)", reason, halt)
	}
	c = Start("test", Run{Timeout: time.Hour})
	if reason, halt := c.Check(); halt {
		t.Fatalf("hour-long deadline fired immediately: %v", reason)
	}
}

func TestCheckBudget(t *testing.T) {
	c := Start("test", Run{Budget: 10})
	c.Charge(9)
	if _, halt := c.Check(); halt {
		t.Fatal("stopped below budget")
	}
	c.Charge(1)
	if reason, halt := c.Check(); !halt || reason != StopBudget {
		t.Fatalf("got (%v, %v), want (budget, true)", reason, halt)
	}
	if c.Evaluations() != 10 {
		t.Fatalf("Evaluations() = %d, want 10", c.Evaluations())
	}
}

// Cancellation must trump the deadline, and the deadline the budget.
func TestCheckPriority(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Start("test", Run{Context: ctx, Timeout: -time.Second, Budget: 1})
	c.Charge(5)
	if reason, _ := c.Check(); reason != StopCancelled {
		t.Fatalf("got %v, want cancelled", reason)
	}
	c = Start("test", Run{Timeout: -time.Second, Budget: 1})
	c.Charge(5)
	if reason, _ := c.Check(); reason != StopDeadline {
		t.Fatalf("got %v, want deadline", reason)
	}
}

func TestMeterSharedWithCharge(t *testing.T) {
	c := Start("test", Run{Budget: 100})
	c.Meter().Add(40)
	c.Charge(2)
	if c.Evaluations() != 42 {
		t.Fatalf("Evaluations() = %d, want 42", c.Evaluations())
	}
}

func TestSubInheritsRemaining(t *testing.T) {
	c := Start("test", Run{Timeout: time.Hour, Budget: 100})
	c.Charge(30)
	sub := c.Sub()
	if sub.Budget != 70 {
		t.Fatalf("sub budget %d, want 70", sub.Budget)
	}
	if sub.Timeout <= 0 || sub.Timeout > time.Hour {
		t.Fatalf("sub timeout %v outside (0, 1h]", sub.Timeout)
	}
	// Over-spent budget and expired deadline clamp so the child stops at
	// its first boundary instead of running unbounded.
	c.Charge(200)
	if sub := c.Sub(); sub.Budget != 1 {
		t.Fatalf("exhausted sub budget %d, want 1", sub.Budget)
	}
	c = Start("test", Run{Timeout: -time.Second})
	if sub := c.Sub(); sub.Timeout != -1 {
		t.Fatalf("expired sub timeout %v, want -1", sub.Timeout)
	}
	// No controls: the child gets none either.
	c = Start("test", Run{})
	if sub := c.Sub(); sub.Timeout != 0 || sub.Budget != 0 {
		t.Fatalf("uncontrolled sub got controls: %+v", sub)
	}
}

func TestAbsorbFoldsChildStats(t *testing.T) {
	c := Start("test", Run{})
	c.Charge(10)
	stop := c.Absorb(Stats{Evaluations: 5, Stopped: StopBudget})
	if stop != StopBudget {
		t.Fatalf("absorbed stop %v, want budget", stop)
	}
	if c.Evaluations() != 15 {
		t.Fatalf("Evaluations() = %d, want 15", c.Evaluations())
	}
}

func TestFinish(t *testing.T) {
	c := Start("test", Run{})
	c.Charge(7)
	st := c.Finish(3, StopDeadline)
	if st.Evaluations != 7 || st.Iterations != 3 || st.Stopped != StopDeadline {
		t.Fatalf("stats %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatal("elapsed not positive")
	}
}

func TestObserveFieldsAndNilObserver(t *testing.T) {
	// A nil observer must be a no-op, not a panic.
	Start("test", Run{}).Observe(1, 0.5, 0.4, 100)

	var got Progress
	c := Start("gra", Run{Observer: ObserverFunc(func(p Progress) { got = p })})
	c.Charge(12)
	c.Observe(4, 0.5, 0.25, 99)
	if got.Algorithm != "gra" || got.Iteration != 4 || got.BestFitness != 0.5 ||
		got.MeanFitness != 0.25 || got.BestCost != 99 || got.Evaluations != 12 {
		t.Fatalf("progress %+v", got)
	}
}

func TestSynchronized(t *testing.T) {
	if Synchronized(nil) != nil {
		t.Fatal("Synchronized(nil) != nil")
	}
	n := 0
	o := Synchronized(ObserverFunc(func(Progress) { n++ }))
	o.Progress(Progress{})
	o.Progress(Progress{})
	if n != 2 {
		t.Fatalf("observer called %d times, want 2", n)
	}
}

func TestSynchronizedIdempotent(t *testing.T) {
	// Re-synchronizing must return the SAME wrapper, not stack a second
	// mutex — composed bridges each defensively call Synchronized.
	n := 0
	once := Synchronized(ObserverFunc(func(Progress) { n++ }))
	twice := Synchronized(once)
	if twice != once {
		t.Fatalf("Synchronized(Synchronized(o)) = %p, want the original wrapper %p", twice, once)
	}
	thrice := Synchronized(twice)
	if thrice != once {
		t.Fatal("triple synchronization allocated a new wrapper")
	}
	twice.Progress(Progress{})
	if n != 1 {
		t.Fatalf("observer called %d times, want 1", n)
	}
}

func TestStopReasonStrings(t *testing.T) {
	want := map[StopReason]string{
		StopCompleted: "completed", StopCancelled: "cancelled",
		StopDeadline: "deadline", StopBudget: "budget",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
		if r.Interrupted() != (r != StopCompleted) {
			t.Errorf("%v.Interrupted() = %v", r, r.Interrupted())
		}
	}
	if StopReason(42).String() != "StopReason(?)" {
		t.Errorf("unknown reason string %q", StopReason(42).String())
	}
}
