// Package solver is the anytime runtime shared by every search algorithm in
// this repository (SRA, GRA, AGRA, hill climb, exhaustive optimal). It owns
// the three cross-cutting concerns the paper's adaptive setting (Section 5)
// needs but the open-loop algorithms lack:
//
//   - run controls — a Run options struct carrying a context.Context, a
//     wall-clock deadline and an evaluation budget, so a monitor site can say
//     "re-optimise, but give me the best scheme you have by the epoch
//     deadline";
//   - progress observation — an Observer hook invoked at iteration
//     boundaries with the run's convergence state; and
//   - uniform accounting — a Stats struct (evaluations, iterations, elapsed,
//     stop reason) attached to every result and populated from a single
//     controller clock and a single evaluation meter.
//
// The determinism contract: interruption is only ever *checked* at
// generation/iteration boundaries, and checking consumes no randomness. An
// uninterrupted run is therefore bit-identical to a run with no controls at
// every worker count, and a run cancelled after generation g returns exactly
// what a run configured for g generations returns (plus a different stop
// reason). Budgets are soft caps for the same reason: the iteration in
// flight when the budget trips always completes, and the run stops at the
// next boundary.
package solver

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// StopReason records why a run ended. The zero value is StopCompleted so
// legacy zero-valued Stats read as uninterrupted runs.
type StopReason int

// Stop reasons, in checking priority order (cancellation trumps deadline
// trumps budget).
const (
	// StopCompleted: the run reached its natural end (generation count,
	// local optimum, exhausted candidates, patience).
	StopCompleted StopReason = iota
	// StopCancelled: the run's context was cancelled.
	StopCancelled
	// StopDeadline: the wall-clock deadline (Run.Timeout or the context's
	// own deadline) passed.
	StopDeadline
	// StopBudget: the evaluation budget was consumed.
	StopBudget
)

func (r StopReason) String() string {
	switch r {
	case StopCompleted:
		return "completed"
	case StopCancelled:
		return "cancelled"
	case StopDeadline:
		return "deadline"
	case StopBudget:
		return "budget"
	default:
		return "StopReason(?)"
	}
}

// Interrupted reports whether the run ended before its natural completion.
func (r StopReason) Interrupted() bool { return r != StopCompleted }

// Progress is one observation, emitted at an iteration boundary. Fields an
// algorithm does not track (e.g. fitness for SRA's greedy site visits) are
// zero.
type Progress struct {
	// Algorithm names the emitting solver ("sra", "gra", "agra", "hill").
	Algorithm string
	// Iteration is the boundary just completed: the generation index for the
	// GAs, the site-visit count for SRA, the accepted-move count for hill
	// climbing.
	Iteration int
	// BestFitness/MeanFitness/BestCost describe the best solution so far and
	// the population, where the algorithm has one.
	BestFitness float64
	MeanFitness float64
	BestCost    int64
	// Evaluations is the number of cost-model evaluations consumed so far
	// (the run's central meter, shared across nested and parallel stages).
	Evaluations int
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
}

// Observer receives Progress events. Implementations must be cheap — they
// run on the solver's coordinator goroutine — and, when a solver fans out
// (AGRA's per-object micro-GAs under Parallelism != 1), safe for concurrent
// use; wrap with Synchronized when unsure.
type Observer interface {
	Progress(Progress)
}

// ObserverFunc adapts a plain function to Observer.
type ObserverFunc func(Progress)

// Progress implements Observer.
func (f ObserverFunc) Progress(p Progress) { f(p) }

// Synchronized wraps an observer with a mutex so concurrent emitters (the
// AGRA fan-out) serialise their events. A nil observer stays nil, and an
// already-synchronized observer is returned as is — composed layers that
// each defensively synchronize (a CLI wrapping a bridge wrapping a sink)
// share one lock instead of stacking them.
func Synchronized(o Observer) Observer {
	if o == nil {
		return nil
	}
	if l, ok := o.(*lockedObserver); ok {
		return l
	}
	return &lockedObserver{o: o}
}

type lockedObserver struct {
	mu sync.Mutex
	o  Observer
}

func (l *lockedObserver) Progress(p Progress) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.Progress(p)
}

// Run carries the anytime controls accepted by every solver entry point.
// The zero value means "run open-loop to completion", which is bit-identical
// to the pre-runtime behaviour.
type Run struct {
	// Context cancels the run when done; nil means context.Background().
	// A context deadline is honoured and reported as StopDeadline.
	Context context.Context
	// Timeout is the wall-clock cap, measured from the solver entry point
	// (it covers seeding and setup, not just the iteration loop). 0 means
	// no deadline; negative means already expired (the run stops at the
	// first boundary with its best-so-far result).
	Timeout time.Duration
	// Budget caps the number of cost-model evaluations, counted centrally
	// on the run's meter wherever core.Evaluator / core.EvalPool is invoked
	// (for SRA, which never builds full cost evaluations, the unit is
	// benefit scans instead). <= 0 means unlimited. The budget is a soft
	// cap: the iteration in flight completes, then the run stops.
	Budget int
	// Observer receives per-iteration progress events; nil disables them.
	Observer Observer
}

// Stats is the uniform accounting attached to every solver result.
type Stats struct {
	// Evaluations is the run's central meter: cost-model evaluations for
	// the GAs and baselines, benefit scans for SRA. Nested stages (AGRA's
	// micro-GAs and mini-GRA) charge the same meter.
	Evaluations int
	// Iterations counts completed boundaries: generations for the GAs
	// (summed over micro-GAs and the mini polish for AGRA), site visits for
	// SRA, accepted moves for hill climbing, enumerated leaves for the
	// exhaustive optimal.
	Iterations int
	// Elapsed is the wall-clock duration of the whole entry point, from the
	// controller's single clock (for GRA it includes SRA seeding; for AGRA
	// it equals MicroElapsed + MiniElapsed exactly).
	Elapsed time.Duration
	// Stopped is why the run ended.
	Stopped StopReason
}

// Controller is the per-run runtime handed through a solver: it owns the
// clock, the evaluation meter, the stop checks and observer dispatch. Create
// one per entry point with Start. Check/Charge/Meter/Elapsed/Observe are
// safe for concurrent use by fan-out workers; Finish belongs to the
// coordinator.
type Controller struct {
	ctx         context.Context
	deadline    time.Time
	hasDeadline bool
	budget      int64
	observer    Observer
	alg         string
	start       time.Time
	meter       atomic.Int64
}

// Start begins a run under the given controls. alg labels observer events.
func Start(alg string, run Run) *Controller {
	c := &Controller{
		ctx:      run.Context,
		observer: run.Observer,
		alg:      alg,
		start:    time.Now(),
	}
	if c.ctx == nil {
		c.ctx = context.Background()
	}
	if run.Timeout != 0 {
		c.deadline = c.start.Add(run.Timeout)
		c.hasDeadline = true
	}
	if run.Budget > 0 {
		c.budget = int64(run.Budget)
	}
	return c
}

// Meter exposes the run's central evaluation counter for attachment to
// core.Evaluator / core.EvalPool via their SetMeter hooks.
func (c *Controller) Meter() *atomic.Int64 { return &c.meter }

// Charge adds n evaluations to the meter, for work units that do not flow
// through a metered evaluator (SRA's benefit scans, hill-climb deltas).
func (c *Controller) Charge(n int) { c.meter.Add(int64(n)) }

// Evaluations returns the meter's current value.
func (c *Controller) Evaluations() int { return int(c.meter.Load()) }

// Elapsed returns the wall-clock time since Start.
func (c *Controller) Elapsed() time.Duration { return time.Since(c.start) }

// Check reports whether the run must stop now and why. Solvers call it only
// at iteration boundaries; it consumes no randomness and mutates nothing, so
// the uninterrupted path is bit-identical to a run without controls.
// Priority: cancellation, then deadline, then budget.
func (c *Controller) Check() (StopReason, bool) {
	if err := c.ctx.Err(); err != nil {
		if err == context.DeadlineExceeded {
			return StopDeadline, true
		}
		return StopCancelled, true
	}
	if c.hasDeadline && !time.Now().Before(c.deadline) {
		return StopDeadline, true
	}
	if c.budget > 0 && c.meter.Load() >= c.budget {
		return StopBudget, true
	}
	return StopCompleted, false
}

// Observe emits one progress event if an observer is attached.
func (c *Controller) Observe(iteration int, bestFitness, meanFitness float64, bestCost int64) {
	if c.observer == nil {
		return
	}
	c.observer.Progress(Progress{
		Algorithm:   c.alg,
		Iteration:   iteration,
		BestFitness: bestFitness,
		MeanFitness: meanFitness,
		BestCost:    bestCost,
		Evaluations: c.Evaluations(),
		Elapsed:     c.Elapsed(),
	})
}

// Sub derives controls for a nested solver stage (AGRA's mini-GRA polish):
// same context and observer, the remaining wall-clock and the remaining
// budget. Call it only after a passing Check; if the deadline or budget
// raced to exhaustion in between, the child stops at its first boundary.
func (c *Controller) Sub() Run {
	run := Run{Context: c.ctx, Observer: c.observer}
	if c.hasDeadline {
		run.Timeout = time.Until(c.deadline)
		if run.Timeout <= 0 {
			run.Timeout = -1 // already expired: child stops immediately
		}
	}
	if c.budget > 0 {
		remaining := c.budget - c.meter.Load()
		if remaining < 1 {
			remaining = 1 // exhausted: child stops at its first boundary
		}
		run.Budget = int(remaining)
	}
	return run
}

// Absorb folds a nested stage's accounting into this run: its evaluations
// join the meter (unless the stage already charged it) and its stop reason
// is returned for the caller to propagate.
func (c *Controller) Absorb(st Stats) StopReason {
	c.meter.Add(int64(st.Evaluations))
	return st.Stopped
}

// Finish closes the run and returns its Stats.
func (c *Controller) Finish(iterations int, stopped StopReason) Stats {
	return Stats{
		Evaluations: c.Evaluations(),
		Iterations:  iterations,
		Elapsed:     c.Elapsed(),
		Stopped:     stopped,
	}
}
