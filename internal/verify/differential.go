package verify

// Differential checks: two independent computations of the same quantity
// must agree — the production evaluator vs a literal eq. 4 transcription,
// the delta evaluator vs full re-evaluation, pooled vs serial evaluation,
// and the heuristics vs the exhaustive optimum on small instances.

import (
	"fmt"

	"drp/internal/agra"
	"drp/internal/baseline"
	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/sra"
	"drp/internal/workload"
)

// naiveCost is eq. 4 written as directly as possible — the slow oracle the
// optimised evaluator must match term for term.
func naiveCost(p *core.Problem, s *core.Scheme) int64 {
	var d int64
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			sp := p.Primary(k)
			if s.Has(i, k) {
				// X_ik = 1: the replicator pays the full update fan-in
				// Σ_x w_k(x) · o_k · C(i, SP_k).
				var wTot int64
				for x := 0; x < p.Sites(); x++ {
					wTot += p.Writes(x, k)
				}
				d += wTot * p.Size(k) * p.Cost(i, sp)
				continue
			}
			// X_ik = 0: nearest-replica reads plus primary-shipped writes.
			minC := int64(-1)
			for j := 0; j < p.Sites(); j++ {
				if s.Has(j, k) {
					if c := p.Cost(i, j); minC < 0 || c < minC {
						minC = c
					}
				}
			}
			d += p.Reads(i, k)*p.Size(k)*minC + p.Writes(i, k)*p.Size(k)*p.Cost(i, sp)
		}
	}
	return d
}

// checkEq4Oracle: the production evaluator agrees with the naive oracle on
// several random schemes per instance.
func checkEq4Oracle(cx *Ctx) error {
	for trial := 0; trial < 4; trial++ {
		s := randomScheme(cx.P, cx.RNG)
		got, want := cx.Cost(s), naiveCost(cx.P, s)
		if got != want {
			return fmt.Errorf("trial %d: evaluator says D=%d, literal eq.4 says %d (%d replicas)",
				trial, got, want, s.TotalReplicas())
		}
	}
	return nil
}

// checkDeltaEval: along a random mutation walk, the delta evaluator's
// predicted and applied costs match a from-scratch re-evaluation at every
// step.
func checkDeltaEval(cx *Ctx) error {
	p := cx.P
	s := core.NewScheme(p)
	d := core.NewDeltaEvaluator(s)
	for step := 0; step < 40; step++ {
		i, k := cx.RNG.Intn(p.Sites()), cx.RNG.Intn(p.Objects())
		before := d.Cost()
		var predicted int64
		var ok bool
		var applyErr error
		if s.Has(i, k) {
			predicted, ok = d.RemoveDelta(i, k)
			if ok {
				applyErr = d.Remove(i, k)
			}
		} else {
			predicted, ok = d.AddDelta(i, k)
			if ok {
				applyErr = d.Add(i, k)
			}
		}
		if !ok {
			continue
		}
		if applyErr != nil {
			return fmt.Errorf("step %d: delta predicted a move the scheme rejected: %v", step, applyErr)
		}
		full := cx.Cost(s)
		if d.Cost() != full {
			return fmt.Errorf("step %d (site %d, object %d): delta cost %d != full re-eval %d",
				step, i, k, d.Cost(), full)
		}
		if before+predicted != full {
			return fmt.Errorf("step %d (site %d, object %d): predicted delta %d but cost moved %d→%d",
				step, i, k, predicted, before, full)
		}
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("scheme invariants broken after mutation walk: %w", err)
	}
	return nil
}

// poolWorkerCounts are the fan-out widths the pool-parity check compares
// against serial evaluation.
var poolWorkerCounts = []int{1, 2, 3, 4, 8}

// checkPoolParity: EvalPool reductions are bit-identical to serial
// evaluation at every worker count.
func checkPoolParity(cx *Ctx) error {
	p := cx.P
	batch := make([]*bitset.Set, 6)
	serial := make([]int64, len(batch))
	ev := core.NewEvaluator(p)
	for b := range batch {
		batch[b] = randomScheme(p, cx.RNG).Bits()
		serial[b] = ev.Cost(batch[b])
	}
	for _, w := range poolWorkerCounts {
		costs := core.NewEvalPool(p, w).Costs(batch)
		for b := range costs {
			if costs[b] != serial[b] {
				return fmt.Errorf("worker count %d: chromosome %d cost %d != serial %d", w, b, costs[b], serial[b])
			}
		}
	}
	return nil
}

// soak solver budgets: small enough to keep instance throughput high, large
// enough to exercise seeding, crossover, repair and transcription.
func soakGRAParams(seed uint64) gra.Params {
	pr := gra.DefaultParams()
	pr.PopSize = 10
	pr.Generations = 8
	pr.Seed = seed
	pr.Parallelism = 1
	return pr
}

func soakAGRAParams(seed uint64) agra.Params {
	pr := agra.DefaultParams()
	pr.PopSize = 6
	pr.Generations = 6
	pr.Seed = seed
	pr.Parallelism = 1
	return pr
}

// checkSolverSanity: every solver's output is a valid scheme; SRA and GRA
// never lose to the primaries-only allocation; reported costs agree with
// the evaluator; and identical seeds reproduce identical schemes.
func checkSolverSanity(cx *Ctx) error {
	p := cx.P
	dPrime := p.DPrime()

	sraRes := sra.Run(p, sra.Options{})
	if err := sraRes.Scheme.Validate(); err != nil {
		return fmt.Errorf("SRA scheme invalid: %w", err)
	}
	if c := cx.Cost(sraRes.Scheme); c > dPrime {
		return fmt.Errorf("SRA cost %d exceeds no-replication D′ %d", c, dPrime)
	}
	if again := sra.Run(p, sra.Options{}); !again.Scheme.Equal(sraRes.Scheme) {
		return fmt.Errorf("SRA is not deterministic")
	}

	seed := cx.RNG.Uint64()
	graRes, err := gra.Run(p, soakGRAParams(seed))
	if err != nil {
		return fmt.Errorf("GRA: %w", err)
	}
	if err := graRes.Scheme.Validate(); err != nil {
		return fmt.Errorf("GRA scheme invalid: %w", err)
	}
	if graRes.Cost > dPrime {
		return fmt.Errorf("GRA cost %d exceeds no-replication D′ %d", graRes.Cost, dPrime)
	}
	if c := cx.Cost(graRes.Scheme); c != graRes.Cost {
		return fmt.Errorf("GRA reported cost %d but its scheme evaluates to %d", graRes.Cost, c)
	}
	graAgain, err := gra.Run(p, soakGRAParams(seed))
	if err != nil {
		return fmt.Errorf("GRA replay: %w", err)
	}
	if !graAgain.Scheme.Equal(graRes.Scheme) {
		return fmt.Errorf("GRA is not deterministic for seed %d", seed)
	}

	// AGRA: shift the patterns, adapt the SRA scheme, and demand a valid,
	// reproducible result under the new patterns.
	shifted, changes, err := workload.ApplyChange(p, workload.ChangeSpec{Ch: 4, ObjectShare: 0.5, ReadShare: 0.7}, cx.RNG.Uint64())
	if err != nil {
		return fmt.Errorf("pattern shift: %w", err)
	}
	if len(changes) == 0 {
		return nil // nothing shifted (tiny N); AGRA has nothing to do
	}
	changed := make([]int, len(changes))
	for i, ch := range changes {
		changed[i] = ch.Object
	}
	current, err := core.SchemeFromBits(shifted, sraRes.Scheme.Bits())
	if err != nil {
		return fmt.Errorf("rebinding current scheme: %w", err)
	}
	in := agra.Input{Problem: shifted, Current: current, Changed: changed}
	aseed := cx.RNG.Uint64()
	mini := soakGRAParams(aseed + 1)
	adapted, err := agra.Adapt(in, soakAGRAParams(aseed), mini, 3)
	if err != nil {
		return fmt.Errorf("AGRA: %w", err)
	}
	if err := adapted.Scheme.Validate(); err != nil {
		return fmt.Errorf("AGRA scheme invalid: %w", err)
	}
	if c := cx.Cost(adapted.Scheme); c != adapted.Cost {
		return fmt.Errorf("AGRA reported cost %d but its scheme evaluates to %d", adapted.Cost, c)
	}
	replay, err := agra.Adapt(in, soakAGRAParams(aseed), mini, 3)
	if err != nil {
		return fmt.Errorf("AGRA replay: %w", err)
	}
	if !replay.Scheme.Equal(adapted.Scheme) {
		return fmt.Errorf("AGRA is not deterministic for seed %d", aseed)
	}
	return nil
}

// checkOptimalGap (small instances): the exhaustive optimum lower-bounds
// every heuristic and the no-replication baseline.
func checkOptimalGap(cx *Ctx) error {
	p := cx.P
	opt, err := baseline.Optimal(p, smallFreeBitLimit)
	if err != nil {
		return nil // instance larger than the exhaustive gate; skip
	}
	optCost := cx.Cost(opt)
	if err := opt.Validate(); err != nil {
		return fmt.Errorf("optimal scheme invalid: %w", err)
	}
	if dPrime := p.DPrime(); optCost > dPrime {
		return fmt.Errorf("optimal cost %d exceeds no-replication D′ %d", optCost, dPrime)
	}
	if c := cx.Cost(sra.Run(p, sra.Options{}).Scheme); c < optCost {
		return fmt.Errorf("SRA cost %d beats the exhaustive optimum %d", c, optCost)
	}
	graRes, err := gra.Run(p, soakGRAParams(cx.RNG.Uint64()))
	if err != nil {
		return fmt.Errorf("GRA: %w", err)
	}
	if c := cx.Cost(graRes.Scheme); c < optCost {
		return fmt.Errorf("GRA cost %d beats the exhaustive optimum %d", c, optCost)
	}
	return nil
}

// checkOptimalCapacity (small instances): enlarging site capacities only
// grows the feasible set, so the exhaustive optimum can never get worse.
func checkOptimalCapacity(cx *Ctx) error {
	p := cx.P
	tight, err := baseline.Optimal(p, smallFreeBitLimit)
	if err != nil {
		return nil // instance larger than the exhaustive gate; skip
	}
	in := extract(p)
	var total int64
	for _, sz := range in.sizes {
		total += sz
	}
	for i := range in.caps {
		// Relax every site to hold a full copy of everything.
		in.caps[i] += total
	}
	relaxedP, err := in.build()
	if err != nil {
		return fmt.Errorf("relaxed instance rejected: %w", err)
	}
	relaxed, err := baseline.Optimal(relaxedP, smallFreeBitLimit)
	if err != nil {
		return fmt.Errorf("relaxed optimal: %w", err)
	}
	if cx.Cost(relaxed) > cx.Cost(tight) {
		return fmt.Errorf("capacity relaxation worsened the optimum: %d > %d", cx.Cost(relaxed), cx.Cost(tight))
	}
	return nil
}
