package verify

// Instance shrinking: given a failing instance and a predicate that
// re-checks the failure, ddmin alternately over objects and sites until
// neither can lose another element. The shrinker is deterministic — it
// tries removals in a fixed order — so a reproducer is stable across runs.

import (
	"drp/internal/core"
)

// maxShrinkProbes caps predicate evaluations so a slow or flaky predicate
// cannot stall the soak; the best reduction found so far is returned.
const maxShrinkProbes = 2000

// Shrink reduces p to a (locally) minimal instance still satisfying pred.
// pred must report true for p itself; Shrink never returns an instance for
// which pred was not observed true. Removing a site also removes every
// object primaried there, and candidate instances that fail validation are
// treated as non-failing (the bug is in the cost path, not the validators).
func Shrink(p *core.Problem, pred func(*core.Problem) bool) *core.Problem {
	sh := &shrinker{pred: pred, budget: maxShrinkProbes}
	cur := p
	for {
		next, changed := sh.pass(cur)
		if !changed || sh.budget <= 0 {
			return next
		}
		cur = next
	}
}

type shrinker struct {
	pred   func(*core.Problem) bool
	budget int
}

// probe builds the candidate and runs the predicate under the probe budget.
func (sh *shrinker) probe(in *rawInstance) (*core.Problem, bool) {
	if sh.budget <= 0 {
		return nil, false
	}
	sh.budget--
	q, err := in.build()
	if err != nil {
		return nil, false
	}
	return q, sh.pred(q)
}

// pass runs one object-ddmin round and one site-ddmin round.
func (sh *shrinker) pass(p *core.Problem) (*core.Problem, bool) {
	q, objChanged := sh.ddmin(p, p.Objects(), sh.dropObjects)
	r, siteChanged := sh.ddmin(q, q.Sites(), sh.dropSites)
	return r, objChanged || siteChanged
}

// ddmin is classic delta debugging over indices 0..n-1 of one dimension:
// try removing chunks at decreasing granularity, restarting whenever a
// removal keeps the failure alive.
func (sh *shrinker) ddmin(p *core.Problem, n int, drop func(*core.Problem, map[int]bool) *rawInstance) (*core.Problem, bool) {
	changed := false
	chunk := (n + 1) / 2
	for chunk >= 1 && n > 1 {
		removedAny := false
		for lo := 0; lo < n && n > 1; {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if hi-lo >= n { // never remove everything
				lo = hi
				continue
			}
			dead := make(map[int]bool, hi-lo)
			for i := lo; i < hi; i++ {
				dead[i] = true
			}
			in := drop(p, dead)
			if in == nil {
				lo = hi
				continue
			}
			if q, ok := sh.probe(in); ok {
				p, n = q, n-(hi-lo)
				changed, removedAny = true, true
				// Indices shifted down; re-scan from the same position.
				continue
			}
			if sh.budget <= 0 {
				return p, changed
			}
			lo = hi
		}
		if !removedAny {
			chunk /= 2
		} else {
			if chunk > n {
				chunk = (n + 1) / 2
			}
		}
	}
	return p, changed
}

// dropObjects builds the instance minus the dead objects. Returns nil when
// nothing would remain.
func (sh *shrinker) dropObjects(p *core.Problem, dead map[int]bool) *rawInstance {
	n := p.Objects()
	if len(dead) >= n {
		return nil
	}
	in := extract(p)
	out := &rawInstance{
		caps:  in.caps,
		dist:  in.dist,
		reads: make([][]int64, p.Sites()),
	}
	out.writes = make([][]int64, p.Sites())
	for k := 0; k < n; k++ {
		if dead[k] {
			continue
		}
		out.sizes = append(out.sizes, in.sizes[k])
		out.primaries = append(out.primaries, in.primaries[k])
	}
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < n; k++ {
			if dead[k] {
				continue
			}
			out.reads[i] = append(out.reads[i], in.reads[i][k])
			out.writes[i] = append(out.writes[i], in.writes[i][k])
		}
	}
	return out
}

// dropSites builds the instance minus the dead sites, cascading to the
// objects primaried there. Returns nil when no site — or no object — would
// remain.
func (sh *shrinker) dropSites(p *core.Problem, dead map[int]bool) *rawInstance {
	m, n := p.Sites(), p.Objects()
	if len(dead) >= m {
		return nil
	}
	in := extract(p)
	remap := make([]int, m) // old site -> new site, -1 if dead
	kept := 0
	for i := 0; i < m; i++ {
		if dead[i] {
			remap[i] = -1
			continue
		}
		remap[i] = kept
		kept++
	}
	out := &rawInstance{
		caps:  make([]int64, 0, kept),
		dist:  make([][]int64, 0, kept),
		reads: make([][]int64, kept),
	}
	out.writes = make([][]int64, kept)
	liveObj := make([]bool, n)
	anyObj := false
	for k := 0; k < n; k++ {
		if remap[in.primaries[k]] >= 0 {
			liveObj[k] = true
			anyObj = true
		}
	}
	if !anyObj {
		return nil
	}
	for k := 0; k < n; k++ {
		if !liveObj[k] {
			continue
		}
		out.sizes = append(out.sizes, in.sizes[k])
		out.primaries = append(out.primaries, remap[in.primaries[k]])
	}
	for i := 0; i < m; i++ {
		if remap[i] < 0 {
			continue
		}
		out.caps = append(out.caps, in.caps[i])
		row := make([]int64, 0, kept)
		for j := 0; j < m; j++ {
			if remap[j] >= 0 {
				row = append(row, in.dist[i][j])
			}
		}
		out.dist = append(out.dist, row)
		a := remap[i]
		for k := 0; k < n; k++ {
			if liveObj[k] {
				out.reads[a] = append(out.reads[a], in.reads[i][k])
				out.writes[a] = append(out.writes[a], in.writes[i][k])
			}
		}
	}
	return out
}
