package verify

// Metamorphic properties of the cost model (eq. 4). Each check derives a
// transformed instance whose cost relates to the original's in a way that
// holds by construction — no oracle needed — and fails loudly when the
// production evaluator breaks the relation.

import (
	"fmt"

	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/netsim"
	"drp/internal/xrand"
)

// randomScheme fills a valid scheme with uniformly random replicas until a
// run of consecutive placements fails, giving the metamorphic checks a
// non-trivial placement to transform.
func randomScheme(p *core.Problem, rng *xrand.Source) *core.Scheme {
	s := core.NewScheme(p)
	failures := 0
	for failures < 30 {
		if err := s.Add(rng.Intn(p.Sites()), rng.Intn(p.Objects())); err != nil {
			failures++
			continue
		}
		failures = 0
	}
	return s
}

// rawInstance extracts a Problem's raw configuration for transformation.
type rawInstance struct {
	sizes     []int64
	caps      []int64
	primaries []int
	reads     [][]int64
	writes    [][]int64
	dist      [][]int64
}

func extract(p *core.Problem) *rawInstance {
	m := p.Sites()
	in := &rawInstance{
		sizes:     make([]int64, p.Objects()),
		caps:      make([]int64, m),
		primaries: make([]int, p.Objects()),
		reads:     p.ReadMatrix(),
		writes:    p.WriteMatrix(),
		dist:      make([][]int64, m),
	}
	for k := range in.sizes {
		in.sizes[k] = p.Size(k)
		in.primaries[k] = p.Primary(k)
	}
	for i := 0; i < m; i++ {
		in.caps[i] = p.Capacity(i)
		in.dist[i] = append([]int64(nil), p.Dist().Row(i)...)
	}
	return in
}

func (in *rawInstance) build() (*core.Problem, error) {
	m := len(in.caps)
	dm := netsim.NewDistMatrix(m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			dm.Set(i, j, in.dist[i][j])
		}
	}
	return core.NewProblem(core.Config{
		Sizes:      in.sizes,
		Capacities: in.caps,
		Primaries:  in.primaries,
		Reads:      in.reads,
		Writes:     in.writes,
		Dist:       dm,
	})
}

// checkSitePermutation: relabelling sites by a permutation σ and permuting a
// scheme the same way leaves D unchanged — eq. 4 has no site-order terms.
func checkSitePermutation(cx *Ctx) error {
	p := cx.P
	m, n := p.Sites(), p.Objects()
	s := randomScheme(p, cx.RNG)
	perm := cx.RNG.Perm(m) // new index a holds old site perm[a]
	in := extract(p)
	out := &rawInstance{
		sizes:     in.sizes,
		caps:      make([]int64, m),
		primaries: make([]int, n),
		reads:     make([][]int64, m),
		writes:    make([][]int64, m),
		dist:      make([][]int64, m),
	}
	inv := make([]int, m)
	for a, old := range perm {
		inv[old] = a
		out.caps[a] = in.caps[old]
		out.reads[a] = in.reads[old]
		out.writes[a] = in.writes[old]
		out.dist[a] = make([]int64, m)
		for b := 0; b < m; b++ {
			out.dist[a][b] = in.dist[old][perm[b]]
		}
	}
	for k := 0; k < n; k++ {
		out.primaries[k] = inv[in.primaries[k]]
	}
	q, err := out.build()
	if err != nil {
		return fmt.Errorf("permuted instance rejected: %w", err)
	}
	bits := bitset.New(m * n)
	for a := 0; a < m; a++ {
		for k := 0; k < n; k++ {
			if s.Has(perm[a], k) {
				bits.Set(a*n + k)
			}
		}
	}
	ps, err := core.SchemeFromBits(q, bits)
	if err != nil {
		return fmt.Errorf("permuted scheme rejected: %w", err)
	}
	if got, want := cx.Cost(ps), cx.Cost(s); got != want {
		return fmt.Errorf("site permutation changed D: %d != %d (perm %v)", got, want, perm)
	}
	return nil
}

// checkObjectPermutation: relabelling objects is equally neutral.
func checkObjectPermutation(cx *Ctx) error {
	p := cx.P
	m, n := p.Sites(), p.Objects()
	s := randomScheme(p, cx.RNG)
	perm := cx.RNG.Perm(n) // new object k is old object perm[k]
	in := extract(p)
	out := &rawInstance{
		sizes:     make([]int64, n),
		caps:      in.caps,
		primaries: make([]int, n),
		reads:     make([][]int64, m),
		writes:    make([][]int64, m),
		dist:      in.dist,
	}
	for k, old := range perm {
		out.sizes[k] = in.sizes[old]
		out.primaries[k] = in.primaries[old]
	}
	for i := 0; i < m; i++ {
		out.reads[i] = make([]int64, n)
		out.writes[i] = make([]int64, n)
		for k, old := range perm {
			out.reads[i][k] = in.reads[i][old]
			out.writes[i][k] = in.writes[i][old]
		}
	}
	q, err := out.build()
	if err != nil {
		return fmt.Errorf("permuted instance rejected: %w", err)
	}
	bits := bitset.New(m * n)
	for i := 0; i < m; i++ {
		for k, old := range perm {
			if s.Has(i, old) {
				bits.Set(i*n + k)
			}
		}
	}
	ps, err := core.SchemeFromBits(q, bits)
	if err != nil {
		return fmt.Errorf("permuted scheme rejected: %w", err)
	}
	if got, want := cx.Cost(ps), cx.Cost(s); got != want {
		return fmt.Errorf("object permutation changed D: %d != %d (perm %v)", got, want, perm)
	}
	return nil
}

// checkScaleCost: D is linear in the link costs, so multiplying every
// C(i,j) by α multiplies D by exactly α. (Uniform scaling also preserves
// shortest-path structure, so the scaled matrix is still a valid C.)
func checkScaleCost(cx *Ctx) error {
	p := cx.P
	s := randomScheme(p, cx.RNG)
	alpha := int64(2 + cx.RNG.Intn(4))
	in := extract(p)
	for i := range in.dist {
		for j := range in.dist[i] {
			in.dist[i][j] *= alpha
		}
	}
	q, err := in.build()
	if err != nil {
		// The α-scaled instance can trip the int64 magnitude guard on
		// extreme inputs; that is the guard working, not a cost-model bug.
		return nil
	}
	qs, err := core.SchemeFromBits(q, s.Bits())
	if err != nil {
		return fmt.Errorf("rebinding scheme onto scaled instance: %w", err)
	}
	if got, want := cx.Cost(qs), alpha*cx.Cost(s); got != want {
		return fmt.Errorf("scaling C by %d scaled D by %d/%d, want exact", alpha, got, cx.Cost(s))
	}
	return nil
}

// checkTrafficLinearity: for a fixed scheme, D is jointly linear in the read
// and write patterns: D(r,w) = D(r,0) + D(0,w) and D(αr,βw) = α·D(r,0) +
// β·D(0,w).
func checkTrafficLinearity(cx *Ctx) error {
	p := cx.P
	s := randomScheme(p, cx.RNG)
	zero := func(rows [][]int64) [][]int64 {
		out := make([][]int64, len(rows))
		for i := range rows {
			out[i] = make([]int64, len(rows[i]))
		}
		return out
	}
	scale := func(rows [][]int64, f int64) [][]int64 {
		out := make([][]int64, len(rows))
		for i := range rows {
			out[i] = make([]int64, len(rows[i]))
			for k := range rows[i] {
				out[i][k] = rows[i][k] * f
			}
		}
		return out
	}
	reads, writes := p.ReadMatrix(), p.WriteMatrix()
	costWith := func(r, w [][]int64) (int64, error) {
		q, err := p.WithPatterns(r, w)
		if err != nil {
			return 0, err
		}
		qs, err := core.SchemeFromBits(q, s.Bits())
		if err != nil {
			return 0, err
		}
		return cx.Cost(qs), nil
	}
	readPart, err := costWith(reads, zero(writes))
	if err != nil {
		return fmt.Errorf("reads-only variant: %w", err)
	}
	writePart, err := costWith(zero(reads), writes)
	if err != nil {
		return fmt.Errorf("writes-only variant: %w", err)
	}
	if total := cx.Cost(s); total != readPart+writePart {
		return fmt.Errorf("D(r,w)=%d but D(r,0)+D(0,w)=%d+%d", total, readPart, writePart)
	}
	alpha := int64(2 + cx.RNG.Intn(3))
	beta := int64(2 + cx.RNG.Intn(3))
	scaled, err := costWith(scale(reads, alpha), scale(writes, beta))
	if err != nil {
		// Magnitude guard may reject the scaled patterns; not a violation.
		return nil
	}
	if want := alpha*readPart + beta*writePart; scaled != want {
		return fmt.Errorf("D(%d·r,%d·w)=%d, want %d", alpha, beta, scaled, want)
	}
	return nil
}

// checkZeroObject: appending an object that nobody reads or writes adds
// nothing to D (its primary copy sits idle) and leaves D′ unchanged.
func checkZeroObject(cx *Ctx) error {
	p := cx.P
	m, n := p.Sites(), p.Objects()
	s := randomScheme(p, cx.RNG)
	in := extract(p)
	sp := cx.RNG.Intn(m)
	in.sizes = append(in.sizes, 1)
	in.primaries = append(in.primaries, sp)
	in.caps[sp]++ // room for the idle primary copy; capacity never enters D
	for i := 0; i < m; i++ {
		in.reads[i] = append(in.reads[i], 0)
		in.writes[i] = append(in.writes[i], 0)
	}
	q, err := in.build()
	if err != nil {
		return fmt.Errorf("extended instance rejected: %w", err)
	}
	bits := bitset.New(m * (n + 1))
	for i := 0; i < m; i++ {
		for k := 0; k < n; k++ {
			if s.Has(i, k) {
				bits.Set(i*(n+1) + k)
			}
		}
	}
	bits.Set(sp*(n+1) + n)
	qs, err := core.SchemeFromBits(q, bits)
	if err != nil {
		return fmt.Errorf("extended scheme rejected: %w", err)
	}
	if got, want := cx.Cost(qs), cx.Cost(s); got != want {
		return fmt.Errorf("zero-traffic object moved D: %d != %d", got, want)
	}
	if q.DPrime() != p.DPrime() {
		return fmt.Errorf("zero-traffic object moved D′: %d != %d", q.DPrime(), p.DPrime())
	}
	return nil
}
