package verify

import (
	"testing"

	"drp/internal/core"
	"drp/internal/workload"
)

func genTestInstance(t *testing.T, m, n int, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, 0.10, 0.25), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShrinkReachesDimensionFloor: with a predicate that only demands
// minimum dimensions, ddmin lands exactly on the floor.
func TestShrinkReachesDimensionFloor(t *testing.T) {
	p := genTestInstance(t, 10, 8, 42)
	pred := func(q *core.Problem) bool {
		return q.Sites() >= 3 && q.Objects() >= 2
	}
	out := Shrink(p, pred)
	if !pred(out) {
		t.Fatal("shrunken instance no longer satisfies the predicate")
	}
	if out.Sites() != 3 || out.Objects() != 2 {
		t.Fatalf("shrunk to %d×%d, want the 3×2 floor", out.Sites(), out.Objects())
	}
}

// TestShrinkTracksPlantedObject: the reproducer keeps the one object the
// predicate cares about and sheds everything else shedable.
func TestShrinkTracksPlantedObject(t *testing.T) {
	p := genTestInstance(t, 8, 6, 7)
	// Plant the defect on the object with the largest primaries-only NTC —
	// a property that survives object and site removal of the others.
	target := 0
	for k := 1; k < p.Objects(); k++ {
		if p.VPrime(k) > p.VPrime(target) {
			target = k
		}
	}
	pred := func(q *core.Problem) bool {
		for k := 0; k < q.Objects(); k++ {
			// The per-object NTC changes when sites vanish, so key on the
			// object's identity (size + total traffic), which removal of
			// *other* elements cannot alter.
			if q.Size(k) == p.Size(target) && q.TotalReads(k) == p.TotalReads(target) && q.TotalWrites(k) == p.TotalWrites(target) {
				return true
			}
		}
		return false
	}
	if !pred(p) {
		t.Fatal("predicate false on the original instance")
	}
	out := Shrink(p, pred)
	if !pred(out) {
		t.Fatal("shrunken instance lost the planted object")
	}
	if out.Objects() != 1 {
		t.Fatalf("kept %d objects, want 1", out.Objects())
	}
	if out.Sites() > p.Sites() {
		t.Fatalf("site count grew: %d > %d", out.Sites(), p.Sites())
	}
}

// TestShrinkIsDeterministic: identical inputs give identical reproducers.
func TestShrinkIsDeterministic(t *testing.T) {
	pred := func(q *core.Problem) bool { return q.Sites() >= 2 && q.Objects() >= 2 }
	a := Shrink(genTestInstance(t, 9, 7, 11), pred)
	b := Shrink(genTestInstance(t, 9, 7, 11), pred)
	if a.Sites() != b.Sites() || a.Objects() != b.Objects() {
		t.Fatalf("non-deterministic shrink: %d×%d vs %d×%d", a.Sites(), a.Objects(), b.Sites(), b.Objects())
	}
	if a.DPrime() != b.DPrime() {
		t.Fatalf("non-deterministic shrink: D′ %d vs %d", a.DPrime(), b.DPrime())
	}
}

// TestShrinkNeverReturnsUnobservedFailure: a predicate true only on the
// original leaves the instance untouched.
func TestShrinkNeverReturnsUnobservedFailure(t *testing.T) {
	p := genTestInstance(t, 6, 5, 3)
	pred := func(q *core.Problem) bool {
		return q.Sites() == p.Sites() && q.Objects() == p.Objects()
	}
	out := Shrink(p, pred)
	if out.Sites() != p.Sites() || out.Objects() != p.Objects() {
		t.Fatalf("shrinker deviated to %d×%d despite an unshrinkable predicate", out.Sites(), out.Objects())
	}
}

// TestShrinkPreservesFeasibility: reproducers are real Problems — primaries
// in range and within capacity — because they come out of core.NewProblem.
func TestShrinkPreservesFeasibility(t *testing.T) {
	p := genTestInstance(t, 10, 8, 99)
	out := Shrink(p, func(q *core.Problem) bool { return q.Objects() >= 1 })
	for k := 0; k < out.Objects(); k++ {
		if sp := out.Primary(k); sp < 0 || sp >= out.Sites() {
			t.Fatalf("object %d primaried at out-of-range site %d", k, sp)
		}
	}
	s := core.NewScheme(out) // primaries-only scheme; constructor re-validates capacity
	if err := s.Validate(); err != nil {
		t.Fatalf("primaries-only scheme invalid on reproducer: %v", err)
	}
}
