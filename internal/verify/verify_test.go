package verify

import (
	"strings"
	"testing"

	"drp/internal/core"
)

// TestSoakPassesOnHealthyCode is the package's own smoke soak: every
// registered check holds on a seeded instance stream.
func TestSoakPassesOnHealthyCode(t *testing.T) {
	report, err := Soak(Options{Seed: 1, Iterations: 8, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("soak failed: %v", report.Failure)
	}
	if report.Instances != 8 {
		t.Fatalf("verified %d instances, want 8", report.Instances)
	}
	for _, name := range CheckNames() {
		if report.Runs[name] != 8 {
			t.Errorf("check %q ran %d times, want 8", name, report.Runs[name])
		}
	}
}

// TestSoakDeterministicAcrossParallelism: the same seed verifies the same
// instances and produces the same counters at any worker count.
func TestSoakDeterministicAcrossParallelism(t *testing.T) {
	opts := Options{Seed: 7, Iterations: 6, Checks: []string{"eq4-oracle", "delta-eval", "optimal-gap"}}
	opts.Parallelism = 1
	serial, err := Soak(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	wide, err := Soak(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Passed() || !wide.Passed() {
		t.Fatalf("soaks failed: serial=%v wide=%v", serial.Failure, wide.Failure)
	}
	if serial.Instances != wide.Instances {
		t.Fatalf("instance counts diverge: %d vs %d", serial.Instances, wide.Instances)
	}
	for name, n := range serial.Runs {
		if wide.Runs[name] != n {
			t.Errorf("check %q: %d serial runs vs %d at par 4", name, n, wide.Runs[name])
		}
	}
}

// writeBlindCost is the deliberately broken evaluator of the acceptance
// scenario: it drops the replicator update fan-in term of eq. 4, so any
// scheme holding a non-primary replica of a written object is undercharged.
func writeBlindCost(s *core.Scheme) int64 {
	p := s.Problem()
	var d int64
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			if s.Has(i, k) {
				continue // fan-in term silently dropped
			}
			sp := p.Primary(k)
			minC := int64(-1)
			for j := 0; j < p.Sites(); j++ {
				if s.Has(j, k) {
					if c := p.Cost(i, j); minC < 0 || c < minC {
						minC = c
					}
				}
			}
			d += p.Reads(i, k)*p.Size(k)*minC + p.Writes(i, k)*p.Size(k)*p.Cost(i, sp)
		}
	}
	return d
}

// TestBrokenEvaluatorYieldsShrunkenReproducer: injecting the write-blind
// evaluator makes the soak fail, and the shrinker reduces the failing
// instance to at most 4 sites × 4 objects with the violation intact.
func TestBrokenEvaluatorYieldsShrunkenReproducer(t *testing.T) {
	report, err := Soak(Options{
		Seed:       1,
		Iterations: 50,
		Checks:     []string{"eq4-oracle"},
		Cost:       writeBlindCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Passed() {
		t.Fatal("soak accepted a write-blind evaluator")
	}
	f := report.Failure
	if f.Check != "eq4-oracle" {
		t.Fatalf("failure attributed to %q, want eq4-oracle", f.Check)
	}
	if f.Problem == nil {
		t.Fatal("no reproducer attached")
	}
	if f.Problem.Sites() > 4 || f.Problem.Objects() > 4 {
		t.Fatalf("reproducer is %d sites × %d objects, want ≤ 4 × 4 (from %d × %d)",
			f.Problem.Sites(), f.Problem.Objects(), f.FromSites, f.FromObjects)
	}
	if f.Problem.Sites() > f.FromSites || f.Problem.Objects() > f.FromObjects {
		t.Fatalf("shrinker grew the instance: %d×%d from %d×%d",
			f.Problem.Sites(), f.Problem.Objects(), f.FromSites, f.FromObjects)
	}
	if f.ShrunkErr == nil {
		t.Fatal("reproducer carries no violation")
	}
	if !strings.Contains(f.Error(), "eq4-oracle") {
		t.Errorf("failure message lacks the check name: %s", f.Error())
	}
}

// TestBrokenDeltaCaughtByDeltaEval: a broken cost hook also trips the
// delta-vs-full differential, since the delta evaluator stays correct.
func TestBrokenDeltaCaughtByDeltaEval(t *testing.T) {
	report, err := Soak(Options{
		Seed:       3,
		Iterations: 50,
		Checks:     []string{"delta-eval"},
		Cost: func(s *core.Scheme) int64 {
			return s.Cost() + int64(s.TotalReplicas()) // off-by-replicas drift
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Passed() {
		t.Fatal("delta-eval accepted a drifting evaluator")
	}
}

func TestSoakRejectsUnknownCheck(t *testing.T) {
	if _, err := Soak(Options{Checks: []string{"definitely-not-a-check"}}); err == nil {
		t.Fatal("unknown check name accepted")
	}
}

func TestSoakRejectsTinyCaps(t *testing.T) {
	if _, err := Soak(Options{MaxSites: 2, MaxObjects: 2, Iterations: 1}); err == nil {
		t.Fatal("degenerate instance caps accepted")
	}
}

// TestCheckRegistryStable pins the registry names the CLI and CI reference.
func TestCheckRegistryStable(t *testing.T) {
	names := CheckNames()
	if len(names) != 16 {
		t.Fatalf("registry has %d checks, want 16", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate check name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"eq4-oracle", "perm-sites", "delta-eval", "pool-parity", "optimal-gap",
		"sparse-eval", "sparse-delta", "sparse-shards", "sparse-prune", "sparse-prune-perm"} {
		if !seen[want] {
			t.Errorf("registry lost check %q", want)
		}
	}
}
