// Package verify is the correctness backbone of the repository: a reusable
// verification harness that hammers the cost model, the evaluators and the
// solvers with randomly generated instances and checks them against each
// other and against metamorphic properties that must hold by construction.
//
// Three ingredients compose the harness:
//
//   - a registry of named Checks — metamorphic properties of eq. 4
//     (permutation equivariance, cost/traffic linearity, zero-traffic
//     insertion) and differential tests (production evaluator vs a literal
//     eq. 4 transcription, delta vs full evaluation, serial vs pooled
//     evaluation, heuristics vs the exhaustive optimum on small instances);
//   - a soak runner (Soak) that generates fresh instances from a seed
//     stream and runs the selected checks until an iteration count, a
//     wall-clock deadline or a failure — built on the drp/internal/solver
//     anytime runtime so cmd/drpverify gets deadlines, budgets and progress
//     for free; and
//   - a deterministic instance shrinker (Shrink) that delta-debugs any
//     failing instance down to a minimal reproducer over sites and objects
//     while preserving primary placement and capacity feasibility.
//
// Every future performance PR — sharding, caching, SIMD-style evaluation —
// is expected to keep this package green; a seeded `drpverify` soak is the
// cheapest way to gain confidence in an optimisation of the cost model.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"drp/internal/core"
	"drp/internal/parallel"
	"drp/internal/solver"
	"drp/internal/workload"
	"drp/internal/xrand"
)

// Ctx is the per-run context handed to a Check: the instance under test, a
// deterministic RNG derived from the instance seed, and the production cost
// function (overridable in tests to prove the harness catches a broken
// evaluator).
type Ctx struct {
	// P is the instance under test.
	P *core.Problem
	// Seed identifies the check run; rebuilding a Ctx from the same seed
	// replays the check bit-identically (the shrinker depends on this).
	Seed uint64
	// RNG is the check's private randomness stream, seeded from Seed.
	RNG  *xrand.Source
	cost func(*core.Scheme) int64
}

// NewCtx builds a check context for p. costFn overrides the production
// evaluator; nil means Scheme.Cost. It is exported for tests and for the
// shrinker's replay predicate.
func NewCtx(p *core.Problem, seed uint64, costFn func(*core.Scheme) int64) *Ctx {
	if costFn == nil {
		costFn = func(s *core.Scheme) int64 { return s.Cost() }
	}
	return &Ctx{P: p, Seed: seed, RNG: xrand.New(seed), cost: costFn}
}

// Cost evaluates a scheme with the production evaluator (or the test
// override). Checks that exercise "the evaluator" route through this so a
// deliberately broken evaluator is observable end to end.
func (cx *Ctx) Cost(s *core.Scheme) int64 { return cx.cost(s) }

// Check is one named verification property.
type Check struct {
	// Name is the stable identifier used by -checks and in reports.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Small marks checks that need exhaustively searchable instances
	// (differential tests against baseline.Optimal); the runner feeds them
	// tiny problems.
	Small bool
	// Run executes the property against cx.P and returns a descriptive
	// error on violation. It must be deterministic given cx.Seed.
	Run func(cx *Ctx) error
}

// Checks returns the full registry in deterministic order.
func Checks() []Check {
	return []Check{
		{Name: "eq4-oracle", Doc: "production evaluator vs literal eq.4 transcription on random schemes", Run: checkEq4Oracle},
		{Name: "perm-sites", Doc: "cost is equivariant under site relabelling", Run: checkSitePermutation},
		{Name: "perm-objects", Doc: "cost is equivariant under object relabelling", Run: checkObjectPermutation},
		{Name: "scale-cost", Doc: "scaling all link costs by α scales D by α", Run: checkScaleCost},
		{Name: "traffic-linear", Doc: "D is linear in the read and write patterns", Run: checkTrafficLinearity},
		{Name: "zero-object", Doc: "inserting a zero-traffic object leaves D unchanged", Run: checkZeroObject},
		{Name: "delta-eval", Doc: "delta evaluator matches full re-evaluation along random mutation walks", Run: checkDeltaEval},
		{Name: "pool-parity", Doc: "pooled evaluation is bit-identical to serial at several worker counts", Run: checkPoolParity},
		{Name: "solver-sanity", Doc: "SRA/GRA/AGRA schemes validate, beat no-replication, and are seed-deterministic", Run: checkSolverSanity},
		{Name: "optimal-gap", Doc: "heuristic costs are never below the exhaustive optimum", Small: true, Run: checkOptimalGap},
		{Name: "optimal-capacity", Doc: "relaxing capacities never worsens the exhaustive optimum", Small: true, Run: checkOptimalCapacity},
		{Name: "sparse-eval", Doc: "sparse evaluator (serial and pooled) is bit-identical to the dense evaluator", Run: checkSparseEval},
		{Name: "sparse-delta", Doc: "sparse delta evaluator matches the dense one along random mutation walks", Run: checkSparseDelta},
		{Name: "sparse-shards", Doc: "sharded sparse solve is bit-identical at shard counts 1/2/8", Run: checkSparseShards},
		{Name: "sparse-prune", Doc: "candidate pruning keeps every site the exhaustive optimum uses", Small: true, Run: checkSparsePrune},
		{Name: "sparse-prune-perm", Doc: "candidate pruning is equivariant under site relabelling", Run: checkSparsePrunePerm},
	}
}

// CheckNames returns the registry's names in order.
func CheckNames() []string {
	cs := Checks()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// selectChecks resolves a user-supplied subset; empty means all.
func selectChecks(names []string) ([]Check, error) {
	all := Checks()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	out := make([]Check, 0, len(names))
	seen := make(map[string]bool)
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("verify: unknown check %q (have: %s)", n, strings.Join(CheckNames(), " "))
		}
		seen[n] = true
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("verify: no checks selected")
	}
	return out, nil
}

// Options configures a soak run.
type Options struct {
	// Seed drives the instance stream; identical seeds replay identical
	// soaks (at any parallelism).
	Seed uint64
	// Iterations caps the number of generated instances; 0 means unbounded
	// (stop on the Run controls, typically a -duration deadline).
	Iterations int
	// Checks selects a subset of the registry by name; empty means all.
	Checks []string
	// Parallelism is the number of instances verified concurrently
	// (0 = GOMAXPROCS, 1 = serial). The instance stream and every check are
	// seed-deterministic, so the set of instances verified is identical at
	// any setting; only completion order varies, and failures are reported
	// for the lowest failing iteration so reports are deterministic too.
	Parallelism int
	// MaxSites/MaxObjects bound the general (non-Small) instances.
	// Zero selects the defaults (12 sites, 10 objects).
	MaxSites, MaxObjects int
	// Cost overrides the production evaluator — a test-only hook proving
	// the harness catches a broken evaluator. nil uses Scheme.Cost.
	Cost func(*core.Scheme) int64
	// Run carries the anytime controls (wall-clock deadline via Timeout,
	// check budget via Budget, progress observer). The soak stops at the
	// next instance boundary once a control trips.
	Run solver.Run
	// Log, when set, receives human-readable progress lines.
	Log func(format string, args ...interface{})
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Failure describes one check violation, after shrinking.
type Failure struct {
	// Check is the violated property.
	Check string
	// Iteration and Seed identify the failing instance in the soak stream.
	Iteration int
	Seed      uint64
	// Err is the original violation.
	Err error
	// Problem is the shrunken reproducer and ShrunkErr the violation it
	// still exhibits.
	Problem   *core.Problem
	ShrunkErr error
	// FromSites/FromObjects record the instance size before shrinking.
	FromSites, FromObjects int
}

func (f *Failure) Error() string {
	if f.Problem == nil {
		return fmt.Sprintf("verify: check %q failed on instance seed %d: %v", f.Check, f.Seed, f.Err)
	}
	return fmt.Sprintf("verify: check %q failed on instance seed %d (%d sites × %d objects, shrunk to %d × %d): %v",
		f.Check, f.Seed, f.FromSites, f.FromObjects, f.Problem.Sites(), f.Problem.Objects(), f.Err)
}

// Report summarises a soak run.
type Report struct {
	// Instances is the number of generated instances fully verified.
	Instances int
	// Runs counts executed check runs per check name.
	Runs map[string]int
	// Failure is the first (lowest-iteration) violation, or nil.
	Failure *Failure
	// Stats is the solver-runtime accounting: Evaluations counts check
	// runs, Iterations instances, Stopped why the soak ended.
	Stats solver.Stats
}

// Passed reports whether the soak found no violation.
func (r *Report) Passed() bool { return r.Failure == nil }

// defaults for the general instance generator.
const (
	defaultMaxSites   = 12
	defaultMaxObjects = 10
)

// instSeed derives the instance seed for soak iteration it — a splitmix64
// step so neighbouring iterations decorrelate.
func instSeed(base uint64, it int) uint64 {
	z := base + uint64(it+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// checkSeed derives the per-check context seed from the instance seed.
func checkSeed(inst uint64, checkIdx int) uint64 {
	return instSeed(inst^0xd1b54a32d192ed03, checkIdx)
}

// genGeneral generates the iteration's general instance.
func genGeneral(seed uint64, maxM, maxN int) (*core.Problem, error) {
	rng := xrand.New(seed)
	m := 3 + rng.Intn(maxM-2)
	n := 2 + rng.Intn(maxN-1)
	us := []float64{0, 0.02, 0.05, 0.10, 0.25}
	cs := []float64{0.08, 0.15, 0.25, 0.40}
	spec := workload.NewSpec(m, n, us[rng.Intn(len(us))], cs[rng.Intn(len(cs))])
	return workload.Generate(spec, rng.Uint64())
}

// genSmall generates the iteration's exhaustively searchable instance:
// at most (4−1)·3 = 9 free bits, i.e. ≤ 512 leaves per optimal search.
func genSmall(seed uint64) (*core.Problem, error) {
	rng := xrand.New(seed ^ 0xa0761d6478bd642f)
	m := 2 + rng.Intn(3)
	n := 1 + rng.Intn(3)
	us := []float64{0, 0.05, 0.25}
	spec := workload.NewSpec(m, n, us[rng.Intn(len(us))], 0.30)
	return workload.Generate(spec, rng.Uint64())
}

// smallFreeBitLimit gates the exhaustive searches inside Small checks.
const smallFreeBitLimit = 12

// instanceResult is one iteration's outcome.
type instanceResult struct {
	it    int
	check string
	seed  uint64
	p     *core.Problem
	err   error
	// ran is the number of checks executed (the failing one included).
	ran int
}

// Soak runs the selected checks against a stream of generated instances
// until the iteration cap, the anytime controls or a failure stops it. The
// first failing instance (by iteration order) is shrunk to a minimal
// reproducer.
func Soak(opts Options) (*Report, error) {
	checks, err := selectChecks(opts.Checks)
	if err != nil {
		return nil, err
	}
	if opts.MaxSites == 0 {
		opts.MaxSites = defaultMaxSites
	}
	if opts.MaxObjects == 0 {
		opts.MaxObjects = defaultMaxObjects
	}
	if opts.MaxSites < 4 || opts.MaxObjects < 3 {
		return nil, fmt.Errorf("verify: instance caps %d sites × %d objects too small (need ≥ 4 × 3)", opts.MaxSites, opts.MaxObjects)
	}

	c := solver.Start("verify", opts.Run)
	report := &Report{Runs: make(map[string]int)}
	workers := parallel.Workers(opts.Parallelism)
	stop := solver.StopCompleted

	// runInstance verifies one soak iteration and returns its outcome.
	runInstance := func(it int) instanceResult {
		seed := instSeed(opts.Seed, it)
		res := instanceResult{it: it, seed: seed}
		var general, small *core.Problem
		for idx, ch := range checks {
			var p *core.Problem
			var gerr error
			if ch.Small {
				if small == nil {
					small, gerr = genSmall(seed)
				}
				p = small
			} else {
				if general == nil {
					general, gerr = genGeneral(seed, opts.MaxSites, opts.MaxObjects)
				}
				p = general
			}
			if gerr != nil {
				// Generation failure is a harness bug, not a property
				// violation; surface it as one.
				res.check, res.err = ch.Name, fmt.Errorf("instance generation: %w", gerr)
				return res
			}
			res.ran++
			if err := ch.Run(NewCtx(p, checkSeed(seed, idx), opts.Cost)); err != nil {
				res.check, res.p, res.err = ch.Name, p, err
				return res
			}
		}
		return res
	}

	var failure *instanceResult
	for it := 0; failure == nil; {
		if reason, halt := c.Check(); halt {
			stop = reason
			break
		}
		batch := workers
		if opts.Iterations > 0 {
			if remaining := opts.Iterations - it; remaining <= 0 {
				break
			} else if remaining < batch {
				batch = remaining
			}
		}
		// Iterations within a batch verify concurrently; every instance and
		// check is a pure function of its seed, so the work is identical at
		// any worker count.
		results := make([]instanceResult, batch)
		parallel.ForWorker(batch, workers, func(_, i int) {
			results[i] = runInstance(it + i)
		})
		// Collect in iteration order so the reported failure is always the
		// lowest failing iteration regardless of completion order.
		for i := range results {
			r := &results[i]
			report.Instances++
			c.Charge(r.ran)
			for _, ch := range checks[:r.ran] {
				report.Runs[ch.Name]++
			}
			if r.err != nil {
				failure = r
				break
			}
		}
		it += batch
		c.Observe(it, 0, 0, 0)
	}

	if failure != nil {
		report.Failure = shrinkFailure(checks, failure, opts)
	}
	report.Stats = c.Finish(report.Instances, stop)
	return report, nil
}

// shrinkFailure delta-debugs the failing instance down to a minimal
// reproducer by replaying the violated check with its original seed.
func shrinkFailure(checks []Check, f *instanceResult, opts Options) *Failure {
	out := &Failure{
		Check:     f.check,
		Iteration: f.it,
		Seed:      f.seed,
		Err:       f.err,
	}
	if f.p == nil {
		// Generation failed; nothing to shrink.
		out.Problem = nil
		return out
	}
	out.FromSites, out.FromObjects = f.p.Sites(), f.p.Objects()
	var check Check
	idx := 0
	for i, ch := range checks {
		if ch.Name == f.check {
			check, idx = ch, i
			break
		}
	}
	seed := checkSeed(f.seed, idx)
	var lastErr error
	pred := func(q *core.Problem) bool {
		err := check.Run(NewCtx(q, seed, opts.Cost))
		if err != nil {
			lastErr = err
		}
		return err != nil
	}
	opts.logf("shrinking %d×%d reproducer for %q…", f.p.Sites(), f.p.Objects(), f.check)
	out.Problem = Shrink(f.p, pred)
	out.ShrunkErr = lastErr
	if out.ShrunkErr == nil {
		out.ShrunkErr = f.err
	}
	opts.logf("shrunk to %d×%d", out.Problem.Sites(), out.Problem.Objects())
	return out
}

// SortedRunCounts renders a report's per-check counters deterministically.
func (r *Report) SortedRunCounts() []string {
	names := make([]string, 0, len(r.Runs))
	for n := range r.Runs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%d", n, r.Runs[n])
	}
	return out
}
