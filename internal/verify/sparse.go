package verify

// Differential and property checks for the internal/sparse solver core.
// Wherever the dense and sparse paths both apply they must agree
// bit-for-bit: full evaluation, delta evaluation and pooled evaluation are
// compared against the dense implementations on random schemes and mutation
// walks, the sharded solve is held shard-count-invariant, and the candidate
// pruning is checked against the exhaustive optimum (soundness) and under
// site relabelling (equivariance). Registering the checks here puts the
// sparse core under the same drpverify soak + ddmin shrinker as eq. 4
// itself.

import (
	"fmt"

	"drp/internal/baseline"
	"drp/internal/core"
	"drp/internal/solver"
	"drp/internal/sparse"
)

// sparseWorkerCounts are the pool fan-outs the sparse-eval check compares
// against serial sparse evaluation (and against the dense evaluator).
var sparseWorkerCounts = []int{1, 2, 8}

// checkSparseEval: the sparse evaluator — serial and pooled at several
// worker counts — agrees with the dense evaluator on random schemes, object
// by object and in total.
func checkSparseEval(cx *Ctx) error {
	p := cx.P
	mo, err := sparse.FromProblem(p)
	if err != nil {
		return fmt.Errorf("sparse conversion: %w", err)
	}
	ev := sparse.NewEvaluator(mo)
	for trial := 0; trial < 4; trial++ {
		s := randomScheme(p, cx.RNG)
		a, err := sparse.FromScheme(mo, s)
		if err != nil {
			return fmt.Errorf("trial %d: scheme conversion: %w", trial, err)
		}
		want := cx.Cost(s)
		if got := ev.Cost(a); got != want {
			return fmt.Errorf("trial %d: sparse cost %d != dense %d (%d replicas)", trial, got, want, s.TotalReplicas())
		}
		for k := 0; k < p.Objects(); k++ {
			dense := s.ObjectCost(k)
			if got := ev.ObjectCost(k, a.Replicators(k)); got != dense {
				return fmt.Errorf("trial %d: object %d sparse V=%d != dense %d", trial, k, got, dense)
			}
		}
		for _, w := range sparseWorkerCounts {
			pool := sparse.NewEvalPool(mo, w)
			if got := pool.Cost(a); got != want {
				return fmt.Errorf("trial %d: pooled sparse cost %d != dense %d at %d workers", trial, got, want, w)
			}
			for k, v := range pool.ObjectCosts(a) {
				if dense := s.ObjectCost(k); v != dense {
					return fmt.Errorf("trial %d: pooled object %d V=%d != dense %d at %d workers", trial, k, v, dense, w)
				}
			}
		}
	}
	return nil
}

// checkSparseDelta: along one random mutation walk the dense and sparse
// delta evaluators accept the same moves, predict identical deltas, and
// track identical running costs, all equal to a dense full re-evaluation.
func checkSparseDelta(cx *Ctx) error {
	p := cx.P
	mo, err := sparse.FromProblem(p)
	if err != nil {
		return fmt.Errorf("sparse conversion: %w", err)
	}
	s := core.NewScheme(p)
	d := core.NewDeltaEvaluator(s)
	a := sparse.NewAssignment(mo)
	sd := sparse.NewDeltaEvaluator(a)
	for step := 0; step < 40; step++ {
		i, k := cx.RNG.Intn(p.Sites()), cx.RNG.Intn(p.Objects())
		var densePred, sparsePred int64
		var denseOK, sparseOK bool
		removing := s.Has(i, k)
		if removing {
			densePred, denseOK = d.RemoveDelta(i, k)
			sparsePred, sparseOK = sd.RemoveDelta(i, k)
		} else {
			densePred, denseOK = d.AddDelta(i, k)
			sparsePred, sparseOK = sd.AddDelta(i, k)
		}
		if denseOK != sparseOK {
			return fmt.Errorf("step %d (site %d, object %d): dense accepts=%v, sparse accepts=%v", step, i, k, denseOK, sparseOK)
		}
		if !denseOK {
			continue
		}
		if densePred != sparsePred {
			return fmt.Errorf("step %d (site %d, object %d): dense delta %d != sparse delta %d", step, i, k, densePred, sparsePred)
		}
		var denseErr, sparseErr error
		if removing {
			denseErr, sparseErr = d.Remove(i, k), sd.Remove(i, k)
		} else {
			denseErr, sparseErr = d.Add(i, k), sd.Add(i, k)
		}
		if denseErr != nil || sparseErr != nil {
			return fmt.Errorf("step %d: accepted move failed to apply: dense %v, sparse %v", step, denseErr, sparseErr)
		}
		full := cx.Cost(s)
		if sd.Cost() != full {
			return fmt.Errorf("step %d (site %d, object %d): sparse running cost %d != dense re-eval %d", step, i, k, sd.Cost(), full)
		}
		if sd.ObjectCost(k) != s.ObjectCost(k) {
			return fmt.Errorf("step %d: sparse V_%d=%d != dense %d", step, k, sd.ObjectCost(k), s.ObjectCost(k))
		}
	}
	if err := a.Validate(); err != nil {
		return fmt.Errorf("assignment invariants broken after mutation walk: %w", err)
	}
	return nil
}

// sparseShardCounts are the shard widths the determinism check compares.
var sparseShardCounts = []int{1, 2, 8}

// checkSparseShards: the sharded sparse solve is bit-identical at every
// shard count, its reported cost matches the dense evaluator, and it never
// loses to the no-replication allocation.
func checkSparseShards(cx *Ctx) error {
	p := cx.P
	mo, err := sparse.FromProblem(p)
	if err != nil {
		return fmt.Errorf("sparse conversion: %w", err)
	}
	var first *sparse.Result
	for _, shards := range sparseShardCounts {
		res, err := sparse.Solve(mo, sparse.SolveParams{Shards: shards}, solver.Run{})
		if err != nil {
			return fmt.Errorf("solve at %d shards: %w", shards, err)
		}
		if err := res.Assignment.Validate(); err != nil {
			return fmt.Errorf("solve at %d shards: invalid assignment: %w", shards, err)
		}
		if res.Cost > p.DPrime() {
			return fmt.Errorf("solve at %d shards: cost %d exceeds no-replication D′ %d", shards, res.Cost, p.DPrime())
		}
		s, err := res.Assignment.ToScheme(p)
		if err != nil {
			return fmt.Errorf("solve at %d shards: result does not convert: %w", shards, err)
		}
		if c := cx.Cost(s); c != res.Cost {
			return fmt.Errorf("solve at %d shards: reported cost %d but dense evaluator says %d", shards, res.Cost, c)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Cost != first.Cost {
			return fmt.Errorf("shards %d vs %d: cost %d != %d", shards, sparseShardCounts[0], res.Cost, first.Cost)
		}
		if !res.Assignment.Equal(first.Assignment) {
			return fmt.Errorf("shards %d vs %d: assignments differ", shards, sparseShardCounts[0])
		}
		if res.Stats.Evaluations != first.Stats.Evaluations {
			return fmt.Errorf("shards %d vs %d: evaluation count %d != %d", shards, sparseShardCounts[0], res.Stats.Evaluations, first.Stats.Evaluations)
		}
	}
	return nil
}

// checkSparsePrune (small instances): candidate pruning is sound — every
// replica site the exhaustive optimum uses survives pruning, so the sparse
// solver's search space always contains the optimum.
func checkSparsePrune(cx *Ctx) error {
	p := cx.P
	opt, err := baseline.Optimal(p, smallFreeBitLimit)
	if err != nil {
		return nil // instance larger than the exhaustive gate; skip
	}
	mo, err := sparse.FromProblem(p)
	if err != nil {
		return fmt.Errorf("sparse conversion: %w", err)
	}
	for k := 0; k < p.Objects(); k++ {
		for _, i := range opt.Replicators(k) {
			if int32(i) == mo.Primary(k) {
				continue
			}
			if !containsSite(mo.Candidates(k), int32(i)) {
				return fmt.Errorf("object %d: optimum replicates at site %d but pruning dropped it (candidates %v)",
					k, i, mo.Candidates(k))
			}
		}
	}
	if _, err := sparse.FromScheme(mo, opt); err != nil {
		return fmt.Errorf("optimal scheme does not convert: %w", err)
	}
	return nil
}

// checkSparsePrunePerm: candidate pruning is equivariant under site
// relabelling — permuting the sites permutes every candidate list and
// nothing else.
func checkSparsePrunePerm(cx *Ctx) error {
	p := cx.P
	m, n := p.Sites(), p.Objects()
	perm := cx.RNG.Perm(m) // new index a holds old site perm[a]
	in := extract(p)
	out := &rawInstance{
		sizes:     in.sizes,
		caps:      make([]int64, m),
		primaries: make([]int, n),
		reads:     make([][]int64, m),
		writes:    make([][]int64, m),
		dist:      make([][]int64, m),
	}
	inv := make([]int, m)
	for a, old := range perm {
		inv[old] = a
		out.caps[a] = in.caps[old]
		out.reads[a] = in.reads[old]
		out.writes[a] = in.writes[old]
		out.dist[a] = make([]int64, m)
		for b := 0; b < m; b++ {
			out.dist[a][b] = in.dist[old][perm[b]]
		}
	}
	for k := 0; k < n; k++ {
		out.primaries[k] = inv[in.primaries[k]]
	}
	q, err := out.build()
	if err != nil {
		return fmt.Errorf("permuted instance rejected: %w", err)
	}
	mo, err := sparse.FromProblem(p)
	if err != nil {
		return fmt.Errorf("sparse conversion: %w", err)
	}
	mq, err := sparse.FromProblem(q)
	if err != nil {
		return fmt.Errorf("permuted sparse conversion: %w", err)
	}
	for k := 0; k < n; k++ {
		orig := mo.Candidates(k)
		want := make(map[int32]bool, len(orig))
		for _, i := range orig {
			want[int32(inv[i])] = true
		}
		got := mq.Candidates(k)
		if len(got) != len(want) {
			return fmt.Errorf("object %d: candidate count %d after relabelling, want %d (perm %v)", k, len(got), len(want), perm)
		}
		for _, i := range got {
			if !want[i] {
				return fmt.Errorf("object %d: site %d is a candidate after relabelling but its preimage %d was not (perm %v)",
					k, i, perm[i], perm)
			}
		}
	}
	return nil
}

// containsSite reports membership in an ascending candidate list.
func containsSite(list []int32, site int32) bool {
	for _, s := range list {
		if s == site {
			return true
		}
		if s > site {
			return false
		}
	}
	return false
}
