// Package agra implements the Adaptive Genetic Replication Algorithm of
// Section 5. When an object's read/write pattern shifts beyond a threshold,
// a micro-GA over M-bit chromosomes (one bit per site) searches for a good
// replication scheme for that object alone, ignoring the storage constraint
// (the Knapsack component of the DRP). The winning schemes are then
// *transcribed* into a GRA population — capacity violations repaired with
// the rapid replica-benefit estimator E (eq. 6) — and either realised
// directly or polished by a few generations of mini-GRA.
package agra

import (
	"fmt"
	"time"

	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/ga"
	"drp/internal/solver"
	"drp/internal/xrand"
)

// Repair selects the deallocation rule used when a transcription overflows
// a site's storage. The paper proposes the rapid estimator E (eq. 6) as a
// compromise between random eviction and exact impact computation; all
// three are implemented for ablation.
type Repair int

// Repair strategies.
const (
	// RepairEstimator deallocates the replica with the lowest E value
	// (the paper's method, O(M) per candidate... O(1) with cached totals).
	RepairEstimator Repair = iota + 1
	// RepairRandom deallocates uniformly at random — the strawman the
	// paper mentions ("randomly deallocating objects until the constraint
	// is satisfied").
	RepairRandom
	// RepairExact deallocates the replica whose removal degrades the
	// object-local NTC least — the accurate method the paper rejects as
	// too slow for an online algorithm.
	RepairExact
)

// Params are the micro-GA control parameters. The paper keeps them small —
// Ap=10, Ag=50, single-point crossover at 0.8, mutation at 0.01 — because
// the algorithm must run online.
type Params struct {
	PopSize       int     // Ap
	Generations   int     // Ag
	CrossoverRate float64 // constant 0.8 in the paper
	MutationRate  float64 // constant 0.01 in the paper
	EliteEvery    int     // elite re-injection period (as in GRA)
	Seed          uint64

	// RepairStrategy selects the transcription deallocation rule; the zero
	// value means RepairEstimator (the paper's choice).
	RepairStrategy Repair

	// Parallelism caps how many per-object micro-GAs Adapt runs
	// concurrently. The micro-GAs are independent by construction (each
	// owns an RNG split off the coordinator stream before the fan-out),
	// so results are bit-identical at any setting. 0 means GOMAXPROCS;
	// 1 runs fully serial.
	Parallelism int

	// Sparse switches adaptation onto the internal/sparse solver core: the
	// changed objects are stripped and re-placed by the sharded greedy over
	// the candidate-pruned representation, leaving untouched objects
	// bit-identical, instead of running micro-GAs plus transcription.
	// Result.Sparse reports which core ran.
	Sparse bool
	// SparseAuto, when positive, flips to the sparse core automatically
	// once M·N reaches it.
	SparseAuto int
	// Shards is the sparse core's worker count (0 falls back to
	// Parallelism, then GOMAXPROCS). Sparse adaptations are bit-identical
	// at any shard count.
	Shards int
}

// DefaultParams returns the paper's micro-GA parameters.
func DefaultParams() Params {
	return Params{
		PopSize:       10,
		Generations:   50,
		CrossoverRate: 0.8,
		MutationRate:  0.01,
		EliteEvery:    5,
	}
}

func (pr Params) validate() error {
	if pr.RepairStrategy < 0 || pr.RepairStrategy > RepairExact {
		return fmt.Errorf("agra: unknown repair strategy %d", int(pr.RepairStrategy))
	}
	switch {
	case pr.PopSize < 2:
		return fmt.Errorf("agra: population size %d < 2", pr.PopSize)
	case pr.Generations < 0:
		return fmt.Errorf("agra: negative generation count %d", pr.Generations)
	case pr.CrossoverRate < 0 || pr.CrossoverRate > 1:
		return fmt.Errorf("agra: crossover rate %v outside [0,1]", pr.CrossoverRate)
	case pr.MutationRate < 0 || pr.MutationRate > 1:
		return fmt.Errorf("agra: mutation rate %v outside [0,1]", pr.MutationRate)
	case pr.EliteEvery < 1:
		return fmt.Errorf("agra: elite period %d < 1", pr.EliteEvery)
	case pr.Parallelism < 0:
		return fmt.Errorf("agra: negative parallelism %d", pr.Parallelism)
	case pr.SparseAuto < 0:
		return fmt.Errorf("agra: negative sparse auto-threshold %d", pr.SparseAuto)
	case pr.Shards < 0:
		return fmt.Errorf("agra: negative shard count %d", pr.Shards)
	}
	return nil
}

// ObjectResult is the micro-GA outcome for one object.
type ObjectResult struct {
	Object int
	// Best is the winning unconstrained replication scheme R_k (site list,
	// always containing the primary).
	Best []int
	// Fitness is fA = (V′−V_k)/V′ of Best.
	Fitness float64
	// Population holds the final micro-GA population as M-bit chromosomes;
	// transcription seeds half the GRA population from it.
	Population []*bitset.Set
	// Evaluations counts V_k evaluations.
	Evaluations int
	Elapsed     time.Duration
	// Generations is the number of generations actually completed, and
	// Stopped why the micro-GA ended — under Adapt's shared anytime
	// controls a micro-GA may stop early at a generation boundary.
	Generations int
	Stopped     solver.StopReason
}

// RunObject evolves a replication scheme for object k against problem p
// (which carries the *new* read/write patterns).
//
// Seeding follows the paper: half the population is random; the other half
// comes from the last static GRA population (column k of its chromosomes),
// with the current network scheme of k always present, standing in for the
// highest-fitness GRA solution. graPop may be nil.
func RunObject(p *core.Problem, k int, current []int, graPop []*bitset.Set, params Params, rng *xrand.Source) (*ObjectResult, error) {
	return runObject(p, k, current, graPop, params, rng, solver.Start("agra", solver.Run{}))
}

// runObject is RunObject under a caller-owned controller: Adapt hands every
// micro-GA the same one, so they share a single evaluation meter (and hence
// one budget) and each checks the shared controls at its own generation
// boundaries. The controller's Check/Charge/Observe are goroutine-safe, so
// the fan-out can run micro-GAs concurrently.
func runObject(p *core.Problem, k int, current []int, graPop []*bitset.Set, params Params, rng *xrand.Source, c *solver.Controller) (*ObjectResult, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if k < 0 || k >= p.Objects() {
		return nil, fmt.Errorf("agra: object %d out of range", k)
	}
	start := time.Now()
	m := p.Sites()
	sp := p.Primary(k)
	ev := &objectEval{p: p, k: k, cost: core.NewEvaluator(p)}
	ev.cost.SetMeter(c.Meter())

	// Seed population.
	pop := make([]ga.Individual, 0, params.PopSize)
	cur := bitset.New(m)
	cur.Set(sp)
	for _, site := range current {
		if site >= 0 && site < m {
			cur.Set(site)
		}
	}
	pop = append(pop, ev.evaluate(cur))
	for c := 1; c < params.PopSize; c++ {
		bits := bitset.New(m)
		if c < params.PopSize/2 && c-1 < len(graPop) {
			// Column k of a stored GRA chromosome.
			n := p.Objects()
			for i := 0; i < m; i++ {
				if graPop[c-1].Test(i*n + k) {
					bits.Set(i)
				}
			}
		} else {
			for i := 0; i < m; i++ {
				if rng.Bool(0.5) {
					bits.Set(i)
				}
			}
		}
		bits.Set(sp)
		pop = append(pop, ev.evaluate(bits))
	}

	elite := pop[ga.Best(pop)].Clone()
	stop := solver.StopCompleted
	lastGen := 0
	for gen := 1; gen <= params.Generations; gen++ {
		if reason, halt := c.Check(); halt {
			stop = reason
			break
		}
		// Regular sampling space: parents are selected, then crossover and
		// mutation transform the selected set in place; unselected parents
		// do not survive.
		next := ga.StochasticRemainder(pop, params.PopSize, rng)
		order := rng.Perm(len(next))
		for idx := 0; idx+1 < len(order); idx += 2 {
			if rng.Bool(params.CrossoverRate) {
				ga.OnePoint(next[order[idx]].Bits, next[order[idx+1]].Bits, rng)
			}
		}
		for i := range next {
			bits := next[i].Bits
			ga.MutateBits(m, params.MutationRate, rng, func(pos int) {
				if pos == sp {
					return // primary constraint
				}
				bits.Flip(pos)
			})
			// Crossover cannot clear the primary bit (both parents carry
			// it) and mutation skips it, so no repair pass is needed.
			next[i] = ev.evaluate(bits)
		}
		pop = next
		if b := ga.Best(pop); pop[b].Fitness > elite.Fitness {
			elite = pop[b].Clone()
		}
		if gen%params.EliteEvery == 0 {
			pop[ga.Worst(pop)] = elite.Clone()
		}
		lastGen = gen
		c.Observe(gen, elite.Fitness, ga.MeanFitness(pop), elite.Cost)
	}

	res := &ObjectResult{
		Object:      k,
		Fitness:     elite.Fitness,
		Evaluations: ev.evals,
		Elapsed:     time.Since(start),
		Generations: lastGen,
		Stopped:     stop,
	}
	res.Best = sites(elite.Bits)
	res.Population = make([]*bitset.Set, len(pop))
	for i := range pop {
		res.Population[i] = pop[i].Bits.Clone()
	}
	return res, nil
}

// objectEval computes fA = (V′ − V_k)/V′ for M-bit chromosomes.
type objectEval struct {
	p     *core.Problem
	k     int
	cost  *core.Evaluator
	repl  []int32
	evals int
}

func (ev *objectEval) evaluate(bits *bitset.Set) ga.Individual {
	ev.evals++
	ev.repl = ev.repl[:0]
	for i := bits.NextSet(0); i >= 0; i = bits.NextSet(i + 1) {
		ev.repl = append(ev.repl, int32(i))
	}
	v := ev.cost.ObjectCost(ev.k, ev.repl)
	vPrime := ev.p.VPrime(ev.k)
	f := 0.0
	if vPrime > 0 {
		f = float64(vPrime-v) / float64(vPrime)
	}
	if f < 0 {
		// Worse than primary-only: reset to the primary-only scheme.
		bits.Reset()
		bits.Set(ev.p.Primary(ev.k))
		v = vPrime
		f = 0
	}
	return ga.Individual{Bits: bits, Cost: v, Fitness: f}
}

func sites(bits *bitset.Set) []int {
	var out []int
	for i := bits.NextSet(0); i >= 0; i = bits.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}
