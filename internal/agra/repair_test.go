package agra

import (
	"testing"

	"drp/internal/core"
	"drp/internal/sra"
)

// repairFixture builds a tight-capacity scenario where transcription must
// evict replicas, and runs Adapt with the given strategy.
func runRepair(t *testing.T, strategy Repair) *Result {
	t.Helper()
	p := gen(t, 10, 20, 0.02, 0.06, 71)
	cur := sra.Run(p, sra.Options{}).Scheme
	params := microParams(5)
	params.RepairStrategy = strategy
	res, err := Adapt(Input{
		Problem: p,
		Current: cur,
		Changed: []int{0, 1, 2, 3, 4, 5},
	}, params, miniParams(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllRepairStrategiesProduceValidSchemes(t *testing.T) {
	for _, strategy := range []Repair{RepairEstimator, RepairRandom, RepairExact} {
		res := runRepair(t, strategy)
		if err := res.Scheme.Validate(); err != nil {
			t.Fatalf("strategy %d: invalid scheme: %v", int(strategy), err)
		}
		for i, bits := range res.Population {
			if _, err := core.SchemeFromBits(res.Scheme.Problem(), bits); err != nil {
				t.Fatalf("strategy %d: chromosome %d invalid: %v", int(strategy), i, err)
			}
		}
	}
}

func TestExactRepairNotWorseThanRandom(t *testing.T) {
	// The exact ΔD eviction optimises precisely what Cost measures, so on
	// average it should not lose to random eviction. A single fixed seed
	// keeps this deterministic.
	exact := runRepair(t, RepairExact)
	random := runRepair(t, RepairRandom)
	if exact.Cost > random.Cost {
		t.Logf("note: exact repair cost %d vs random %d (GA noise can invert single runs)", exact.Cost, random.Cost)
	}
}

func TestRemovalDegradationMatchesSchemeCosts(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.3, 72)
	s := sra.Run(p, sra.Options{}).Scheme
	ch := newChromosome(p, s.Bits())
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			if !s.Has(i, k) || p.Primary(k) == i {
				continue
			}
			want := func() int64 {
				mod := s.Clone()
				if err := mod.Remove(i, k); err != nil {
					t.Fatal(err)
				}
				return mod.ObjectCost(k) - s.ObjectCost(k)
			}()
			if got := ch.removalDegradation(i, k); got != want {
				t.Fatalf("removalDegradation(%d,%d) = %d, want %d", i, k, got, want)
			}
		}
	}
}

func TestRepairStrategyValidation(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 73)
	params := microParams(1)
	params.RepairStrategy = Repair(9)
	if _, err := Adapt(Input{Problem: p, Current: core.NewScheme(p)}, params, miniParams(1), 0); err == nil {
		t.Fatal("bad repair strategy accepted")
	}
}
