package agra

import (
	"context"
	"testing"

	"drp/internal/core"
	"drp/internal/solver"
	"drp/internal/workload"
)

func anytimeFixture(t *testing.T, seed uint64) (Input, int64) {
	t.Helper()
	_, newP, current, changed := adaptFixture(t, workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.5}, seed)
	cur, err := core.SchemeFromBits(newP, current.Bits())
	if err != nil {
		t.Fatal(err)
	}
	return Input{Problem: newP, Current: cur, Changed: changed}, cur.Cost()
}

// A cancelled adaptation must still return a valid scheme, skip the
// mini-GRA polish and report why it stopped.
func TestAdaptCancelledStillReturnsValidScheme(t *testing.T) {
	in, _ := anytimeFixture(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AdaptWith(in, microParams(3), miniParams(3), 5, solver.Run{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stopped != solver.StopCancelled {
		t.Fatalf("stopped %v, want cancelled", res.Stats.Stopped)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("interrupted scheme invalid: %v", err)
	}
	// Every micro-GA saw the cancelled context at its first boundary.
	for _, or := range res.Objects {
		if or.Generations != 0 || or.Stopped != solver.StopCancelled {
			t.Fatalf("object %d ran %d generations, stopped %v", or.Object, or.Generations, or.Stopped)
		}
	}
	// The polish was skipped: no mini-GRA generations joined the total.
	if res.Stats.Iterations != 0 {
		t.Fatalf("%d iterations on a cancelled run", res.Stats.Iterations)
	}
}

// The budget is one pool across the whole fan-out: all micro-GAs charge the
// same meter, and the pipeline reports StopBudget once it is exhausted.
func TestAdaptBudgetSharedAcrossMicroGAs(t *testing.T) {
	in, _ := anytimeFixture(t, 51)
	params := microParams(3)
	params.Parallelism = 1 // deterministic budget interception
	res, err := AdaptWith(in, params, miniParams(3), 5, solver.Run{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stopped != solver.StopBudget {
		t.Fatalf("stopped %v, want budget", res.Stats.Stopped)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("interrupted scheme invalid: %v", err)
	}
	// The single-evaluation budget is consumed during the first micro-GA's
	// seeding, so no micro-GA completes a generation.
	for _, or := range res.Objects {
		if or.Generations != 0 {
			t.Fatalf("object %d completed %d generations under an exhausted budget", or.Object, or.Generations)
		}
	}
	if res.Stats.Evaluations <= 1 {
		t.Fatal("soft budget should still charge the in-flight work")
	}
}

// With controls that never fire, AdaptWith is bit-identical to Adapt and
// the mini-GRA inherits the remaining budget without tripping it.
func TestAdaptWithUnfiredControlsMatchesAdapt(t *testing.T) {
	in, _ := anytimeFixture(t, 52)
	plain, err := Adapt(in, microParams(5), miniParams(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	controlled, err := AdaptWith(in, microParams(5), miniParams(5), 5, solver.Run{Budget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if controlled.Stats.Stopped != solver.StopCompleted {
		t.Fatalf("stopped %v", controlled.Stats.Stopped)
	}
	if !plain.Scheme.Equal(controlled.Scheme) || plain.Cost != controlled.Cost {
		t.Fatal("unfired controls changed the adaptation result")
	}
	if controlled.Stats.Evaluations == 0 || controlled.Stats.Iterations == 0 {
		t.Fatalf("accounting missing: %+v", controlled.Stats)
	}
}

// Elapsed must be additive across the two pipeline phases, since all three
// durations come from the one controller clock.
func TestAdaptElapsedAdditive(t *testing.T) {
	in, _ := anytimeFixture(t, 53)
	res, err := AdaptWith(in, microParams(7), miniParams(7), 5, solver.Run{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != res.MicroElapsed+res.MiniElapsed {
		t.Fatalf("Elapsed %v != MicroElapsed %v + MiniElapsed %v", res.Elapsed, res.MicroElapsed, res.MiniElapsed)
	}
	if res.Elapsed != res.Stats.Elapsed {
		t.Fatal("Elapsed does not mirror Stats.Elapsed")
	}
}

// An interrupted adaptation must never be worse than blindly keeping every
// transcription candidate unexamined: it realises the best transcribed
// chromosome, which includes the current scheme as the elite seed.
func TestAdaptDeadlineDegradesGracefully(t *testing.T) {
	in, _ := anytimeFixture(t, 54)
	res, err := AdaptWith(in, microParams(9), miniParams(9), 5, solver.Run{Timeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stopped != solver.StopDeadline {
		t.Fatalf("stopped %v, want deadline", res.Stats.Stopped)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("degraded scheme invalid: %v", err)
	}
	if res.Cost != res.Scheme.Cost() {
		t.Fatal("reported cost mismatch on degraded path")
	}
}
