package agra

import (
	"testing"

	"drp/internal/gra"
	"drp/internal/sra"
)

func sparseMicroParams(seed uint64) Params {
	p := microParams(seed)
	p.Sparse = true
	return p
}

func TestSparseAdaptValid(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 21)
	current := sra.Run(p, sra.Options{}).Scheme
	changed := []int{0, 3, 7}
	in := Input{Problem: p, Current: current, Changed: changed}
	// The sparse path never runs the mini-GRA, so zero mini params must be
	// accepted.
	res, err := Adapt(in, sparseMicroParams(1), gra.Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparse {
		t.Fatal("Result.Sparse not set by the sparse core")
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := res.Scheme.Cost(); c != res.Cost {
		t.Fatalf("reported cost %d but scheme evaluates to %d", res.Cost, c)
	}
	if res.Objects != nil || res.Population != nil {
		t.Fatal("sparse adaptation retained micro-GA state")
	}
	isChanged := map[int]bool{}
	for _, k := range changed {
		isChanged[k] = true
	}
	for k := 0; k < p.Objects(); k++ {
		if isChanged[k] {
			continue
		}
		for i := 0; i < p.Sites(); i++ {
			if current.Has(i, k) != res.Scheme.Has(i, k) {
				t.Fatalf("untouched object %d changed at site %d", k, i)
			}
		}
	}
}

func TestSparseAdaptShardDeterminism(t *testing.T) {
	p := gen(t, 12, 20, 0.05, 0.15, 22)
	current := sra.Run(p, sra.Options{}).Scheme
	in := Input{Problem: p, Current: current, Changed: []int{1, 2, 5, 9}}
	var ref *Result
	for _, shards := range []int{1, 2, 8} {
		params := sparseMicroParams(2)
		params.Shards = shards
		res, err := Adapt(in, params, gra.Params{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Cost != ref.Cost {
			t.Fatalf("shards %d: cost %d != %d", shards, res.Cost, ref.Cost)
		}
		if !res.Scheme.Equal(ref.Scheme) {
			t.Fatalf("shards %d: scheme differs from single-shard run", shards)
		}
	}
}

func TestSparseAdaptAutoThreshold(t *testing.T) {
	p := gen(t, 6, 6, 0.05, 0.15, 23) // M·N = 36
	current := sra.Run(p, sra.Options{}).Scheme
	in := Input{Problem: p, Current: current, Changed: []int{0}}
	params := microParams(3)
	params.SparseAuto = 36
	res, err := Adapt(in, params, gra.Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparse {
		t.Fatal("auto-threshold 36 left a 36-entry instance on the micro-GA path")
	}
	params.SparseAuto = 37
	res, err = Adapt(in, params, miniParams(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparse {
		t.Fatal("auto-threshold 37 flipped a 36-entry instance to sparse")
	}
}

func TestSparseParamsValidation(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 24)
	current := sra.Run(p, sra.Options{}).Scheme
	in := Input{Problem: p, Current: current, Changed: []int{0}}
	bad := microParams(1)
	bad.SparseAuto = -1
	if _, err := Adapt(in, bad, miniParams(1), 0); err == nil {
		t.Fatal("negative SparseAuto accepted")
	}
	bad = microParams(1)
	bad.Shards = -3
	if _, err := Adapt(in, bad, miniParams(1), 0); err == nil {
		t.Fatal("negative Shards accepted")
	}
}
