package agra

import "drp/internal/core"

// DetectChanges compares two pattern snapshots of the same system and
// returns the objects whose total reads or writes moved by at least the
// given factor (>1) in either direction — the paper's trigger: AGRA runs
// "each time the R/W pattern of an object changes above a threshold value
// either in favour of reads, or updates". Objects whose totals went from
// zero to non-zero always qualify.
//
// The problems must have the same shape (it is the same network, observed
// at two times).
func DetectChanges(before, after *core.Problem, factor float64) []int {
	if factor <= 1 {
		factor = 1
	}
	n := before.Objects()
	if after.Objects() < n {
		n = after.Objects()
	}
	var changed []int
	for k := 0; k < n; k++ {
		if movedBeyond(before.TotalReads(k), after.TotalReads(k), factor) ||
			movedBeyond(before.TotalWrites(k), after.TotalWrites(k), factor) {
			changed = append(changed, k)
		}
	}
	return changed
}

func movedBeyond(was, now int64, factor float64) bool {
	if was == now {
		return false
	}
	if was == 0 || now == 0 {
		return true
	}
	ratio := float64(now) / float64(was)
	return ratio >= factor || ratio <= 1/factor
}
