package agra

import (
	"testing"

	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/workload"
)

// TestAdaptParallelBitIdentical asserts the adaptive pipeline's determinism
// guarantee: worker counts 1, 2 and 8 all reproduce the serial result —
// same adapted scheme, cost, per-object winners and retained population.
// The fixture is built once and shared (Scheme.Equal requires the same
// *Problem); Adapt only reads it.
func TestAdaptParallelBitIdentical(t *testing.T) {
	_, newP, current, changed := adaptFixture(t, workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.5}, 50)
	cur, err := core.SchemeFromBits(newP, current.Bits())
	if err != nil {
		t.Fatal(err)
	}
	runAdaptAt := func(par int) *Result {
		params := microParams(11)
		params.Parallelism = par
		mini := miniParams(11)
		mini.Parallelism = par
		res, err := Adapt(Input{Problem: newP, Current: cur, Changed: changed}, params, mini, 4)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return res
	}
	ref := runAdaptAt(1)
	for _, par := range []int{2, 8} {
		res := runAdaptAt(par)
		if res.Cost != ref.Cost || res.Savings != ref.Savings {
			t.Fatalf("par=%d: cost/savings %d/%v diverged from serial %d/%v",
				par, res.Cost, res.Savings, ref.Cost, ref.Savings)
		}
		if !res.Scheme.Equal(ref.Scheme) {
			t.Fatalf("par=%d: adapted scheme bits diverged from serial", par)
		}
		if len(res.Objects) != len(ref.Objects) {
			t.Fatalf("par=%d: %d object results, want %d", par, len(res.Objects), len(ref.Objects))
		}
		for i := range res.Objects {
			a, b := res.Objects[i], ref.Objects[i]
			if a.Object != b.Object || a.Fitness != b.Fitness || a.Evaluations != b.Evaluations {
				t.Fatalf("par=%d: object %d result diverged (%+v vs %+v)", par, i, a, b)
			}
			if len(a.Best) != len(b.Best) {
				t.Fatalf("par=%d: object %d best scheme size diverged", par, i)
			}
			for j := range a.Best {
				if a.Best[j] != b.Best[j] {
					t.Fatalf("par=%d: object %d best scheme diverged", par, i)
				}
			}
		}
		for i := range res.Population {
			if !res.Population[i].Equal(ref.Population[i]) {
				t.Fatalf("par=%d: retained population member %d diverged", par, i)
			}
		}
	}
}

// TestAdaptParallelHammer drives the fan-out under -race: every changed
// object's micro-GA runs concurrently against the shared problem and GRA
// population.
func TestAdaptParallelHammer(t *testing.T) {
	old, newP, current, changed := adaptFixture(t, workload.ChangeSpec{Ch: 6, ObjectShare: 0.5, ReadShare: 0.5}, 60)
	graParams := gra.DefaultParams()
	graParams.PopSize = 8
	graParams.Generations = 4
	graParams.Seed = 13
	graRes, err := gra.Run(old, graParams)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := core.SchemeFromBits(newP, current.Bits())
	if err != nil {
		t.Fatal(err)
	}
	params := microParams(17)
	params.Parallelism = 8
	res, err := Adapt(Input{
		Problem:       newP,
		Current:       cur,
		GRAPopulation: graRes.Population,
		Changed:       changed,
	}, params, miniParams(17), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("hammered adaptation produced invalid scheme: %v", err)
	}
}

func TestAdaptRejectsNegativeParallelism(t *testing.T) {
	_, newP, current, changed := adaptFixture(t, workload.ChangeSpec{Ch: 6, ObjectShare: 0.2, ReadShare: 0.5}, 70)
	cur, err := core.SchemeFromBits(newP, current.Bits())
	if err != nil {
		t.Fatal(err)
	}
	params := microParams(1)
	params.Parallelism = -2
	if _, err := Adapt(Input{Problem: newP, Current: cur, Changed: changed}, params, miniParams(1), 0); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}
