package agra

import (
	"testing"

	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/sra"
	"drp/internal/workload"
	"drp/internal/xrand"
)

func gen(t testing.TB, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func microParams(seed uint64) Params {
	p := DefaultParams()
	p.Seed = seed
	return p
}

func miniParams(seed uint64) gra.Params {
	p := gra.DefaultParams()
	p.PopSize = 10
	p.Seed = seed
	return p
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.PopSize != 10 || p.Generations != 50 || p.CrossoverRate != 0.8 || p.MutationRate != 0.01 {
		t.Fatalf("defaults %+v do not match the paper", p)
	}
}

func TestRunObjectKeepsPrimary(t *testing.T) {
	p := gen(t, 15, 10, 0.05, 0.15, 1)
	for k := 0; k < 3; k++ {
		res, err := RunObject(p, k, nil, nil, microParams(uint64(k)), xrand.New(uint64(k)))
		if err != nil {
			t.Fatal(err)
		}
		foundPrimary := false
		for _, site := range res.Best {
			if site == p.Primary(k) {
				foundPrimary = true
			}
		}
		if !foundPrimary {
			t.Fatalf("object %d: best scheme %v lost its primary %d", k, res.Best, p.Primary(k))
		}
		for _, bits := range res.Population {
			if !bits.Test(p.Primary(k)) {
				t.Fatalf("object %d: population member lost primary bit", k)
			}
		}
	}
}

func TestRunObjectFitnessNonNegative(t *testing.T) {
	p := gen(t, 12, 8, 0.10, 0.15, 2)
	res, err := RunObject(p, 0, nil, nil, microParams(5), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness < 0 || res.Fitness > 1 {
		t.Fatalf("fitness %v outside [0,1]", res.Fitness)
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestRunObjectUnconstrainedBeatsPrimaryOnly(t *testing.T) {
	// On a read-heavy object the unconstrained micro-GA must find a scheme
	// strictly better than primary-only.
	p := gen(t, 15, 10, 0.01, 0.15, 3)
	res, err := RunObject(p, 0, nil, nil, microParams(7), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness <= 0 {
		t.Fatalf("read-heavy object fitness %v, want > 0", res.Fitness)
	}
	if len(res.Best) < 2 {
		t.Fatalf("read-heavy object replicated at %v only", res.Best)
	}
}

func TestRunObjectValidatesInput(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 4)
	if _, err := RunObject(p, -1, nil, nil, microParams(1), xrand.New(1)); err == nil {
		t.Fatal("negative object accepted")
	}
	if _, err := RunObject(p, 5, nil, nil, microParams(1), xrand.New(1)); err == nil {
		t.Fatal("out-of-range object accepted")
	}
	bad := microParams(1)
	bad.PopSize = 1
	if _, err := RunObject(p, 0, nil, nil, bad, xrand.New(1)); err == nil {
		t.Fatal("bad params accepted")
	}
}

// adaptFixture builds the standard adaptive scenario: a static scheme
// computed for the old patterns, then a pattern change.
func adaptFixture(t *testing.T, changeSpec workload.ChangeSpec, seed uint64) (old, new *core.Problem, current *core.Scheme, changed []int) {
	t.Helper()
	old = gen(t, 12, 20, 0.05, 0.15, seed)
	current = sra.Run(old, sra.Options{}).Scheme
	newP, changes, err := workload.ApplyChange(old, changeSpec, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range changes {
		changed = append(changed, c.Object)
	}
	return old, newP, current, changed
}

func TestAdaptProducesValidScheme(t *testing.T) {
	_, newP, current, changed := adaptFixture(t, workload.ChangeSpec{Ch: 6, ObjectShare: 0.2, ReadShare: 0.5}, 10)
	// The current scheme must re-validate against the new problem (same
	// sizes and capacities).
	cur, err := core.SchemeFromBits(newP, current.Bits())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Adapt(Input{Problem: newP, Current: cur, Changed: changed}, microParams(3), miniParams(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("adapted scheme invalid: %v", err)
	}
	if len(res.Objects) != len(changed) {
		t.Fatalf("adapted %d objects, want %d", len(res.Objects), len(changed))
	}
	if res.Cost != res.Scheme.Cost() {
		t.Fatal("reported cost mismatch")
	}
}

func TestAdaptImprovesOnStaleScheme(t *testing.T) {
	// A large update surge makes the stale static scheme poor; AGRA must
	// improve it.
	_, newP, current, changed := adaptFixture(t, workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.0}, 20)
	cur, err := core.SchemeFromBits(newP, current.Bits())
	if err != nil {
		t.Fatal(err)
	}
	staleCost := cur.Cost()
	res, err := Adapt(Input{Problem: newP, Current: cur, Changed: changed}, microParams(5), miniParams(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > staleCost {
		t.Fatalf("AGRA cost %d worse than stale scheme %d", res.Cost, staleCost)
	}
}

func TestAdaptWithMiniGRANotWorseThanTranscription(t *testing.T) {
	_, newP, current, changed := adaptFixture(t, workload.ChangeSpec{Ch: 6, ObjectShare: 0.2, ReadShare: 0.8}, 30)
	cur, err := core.SchemeFromBits(newP, current.Bits())
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: newP, Current: cur, Changed: changed}
	standalone, err := Adapt(in, microParams(7), miniParams(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	polished, err := Adapt(in, microParams(7), miniParams(7), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Mini-GRA is elitist over the same transcribed population, so it can
	// only improve (same seeds → same transcription).
	if polished.Cost > standalone.Cost {
		t.Fatalf("mini-GRA cost %d worse than standalone %d", polished.Cost, standalone.Cost)
	}
	if polished.MiniElapsed <= 0 || standalone.MicroElapsed <= 0 {
		t.Fatal("timing accounting missing")
	}
}

func TestAdaptUsesGRAPopulation(t *testing.T) {
	old, newP, _, changed := adaptFixture(t, workload.ChangeSpec{Ch: 6, ObjectShare: 0.15, ReadShare: 0.5}, 40)
	graParams := gra.DefaultParams()
	graParams.PopSize = 10
	graParams.Generations = 5
	graParams.Seed = 9
	graRes, err := gra.Run(old, graParams)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := core.SchemeFromBits(newP, graRes.Scheme.Bits())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Adapt(Input{
		Problem:       newP,
		Current:       cur,
		GRAPopulation: graRes.Population,
		Changed:       changed,
	}, microParams(11), miniParams(11), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Population) == 0 {
		t.Fatal("no population retained for the next round")
	}
}

func TestAdaptNoChangesIsNoop(t *testing.T) {
	_, newP, current, _ := adaptFixture(t, workload.ChangeSpec{Ch: 0, ObjectShare: 0, ReadShare: 0.5}, 50)
	cur, err := core.SchemeFromBits(newP, current.Bits())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Adapt(Input{Problem: newP, Current: cur, Changed: nil}, microParams(13), miniParams(13), 0)
	if err != nil {
		t.Fatal(err)
	}
	// With nothing to adapt, the current scheme (the transcription elite)
	// must be among the candidates, so the result cannot be worse.
	if res.Cost > cur.Cost() {
		t.Fatalf("no-op adaptation cost %d worse than current %d", res.Cost, cur.Cost())
	}
}

func TestAdaptValidation(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 60)
	cur := core.NewScheme(p)
	if _, err := Adapt(Input{Problem: nil, Current: cur}, microParams(1), miniParams(1), 0); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := Adapt(Input{Problem: p, Current: nil}, microParams(1), miniParams(1), 0); err == nil {
		t.Fatal("nil current scheme accepted")
	}
	badMini := miniParams(1)
	badMini.PopSize = 1
	if _, err := Adapt(Input{Problem: p, Current: cur}, microParams(1), badMini, 0); err == nil {
		t.Fatal("bad mini params accepted")
	}
}

func TestTranscriptionRepairRespectsCapacity(t *testing.T) {
	// Tight capacities force the E-repair path: every transcribed
	// chromosome must still satisfy the storage constraint.
	p := gen(t, 10, 20, 0.02, 0.06, 70)
	cur := sra.Run(p, sra.Options{}).Scheme
	changed := []int{0, 1, 2, 3, 4}
	res, err := Adapt(Input{Problem: p, Current: cur, Changed: changed}, microParams(17), miniParams(17), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, bits := range res.Population {
		if _, err := core.SchemeFromBits(p, bits); err != nil {
			t.Fatalf("transcribed chromosome %d invalid: %v", i, err)
		}
	}
}

func TestDetectChanges(t *testing.T) {
	before := gen(t, 10, 20, 0.05, 0.15, 80)
	after, changes, err := workload.ApplyChange(before, workload.ChangeSpec{Ch: 6, ObjectShare: 0.25, ReadShare: 0.5}, 81)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]bool)
	for _, c := range changes {
		want[c.Object] = true
	}
	got := DetectChanges(before, after, 2.0)
	gotSet := make(map[int]bool)
	for _, k := range got {
		gotSet[k] = true
	}
	// Everything the generator changed by 600% must be detected at a 2x
	// threshold, and nothing untouched may appear.
	for k := range want {
		if !gotSet[k] {
			t.Errorf("changed object %d not detected", k)
		}
	}
	for k := range gotSet {
		if !want[k] {
			t.Errorf("untouched object %d falsely detected", k)
		}
	}
}

func TestDetectChangesNoChange(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 82)
	if got := DetectChanges(p, p, 2.0); len(got) != 0 {
		t.Fatalf("self-comparison detected %v", got)
	}
}

func TestDetectChangesZeroCrossing(t *testing.T) {
	p := gen(t, 4, 3, 0.0, 0.5, 83)
	reads := p.ReadMatrix()
	writes := p.WriteMatrix()
	writes[0][1] = 5 // previously zero writes
	next, err := p.WithPatterns(reads, writes)
	if err != nil {
		t.Fatal(err)
	}
	got := DetectChanges(p, next, 10.0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("zero-crossing detection = %v, want [1]", got)
	}
}
