package agra

import (
	"fmt"

	"drp/internal/solver"
	"drp/internal/sparse"
)

// This file bridges AGRA onto the internal/sparse solver core. With
// Params.Sparse set (or M·N at or past Params.SparseAuto), AdaptWith
// converts the instance and the running scheme into the compressed
// representation and re-places only the changed objects with the sharded
// greedy — untouched objects keep their replicas bit-identically, the
// sparse analogue of the micro-GA pipeline's per-object scope.

// sparseEnabled reports whether params select the sparse core for an M×N
// instance.
func (pr Params) sparseEnabled(m, n int) bool {
	return pr.Sparse || (pr.SparseAuto > 0 && m*n >= pr.SparseAuto)
}

func (pr Params) sparseShards() int {
	if pr.Shards != 0 {
		return pr.Shards
	}
	return pr.Parallelism
}

// adaptSparse re-optimises the changed objects over the sparse core and
// adapts the result into the AGRA result shape.
func adaptSparse(in Input, params Params, run solver.Run) (*Result, error) {
	p := in.Problem
	mo, err := sparse.FromProblem(p)
	if err != nil {
		return nil, fmt.Errorf("agra: sparse conversion: %w", err)
	}
	a, err := sparse.FromScheme(mo, in.Current)
	if err != nil {
		return nil, fmt.Errorf("agra: current scheme: %w", err)
	}
	sres, err := sparse.Adapt(mo, a, in.Changed, sparse.SolveParams{Shards: params.sparseShards()}, run)
	if err != nil {
		return nil, fmt.Errorf("agra: sparse adapt: %w", err)
	}
	scheme, err := sres.Assignment.ToScheme(p)
	if err != nil {
		return nil, fmt.Errorf("agra: sparse result invalid: %w", err)
	}
	res := &Result{
		Scheme:  scheme,
		Cost:    sres.Cost,
		Savings: p.Savings(sres.Cost),
		Stats:   sres.Stats,
		Sparse:  true,
	}
	res.Elapsed = res.Stats.Elapsed
	res.MicroElapsed = res.Stats.Elapsed
	return res, nil
}
