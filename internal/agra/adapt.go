package agra

import (
	"fmt"
	"time"

	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/parallel"
	"drp/internal/solver"
	"drp/internal/xrand"
)

// Input bundles everything the adaptive pipeline needs for one
// re-optimisation event.
type Input struct {
	// Problem carries the NEW read/write patterns (same sites, objects,
	// sizes, capacities, primaries as when Current was computed).
	Problem *core.Problem
	// Current is the replication scheme the network is running right now.
	Current *core.Scheme
	// GRAPopulation is the final population of the last static GRA run, if
	// one is retained; it seeds both the micro-GAs and the transcription
	// targets. May be nil.
	GRAPopulation []*bitset.Set
	// Changed lists the objects whose pattern shifted beyond the threshold.
	Changed []int
}

// Result is the outcome of an adaptation.
type Result struct {
	// Scheme is the adapted replication scheme, and Cost/Savings its NTC
	// under the new patterns.
	Scheme  *core.Scheme
	Cost    int64
	Savings float64
	// Objects holds the per-object micro-GA results.
	Objects []ObjectResult
	// Population is the transcribed (and possibly mini-GRA-evolved)
	// population, retained for the next adaptation round.
	Population []*bitset.Set
	// MicroElapsed and MiniElapsed split the runtime between the per-object
	// micro-GAs and everything after them (transcription, repair and the
	// mini-GRA polish or direct realisation). All three durations come from
	// the one controller clock started at the Adapt entry point, so
	// Elapsed == MicroElapsed + MiniElapsed exactly and Elapsed mirrors
	// Stats.Elapsed.
	MicroElapsed time.Duration
	MiniElapsed  time.Duration
	Elapsed      time.Duration
	// Stats is the solver-runtime accounting: Evaluations counts V_k and
	// full-scheme cost evaluations across the micro-GAs, the transcription
	// realisation and the mini-GRA (all charged to one shared meter, which
	// is what makes the budget a single pool); Iterations sums completed
	// micro-GA generations plus mini-GRA generations; Stopped tells whether
	// the pipeline was interrupted. An interrupted adaptation still returns
	// a valid scheme — the micro results computed so far are transcribed
	// and the best transcription is realised directly, skipping the polish.
	Stats solver.Stats
	// Sparse reports that the internal/sparse core performed the
	// adaptation (via Params.Sparse or the SparseAuto threshold); Objects
	// and Population are then nil.
	Sparse bool
}

// Adapt runs the full AGRA pipeline: one micro-GA per changed object, then
// transcription of the resulting per-object schemes into a GRA population
// with E-estimator capacity repair, then — if miniGenerations > 0 — a
// mini-GRA polish. miniParams configures the mini-GRA (population size also
// sets the transcription population size); the paper uses the static GRA
// parameters with 5–10 generations.
func Adapt(in Input, params Params, miniParams gra.Params, miniGenerations int) (*Result, error) {
	return AdaptWith(in, params, miniParams, miniGenerations, solver.Run{})
}

// AdaptWith runs the AGRA pipeline under anytime controls. All micro-GAs
// share the controller's single evaluation meter — so a budget bounds the
// whole fan-out, not each object — and each checks cancellation and
// deadlines at its own generation boundaries. If the controls trip, the
// per-object results computed so far are still transcribed and the best
// transcription realised directly (the polish is skipped), so an
// interrupted adaptation always returns a valid scheme; otherwise the
// mini-GRA inherits the remaining deadline and budget. Uninterrupted runs
// are bit-identical to Adapt at every Parallelism setting; when the budget
// trips mid-fan-out, which micro-GAs have already passed their last
// boundary may vary with scheduling, so interrupted parallel runs are
// best-effort rather than reproducible. Observers are invoked from worker
// goroutines when Parallelism != 1 — wrap with solver.Synchronized.
func AdaptWith(in Input, params Params, miniParams gra.Params, miniGenerations int, run solver.Run) (*Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if in.Problem == nil || in.Current == nil {
		return nil, fmt.Errorf("agra: nil problem or current scheme")
	}
	if params.sparseEnabled(in.Problem.Sites(), in.Problem.Objects()) {
		return adaptSparse(in, params, run)
	}
	if miniParams.PopSize < 2 {
		return nil, fmt.Errorf("agra: mini-GRA population size %d < 2", miniParams.PopSize)
	}
	c := solver.Start("agra", run)
	rng := xrand.New(params.Seed)
	p := in.Problem

	repair := params.RepairStrategy
	if repair == 0 {
		repair = RepairEstimator
	}

	res := &Result{}
	// The micro-GAs are independent by construction, so they fan out
	// across params.Parallelism workers. Every RNG fork happens here on
	// the coordinator, in input order, before any goroutine starts; each
	// runObject builds its own core.Evaluator, reads the shared problem
	// and GRA population (both immutable during the fan-out) and writes
	// its result by index — bit-identical to the serial loop.
	type microTask struct {
		current []int
		rng     *xrand.Source
	}
	tasks := make([]microTask, len(in.Changed))
	for i, k := range in.Changed {
		tasks[i] = microTask{current: in.Current.Replicators(k), rng: rng.Split()}
	}
	objResults := make([]*ObjectResult, len(tasks))
	errs := make([]error, len(tasks))
	parallel.For(len(tasks), parallel.Workers(params.Parallelism), func(i int) {
		objResults[i], errs[i] = runObject(p, in.Changed[i], tasks[i].current, in.GRAPopulation, params, tasks[i].rng, c)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	iterations := 0
	for _, or := range objResults {
		res.Objects = append(res.Objects, *or)
		iterations += or.Generations
	}
	res.MicroElapsed = c.Elapsed()

	pop := transcribe(p, in, objResults, miniParams.PopSize, repair, rng)

	stop, halted := c.Check()
	if miniGenerations > 0 && !halted {
		mp := miniParams
		mp.Generations = miniGenerations
		mp.Seed = rng.Uint64()
		graRes, err := gra.ContinueWith(p, mp, pop, c.Sub())
		if err != nil {
			return nil, fmt.Errorf("agra: mini-GRA: %w", err)
		}
		stop = c.Absorb(graRes.Stats)
		iterations += graRes.Stats.Iterations
		res.Scheme = graRes.Scheme
		res.Cost = graRes.Cost
		res.Population = graRes.Population
	} else {
		// Option (a): realise the best transcribed chromosome directly —
		// also the graceful-degradation path when the controls tripped
		// before (or during) the fan-out.
		best, bestCost := pickBest(p, pop, c)
		scheme, err := core.SchemeFromBits(p, best)
		if err != nil {
			return nil, fmt.Errorf("agra: transcribed chromosome invalid: %w", err)
		}
		res.Scheme = scheme
		res.Cost = bestCost
		res.Population = pop
	}
	res.Savings = p.Savings(res.Cost)
	res.Stats = c.Finish(iterations, stop)
	res.Elapsed = res.Stats.Elapsed
	res.MiniElapsed = res.Elapsed - res.MicroElapsed
	return res, nil
}

// transcribe builds the popSize-chromosome GRA population: the base is the
// stored GRA population (or perturbations of the current scheme), with
// chromosome 0 always the current network distribution (the elite). For
// every adapted object, the best R_k overwrites the object's column in the
// first half (including the elite) while random members of the micro-GA's
// final population overwrite the second half. Capacity violations are
// repaired by deallocating the lowest-E replicas at the violating site.
func transcribe(p *core.Problem, in Input, objs []*ObjectResult, popSize int, repair Repair, rng *xrand.Source) []*bitset.Set {
	pop := make([]*chromosome, 0, popSize)
	pop = append(pop, newChromosome(p, in.Current.Bits()))
	for c := 1; c < popSize; c++ {
		var bits *bitset.Set
		if c-1 < len(in.GRAPopulation) && in.GRAPopulation[c-1].Len() == p.Sites()*p.Objects() {
			bits = in.GRAPopulation[c-1].Clone()
		} else {
			s := in.Current.Clone()
			gra.Perturb(s, 0.25, rng)
			bits = s.Bits()
		}
		pop = append(pop, newChromosome(p, bits))
	}

	half := popSize / 2
	if half < 1 {
		half = 1
	}
	for _, or := range objs {
		for c, ch := range pop {
			var repl []int
			if c < half {
				repl = or.Best
			} else if len(or.Population) > 0 {
				repl = sites(or.Population[rng.Intn(len(or.Population))])
			} else {
				repl = or.Best
			}
			ch.setColumn(or.Object, repl)
			ch.repair(repair, rng)
		}
	}

	out := make([]*bitset.Set, len(pop))
	for i, ch := range pop {
		out[i] = ch.bits
	}
	return out
}

func pickBest(p *core.Problem, pop []*bitset.Set, c *solver.Controller) (*bitset.Set, int64) {
	ev := core.NewEvaluator(p)
	ev.SetMeter(c.Meter())
	var best *bitset.Set
	var bestCost int64
	for _, bits := range pop {
		cost := ev.Cost(bits)
		if best == nil || cost < bestCost {
			best = bits
			bestCost = cost
		}
	}
	return best, bestCost
}

// chromosome tracks a full M×N placement with per-site usage and per-object
// replica degree, so transcription and E-repair stay cheap.
type chromosome struct {
	p      *core.Problem
	bits   *bitset.Set
	usage  []int64
	degree []int
}

func newChromosome(p *core.Problem, bits *bitset.Set) *chromosome {
	ch := &chromosome{
		p:      p,
		bits:   bits,
		usage:  make([]int64, p.Sites()),
		degree: make([]int, p.Objects()),
	}
	n := p.Objects()
	for pos := bits.NextSet(0); pos >= 0; pos = bits.NextSet(pos + 1) {
		ch.usage[pos/n] += p.Size(pos % n)
		ch.degree[pos%n]++
	}
	return ch
}

// setColumn rewrites object k's replicator set, keeping the primary bit.
func (ch *chromosome) setColumn(k int, repl []int) {
	p := ch.p
	n := p.Objects()
	want := make(map[int]bool, len(repl)+1)
	want[p.Primary(k)] = true
	for _, i := range repl {
		want[i] = true
	}
	for i := 0; i < p.Sites(); i++ {
		pos := i*n + k
		has := ch.bits.Test(pos)
		switch {
		case want[i] && !has:
			ch.bits.Set(pos)
			ch.usage[i] += p.Size(k)
			ch.degree[k]++
		case !want[i] && has:
			ch.bits.Clear(pos)
			ch.usage[i] -= p.Size(k)
			ch.degree[k]--
		}
	}
}

// repair deallocates replicas at over-capacity sites using the selected
// strategy. Primaries are never touched. rng breaks exact ties and drives
// random eviction.
func (ch *chromosome) repair(strategy Repair, rng *xrand.Source) {
	p := ch.p
	for i := 0; i < p.Sites(); i++ {
		for ch.usage[i] > p.Capacity(i) {
			victim := ch.pickVictim(i, strategy, rng)
			if victim < 0 {
				// Only primaries remain; problem construction guarantees
				// they fit, so this indicates an infeasible instance. Leave
				// as-is; the caller's SchemeFromBits will reject it loudly.
				return
			}
			ch.bits.Clear(i*p.Objects() + victim)
			ch.usage[i] -= p.Size(victim)
			ch.degree[victim]--
		}
	}
}

// pickVictim selects the replica to evict from site i, or -1 if only
// primaries remain.
func (ch *chromosome) pickVictim(i int, strategy Repair, rng *xrand.Source) int {
	p := ch.p
	n := p.Objects()
	victim := -1
	var victimScore float64
	count := 0
	for pos := ch.bits.NextSet(i * n); pos >= 0 && pos < (i+1)*n; pos = ch.bits.NextSet(pos + 1) {
		k := pos - i*n
		if p.Primary(k) == i {
			continue
		}
		count++
		var score float64
		switch strategy {
		case RepairRandom:
			// Reservoir sampling over the eligible replicas.
			if rng.Intn(count) == 0 {
				victim = k
			}
			continue
		case RepairExact:
			// Degradation of the object-local NTC if the replica goes:
			// smaller is better to evict.
			score = float64(ch.removalDegradation(i, k))
		default: // RepairEstimator
			// Lower replica benefit estimate → evict first.
			score = p.Estimate(i, k, ch.degree[k])
		}
		if victim < 0 || score < victimScore || (score == victimScore && rng.Bool(0.5)) {
			victim = k
			victimScore = score
		}
	}
	return victim
}

// removalDegradation computes V_k(without replica at i) − V_k(with), the
// exact NTC impact of evicting object k's replica from site i. Only object
// k's cost changes, so this is O(M·|R_k|), far below the paper's quoted
// O(M²N) full-D recomputation but still the most expensive of the repair
// strategies.
func (ch *chromosome) removalDegradation(i, k int) int64 {
	p := ch.p
	n := p.Objects()
	ev := core.NewEvaluator(p)
	with := make([]int32, 0, ch.degree[k])
	without := make([]int32, 0, ch.degree[k]-1)
	for site := 0; site < p.Sites(); site++ {
		if ch.bits.Test(site*n + k) {
			with = append(with, int32(site))
			if site != i {
				without = append(without, int32(site))
			}
		}
	}
	return ev.ObjectCost(k, without) - ev.ObjectCost(k, with)
}
