package agra

import (
	"fmt"
	"time"

	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/parallel"
	"drp/internal/xrand"
)

// Input bundles everything the adaptive pipeline needs for one
// re-optimisation event.
type Input struct {
	// Problem carries the NEW read/write patterns (same sites, objects,
	// sizes, capacities, primaries as when Current was computed).
	Problem *core.Problem
	// Current is the replication scheme the network is running right now.
	Current *core.Scheme
	// GRAPopulation is the final population of the last static GRA run, if
	// one is retained; it seeds both the micro-GAs and the transcription
	// targets. May be nil.
	GRAPopulation []*bitset.Set
	// Changed lists the objects whose pattern shifted beyond the threshold.
	Changed []int
}

// Result is the outcome of an adaptation.
type Result struct {
	// Scheme is the adapted replication scheme, and Cost/Savings its NTC
	// under the new patterns.
	Scheme  *core.Scheme
	Cost    int64
	Savings float64
	// Objects holds the per-object micro-GA results.
	Objects []ObjectResult
	// Population is the transcribed (and possibly mini-GRA-evolved)
	// population, retained for the next adaptation round.
	Population []*bitset.Set
	// MicroElapsed and MiniElapsed split the runtime between the per-object
	// micro-GAs and the transcription/mini-GRA stage.
	MicroElapsed time.Duration
	MiniElapsed  time.Duration
	Elapsed      time.Duration
}

// Adapt runs the full AGRA pipeline: one micro-GA per changed object, then
// transcription of the resulting per-object schemes into a GRA population
// with E-estimator capacity repair, then — if miniGenerations > 0 — a
// mini-GRA polish. miniParams configures the mini-GRA (population size also
// sets the transcription population size); the paper uses the static GRA
// parameters with 5–10 generations.
func Adapt(in Input, params Params, miniParams gra.Params, miniGenerations int) (*Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if in.Problem == nil || in.Current == nil {
		return nil, fmt.Errorf("agra: nil problem or current scheme")
	}
	if miniParams.PopSize < 2 {
		return nil, fmt.Errorf("agra: mini-GRA population size %d < 2", miniParams.PopSize)
	}
	start := time.Now()
	rng := xrand.New(params.Seed)
	p := in.Problem

	repair := params.RepairStrategy
	if repair == 0 {
		repair = RepairEstimator
	}

	res := &Result{}
	microStart := time.Now()
	// The micro-GAs are independent by construction, so they fan out
	// across params.Parallelism workers. Every RNG fork happens here on
	// the coordinator, in input order, before any goroutine starts; each
	// RunObject builds its own core.Evaluator, reads the shared problem
	// and GRA population (both immutable during the fan-out) and writes
	// its result by index — bit-identical to the serial loop.
	type microTask struct {
		current []int
		rng     *xrand.Source
	}
	tasks := make([]microTask, len(in.Changed))
	for i, k := range in.Changed {
		tasks[i] = microTask{current: in.Current.Replicators(k), rng: rng.Split()}
	}
	objResults := make([]*ObjectResult, len(tasks))
	errs := make([]error, len(tasks))
	parallel.For(len(tasks), parallel.Workers(params.Parallelism), func(i int) {
		objResults[i], errs[i] = RunObject(p, in.Changed[i], tasks[i].current, in.GRAPopulation, params, tasks[i].rng)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, or := range objResults {
		res.Objects = append(res.Objects, *or)
	}
	res.MicroElapsed = time.Since(microStart)

	miniStart := time.Now()
	pop := transcribe(p, in, objResults, miniParams.PopSize, repair, rng)

	if miniGenerations > 0 {
		mp := miniParams
		mp.Generations = miniGenerations
		mp.Seed = rng.Uint64()
		graRes, err := gra.RunWithPopulation(p, mp, pop)
		if err != nil {
			return nil, fmt.Errorf("agra: mini-GRA: %w", err)
		}
		res.Scheme = graRes.Scheme
		res.Cost = graRes.Cost
		res.Population = graRes.Population
	} else {
		// Option (a): realise the best transcribed chromosome directly.
		best, bestCost := pickBest(p, pop)
		scheme, err := core.SchemeFromBits(p, best)
		if err != nil {
			return nil, fmt.Errorf("agra: transcribed chromosome invalid: %w", err)
		}
		res.Scheme = scheme
		res.Cost = bestCost
		res.Population = pop
	}
	res.MiniElapsed = time.Since(miniStart)
	res.Savings = p.Savings(res.Cost)
	res.Elapsed = time.Since(start)
	return res, nil
}

// transcribe builds the popSize-chromosome GRA population: the base is the
// stored GRA population (or perturbations of the current scheme), with
// chromosome 0 always the current network distribution (the elite). For
// every adapted object, the best R_k overwrites the object's column in the
// first half (including the elite) while random members of the micro-GA's
// final population overwrite the second half. Capacity violations are
// repaired by deallocating the lowest-E replicas at the violating site.
func transcribe(p *core.Problem, in Input, objs []*ObjectResult, popSize int, repair Repair, rng *xrand.Source) []*bitset.Set {
	pop := make([]*chromosome, 0, popSize)
	pop = append(pop, newChromosome(p, in.Current.Bits()))
	for c := 1; c < popSize; c++ {
		var bits *bitset.Set
		if c-1 < len(in.GRAPopulation) && in.GRAPopulation[c-1].Len() == p.Sites()*p.Objects() {
			bits = in.GRAPopulation[c-1].Clone()
		} else {
			s := in.Current.Clone()
			gra.Perturb(s, 0.25, rng)
			bits = s.Bits()
		}
		pop = append(pop, newChromosome(p, bits))
	}

	half := popSize / 2
	if half < 1 {
		half = 1
	}
	for _, or := range objs {
		for c, ch := range pop {
			var repl []int
			if c < half {
				repl = or.Best
			} else if len(or.Population) > 0 {
				repl = sites(or.Population[rng.Intn(len(or.Population))])
			} else {
				repl = or.Best
			}
			ch.setColumn(or.Object, repl)
			ch.repair(repair, rng)
		}
	}

	out := make([]*bitset.Set, len(pop))
	for i, ch := range pop {
		out[i] = ch.bits
	}
	return out
}

func pickBest(p *core.Problem, pop []*bitset.Set) (*bitset.Set, int64) {
	ev := core.NewEvaluator(p)
	var best *bitset.Set
	var bestCost int64
	for _, bits := range pop {
		cost := ev.Cost(bits)
		if best == nil || cost < bestCost {
			best = bits
			bestCost = cost
		}
	}
	return best, bestCost
}

// chromosome tracks a full M×N placement with per-site usage and per-object
// replica degree, so transcription and E-repair stay cheap.
type chromosome struct {
	p      *core.Problem
	bits   *bitset.Set
	usage  []int64
	degree []int
}

func newChromosome(p *core.Problem, bits *bitset.Set) *chromosome {
	ch := &chromosome{
		p:      p,
		bits:   bits,
		usage:  make([]int64, p.Sites()),
		degree: make([]int, p.Objects()),
	}
	n := p.Objects()
	for pos := bits.NextSet(0); pos >= 0; pos = bits.NextSet(pos + 1) {
		ch.usage[pos/n] += p.Size(pos % n)
		ch.degree[pos%n]++
	}
	return ch
}

// setColumn rewrites object k's replicator set, keeping the primary bit.
func (ch *chromosome) setColumn(k int, repl []int) {
	p := ch.p
	n := p.Objects()
	want := make(map[int]bool, len(repl)+1)
	want[p.Primary(k)] = true
	for _, i := range repl {
		want[i] = true
	}
	for i := 0; i < p.Sites(); i++ {
		pos := i*n + k
		has := ch.bits.Test(pos)
		switch {
		case want[i] && !has:
			ch.bits.Set(pos)
			ch.usage[i] += p.Size(k)
			ch.degree[k]++
		case !want[i] && has:
			ch.bits.Clear(pos)
			ch.usage[i] -= p.Size(k)
			ch.degree[k]--
		}
	}
}

// repair deallocates replicas at over-capacity sites using the selected
// strategy. Primaries are never touched. rng breaks exact ties and drives
// random eviction.
func (ch *chromosome) repair(strategy Repair, rng *xrand.Source) {
	p := ch.p
	for i := 0; i < p.Sites(); i++ {
		for ch.usage[i] > p.Capacity(i) {
			victim := ch.pickVictim(i, strategy, rng)
			if victim < 0 {
				// Only primaries remain; problem construction guarantees
				// they fit, so this indicates an infeasible instance. Leave
				// as-is; the caller's SchemeFromBits will reject it loudly.
				return
			}
			ch.bits.Clear(i*p.Objects() + victim)
			ch.usage[i] -= p.Size(victim)
			ch.degree[victim]--
		}
	}
}

// pickVictim selects the replica to evict from site i, or -1 if only
// primaries remain.
func (ch *chromosome) pickVictim(i int, strategy Repair, rng *xrand.Source) int {
	p := ch.p
	n := p.Objects()
	victim := -1
	var victimScore float64
	count := 0
	for pos := ch.bits.NextSet(i * n); pos >= 0 && pos < (i+1)*n; pos = ch.bits.NextSet(pos + 1) {
		k := pos - i*n
		if p.Primary(k) == i {
			continue
		}
		count++
		var score float64
		switch strategy {
		case RepairRandom:
			// Reservoir sampling over the eligible replicas.
			if rng.Intn(count) == 0 {
				victim = k
			}
			continue
		case RepairExact:
			// Degradation of the object-local NTC if the replica goes:
			// smaller is better to evict.
			score = float64(ch.removalDegradation(i, k))
		default: // RepairEstimator
			// Lower replica benefit estimate → evict first.
			score = p.Estimate(i, k, ch.degree[k])
		}
		if victim < 0 || score < victimScore || (score == victimScore && rng.Bool(0.5)) {
			victim = k
			victimScore = score
		}
	}
	return victim
}

// removalDegradation computes V_k(without replica at i) − V_k(with), the
// exact NTC impact of evicting object k's replica from site i. Only object
// k's cost changes, so this is O(M·|R_k|), far below the paper's quoted
// O(M²N) full-D recomputation but still the most expensive of the repair
// strategies.
func (ch *chromosome) removalDegradation(i, k int) int64 {
	p := ch.p
	n := p.Objects()
	ev := core.NewEvaluator(p)
	with := make([]int32, 0, ch.degree[k])
	without := make([]int32, 0, ch.degree[k]-1)
	for site := 0; site < p.Sites(); site++ {
		if ch.bits.Test(site*n + k) {
			with = append(with, int32(site))
			if site != i {
				without = append(without, int32(site))
			}
		}
	}
	return ev.ObjectCost(k, without) - ev.ObjectCost(k, with)
}
