package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 matched on %d/100 draws", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(7)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(3)
	lo, hi := 5, 9
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("IntRange(%d,%d) = %d", lo, hi, v)
		}
		seen[v] = true
	}
	if len(seen) != hi-lo+1 {
		t.Fatalf("IntRange hit %d values, want %d", len(seen), hi-lo+1)
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
	}
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestFloatRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		v := r.FloatRange(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("FloatRange = %v outside [2.5,7.5)", v)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(17)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / draws; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Norm stddev %v, want ~3", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleMixes(t *testing.T) {
	r := New(23)
	fixedPoints := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		p := r.Perm(20)
		for i, v := range p {
			if i == v {
				fixedPoints++
			}
		}
	}
	// Expected one fixed point per permutation.
	if fixedPoints < 30 || fixedPoints > 300 {
		t.Fatalf("%d fixed points over %d perms; shuffle looks broken", fixedPoints, trials)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams matched on %d/100 draws", same)
	}
}
