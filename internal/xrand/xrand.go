// Package xrand provides a small, deterministic pseudo-random number
// generator with the distribution helpers the replication workloads and the
// genetic algorithms need: integer ranges, floats, normals, permutations and
// stream splitting.
//
// The generator is xoshiro256**, seeded through splitmix64, so identical
// seeds reproduce identical workloads and GA runs across platforms. All
// methods are deterministic functions of the seed and the call sequence; a
// Source is not safe for concurrent use — derive one per goroutine with
// Split.
package xrand

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random generator.
type Source struct {
	s [4]uint64
	// cached spare normal variate for Norm (Box-Muller generates pairs).
	spare    float64
	hasSpare bool
}

// New returns a Source seeded from seed via splitmix64.
func New(seed uint64) *Source {
	src := &Source{}
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return src
}

// Split derives an independent child generator from the current stream.
// The parent advances, so successive Splits yield distinct children.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation, with rejection to
	// remove modulo bias.
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// FloatRange returns a uniform float in [lo, hi).
func (r *Source) FloatRange(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Norm returns a normally distributed float with the given mean and
// standard deviation (Box-Muller).
func (r *Source) Norm(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes the slice in place (Fisher-Yates).
func (r *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
