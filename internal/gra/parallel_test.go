package gra

import (
	"testing"

	"drp/internal/xrand"
)

// TestRunParallelBitIdentical is the tentpole guarantee: for the same seed,
// every worker count produces exactly the serial run — same elite bits,
// cost, fitness, per-generation history and final population.
func TestRunParallelBitIdentical(t *testing.T) {
	p := gen(t, 10, 14, 0.05, 0.12, 21)
	var ref *Result
	for _, par := range []int{1, 2, 8} {
		params := smallParams(31)
		params.Parallelism = par
		res, err := Run(p, params)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Cost != ref.Cost || res.Fitness != ref.Fitness {
			t.Fatalf("par=%d: cost/fitness %d/%v diverged from serial %d/%v",
				par, res.Cost, res.Fitness, ref.Cost, ref.Fitness)
		}
		if !res.Scheme.Equal(ref.Scheme) {
			t.Fatalf("par=%d: elite scheme bits diverged from serial", par)
		}
		if res.Evaluations != ref.Evaluations {
			t.Fatalf("par=%d: %d evaluations, serial did %d", par, res.Evaluations, ref.Evaluations)
		}
		if len(res.History) != len(ref.History) {
			t.Fatalf("par=%d: history length %d vs %d", par, len(res.History), len(ref.History))
		}
		for g := range res.History {
			if res.History[g] != ref.History[g] {
				t.Fatalf("par=%d: generation %d stats %+v diverged from %+v",
					par, g, res.History[g], ref.History[g])
			}
		}
		for i := range res.Population {
			if !res.Population[i].Equal(ref.Population[i]) {
				t.Fatalf("par=%d: final population member %d diverged", par, i)
			}
		}
	}
}

// TestRunWithPopulationParallelBitIdentical covers the AGRA-facing entry
// point (mini-GRA, Current+GRA policies) at several worker counts.
func TestRunWithPopulationParallelBitIdentical(t *testing.T) {
	p := gen(t, 9, 12, 0.05, 0.15, 22)
	init := SeedSRA(p, 6, xrand.New(5))
	var ref *Result
	for _, par := range []int{1, 2, 8} {
		params := smallParams(37)
		params.Parallelism = par
		res, err := RunWithPopulation(p, params, init)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Cost != ref.Cost || res.Fitness != ref.Fitness || !res.Scheme.Equal(ref.Scheme) {
			t.Fatalf("par=%d diverged from serial", par)
		}
	}
}

// TestRunSGAParallelBitIdentical pins the ablation (Holland SGA) path too,
// since it batches evaluation through the same pool.
func TestRunSGAParallelBitIdentical(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 23)
	var ref *Result
	for _, par := range []int{1, 4} {
		params := smallParams(41)
		params.Selection = SelectionSGA
		params.Parallelism = par
		res, err := Run(p, params)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Cost != ref.Cost || !res.Scheme.Equal(ref.Scheme) {
			t.Fatalf("SGA par=%d diverged from serial", par)
		}
	}
}

// TestRunParallelHammer is the -race workhorse: a wide pool, aggressive
// variation rates and enough generations to push many batches through it.
func TestRunParallelHammer(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.10, 24)
	params := smallParams(43)
	params.Parallelism = 8
	params.Generations = 25
	params.CrossoverRate = 1.0
	params.MutationRate = 0.05
	res, err := Run(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("hammered run produced invalid scheme: %v", err)
	}
}

func TestValidateRejectsNegativeParallelism(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 25)
	params := smallParams(1)
	params.Parallelism = -1
	if _, err := Run(p, params); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}
