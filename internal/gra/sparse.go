package gra

import (
	"fmt"

	"drp/internal/core"
	"drp/internal/solver"
	"drp/internal/sparse"
)

// This file bridges GRA onto the internal/sparse solver core. With
// Params.Sparse set (or M·N at or past Params.SparseAuto), Run/RunWith
// convert the problem to the compressed candidate-pruned representation and
// solve it with the sharded greedy instead of the genetic search — the
// million-object path of ROADMAP item 3. The result shape is unchanged
// (scheme, cost, fitness, solver stats), so callers and CLIs treat both
// cores uniformly; Result.Sparse says which one ran.

// sparseEnabled reports whether params select the sparse core for an M×N
// instance.
func (pr Params) sparseEnabled(m, n int) bool {
	return pr.Sparse || (pr.SparseAuto > 0 && m*n >= pr.SparseAuto)
}

// sparseShards resolves the sparse worker count: Shards, else Parallelism,
// else GOMAXPROCS (inside sparse.Solve).
func (pr Params) sparseShards() int {
	if pr.Shards != 0 {
		return pr.Shards
	}
	return pr.Parallelism
}

// runSparse executes the sharded sparse solve and adapts its result into
// the GRA result shape.
func runSparse(p *core.Problem, params Params, run solver.Run) (*Result, error) {
	mo, err := sparse.FromProblem(p)
	if err != nil {
		return nil, fmt.Errorf("gra: sparse conversion: %w", err)
	}
	sres, err := sparse.Solve(mo, sparse.SolveParams{Shards: params.sparseShards()}, run)
	if err != nil {
		return nil, fmt.Errorf("gra: sparse solve: %w", err)
	}
	scheme, err := sres.Assignment.ToScheme(p)
	if err != nil {
		return nil, fmt.Errorf("gra: sparse result invalid: %w", err)
	}
	fitness := 0.0
	if p.DPrime() != 0 {
		fitness = float64(p.DPrime()-sres.Cost) / float64(p.DPrime())
	}
	res := &Result{
		Scheme:  scheme,
		Cost:    sres.Cost,
		Fitness: fitness,
		History: []GenStats{{
			Gen:         sres.Stats.Iterations,
			BestFitness: fitness,
			BestCost:    sres.Cost,
		}},
		Stats:       sres.Stats,
		Evaluations: sres.Stats.Evaluations,
		Elapsed:     sres.Stats.Elapsed,
		Sparse:      true,
	}
	return res, nil
}
