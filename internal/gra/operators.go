package gra

import (
	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/ga"
	"drp/internal/xrand"
)

// evaluator wraps the cost model with the GRA fitness rules: f = (D′−D)/D′,
// and chromosomes with negative fitness are overwritten with the initial
// (primaries-only) allocation at fitness zero. Batched evaluations fan out
// across a pool of per-goroutine core.Evaluators; each task touches only
// its own chromosome (plus the read-only primal template), so any worker
// count produces the same individuals as a serial pass.
type evaluator struct {
	p       *core.Problem
	pool    *core.EvalPool
	primal  *bitset.Set // the primaries-only chromosome, read-only
	geneLen int
}

func newEvaluator(p *core.Problem, parallelism int) *evaluator {
	primal := bitset.New(p.Sites() * p.Objects())
	for k := 0; k < p.Objects(); k++ {
		primal.Set(p.Primary(k)*p.Objects() + k)
	}
	return &evaluator{
		p:       p,
		pool:    core.NewEvalPool(p, parallelism),
		primal:  primal,
		geneLen: p.Objects(),
	}
}

// evaluateWith scores one chromosome using the given (worker-private) cost
// evaluator. It makes no RNG calls, which is what lets callers split
// variation from evaluation without perturbing the random streams.
func (ev *evaluator) evaluateWith(cost *core.Evaluator, bits *bitset.Set) ga.Individual {
	d := cost.Cost(bits)
	dPrime := ev.p.DPrime()
	f := 0.0
	if dPrime > 0 {
		f = float64(dPrime-d) / float64(dPrime)
	}
	if f < 0 {
		// Rare: a scheme worse than no replication. Reset to the initial
		// allocation, per the paper.
		bits.CopyFrom(ev.primal)
		d = dPrime
		f = 0
	}
	return ga.Individual{Bits: bits, Cost: d, Fitness: f}
}

// evaluateAll scores a batch of chromosomes across the worker pool and
// returns the individuals in input order.
func (ev *evaluator) evaluateAll(cand []*bitset.Set) []ga.Individual {
	out := make([]ga.Individual, len(cand))
	ev.pool.Each(len(cand), func(cost *core.Evaluator, i int) {
		out[i] = ev.evaluateWith(cost, cand[i])
	})
	return out
}

// geneUsage returns the storage consumed by gene (site) g of the chromosome.
func (ev *evaluator) geneUsage(bits *bitset.Set, g int) int64 {
	n := ev.geneLen
	var used int64
	for pos := bits.NextSet(g * n); pos >= 0 && pos < (g+1)*n; pos = bits.NextSet(pos + 1) {
		used += ev.p.Size(pos - g*n)
	}
	return used
}

func (ev *evaluator) geneValid(bits *bitset.Set, g int) bool {
	return ev.geneUsage(bits, g) <= ev.p.Capacity(g)
}

// crossoverSubpop builds the λ/2 crossover offspring: parents are paired at
// random; each pair is crossed with probability µc (otherwise copied), and
// cut-point genes are repaired to validity. All variation runs on the
// coordinator; the offspring are then batch-evaluated across the pool.
func (ev *evaluator) crossoverSubpop(pop []ga.Individual, params Params, rng *xrand.Source) []ga.Individual {
	order := rng.Perm(len(pop))
	cand := make([]*bitset.Set, 0, len(pop))
	for idx := 0; idx+1 < len(order); idx += 2 {
		a := pop[order[idx]].Bits.Clone()
		b := pop[order[idx+1]].Bits.Clone()
		if rng.Bool(params.CrossoverRate) {
			ev.cross(a, b, params, rng)
		}
		cand = append(cand, a, b)
	}
	out := ev.evaluateAll(cand)
	if len(order)%2 == 1 {
		// Odd population: the unpaired parent passes through unchanged.
		out = append(out, pop[order[len(order)-1]].Clone())
	}
	return out
}

// cross applies the configured crossover operator in place, with gene
// repair.
func (ev *evaluator) cross(a, b *bitset.Set, params Params, rng *xrand.Source) {
	if params.Crossover == CrossoverOnePoint {
		span := ga.OnePoint(a, b, rng)
		ev.repairCrossover(a, b, []ga.CrossSpan{span})
		return
	}
	spans := ga.TwoPoint(a, b, rng)
	ev.repairCrossover(a, b, spans)
}

// sgaGeneration implements Holland's simple GA as an ablation baseline:
// plain-roulette parent selection, crossover and mutation transform the
// selected set, offspring replace the generation wholesale.
func (ev *evaluator) sgaGeneration(pop []ga.Individual, params Params, rng *xrand.Source) []ga.Individual {
	weights := make([]float64, len(pop))
	for i := range pop {
		weights[i] = pop[i].Fitness
	}
	next := make([]ga.Individual, len(pop))
	for i := range next {
		next[i] = pop[ga.RouletteIndex(weights, rng)].Clone()
	}
	order := rng.Perm(len(next))
	for idx := 0; idx+1 < len(order); idx += 2 {
		if rng.Bool(params.CrossoverRate) {
			ev.cross(next[order[idx]].Bits, next[order[idx+1]].Bits, params, rng)
		}
	}
	cand := make([]*bitset.Set, len(next))
	for i := range next {
		cand[i] = ev.mutate(next[i].Bits, params, rng)
	}
	return ev.evaluateAll(cand)
}

// repairCrossover restores gene validity after a two-point crossover. Only
// the genes containing cut points can be invalid; for each such gene that
// is, the uncrossed remainder of the gene is swapped too, after which the
// gene comes whole from one (valid) parent.
func (ev *evaluator) repairCrossover(a, b *bitset.Set, spans []ga.CrossSpan) {
	n := ev.geneLen
	seen := [4]int{-1, -1, -1, -1}
	cnt := 0
	addGene := func(g int) {
		for _, s := range seen[:cnt] {
			if s == g {
				return
			}
		}
		seen[cnt] = g
		cnt++
	}
	for _, sp := range spans {
		if sp.From >= sp.To {
			continue
		}
		if sp.From%n != 0 {
			addGene(sp.From / n)
		}
		if sp.To%n != 0 {
			addGene(sp.To / n)
		}
	}
	for _, g := range seen[:cnt] {
		if ev.geneValid(a, g) && ev.geneValid(b, g) {
			continue
		}
		swapGeneComplement(a, b, g, n, spans)
	}
}

// swapGeneComplement swaps every bit of gene g that is NOT inside one of the
// already-swapped spans, completing the gene exchange between a and b.
func swapGeneComplement(a, b *bitset.Set, g, n int, spans []ga.CrossSpan) {
	lo, hi := g*n, (g+1)*n
	cur := lo
	for _, sp := range spans { // spans are ascending and disjoint
		f, t := sp.From, sp.To
		if f < lo {
			f = lo
		}
		if t > hi {
			t = hi
		}
		if f >= t {
			continue
		}
		if cur < f {
			a.SwapRange(b, cur, f)
		}
		if t > cur {
			cur = t
		}
	}
	if cur < hi {
		a.SwapRange(b, cur, hi)
	}
}

// mutationSubpop builds the λ/2 mutation offspring: each parent is cloned
// and mutated on the coordinator, then the clones are batch-evaluated.
func (ev *evaluator) mutationSubpop(pop []ga.Individual, params Params, rng *xrand.Source) []ga.Individual {
	cand := make([]*bitset.Set, len(pop))
	for idx := range pop {
		cand[idx] = ev.mutate(pop[idx].Bits.Clone(), params, rng)
	}
	return ev.evaluateAll(cand)
}

// mutate flips every bit with probability µm in place; flips that would
// drop a primary copy or overflow a site are reverted (the paper's
// constraint check). Returns bits for chaining.
func (ev *evaluator) mutate(bits *bitset.Set, params Params, rng *xrand.Source) *bitset.Set {
	p := ev.p
	n := ev.geneLen
	var usage []int64
	ga.MutateBits(bits.Len(), params.MutationRate, rng, func(pos int) {
		if usage == nil {
			usage = chromosomeUsage(p, bits)
		}
		site, obj := pos/n, pos%n
		if bits.Test(pos) {
			if p.Primary(obj) == site {
				return // primary-copy constraint
			}
			bits.Clear(pos)
			usage[site] -= p.Size(obj)
			return
		}
		if usage[site]+p.Size(obj) > p.Capacity(site) {
			return // storage constraint
		}
		bits.Set(pos)
		usage[site] += p.Size(obj)
	})
	return bits
}

// chromosomeUsage computes per-site storage usage of a chromosome.
func chromosomeUsage(p *core.Problem, bits *bitset.Set) []int64 {
	n := p.Objects()
	usage := make([]int64, p.Sites())
	for pos := bits.NextSet(0); pos >= 0; pos = bits.NextSet(pos + 1) {
		usage[pos/n] += p.Size(pos % n)
	}
	return usage
}
