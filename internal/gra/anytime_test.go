package gra

import (
	"context"
	"testing"

	"drp/internal/solver"
)

// expectSame asserts two GRA results are bit-for-bit identical in everything
// but the stop reason: scheme, cost, fitness, history and final population.
func expectSame(t *testing.T, got, want *Result) {
	t.Helper()
	if !got.Scheme.Equal(want.Scheme) {
		t.Fatal("schemes differ")
	}
	if got.Cost != want.Cost || got.Fitness != want.Fitness {
		t.Fatalf("cost/fitness (%d, %v) != (%d, %v)", got.Cost, got.Fitness, want.Cost, want.Fitness)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("history length %d != %d", len(got.History), len(want.History))
	}
	for i := range got.History {
		if got.History[i] != want.History[i] {
			t.Fatalf("history[%d] %+v != %+v", i, got.History[i], want.History[i])
		}
	}
	if len(got.Population) != len(want.Population) {
		t.Fatalf("population size %d != %d", len(got.Population), len(want.Population))
	}
	for i := range got.Population {
		if !got.Population[i].Equal(want.Population[i]) {
			t.Fatalf("population[%d] differs", i)
		}
	}
	if got.Stats.Evaluations != want.Stats.Evaluations {
		t.Fatalf("evaluations %d != %d", got.Stats.Evaluations, want.Stats.Evaluations)
	}
	if got.Stats.Iterations != want.Stats.Iterations {
		t.Fatalf("iterations %d != %d", got.Stats.Iterations, want.Stats.Iterations)
	}
}

// TestCancelledAtGenEqualsShorterRun is the determinism contract: a run
// cancelled after generation g must return exactly what a Generations=g run
// returns, at every worker count. The context is cancelled from the observer
// at the gen-g boundary, so the next boundary's check sees it before any
// generation-g+1 randomness is drawn.
func TestCancelledAtGenEqualsShorterRun(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 21)
	const cutGen = 6
	for _, par := range []int{1, 8} {
		params := smallParams(31)
		params.Parallelism = par

		ctx, cancel := context.WithCancel(context.Background())
		run := solver.Run{
			Context: ctx,
			Observer: solver.ObserverFunc(func(pr solver.Progress) {
				if pr.Iteration == cutGen {
					cancel()
				}
			}),
		}
		cancelled, err := RunWith(p, params, run)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if cancelled.Stats.Stopped != solver.StopCancelled {
			t.Fatalf("par %d: stopped %v, want cancelled", par, cancelled.Stats.Stopped)
		}
		if cancelled.Stats.Iterations != cutGen {
			t.Fatalf("par %d: stopped after %d generations, want %d", par, cancelled.Stats.Iterations, cutGen)
		}

		short := params
		short.Generations = cutGen
		ref, err := Run(p, short)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Stats.Stopped != solver.StopCompleted {
			t.Fatalf("par %d: reference run stopped %v", par, ref.Stats.Stopped)
		}
		expectSame(t, cancelled, ref)
	}
}

// A budget stop happens at a generation boundary too, so the truncated run
// must also match the equivalent shorter run exactly.
func TestBudgetStopsAtBoundaryBitIdentical(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 22)
	params := smallParams(33)
	// Enough for seeding plus a few generations, not the whole run.
	budgeted, err := RunWith(p, params, solver.Run{Budget: 4 * params.PopSize})
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Stats.Stopped != solver.StopBudget {
		t.Fatalf("stopped %v, want budget", budgeted.Stats.Stopped)
	}
	g := budgeted.Stats.Iterations
	if g <= 0 || g >= params.Generations {
		t.Fatalf("budget stopped after %d generations, want interior stop", g)
	}
	short := params
	short.Generations = g
	ref, err := Run(p, short)
	if err != nil {
		t.Fatal(err)
	}
	expectSame(t, budgeted, ref)
}

func TestExpiredDeadlineStopsBeforeFirstGeneration(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 23)
	params := smallParams(35)
	res, err := RunWith(p, params, solver.Run{Timeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stopped != solver.StopDeadline {
		t.Fatalf("stopped %v, want deadline", res.Stats.Stopped)
	}
	if res.Stats.Iterations != 0 || len(res.History) != 1 {
		t.Fatalf("expired run completed %d generations (history %d)", res.Stats.Iterations, len(res.History))
	}
	// The seeded population's best is still a valid scheme.
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("interrupted run returned invalid scheme: %v", err)
	}
	short := params
	short.Generations = 0
	ref, err := Run(p, short)
	if err != nil {
		t.Fatal(err)
	}
	expectSame(t, res, ref)
}

// Controls that never fire must leave the run bit-identical to no controls.
func TestUnfiredControlsAreFree(t *testing.T) {
	p := gen(t, 8, 12, 0.05, 0.15, 24)
	params := smallParams(37)
	plain, err := Run(p, params)
	if err != nil {
		t.Fatal(err)
	}
	controlled, err := RunWith(p, params, solver.Run{
		Context:  context.Background(),
		Budget:   1 << 30,
		Observer: solver.ObserverFunc(func(solver.Progress) {}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if controlled.Stats.Stopped != solver.StopCompleted {
		t.Fatalf("stopped %v", controlled.Stats.Stopped)
	}
	expectSame(t, controlled, plain)
}

func TestObserverSeesEveryGeneration(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 25)
	params := smallParams(39)
	var gens []int
	_, err := RunWith(p, params, solver.Run{Observer: solver.ObserverFunc(func(pr solver.Progress) {
		if pr.Algorithm != "gra" {
			t.Errorf("algorithm %q", pr.Algorithm)
		}
		gens = append(gens, pr.Iteration)
	})})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != params.Generations+1 {
		t.Fatalf("%d observations, want %d", len(gens), params.Generations+1)
	}
	for i, g := range gens {
		if g != i {
			t.Fatalf("observation %d reports generation %d", i, g)
		}
	}
}
