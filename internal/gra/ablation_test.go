package gra

import (
	"testing"

	"drp/internal/core"
)

func TestSGASelectionProducesValidSchemes(t *testing.T) {
	p := gen(t, 10, 12, 0.05, 0.15, 31)
	params := smallParams(1)
	params.Selection = SelectionSGA
	res, err := Run(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bits := range res.Population {
		if _, err := core.SchemeFromBits(p, bits); err != nil {
			t.Fatalf("SGA chromosome %d invalid: %v", i, err)
		}
	}
}

func TestOnePointCrossoverProducesValidSchemes(t *testing.T) {
	p := gen(t, 10, 12, 0.05, 0.10, 32)
	params := smallParams(2)
	params.Crossover = CrossoverOnePoint
	params.CrossoverRate = 1.0
	res, err := Run(p, params)
	if err != nil {
		t.Fatal(err)
	}
	for i, bits := range res.Population {
		if _, err := core.SchemeFromBits(p, bits); err != nil {
			t.Fatalf("one-point chromosome %d invalid: %v", i, err)
		}
	}
}

func TestRandomSeedingRunsAndIsValid(t *testing.T) {
	p := gen(t, 10, 12, 0.05, 0.15, 33)
	params := smallParams(3)
	params.Seeding = SeedingRandom
	res, err := Run(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSRASeedingBeatsRandomSeedingAtSmallBudgets(t *testing.T) {
	// With few generations the GA cannot recover from a random start; the
	// paper's SRA seeding should dominate. Average over a few seeds to
	// dodge GA noise.
	p := gen(t, 14, 18, 0.05, 0.15, 34)
	var sraTotal, randTotal float64
	for seed := uint64(1); seed <= 3; seed++ {
		params := smallParams(seed)
		params.Generations = 5
		res, err := Run(p, params)
		if err != nil {
			t.Fatal(err)
		}
		sraTotal += res.Fitness

		params.Seeding = SeedingRandom
		res, err = Run(p, params)
		if err != nil {
			t.Fatal(err)
		}
		randTotal += res.Fitness
	}
	if sraTotal <= randTotal {
		t.Fatalf("SRA seeding total fitness %.4f not better than random %.4f", sraTotal, randTotal)
	}
}

func TestNormalizedDefaults(t *testing.T) {
	pr := Params{}.normalized()
	if pr.Selection != SelectionMuPlusLambda || pr.Crossover != CrossoverTwoPoint || pr.Seeding != SeedingSRA {
		t.Fatalf("normalized zero params = %+v", pr)
	}
}

func TestAblationParamValidation(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 35)
	bad := smallParams(1)
	bad.Selection = Selection(9)
	if _, err := Run(p, bad); err == nil {
		t.Fatal("bad selection accepted")
	}
	bad = smallParams(1)
	bad.Crossover = Crossover(9)
	if _, err := Run(p, bad); err == nil {
		t.Fatal("bad crossover accepted")
	}
	bad = smallParams(1)
	bad.Seeding = Seeding(9)
	if _, err := Run(p, bad); err == nil {
		t.Fatal("bad seeding accepted")
	}
}

func TestPatienceStopsEarly(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 36)
	params := smallParams(4)
	params.Generations = 200
	params.Patience = 3
	res, err := Run(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) >= 201 {
		t.Fatal("patience did not stop the run early")
	}
	// The last Patience generations recorded no improvement.
	h := res.History
	last := h[len(h)-1].BestFitness
	for i := len(h) - params.Patience; i < len(h); i++ {
		if h[i].BestFitness != last {
			t.Fatal("stopped while still improving")
		}
	}
}

func TestNegativePatienceRejected(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 37)
	params := smallParams(1)
	params.Patience = -1
	if _, err := Run(p, params); err == nil {
		t.Fatal("negative patience accepted")
	}
}
