// Package gra implements the Genetic Replication Algorithm of Section 4.
//
// A chromosome is the site-major M·N bit matrix of a replication scheme: M
// genes (one per site) of N bits (one per object). The initial population
// is seeded by SRA runs with randomised site orders, half of it perturbed
// on a quarter of its bits; fitness is the normalised NTC saving
// f = (D′ − D)/D′; selection is stochastic-remainder over a (µ+λ) pool of
// parents plus a crossover subpopulation plus a mutation subpopulation;
// elitism re-injects the best-so-far chromosome every few generations.
// Two-point crossover can only invalidate the genes containing the cut
// points, and validity is restored by swapping the uncrossed remainder of
// those genes (after which each gene comes whole from one valid parent).
package gra

import (
	"fmt"
	"time"

	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/ga"
	"drp/internal/solver"
	"drp/internal/sra"
	"drp/internal/xrand"
)

// Selection picks the GA sampling scheme. The paper adopts (µ+λ) selection
// with the stochastic remainder technique; Holland's simple GA (plain
// generational roulette) is kept as an ablation baseline.
type Selection int

// Selection schemes.
const (
	// SelectionMuPlusLambda pools parents with both offspring
	// subpopulations and selects by stochastic remainder (the paper's
	// choice).
	SelectionMuPlusLambda Selection = iota + 1
	// SelectionSGA is Holland's simple GA: plain roulette over parents,
	// offspring replace the generation wholesale.
	SelectionSGA
)

// Crossover picks the recombination operator.
type Crossover int

// Crossover operators.
const (
	// CrossoverTwoPoint is the paper's choice.
	CrossoverTwoPoint Crossover = iota + 1
	// CrossoverOnePoint is the single-point ablation variant.
	CrossoverOnePoint
)

// Seeding picks how the initial population is built.
type Seeding int

// Seeding strategies.
const (
	// SeedingSRA seeds from randomised SRA runs, half perturbed (paper).
	SeedingSRA Seeding = iota + 1
	// SeedingRandom seeds from random valid schemes, quantifying how much
	// the greedy warm start buys.
	SeedingRandom
)

// Params are the GRA control parameters. The paper fixes Np=50, Ng=80,
// µc=0.9, µm=0.01 after tuning, with the elite copied back every 5
// generations. The Selection/Crossover/Seeding knobs default to the
// paper's choices and exist for the ablation benchmarks.
type Params struct {
	PopSize       int     // Np
	Generations   int     // Ng
	CrossoverRate float64 // µc
	MutationRate  float64 // µm
	EliteEvery    int     // elite re-injection period, in generations
	Seed          uint64  // RNG seed; identical seeds reproduce runs exactly

	Selection Selection // zero value = SelectionMuPlusLambda
	Crossover Crossover // zero value = CrossoverTwoPoint
	Seeding   Seeding   // zero value = SeedingSRA

	// Patience, when positive, stops the run early once the best-so-far
	// fitness has not improved for that many consecutive generations — an
	// extension for online use where the generation budget is a ceiling,
	// not a target.
	Patience int

	// Parallelism sizes the evaluation worker pool. Chromosome cost
	// evaluations — the dominant work unit — fan out across this many
	// goroutines, each with a private core.Evaluator, while all selection
	// and variation randomness stays on the coordinator goroutine and
	// results are reduced in input order; runs are therefore bit-identical
	// at any setting. 0 means GOMAXPROCS; 1 runs fully serial.
	Parallelism int

	// Sparse switches the run onto the internal/sparse solver core: the
	// problem is converted to the compressed candidate-pruned
	// representation and solved by the sharded greedy (see internal/sparse)
	// instead of the genetic search. Budgets, deadlines, cancellation and
	// observers work identically; Result.Sparse reports which core ran.
	Sparse bool
	// SparseAuto, when positive, flips to the sparse core automatically
	// once M·N reaches it — the auto-threshold companion to the explicit
	// Sparse switch. DESIGN.md §13 discusses choosing it.
	SparseAuto int
	// Shards is the sparse core's proposal-phase worker count (0 falls
	// back to Parallelism, which itself falls back to GOMAXPROCS). Sparse
	// results are bit-identical at any shard count.
	Shards int
}

// DefaultParams returns the paper's tuned parameters.
func DefaultParams() Params {
	return Params{
		PopSize:       50,
		Generations:   80,
		CrossoverRate: 0.9,
		MutationRate:  0.01,
		EliteEvery:    5,
	}
}

// normalized fills the ablation knobs' zero values with the paper's
// defaults.
func (pr Params) normalized() Params {
	if pr.Selection == 0 {
		pr.Selection = SelectionMuPlusLambda
	}
	if pr.Crossover == 0 {
		pr.Crossover = CrossoverTwoPoint
	}
	if pr.Seeding == 0 {
		pr.Seeding = SeedingSRA
	}
	return pr
}

func (pr Params) validate() error {
	switch {
	case pr.Selection < 0 || pr.Selection > SelectionSGA:
		return fmt.Errorf("gra: unknown selection scheme %d", int(pr.Selection))
	case pr.Crossover < 0 || pr.Crossover > CrossoverOnePoint:
		return fmt.Errorf("gra: unknown crossover %d", int(pr.Crossover))
	case pr.Seeding < 0 || pr.Seeding > SeedingRandom:
		return fmt.Errorf("gra: unknown seeding %d", int(pr.Seeding))
	}
	switch {
	case pr.PopSize < 2:
		return fmt.Errorf("gra: population size %d < 2", pr.PopSize)
	case pr.Generations < 0:
		return fmt.Errorf("gra: negative generation count %d", pr.Generations)
	case pr.CrossoverRate < 0 || pr.CrossoverRate > 1:
		return fmt.Errorf("gra: crossover rate %v outside [0,1]", pr.CrossoverRate)
	case pr.MutationRate < 0 || pr.MutationRate > 1:
		return fmt.Errorf("gra: mutation rate %v outside [0,1]", pr.MutationRate)
	case pr.EliteEvery < 1:
		return fmt.Errorf("gra: elite period %d < 1", pr.EliteEvery)
	case pr.Patience < 0:
		return fmt.Errorf("gra: negative patience %d", pr.Patience)
	case pr.Parallelism < 0:
		return fmt.Errorf("gra: negative parallelism %d", pr.Parallelism)
	case pr.SparseAuto < 0:
		return fmt.Errorf("gra: negative sparse auto-threshold %d", pr.SparseAuto)
	case pr.Shards < 0:
		return fmt.Errorf("gra: negative shard count %d", pr.Shards)
	}
	return nil
}

// GenStats records per-generation progress.
type GenStats struct {
	Gen         int
	BestFitness float64
	MeanFitness float64
	BestCost    int64
}

// Result is the outcome of a GRA run.
type Result struct {
	// Scheme is the best replication scheme found.
	Scheme *core.Scheme
	// Cost is its NTC, and Fitness the normalised saving (D′−D)/D′.
	Cost    int64
	Fitness float64
	// History holds per-generation statistics.
	History []GenStats
	// Stats is the solver-runtime accounting: Iterations is the completed
	// generation count, Elapsed covers the whole entry point (population
	// seeding included), and Stopped tells whether the run completed or was
	// interrupted by a deadline, budget or cancellation. On interruption
	// after generation g the result is bit-identical to a Generations=g run.
	Stats solver.Stats
	// Evaluations mirrors Stats.Evaluations: cost-model evaluations, the
	// dominant work unit, counted centrally by the evaluation pool.
	Evaluations int
	// Elapsed mirrors Stats.Elapsed: the wall-clock duration including
	// seeding.
	Elapsed time.Duration
	// Population is the final population's chromosomes, exposed because
	// AGRA transcribes per-object schemes into them. Nil when the sparse
	// core ran (it is population-free).
	Population []*bitset.Set
	// Sparse reports that the internal/sparse core produced this result
	// (via Params.Sparse or the SparseAuto threshold).
	Sparse bool
}

// Run executes GRA with the paper's SRA-based population seeding (or the
// ablation seeding selected in params).
func Run(p *core.Problem, params Params) (*Result, error) {
	return RunWith(p, params, solver.Run{})
}

// RunWith executes GRA under the given anytime controls. Interruption is
// only checked at generation boundaries: a run cancelled (or out of time or
// budget) after generation g returns exactly what a Generations=g run
// returns, at every worker count, with Stats.Stopped recording why. Seeding
// itself is never interrupted — its time and evaluations count against the
// controls, and a run that expires during seeding stops at the gen-1
// boundary with the seeded population's best scheme.
func RunWith(p *core.Problem, params Params, run solver.Run) (*Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if params.sparseEnabled(p.Sites(), p.Objects()) {
		return runSparse(p, params, run)
	}
	params = params.normalized()
	rng := xrand.New(params.Seed)
	c := solver.Start("gra", run)
	var init []*bitset.Set
	switch params.Seeding {
	case SeedingSRA:
		init = SeedSRA(p, params.PopSize, rng)
	case SeedingRandom:
		init = SeedRandom(p, params.PopSize, rng)
	}
	return evolve(p, params, init, rng, c)
}

// RunWithPopulation executes GRA from a caller-supplied initial population
// (AGRA transcription, "Current + GRA" policies). Chromosomes must be valid
// site-major bit matrices; fewer than PopSize are padded with perturbed
// clones, extras are truncated.
func RunWithPopulation(p *core.Problem, params Params, init []*bitset.Set) (*Result, error) {
	return ContinueWith(p, params, init, solver.Run{})
}

// ContinueWith is RunWithPopulation under anytime controls (see RunWith for
// the interruption contract). AGRA uses it to hand its remaining deadline
// and budget to the mini-GRA polish.
func ContinueWith(p *core.Problem, params Params, init []*bitset.Set, run solver.Run) (*Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if params.sparseEnabled(p.Sites(), p.Objects()) {
		return nil, fmt.Errorf("gra: the sparse core is population-free and cannot continue from a dense population")
	}
	if len(init) == 0 {
		return nil, fmt.Errorf("gra: empty initial population")
	}
	params = params.normalized()
	rng := xrand.New(params.Seed)
	c := solver.Start("gra", run)

	pop := make([]*bitset.Set, 0, params.PopSize)
	for _, bits := range init {
		if bits.Len() != p.Sites()*p.Objects() {
			return nil, fmt.Errorf("gra: chromosome length %d, want %d", bits.Len(), p.Sites()*p.Objects())
		}
		if len(pop) == params.PopSize {
			break
		}
		pop = append(pop, bits.Clone())
	}
	for len(pop) < params.PopSize {
		src := pop[rng.Intn(len(pop))]
		s, err := core.SchemeFromBits(p, src)
		if err != nil {
			return nil, fmt.Errorf("gra: invalid seed chromosome: %w", err)
		}
		Perturb(s, 0.25, rng)
		pop = append(pop, s.Bits())
	}

	return evolve(p, params, pop, rng, c)
}

// SeedSRA builds the paper's initial population: PopSize SRA runs with
// random site orders, the second half perturbed on a quarter of their bits
// while keeping both DRP constraints intact.
func SeedSRA(p *core.Problem, popSize int, rng *xrand.Source) []*bitset.Set {
	pop := make([]*bitset.Set, popSize)
	for c := 0; c < popSize; c++ {
		res := sra.Run(p, sra.Options{RandomOrder: true, RNG: rng.Split()})
		if c >= popSize/2 {
			Perturb(res.Scheme, 0.25, rng)
		}
		pop[c] = res.Scheme.Bits()
	}
	return pop
}

// SeedRandom builds an initial population of random valid schemes: each
// chromosome starts from the primaries-only allocation and receives random
// placements until several consecutive attempts fail. It is the ablation
// counterpart of SeedSRA.
func SeedRandom(p *core.Problem, popSize int, rng *xrand.Source) []*bitset.Set {
	pop := make([]*bitset.Set, popSize)
	for c := range pop {
		s := core.NewScheme(p)
		failures := 0
		limit := 2 * (p.Sites() + p.Objects())
		for failures < limit {
			if s.Add(rng.Intn(p.Sites()), rng.Intn(p.Objects())) != nil {
				failures++
			} else {
				failures = 0
			}
		}
		pop[c] = s.Bits()
	}
	return pop
}

// Perturb randomly toggles fraction·M·N placements of the scheme, skipping
// any toggle that would drop a primary copy or overflow a site. It provides
// the population diversity the paper injects at seeding time.
func Perturb(s *core.Scheme, fraction float64, rng *xrand.Source) {
	p := s.Problem()
	m, n := p.Sites(), p.Objects()
	toggles := int(fraction * float64(m*n))
	for t := 0; t < toggles; t++ {
		i, k := rng.Intn(m), rng.Intn(n)
		if s.Has(i, k) {
			_ = s.Remove(i, k) // ErrPrimary: keep the bit
		} else {
			_ = s.Add(i, k) // ErrCapacity: keep the bit clear
		}
	}
}

// evolve runs the generational loop over an initial population of bitsets.
// Variation is serial (all randomness on this goroutine); only the cost
// evaluations fan out across the params.Parallelism worker pool. The
// controller is consulted exactly once per generation, at the top of the
// loop, before any randomness is drawn — so breaking there leaves the run
// in precisely the state a shorter Generations setting would have produced.
func evolve(p *core.Problem, params Params, init []*bitset.Set, rng *xrand.Source, c *solver.Controller) (*Result, error) {
	ev := newEvaluator(p, params.Parallelism)
	ev.pool.SetMeter(c.Meter())
	res := &Result{}

	pop := ev.evaluateAll(init)

	elite := pop[ga.Best(pop)].Clone()
	record := func(gen int) {
		mean := ga.MeanFitness(pop)
		res.History = append(res.History, GenStats{
			Gen:         gen,
			BestFitness: elite.Fitness,
			MeanFitness: mean,
			BestCost:    elite.Cost,
		})
		c.Observe(gen, elite.Fitness, mean, elite.Cost)
	}
	record(0)

	stop := solver.StopCompleted
	stale := 0
	lastGen := 0
	for gen := 1; gen <= params.Generations; gen++ {
		if reason, halt := c.Check(); halt {
			stop = reason
			break
		}
		prevElite := elite.Fitness
		switch params.Selection {
		case SelectionSGA:
			pop = ev.sgaGeneration(pop, params, rng)
			if b := ga.Best(pop); pop[b].Fitness > elite.Fitness {
				elite = pop[b].Clone()
			}
		default: // SelectionMuPlusLambda
			crossPop := ev.crossoverSubpop(pop, params, rng)
			mutPop := ev.mutationSubpop(pop, params, rng)

			// (µ+λ): parents and both offspring subpopulations compete for
			// the Np slots of the next generation.
			pool := make([]ga.Individual, 0, len(pop)+len(crossPop)+len(mutPop))
			pool = append(pool, pop...)
			pool = append(pool, crossPop...)
			pool = append(pool, mutPop...)

			if b := ga.Best(pool); pool[b].Fitness > elite.Fitness {
				elite = pool[b].Clone()
			}
			pop = ga.StochasticRemainder(pool, params.PopSize, rng)
		}

		// Elitism with delayed re-injection to avoid premature convergence.
		if gen%params.EliteEvery == 0 {
			pop[ga.Worst(pop)] = elite.Clone()
		}
		record(gen)
		lastGen = gen

		if params.Patience > 0 {
			if elite.Fitness > prevElite {
				stale = 0
			} else if stale++; stale >= params.Patience {
				break
			}
		}
	}

	scheme, err := core.SchemeFromBits(p, elite.Bits)
	if err != nil {
		return nil, fmt.Errorf("gra: elite chromosome invalid: %w", err)
	}
	res.Scheme = scheme
	res.Cost = elite.Cost
	res.Fitness = elite.Fitness
	res.Population = make([]*bitset.Set, len(pop))
	for i := range pop {
		res.Population[i] = pop[i].Bits.Clone()
	}
	res.Stats = c.Finish(lastGen, stop)
	res.Evaluations = res.Stats.Evaluations
	res.Elapsed = res.Stats.Elapsed
	return res, nil
}
