package gra

import (
	"testing"

	"drp/internal/core"
	"drp/internal/sra"
	"drp/internal/workload"
	"drp/internal/xrand"
)

func gen(t testing.TB, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// smallParams keeps unit-test runtimes down; experiment code uses
// DefaultParams.
func smallParams(seed uint64) Params {
	p := DefaultParams()
	p.PopSize = 12
	p.Generations = 15
	p.Seed = seed
	return p
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.PopSize != 50 || p.Generations != 80 || p.CrossoverRate != 0.9 || p.MutationRate != 0.01 || p.EliteEvery != 5 {
		t.Fatalf("defaults %+v do not match the paper", p)
	}
}

func TestParamsValidation(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 1)
	bad := []Params{
		{PopSize: 1, Generations: 1, CrossoverRate: 0.5, MutationRate: 0.01, EliteEvery: 5},
		{PopSize: 10, Generations: -1, CrossoverRate: 0.5, MutationRate: 0.01, EliteEvery: 5},
		{PopSize: 10, Generations: 1, CrossoverRate: 1.5, MutationRate: 0.01, EliteEvery: 5},
		{PopSize: 10, Generations: 1, CrossoverRate: 0.5, MutationRate: -0.1, EliteEvery: 5},
		{PopSize: 10, Generations: 1, CrossoverRate: 0.5, MutationRate: 0.01, EliteEvery: 0},
	}
	for i, params := range bad {
		if _, err := Run(p, params); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestRunProducesValidScheme(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 2)
	res, err := Run(p, smallParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("invalid scheme: %v", err)
	}
	if res.Cost != res.Scheme.Cost() {
		t.Fatalf("reported cost %d != scheme cost %d", res.Cost, res.Scheme.Cost())
	}
	if res.Fitness < 0 || res.Fitness > 1 {
		t.Fatalf("fitness %v outside [0,1]", res.Fitness)
	}
	if len(res.Population) != smallParams(7).PopSize {
		t.Fatalf("final population size %d", len(res.Population))
	}
	if res.Evaluations == 0 || res.Elapsed <= 0 {
		t.Fatal("run accounting missing")
	}
}

func TestRunDeterministic(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 3)
	a, err := Run(p, smallParams(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, smallParams(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || !a.Scheme.Equal(b.Scheme) {
		t.Fatal("same seed produced different results")
	}
}

func TestRunAtLeastAsGoodAsSRA(t *testing.T) {
	// GRA is seeded with SRA solutions and is elitist, so it can never end
	// below the best seed.
	for seed := uint64(1); seed <= 4; seed++ {
		p := gen(t, 12, 15, 0.10, 0.15, seed)
		sraRes := sra.Run(p, sra.Options{})
		graRes, err := Run(p, smallParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		// Compare against round-robin SRA; GRA's random-order seeds may
		// differ slightly, so allow equality with the best of both.
		if graRes.Cost > sraRes.Scheme.Cost() {
			slack := float64(graRes.Cost) / float64(sraRes.Scheme.Cost())
			if slack > 1.02 {
				t.Fatalf("seed %d: GRA cost %d much worse than SRA %d", seed, graRes.Cost, sraRes.Scheme.Cost())
			}
		}
	}
}

func TestHistoryMonotoneBestFitness(t *testing.T) {
	p := gen(t, 10, 12, 0.05, 0.15, 5)
	res, err := Run(p, smallParams(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != smallParams(13).Generations+1 {
		t.Fatalf("history length %d", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].BestFitness < res.History[i-1].BestFitness {
			t.Fatalf("best fitness regressed at generation %d", i)
		}
	}
	if res.History[len(res.History)-1].BestFitness != res.Fitness {
		t.Fatal("final history entry does not match result fitness")
	}
}

func TestRunWithPopulation(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 6)
	cur := core.NewScheme(p)
	init := SeedSRA(p, 4, xrand.New(1))
	init = append(init, cur.Bits())
	params := smallParams(17)
	res, err := RunWithPopulation(p, params, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	// Elitism guarantees we never fall below the best seed chromosome.
	ev := core.NewEvaluator(p)
	bestSeed := ev.Cost(init[0])
	for _, bits := range init[1:] {
		if c := ev.Cost(bits); c < bestSeed {
			bestSeed = c
		}
	}
	if res.Cost > bestSeed {
		t.Fatalf("result cost %d worse than best seed %d", res.Cost, bestSeed)
	}
}

func TestRunWithPopulationRejectsBadInput(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 7)
	if _, err := RunWithPopulation(p, smallParams(1), nil); err == nil {
		t.Fatal("empty population accepted")
	}
	wrong := SeedSRA(gen(t, 6, 5, 0.05, 0.15, 8), 2, xrand.New(2))
	if _, err := RunWithPopulation(p, smallParams(1), wrong); err == nil {
		t.Fatal("wrong-length chromosomes accepted")
	}
}

func TestSeedSRAProducesValidChromosomes(t *testing.T) {
	p := gen(t, 10, 12, 0.05, 0.15, 9)
	pop := SeedSRA(p, 10, xrand.New(3))
	if len(pop) != 10 {
		t.Fatalf("seed population size %d", len(pop))
	}
	for i, bits := range pop {
		if _, err := core.SchemeFromBits(p, bits); err != nil {
			t.Fatalf("seed chromosome %d invalid: %v", i, err)
		}
	}
}

func TestPerturbKeepsValidity(t *testing.T) {
	p := gen(t, 10, 12, 0.05, 0.15, 10)
	for trial := uint64(0); trial < 5; trial++ {
		s := core.NewScheme(p)
		Perturb(s, 0.25, xrand.New(trial))
		if err := s.Validate(); err != nil {
			t.Fatalf("perturbed scheme invalid: %v", err)
		}
	}
}

func TestZeroGenerationsReturnsBestSeed(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 11)
	params := smallParams(19)
	params.Generations = 0
	res, err := Run(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 1 {
		t.Fatalf("history length %d, want 1", len(res.History))
	}
}

func TestCrossoverRepairChecksEveryGeneration(t *testing.T) {
	// Run with aggressive crossover and mutation on a tight-capacity
	// problem; every chromosome of the final population must be valid.
	p := gen(t, 10, 15, 0.05, 0.08, 12)
	params := smallParams(23)
	params.CrossoverRate = 1.0
	params.MutationRate = 0.05
	res, err := Run(p, params)
	if err != nil {
		t.Fatal(err)
	}
	for i, bits := range res.Population {
		if _, err := core.SchemeFromBits(p, bits); err != nil {
			t.Fatalf("final chromosome %d invalid: %v", i, err)
		}
	}
}
