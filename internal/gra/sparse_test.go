package gra

import (
	"context"
	"strings"
	"testing"

	"drp/internal/solver"
)

func sparseParams(seed uint64) Params {
	p := smallParams(seed)
	p.Sparse = true
	return p
}

func TestSparseRunProducesValidScheme(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 2)
	res, err := Run(p, sparseParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparse {
		t.Fatal("Result.Sparse not set by the sparse core")
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := res.Scheme.Cost(); c != res.Cost {
		t.Fatalf("reported cost %d but scheme evaluates to %d", res.Cost, c)
	}
	if res.Cost > p.DPrime() {
		t.Fatalf("sparse cost %d exceeds no-replication D′ %d", res.Cost, p.DPrime())
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
	if len(res.History) != 1 {
		t.Fatalf("sparse history has %d entries, want 1", len(res.History))
	}
	if res.Population != nil {
		t.Fatal("sparse run retained a population")
	}
}

func TestSparseShardDeterminism(t *testing.T) {
	p := gen(t, 12, 20, 0.05, 0.15, 3)
	var ref *Result
	for _, shards := range []int{1, 2, 8} {
		params := sparseParams(11)
		params.Shards = shards
		res, err := RunWith(p, params, solver.Run{})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Cost != ref.Cost {
			t.Fatalf("shards %d: cost %d != %d", shards, res.Cost, ref.Cost)
		}
		if !res.Scheme.Equal(ref.Scheme) {
			t.Fatalf("shards %d: scheme differs from single-shard run", shards)
		}
		if res.Evaluations != ref.Evaluations {
			t.Fatalf("shards %d: evaluations %d != %d", shards, res.Evaluations, ref.Evaluations)
		}
	}
}

func TestSparseAutoThreshold(t *testing.T) {
	p := gen(t, 6, 6, 0.05, 0.15, 4) // M·N = 36
	below := smallParams(5)
	below.SparseAuto = 37
	res, err := Run(p, below)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparse {
		t.Fatal("auto-threshold 37 flipped a 36-entry instance to sparse")
	}
	at := smallParams(5)
	at.SparseAuto = 36
	res, err = Run(p, at)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparse {
		t.Fatal("auto-threshold 36 left a 36-entry instance dense")
	}
}

func TestSparseContinueRejected(t *testing.T) {
	p := gen(t, 6, 6, 0.05, 0.15, 6)
	_, err := ContinueWith(p, sparseParams(1), nil, solver.Run{})
	if err == nil {
		t.Fatal("ContinueWith accepted sparse params")
	}
	if !strings.Contains(err.Error(), "population-free") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSparseBudget(t *testing.T) {
	p := gen(t, 10, 30, 0.05, 0.15, 8)
	res, err := RunWith(p, sparseParams(2), solver.Run{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stopped != solver.StopBudget {
		t.Fatalf("stopped %v, want budget", res.Stats.Stopped)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := res.Scheme.Cost(); c != res.Cost {
		t.Fatalf("interrupted run reported cost %d but scheme evaluates to %d", res.Cost, c)
	}
}

func TestSparseCancelled(t *testing.T) {
	p := gen(t, 10, 30, 0.05, 0.15, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunWith(p, sparseParams(2), solver.Run{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stopped != solver.StopCancelled {
		t.Fatalf("stopped %v, want cancelled", res.Stats.Stopped)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseParamsValidation(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 1)
	neg := smallParams(1)
	neg.SparseAuto = -1
	if _, err := Run(p, neg); err == nil {
		t.Fatal("negative SparseAuto accepted")
	}
	neg = smallParams(1)
	neg.Shards = -2
	if _, err := Run(p, neg); err == nil {
		t.Fatal("negative Shards accepted")
	}
}
