package cluster

import (
	"bytes"
	"strings"

	"testing"

	"drp/internal/agra"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/sra"
	"drp/internal/workload"
)

func gen(t testing.TB, m, n int, u, c float64, seed uint64) *core.Problem {
	t.Helper()
	p, err := workload.Generate(workload.NewSpec(m, n, u, c), seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testConfig(policy Policy) Config {
	graParams := gra.DefaultParams()
	graParams.PopSize = 10
	graParams.Generations = 8
	agraParams := agra.DefaultParams()
	agraParams.PopSize = 6
	agraParams.Generations = 10
	return Config{
		Epochs:     3,
		Policy:     policy,
		Threshold:  2.0,
		GRAParams:  graParams,
		AGRAParams: agraParams,
		Seed:       7,
	}
}

// TestMeasuredNTCEqualsEq4 is the end-to-end validation of the cost model:
// serving exactly the measurement period's traffic through the simulator's
// mechanical policy (nearest-replica reads, primary-copy write broadcasts)
// must cost exactly what eq. 4 predicts.
func TestMeasuredNTCEqualsEq4(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		p := gen(t, 10, 15, 0.10, 0.20, seed)
		scheme := sra.Run(p, sra.Options{}).Scheme
		cfg := testConfig(PolicyNone)
		cfg.Epochs = 1
		res, err := Run(p, scheme, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e := res.Epochs[0]
		if e.ServeNTC != e.ModelNTC {
			t.Fatalf("seed %d: measured NTC %d != eq.4 prediction %d", seed, e.ServeNTC, e.ModelNTC)
		}
		if e.ModelNTC != scheme.Cost() {
			t.Fatalf("seed %d: model NTC %d != scheme cost %d", seed, e.ModelNTC, scheme.Cost())
		}
		wantReads, wantWrites := int64(0), int64(0)
		for k := 0; k < p.Objects(); k++ {
			wantReads += p.TotalReads(k)
			wantWrites += p.TotalWrites(k)
		}
		if e.Reads != wantReads || e.Writes != wantWrites {
			t.Fatalf("seed %d: served %d/%d requests, want %d/%d", seed, e.Reads, e.Writes, wantReads, wantWrites)
		}
	}
}

func TestNilInitialSchemeMeansPrimariesOnly(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 2)
	cfg := testConfig(PolicyNone)
	cfg.Epochs = 1
	res, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].ServeNTC != p.DPrime() {
		t.Fatalf("primaries-only serve cost %d != D' %d", res.Epochs[0].ServeNTC, p.DPrime())
	}
	if res.Epochs[0].Savings != 0 {
		t.Fatalf("primaries-only savings %v", res.Epochs[0].Savings)
	}
}

func TestPolicyNoneStableAcrossEpochs(t *testing.T) {
	p := gen(t, 8, 12, 0.05, 0.15, 3)
	scheme := sra.Run(p, sra.Options{}).Scheme
	res, err := Run(p, scheme, testConfig(PolicyNone))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("%d epochs", len(res.Epochs))
	}
	for _, e := range res.Epochs {
		if e.ServeNTC != res.Epochs[0].ServeNTC {
			t.Fatal("static patterns + static scheme should cost the same every epoch")
		}
		if e.Migrations != 0 {
			t.Fatal("PolicyNone migrated replicas")
		}
	}
	if !res.FinalScheme.Equal(scheme) {
		t.Fatal("PolicyNone changed the scheme")
	}
}

func TestDriftDegradesStaleScheme(t *testing.T) {
	p := gen(t, 12, 20, 0.05, 0.15, 4)
	scheme := sra.Run(p, sra.Options{}).Scheme
	cfg := testConfig(PolicyNone)
	cfg.Epochs = 4
	cfg.Drift = &workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.0}
	res, err := Run(p, scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Epochs[0], res.Epochs[len(res.Epochs)-1]
	if last.Savings >= first.Savings {
		t.Fatalf("update-heavy drift did not degrade the stale scheme: %.2f%% -> %.2f%%", first.Savings, last.Savings)
	}
}

func TestAGRAPolicyBeatsNoneUnderDrift(t *testing.T) {
	p := gen(t, 12, 20, 0.05, 0.15, 5)
	scheme := sra.Run(p, sra.Options{}).Scheme
	drift := &workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.5}

	run := func(policy Policy) *Result {
		cfg := testConfig(policy)
		cfg.Epochs = 4
		cfg.Drift = drift
		res, err := Run(p, scheme.Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(PolicyNone)
	adaptive := run(PolicyAGRAMini)

	// Compare the last epoch's serving cost: the adaptive monitor must be
	// at least as good (drift is identical thanks to shared seeds).
	sLast := static.Epochs[len(static.Epochs)-1]
	aLast := adaptive.Epochs[len(adaptive.Epochs)-1]
	if aLast.ServeNTC > sLast.ServeNTC {
		t.Fatalf("adaptive serving cost %d worse than static %d", aLast.ServeNTC, sLast.ServeNTC)
	}
	if adaptive.Epochs[1].Changed == 0 {
		t.Fatal("monitor detected no pattern changes despite 30% drift at Ch=600%")
	}
	if adaptive.Epochs[1].Migrations == 0 {
		t.Fatal("adaptation did not migrate any replicas")
	}
}

func TestPolicySRAAdaptsEveryEpoch(t *testing.T) {
	p := gen(t, 10, 15, 0.02, 0.15, 6)
	res, err := Run(p, nil, testConfig(PolicySRA))
	if err != nil {
		t.Fatal(err)
	}
	// SRA runs before epoch 0, so the first epoch is already optimised.
	if res.Epochs[0].Savings <= 0 {
		t.Fatalf("SRA policy savings %.2f%% at epoch 0", res.Epochs[0].Savings)
	}
	if res.Epochs[0].Migrations == 0 {
		t.Fatal("SRA policy placed no replicas")
	}
}

func TestPolicyGRARuns(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 7)
	cfg := testConfig(PolicyGRA)
	cfg.Epochs = 2
	res, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].Savings <= 0 {
		t.Fatalf("GRA policy savings %.2f%%", res.Epochs[0].Savings)
	}
	if err := res.FinalScheme.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailureRoutesAroundDownSite(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.30, 8)
	scheme := sra.Run(p, sra.Options{}).Scheme
	// Find a site that holds a non-primary replica, so reads reroute.
	victim := -1
	for i := 0; i < p.Sites() && victim < 0; i++ {
		for k := 0; k < p.Objects(); k++ {
			if scheme.Has(i, k) && p.Primary(k) != i {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		t.Skip("no non-primary replicas to fail")
	}
	cfg := testConfig(PolicyNone)
	cfg.Epochs = 2
	cfg.Failures = []Failure{{Site: victim, From: 1, To: 2}}
	res, err := Run(p, scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	healthy, failed := res.Epochs[0], res.Epochs[1]
	if failed.ServeNTC <= healthy.ServeNTC {
		t.Fatalf("failing site %d did not raise serving cost: %d <= %d", victim, failed.ServeNTC, healthy.ServeNTC)
	}
	// Reads of objects primared at the victim fail outright.
	primaried := false
	for k := 0; k < p.Objects(); k++ {
		if p.Primary(k) == victim {
			primaried = true
		}
	}
	if primaried && failed.FailedWrites == 0 {
		t.Fatal("writes to a down primary were not recorded as failed")
	}
}

func TestFailedPrimaryWithSoleReplicaFailsReads(t *testing.T) {
	p := gen(t, 6, 8, 0.05, 0.15, 9)
	// Primaries-only scheme: failing any primary site must fail that
	// object's reads entirely.
	cfg := testConfig(PolicyNone)
	cfg.Epochs = 1
	cfg.Failures = []Failure{{Site: p.Primary(0), From: 0, To: 1}}
	res, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].FailedReads == 0 {
		t.Fatal("no failed reads despite the only replica being down")
	}
}

func TestConfigValidation(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 10)
	bad := []Config{
		{Epochs: 0, Policy: PolicyNone},
		{Epochs: 1, Policy: Policy(0)},
		{Epochs: 1, Policy: PolicyNone, Threshold: -1},
		{Epochs: 1, Policy: PolicyNone, Failures: []Failure{{Site: 9, From: 0, To: 1}}},
		{Epochs: 1, Policy: PolicyNone, Failures: []Failure{{Site: 0, From: 2, To: 1}}},
	}
	for i, cfg := range bad {
		if _, err := Run(p, nil, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		PolicyNone: "none", PolicySRA: "sra", PolicyAGRA: "agra",
		PolicyAGRAMini: "agra+mini", PolicyGRA: "gra",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy produced empty string")
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 11)
	cfg := testConfig(PolicyAGRA)
	cfg.Drift = &workload.ChangeSpec{Ch: 3, ObjectShare: 0.2, ReadShare: 0.5}
	a, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].ServeNTC != b.Epochs[i].ServeNTC {
			t.Fatalf("epoch %d diverged between identical runs", i)
		}
	}
}

func TestResultTotals(t *testing.T) {
	p := gen(t, 8, 10, 0.05, 0.15, 12)
	res, err := Run(p, nil, testConfig(PolicySRA))
	if err != nil {
		t.Fatal(err)
	}
	var serve, all int64
	for _, e := range res.Epochs {
		serve += e.ServeNTC
		all += e.ServeNTC + e.MigrationNTC
	}
	if res.TotalServeNTC() != serve || res.TotalNTC() != all {
		t.Fatal("totals do not match epoch sums")
	}
}

func TestReadCostPercentiles(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.20, 13)
	scheme := sra.Run(p, sra.Options{}).Scheme
	cfg := testConfig(PolicyNone)
	cfg.Epochs = 1
	res, err := Run(p, scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Epochs[0]
	if e.ReadCostP50 > e.ReadCostP95 || e.ReadCostP95 > e.ReadCostMax {
		t.Fatalf("percentiles out of order: p50=%d p95=%d max=%d", e.ReadCostP50, e.ReadCostP95, e.ReadCostMax)
	}
	if float64(e.ReadCostP50) > e.MeanReadCost*3 && e.MeanReadCost > 0 {
		t.Fatalf("p50 %d implausibly above mean %.1f", e.ReadCostP50, e.MeanReadCost)
	}
	if e.ReadCostMax == 0 {
		t.Fatal("max read cost is zero despite remote reads")
	}
}

func TestCostHist(t *testing.T) {
	h := newCostHist()
	if h.percentile(0.5) != 0 || h.max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, v := range []int64{1, 1, 2, 3, 10} {
		h.add(v)
	}
	if got := h.percentile(0.5); got != 2 {
		t.Fatalf("p50 = %d, want 2", got)
	}
	if got := h.percentile(1.0); got != 10 {
		t.Fatalf("p100 = %d, want 10", got)
	}
	if got := h.percentile(0.2); got != 1 {
		t.Fatalf("p20 = %d, want 1", got)
	}
	if h.max() != 10 {
		t.Fatalf("max = %d", h.max())
	}
}

func TestCompareRanksPolicies(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 14)
	initial := sra.Run(p, sra.Options{}).Scheme
	cfg := testConfig(PolicyNone)
	cfg.Epochs = 3
	cfg.Drift = &workload.ChangeSpec{Ch: 5, ObjectShare: 0.25, ReadShare: 0.6}
	cmp, err := Compare(p, initial, cfg, []Policy{PolicyNone, PolicyAGRAMini})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Reports) != 2 {
		t.Fatalf("%d reports", len(cmp.Reports))
	}
	frozen, adaptive := cmp.Reports[0], cmp.Reports[1]
	if adaptive.TotalServeNTC > frozen.TotalServeNTC {
		t.Fatalf("adaptive served for %d, frozen for %d", adaptive.TotalServeNTC, frozen.TotalServeNTC)
	}
	if frozen.AdaptTime != 0 {
		t.Fatal("frozen policy reported adaptation time")
	}
}

func TestCompareValidation(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 15)
	if _, err := Compare(p, nil, testConfig(PolicyNone), nil); err == nil {
		t.Fatal("empty policy list accepted")
	}
}

func TestComparisonRender(t *testing.T) {
	p := gen(t, 6, 8, 0.05, 0.15, 16)
	cfg := testConfig(PolicyNone)
	cfg.Epochs = 1
	cmp, err := Compare(p, nil, cfg, []Policy{PolicyNone, PolicySRA})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cmp.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "none") || !strings.Contains(out, "sra") {
		t.Fatalf("comparison table missing policies:\n%s", out)
	}
}
