package cluster

import (
	"bytes"
	"testing"

	"drp/internal/core"
	"drp/internal/membership"
	"drp/internal/netsim"
	"drp/internal/plan"
	"drp/internal/store"
)

// controlProblem builds a 5-site universe whose primaries live on sites
// 0..3 and where object 1 has no demand at site 4 — so a join of site 4
// must leave object 1's placement untouched when the mini polish is off.
func controlProblem(t *testing.T) *core.Problem {
	t.Helper()
	topo := netsim.NewTopology(5)
	for _, l := range [][3]int64{{0, 1, 2}, {1, 2, 1}, {2, 3, 2}, {3, 4, 1}} {
		if err := topo.AddLink(int(l[0]), int(l[1]), l[2]); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(core.Config{
		Sizes:      []int64{4, 3, 2, 5},
		Capacities: []int64{14, 14, 14, 14, 14},
		Primaries:  []int{0, 1, 2, 3},
		Reads: [][]int64{
			{36, 8, 4, 0},
			{12, 32, 8, 4},
			{4, 12, 28, 8},
			{0, 4, 12, 36},
			{24, 0, 8, 28},
		},
		Writes: [][]int64{
			{2, 0, 1, 0},
			{0, 2, 0, 1},
			{1, 0, 2, 0},
			{0, 1, 0, 2},
			{1, 0, 1, 1},
		},
		Dist: dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newControlPlane(t *testing.T, p *core.Problem, journal *store.Journal) (*ControlPlane, *membership.Tracker) {
	t.Helper()
	tr, err := membership.NewTracker(netsim.Complete(p.Dist()), []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewControlPlane(p, tr, ControlOptions{MiniGenerations: -1, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	return cp, tr
}

// TestControlPlaneEmitsPlanPerView drives a join and a leave through the
// tracker and checks the control plane's reactions: one valid plan per
// view in epoch order, incremental adaptation (an object without demand
// at the joined site keeps its placement), deterministic primary
// reassignment off the departed site, and journal persistence of the
// latest plan.
func TestControlPlaneEmitsPlanPerView(t *testing.T) {
	p := controlProblem(t)
	dir := t.TempDir()
	j, err := store.OpenJournal(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, tr := newControlPlane(t, p, j)

	first := cp.Plan()
	if first.Epoch != 1 {
		t.Fatalf("founding plan has epoch %d, want 1", first.Epoch)
	}
	if err := first.Validate(p); err != nil {
		t.Fatal(err)
	}
	if first.View.Has(4) {
		t.Fatal("founding plan includes the absent site")
	}

	var emitted []*plan.Plan
	cp.Subscribe(func(pl *plan.Plan) { emitted = append(emitted, pl) })
	cp.Bind()

	// Join: site 4 enters; only objects with demand there may move.
	if _, err := tr.JoinSite(4); err != nil {
		t.Fatal(err)
	}
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 {
		t.Fatalf("join emitted %d plans", len(emitted))
	}
	joinPlan := emitted[0]
	if joinPlan.Epoch != 2 || !joinPlan.View.Has(4) {
		t.Fatalf("join plan epoch %d view %v", joinPlan.Epoch, joinPlan.View.Members)
	}
	if err := joinPlan.Validate(p); err != nil {
		t.Fatal(err)
	}
	if got, want := joinPlan.Placement[1], first.Placement[1]; len(got) != len(want) {
		t.Fatalf("object 1 (no demand at site 4) moved: %v -> %v", want, got)
	} else {
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("object 1 (no demand at site 4) moved: %v -> %v", want, got)
			}
		}
	}

	// Leave: site 0 departs; its primary (object 0) must land on site 1,
	// the nearest survivor with capacity, and nothing may remain on 0.
	if _, err := tr.LeaveSite(0); err != nil {
		t.Fatal(err)
	}
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 2 {
		t.Fatalf("leave emitted %d plans total", len(emitted))
	}
	leavePlan := emitted[1]
	if leavePlan.Epoch != 3 || leavePlan.View.Has(0) {
		t.Fatalf("leave plan epoch %d view %v", leavePlan.Epoch, leavePlan.View.Members)
	}
	if err := leavePlan.Validate(p); err != nil {
		t.Fatal(err)
	}
	if got := leavePlan.Primaries[0]; got != 1 {
		t.Fatalf("primary of object 0 reassigned to %d, want nearest survivor 1", got)
	}
	for k := 0; k < p.Objects(); k++ {
		if leavePlan.Has(0, k) {
			t.Fatalf("leave plan still places object %d on the departed site", k)
		}
	}

	// The journal holds the latest emitted plan, recoverable cold.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenJournal(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	epoch, data, ok := r.LatestPlan()
	if !ok || epoch != 3 {
		t.Fatalf("journal LatestPlan epoch %d ok %v", epoch, ok)
	}
	want, err := leavePlan.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("journaled plan differs from emitted:\n  %s\n  %s", data, want)
	}
}

// TestControlPlaneDeterministic replays the same membership history
// through two independent control planes and requires identical plans.
func TestControlPlaneDeterministic(t *testing.T) {
	p := controlProblem(t)
	run := func() []*plan.Plan {
		cp, tr := newControlPlane(t, p, nil)
		var plans []*plan.Plan
		cp.Subscribe(func(pl *plan.Plan) { plans = append(plans, pl) })
		cp.Bind()
		plans = append(plans, cp.Plan())
		if _, err := tr.JoinSite(4); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.LeaveSite(2); err != nil {
			t.Fatal(err)
		}
		if err := cp.Err(); err != nil {
			t.Fatal(err)
		}
		return plans
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs emitted %d vs %d plans", len(a), len(b))
	}
	for i := range a {
		if a[i].Fingerprint() != b[i].Fingerprint() {
			t.Fatalf("plan %d diverged across identical replays:\n  %s\n  %s", i, a[i].Fingerprint(), b[i].Fingerprint())
		}
	}
}

// TestControlPlaneCapacityAwareReassignment pins the reassignment rule:
// when the nearest survivor has no primary capacity left, the next
// nearest takes the primary.
func TestControlPlaneCapacityAwareReassignment(t *testing.T) {
	topo := netsim.NewTopology(3)
	if err := topo.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	dist, err := topo.Distances()
	if err != nil {
		t.Fatal(err)
	}
	// Site 1 is nearest to site 0 but its capacity is consumed by its own
	// primary (object 1, size 4 of 4); site 2 has room.
	p, err := core.NewProblem(core.Config{
		Sizes:      []int64{3, 4},
		Capacities: []int64{7, 4, 7},
		Primaries:  []int{0, 1},
		Reads:      [][]int64{{5, 1}, {1, 5}, {2, 2}},
		Writes:     [][]int64{{1, 0}, {0, 1}, {1, 1}},
		Dist:       dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := membership.NewTracker(netsim.Complete(p.Dist()), []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewControlPlane(p, tr, ControlOptions{MiniGenerations: -1})
	if err != nil {
		t.Fatal(err)
	}
	cp.Bind()
	if _, err := tr.LeaveSite(0); err != nil {
		t.Fatal(err)
	}
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if got := cp.Primaries()[0]; got != 2 {
		t.Fatalf("object 0's primary went to site %d, want capacity-feasible site 2", got)
	}
}
