package cluster

import "sort"

// costHist accumulates per-read transfer costs so percentiles can be
// reported without retaining every sample. Costs are small integers
// (size × hop-cost), so a sparse map keeps memory bounded by the number of
// distinct values.
type costHist struct {
	counts map[int64]int64
	total  int64
}

func newCostHist() *costHist {
	return &costHist{counts: make(map[int64]int64)}
}

func (h *costHist) add(cost int64) {
	h.counts[cost]++
	h.total++
}

// percentile returns the smallest cost c such that at least q (0..1) of
// the samples are ≤ c. Zero samples yield 0.
func (h *costHist) percentile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	keys := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	threshold := int64(q*float64(h.total) + 0.5)
	if threshold < 1 {
		threshold = 1
	}
	var seen int64
	for _, k := range keys {
		seen += h.counts[k]
		if seen >= threshold {
			return k
		}
	}
	return keys[len(keys)-1]
}

func (h *costHist) max() int64 {
	var m int64
	for k := range h.counts {
		if k > m {
			m = k
		}
	}
	return m
}
