package cluster

import (
	"testing"

	"drp/internal/solver"
	"drp/internal/sra"
	"drp/internal/workload"
)

// TestEpochDeadlineMissKeepsServingCurrentScheme exercises the monitor's
// graceful degradation: an epoch re-optimisation that blows its deadline is
// discarded, the epoch is served under the unchanged current scheme (so NTC
// accounting stays consistent with eq. 4), no migrations are charged, and
// the miss is recorded in the epoch's stats.
func TestEpochDeadlineMissKeepsServingCurrentScheme(t *testing.T) {
	p := gen(t, 12, 20, 0.05, 0.15, 21)
	initial := sra.Run(p, sra.Options{}).Scheme
	cfg := testConfig(PolicyAGRAMini)
	cfg.Epochs = 4
	cfg.Drift = &workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.5}
	cfg.EpochTimeout = 1 // one nanosecond: every adaptation misses

	res, err := Run(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for i, e := range res.Epochs {
		// Epoch 0 never adapts under the AGRA policies; later epochs see
		// drift, detect changes and then miss the deadline.
		if i > 0 && e.Changed > 0 {
			if !e.AdaptDegraded {
				t.Fatalf("epoch %d adapted despite a 1ns deadline", i)
			}
			if e.AdaptStopped != solver.StopDeadline {
				t.Fatalf("epoch %d stopped %v, want deadline", i, e.AdaptStopped)
			}
			misses++
		}
		if e.AdaptDegraded && e.Migrations != 0 {
			t.Fatalf("epoch %d migrated %d replicas on a degraded adaptation", i, e.Migrations)
		}
		// The simulator serves exactly the traffic eq. 4 models, so the
		// measured cost must match the current scheme's model cost whether
		// or not the adaptation was discarded.
		if e.ServeNTC != e.ModelNTC {
			t.Fatalf("epoch %d: measured NTC %d != eq.4 prediction %d", i, e.ServeNTC, e.ModelNTC)
		}
	}
	if misses == 0 {
		t.Fatal("no epoch detected changes; the degradation path was not exercised")
	}
	// Every adaptation was discarded, so the placement never changed. The
	// final scheme is rebound onto the drifted problem, so compare bits.
	if !res.FinalScheme.Bits().Equal(initial.Bits()) {
		t.Fatal("degraded monitor changed the serving scheme")
	}
}

// The same scenario without the deadline must actually adapt: migrations
// happen and the scheme moves. This pins down that the degradation above
// comes from the cap, not from the monitor being inert.
func TestEpochDeadlineCapIsTheOnlyDifference(t *testing.T) {
	p := gen(t, 12, 20, 0.05, 0.15, 22)
	initial := sra.Run(p, sra.Options{}).Scheme
	cfg := testConfig(PolicyAGRAMini)
	cfg.Epochs = 3
	cfg.Drift = &workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.5}

	free, err := Run(p, initial.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EpochTimeout = 1
	capped, err := Run(p, initial.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var freeMigrations int
	for _, e := range free.Epochs {
		if e.AdaptDegraded {
			t.Fatal("uncapped run degraded")
		}
		freeMigrations += e.Migrations
	}
	if freeMigrations == 0 {
		t.Skip("drift never triggered an adaptation; nothing to compare")
	}
	if !capped.FinalScheme.Bits().Equal(initial.Bits()) {
		t.Fatal("capped run changed the scheme despite missing every deadline")
	}
	if free.FinalScheme.Bits().Equal(initial.Bits()) {
		t.Fatal("uncapped run never changed the scheme")
	}
}

// With an evaluation budget instead of a deadline the same degradation
// applies, reported as StopBudget.
func TestAdaptBudgetMissRecorded(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 23)
	cfg := testConfig(PolicySRA)
	cfg.Epochs = 2
	cfg.AdaptBudget = 1
	res, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Epochs {
		if !e.AdaptDegraded || e.AdaptStopped != solver.StopBudget {
			t.Fatalf("epoch %d: degraded=%v stopped=%v, want budget miss", i, e.AdaptDegraded, e.AdaptStopped)
		}
		if e.AdaptEvaluations == 0 {
			t.Fatalf("epoch %d recorded no evaluations", i)
		}
	}
	// SRA never completed, so the cluster keeps serving primaries-only.
	if res.Epochs[0].ServeNTC != p.DPrime() {
		t.Fatalf("degraded SRA epoch served %d, want D' %d", res.Epochs[0].ServeNTC, p.DPrime())
	}
}

// Unbounded configs must behave exactly as before the runtime existed.
func TestAdaptUnboundedCompletes(t *testing.T) {
	p := gen(t, 10, 15, 0.05, 0.15, 24)
	cfg := testConfig(PolicySRA)
	cfg.Epochs = 1
	res, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Epochs[0]
	if e.AdaptDegraded || e.AdaptStopped != solver.StopCompleted {
		t.Fatalf("unbounded adaptation degraded: %+v", e)
	}
	if e.AdaptEvaluations == 0 {
		t.Fatal("adaptation accounting missing")
	}
}

// TestPolicyGRADeadlineDegradesEveryEpochDeterministically pins the exact
// degradation count: PolicyGRA re-optimises every epoch unconditionally (no
// change detector in the way), so a 1ns deadline degrades all Epochs epochs
// — no more, no less — and two identical runs degrade identically, serving
// the untouched initial scheme throughout with zero migrations charged.
func TestPolicyGRADeadlineDegradesEveryEpochDeterministically(t *testing.T) {
	p := gen(t, 12, 20, 0.05, 0.15, 26)
	cfg := testConfig(PolicyGRA)
	cfg.Epochs = 3
	cfg.EpochTimeout = 1

	runOnce := func() *Result {
		t.Helper()
		res, err := Run(p, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := runOnce(), runOnce()

	for _, res := range []*Result{first, second} {
		degraded := 0
		for i, e := range res.Epochs {
			if !e.AdaptDegraded {
				t.Fatalf("epoch %d completed a GRA run inside 1ns", i)
			}
			degraded++
			if e.AdaptStopped != solver.StopDeadline {
				t.Fatalf("epoch %d stopped %v, want deadline", i, e.AdaptStopped)
			}
			if e.Migrations != 0 || e.MigrationNTC != 0 {
				t.Fatalf("epoch %d charged %d migrations (NTC %d) on a degraded adaptation",
					i, e.Migrations, e.MigrationNTC)
			}
			// No drift is configured, so the kept scheme is primaries-only
			// (nil initial) and every epoch serves at exactly D′.
			if e.ServeNTC != p.DPrime() {
				t.Fatalf("epoch %d served NTC %d, want D′ %d", i, e.ServeNTC, p.DPrime())
			}
		}
		if degraded != cfg.Epochs {
			t.Fatalf("degraded %d epochs, want exactly %d", degraded, cfg.Epochs)
		}
		if extra := res.FinalScheme.TotalReplicas(); extra != 0 {
			t.Fatalf("degraded monitor grew the scheme by %d replicas beyond the primaries", extra)
		}
	}
	for i := range first.Epochs {
		a, b := first.Epochs[i], second.Epochs[i]
		if a.AdaptDegraded != b.AdaptDegraded || a.ServeNTC != b.ServeNTC || a.Migrations != b.Migrations {
			t.Fatalf("epoch %d diverged across identical runs: %+v vs %+v", i, a, b)
		}
	}
}

func TestNegativeCapsRejected(t *testing.T) {
	p := gen(t, 5, 5, 0.05, 0.15, 25)
	bad := testConfig(PolicyNone)
	bad.EpochTimeout = -1
	if _, err := Run(p, nil, bad); err == nil {
		t.Fatal("negative epoch timeout accepted")
	}
	bad = testConfig(PolicyNone)
	bad.AdaptBudget = -1
	if _, err := Run(p, nil, bad); err == nil {
		t.Fatal("negative adapt budget accepted")
	}
}
