package cluster

import (
	"strings"
	"testing"

	"drp/internal/metrics"
	"drp/internal/sra"
	"drp/internal/workload"
)

// TestEpochMetricsMatchResult pins the instrument wiring: every counter the
// simulation records must agree with the EpochStats the caller already
// gets, and the read/write NTC split must tile ServeNTC exactly.
func TestEpochMetricsMatchResult(t *testing.T) {
	p := gen(t, 10, 15, 0.10, 0.20, 3)
	initial := sra.Run(p, sra.Options{}).Scheme
	cfg := testConfig(PolicyAGRAMini)
	cfg.Drift = &workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.5}
	reg := metrics.NewRegistry()
	var events strings.Builder
	cfg.Metrics = reg
	cfg.Events = metrics.NewEventLog(&events)

	res, err := Run(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var reads, writes, serveNTC, migrationNTC int64
	var migrations int
	for _, e := range res.Epochs {
		reads += e.Reads
		writes += e.Writes
		serveNTC += e.ServeNTC
		migrationNTC += e.MigrationNTC
		migrations += e.Migrations
		if e.ReadNTC+e.WriteNTC != e.ServeNTC {
			t.Fatalf("epoch %d: ReadNTC %d + WriteNTC %d != ServeNTC %d", e.Epoch, e.ReadNTC, e.WriteNTC, e.ServeNTC)
		}
	}

	counter := func(name string, labels metrics.Labels) int64 {
		return reg.Counter(name, "", labels).Value()
	}
	if got := counter("drp_cluster_epochs_total", nil); got != int64(len(res.Epochs)) {
		t.Errorf("epochs counter = %d, want %d", got, len(res.Epochs))
	}
	if got := counter("drp_cluster_requests_total", metrics.Labels{"op": "read"}); got != reads {
		t.Errorf("read requests counter = %d, want %d", got, reads)
	}
	if got := counter("drp_cluster_requests_total", metrics.Labels{"op": "write"}); got != writes {
		t.Errorf("write requests counter = %d, want %d", got, writes)
	}
	gotServe := counter("drp_cluster_serve_ntc_total", metrics.Labels{"op": "read"}) +
		counter("drp_cluster_serve_ntc_total", metrics.Labels{"op": "write"})
	if gotServe != serveNTC {
		t.Errorf("serve NTC counters = %d, want %d", gotServe, serveNTC)
	}
	if got := counter("drp_cluster_migrations_total", nil); got != int64(migrations) {
		t.Errorf("migrations counter = %d, want %d", got, migrations)
	}
	if got := counter("drp_cluster_migration_ntc_total", nil); got != migrationNTC {
		t.Errorf("migration NTC counter = %d, want %d", got, migrationNTC)
	}
	if got := counter("drp_cluster_degraded_epochs_total", nil); got != int64(res.DegradedEpochs()) {
		t.Errorf("degraded counter = %d, want %d", got, res.DegradedEpochs())
	}

	if got := strings.Count(events.String(), `"event":"cluster.epoch"`); got != len(res.Epochs) {
		t.Errorf("event log has %d cluster.epoch lines, want %d:\n%s", got, len(res.Epochs), events.String())
	}

	// Result aggregate helpers agree with the per-epoch sums.
	if res.TotalMigrations() != migrations || res.TotalMigrationNTC() != migrationNTC {
		t.Errorf("Result totals (%d, %d) disagree with epoch sums (%d, %d)",
			res.TotalMigrations(), res.TotalMigrationNTC(), migrations, migrationNTC)
	}
}

// TestInstrumentedRunMatchesBareRun pins the zero-feedback guarantee: the
// same seeded simulation with and without telemetry produces identical
// epoch statistics.
func TestInstrumentedRunMatchesBareRun(t *testing.T) {
	p := gen(t, 8, 12, 0.10, 0.20, 9)
	initial := sra.Run(p, sra.Options{}).Scheme
	cfg := testConfig(PolicyAGRAMini)
	cfg.Drift = &workload.ChangeSpec{Ch: 6, ObjectShare: 0.3, ReadShare: 0.5}

	bare, err := Run(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = metrics.NewRegistry()
	var events strings.Builder
	cfg.Events = metrics.NewEventLog(&events)
	instrumented, err := Run(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Epochs) != len(instrumented.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(bare.Epochs), len(instrumented.Epochs))
	}
	for i := range bare.Epochs {
		a, b := bare.Epochs[i], instrumented.Epochs[i]
		if a.ServeNTC != b.ServeNTC || a.ModelNTC != b.ModelNTC || a.MigrationNTC != b.MigrationNTC ||
			a.Reads != b.Reads || a.Writes != b.Writes || a.Changed != b.Changed {
			t.Fatalf("epoch %d diverged with telemetry on:\nbare:        %+v\ninstrumented: %+v", i, a, b)
		}
	}
	// Drift rebuilds the Problem each epoch, so the two runs' final schemes
	// are bound to different (identical-content) problems; compare bits.
	if !bare.FinalScheme.Bits().Equal(instrumented.FinalScheme.Bits()) {
		t.Fatal("final scheme diverged with telemetry on")
	}
}
