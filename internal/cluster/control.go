package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"drp/internal/agra"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/membership"
	"drp/internal/plan"
	"drp/internal/spans"
	"drp/internal/sra"
	"drp/internal/store"
)

// ControlPlane is the monitor's membership-aware half: it consumes the
// view stream of a membership.Tracker and emits an epoch-numbered
// placement plan per view. Each plan is solved over the view-restricted
// sub-problem — a join or leave never re-solves the whole instance;
// instead the AGRA pipeline re-optimises only the objects the membership
// event can have affected (objects with demand at the changed site, plus
// — on a departure — objects placed or primaried there). Primaries on a
// departing site are handed to the surviving member nearest to it that
// still has primary capacity, deterministically. Emitted plans are
// journaled (when a journal is attached) before subscribers see them, so
// a coordinator restart replays intent, not guesswork.
//
// The data plane (netnode.Cluster.ApplyPlan) is deliberately decoupled:
// subscribers receive plans and decide when and how to realise them.
type ControlPlane struct {
	mu      sync.Mutex
	p       *core.Problem
	tracker *membership.Tracker
	journal *store.Journal
	opts    ControlOptions

	epoch   int        // plan epoch counter (plans emitted so far)
	prim    []int      // universe-indexed current primary assignment
	current *plan.Plan // last emitted plan
	subs    []func(*plan.Plan)
	err     error // first re-planning failure, sticky
}

// ControlOptions configure the control plane's solvers.
type ControlOptions struct {
	// Static configures the initial full solve over the founding view.
	Static sra.Options
	// Micro / Mini / MiniGenerations configure the AGRA re-optimisation
	// run on every membership event. Zero values take the paper defaults
	// (agra.DefaultParams, gra.DefaultParams, 5 generations); a negative
	// MiniGenerations disables the mini-GRA polish, leaving untouched
	// objects' placements bit-for-bit intact across a replan.
	Micro           agra.Params
	Mini            gra.Params
	MiniGenerations int
	// Journal, when non-nil, persists every emitted plan before
	// subscribers observe it.
	Journal *store.Journal
	// Tracer, when non-nil, records a span per control-plane decision:
	// a control.found root for the founding solve and a control.replan
	// root (with reassign and solve children) per membership event.
	Tracer *spans.Tracer
}

// NewControlPlane solves the founding view with the static greedy and
// returns a control plane holding plan epoch 1. Every universe primary
// must be a member of the founding view. Call Bind to start consuming
// membership events.
func NewControlPlane(p *core.Problem, tracker *membership.Tracker, opts ControlOptions) (*ControlPlane, error) {
	if p.Sites() != tracker.Universe() {
		return nil, fmt.Errorf("cluster: problem has %d sites, tracker universe %d", p.Sites(), tracker.Universe())
	}
	if opts.Micro.PopSize == 0 {
		opts.Micro = agra.DefaultParams()
	}
	if opts.Mini.PopSize == 0 {
		opts.Mini = gra.DefaultParams()
	}
	switch {
	case opts.MiniGenerations == 0:
		opts.MiniGenerations = 5
	case opts.MiniGenerations < 0:
		opts.MiniGenerations = 0
	}
	cp := &ControlPlane{
		p:       p,
		tracker: tracker,
		journal: opts.Journal,
		opts:    opts,
		prim:    make([]int, p.Objects()),
	}
	view := tracker.View()
	for k := 0; k < p.Objects(); k++ {
		cp.prim[k] = p.Primary(k)
		if !view.Has(cp.prim[k]) {
			return nil, fmt.Errorf("cluster: founding view misses primary site %d of object %d", cp.prim[k], k)
		}
	}
	sub, _ := tracker.SubMatrix()
	rp, err := plan.Restrict(p, view, cp.prim, sub)
	if err != nil {
		return nil, err
	}
	root := opts.Tracer.Root("control.found")
	res := sra.Run(rp, opts.Static)
	pl := plan.Lift(view, res.Scheme)
	if err := cp.emit(pl); err != nil {
		root.SetErr(err)
		root.Finish()
		return nil, err
	}
	root.SetAttr("epoch", strconv.Itoa(pl.Epoch))
	root.SetAttr("members", strconv.Itoa(len(view.Members)))
	root.Finish()
	return cp, nil
}

// Bind subscribes the control plane to its tracker: every subsequent
// membership event produces (and journals, and publishes) a new plan.
// A re-planning failure is sticky — later events are ignored and Err
// reports it — because emitting plans past a gap would desynchronise
// plan epochs from view epochs.
func (cp *ControlPlane) Bind() {
	cp.tracker.Subscribe(func(v membership.View) {
		cp.mu.Lock()
		failed := cp.err != nil
		cp.mu.Unlock()
		if failed {
			return
		}
		if _, err := cp.React(v); err != nil {
			cp.mu.Lock()
			cp.err = err
			cp.mu.Unlock()
		}
	})
}

// Err returns the first re-planning failure since Bind, if any.
func (cp *ControlPlane) Err() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.err
}

// Plan returns the last emitted plan.
func (cp *ControlPlane) Plan() *plan.Plan {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.current.Clone()
}

// Primaries returns the current universe-indexed primary assignment.
func (cp *ControlPlane) Primaries() []int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return append([]int(nil), cp.prim...)
}

// Subscribe registers fn to receive every plan emitted after this call,
// in epoch order, synchronously from the membership event.
func (cp *ControlPlane) Subscribe(fn func(*plan.Plan)) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.subs = append(cp.subs, fn)
}

// React computes and emits the plan for a new view. Bind calls it from
// the tracker's event stream; tests may call it directly with a view
// obtained from JoinSite / LeaveSite.
func (cp *ControlPlane) React(v membership.View) (pl *plan.Plan, err error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	root := cp.opts.Tracer.Root("control.replan")
	root.SetAttr("view", strconv.Itoa(v.Epoch))
	defer func() {
		root.SetErr(err)
		root.Finish()
	}()
	joined, departed := memberDelta(cp.current.View.Members, v.Members)
	rs := root.Child("control.reassign")
	rs.SetAttr("departed", strconv.Itoa(len(departed)))
	if err := cp.reassignPrimaries(v, departed); err != nil {
		rs.SetErr(err)
		rs.Finish()
		return nil, err
	}
	rs.Finish()
	changed := cp.changedObjects(joined, departed)
	ss := root.Child("control.solve")
	ss.SetAttr("changed", strconv.Itoa(len(changed)))
	next, err := cp.solve(v, changed)
	if err != nil {
		ss.SetErr(err)
		ss.Finish()
		return nil, err
	}
	ss.Finish()
	if err := cp.emit(next); err != nil {
		return nil, err
	}
	root.SetAttr("epoch", strconv.Itoa(next.Epoch))
	return next.Clone(), nil
}

// memberDelta splits two sorted member lists into joined and departed
// sites.
func memberDelta(old, next []int) (joined, departed []int) {
	i, j := 0, 0
	for i < len(old) || j < len(next) {
		switch {
		case i >= len(old):
			joined = append(joined, next[j])
			j++
		case j >= len(next):
			departed = append(departed, old[i])
			i++
		case old[i] == next[j]:
			i++
			j++
		case old[i] < next[j]:
			departed = append(departed, old[i])
			i++
		default:
			joined = append(joined, next[j])
			j++
		}
	}
	return joined, departed
}

// reassignPrimaries hands every primary on a departing site to the
// nearest surviving member with spare primary capacity. Distance is the
// universe metric between the old and candidate primary (the tracker no
// longer prices the departed site); ties break on the lower site index,
// so the assignment is deterministic.
func (cp *ControlPlane) reassignPrimaries(v membership.View, departed []int) error {
	gone := make(map[int]bool, len(departed))
	for _, s := range departed {
		gone[s] = true
	}
	// Primary load per member under the current assignment.
	load := make(map[int]int64)
	for k, sp := range cp.prim {
		load[sp] += cp.p.Size(k)
	}
	// Deterministic object order: ascending object index.
	for k, sp := range cp.prim {
		if !gone[sp] {
			continue
		}
		best := -1
		var bestDist int64
		for _, m := range v.Members {
			if load[m]+cp.p.Size(k) > cp.p.Capacity(m) {
				continue
			}
			d := cp.p.Cost(sp, m)
			if best < 0 || d < bestDist {
				best, bestDist = m, d
			}
		}
		if best < 0 {
			return fmt.Errorf("cluster: no surviving member has capacity for the primary of object %d (size %d) after site %d left", k, cp.p.Size(k), sp)
		}
		load[sp] -= cp.p.Size(k)
		load[best] += cp.p.Size(k)
		cp.prim[k] = best
	}
	return nil
}

// changedObjects lists the objects a membership event can affect: any
// object with read or write demand at a joined or departed site, and —
// for departures — any object the current plan places or primaries
// there. Everything else keeps its placement through the restricted
// re-solve.
func (cp *ControlPlane) changedObjects(joined, departed []int) []int {
	set := make(map[int]bool)
	mark := func(site int, withPlacement bool) {
		for k := 0; k < cp.p.Objects(); k++ {
			if cp.p.Reads(site, k) > 0 || cp.p.Writes(site, k) > 0 {
				set[k] = true
			}
			if withPlacement && (cp.current.Has(site, k) || cp.current.Primaries[k] == site) {
				set[k] = true
			}
		}
	}
	for _, s := range joined {
		mark(s, false)
	}
	for _, s := range departed {
		mark(s, true)
	}
	// Reassigned primaries are changed by definition.
	for k := range cp.prim {
		if cp.prim[k] != cp.current.Primaries[k] {
			set[k] = true
		}
	}
	changed := make([]int, 0, len(set))
	for k := range set {
		changed = append(changed, k)
	}
	sort.Ints(changed)
	return changed
}

// solve re-optimises the changed objects over the view-restricted
// problem with the AGRA pipeline, seeded with the current plan projected
// onto the view, and lifts the result back to a universe plan.
func (cp *ControlPlane) solve(v membership.View, changed []int) (*plan.Plan, error) {
	sub, siteMap := cp.tracker.SubMatrix()
	if len(siteMap) != len(v.Members) {
		return nil, fmt.Errorf("cluster: tracker advanced past view epoch %d mid-replan", v.Epoch)
	}
	rp, err := plan.Restrict(cp.p, v, cp.prim, sub)
	if err != nil {
		return nil, err
	}
	cur, err := cp.projectCurrent(rp, v)
	if err != nil {
		return nil, err
	}
	if len(changed) == 0 {
		pl := plan.Lift(v, cur)
		return pl, nil
	}
	res, err := agra.Adapt(agra.Input{
		Problem: rp,
		Current: cur,
		Changed: changed,
	}, cp.opts.Micro, cp.opts.Mini, cp.opts.MiniGenerations)
	if err != nil {
		return nil, err
	}
	return plan.Lift(v, res.Scheme), nil
}

// projectCurrent maps the current plan onto the restricted problem:
// placements intersect the view, and every (possibly reassigned) primary
// is forced in. This is the scheme AGRA adapts from.
func (cp *ControlPlane) projectCurrent(rp *core.Problem, v membership.View) (*core.Scheme, error) {
	idx := v.Index()
	s := core.NewScheme(rp)
	for k := 0; k < cp.p.Objects(); k++ {
		for _, site := range cp.current.Placement[k] {
			d, ok := idx[site]
			if !ok || s.Has(d, k) {
				continue
			}
			if err := s.Add(d, k); err != nil {
				// Capacity pressure from forced primaries: skip the replica;
				// the re-solve decides what fits.
				continue
			}
		}
	}
	return s, nil
}

// emit stamps, journals and publishes a plan. Callers hold cp.mu (or are
// the constructor).
func (cp *ControlPlane) emit(pl *plan.Plan) error {
	cp.epoch++
	pl.Epoch = cp.epoch
	if err := pl.Validate(cp.p); err != nil {
		return fmt.Errorf("cluster: plan for view epoch %d invalid: %w", pl.View.Epoch, err)
	}
	if cp.journal != nil {
		data, err := pl.Marshal()
		if err != nil {
			return err
		}
		if err := cp.journal.RecordPlan(pl.Epoch, data); err != nil {
			return fmt.Errorf("cluster: journal plan epoch %d: %w", pl.Epoch, err)
		}
	}
	cp.current = pl.Clone()
	for _, fn := range cp.subs {
		fn(pl.Clone())
	}
	return nil
}
