package cluster

import (
	"fmt"
	"io"
	"time"

	"drp/internal/core"
)

// PolicyReport is one policy's aggregate outcome over a comparison run.
type PolicyReport struct {
	Policy Policy
	// TotalServeNTC and TotalNTC aggregate serving and serving+migration
	// transfer costs over all epochs.
	TotalServeNTC int64
	TotalNTC      int64
	// MeanSavings averages the per-epoch savings.
	MeanSavings float64
	// LastSavings is the final epoch's savings, the steady-state signal.
	LastSavings float64
	// AdaptTime totals the monitor's optimisation time across epochs.
	AdaptTime time.Duration
	// FailedRequests totals reads+writes that could not be served.
	FailedRequests int64
}

// Comparison is the outcome of running several policies over identical
// traffic and drift.
type Comparison struct {
	Epochs  int
	Reports []PolicyReport
}

// Compare runs every given policy on the same problem, initial scheme,
// drift and failure schedule (identical seeds ⇒ identical traffic), and
// aggregates per-policy results. The cfg's Policy field is overridden.
func Compare(p *core.Problem, initial *core.Scheme, cfg Config, policies []Policy) (*Comparison, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("cluster: no policies to compare")
	}
	cmp := &Comparison{Epochs: cfg.Epochs}
	for _, policy := range policies {
		runCfg := cfg
		runCfg.Policy = policy
		var start *core.Scheme
		if initial != nil {
			start = initial.Clone()
		}
		res, err := Run(p, start, runCfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: policy %s: %w", policy, err)
		}
		report := PolicyReport{
			Policy:        policy,
			TotalServeNTC: res.TotalServeNTC(),
			TotalNTC:      res.TotalNTC(),
		}
		var savings float64
		for _, e := range res.Epochs {
			savings += e.Savings
			report.AdaptTime += e.AdaptTime
			report.FailedRequests += e.FailedReads + e.FailedWrites
		}
		if len(res.Epochs) > 0 {
			report.MeanSavings = savings / float64(len(res.Epochs))
			report.LastSavings = res.Epochs[len(res.Epochs)-1].Savings
		}
		cmp.Reports = append(cmp.Reports, report)
	}
	return cmp, nil
}

// Render writes the comparison as an aligned table.
func (c *Comparison) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Policy comparison over %d epochs (identical traffic and drift):\n", c.Epochs); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-10s %14s %14s %9s %9s %12s %7s\n",
		"policy", "serveNTC", "totalNTC", "mean sv%", "last sv%", "adapt time", "failed"); err != nil {
		return err
	}
	for _, r := range c.Reports {
		if _, err := fmt.Fprintf(w, "  %-10s %14d %14d %9.2f %9.2f %12v %7d\n",
			r.Policy, r.TotalServeNTC, r.TotalNTC, r.MeanSavings, r.LastSavings,
			r.AdaptTime.Round(time.Millisecond), r.FailedRequests); err != nil {
			return err
		}
	}
	return nil
}
