package cluster

// Coverage for the EpochTimeout degraded path when faults are injected at
// the same time: a monitor that blows its deadline while sites are down
// must keep serving the current scheme, record the degraded epochs (stats
// and drp_cluster_degraded_epochs_total both), and account the requests
// lost to the outage — degradation of the optimiser and degradation of the
// serving plane are independent and must not mask each other.

import (
	"testing"

	"drp/internal/metrics"
	"drp/internal/sra"
	"drp/internal/workload"
)

func TestEpochTimeoutDegradedPathUnderInjectedFaults(t *testing.T) {
	p := gen(t, 10, 16, 0.08, 0.2, 17)
	initial := sra.Run(p, sra.Options{}).Scheme
	cfg := testConfig(PolicyGRA)
	cfg.Epochs = 4
	cfg.Drift = &workload.ChangeSpec{Ch: 5, ObjectShare: 0.3, ReadShare: 0.5}
	cfg.EpochTimeout = 1 // one nanosecond: every re-optimisation misses
	cfg.Failures = []Failure{
		{Site: 1, From: 1, To: 3},
		{Site: 4, From: 2, To: 4},
	}
	reg := metrics.NewRegistry()
	cfg.Metrics = reg

	res, err := Run(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// PolicyGRA re-optimises every epoch, so every epoch after the first
	// degrades under the 1ns deadline (epoch 0 adapts too under GRA).
	if res.DegradedEpochs() == 0 {
		t.Fatal("no epoch recorded a degraded adaptation; the path was not exercised")
	}
	var failed int64
	for i, e := range res.Epochs {
		if e.AdaptDegraded {
			if e.Migrations != 0 {
				t.Errorf("epoch %d migrated %d replicas on a degraded adaptation", i, e.Migrations)
			}
		}
		failed += e.FailedReads + e.FailedWrites
	}
	if failed == 0 {
		t.Fatal("injected outages lost no requests; the fault path was not exercised")
	}

	// Adaptations were all discarded, so the serving scheme never changed.
	if !res.FinalScheme.Bits().Equal(initial.Bits()) {
		t.Error("degraded monitor changed the serving scheme under faults")
	}

	// The instruments must agree with the stats the caller already has.
	counter := func(name string, labels metrics.Labels) int64 {
		return reg.Counter(name, "", labels).Value()
	}
	if got := counter("drp_cluster_degraded_epochs_total", nil); got != int64(res.DegradedEpochs()) {
		t.Errorf("degraded epochs counter = %d, stats say %d", got, res.DegradedEpochs())
	}
	gotFailed := counter("drp_cluster_failed_requests_total", metrics.Labels{"op": "read"}) +
		counter("drp_cluster_failed_requests_total", metrics.Labels{"op": "write"})
	if gotFailed != failed {
		t.Errorf("failed requests counter = %d, stats say %d", gotFailed, failed)
	}
	if got := counter("drp_cluster_epochs_total", nil); got != int64(len(res.Epochs)) {
		t.Errorf("epochs counter = %d, want %d", got, len(res.Epochs))
	}
}

// TestDegradedEpochsUnaffectedByFaultInjection pins that the two
// degradation axes are orthogonal: the same deadline-starved run with and
// without injected site failures degrades the identical set of epochs (the
// optimiser's deadline behaviour must not depend on the serving plane).
func TestDegradedEpochsUnaffectedByFaultInjection(t *testing.T) {
	p := gen(t, 10, 16, 0.08, 0.2, 17)
	initial := sra.Run(p, sra.Options{}).Scheme
	base := testConfig(PolicyGRA)
	base.Epochs = 3
	base.EpochTimeout = 1

	run := func(failures []Failure) []bool {
		cfg := base
		cfg.Failures = failures
		res, err := Run(p, initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, len(res.Epochs))
		for i, e := range res.Epochs {
			out[i] = e.AdaptDegraded
		}
		return out
	}

	calm := run(nil)
	faulted := run([]Failure{{Site: 2, From: 0, To: 3}})
	if len(calm) != len(faulted) {
		t.Fatalf("epoch counts differ: %d vs %d", len(calm), len(faulted))
	}
	for i := range calm {
		if calm[i] != faulted[i] {
			t.Errorf("epoch %d: degraded=%v without faults but %v with faults", i, calm[i], faulted[i])
		}
	}
}
