package cluster

import (
	"fmt"
	"strconv"
	"time"

	"drp/internal/agra"
	"drp/internal/bitset"
	"drp/internal/core"
	"drp/internal/gra"
	"drp/internal/metrics"
	"drp/internal/simevent"
	"drp/internal/solver"
	"drp/internal/sra"
	"drp/internal/workload"
	"drp/internal/xrand"
)

// epochTicks is the virtual duration of one measurement period.
const epochTicks = 1_000_000

// Run simulates cfg.Epochs measurement periods of the distributed system
// starting from the given problem and scheme.
func Run(p *core.Problem, initial *core.Scheme, cfg Config) (*Result, error) {
	if err := cfg.validate(p); err != nil {
		return nil, err
	}
	if initial == nil {
		initial = core.NewScheme(p)
	}
	if initial.Problem() != p {
		// Rebind defensively so Has/Cost agree with the problem we drive.
		rebound, err := core.SchemeFromBits(p, initial.Bits())
		if err != nil {
			return nil, fmt.Errorf("cluster: initial scheme incompatible: %w", err)
		}
		initial = rebound
	}

	sim := &sim{
		cfg:     cfg,
		sched:   simevent.New(),
		rng:     xrand.New(cfg.Seed),
		problem: p,
		scheme:  initial.Clone(),
		down:    make([]bool, p.Sites()),
	}
	if cfg.Metrics != nil || cfg.Events != nil {
		sim.observer = metrics.BridgeObserver(cfg.Metrics, cfg.Events, nil)
	}
	if cfg.Metrics != nil {
		sim.ins = newClusterInstruments(cfg.Metrics)
	}
	sim.rebuildNearest()
	sim.snapshotTunedTotals()

	res := &Result{}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		stats, err := sim.runEpoch(epoch)
		if err != nil {
			return nil, err
		}
		res.Epochs = append(res.Epochs, *stats)
		if cfg.OnEpoch != nil {
			if err := cfg.OnEpoch(epoch, sim.scheme.Clone(), stats); err != nil {
				return nil, fmt.Errorf("cluster: epoch hook: %w", err)
			}
		}
	}
	res.FinalScheme = sim.scheme
	return res, nil
}

// sim is the mutable simulation state shared by the event handlers.
type sim struct {
	cfg     Config
	sched   *simevent.Scheduler
	rng     *xrand.Source
	problem *core.Problem // patterns for the CURRENT epoch
	scheme  *core.Scheme
	nearest *core.NearestTable
	down    []bool

	// tunedReads/tunedWrites are the per-object totals the current scheme
	// was last optimised against; the monitor's change detector compares
	// observed totals against them.
	tunedReads  []int64
	tunedWrites []int64

	// population is the last GA population, carried across epochs for the
	// AGRA policies.
	population []*bitset.Set
	// readCosts histograms the current epoch's per-read transfer costs.
	readCosts *costHist
	// observer bridges the monitor's solver progress into cfg.Metrics /
	// cfg.Events; nil when telemetry is off. ins caches the epoch
	// instruments of cfg.Metrics (nil likewise).
	observer solver.Observer
	ins      *clusterInstruments
}

func (s *sim) setPopulation(pop []*bitset.Set) { s.population = pop }

func (s *sim) rawPopulation() []*bitset.Set { return s.population }

func (s *sim) rebuildNearest() {
	s.nearest = core.NewNearestTable(s.scheme)
}

func (s *sim) snapshotTunedTotals() {
	n := s.problem.Objects()
	s.tunedReads = make([]int64, n)
	s.tunedWrites = make([]int64, n)
	for k := 0; k < n; k++ {
		s.tunedReads[k] = s.problem.TotalReads(k)
		s.tunedWrites[k] = s.problem.TotalWrites(k)
	}
}

// runEpoch drives one measurement period: drift, adaptation, traffic.
func (s *sim) runEpoch(epoch int) (*EpochStats, error) {
	stats := &EpochStats{Epoch: epoch}
	root := s.cfg.Tracer.Root("epoch")
	root.SetAttr("epoch", strconv.Itoa(epoch))
	defer root.Finish()

	// 1. Pattern drift at the start of every epoch after the first.
	if epoch > 0 && s.cfg.Drift != nil {
		next, _, err := workload.ApplyChange(s.problem, *s.cfg.Drift, s.cfg.Seed+uint64(epoch)*7919)
		if err != nil {
			return nil, err
		}
		s.problem = next
		rebound, err := core.SchemeFromBits(s.problem, s.scheme.Bits())
		if err != nil {
			return nil, fmt.Errorf("cluster: rebind after drift: %w", err)
		}
		s.scheme = rebound
		s.rebuildNearest()
	}

	// 2. The monitor adapts (it has just received the previous night's
	// statistics — in this simulator, the true current patterns).
	if epoch > 0 || s.cfg.Policy == PolicySRA || s.cfg.Policy == PolicyGRA {
		as := root.Child("epoch.adapt")
		if err := s.adapt(epoch, stats); err != nil {
			as.SetErr(err)
			as.Finish()
			return nil, err
		}
		as.SetAttr("changed", strconv.Itoa(stats.Changed))
		as.SetAttr("migrations", strconv.Itoa(stats.Migrations))
		if stats.AdaptDegraded {
			as.SetVerdict("degraded")
		}
		as.SetNTC(stats.MigrationNTC)
		as.Finish()
	}

	// 3. Failures for this epoch.
	for i := range s.down {
		s.down[i] = false
	}
	for _, f := range s.cfg.Failures {
		if epoch >= f.From && epoch < f.To {
			s.down[f.Site] = true
		}
	}

	// 4. Generate and serve the epoch's traffic.
	s.readCosts = newCostHist()
	sv := root.Child("epoch.serve")
	s.scheduleTraffic(stats)
	s.sched.Run()
	sv.SetAttr("reads", strconv.FormatInt(stats.Reads, 10))
	sv.SetAttr("writes", strconv.FormatInt(stats.Writes, 10))
	sv.SetNTC(stats.ServeNTC)
	sv.Finish()

	// 5. Bookkeeping: eq. 4 prediction, latency percentiles and savings.
	stats.ModelNTC = s.scheme.Cost()
	if stats.Reads > 0 {
		stats.MeanReadCost /= float64(stats.Reads)
		stats.ReadCostP50 = s.readCosts.percentile(0.50)
		stats.ReadCostP95 = s.readCosts.percentile(0.95)
		stats.ReadCostMax = s.readCosts.max()
	}
	dPrime := s.problem.DPrime()
	if dPrime > 0 {
		stats.Savings = 100 * float64(dPrime-stats.ServeNTC-stats.MigrationNTC) / float64(dPrime)
	}
	s.record(stats)
	return stats, nil
}

// record folds one finished epoch into the configured telemetry sinks. The
// instruments observe only what the deterministic simulation already
// computed, so counter/histogram snapshots are reproducible run to run
// (AdaptTime is wall clock and goes to a *_seconds histogram, which the
// determinism filter excludes).
func (s *sim) record(stats *EpochStats) {
	if ins := s.ins; ins != nil {
		ins.epochs.Inc()
		if stats.AdaptDegraded {
			ins.degraded.Inc()
		}
		ins.reads.Add(stats.Reads)
		ins.writes.Add(stats.Writes)
		ins.failedReads.Add(stats.FailedReads)
		ins.failedWrites.Add(stats.FailedWrites)
		ins.serveRead.Add(stats.ReadNTC)
		ins.serveWrite.Add(stats.WriteNTC)
		ins.migrations.Add(int64(stats.Migrations))
		ins.migrationNTC.Add(stats.MigrationNTC)
		ins.changed.Add(int64(stats.Changed))
		ins.adaptEvals.Add(int64(stats.AdaptEvaluations))
		ins.adaptSeconds.Observe(stats.AdaptTime.Seconds())
	}
	if s.cfg.Events != nil {
		s.cfg.Events.Emit("cluster.epoch", map[string]any{
			"epoch":             stats.Epoch,
			"reads":             stats.Reads,
			"writes":            stats.Writes,
			"failed_reads":      stats.FailedReads,
			"failed_writes":     stats.FailedWrites,
			"serve_ntc":         stats.ServeNTC,
			"read_ntc":          stats.ReadNTC,
			"write_ntc":         stats.WriteNTC,
			"model_ntc":         stats.ModelNTC,
			"migration_ntc":     stats.MigrationNTC,
			"migrations":        stats.Migrations,
			"mean_read_cost":    stats.MeanReadCost,
			"read_cost_p95":     stats.ReadCostP95,
			"savings_pct":       stats.Savings,
			"changed":           stats.Changed,
			"adapt_ms":          float64(stats.AdaptTime) / float64(time.Millisecond),
			"adapt_evaluations": stats.AdaptEvaluations,
			"adapt_stopped":     stats.AdaptStopped.String(),
			"adapt_degraded":    stats.AdaptDegraded,
		})
	}
}

// adapt applies the configured monitor policy, migrating the scheme. When
// the epoch's deadline or evaluation budget fires mid-optimisation, the
// monitor degrades gracefully: the partial result is discarded, the current
// scheme keeps serving (so no migration cost is charged and eq. 4
// accounting is unaffected), the change detector's tuned totals are left
// alone so the shift is re-flagged next epoch, and the miss is recorded in
// the epoch's stats.
func (s *sim) adapt(epoch int, stats *EpochStats) error {
	start := time.Now()
	run := solver.Run{Timeout: s.cfg.EpochTimeout, Budget: s.cfg.AdaptBudget, Observer: s.observer}
	old := s.scheme
	var next *core.Scheme
	var pop []*bitset.Set
	var st solver.Stats
	hasPop := false
	switch s.cfg.Policy {
	case PolicyNone:
		return nil

	case PolicySRA:
		res := sra.Run(s.problem, sra.Options{Run: run})
		next = res.Scheme
		st = res.Stats

	case PolicyGRA:
		params := s.cfg.GRAParams
		params.Seed = s.cfg.Seed + uint64(epoch)*131
		res, err := gra.RunWith(s.problem, params, run)
		if err != nil {
			return err
		}
		next = res.Scheme
		pop, hasPop = res.Population, true
		st = res.Stats

	case PolicyAGRA, PolicyAGRAMini:
		changed := s.detectChanges()
		stats.Changed = len(changed)
		if len(changed) == 0 {
			stats.AdaptTime = time.Since(start)
			return nil
		}
		miniGens := 0
		if s.cfg.Policy == PolicyAGRAMini {
			miniGens = 5
		}
		params := s.cfg.AGRAParams
		params.Seed = s.cfg.Seed + uint64(epoch)*257
		mini := s.cfg.GRAParams
		mini.Seed = params.Seed + 1
		res, err := agra.AdaptWith(agra.Input{
			Problem:       s.problem,
			Current:       s.scheme,
			GRAPopulation: s.rawPopulation(),
			Changed:       changed,
		}, params, mini, miniGens, run)
		if err != nil {
			return err
		}
		next = res.Scheme
		pop, hasPop = res.Population, true
		st = res.Stats
	}
	stats.AdaptTime = time.Since(start)
	stats.AdaptEvaluations = st.Evaluations
	stats.AdaptStopped = st.Stopped
	if s.cfg.Metrics != nil || s.cfg.Events != nil {
		metrics.RecordStats(s.cfg.Metrics, s.cfg.Policy.String(), st, s.cfg.Events)
	}

	if st.Stopped != solver.StopCompleted {
		stats.AdaptDegraded = true
		return nil
	}

	s.scheme = next
	if hasPop {
		s.setPopulation(pop)
	}
	s.migrate(old, s.scheme, stats)
	s.rebuildNearest()
	s.snapshotTunedTotals()
	return nil
}

// detectChanges returns the objects whose observed totals moved beyond the
// threshold factor since the scheme was last tuned.
func (s *sim) detectChanges() []int {
	if s.cfg.Threshold <= 0 {
		return nil
	}
	var out []int
	for k := 0; k < s.problem.Objects(); k++ {
		if exceeds(s.problem.TotalReads(k), s.tunedReads[k], s.cfg.Threshold) ||
			exceeds(s.problem.TotalWrites(k), s.tunedWrites[k], s.cfg.Threshold) {
			out = append(out, k)
		}
	}
	return out
}

func exceeds(now, was int64, factor float64) bool {
	if was == 0 {
		return now > 0
	}
	ratio := float64(now) / float64(was)
	return ratio >= factor || ratio <= 1/factor
}

// migrate accounts for the transfer cost of realising the new scheme: each
// new replica is fetched from the nearest site that held the object under
// the old scheme. Deallocations are free.
func (s *sim) migrate(old, next *core.Scheme, stats *EpochStats) {
	p := s.problem
	oldNearest := core.NewNearestTable(old)
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			if next.Has(i, k) && !old.Has(i, k) {
				stats.Migrations++
				stats.MigrationNTC += p.Size(k) * oldNearest.Dist(i, k)
			}
		}
	}
}

// scheduleTraffic schedules this epoch's read and write arrivals at
// uniformly random virtual times.
func (s *sim) scheduleTraffic(stats *EpochStats) {
	p := s.problem
	base := s.sched.Now()
	for i := 0; i < p.Sites(); i++ {
		for k := 0; k < p.Objects(); k++ {
			site, obj := i, k
			for r := int64(0); r < p.Reads(i, k); r++ {
				s.sched.At(base+int64(s.rng.Intn(epochTicks)), func() { s.serveRead(site, obj, stats) })
			}
			for w := int64(0); w < p.Writes(i, k); w++ {
				s.sched.At(base+int64(s.rng.Intn(epochTicks)), func() { s.serveWrite(site, obj, stats) })
			}
		}
	}
}

// serveRead routes a read to the nearest live replica.
func (s *sim) serveRead(site, obj int, stats *EpochStats) {
	p := s.problem
	target := s.nearest.Nearest(site, obj)
	dist := s.nearest.Dist(site, obj)
	if s.down[target] {
		target, dist = s.nearestLive(site, obj)
		if target < 0 {
			stats.FailedReads++
			return
		}
	}
	stats.Reads++
	cost := p.Size(obj) * dist
	stats.ServeNTC += cost
	stats.ReadNTC += cost
	stats.MeanReadCost += float64(cost)
	s.readCosts.add(cost)
}

// serveWrite ships the update to the primary, which broadcasts the new
// version to every other live replicator.
func (s *sim) serveWrite(site, obj int, stats *EpochStats) {
	p := s.problem
	sp := p.Primary(obj)
	if s.down[sp] {
		stats.FailedWrites++
		return
	}
	stats.Writes++
	ship := p.Size(obj) * p.Cost(site, sp)
	stats.ServeNTC += ship
	stats.WriteNTC += ship
	for _, j := range s.scheme.Replicators(obj) {
		if j == site || j == sp || s.down[j] {
			continue
		}
		bcast := p.Size(obj) * p.Cost(sp, j)
		stats.ServeNTC += bcast
		stats.WriteNTC += bcast
	}
}

// nearestLive scans for the closest replicator that is up.
func (s *sim) nearestLive(site, obj int) (int, int64) {
	p := s.problem
	best, bestD := -1, int64(0)
	for _, j := range s.scheme.Replicators(obj) {
		if s.down[j] {
			continue
		}
		if d := p.Cost(site, j); best < 0 || d < bestD {
			best, bestD = j, d
		}
	}
	return best, bestD
}
